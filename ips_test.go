package ips

import (
	"context"
	"path/filepath"
	"testing"
)

func TestDefaultOptions(t *testing.T) {
	opt := DefaultOptions()
	if opt.K != 5 {
		t.Fatalf("K = %d, want 5", opt.K)
	}
	if opt.IP.QN != 10 || opt.IP.QS != 3 {
		t.Fatalf("IP defaults = %+v", opt.IP)
	}
	if len(opt.IP.LengthRatios) != 5 {
		t.Fatalf("length ratios = %v", opt.IP.LengthRatios)
	}
	if opt.DABF.Sigma != 3 || opt.DABF.Dim != 32 {
		t.Fatalf("DABF defaults = %+v", opt.DABF)
	}
}

func TestDatasets(t *testing.T) {
	if len(Datasets()) != 46 {
		t.Fatalf("datasets = %d, want 46", len(Datasets()))
	}
}

func TestEndToEndPublicAPI(t *testing.T) {
	train, test, err := GenerateDataset("ECG200", GenConfig{MaxTest: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := DefaultOptions()
	opt.IP.QN = 10
	opt.IP.Seed = 2
	opt.DABF.Seed = 2

	res, err := Discover(context.Background(), train, opt)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapelets) == 0 {
		t.Fatal("no shapelets")
	}

	acc, model, err := Evaluate(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 60 {
		t.Fatalf("accuracy = %v%%", acc)
	}
	// Transform through the public API.
	X := Transform(test, model.Shapelets)
	if len(X) != test.Len() || len(X[0]) != len(model.Shapelets) {
		t.Fatalf("transform shape = %dx%d", len(X), len(X[0]))
	}
}

func TestPublicTSVRoundTrip(t *testing.T) {
	train, _, err := GenerateDataset("Coffee", GenConfig{MaxTrain: 6, MaxTest: 6, MaxLength: 40, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteTSV(filepath.Join(dir, "Coffee_TRAIN.tsv"), train); err != nil {
		t.Fatal(err)
	}
	if err := WriteTSV(filepath.Join(dir, "Coffee_TEST.tsv"), train); err != nil {
		t.Fatal(err)
	}
	tr, te, err := LoadSplit(dir, "Coffee")
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != train.Len() || te.Len() != train.Len() {
		t.Fatal("round trip size mismatch")
	}
	if _, err := LoadTSV(filepath.Join(dir, "missing.tsv")); err == nil {
		t.Fatal("missing file should error")
	}
	if _, _, err := GenerateDataset("Nope", GenConfig{}); err == nil {
		t.Fatal("unknown dataset should error")
	}
}
