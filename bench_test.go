package ips

// One testing.B benchmark per table and figure of the paper's evaluation
// section.  Each benchmark runs the corresponding harness experiment at quick
// scale and reports wall time per full regeneration; `go test -bench=.`
// therefore regenerates every experiment.  Use cmd/ipsbench for the
// full-scale, human-readable runs.

import (
	"context"
	"io"
	"testing"

	"ips/internal/bench"
)

func quickHarness(seed int64) *bench.Harness {
	return &bench.Harness{Quick: true, Seed: seed, Out: io.Discard}
}

func BenchmarkTable2BaseTopK(b *testing.B) {
	h := quickHarness(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table2(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3DistributionFit(b *testing.B) {
	h := quickHarness(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table3(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable4Efficiency(b *testing.B) {
	h := quickHarness(1)
	datasets := []string{"ItalyPowerDemand", "ECG200", "GunPoint", "TwoLeadECG"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table4(context.Background(), datasets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable5Breakdown(b *testing.B) {
	h := quickHarness(1)
	datasets := []string{"ArrowHead", "ShapeletSim"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table5(context.Background(), datasets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable6Accuracy(b *testing.B) {
	h := quickHarness(1)
	datasets := []string{"ItalyPowerDemand", "GunPoint", "Coffee"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table6(context.Background(), datasets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable7LSH(b *testing.B) {
	h := quickHarness(1)
	datasets := []string{"ItalyPowerDemand", "GunPoint"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Table7(context.Background(), datasets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig9VaryK(b *testing.B) {
	h := quickHarness(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig9(context.Background(), []string{"BeetleFly"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10aDABF(b *testing.B) {
	h := quickHarness(1)
	datasets := []string{"ItalyPowerDemand", "ECG200"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10a(context.Background(), datasets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig10bcDTCR(b *testing.B) {
	h := quickHarness(1)
	datasets := []string{"ItalyPowerDemand", "ECG200"}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig10bc(context.Background(), datasets); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig11Tests(b *testing.B) {
	h := quickHarness(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig11(nil); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig12VaryK(b *testing.B) {
	h := quickHarness(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig12(context.Background(), []string{"ArrowHead"}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig13CaseStudy(b *testing.B) {
	h := quickHarness(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := h.Fig13(context.Background()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscover measures raw shapelet discovery throughput on a
// mid-sized dataset — the library's core operation.
func BenchmarkDiscover(b *testing.B) {
	train, _, err := GenerateDataset("GunPoint", GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	opt := DefaultOptions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(context.Background(), train, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTransform measures the shapelet transform of Def. 7.
func BenchmarkTransform(b *testing.B) {
	train, test, err := GenerateDataset("GunPoint", GenConfig{Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	model, err := Fit(context.Background(), train, DefaultOptions())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Transform(test, model.Shapelets)
	}
}
