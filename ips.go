// Package ips is the public API of the IPS reproduction: instance-profile
// shapelet discovery for time series classification (Li et al., ICDE 2022).
//
// The pipeline has three stages.  Algorithm 1 generates shapelet candidates
// from instance profiles computed over bagging samples of each class;
// Algorithms 2 and 3 build a distribution-aware bloom filter (DABF) per
// class and prune candidates that are "possibly close to most elements" of
// another class; Algorithm 4 scores the survivors with three utility
// functions (intra-class, inter-class, intra-instance) — accelerated by the
// DT and CR optimisations — and keeps the top-k per class.  Classification
// is a shapelet transform followed by a linear SVM.
//
// Quick start:
//
//	train, test, _ := ips.GenerateDataset("ItalyPowerDemand", ips.GenConfig{})
//	model, _ := ips.Fit(context.Background(), train, ips.DefaultOptions())
//	pred, _ := model.Predict(context.Background(), test)
//
// Every pipeline entry point takes a context.Context first: cancelling it
// (or letting a deadline expire) stops the run cooperatively within one
// worker batch and returns an error matching ErrCanceled.  Failures are
// typed — inspect them with errors.Is against the Err* sentinels or
// errors.As against *Error.
//
// The internal packages implement every substrate from scratch: matrix
// profiles (STOMP), instance profiles, LSH families, the DABF, distribution
// fitting, SVM/1NN classifiers, and the BASE and BSPCOVER baselines of the
// paper's evaluation.  See DESIGN.md for the full inventory and
// EXPERIMENTS.md for paper-versus-measured results.
package ips

import (
	"context"
	"net/http"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/errs"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/stream"
	"ips/internal/ts"
	"ips/internal/ucr"
)

// Re-exported core types.  The aliases give external callers legal names for
// the internal implementation types.
type (
	// Series is an ordered sequence of real values.
	Series = ts.Series
	// Instance is a labelled time series.
	Instance = ts.Instance
	// Dataset is a set of labelled time series.
	Dataset = ts.Dataset
	// Shapelet is a discovered discriminative subsequence.
	Shapelet = classify.Shapelet
	// Options parameterises the IPS pipeline; see DefaultOptions.
	Options = core.Options
	// Model is a trained IPS classifier.
	Model = core.Model
	// Result reports a discovery run: shapelets, pool sizes, timings.
	Result = core.Result
	// IPConfig parameterises candidate generation (Algorithm 1).
	IPConfig = ip.Config
	// DABFConfig parameterises the distribution-aware bloom filter.
	DABFConfig = dabf.Config
	// SVMConfig parameterises the final linear SVM.
	SVMConfig = classify.SVMConfig
	// GenConfig controls the synthetic UCR-style dataset generator.
	GenConfig = ucr.GenConfig
	// DatasetMeta describes a UCR dataset (sizes, length, classes).
	DatasetMeta = ucr.Meta
	// Observer collects spans, metrics, and progress for a run; assign one
	// to Options.Obs.  See internal/obs for the full API.
	Observer = obs.Observer
	// Span is one timed region of the pipeline's span tree.
	Span = obs.Span
	// MetricsRegistry holds the run's counters, gauges, and histograms.
	MetricsRegistry = obs.Registry
	// Error is the structured failure type every pipeline error unwraps to:
	// it records the stage, operation, and dataset of the failure.  Inspect
	// with errors.As.
	Error = errs.Error
	// Stage identifies the pipeline stage an Error originated in.
	Stage = errs.Stage
	// Stream is online per-series state: an incremental matrix profile
	// (STOMPI), a delta-evaluated shapelet transform, and drift detection.
	// Build one with NewStream; it is not safe for concurrent use.
	Stream = stream.Stream
	// StreamConfig parameterises a Stream; see NewStream for the common case.
	StreamConfig = stream.Config
	// StreamDriftConfig tunes a Stream's drift detector.
	StreamDriftConfig = stream.DriftConfig
	// StreamUpdate is the state reported after each Stream.Append.
	StreamUpdate = stream.Update
)

// Pipeline stages, for matching Error.Stage.
const (
	StageValidate     = errs.StageValidate
	StageCandidateGen = errs.StageCandidateGen
	StagePruning      = errs.StagePruning
	StageSelection    = errs.StageSelection
	StageTransform    = errs.StageTransform
	StageTrain        = errs.StageTrain
	StagePredict      = errs.StagePredict
	StageKernel       = errs.StageKernel
	StageData         = errs.StageData
	StageBench        = errs.StageBench
	StageStream       = errs.StageStream
)

// Sentinel errors; match with errors.Is.
var (
	// ErrCanceled marks a run stopped by context cancellation or deadline.
	// A Discover/Evaluate error matching it may carry a partial *Result.
	ErrCanceled = errs.ErrCanceled
	// ErrBadInput marks rejected input: empty datasets, NaN/Inf values,
	// mismatched lengths, untrained models.
	ErrBadInput = errs.ErrBadInput
	// ErrDegenerate marks statistically degenerate data (e.g. a class whose
	// candidates admit no distribution fit).
	ErrDegenerate = errs.ErrDegenerate
	// ErrNoShapelets marks a discovery run that produced no shapelets.
	ErrNoShapelets = errs.ErrNoShapelets
	// ErrUnknownDataset marks a dataset name absent from the UCR archive.
	ErrUnknownDataset = ucr.ErrUnknownDataset
)

// NewObserver returns an observer with a live metrics registry, ready to be
// assigned to Options.Obs.  After the run, render the span tree with
// o.RenderTree, export it with o.WriteTraceFile, or read o.Metrics().
func NewObserver(name string) *Observer { return obs.New(name) }

// ServeDebug starts a background HTTP server with net/http/pprof under
// /debug/pprof/, expvar under /debug/vars, and the observer's metrics at
// /metrics (text) and /metrics.json.  It returns the server and the bound
// address (useful with ":0"); o may be nil to expose profiling only.
func ServeDebug(addr string, o *Observer) (*http.Server, string, error) {
	return obs.ServeDebug(addr, o.Metrics(), nil)
}

// DefaultOptions returns the paper's default parameters: k = 5 shapelets per
// class, candidate length ratios {0.1 … 0.5}, Q_N = 10 samples of Q_S = 3
// instances, L2 LSH with the 3σ pruning rule.
func DefaultOptions() Options {
	return Options{K: 5}.WithDefaults()
}

// Discover runs shapelet discovery (Algorithms 1–4) on the training set.
// Cancelling ctx returns an error matching ErrCanceled together with a
// partial Result covering the completed stages.
func Discover(ctx context.Context, train *Dataset, opt Options) (*Result, error) {
	return core.Discover(ctx, train, opt)
}

// Fit discovers shapelets and trains the shapelet-transform + SVM classifier.
// Cancelling ctx returns an error matching ErrCanceled.
func Fit(ctx context.Context, train *Dataset, opt Options) (*Model, error) {
	return core.Fit(ctx, train, opt)
}

// Evaluate fits on train and returns accuracy (%) on test with the model.
func Evaluate(ctx context.Context, train, test *Dataset, opt Options) (float64, *Model, error) {
	return core.Evaluate(ctx, train, test, opt)
}

// Transform embeds every instance into shapelet-distance space (Def. 7).
func Transform(d *Dataset, shapelets []Shapelet) [][]float64 {
	return classify.Transform(d, shapelets)
}

// LoadTSV reads a dataset in the UCR archive TSV format.
func LoadTSV(path string) (*Dataset, error) { return ucr.LoadTSV(path) }

// WriteTSV writes a dataset in the UCR archive TSV format.
func WriteTSV(path string, d *Dataset) error { return ucr.WriteTSV(path, d) }

// LoadSplit loads <dir>/<name>_TRAIN.tsv and <dir>/<name>_TEST.tsv.
func LoadSplit(dir, name string) (train, test *Dataset, err error) {
	return ucr.LoadSplit(dir, name)
}

// GenerateDataset synthesises the named UCR dataset's train/test splits with
// the archive's real sizes (see DESIGN.md §3 for the substitution rationale).
func GenerateDataset(name string, cfg GenConfig) (train, test *Dataset, err error) {
	return ucr.GenerateByName(name, cfg)
}

// Datasets lists the 46 UCR datasets of the paper's evaluation.
func Datasets() []DatasetMeta { return ucr.Archive }

// LoadModel reads a trained model previously written with Model.Save or
// Model.SaveFile.
func LoadModel(path string) (*Model, error) { return core.LoadModelFile(path) }

// CVResult summarises a cross-validation run.
type CVResult = core.CVResult

// CrossValidate runs stratified k-fold cross-validation of the IPS pipeline
// on a single dataset — the evaluation mode when there is no train/test
// split.  Cancelling ctx returns the completed folds' accuracies in a
// partial CVResult alongside an error matching ErrCanceled.
func CrossValidate(ctx context.Context, d *Dataset, opt Options, folds int, seed int64) (*CVResult, error) {
	return core.CrossValidate(ctx, d, opt, folds, seed)
}

// LookupDataset returns the archive metadata for a UCR dataset name; an
// unknown name yields an error matching ErrUnknownDataset.
func LookupDataset(name string) (DatasetMeta, error) { return ucr.Find(name) }

// NewStream opens a streaming classifier for one series against a trained
// model: points appended with Stream.Append update an incremental matrix
// profile (byte-identical to a batch recompute), a shapelet-transform
// feature vector brought current by delta-evaluation, the model's
// prediction, and a drift detector that flags when the series' behaviour
// departs from its own history — the signal to re-fit.  window is the
// matrix-profile window length; pass 0 for the default (the model's
// shortest shapelet).  For full control build a StreamConfig and call
// NewStreamConfig.
func NewStream(m *Model, window int) (*Stream, error) {
	if m == nil {
		return nil, errs.BadInput(errs.StageStream, "ips.newstream", "", "model is nil")
	}
	if window <= 0 {
		for _, sh := range m.Shapelets {
			if window == 0 || len(sh.Values) < window {
				window = len(sh.Values)
			}
		}
	}
	return stream.New(stream.Config{
		Window:    window,
		Shapelets: m.Shapelets,
		Scaler:    m.Scaler,
		SVM:       m.SVM,
	})
}

// NewStreamConfig opens a streaming classifier from an explicit config —
// use it for profile-only streams (no shapelets), point caps, or custom
// drift thresholds.
func NewStreamConfig(cfg StreamConfig) (*Stream, error) { return stream.New(cfg) }
