package classify

import (
	"math"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

func TestTransformDimensions(t *testing.T) {
	d := &ts.Dataset{Instances: []ts.Instance{
		{Values: ts.Series{1, 2, 3, 4, 5}, Label: 0},
		{Values: ts.Series{5, 4, 3, 2, 1}, Label: 1},
	}}
	sh := []Shapelet{
		{Class: 0, Values: ts.Series{1, 2}},
		{Class: 1, Values: ts.Series{5, 4}},
		{Class: 0, Values: ts.Series{3}},
	}
	X := Transform(d, sh)
	if len(X) != 2 || len(X[0]) != 3 {
		t.Fatalf("transform shape = %dx%d", len(X), len(X[0]))
	}
	// Instance 0 contains shapelet 0 verbatim → distance 0.
	if X[0][0] > 1e-12 {
		t.Fatalf("X[0][0] = %v", X[0][0])
	}
	// Instance 1 contains shapelet 1 verbatim → distance 0.
	if X[1][1] > 1e-12 {
		t.Fatalf("X[1][1] = %v", X[1][1])
	}
}

func TestTransformWorkersEquality(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	d := &ts.Dataset{}
	for i := 0; i < 20; i++ {
		vals := make(ts.Series, 50)
		for j := range vals {
			vals[j] = rng.NormFloat64()
		}
		d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: i % 2})
	}
	sh := []Shapelet{
		{Class: 0, Values: d.Instances[0].Values[5:15].Clone()},
		{Class: 1, Values: d.Instances[1].Values[20:28].Clone()},
	}
	seq := Transform(d, sh)
	for _, workers := range []int{2, 4, 8} {
		par := TransformWorkers(d, sh, workers)
		for i := range seq {
			for j := range seq[i] {
				if seq[i][j] != par[i][j] {
					t.Fatalf("workers=%d transform differs at %d,%d", workers, i, j)
				}
			}
		}
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 10}, {3, 20}, {5, 30}}
	s, err := FitScaler(X)
	if err != nil {
		t.Fatal(err)
	}
	Z := s.Apply(X)
	for col := 0; col < 2; col++ {
		var mean float64
		for _, row := range Z {
			mean += row[col]
		}
		mean /= float64(len(Z))
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("col %d mean = %v", col, mean)
		}
	}
	// Constant column gets std 1, not a divide-by-zero.
	s, err = FitScaler([][]float64{{7}, {7}})
	if err != nil {
		t.Fatal(err)
	}
	Z = s.Apply([][]float64{{7}})
	if Z[0][0] != 0 {
		t.Fatalf("constant column scaled to %v", Z[0][0])
	}
	if _, err := FitScaler(nil); err == nil {
		t.Fatal("empty matrix should error")
	}
}

func TestAccuracy(t *testing.T) {
	if a := Accuracy([]int{1, 1, 0, 0}, []int{1, 0, 0, 0}); a != 75 {
		t.Fatalf("accuracy = %v", a)
	}
	if a := Accuracy(nil, nil); a != 0 {
		t.Fatalf("empty accuracy = %v", a)
	}
	if a := Accuracy([]int{1}, []int{1, 2}); a != 0 {
		t.Fatalf("mismatched accuracy = %v", a)
	}
}

func separableData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, 0, 2*n)
	y := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		X = append(X, []float64{2 + rng.NormFloat64()*0.3, 2 + rng.NormFloat64()*0.3})
		y = append(y, 1)
		X = append(X, []float64{-2 + rng.NormFloat64()*0.3, -2 + rng.NormFloat64()*0.3})
		y = append(y, 0)
	}
	return X, y
}

func TestSVMSeparable(t *testing.T) {
	X, y := separableData(50, 1)
	m, err := TrainSVM(X, y, SVMConfig{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(X)
	if a := Accuracy(pred, y); a < 99 {
		t.Fatalf("separable accuracy = %v", a)
	}
	// Decision values align with Classes ordering.
	dec := m.Decision([]float64{2, 2})
	if len(dec) != 2 {
		t.Fatalf("decision len = %d", len(dec))
	}
	if dec[1] <= dec[0] { // class 1 lives at (2,2)
		t.Fatalf("decision values = %v", dec)
	}
}

func TestSVMThreeClass(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var X [][]float64
	var y []int
	centers := [][2]float64{{0, 4}, {4, -2}, {-4, -2}}
	for c, ctr := range centers {
		for i := 0; i < 60; i++ {
			X = append(X, []float64{ctr[0] + rng.NormFloat64()*0.4, ctr[1] + rng.NormFloat64()*0.4})
			y = append(y, c)
		}
	}
	m, err := TrainSVM(X, y, SVMConfig{Seed: 4, Epochs: 60})
	if err != nil {
		t.Fatal(err)
	}
	if a := Accuracy(m.PredictAll(X), y); a < 97 {
		t.Fatalf("3-class accuracy = %v", a)
	}
}

func TestSVMErrors(t *testing.T) {
	if _, err := TrainSVM(nil, nil, SVMConfig{}); err == nil {
		t.Fatal("empty training should error")
	}
	if _, err := TrainSVM([][]float64{{1}}, []int{0}, SVMConfig{}); err == nil {
		t.Fatal("single class should error")
	}
	if _, err := TrainSVM([][]float64{{1}}, []int{0, 1}, SVMConfig{}); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestSVMDeterministic(t *testing.T) {
	X, y := separableData(30, 5)
	m1, _ := TrainSVM(X, y, SVMConfig{Seed: 6})
	m2, _ := TrainSVM(X, y, SVMConfig{Seed: 6})
	for ci := range m1.W {
		if m1.B[ci] != m2.B[ci] {
			t.Fatal("same seed should give identical models")
		}
		for j := range m1.W[ci] {
			if m1.W[ci][j] != m2.W[ci][j] {
				t.Fatal("same seed should give identical weights")
			}
		}
	}
}

func nnDataset(seed int64) (train, test []ts.Instance) {
	rng := rand.New(rand.NewSource(seed))
	mk := func(label int, phase float64) ts.Instance {
		vals := make(ts.Series, 40)
		for i := range vals {
			vals[i] = math.Sin(float64(i)/4+phase) + 0.1*rng.NormFloat64()
			if label == 1 {
				vals[i] = math.Abs(vals[i]) // rectified: different shape
			}
		}
		return ts.Instance{Values: vals, Label: label}
	}
	for i := 0; i < 20; i++ {
		train = append(train, mk(0, 0), mk(1, 0))
		test = append(test, mk(0, 0.1), mk(1, 0.1))
	}
	return train, test
}

func TestNNEuclidean(t *testing.T) {
	train, test := nnDataset(7)
	acc := EvaluateNN(train, test, NNConfig{Metric: Euclidean})
	if acc < 90 {
		t.Fatalf("1NN-ED accuracy = %v", acc)
	}
}

func TestNNDTW(t *testing.T) {
	train, test := nnDataset(8)
	acc := EvaluateNN(train, test, NNConfig{Metric: DTWFull})
	if acc < 90 {
		t.Fatalf("1NN-DTW accuracy = %v", acc)
	}
	accW := EvaluateNN(train, test, NNConfig{Metric: DTWWindowed})
	if accW < 90 {
		t.Fatalf("1NN-DTW(w) accuracy = %v", accW)
	}
}

func TestNNDTWHandlesWarping(t *testing.T) {
	// Two classes distinguished by a pattern that shifts in time: DTW should
	// classify perfectly, plain ED may not.
	rng := rand.New(rand.NewSource(9))
	mk := func(label, shift int) ts.Instance {
		vals := make(ts.Series, 50)
		for i := range vals {
			vals[i] = 0.05 * rng.NormFloat64()
		}
		pattern := []float64{0, 2, 4, 2, 0}
		if label == 1 {
			pattern = []float64{0, -2, -4, -2, 0}
		}
		copy(vals[10+shift:], pattern)
		return ts.Instance{Values: vals, Label: label}
	}
	var train, test []ts.Instance
	for i := 0; i < 10; i++ {
		train = append(train, mk(0, i), mk(1, i))
		test = append(test, mk(0, i+15), mk(1, i+15))
	}
	acc := EvaluateNN(train, test, NNConfig{Metric: DTWFull})
	if acc < 95 {
		t.Fatalf("DTW warped accuracy = %v", acc)
	}
}

func TestNNPredictEmptyTrain(t *testing.T) {
	nn := NewNN(nil, NNConfig{})
	if got := nn.Predict(ts.Series{1, 2, 3}); got != -1 {
		t.Fatalf("empty train predict = %d, want -1", got)
	}
}
