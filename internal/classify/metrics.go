package classify

import (
	"fmt"
	"sort"
	"strings"
)

// ConfusionMatrix counts predictions per (truth, predicted) class pair.
type ConfusionMatrix struct {
	Classes []int
	// Counts[i][j] is the number of instances of Classes[i] predicted as
	// Classes[j].
	Counts [][]int
	index  map[int]int
}

// NewConfusionMatrix tallies predictions against the truth.  Classes are the
// union of labels appearing in either slice, sorted.
func NewConfusionMatrix(pred, truth []int) *ConfusionMatrix {
	seen := map[int]bool{}
	for _, v := range pred {
		seen[v] = true
	}
	for _, v := range truth {
		seen[v] = true
	}
	classes := make([]int, 0, len(seen))
	for c := range seen {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	cm := &ConfusionMatrix{Classes: classes, index: map[int]int{}}
	for i, c := range classes {
		cm.index[c] = i
	}
	cm.Counts = make([][]int, len(classes))
	for i := range cm.Counts {
		cm.Counts[i] = make([]int, len(classes))
	}
	n := len(pred)
	if len(truth) < n {
		n = len(truth)
	}
	for i := 0; i < n; i++ {
		cm.Counts[cm.index[truth[i]]][cm.index[pred[i]]]++
	}
	return cm
}

// Accuracy returns the overall accuracy in percent.
func (cm *ConfusionMatrix) Accuracy() float64 {
	var hits, total int
	for i := range cm.Counts {
		for j, n := range cm.Counts[i] {
			total += n
			if i == j {
				hits += n
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(hits) / float64(total)
}

// Precision returns the precision of a class in percent (100 when the class
// was never predicted, the zero-division convention that keeps macro
// averages conservative-free).
func (cm *ConfusionMatrix) Precision(class int) float64 {
	j, ok := cm.index[class]
	if !ok {
		return 0
	}
	var tp, predicted int
	for i := range cm.Counts {
		predicted += cm.Counts[i][j]
	}
	tp = cm.Counts[j][j]
	if predicted == 0 {
		return 100
	}
	return 100 * float64(tp) / float64(predicted)
}

// Recall returns the recall of a class in percent (100 when the class has no
// instances).
func (cm *ConfusionMatrix) Recall(class int) float64 {
	i, ok := cm.index[class]
	if !ok {
		return 0
	}
	var actual int
	for _, n := range cm.Counts[i] {
		actual += n
	}
	if actual == 0 {
		return 100
	}
	return 100 * float64(cm.Counts[i][i]) / float64(actual)
}

// F1 returns the harmonic mean of precision and recall, in percent.
func (cm *ConfusionMatrix) F1(class int) float64 {
	p := cm.Precision(class)
	r := cm.Recall(class)
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages F1 over classes, in percent.
func (cm *ConfusionMatrix) MacroF1() float64 {
	if len(cm.Classes) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cm.Classes {
		sum += cm.F1(c)
	}
	return sum / float64(len(cm.Classes))
}

// String renders the matrix with truth in rows and predictions in columns.
func (cm *ConfusionMatrix) String() string {
	var sb strings.Builder
	sb.WriteString("truth\\pred")
	for _, c := range cm.Classes {
		fmt.Fprintf(&sb, "%8d", c)
	}
	sb.WriteByte('\n')
	for i, c := range cm.Classes {
		fmt.Fprintf(&sb, "%10d", c)
		for j := range cm.Classes {
			fmt.Fprintf(&sb, "%8d", cm.Counts[i][j])
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
