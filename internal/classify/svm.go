package classify

import (
	"context"
	"math"
	"math/rand"
	"sort"
	"strconv"

	"ips/internal/errs"
	"ips/internal/obs"
)

// SVMConfig parameterises TrainSVM.
type SVMConfig struct {
	// Lambda is the L2 regularisation strength; the solver uses the
	// per-example budget C = 1/(Lambda·n).  When zero it defaults to 1/n,
	// i.e. C = 1.
	Lambda float64
	// Epochs bounds the number of dual coordinate descent passes
	// (default 1000; the solver stops earlier on convergence).
	Epochs int
	// Seed drives the coordinate visiting order.
	Seed int64
}

func (c SVMConfig) defaults(n int) SVMConfig {
	if c.Lambda <= 0 {
		c.Lambda = 1 / float64(n)
	}
	if c.Epochs <= 0 {
		c.Epochs = 1000
	}
	return c
}

// SVM is a one-vs-rest linear-kernel support vector machine (the classifier
// the paper applies to shapelet-transformed data), trained by dual
// coordinate descent (Hsieh et al., the LIBLINEAR L1-loss solver).
type SVM struct {
	Classes []int
	// W[c] is the weight vector for class Classes[c]; B[c] its bias.
	W [][]float64
	B []float64
}

// TrainSVM fits one binary hinge-loss SVM per class on features X with
// labels y.
//
//ips:blocking
func TrainSVM(X [][]float64, y []int, cfg SVMConfig) (*SVM, error) {
	return TrainSVMSpan(X, y, cfg, nil)
}

// TrainSVMSpan is TrainSVMCtx without cancellation (a background context).
//
//ips:blocking
func TrainSVMSpan(X [][]float64, y []int, cfg SVMConfig, sp *obs.Span) (*SVM, error) {
	return TrainSVMCtx(context.Background(), X, y, cfg, sp)
}

// TrainSVMCtx is TrainSVM with observability and cooperative cancellation:
// a sub-span per one-vs-rest problem annotated with the coordinate-descent
// passes it took to converge, and a classify.svm.passes counter totalling
// them.  A nil span disables all of it; the trained weights are identical
// either way.  Cancellation is checked per coordinate-descent pass; a
// cancelled run returns a nil model and an error matching errs.ErrCanceled.
//
//ips:blocking
func TrainSVMCtx(ctx context.Context, X [][]float64, y []int, cfg SVMConfig, sp *obs.Span) (*SVM, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errs.BadInput(errs.StageTrain, "classify.svm", "",
			"bad training shape: %d rows, %d labels", len(X), len(y))
	}
	cfg = cfg.defaults(len(X))
	dim := len(X[0])
	classSet := map[int]bool{}
	for _, c := range y {
		classSet[c] = true
	}
	classes := make([]int, 0, len(classSet))
	for c := range classSet {
		classes = append(classes, c)
	}
	sort.Ints(classes)
	if len(classes) < 2 {
		return nil, errs.BadInput(errs.StageTrain, "classify.svm", "",
			"need at least two classes, have %d", len(classes))
	}
	passesCtr := sp.Metrics().Counter("classify.svm.passes")
	m := &SVM{Classes: classes, W: make([][]float64, len(classes)), B: make([]float64, len(classes))}
	for ci, class := range classes {
		csp := sp.Child("svm.class-" + strconv.Itoa(class))
		w, b, passes, err := dualCD(ctx, X, y, class, dim, cfg)
		passesCtr.Add(int64(passes))
		csp.SetInt("passes", int64(passes))
		csp.End()
		if err != nil {
			return nil, err
		}
		m.W[ci] = w
		m.B[ci] = b
	}
	return m, nil
}

// dualCD solves the binary "class vs rest" L1-loss SVM dual by coordinate
// descent and reports how many passes it took.  The bias is handled by
// augmenting each example with a constant feature.  The context is checked
// once per pass, bounding cancellation latency to one O(n·dim) sweep.
func dualCD(ctx context.Context, X [][]float64, y []int, class, dim int, cfg SVMConfig) ([]float64, float64, int, error) {
	n := len(X)
	C := 1 / (cfg.Lambda * float64(n))
	const biasFeature = 1.0
	// Precompute labels and Q_ii = ‖x_i‖² + bias².
	labels := make([]float64, n)
	qii := make([]float64, n)
	for i, row := range X {
		labels[i] = -1
		if y[i] == class {
			labels[i] = 1
		}
		var q float64
		for _, v := range row {
			q += v * v
		}
		qii[i] = q + biasFeature*biasFeature
	}
	alpha := make([]float64, n)
	w := make([]float64, dim)
	var b float64
	rng := rand.New(rand.NewSource(cfg.Seed + int64(class)))
	order := rng.Perm(n)
	const tol = 1e-8
	passes := 0
	for pass := 0; pass < cfg.Epochs; pass++ {
		if err := errs.Ctx(ctx, errs.StageTrain, "classify.svm"); err != nil {
			return nil, 0, passes, err
		}
		passes++
		maxDelta := 0.0
		for _, i := range order {
			if qii[i] == 0 {
				continue
			}
			// Gradient of the dual objective for coordinate i.
			var score float64
			for j, v := range X[i] {
				score += w[j] * v
			}
			score += b * biasFeature
			g := labels[i]*score - 1
			old := alpha[i]
			next := math.Min(math.Max(old-g/qii[i], 0), C)
			//lint:ignore ipslint/floateq no-op update check: both sides come from the same clamp, so equality is exact
			if next == old {
				continue
			}
			d := (next - old) * labels[i]
			for j, v := range X[i] {
				w[j] += d * v
			}
			b += d * biasFeature
			alpha[i] = next
			if delta := math.Abs(next - old); delta > maxDelta {
				maxDelta = delta
			}
		}
		if maxDelta < tol {
			break
		}
	}
	return w, b, passes, nil
}

// Decision returns the decision value of each class for x, aligned with
// m.Classes.
func (m *SVM) Decision(x []float64) []float64 {
	out := make([]float64, len(m.Classes))
	m.DecisionInto(x, out)
	return out
}

// DecisionInto writes the decision value of each class for x into dec
// (len(dec) must equal len(m.Classes)).  It is the allocation-free form of
// Decision for serving loops that own their scratch.
//
//ips:hotpath
func (m *SVM) DecisionInto(x, dec []float64) {
	for ci := range m.Classes {
		var s float64
		for j, v := range x {
			s += m.W[ci][j] * v
		}
		dec[ci] = s + m.B[ci]
	}
}

// Predict returns the class with the highest decision value.
func (m *SVM) Predict(x []float64) int {
	dec := m.Decision(x)
	best := 0
	for i := 1; i < len(dec); i++ {
		if dec[i] > dec[best] {
			best = i
		}
	}
	return m.Classes[best]
}

// PredictRow is Predict with caller-owned decision scratch (len(dec) must
// equal len(m.Classes)); it allocates nothing.
//
//ips:hotpath
func (m *SVM) PredictRow(x, dec []float64) int {
	m.DecisionInto(x, dec)
	best := 0
	for i := 1; i < len(dec); i++ {
		if dec[i] > dec[best] {
			best = i
		}
	}
	return m.Classes[best]
}

// PredictAll classifies every row of X.
func (m *SVM) PredictAll(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = m.Predict(x)
	}
	return out
}
