package classify

import (
	"math"
	"strings"
	"testing"
)

func TestConfusionMatrixCounts(t *testing.T) {
	truth := []int{0, 0, 1, 1, 1, 2}
	pred := []int{0, 1, 1, 1, 0, 2}
	cm := NewConfusionMatrix(pred, truth)
	if len(cm.Classes) != 3 {
		t.Fatalf("classes = %v", cm.Classes)
	}
	// truth 0: one correct, one as 1.
	if cm.Counts[0][0] != 1 || cm.Counts[0][1] != 1 {
		t.Fatalf("row 0 = %v", cm.Counts[0])
	}
	// truth 1: two correct, one as 0.
	if cm.Counts[1][1] != 2 || cm.Counts[1][0] != 1 {
		t.Fatalf("row 1 = %v", cm.Counts[1])
	}
	if cm.Counts[2][2] != 1 {
		t.Fatalf("row 2 = %v", cm.Counts[2])
	}
	if got := cm.Accuracy(); math.Abs(got-100*4.0/6) > 1e-9 {
		t.Fatalf("accuracy = %v", got)
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	truth := []int{0, 0, 0, 1, 1}
	pred := []int{0, 0, 1, 1, 1}
	cm := NewConfusionMatrix(pred, truth)
	// Class 0: precision 2/2, recall 2/3.
	if p := cm.Precision(0); math.Abs(p-100) > 1e-9 {
		t.Fatalf("precision(0) = %v", p)
	}
	if r := cm.Recall(0); math.Abs(r-100*2.0/3) > 1e-9 {
		t.Fatalf("recall(0) = %v", r)
	}
	// Class 1: precision 2/3, recall 2/2.
	if p := cm.Precision(1); math.Abs(p-100*2.0/3) > 1e-9 {
		t.Fatalf("precision(1) = %v", p)
	}
	if r := cm.Recall(1); math.Abs(r-100) > 1e-9 {
		t.Fatalf("recall(1) = %v", r)
	}
	f1 := cm.F1(0)
	want := 2 * 100 * (100 * 2.0 / 3) / (100 + 100*2.0/3)
	if math.Abs(f1-want) > 1e-9 {
		t.Fatalf("F1(0) = %v, want %v", f1, want)
	}
	if m := cm.MacroF1(); m <= 0 || m > 100 {
		t.Fatalf("macro F1 = %v", m)
	}
	// Unknown class.
	if cm.Precision(9) != 0 || cm.Recall(9) != 0 {
		t.Fatal("unknown class metrics should be 0")
	}
}

func TestMetricsEdgeCases(t *testing.T) {
	// Never-predicted class: precision convention 100.
	cm := NewConfusionMatrix([]int{0, 0}, []int{0, 1})
	if p := cm.Precision(1); p != 100 {
		t.Fatalf("never-predicted precision = %v", p)
	}
	if r := cm.Recall(1); r != 0 {
		t.Fatalf("recall of missed class = %v", r)
	}
	// Empty matrix.
	empty := NewConfusionMatrix(nil, nil)
	if empty.Accuracy() != 0 || empty.MacroF1() != 0 {
		t.Fatal("empty matrix metrics should be 0")
	}
	// Mismatched lengths tally only the overlap.
	cm = NewConfusionMatrix([]int{0}, []int{0, 1})
	if cm.Counts[0][0] != 1 {
		t.Fatal("overlap tally wrong")
	}
}

func TestConfusionMatrixString(t *testing.T) {
	cm := NewConfusionMatrix([]int{0, 1}, []int{0, 1})
	s := cm.String()
	if !strings.Contains(s, "truth\\pred") {
		t.Fatalf("rendering = %q", s)
	}
	if !strings.Contains(s, "1") {
		t.Fatal("rendering missing counts")
	}
}
