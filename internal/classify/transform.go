// Package classify provides the classification substrate: the shapelet
// transform (Def. 7 of the IPS paper), a one-vs-rest linear SVM trained with
// Pegasos SGD (the paper's final classifier), 1NN-ED and 1NN-DTW baselines
// (Table II/VI), and evaluation helpers.
package classify

import (
	"context"
	"errors"
	"math"
	"sync"

	"ips/internal/dist"
	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Shapelet is a discovered shapelet: a subsequence representing a class.
type Shapelet struct {
	Class  int
	Values ts.Series
	// Score is the utility the discovery method assigned (higher = better);
	// informational only.
	Score float64
}

// Transform maps every instance to its shapelet-transform embedding
// (d_{j,1}, …, d_{j,|S|}) where d_{j,i} = dist(T_j, S_i) under Def. 4.
func Transform(d *ts.Dataset, shapelets []Shapelet) [][]float64 {
	return TransformWorkers(d, shapelets, 1)
}

// TransformWorkers is Transform with the per-instance embedding computed by
// the given number of goroutines (<=1 means sequential).  The output is
// identical for any worker count.
func TransformWorkers(d *ts.Dataset, shapelets []Shapelet, workers int) [][]float64 {
	return TransformSpan(d, shapelets, workers, nil)
}

// TransformSpan is TransformWorkers with observability: span attributes for
// the embedding shape and kernel mix, a classify.transform.dists counter of
// sliding Def. 4 distance evaluations, and the dist.* engine counters.
func TransformSpan(d *ts.Dataset, shapelets []Shapelet, workers int, sp *obs.Span) [][]float64 {
	return TransformCached(d, shapelets, workers, sp, nil)
}

// TransformCached is TransformCtx without cancellation (a background
// context); see TransformCtx for the cache semantics.
func TransformCached(d *ts.Dataset, shapelets []Shapelet, workers int, sp *obs.Span, cache *dist.Cache) [][]float64 {
	X, err := TransformCtx(context.Background(), d, shapelets, workers, sp, cache)
	if err != nil {
		// Unreachable: a background context never cancels and the embedding
		// has no other failure mode.
		return nil
	}
	return X
}

// TransformCtx is the shapelet transform with cooperative cancellation and
// an optional prepared-series cache; it delegates to TransformWith with the
// package-level DefaultKernel and DefaultPrecision knobs.
func TransformCtx(ctx context.Context, d *ts.Dataset, shapelets []Shapelet, workers int, sp *obs.Span, cache *dist.Cache) ([][]float64, error) {
	return TransformWith(ctx, d, shapelets, TransformConfig{
		Workers: workers, Span: sp, Cache: cache,
		Kernel: DefaultKernel, Precision: DefaultPrecision,
	})
}

// TransformConfig parameterises TransformWith.  The zero value is a
// sequential, uncached, auto-kernel, float64 transform.
type TransformConfig struct {
	// Workers is the per-instance embedding fan-out (<=1 means sequential).
	// Output is identical for any value.
	Workers int
	// Span receives the embedding-shape and kernel-mix attributes.
	Span *obs.Span
	// Cache, when non-nil, memoises prepared per-series statistics across
	// calls (train/test splits sharing storage, cross-validation folds);
	// nil prepares per call.
	Cache *dist.Cache
	// Kernel forces the distance kernel (dist.KernelAuto selects per query
	// length).  Kernel choice never changes results.
	Kernel dist.Kernel
	// Precision selects the kernel arithmetic width.  The float64 default is
	// byte-identical to the per-pair ts.Dist loop; dist.PrecisionFloat32 is
	// the opt-in approximate throughput variant (see dist.Precision).
	Precision dist.Precision
}

// TransformWith is the shapelet transform with cooperative cancellation and
// the full engine configuration.
//
// Each instance's embedding row is one batched engine evaluation: the
// shapelets are grouped by length once up front, and every row shares the
// per-(series, length) sliding statistics.  Each worker owns a dist.Scratch
// arena, so the per-group working set is allocated once per worker and
// reused across every instance.  At the default float64 precision the output
// is byte-identical to the per-pair ts.Dist loop for any worker count and
// either kernel.
//
// Cancellation is checked per instance: once ctx is done the workers keep
// draining the job channel (so the producer never blocks) but skip the
// embeddings, and TransformWith returns a nil matrix with an error matching
// errs.ErrCanceled.  No partially-written matrix escapes.
func TransformWith(ctx context.Context, d *ts.Dataset, shapelets []Shapelet, cfg TransformConfig) ([][]float64, error) {
	workers, sp, cache := cfg.Workers, cfg.Span, cfg.Cache
	sp.SetInt("instances", int64(len(d.Instances)))
	sp.SetInt("shapelets", int64(len(shapelets)))
	sp.SetInt("workers", int64(max(workers, 1)))
	sp.SetString("precision", cfg.Precision.String())
	sp.Metrics().Counter("classify.transform.dists").Add(int64(len(d.Instances)) * int64(len(shapelets)))
	queries := make([][]float64, len(shapelets))
	for i, s := range shapelets {
		queries[i] = s.Values
	}
	batch := dist.NewBatch(queries)
	batch.SetKernel(cfg.Kernel)
	batch.SetPrecision(cfg.Precision)
	out := make([][]float64, len(d.Instances))
	var total dist.Counts
	embed := func(j int, c *dist.Counts, s *dist.Scratch) error {
		row := make([]float64, len(shapelets))
		if err := embedRow(ctx, batch, cache, d.Instances[j].Values, row, c, s); err != nil {
			return err // cancellation mid-row: row is partial, drop it
		}
		out[j] = row
		return nil
	}
	if workers <= 1 || len(d.Instances) < 2 {
		var scratch dist.Scratch
		for j := range d.Instances {
			if err := errs.Ctx(ctx, errs.StageTransform, "classify.transform"); err != nil {
				return nil, err
			}
			if err := embed(j, &total, &scratch); err != nil {
				return nil, err
			}
		}
	} else {
		var wg sync.WaitGroup
		var mu sync.Mutex
		ch := make(chan int)
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				var local dist.Counts
				var scratch dist.Scratch
				for j := range ch {
					if ctx.Err() != nil {
						continue // drain without working
					}
					if err := embed(j, &local, &scratch); err != nil {
						continue // the post-Wait ctx check reports it
					}
				}
				mu.Lock()
				total.Merge(local)
				mu.Unlock()
			}()
		}
		for j := range d.Instances {
			ch <- j
		}
		close(ch)
		wg.Wait()
		if err := errs.Ctx(ctx, errs.StageTransform, "classify.transform"); err != nil {
			return nil, err
		}
	}
	total.Annotate(sp)
	total.AddTo(sp.Metrics())
	obs.Log(ctx).Debug("shapelet transform done", "op", "classify.transform",
		"instances", len(d.Instances), "shapelets", len(shapelets),
		"workers", max(workers, 1), "rolling", total.Rolling, "fft", total.FFT)
	return out, nil
}

// embedRow fills row with one instance's shapelet-transform embedding: a
// single batched engine evaluation against the instance's prepared series,
// drawing its working set from the worker's scratch arena.  This is the
// transform's per-instance scoring path — everything it calls must stay
// allocation-free inside its loops.
//
//ips:hotpath
func embedRow(ctx context.Context, batch *dist.Batch, cache *dist.Cache, series []float64, row []float64, c *dist.Counts, s *dist.Scratch) error {
	p := cache.Prepared(series, c)
	return batch.EvalScratchCtx(ctx, p, row, c, s)
}

// DefaultKernel forces the distance kernel for every transform (KernelAuto
// selects per query length).  It exists for the CLIs' -dist-kernel debugging
// flag and for benchmarks; kernel choice never changes results.  Set it
// before any transform runs, not concurrently with one.
var DefaultKernel = dist.KernelAuto

// DefaultPrecision selects the kernel arithmetic width for every transform
// routed through TransformCtx and its wrappers.  It exists for the CLIs'
// -precision flag; the float64 default keeps the byte-determinism contract.
// Set it before any transform runs, not concurrently with one.
var DefaultPrecision = dist.PrecisionFloat64

// Scaler standardises features to zero mean and unit variance, fitted on
// training data and applied to both splits.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature mean and std over X.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, errors.New("classify: empty feature matrix")
	}
	k := len(X[0])
	s := &Scaler{Mean: make([]float64, k), Std: make([]float64, k)}
	for _, row := range X {
		for i, v := range row {
			s.Mean[i] += v
		}
	}
	n := float64(len(X))
	for i := range s.Mean {
		s.Mean[i] /= n
	}
	for _, row := range X {
		for i, v := range row {
			d := v - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / n)
		if s.Std[i] < 1e-12 {
			s.Std[i] = 1
		}
	}
	return s, nil
}

// Apply returns a standardised copy of X.
func (s *Scaler) Apply(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for j, row := range X {
		r := make([]float64, len(row))
		for i, v := range row {
			r[i] = (v - s.Mean[i]) / s.Std[i]
		}
		out[j] = r
	}
	return out
}

// ApplyRowInto standardises one feature row into dst (len(dst) must equal
// len(row)).  It is the allocation-free single-row form of Apply for serving
// loops that own their output storage.
//
//ips:hotpath
func (s *Scaler) ApplyRowInto(dst, row []float64) {
	for i, v := range row {
		dst[i] = (v - s.Mean[i]) / s.Std[i]
	}
}

// Accuracy returns the fraction of predictions matching the truth, in
// percent (the unit used throughout the paper's tables).
func Accuracy(pred, truth []int) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(pred))
}
