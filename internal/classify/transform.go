// Package classify provides the classification substrate: the shapelet
// transform (Def. 7 of the IPS paper), a one-vs-rest linear SVM trained with
// Pegasos SGD (the paper's final classifier), 1NN-ED and 1NN-DTW baselines
// (Table II/VI), and evaluation helpers.
package classify

import (
	"errors"
	"math"
	"sync"

	"ips/internal/obs"
	"ips/internal/ts"
)

// Shapelet is a discovered shapelet: a subsequence representing a class.
type Shapelet struct {
	Class  int
	Values ts.Series
	// Score is the utility the discovery method assigned (higher = better);
	// informational only.
	Score float64
}

// Transform maps every instance to its shapelet-transform embedding
// (d_{j,1}, …, d_{j,|S|}) where d_{j,i} = dist(T_j, S_i) under Def. 4.
func Transform(d *ts.Dataset, shapelets []Shapelet) [][]float64 {
	return TransformWorkers(d, shapelets, 1)
}

// TransformWorkers is Transform with the per-instance embedding computed by
// the given number of goroutines (<=1 means sequential).  The output is
// identical for any worker count.
func TransformWorkers(d *ts.Dataset, shapelets []Shapelet, workers int) [][]float64 {
	return TransformSpan(d, shapelets, workers, nil)
}

// TransformSpan is TransformWorkers with observability: span attributes for
// the embedding shape and a classify.transform.dists counter of sliding
// Def. 4 distance evaluations.  The count is derived arithmetically
// (instances × shapelets), so the embedding loop itself carries no
// instrumentation cost.
func TransformSpan(d *ts.Dataset, shapelets []Shapelet, workers int, sp *obs.Span) [][]float64 {
	sp.SetInt("instances", int64(len(d.Instances)))
	sp.SetInt("shapelets", int64(len(shapelets)))
	sp.SetInt("workers", int64(max(workers, 1)))
	sp.Metrics().Counter("classify.transform.dists").Add(int64(len(d.Instances)) * int64(len(shapelets)))
	out := make([][]float64, len(d.Instances))
	embed := func(j int) {
		row := make([]float64, len(shapelets))
		for i, s := range shapelets {
			row[i] = ts.Dist(s.Values, d.Instances[j].Values)
		}
		out[j] = row
	}
	if workers <= 1 || len(d.Instances) < 2 {
		for j := range d.Instances {
			embed(j)
		}
		return out
	}
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := range ch {
				embed(j)
			}
		}()
	}
	for j := range d.Instances {
		ch <- j
	}
	close(ch)
	wg.Wait()
	return out
}

// Scaler standardises features to zero mean and unit variance, fitted on
// training data and applied to both splits.
type Scaler struct {
	Mean []float64
	Std  []float64
}

// FitScaler computes per-feature mean and std over X.
func FitScaler(X [][]float64) (*Scaler, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, errors.New("classify: empty feature matrix")
	}
	k := len(X[0])
	s := &Scaler{Mean: make([]float64, k), Std: make([]float64, k)}
	for _, row := range X {
		for i, v := range row {
			s.Mean[i] += v
		}
	}
	n := float64(len(X))
	for i := range s.Mean {
		s.Mean[i] /= n
	}
	for _, row := range X {
		for i, v := range row {
			d := v - s.Mean[i]
			s.Std[i] += d * d
		}
	}
	for i := range s.Std {
		s.Std[i] = math.Sqrt(s.Std[i] / n)
		if s.Std[i] < 1e-12 {
			s.Std[i] = 1
		}
	}
	return s, nil
}

// Apply returns a standardised copy of X.
func (s *Scaler) Apply(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for j, row := range X {
		r := make([]float64, len(row))
		for i, v := range row {
			r[i] = (v - s.Mean[i]) / s.Std[i]
		}
		out[j] = r
	}
	return out
}

// Accuracy returns the fraction of predictions matching the truth, in
// percent (the unit used throughout the paper's tables).
func Accuracy(pred, truth []int) float64 {
	if len(pred) == 0 || len(pred) != len(truth) {
		return 0
	}
	hits := 0
	for i := range pred {
		if pred[i] == truth[i] {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(pred))
}
