package classify

import (
	"fmt"
	"testing"

	"ips/internal/ts"
	"ips/internal/ucr"
)

// BenchmarkTransform measures the shapelet transform over an
// (instances × shapelet length) grid, on the batched engine and on the
// naive per-pair ts.Dist loop it replaced.  Single worker throughout: the
// engine/naive ratio is the algorithmic speedup (shared sliding statistics,
// norm-bound pruning, fft crossover), uninflated by parallelism.
func BenchmarkTransform(b *testing.B) {
	datasets := []struct {
		name    string
		lengths []int
	}{
		{"GunPoint", []int{16, 64, 100}}, // 150-point series: rolling kernel
		{"Mallat", []int{64, 512}},       // 1024-point series: long-query rolling stress
		{"HandOutlines", []int{1024}},    // 2709-point series: auto crosses to fft
	}
	for _, ds := range datasets {
		for _, instances := range []int{10, 40} {
			train, _, err := ucr.GenerateByName(ds.name, ucr.GenConfig{Seed: 1, MaxTrain: instances, MaxTest: 1})
			if err != nil {
				b.Fatal(err)
			}
			for _, L := range ds.lengths {
				sh := make([]Shapelet, 10)
				for i := range sh {
					in := train.Instances[i%len(train.Instances)]
					at := (i * 17) % (len(in.Values) - L + 1)
					sh[i] = Shapelet{Class: in.Label, Values: in.Values[at : at+L].Clone()}
				}
				label := fmt.Sprintf("%s/inst=%d/L=%d", ds.name, len(train.Instances), L)
				b.Run("engine/"+label, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						TransformWorkers(train, sh, 1)
					}
				})
				b.Run("naive/"+label, func(b *testing.B) {
					b.ReportAllocs()
					for i := 0; i < b.N; i++ {
						out := make([][]float64, len(train.Instances))
						for j, in := range train.Instances {
							row := make([]float64, len(sh))
							for si, s := range sh {
								row[si] = ts.Dist(s.Values, in.Values)
							}
							out[j] = row
						}
					}
				})
			}
		}
	}
}
