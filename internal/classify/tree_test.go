package classify

import (
	"math/rand"
	"testing"
)

func TestTreeSeparable(t *testing.T) {
	X, y := separableData(40, 1)
	tree, err := TrainTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a := Accuracy(tree.PredictAll(X), y); a != 100 {
		t.Fatalf("separable tree accuracy = %v", a)
	}
	if tree.Depth() < 1 {
		t.Fatal("tree should split at least once")
	}
}

func TestTreeXOR(t *testing.T) {
	// XOR needs depth >= 2; a linear model cannot solve it, a tree can.
	rng := rand.New(rand.NewSource(2))
	var X [][]float64
	var y []int
	for i := 0; i < 200; i++ {
		a := rng.Float64()*2 - 1
		b := rng.Float64()*2 - 1
		label := 0
		if (a > 0) != (b > 0) {
			label = 1
		}
		X = append(X, []float64{a, b})
		y = append(y, label)
	}
	tree, err := TrainTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if a := Accuracy(tree.PredictAll(X), y); a < 95 {
		t.Fatalf("XOR tree accuracy = %v", a)
	}
}

func TestTreeDepthLimit(t *testing.T) {
	X, y := separableData(40, 3)
	tree, err := TrainTree(X, y, TreeConfig{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tree.Depth(); d > 1 {
		t.Fatalf("depth = %d, want <= 1", d)
	}
}

func TestTreeMinLeaf(t *testing.T) {
	// With MinLeaf equal to the class size, the single allowed split still
	// respects the minimum.
	X := [][]float64{{0}, {0.1}, {0.9}, {1}}
	y := []int{0, 0, 1, 1}
	tree, err := TrainTree(X, y, TreeConfig{MinLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a := Accuracy(tree.PredictAll(X), y); a != 100 {
		t.Fatalf("minleaf accuracy = %v", a)
	}
}

func TestTreePureLeafAndErrors(t *testing.T) {
	// Single-class data produces a leaf-only tree.
	X := [][]float64{{1}, {2}}
	y := []int{7, 7}
	tree, err := TrainTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Depth() != 0 || tree.Predict([]float64{99}) != 7 {
		t.Fatal("pure data should give a single leaf")
	}
	if _, err := TrainTree(nil, nil, TreeConfig{}); err == nil {
		t.Fatal("empty training should error")
	}
}

func TestTreeConstantFeatures(t *testing.T) {
	// Identical feature vectors with mixed labels: no valid split exists,
	// so the tree must fall back to a majority leaf without looping.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0}
	tree, err := TrainTree(X, y, TreeConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Predict([]float64{1, 1}) != 0 {
		t.Fatal("majority leaf should predict class 0")
	}
}
