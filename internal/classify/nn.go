package classify

import (
	"math"

	"ips/internal/ts"
)

// Metric selects the distance used by the nearest-neighbour classifier.
type Metric int

const (
	// Euclidean is plain pointwise Euclidean distance (1NN-ED).
	Euclidean Metric = iota
	// DTWFull is unconstrained dynamic time warping (1NN-DTW).
	DTWFull
	// DTWWindowed is DTW constrained to a Sakoe-Chiba band whose half-width
	// is WindowRatio of the series length (the UCR "Rn" convention).
	DTWWindowed
)

// NNConfig parameterises the nearest-neighbour classifier.
type NNConfig struct {
	Metric Metric
	// WindowRatio is the Sakoe-Chiba band half-width as a fraction of the
	// series length; used only with DTWWindowed (default 0.1).
	WindowRatio float64
}

// NN is a 1-nearest-neighbour classifier over raw series.
type NN struct {
	train []ts.Instance
	cfg   NNConfig
}

// NewNN builds a 1NN classifier on the training instances.
func NewNN(train []ts.Instance, cfg NNConfig) *NN {
	if cfg.Metric == DTWWindowed && cfg.WindowRatio <= 0 {
		cfg.WindowRatio = 0.1
	}
	return &NN{train: train, cfg: cfg}
}

func (n *NN) dist(a, b ts.Series, bestSoFar float64) float64 {
	switch n.cfg.Metric {
	case DTWFull:
		return ts.DTW(a, b, -1)
	case DTWWindowed:
		w := int(n.cfg.WindowRatio * float64(len(a)))
		return ts.DTW(a, b, w)
	default:
		// Early-abandoning Euclidean distance.
		limit := bestSoFar * bestSoFar
		var s float64
		for i := range a {
			d := a[i] - b[i]
			s += d * d
			if s > limit {
				return math.Inf(1)
			}
		}
		return math.Sqrt(s)
	}
}

// Predict returns the label of the nearest training instance.
func (n *NN) Predict(x ts.Series) int {
	best := math.Inf(1)
	label := -1
	for _, tr := range n.train {
		d := n.dist(x, tr.Values, best)
		if d < best {
			best = d
			label = tr.Label
		}
	}
	return label
}

// PredictAll classifies every instance of the test set.
func (n *NN) PredictAll(test []ts.Instance) []int {
	out := make([]int, len(test))
	for i, in := range test {
		out[i] = n.Predict(in.Values)
	}
	return out
}

// EvaluateNN trains a 1NN classifier on train and returns its accuracy (%) on
// test.
func EvaluateNN(train, test []ts.Instance, cfg NNConfig) float64 {
	nn := NewNN(train, cfg)
	pred := nn.PredictAll(test)
	truth := make([]int, len(test))
	for i, in := range test {
		truth[i] = in.Label
	}
	return Accuracy(pred, truth)
}
