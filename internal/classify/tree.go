package classify

import (
	"errors"
	"math"
	"sort"
)

// TreeConfig parameterises decision-tree training.
type TreeConfig struct {
	// MaxDepth bounds the tree depth (default 16).
	MaxDepth int
	// MinLeaf is the minimum samples per leaf (default 1).
	MinLeaf int
}

func (c TreeConfig) defaults() TreeConfig {
	if c.MaxDepth <= 0 {
		c.MaxDepth = 16
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 1
	}
	return c
}

// treeNode is one node of a CART tree.
type treeNode struct {
	feature   int
	threshold float64
	left      *treeNode
	right     *treeNode
	label     int // leaf prediction when left == nil
}

// Tree is a CART decision tree with Gini-impurity splits, the base learner
// of the Rotation Forest baseline.
type Tree struct {
	root *treeNode
}

// TrainTree fits a CART tree on features X with labels y.
func TrainTree(X [][]float64, y []int, cfg TreeConfig) (*Tree, error) {
	if len(X) == 0 || len(X) != len(y) {
		return nil, errors.New("classify: bad training shape")
	}
	cfg = cfg.defaults()
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	return &Tree{root: growTree(X, y, idx, cfg, 0)}, nil
}

func majority(y []int, idx []int) int {
	counts := map[int]int{}
	for _, i := range idx {
		counts[y[i]]++
	}
	best, bestN := 0, -1
	for label, n := range counts {
		if n > bestN || (n == bestN && label < best) {
			best, bestN = label, n
		}
	}
	return best
}

func gini(counts map[int]int, total int) float64 {
	if total == 0 {
		return 0
	}
	g := 1.0
	for _, n := range counts {
		p := float64(n) / float64(total)
		g -= p * p
	}
	return g
}

func growTree(X [][]float64, y []int, idx []int, cfg TreeConfig, depth int) *treeNode {
	// Pure node or depth/size limits reached → leaf.
	pure := true
	for _, i := range idx[1:] {
		if y[i] != y[idx[0]] {
			pure = false
			break
		}
	}
	if pure || depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &treeNode{label: majority(y, idx)}
	}

	nFeatures := len(X[idx[0]])
	bestFeature, bestThreshold := -1, 0.0
	bestScore := math.Inf(1)
	order := make([]int, len(idx))
	for f := 0; f < nFeatures; f++ {
		copy(order, idx)
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		leftCounts := map[int]int{}
		rightCounts := map[int]int{}
		for _, i := range order {
			rightCounts[y[i]]++
		}
		for pos := 0; pos < len(order)-1; pos++ {
			i := order[pos]
			leftCounts[y[i]]++
			rightCounts[y[i]]--
			if rightCounts[y[i]] == 0 {
				delete(rightCounts, y[i])
			}
			//lint:ignore ipslint/floateq adjacent sorted values: exact tie detection is the split-point definition
			if X[order[pos+1]][f] == X[i][f] {
				continue // split must separate distinct values
			}
			nl, nr := pos+1, len(order)-pos-1
			if nl < cfg.MinLeaf || nr < cfg.MinLeaf {
				continue
			}
			score := (float64(nl)*gini(leftCounts, nl) + float64(nr)*gini(rightCounts, nr)) / float64(len(order))
			if score < bestScore {
				bestScore = score
				bestFeature = f
				bestThreshold = (X[i][f] + X[order[pos+1]][f]) / 2
			}
		}
	}
	if bestFeature < 0 {
		return &treeNode{label: majority(y, idx)}
	}
	var leftIdx, rightIdx []int
	for _, i := range idx {
		if X[i][bestFeature] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) == 0 || len(rightIdx) == 0 {
		return &treeNode{label: majority(y, idx)}
	}
	return &treeNode{
		feature:   bestFeature,
		threshold: bestThreshold,
		left:      growTree(X, y, leftIdx, cfg, depth+1),
		right:     growTree(X, y, rightIdx, cfg, depth+1),
	}
}

// Predict returns the tree's label for x.
func (t *Tree) Predict(x []float64) int {
	node := t.root
	for node.left != nil {
		if x[node.feature] <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.label
}

// PredictAll classifies every row of X.
func (t *Tree) PredictAll(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = t.Predict(x)
	}
	return out
}

// Depth returns the depth of the tree (a single leaf has depth 0).
func (t *Tree) Depth() int {
	var walk func(n *treeNode) int
	walk = func(n *treeNode) int {
		if n == nil || n.left == nil {
			return 0
		}
		l, r := walk(n.left), walk(n.right)
		if r > l {
			l = r
		}
		return 1 + l
	}
	return walk(t.root)
}
