package classify

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"ips/internal/dist"
	"ips/internal/ts"
	"ips/internal/ucr"
)

// fixtureShapelets carves shapelets out of the training instances at the
// given lengths, cycling over instances and offsets so queries of equal
// length still differ.
func fixtureShapelets(d *ts.Dataset, lengths []int) []Shapelet {
	var out []Shapelet
	for si, L := range lengths {
		in := d.Instances[si%len(d.Instances)]
		if L > len(in.Values) {
			L = len(in.Values)
		}
		at := (si * 13) % (len(in.Values) - L + 1)
		out = append(out, Shapelet{Class: in.Label, Values: in.Values[at : at+L].Clone()})
	}
	return out
}

// naiveTransform is the pre-engine reference: one ts.Dist call per
// (instance, shapelet) pair.
func naiveTransform(d *ts.Dataset, shapelets []Shapelet) [][]float64 {
	out := make([][]float64, len(d.Instances))
	for j, in := range d.Instances {
		row := make([]float64, len(shapelets))
		for i, s := range shapelets {
			row[i] = ts.Dist(s.Values, in.Values)
		}
		out[j] = row
	}
	return out
}

func requireBitsEqual(t *testing.T, got, want [][]float64, label string) {
	t.Helper()
	for j := range want {
		for i := range want[j] {
			if math.Float64bits(got[j][i]) != math.Float64bits(want[j][i]) {
				t.Fatalf("%s: embedding[%d][%d] = %v (bits %x), want %v (bits %x)",
					label, j, i, got[j][i], math.Float64bits(got[j][i]),
					want[j][i], math.Float64bits(want[j][i]))
			}
		}
	}
}

// TestTransformByteIdenticalUCR pins the engine port's central contract: the
// batched transform is byte-identical to the per-pair ts.Dist loop on UCR
// fixtures, for every worker count and for both kernels.  GunPoint and
// Mallat stay on the rolling kernel under the auto crossover (and the
// forced-kernel pass drives fft over them anyway); HandOutlines' 2709-point
// series with 1024-point shapelets cross into fft under auto.
func TestTransformByteIdenticalUCR(t *testing.T) {
	cases := []struct {
		dataset string
		max     int
		lengths []int
	}{
		{"GunPoint", 20, []int{5, 16, 64, 64, 75, 100, 150}},
		{"Mallat", 6, []int{8, 64, 256, 512, 512, 1024}},
		{"HandOutlines", 4, []int{64, 1024, 1024}},
	}
	for _, tc := range cases {
		train, _, err := ucr.GenerateByName(tc.dataset, ucr.GenConfig{Seed: 1, MaxTrain: tc.max, MaxTest: 1})
		if err != nil {
			t.Fatal(err)
		}
		sh := fixtureShapelets(train, tc.lengths)
		want := naiveTransform(train, sh)
		for _, workers := range []int{1, 2, 3, 8} {
			got := TransformWorkers(train, sh, workers)
			requireBitsEqual(t, got, want, fmt.Sprintf("%s workers=%d", tc.dataset, workers))
		}
		defer func(k dist.Kernel) { DefaultKernel = k }(DefaultKernel)
		for _, kernel := range []dist.Kernel{dist.KernelRolling, dist.KernelFFT} {
			DefaultKernel = kernel
			got := TransformWorkers(train, sh, 2)
			requireBitsEqual(t, got, want, fmt.Sprintf("%s kernel=%v", tc.dataset, kernel))
		}
		DefaultKernel = dist.KernelAuto
	}
}

// TestTransformFloat32WorkersDeterministic pins the float32 variant's
// determinism contract: the opt-in single-precision transform is NOT
// byte-identical to float64 (that's the trade), but it is a pure function of
// the rounded inputs — byte-identical across worker counts and within the
// documented tolerance of the float64 embedding.
func TestTransformFloat32WorkersDeterministic(t *testing.T) {
	train, _, err := ucr.GenerateByName("GunPoint", ucr.GenConfig{Seed: 7, MaxTrain: 16, MaxTest: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := fixtureShapelets(train, []int{8, 16, 64, 64, 100})
	cfg := func(workers int) TransformConfig {
		return TransformConfig{Workers: workers, Precision: dist.PrecisionFloat32}
	}
	ref, err := TransformWith(t.Context(), train, sh, cfg(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 8} {
		got, err := TransformWith(t.Context(), train, sh, cfg(workers))
		if err != nil {
			t.Fatal(err)
		}
		requireBitsEqual(t, got, ref, fmt.Sprintf("float32 workers=%d", workers))
	}
	want := naiveTransform(train, sh)
	for j := range want {
		for i := range want[j] {
			scale := 1.0
			if want[j][i] > scale {
				scale = want[j][i]
			}
			if diff := math.Abs(ref[j][i] - want[j][i]); diff > 1e-3*scale {
				t.Fatalf("float32 embedding[%d][%d] = %v, float64 = %v (diff %v beyond tolerance)",
					j, i, ref[j][i], want[j][i], diff)
			}
		}
	}
}

// TestTransformSharedCacheConcurrent runs several transforms of the same
// dataset concurrently through one prepared-series cache — the
// cross-validation / train-then-test sharing pattern — and requires every
// result byte-identical to the sequential reference.  Run under -race in CI,
// this exercises the cache's once-per-key preparation and the per-Prepared
// FFT transform cache from multiple goroutines.
func TestTransformSharedCacheConcurrent(t *testing.T) {
	train, _, err := ucr.GenerateByName("Mallat", ucr.GenConfig{Seed: 2, MaxTrain: 8, MaxTest: 1})
	if err != nil {
		t.Fatal(err)
	}
	sh := fixtureShapelets(train, []int{16, 64, 300, 512})
	want := naiveTransform(train, sh)
	cache := dist.NewCache()
	var wg sync.WaitGroup
	results := make([][][]float64, 6)
	for g := range results {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			results[g] = TransformCached(train, sh, 1+g%3, nil, cache)
		}(g)
	}
	wg.Wait()
	for g, got := range results {
		requireBitsEqual(t, got, want, fmt.Sprintf("goroutine %d", g))
	}
	if cache.Size() != len(train.Instances) {
		t.Fatalf("cache size = %d, want one entry per instance (%d)", cache.Size(), len(train.Instances))
	}
}
