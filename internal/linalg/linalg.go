// Package linalg provides the small dense linear-algebra kernel needed by
// the Rotation Forest baseline: symmetric eigendecomposition via cyclic
// Jacobi rotations, covariance matrices, and principal component analysis.
package linalg

import (
	"errors"
	"math"
	"sort"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a zero matrix.
func NewMatrix(rows, cols int) *Matrix {
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// At returns element (i, j).
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Mul returns m × other.
func (m *Matrix) Mul(other *Matrix) (*Matrix, error) {
	if m.Cols != other.Rows {
		return nil, errors.New("linalg: dimension mismatch")
	}
	out := NewMatrix(m.Rows, other.Cols)
	for i := 0; i < m.Rows; i++ {
		for k := 0; k < m.Cols; k++ {
			a := m.At(i, k)
			if a == 0 {
				continue
			}
			for j := 0; j < other.Cols; j++ {
				out.Data[i*out.Cols+j] += a * other.At(k, j)
			}
		}
	}
	return out, nil
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	out := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			out.Set(j, i, m.At(i, j))
		}
	}
	return out
}

// Covariance returns the (population) covariance matrix of the rows of X
// (observations in rows, variables in columns) and the column means.
func Covariance(X [][]float64) (*Matrix, []float64, error) {
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, nil, errors.New("linalg: empty data")
	}
	n := len(X)
	d := len(X[0])
	means := make([]float64, d)
	for _, row := range X {
		if len(row) != d {
			return nil, nil, errors.New("linalg: ragged data")
		}
		for j, v := range row {
			means[j] += v
		}
	}
	for j := range means {
		means[j] /= float64(n)
	}
	cov := NewMatrix(d, d)
	for _, row := range X {
		for a := 0; a < d; a++ {
			da := row[a] - means[a]
			for bcol := a; bcol < d; bcol++ {
				cov.Data[a*d+bcol] += da * (row[bcol] - means[bcol])
			}
		}
	}
	for a := 0; a < d; a++ {
		for bcol := a; bcol < d; bcol++ {
			v := cov.At(a, bcol) / float64(n)
			cov.Set(a, bcol, v)
			cov.Set(bcol, a, v)
		}
	}
	return cov, means, nil
}

// JacobiEigen computes the eigenvalues and eigenvectors of a symmetric
// matrix by the cyclic Jacobi method.  Eigenpairs are returned sorted by
// descending eigenvalue; eigenvectors are the columns of the returned
// matrix.
func JacobiEigen(a *Matrix) (values []float64, vectors *Matrix, err error) {
	if a.Rows != a.Cols {
		return nil, nil, errors.New("linalg: matrix not square")
	}
	n := a.Rows
	// Work on a copy.
	w := NewMatrix(n, n)
	copy(w.Data, a.Data)
	v := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		v.Set(i, i, 1)
	}
	const maxSweeps = 100
	const eps = 1e-12
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Off-diagonal Frobenius norm.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += w.At(i, j) * w.At(i, j)
			}
		}
		if off < eps {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := w.At(p, q)
				if math.Abs(apq) < eps {
					continue
				}
				app := w.At(p, p)
				aqq := w.At(q, q)
				theta := (aqq - app) / (2 * apq)
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				c := 1 / math.Sqrt(t*t+1)
				s := t * c
				// Apply the rotation to w (rows and columns p, q).
				for k := 0; k < n; k++ {
					akp := w.At(k, p)
					akq := w.At(k, q)
					w.Set(k, p, c*akp-s*akq)
					w.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk := w.At(p, k)
					aqk := w.At(q, k)
					w.Set(p, k, c*apk-s*aqk)
					w.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate the eigenvectors.
				for k := 0; k < n; k++ {
					vkp := v.At(k, p)
					vkq := v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}
	values = make([]float64, n)
	for i := 0; i < n; i++ {
		values[i] = w.At(i, i)
	}
	// Sort descending by eigenvalue, permuting eigenvector columns.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return values[idx[a]] > values[idx[b]] })
	sortedVals := make([]float64, n)
	vectors = NewMatrix(n, n)
	for newCol, oldCol := range idx {
		sortedVals[newCol] = values[oldCol]
		for k := 0; k < n; k++ {
			vectors.Set(k, newCol, v.At(k, oldCol))
		}
	}
	return sortedVals, vectors, nil
}

// PCA holds a fitted principal component analysis.
type PCA struct {
	Means      []float64
	Components *Matrix // columns are principal axes, descending variance
	Variances  []float64
}

// FitPCA fits a PCA to the rows of X, keeping all components.
func FitPCA(X [][]float64) (*PCA, error) {
	cov, means, err := Covariance(X)
	if err != nil {
		return nil, err
	}
	vals, vecs, err := JacobiEigen(cov)
	if err != nil {
		return nil, err
	}
	return &PCA{Means: means, Components: vecs, Variances: vals}, nil
}

// Transform projects x (a single observation) onto the principal axes.
func (p *PCA) Transform(x []float64) []float64 {
	d := len(p.Means)
	out := make([]float64, d)
	for j := 0; j < d; j++ {
		var s float64
		for i := 0; i < d; i++ {
			s += (x[i] - p.Means[i]) * p.Components.At(i, j)
		}
		out[j] = s
	}
	return out
}
