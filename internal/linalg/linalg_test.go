package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Set(0, 1, 5)
	if m.At(0, 1) != 5 || m.At(1, 2) != 0 {
		t.Fatal("At/Set broken")
	}
	tr := m.Transpose()
	if tr.Rows != 3 || tr.Cols != 2 || tr.At(1, 0) != 5 {
		t.Fatal("transpose broken")
	}
}

func TestMul(t *testing.T) {
	a := NewMatrix(2, 2)
	a.Set(0, 0, 1)
	a.Set(0, 1, 2)
	a.Set(1, 0, 3)
	a.Set(1, 1, 4)
	b := NewMatrix(2, 2)
	b.Set(0, 0, 5)
	b.Set(0, 1, 6)
	b.Set(1, 0, 7)
	b.Set(1, 1, 8)
	c, err := a.Mul(b)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]float64{{19, 22}, {43, 50}}
	for i := 0; i < 2; i++ {
		for j := 0; j < 2; j++ {
			if !approx(c.At(i, j), want[i][j], 1e-12) {
				t.Fatalf("c[%d][%d] = %v", i, j, c.At(i, j))
			}
		}
	}
	if _, err := a.Mul(NewMatrix(3, 2)); err == nil {
		t.Fatal("dimension mismatch should error")
	}
}

func TestCovariance(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 6}, {5, 10}}
	cov, means, err := Covariance(X)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(means[0], 3, 1e-12) || !approx(means[1], 6, 1e-12) {
		t.Fatalf("means = %v", means)
	}
	// Var(x) = 8/3, Cov(x,y) = 16/3, Var(y) = 32/3.
	if !approx(cov.At(0, 0), 8.0/3, 1e-9) || !approx(cov.At(0, 1), 16.0/3, 1e-9) ||
		!approx(cov.At(1, 1), 32.0/3, 1e-9) {
		t.Fatalf("cov = %v", cov.Data)
	}
	if !approx(cov.At(0, 1), cov.At(1, 0), 1e-12) {
		t.Fatal("covariance not symmetric")
	}
	if _, _, err := Covariance(nil); err == nil {
		t.Fatal("empty data should error")
	}
	if _, _, err := Covariance([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged data should error")
	}
}

func TestJacobiEigenKnown(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 (vector [1,1]/√2) and 1 ([1,-1]/√2).
	a := NewMatrix(2, 2)
	a.Set(0, 0, 2)
	a.Set(0, 1, 1)
	a.Set(1, 0, 1)
	a.Set(1, 1, 2)
	vals, vecs, err := JacobiEigen(a)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(vals[0], 3, 1e-9) || !approx(vals[1], 1, 1e-9) {
		t.Fatalf("eigenvalues = %v", vals)
	}
	// First eigenvector proportional to [1,1].
	r := vecs.At(0, 0) / vecs.At(1, 0)
	if !approx(r, 1, 1e-6) {
		t.Fatalf("first eigenvector ratio = %v", r)
	}
	if _, _, err := JacobiEigen(NewMatrix(2, 3)); err == nil {
		t.Fatal("non-square should error")
	}
}

func TestJacobiEigenReconstructs(t *testing.T) {
	// Property: A·v = λ·v for every pair, on random symmetric matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(6)
		a := NewMatrix(n, n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				v := rng.NormFloat64()
				a.Set(i, j, v)
				a.Set(j, i, v)
			}
		}
		vals, vecs, err := JacobiEigen(a)
		if err != nil {
			return false
		}
		for col := 0; col < n; col++ {
			for row := 0; row < n; row++ {
				var av float64
				for k := 0; k < n; k++ {
					av += a.At(row, k) * vecs.At(k, col)
				}
				if math.Abs(av-vals[col]*vecs.At(row, col)) > 1e-6 {
					return false
				}
			}
		}
		// Eigenvalues sorted descending.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPCARecoversDominantDirection(t *testing.T) {
	// Points spread along the direction (1, 2)/√5 with tiny orthogonal
	// noise: the first principal axis must align with it.
	rng := rand.New(rand.NewSource(1))
	var X [][]float64
	for i := 0; i < 500; i++ {
		s := rng.NormFloat64() * 10
		e := rng.NormFloat64() * 0.1
		X = append(X, []float64{s*1/math.Sqrt(5) - e*2/math.Sqrt(5), s*2/math.Sqrt(5) + e*1/math.Sqrt(5)})
	}
	p, err := FitPCA(X)
	if err != nil {
		t.Fatal(err)
	}
	if p.Variances[0] < p.Variances[1] {
		t.Fatal("variances not sorted")
	}
	// First axis parallel to (1,2): ratio of its components ≈ 2.
	r := p.Components.At(1, 0) / p.Components.At(0, 0)
	if !approx(math.Abs(r), 2, 0.05) {
		t.Fatalf("first axis ratio = %v", r)
	}
	// Transformed data has near-diagonal covariance.
	var proj [][]float64
	for _, x := range X {
		proj = append(proj, p.Transform(x))
	}
	cov, _, err := Covariance(proj)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cov.At(0, 1)) > 0.05*cov.At(0, 0) {
		t.Fatalf("projected covariance not diagonal: %v", cov.Data)
	}
}
