package mts

import (
	"context"
	"testing"

	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/ts"
)

func smallOptions(seed int64) core.Options {
	return core.Options{
		IP:   ip.Config{QN: 5, QS: 3, LengthRatios: []float64{0.2, 0.3}, Seed: seed},
		DABF: dabf.Config{Seed: seed},
		K:    3,
	}
}

func TestGenerateDefaults(t *testing.T) {
	train, test := Generate(GenConfig{Seed: 1})
	if train.Len() != 40 || test.Len() != 40 {
		t.Fatalf("sizes = %d/%d", train.Len(), test.Len())
	}
	if train.NumChannels() != 3 {
		t.Fatalf("channels = %d", train.NumChannels())
	}
	if err := train.Validate(); err != nil {
		t.Fatal(err)
	}
	// Class balance.
	counts := map[int]int{}
	for _, l := range train.Labels() {
		counts[l]++
	}
	if counts[0] != 20 || counts[1] != 20 {
		t.Fatalf("class balance = %v", counts)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(GenConfig{Seed: 5})
	b, _ := Generate(GenConfig{Seed: 5})
	for i := range a.Instances {
		for c := range a.Instances[i].Channels {
			for j := range a.Instances[i].Channels[c] {
				if a.Instances[i].Channels[c][j] != b.Instances[i].Channels[c][j] {
					t.Fatal("same seed should reproduce identical data")
				}
			}
		}
	}
}

func TestDatasetValidate(t *testing.T) {
	empty := &Dataset{}
	if err := empty.Validate(); err == nil {
		t.Fatal("empty dataset should not validate")
	}
	ragged := &Dataset{Instances: []Instance{
		{Channels: []ts.Series{{1, 2}}, Label: 0},
		{Channels: []ts.Series{{1, 2}, {3, 4}}, Label: 1},
	}}
	if err := ragged.Validate(); err == nil {
		t.Fatal("ragged channels should not validate")
	}
	emptyChan := &Dataset{Instances: []Instance{
		{Channels: []ts.Series{{}}, Label: 0},
	}}
	if err := emptyChan.Validate(); err == nil {
		t.Fatal("empty channel should not validate")
	}
	if (&Dataset{}).NumChannels() != 0 {
		t.Fatal("empty dataset has channels")
	}
}

func TestChannelProjection(t *testing.T) {
	train, _ := Generate(GenConfig{Channels: 2, Seed: 2})
	ch := train.Channel(1)
	if ch.Len() != train.Len() {
		t.Fatalf("channel len = %d", ch.Len())
	}
	for i, in := range ch.Instances {
		if in.Label != train.Instances[i].Label {
			t.Fatal("channel labels differ")
		}
		if &in.Values[0] != &train.Instances[i].Channels[1][0] {
			t.Fatal("channel should alias the multivariate storage")
		}
	}
}

func TestFitEvaluateMultivariate(t *testing.T) {
	train, test := Generate(GenConfig{Channels: 3, Seed: 3})
	acc, m, err := Evaluate(context.Background(), train, test, smallOptions(4))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 80 {
		t.Fatalf("multivariate accuracy = %v%%", acc)
	}
	if len(m.ShapeletsPerChannel) != 3 {
		t.Fatalf("channels with shapelets = %d", len(m.ShapeletsPerChannel))
	}
	// The two informative channels produce shapelets; predictions cover the
	// test set.
	pred, err := m.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != test.Len() {
		t.Fatalf("pred len = %d", len(pred))
	}
}

func TestFitSurvivesDistractorChannels(t *testing.T) {
	// Only 1 of 4 channels is informative; the fit must still work and the
	// classifier must still beat chance clearly.
	train, test := Generate(GenConfig{Channels: 4, Informative: 1, Seed: 6})
	acc, _, err := Evaluate(context.Background(), train, test, smallOptions(7))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 70 {
		t.Fatalf("accuracy with distractors = %v%%", acc)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(context.Background(), &Dataset{}, smallOptions(8)); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestMultiClassMultivariate(t *testing.T) {
	train, test := Generate(GenConfig{Channels: 2, Classes: 3, Train: 60, Test: 60, Seed: 9})
	acc, _, err := Evaluate(context.Background(), train, test, smallOptions(10))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 60 { // chance is 33%
		t.Fatalf("3-class multivariate accuracy = %v%%", acc)
	}
}
