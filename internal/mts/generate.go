package mts

import (
	"math"
	"math/rand"

	"ips/internal/ts"
)

// GenConfig parameterises the synthetic multivariate generator.
type GenConfig struct {
	Channels int // default 3
	Classes  int // default 2
	Length   int // default 80
	Train    int // default 40
	Test     int // default 40
	// Informative is the number of channels carrying class-discriminative
	// patterns; remaining channels are pure noise (default: Channels-1, so
	// at least one channel is a distractor when Channels > 1).
	Informative int
	Noise       float64 // default 0.3
	Seed        int64
}

func (c GenConfig) defaults() GenConfig {
	if c.Channels <= 0 {
		c.Channels = 3
	}
	if c.Classes <= 0 {
		c.Classes = 2
	}
	if c.Length <= 0 {
		c.Length = 80
	}
	if c.Train <= 0 {
		c.Train = 40
	}
	if c.Test <= 0 {
		c.Test = 40
	}
	if c.Informative <= 0 {
		c.Informative = c.Channels - 1
		if c.Informative < 1 {
			c.Informative = 1
		}
	}
	if c.Informative > c.Channels {
		c.Informative = c.Channels
	}
	if c.Noise <= 0 {
		c.Noise = 0.3
	}
	return c
}

// Generate synthesises a multivariate train/test pair: each informative
// channel carries one sinusoid-burst pattern per class at a jittered
// position; distractor channels are noise only.  Deterministic in Seed.
func Generate(cfg GenConfig) (train, test *Dataset) {
	cfg = cfg.defaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	pl := cfg.Length / 4
	if pl < 4 {
		pl = 4
	}
	// patterns[channel][class]
	patterns := make([][][]float64, cfg.Informative)
	for ch := range patterns {
		patterns[ch] = make([][]float64, cfg.Classes)
		for cl := range patterns[ch] {
			p := make([]float64, pl)
			phase := rng.Float64() * 2 * math.Pi
			freq := 1 + rng.Float64()*2
			for i := range p {
				t := float64(i) / float64(pl)
				p[i] = 3 * math.Sin(2*math.Pi*freq*t+phase) * math.Sin(math.Pi*t)
			}
			patterns[ch][cl] = p
		}
	}
	mk := func(name string, count int) *Dataset {
		d := &Dataset{Name: name}
		for i := 0; i < count; i++ {
			class := i % cfg.Classes
			in := Instance{Label: class}
			for ch := 0; ch < cfg.Channels; ch++ {
				vals := make(ts.Series, cfg.Length)
				for j := range vals {
					vals[j] = cfg.Noise * rng.NormFloat64()
				}
				if ch < cfg.Informative {
					at := rng.Intn(cfg.Length - pl)
					for j, pv := range patterns[ch][class] {
						vals[at+j] += pv
					}
				}
				in.Channels = append(in.Channels, vals)
			}
			d.Instances = append(d.Instances, in)
		}
		return d
	}
	return mk("mts_TRAIN", cfg.Train), mk("mts_TEST", cfg.Test)
}
