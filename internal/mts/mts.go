// Package mts extends IPS to multivariate time series classification — the
// second future-work direction of the paper's conclusion.  Each channel of a
// multivariate instance is treated as a univariate series: shapelets are
// discovered per channel with the full IPS pipeline, instances are embedded
// by concatenating the per-channel shapelet transforms, and a single linear
// SVM classifies the joint embedding (the channel-independent scheme used by
// ShapeNet-style baselines).
package mts

import (
	"context"
	"errors"
	"fmt"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/errs"
	"ips/internal/ts"
)

// Instance is a labelled multivariate time series: one Series per channel,
// all channels the same length.
type Instance struct {
	Channels []ts.Series
	Label    int
}

// Dataset is a set of labelled multivariate instances.
type Dataset struct {
	Name      string
	Instances []Instance
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// NumChannels returns the channel count of the first instance (0 when
// empty).
func (d *Dataset) NumChannels() int {
	if len(d.Instances) == 0 {
		return 0
	}
	return len(d.Instances[0].Channels)
}

// Labels returns every instance label in order.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Instances))
	for i, in := range d.Instances {
		out[i] = in.Label
	}
	return out
}

// Validate checks structural invariants: consistent channel counts and
// non-empty channels.
func (d *Dataset) Validate() error {
	if len(d.Instances) == 0 {
		return errors.New("mts: dataset has no instances")
	}
	channels := len(d.Instances[0].Channels)
	if channels == 0 {
		return errors.New("mts: instances have no channels")
	}
	for i, in := range d.Instances {
		if len(in.Channels) != channels {
			return fmt.Errorf("mts: instance %d has %d channels, want %d", i, len(in.Channels), channels)
		}
		for c, ch := range in.Channels {
			if len(ch) == 0 {
				return fmt.Errorf("mts: instance %d channel %d is empty", i, c)
			}
		}
	}
	return nil
}

// Channel projects the dataset onto one channel as a univariate dataset.
// The returned instances alias the multivariate storage.
func (d *Dataset) Channel(c int) *ts.Dataset {
	out := &ts.Dataset{Name: fmt.Sprintf("%s[ch%d]", d.Name, c)}
	for _, in := range d.Instances {
		out.Instances = append(out.Instances, ts.Instance{Values: in.Channels[c], Label: in.Label})
	}
	return out
}

// Model is a trained multivariate IPS classifier.
type Model struct {
	// ShapeletsPerChannel[c] holds the shapelets discovered on channel c.
	ShapeletsPerChannel [][]classify.Shapelet
	Scaler              *classify.Scaler
	SVM                 *classify.SVM
	// Discoveries records each channel's discovery result.
	Discoveries []*core.Result
}

// Fit discovers shapelets on every channel and trains one SVM on the
// concatenated per-channel shapelet transforms.  Channels on which discovery
// fails (e.g. a constant channel) contribute no features but do not abort
// the fit, as long as at least one channel succeeds.  Cancellation is the
// exception: a ctx error aborts the whole fit immediately with an error
// matching errs.ErrCanceled, never a model trained on a channel subset.
func Fit(ctx context.Context, train *Dataset, opt core.Options) (*Model, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if train == nil {
		return nil, errs.BadInput(errs.StageValidate, "mts.fit", "", "nil dataset")
	}
	if err := train.Validate(); err != nil {
		return nil, errs.BadInputErr(errs.StageValidate, "mts.fit", train.Name, err)
	}
	m := &Model{}
	channels := train.NumChannels()
	for c := 0; c < channels; c++ {
		res, err := core.Discover(ctx, train.Channel(c), opt)
		if errors.Is(err, errs.ErrCanceled) {
			return nil, err
		}
		if err != nil {
			m.ShapeletsPerChannel = append(m.ShapeletsPerChannel, nil)
			m.Discoveries = append(m.Discoveries, nil)
			continue
		}
		m.ShapeletsPerChannel = append(m.ShapeletsPerChannel, res.Shapelets)
		m.Discoveries = append(m.Discoveries, res)
	}
	X, err := m.embed(ctx, train)
	if err != nil {
		return nil, err
	}
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, errs.BadInput(errs.StageSelection, "mts.fit", train.Name, "no channel produced shapelets")
	}
	scaler, err := classify.FitScaler(X)
	if err != nil {
		return nil, errs.BadInputErr(errs.StageTrain, "mts.fit", train.Name, err)
	}
	svm, err := classify.TrainSVMCtx(ctx, scaler.Apply(X), train.Labels(), opt.SVM, nil)
	if err != nil {
		return nil, errs.Wrap(errs.StageTrain, "mts.fit", train.Name, err)
	}
	m.Scaler = scaler
	m.SVM = svm
	return m, nil
}

// embed concatenates the per-channel shapelet transforms.
func (m *Model) embed(ctx context.Context, d *Dataset) ([][]float64, error) {
	total := 0
	for _, sh := range m.ShapeletsPerChannel {
		total += len(sh)
	}
	out := make([][]float64, d.Len())
	for i := range out {
		out[i] = make([]float64, 0, total)
	}
	for c, sh := range m.ShapeletsPerChannel {
		if len(sh) == 0 {
			continue
		}
		X, err := classify.TransformCtx(ctx, d.Channel(c), sh, 0, nil, nil)
		if err != nil {
			return nil, errs.Wrap(errs.StageTransform, "mts.embed", d.Name, err)
		}
		for i := range out {
			out[i] = append(out[i], X[i]...)
		}
	}
	return out, nil
}

// Predict classifies every instance.  The model must be trained and the
// dataset structurally valid; failures return typed errors instead of
// panicking.
func (m *Model) Predict(ctx context.Context, d *Dataset) ([]int, error) {
	if m == nil || m.Scaler == nil || m.SVM == nil {
		return nil, errs.BadInput(errs.StagePredict, "mts.predict", "", "model is nil or untrained")
	}
	if d == nil {
		return nil, errs.BadInput(errs.StagePredict, "mts.predict", "", "nil dataset")
	}
	if err := d.Validate(); err != nil {
		return nil, errs.BadInputErr(errs.StagePredict, "mts.predict", d.Name, err)
	}
	X, err := m.embed(ctx, d)
	if err != nil {
		return nil, err
	}
	return m.SVM.PredictAll(m.Scaler.Apply(X)), nil
}

// Evaluate fits on train and returns accuracy (%) on test with the model.
func Evaluate(ctx context.Context, train, test *Dataset, opt core.Options) (float64, *Model, error) {
	m, err := Fit(ctx, train, opt)
	if err != nil {
		return 0, nil, err
	}
	pred, err := m.Predict(ctx, test)
	if err != nil {
		return 0, nil, err
	}
	return classify.Accuracy(pred, test.Labels()), m, nil
}
