// Package mts extends IPS to multivariate time series classification — the
// second future-work direction of the paper's conclusion.  Each channel of a
// multivariate instance is treated as a univariate series: shapelets are
// discovered per channel with the full IPS pipeline, instances are embedded
// by concatenating the per-channel shapelet transforms, and a single linear
// SVM classifies the joint embedding (the channel-independent scheme used by
// ShapeNet-style baselines).
package mts

import (
	"errors"
	"fmt"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/ts"
)

// Instance is a labelled multivariate time series: one Series per channel,
// all channels the same length.
type Instance struct {
	Channels []ts.Series
	Label    int
}

// Dataset is a set of labelled multivariate instances.
type Dataset struct {
	Name      string
	Instances []Instance
}

// Len returns the number of instances.
func (d *Dataset) Len() int { return len(d.Instances) }

// NumChannels returns the channel count of the first instance (0 when
// empty).
func (d *Dataset) NumChannels() int {
	if len(d.Instances) == 0 {
		return 0
	}
	return len(d.Instances[0].Channels)
}

// Labels returns every instance label in order.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Instances))
	for i, in := range d.Instances {
		out[i] = in.Label
	}
	return out
}

// Validate checks structural invariants: consistent channel counts and
// non-empty channels.
func (d *Dataset) Validate() error {
	if len(d.Instances) == 0 {
		return errors.New("mts: dataset has no instances")
	}
	channels := len(d.Instances[0].Channels)
	if channels == 0 {
		return errors.New("mts: instances have no channels")
	}
	for i, in := range d.Instances {
		if len(in.Channels) != channels {
			return fmt.Errorf("mts: instance %d has %d channels, want %d", i, len(in.Channels), channels)
		}
		for c, ch := range in.Channels {
			if len(ch) == 0 {
				return fmt.Errorf("mts: instance %d channel %d is empty", i, c)
			}
		}
	}
	return nil
}

// Channel projects the dataset onto one channel as a univariate dataset.
// The returned instances alias the multivariate storage.
func (d *Dataset) Channel(c int) *ts.Dataset {
	out := &ts.Dataset{Name: fmt.Sprintf("%s[ch%d]", d.Name, c)}
	for _, in := range d.Instances {
		out.Instances = append(out.Instances, ts.Instance{Values: in.Channels[c], Label: in.Label})
	}
	return out
}

// Model is a trained multivariate IPS classifier.
type Model struct {
	// ShapeletsPerChannel[c] holds the shapelets discovered on channel c.
	ShapeletsPerChannel [][]classify.Shapelet
	Scaler              *classify.Scaler
	SVM                 *classify.SVM
	// Discoveries records each channel's discovery result.
	Discoveries []*core.Result
}

// Fit discovers shapelets on every channel and trains one SVM on the
// concatenated per-channel shapelet transforms.  Channels on which discovery
// fails (e.g. a constant channel) contribute no features but do not abort
// the fit, as long as at least one channel succeeds.
func Fit(train *Dataset, opt core.Options) (*Model, error) {
	if err := train.Validate(); err != nil {
		return nil, err
	}
	m := &Model{}
	channels := train.NumChannels()
	for c := 0; c < channels; c++ {
		res, err := core.Discover(train.Channel(c), opt)
		if err != nil {
			m.ShapeletsPerChannel = append(m.ShapeletsPerChannel, nil)
			m.Discoveries = append(m.Discoveries, nil)
			continue
		}
		m.ShapeletsPerChannel = append(m.ShapeletsPerChannel, res.Shapelets)
		m.Discoveries = append(m.Discoveries, res)
	}
	X := m.embed(train)
	if len(X) == 0 || len(X[0]) == 0 {
		return nil, errors.New("mts: no channel produced shapelets")
	}
	scaler, err := classify.FitScaler(X)
	if err != nil {
		return nil, err
	}
	svm, err := classify.TrainSVM(scaler.Apply(X), train.Labels(), opt.SVM)
	if err != nil {
		return nil, err
	}
	m.Scaler = scaler
	m.SVM = svm
	return m, nil
}

// embed concatenates the per-channel shapelet transforms.
func (m *Model) embed(d *Dataset) [][]float64 {
	total := 0
	for _, sh := range m.ShapeletsPerChannel {
		total += len(sh)
	}
	out := make([][]float64, d.Len())
	for i := range out {
		out[i] = make([]float64, 0, total)
	}
	for c, sh := range m.ShapeletsPerChannel {
		if len(sh) == 0 {
			continue
		}
		X := classify.Transform(d.Channel(c), sh)
		for i := range out {
			out[i] = append(out[i], X[i]...)
		}
	}
	return out
}

// Predict classifies every instance.
func (m *Model) Predict(d *Dataset) []int {
	X := m.Scaler.Apply(m.embed(d))
	return m.SVM.PredictAll(X)
}

// Evaluate fits on train and returns accuracy (%) on test with the model.
func Evaluate(train, test *Dataset, opt core.Options) (float64, *Model, error) {
	m, err := Fit(train, opt)
	if err != nil {
		return 0, nil, err
	}
	return classify.Accuracy(m.Predict(test), test.Labels()), m, nil
}
