// Package nn implements a small 1-D fully convolutional network (FCN,
// Wang et al. IJCNN'17) trained from scratch with manual backpropagation and
// Adam — the architecture family behind the ResNet column of the IPS paper's
// Table VI (ResNet stacks residual FCN blocks; we implement the plain FCN,
// which the same study reports as the second-best deep model).
package nn

import (
	"errors"
	"math"
	"math/rand"
	"sort"

	"ips/internal/ts"
)

// FCNConfig parameterises TrainFCN.
type FCNConfig struct {
	// Filters per conv layer (default {16, 32, 16}).
	Filters []int
	// Kernels per conv layer (default {8, 5, 3}).
	Kernels []int
	// Epochs of Adam over the training set (default 120).
	Epochs int
	// BatchSize for gradient accumulation (default 8).
	BatchSize int
	// LR is the Adam learning rate (default 1e-2).
	LR   float64
	Seed int64
}

func (c FCNConfig) defaults() FCNConfig {
	if len(c.Filters) == 0 {
		c.Filters = []int{16, 32, 16}
	}
	if len(c.Kernels) == 0 {
		c.Kernels = []int{8, 5, 3}
	}
	if c.Epochs <= 0 {
		c.Epochs = 120
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.LR <= 0 {
		c.LR = 1e-2
	}
	return c
}

// convLayer is a same-padded 1-D convolution with per-filter bias.
type convLayer struct {
	inC, outC, k int
	w            []float64 // [outC][inC][k] flattened
	b            []float64
}

func (l *convLayer) wAt(f, c, j int) int { return (f*l.inC+c)*l.k + j }

// forward applies the convolution to x[channel][time] with same padding and
// returns the pre-activation output.
func (l *convLayer) forward(x [][]float64) [][]float64 {
	T := len(x[0])
	out := make([][]float64, l.outC)
	half := l.k / 2
	for f := 0; f < l.outC; f++ {
		row := make([]float64, T)
		for t := 0; t < T; t++ {
			s := l.b[f]
			for c := 0; c < l.inC; c++ {
				xc := x[c]
				for j := 0; j < l.k; j++ {
					tt := t + j - half
					if tt < 0 || tt >= T {
						continue
					}
					s += l.w[l.wAt(f, c, j)] * xc[tt]
				}
			}
			row[t] = s
		}
		out[f] = row
	}
	return out
}

// backward propagates dout (gradient w.r.t. this layer's pre-activation
// output) given the layer input x, accumulating parameter gradients into
// gw/gb and returning the gradient w.r.t. x.
func (l *convLayer) backward(x, dout [][]float64, gw, gb []float64) [][]float64 {
	T := len(x[0])
	half := l.k / 2
	dx := make([][]float64, l.inC)
	for c := range dx {
		dx[c] = make([]float64, T)
	}
	for f := 0; f < l.outC; f++ {
		df := dout[f]
		for t := 0; t < T; t++ {
			g := df[t]
			if g == 0 {
				continue
			}
			gb[f] += g
			for c := 0; c < l.inC; c++ {
				xc := x[c]
				dxc := dx[c]
				for j := 0; j < l.k; j++ {
					tt := t + j - half
					if tt < 0 || tt >= T {
						continue
					}
					gw[l.wAt(f, c, j)] += g * xc[tt]
					dxc[tt] += g * l.w[l.wAt(f, c, j)]
				}
			}
		}
	}
	return dx
}

// FCN is a trained fully convolutional network classifier.
type FCN struct {
	convs   []*convLayer
	denseW  []float64 // [classes][lastFilters]
	denseB  []float64
	classes []int
}

// adamState holds Adam moments for one parameter vector.
type adamState struct {
	m, v []float64
	t    int
}

func newAdam(n int) *adamState { return &adamState{m: make([]float64, n), v: make([]float64, n)} }

func (a *adamState) step(params, grads []float64, lr float64) {
	const beta1, beta2, eps = 0.9, 0.999, 1e-8
	a.t++
	bc1 := 1 - math.Pow(beta1, float64(a.t))
	bc2 := 1 - math.Pow(beta2, float64(a.t))
	for i := range params {
		g := grads[i]
		a.m[i] = beta1*a.m[i] + (1-beta1)*g
		a.v[i] = beta2*a.v[i] + (1-beta2)*g*g
		params[i] -= lr * (a.m[i] / bc1) / (math.Sqrt(a.v[i]/bc2) + eps)
	}
}

// TrainFCN trains the network with softmax cross-entropy.  Inputs are
// z-normalised per instance, the standard preprocessing of the deep TSC
// literature.
func TrainFCN(train *ts.Dataset, cfg FCNConfig) (*FCN, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	if len(cfg.Filters) != len(cfg.Kernels) {
		return nil, errors.New("nn: filters and kernels length mismatch")
	}
	classes := train.Classes()
	classIdx := map[int]int{}
	for i, c := range classes {
		classIdx[c] = i
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	m := &FCN{classes: classes}
	inC := 1
	for li := range cfg.Filters {
		l := &convLayer{inC: inC, outC: cfg.Filters[li], k: cfg.Kernels[li]}
		l.w = make([]float64, l.outC*l.inC*l.k)
		l.b = make([]float64, l.outC)
		scale := math.Sqrt(2 / float64(l.inC*l.k)) // He initialisation
		for i := range l.w {
			l.w[i] = scale * rng.NormFloat64()
		}
		m.convs = append(m.convs, l)
		inC = l.outC
	}
	last := cfg.Filters[len(cfg.Filters)-1]
	m.denseW = make([]float64, len(classes)*last)
	m.denseB = make([]float64, len(classes))
	dscale := math.Sqrt(1 / float64(last))
	for i := range m.denseW {
		m.denseW[i] = dscale * rng.NormFloat64()
	}

	// Adam state per parameter block.
	var adamW []*adamState
	var adamB []*adamState
	for _, l := range m.convs {
		adamW = append(adamW, newAdam(len(l.w)))
		adamB = append(adamB, newAdam(len(l.b)))
	}
	adamDW := newAdam(len(m.denseW))
	adamDB := newAdam(len(m.denseB))

	// Pre-normalise the inputs once.
	inputs := make([][][]float64, train.Len())
	for i, in := range train.Instances {
		inputs[i] = [][]float64{ts.ZNorm(in.Values)}
	}

	n := train.Len()
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		order := rng.Perm(n)
		for start := 0; start < n; start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > n {
				end = n
			}
			// Zeroed gradient accumulators.
			gw := make([][]float64, len(m.convs))
			gb := make([][]float64, len(m.convs))
			for li, l := range m.convs {
				gw[li] = make([]float64, len(l.w))
				gb[li] = make([]float64, len(l.b))
			}
			gdw := make([]float64, len(m.denseW))
			gdb := make([]float64, len(m.denseB))

			for _, oi := range order[start:end] {
				x := inputs[oi]
				label := classIdx[train.Instances[oi].Label]
				m.backprop(x, label, gw, gb, gdw, gdb)
			}
			inv := 1 / float64(end-start)
			for _, g := range gw {
				scaleSlice(g, inv)
			}
			for _, g := range gb {
				scaleSlice(g, inv)
			}
			scaleSlice(gdw, inv)
			scaleSlice(gdb, inv)
			for li, l := range m.convs {
				adamW[li].step(l.w, gw[li], cfg.LR)
				adamB[li].step(l.b, gb[li], cfg.LR)
			}
			adamDW.step(m.denseW, gdw, cfg.LR)
			adamDB.step(m.denseB, gdb, cfg.LR)
		}
	}
	return m, nil
}

func scaleSlice(xs []float64, s float64) {
	for i := range xs {
		xs[i] *= s
	}
}

// forward runs the network, returning the activations after each conv+ReLU
// (acts[0] is the input) and the final logits.
func (m *FCN) forward(x [][]float64) (acts [][][]float64, pooled []float64, logits []float64) {
	acts = [][][]float64{x}
	cur := x
	for _, l := range m.convs {
		pre := l.forward(cur)
		for _, row := range pre {
			for t, v := range row {
				if v < 0 {
					row[t] = 0
				}
			}
		}
		acts = append(acts, pre)
		cur = pre
	}
	// Global average pooling.
	last := cur
	pooled = make([]float64, len(last))
	T := float64(len(last[0]))
	for f, row := range last {
		var s float64
		for _, v := range row {
			s += v
		}
		pooled[f] = s / T
	}
	logits = make([]float64, len(m.classes))
	for ci := range m.classes {
		s := m.denseB[ci]
		for f, v := range pooled {
			s += m.denseW[ci*len(pooled)+f] * v
		}
		logits[ci] = s
	}
	return acts, pooled, logits
}

// backprop accumulates gradients of the cross-entropy loss for one example.
func (m *FCN) backprop(x [][]float64, label int, gw, gb [][]float64, gdw, gdb []float64) {
	acts, pooled, logits := m.forward(x)
	probs := softmax(logits)
	// dLoss/dlogits.
	dlog := make([]float64, len(probs))
	copy(dlog, probs)
	dlog[label] -= 1
	// Dense gradients.
	for ci := range m.classes {
		gdb[ci] += dlog[ci]
		for f, v := range pooled {
			gdw[ci*len(pooled)+f] += dlog[ci] * v
		}
	}
	// dLoss/dpooled.
	dpooled := make([]float64, len(pooled))
	for f := range pooled {
		var s float64
		for ci := range m.classes {
			s += dlog[ci] * m.denseW[ci*len(pooled)+f]
		}
		dpooled[f] = s
	}
	// dLoss/d(last activation): GAP spreads the gradient evenly.
	lastAct := acts[len(acts)-1]
	T := len(lastAct[0])
	dcur := make([][]float64, len(lastAct))
	for f := range dcur {
		row := make([]float64, T)
		g := dpooled[f] / float64(T)
		for t := 0; t < T; t++ {
			row[t] = g
		}
		dcur[f] = row
	}
	// Back through the conv stack (ReLU gradient gates on the stored
	// post-activation: zero where the activation is zero).
	for li := len(m.convs) - 1; li >= 0; li-- {
		act := acts[li+1]
		for f := range dcur {
			for t := range dcur[f] {
				if act[f][t] <= 0 {
					dcur[f][t] = 0
				}
			}
		}
		dcur = m.convs[li].backward(acts[li], dcur, gw[li], gb[li])
	}
}

func softmax(logits []float64) []float64 {
	maxV := math.Inf(-1)
	for _, v := range logits {
		if v > maxV {
			maxV = v
		}
	}
	out := make([]float64, len(logits))
	var sum float64
	for i, v := range logits {
		out[i] = math.Exp(v - maxV)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Loss returns the cross-entropy loss of one instance (used by the gradient
// check in tests).
func (m *FCN) Loss(values ts.Series, label int) float64 {
	idx := sort.SearchInts(m.classes, label)
	_, _, logits := m.forward([][]float64{ts.ZNorm(values)})
	p := softmax(logits)
	return -math.Log(p[idx] + 1e-300)
}

// Predict returns the predicted class of one series.
func (m *FCN) Predict(values ts.Series) int {
	_, _, logits := m.forward([][]float64{ts.ZNorm(values)})
	best := 0
	for i := 1; i < len(logits); i++ {
		if logits[i] > logits[best] {
			best = i
		}
	}
	return m.classes[best]
}

// PredictAll classifies every instance of the dataset.
func (m *FCN) PredictAll(d *ts.Dataset) []int {
	out := make([]int, d.Len())
	for i, in := range d.Instances {
		out[i] = m.Predict(in.Values)
	}
	return out
}

// params exposes the flat parameter blocks for the test-only gradient check.
func (m *FCN) params() [][]float64 {
	var out [][]float64
	for _, l := range m.convs {
		out = append(out, l.w, l.b)
	}
	out = append(out, m.denseW, m.denseB)
	return out
}

// gradients runs one-example backprop and returns gradient blocks aligned
// with params() — test-only support for the numerical gradient check.
func (m *FCN) gradients(values ts.Series, label int) [][]float64 {
	gw := make([][]float64, len(m.convs))
	gb := make([][]float64, len(m.convs))
	for li, l := range m.convs {
		gw[li] = make([]float64, len(l.w))
		gb[li] = make([]float64, len(l.b))
	}
	gdw := make([]float64, len(m.denseW))
	gdb := make([]float64, len(m.denseB))
	idx := sort.SearchInts(m.classes, label)
	m.backprop([][]float64{ts.ZNorm(values)}, idx, gw, gb, gdw, gdb)
	var out [][]float64
	for li := range m.convs {
		out = append(out, gw[li], gb[li])
	}
	out = append(out, gdw, gdb)
	return out
}
