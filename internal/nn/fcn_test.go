package nn

import (
	"math"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

func plantedDataset(nPerClass, length, classes int, seed int64) *ts.Dataset {
	rng := rand.New(rand.NewSource(seed))
	patterns := make([][]float64, classes)
	pl := length / 4
	for c := range patterns {
		p := make([]float64, pl)
		for i := range p {
			p[i] = 4 * math.Sin(float64(i)*math.Pi/float64(pl)+float64(c)*2.1)
		}
		patterns[c] = p
	}
	d := &ts.Dataset{Name: "planted"}
	for c := 0; c < classes; c++ {
		for i := 0; i < nPerClass; i++ {
			vals := make(ts.Series, length)
			for j := range vals {
				vals[j] = 0.3 * rng.NormFloat64()
			}
			at := rng.Intn(length - pl)
			for j, pv := range patterns[c] {
				vals[at+j] += pv
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	return d
}

// TestFCNGradientCheck verifies the manual backprop against numerical
// differentiation on a tiny network — the critical correctness test.
func TestFCNGradientCheck(t *testing.T) {
	d := plantedDataset(2, 16, 2, 1)
	cfg := FCNConfig{Filters: []int{3, 2}, Kernels: []int{3, 3}, Epochs: 1, Seed: 2}
	m, err := TrainFCN(d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	values := d.Instances[1].Values
	label := d.Instances[1].Label
	analytic := m.gradients(values, label)
	params := m.params()
	const eps = 1e-6
	for bi, block := range params {
		// Check a few positions per block to keep the test fast.
		step := len(block)/5 + 1
		for pi := 0; pi < len(block); pi += step {
			orig := block[pi]
			block[pi] = orig + eps
			lp := m.Loss(values, label)
			block[pi] = orig - eps
			lm := m.Loss(values, label)
			block[pi] = orig
			numeric := (lp - lm) / (2 * eps)
			if diff := math.Abs(numeric - analytic[bi][pi]); diff > 1e-4*(1+math.Abs(numeric)) {
				t.Fatalf("block %d param %d: analytic %v vs numeric %v", bi, pi, analytic[bi][pi], numeric)
			}
		}
	}
}

func TestFCNLearnsPlantedPatterns(t *testing.T) {
	if testing.Short() {
		t.Skip("FCN training is slow in -short mode")
	}
	train := plantedDataset(10, 40, 2, 3)
	test := plantedDataset(10, 40, 2, 4)
	m, err := TrainFCN(train, FCNConfig{Filters: []int{8, 8}, Kernels: []int{7, 5}, Epochs: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	pred := m.PredictAll(test)
	hits := 0
	for i, in := range test.Instances {
		if pred[i] == in.Label {
			hits++
		}
	}
	acc := 100 * float64(hits) / float64(test.Len())
	if acc < 75 {
		t.Fatalf("FCN accuracy = %v%%", acc)
	}
}

func TestFCNErrors(t *testing.T) {
	if _, err := TrainFCN(&ts.Dataset{}, FCNConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
	d := plantedDataset(2, 16, 2, 6)
	if _, err := TrainFCN(d, FCNConfig{Filters: []int{4}, Kernels: []int{3, 3}}); err == nil {
		t.Fatal("mismatched filters/kernels should error")
	}
}

func TestSoftmax(t *testing.T) {
	p := softmax([]float64{1, 2, 3})
	var sum float64
	for _, v := range p {
		sum += v
	}
	if math.Abs(sum-1) > 1e-12 {
		t.Fatalf("softmax sum = %v", sum)
	}
	if !(p[2] > p[1] && p[1] > p[0]) {
		t.Fatalf("softmax ordering = %v", p)
	}
	// Stability with huge logits.
	p = softmax([]float64{1e9, 1e9 + 1})
	if math.IsNaN(p[0]) || math.IsNaN(p[1]) {
		t.Fatal("softmax overflow")
	}
}

func TestFCNDeterministic(t *testing.T) {
	train := plantedDataset(4, 24, 2, 7)
	m1, err := TrainFCN(train, FCNConfig{Filters: []int{4}, Kernels: []int{3}, Epochs: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := TrainFCN(train, FCNConfig{Filters: []int{4}, Kernels: []int{3}, Epochs: 5, Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	for i := range m1.denseW {
		if m1.denseW[i] != m2.denseW[i] {
			t.Fatal("same seed should give identical weights")
		}
	}
}
