package ts

import (
	"math"
	"testing"
)

// TestDistProfileEmptyQuery is the regression test for the degenerate-input
// guard: an empty query used to divide by zero and emit a NaN/Inf profile of
// length len(t)+1; it must yield nil, like a query longer than the series.
func TestDistProfileEmptyQuery(t *testing.T) {
	series := []float64{1, 2, 3, 4}
	if got := DistProfile(nil, series); got != nil {
		t.Fatalf("DistProfile(nil, t) = %v, want nil", got)
	}
	if got := DistProfile([]float64{}, series); got != nil {
		t.Fatalf("DistProfile(empty, t) = %v, want nil", got)
	}
	if got := DistProfile(nil, nil); got != nil {
		t.Fatalf("DistProfile(nil, nil) = %v, want nil", got)
	}
	// Over-long queries were already guarded; pin that too.
	if got := DistProfile([]float64{1, 2, 3}, []float64{1, 2}); got != nil {
		t.Fatalf("DistProfile(long, short) = %v, want nil", got)
	}
}

// TestDistProfileFiniteOnTypicalInput pins the broader contract the guard
// restores: for a non-empty query over finite data the profile has exactly
// len(t)-len(q)+1 finite, non-negative entries.
func TestDistProfileFiniteOnTypicalInput(t *testing.T) {
	q := []float64{0.5, -1, 2}
	series := []float64{1, 2, 3, 4, 5, 6}
	prof := DistProfile(q, series)
	if len(prof) != len(series)-len(q)+1 {
		t.Fatalf("profile length = %d, want %d", len(prof), len(series)-len(q)+1)
	}
	for j, v := range prof {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			t.Fatalf("profile[%d] = %v, want finite non-negative", j, v)
		}
	}
}

// TestDistAbandonedWindowNeverUpdates pins the early-abandon contract: the
// returned minimum is always a fully-accumulated window sum.  The query
// matches the final window exactly (distance 0); every earlier window is
// abandoned against the running best and must not contribute.
func TestDistAbandonedWindowNeverUpdates(t *testing.T) {
	series := []float64{9, 9, 9, 9, 1, 2, 3}
	q := []float64{1, 2, 3}
	if got := Dist(q, series); got != 0 {
		t.Fatalf("Dist = %v, want exact 0 from the matching final window", got)
	}
	// And the argument order must not matter.
	if got := Dist(series, q); got != 0 {
		t.Fatalf("Dist swapped = %v, want 0", got)
	}
}
