package ts

import (
	"math"
	"testing"
)

// These tests pin the NaN-hardening surfaced by FuzzZNorm: huge-but-finite
// inputs overflow the variance accumulator (sumSq → +Inf, then Inf−Inf →
// NaN std), which before the guards leaked NaN out of ZNorm and
// ZNormSqDistFromStats.

func TestZNormVarianceOverflowIsAllZeros(t *testing.T) {
	s := make([]float64, 9)
	for i := range s {
		s[i] = 1e200 * float64(i%3) // finite input, sumSq overflows to +Inf
	}
	z := ZNorm(s)
	for i, v := range z {
		if v != 0 {
			t.Fatalf("ZNorm[%d] = %v, want 0 (overflowing variance treated as constant)", i, v)
		}
	}
}

func TestZNormConstantIsAllZeros(t *testing.T) {
	z := ZNorm([]float64{3.5, 3.5, 3.5, 3.5})
	for i, v := range z {
		if v != 0 {
			t.Fatalf("ZNorm[%d] = %v, want 0", i, v)
		}
	}
}

func TestZNormSqDistFromStatsNaNStatsClampsToUncorrelated(t *testing.T) {
	w := 8
	nan := math.NaN()
	inf := math.Inf(1)
	for _, tc := range []struct{ qt, mA, sA, mB, sB float64 }{
		{qt: 1, mA: nan, sA: nan, mB: 0, sB: 1},   // NaN stats from overflow
		{qt: 1, mA: inf, sA: inf, mB: 0, sB: 1},   // Inf mean and std (Inf/Inf → NaN corr)
		{qt: inf, mA: 0, sA: inf, mB: 0, sB: 1},   // Inf dot against Inf std
		{qt: nan, mA: 0, sA: inf, mB: 0, sB: inf}, // everything degenerate
	} {
		d := ZNormSqDistFromStats(tc.qt, w, tc.mA, tc.sA, tc.mB, tc.sB)
		if d != 2*float64(w) {
			t.Fatalf("ZNormSqDistFromStats(%v,%v,%v,%v,%v) = %v, want %v (zero-correlation convention)",
				tc.qt, tc.mA, tc.sA, tc.mB, tc.sB, d, 2*float64(w))
		}
	}
}

func TestZNormSqDistFromStatsStaysInRange(t *testing.T) {
	w := 4
	// An overflowed dot product (±Inf) is caught by the correlation clamps:
	// +Inf correlation means distance 0, −Inf means the 4w maximum.
	for _, qt := range []float64{math.Inf(-1), -1e300, -1, 0, 1, 1e300, math.Inf(1)} {
		d := ZNormSqDistFromStats(qt, w, 0, 1, 0, 1)
		if math.IsNaN(d) || d < 0 || d > 4*float64(w) {
			t.Fatalf("qt=%v: d = %v, want in [0, %d]", qt, d, 4*w)
		}
	}
}
