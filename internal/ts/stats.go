package ts

import "math"

// MeanStd returns the mean and (population) standard deviation of s.
func MeanStd(s []float64) (mean, std float64) {
	if len(s) == 0 {
		return 0, 0
	}
	for _, v := range s {
		mean += v
	}
	mean /= float64(len(s))
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	std = math.Sqrt(ss / float64(len(s)))
	return mean, std
}

// ZNorm returns a z-normalised copy of s.  A near-constant series (std below
// eps) is returned as all zeros, the conventional choice in matrix-profile
// implementations.
func ZNorm(s []float64) []float64 {
	out := make([]float64, len(s))
	ZNormInto(out, s)
	return out
}

// ZNormInto z-normalises src into dst, which must have the same length.
func ZNormInto(dst, src []float64) {
	const eps = 1e-12
	mean, std := MeanStd(src)
	// Near-constant series conventionally z-normalise to all zeros.  A
	// non-finite std — the variance accumulator overflows once |v| ≳ 1e154,
	// and Inf−Inf cancellation then turns it into NaN — gets the same
	// treatment, so NaN can never leak into the output (!(std > eps) is
	// deliberate: it is true for NaN where std < eps would be false).
	if !(std > eps) || math.IsInf(std, 1) {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i, v := range src {
		dst[i] = (v - mean) / std
	}
}

// Rolling is the cumulative-sum state behind one sliding window of the
// moving statistics: the running Σt and Σt² of the current length-w window.
// MovingMeanStd and the incremental matrix profile (mp.Incremental) both
// advance their windows through this one type, so a window statistic reached
// by streaming appends is bitwise identical to the one a batch recompute
// produces — the byte-determinism contract of the STOMPI append path rests
// on this shared code path, not on two copies of the same formula.
type Rolling struct {
	sum, sumSq float64
	w          int
}

// NewRolling seeds the state from the first window (the slice is the whole
// window; its length is w).
func NewRolling(first []float64) Rolling {
	var r Rolling
	r.w = len(first)
	for i := 0; i < r.w; i++ {
		r.sum += first[i]
		r.sumSq += first[i] * first[i]
	}
	return r
}

// Advance slides the window one step: out leaves on the left, in enters on
// the right.
//
//ips:hotpath
func (r *Rolling) Advance(out, in float64) {
	r.sum += in - out
	r.sumSq += in*in - out*out
}

// MeanStd returns the current window's mean and (population) standard
// deviation, with the round-off guard of MovingMeanStd.
//
//ips:hotpath
func (r *Rolling) MeanStd() (mean, std float64) {
	fw := float64(r.w)
	m := r.sum / fw
	v := r.sumSq/fw - m*m
	if v < 0 {
		v = 0 // guard against round-off
	}
	return m, math.Sqrt(v)
}

// MovingMeanStd returns the mean and standard deviation of every length-w
// window of t, computed with cumulative sums in O(len(t)).
func MovingMeanStd(t []float64, w int) (means, stds []float64) {
	n := len(t) - w + 1
	if n <= 0 {
		return nil, nil
	}
	means = make([]float64, n)
	stds = make([]float64, n)
	r := NewRolling(t[:w])
	for i := 0; ; i++ {
		means[i], stds[i] = r.MeanStd()
		if i+1 >= n {
			break
		}
		r.Advance(t[i], t[i+w])
	}
	return means, stds
}

// Dot returns the inner product of a and b (which must have equal length).
func Dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SlidingDots returns the dot product of q with every length-|q| window of t.
// It is the O(N·L) building block used by the matrix-profile joins; STOMP
// then updates neighbouring rows in O(1) per shift.
func SlidingDots(q, t []float64) []float64 {
	m := len(q)
	n := len(t) - m + 1
	if n <= 0 {
		return nil
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		out[i] = Dot(q, t[i:i+m])
	}
	return out
}
