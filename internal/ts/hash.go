package ts

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"math"
)

// ContentHash returns a short hex digest of the dataset's contents — labels
// and the exact float64 bit patterns of every value, in instance order.  Two
// datasets hash equal iff they hold bit-identical data in the same order;
// the name does not participate, so a renamed copy of the same data keeps
// its hash.  Run manifests record it to distinguish "the code changed" from
// "the data changed" when comparing runs.
func (d *Dataset) ContentHash() string {
	if d == nil {
		return ""
	}
	h := sha256.New()
	var buf [8]byte
	for _, in := range d.Instances {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(in.Label)))
		h.Write(buf[:])
		binary.LittleEndian.PutUint64(buf[:], uint64(len(in.Values)))
		h.Write(buf[:])
		for _, v := range in.Values {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("sha256:%x", h.Sum(nil)[:12])
}
