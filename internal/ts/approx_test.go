package ts

import (
	"math"
	"testing"
)

func TestApproxEqual(t *testing.T) {
	cases := []struct {
		a, b, eps float64
		want      bool
	}{
		{1, 1, 0, true},
		{1, 1 + 1e-10, 1e-9, true},
		{1, 1 + 1e-8, 1e-9, false},
		{-2, -2.0005, 1e-3, true},
		{0, 0, 0, true},
		{math.Inf(1), math.Inf(1), 0, true},
		{math.Inf(1), math.Inf(-1), 1e300, false},
		{math.Inf(1), 1e308, 1e300, false},
		{math.NaN(), math.NaN(), 1, false},
		{math.NaN(), 0, 1, false},
	}
	for _, c := range cases {
		if got := ApproxEqual(c.a, c.b, c.eps); got != c.want {
			t.Errorf("ApproxEqual(%v, %v, %v) = %v, want %v", c.a, c.b, c.eps, got, c.want)
		}
	}
}

func TestApproxEqualSlice(t *testing.T) {
	a := []float64{1, 2, 3}
	if !ApproxEqualSlice(a, []float64{1, 2 + 1e-12, 3}, 1e-9) {
		t.Fatal("near-identical slices should match")
	}
	if ApproxEqualSlice(a, []float64{1, 2.1, 3}, 1e-9) {
		t.Fatal("differing slices should not match")
	}
	if ApproxEqualSlice(a, []float64{1, 2}, 1e-9) {
		t.Fatal("length mismatch should not match")
	}
}

func TestApproxEqualRel(t *testing.T) {
	// 1 part in 1e9 at magnitude 1e12 is a difference of 1e3: far outside
	// any absolute eps, inside the relative one.
	if !ApproxEqualRel(1e12, 1e12+1e3, 1e-8) {
		t.Fatal("relative comparison should scale with magnitude")
	}
	if ApproxEqualRel(1e12, 1e12*(1+1e-6), 1e-8) {
		t.Fatal("relative comparison should still reject large drift")
	}
	// Near zero it degrades to the absolute test.
	if !ApproxEqualRel(0, 1e-10, 1e-9) {
		t.Fatal("near-zero values should use the absolute tolerance")
	}
}
