// Package ts provides the time-series substrate used by every other package
// in this repository: series and dataset types, z-normalisation, the
// sliding-window distance of Def. 4 of the IPS paper, subsequence utilities,
// and dynamic time warping.
package ts

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Series is an ordered sequence of real values (Def. 1).
type Series []float64

// Clone returns a deep copy of the series.
func (s Series) Clone() Series {
	out := make(Series, len(s))
	copy(out, s)
	return out
}

// Subsequence returns the subsequence s[a:b] (half-open, 0-based), i.e. the
// paper's T_{a+1,b} in 1-based inclusive notation (Def. 3).  The returned
// slice aliases the original storage.
func (s Series) Subsequence(a, b int) Series {
	return s[a:b]
}

// Instance is a labelled time series belonging to a dataset.
type Instance struct {
	Values Series
	Label  int
}

// Dataset is a set of labelled time series (Def. 2).
type Dataset struct {
	Name      string
	Instances []Instance
}

// Len returns the number of instances in the dataset.
func (d *Dataset) Len() int { return len(d.Instances) }

// SeriesLen returns the length of the first instance, or 0 for an empty
// dataset.  UCR-style datasets are equal-length; variable-length datasets
// should be inspected per instance.
func (d *Dataset) SeriesLen() int {
	if len(d.Instances) == 0 {
		return 0
	}
	return len(d.Instances[0].Values)
}

// Classes returns the sorted distinct class labels present in the dataset.
func (d *Dataset) Classes() []int {
	seen := map[int]bool{}
	for _, in := range d.Instances {
		seen[in.Label] = true
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// ByClass partitions the dataset's instances by class label.  The returned
// slices alias the dataset's storage.
func (d *Dataset) ByClass() map[int][]Instance {
	out := map[int][]Instance{}
	for _, in := range d.Instances {
		out[in.Label] = append(out[in.Label], in)
	}
	return out
}

// Labels returns the label of every instance, in dataset order.
func (d *Dataset) Labels() []int {
	out := make([]int, len(d.Instances))
	for i, in := range d.Instances {
		out[i] = in.Label
	}
	return out
}

// Validate checks structural invariants: at least one instance, no empty or
// non-finite series, and at least two classes when requireTwoClasses is set.
func (d *Dataset) Validate(requireTwoClasses bool) error {
	if len(d.Instances) == 0 {
		return errors.New("ts: dataset has no instances")
	}
	for i, in := range d.Instances {
		if len(in.Values) == 0 {
			return fmt.Errorf("ts: instance %d is empty", i)
		}
		for j, v := range in.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("ts: instance %d has non-finite value at %d", i, j)
			}
		}
	}
	if requireTwoClasses && len(d.Classes()) < 2 {
		return errors.New("ts: dataset has fewer than two classes")
	}
	return nil
}

// Concatenate joins the given series into one long series (the paper's T_C).
func Concatenate(series []Series) Series {
	total := 0
	for _, s := range series {
		total += len(s)
	}
	out := make(Series, 0, total)
	for _, s := range series {
		out = append(out, s...)
	}
	return out
}

// ConcatenateInstances joins the values of the given instances into one long
// series and returns, alongside it, the start offset of each instance.  The
// offsets let callers mask out subsequences that would span an instance
// boundary (Def. 8 requires instance-profile subsequences to come from a
// single instance).
func ConcatenateInstances(ins []Instance) (Series, []int) {
	total := 0
	for _, in := range ins {
		total += len(in.Values)
	}
	out := make(Series, 0, total)
	starts := make([]int, len(ins))
	for i, in := range ins {
		starts[i] = len(out)
		out = append(out, in.Values...)
	}
	return out, starts
}

// BoundaryMask returns valid[i]==true iff the length-w subsequence starting
// at i lies entirely inside one of the concatenated instances whose start
// offsets are given (total is the concatenated length).
func BoundaryMask(starts []int, total, w int) []bool {
	n := total - w + 1
	if n <= 0 {
		return nil
	}
	valid := make([]bool, n)
	for k, s := range starts {
		end := total
		if k+1 < len(starts) {
			end = starts[k+1]
		}
		for i := s; i+w <= end && i < n; i++ {
			valid[i] = true
		}
	}
	return valid
}

// Sample returns q instances drawn uniformly without replacement from ins
// using rng.  If q >= len(ins) a shuffled copy of all instances is returned.
func Sample(ins []Instance, q int, rng *rand.Rand) []Instance {
	idx := rng.Perm(len(ins))
	if q > len(ins) {
		q = len(ins)
	}
	out := make([]Instance, q)
	for i := 0; i < q; i++ {
		out[i] = ins[idx[i]]
	}
	return out
}
