package ts

import "math"

// SqDist returns the squared Euclidean distance between equal-length a and b.
func SqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// EuclideanDist returns the Euclidean distance between equal-length a and b.
func EuclideanDist(a, b []float64) float64 {
	return math.Sqrt(SqDist(a, b))
}

// Dist implements Def. 4 of the paper: the minimum, over all alignments of
// the shorter series inside the longer one, of the length-normalised squared
// Euclidean distance
//
//	dist(Tp, Tq) = min_j (1/|Tp|) Σ_l (tq_{j+l-1} − tp_l)²   (|Tq| ≥ |Tp|).
//
// The arguments may be passed in either order; the shorter one slides.
// The result is the minimum over alignments of the fully-accumulated
// left-to-right sum: early-abandoned windows never update the minimum, so a
// partial sum can never masquerade as a distance.
//
// Callers evaluating many queries against the same series (the shapelet
// transform, candidate scoring) should use the batched engine in
// internal/dist, which precomputes per-series prefix statistics once and
// returns byte-identical values per pair.
func Dist(p, q []float64) float64 {
	if len(p) > len(q) {
		p, q = q, p
	}
	if len(p) == 0 {
		return 0
	}
	best := math.Inf(1)
	for j := 0; j+len(p) <= len(q); j++ {
		var s float64
		win := q[j : j+len(p)]
		abandoned := false
		for l := range p {
			d := win[l] - p[l]
			s += d * d
			if s >= best*float64(len(p)) {
				abandoned = true // early abandon: cannot beat the best alignment
				break
			}
		}
		if abandoned {
			continue
		}
		if v := s / float64(len(p)); v < best {
			best = v
		}
	}
	return best
}

// DistProfile returns the Def. 4 distance of q against every alignment inside
// t, i.e. out[j] = (1/|q|) Σ (t[j+l]−q[l])².  It is computed with cumulative
// sums and a single sliding dot product pass in O(|t|·|q|) worst case but with
// the quadratic term vectorised; callers that need only the minimum should
// use Dist, which early-abandons, and callers profiling many queries against
// one series should use the batched engine in internal/dist.
//
// Degenerate inputs yield nil: a query longer than the series has no
// alignment, and an empty query has no profile (every "alignment" of nothing
// would divide by zero; Dist defines that case as distance 0 instead).
func DistProfile(q, t []float64) []float64 {
	m := len(q)
	if m == 0 {
		return nil
	}
	n := len(t) - m + 1
	if n <= 0 {
		return nil
	}
	// Σ (t−q)² = Σt² − 2Σtq + Σq².
	var qq float64
	for _, v := range q {
		qq += v * v
	}
	// Rolling Σt² over windows.
	out := make([]float64, n)
	var tt float64
	for i := 0; i < m; i++ {
		tt += t[i] * t[i]
	}
	dots := SlidingDots(q, t)
	fm := float64(m)
	for j := 0; ; j++ {
		d := tt - 2*dots[j] + qq
		if d < 0 {
			d = 0
		}
		out[j] = d / fm
		if j+1 >= n {
			break
		}
		tt += t[j+m]*t[j+m] - t[j]*t[j]
	}
	return out
}

// ZNormSqDistFromStats returns the z-normalised squared Euclidean distance of
// two length-w subsequences given their sliding dot product qt, their means
// and standard deviations.  This is the standard matrix-profile identity
//
//	d² = 2w (1 − (qt − w μa μb) / (w σa σb)).
//
// Near-constant subsequences are handled conventionally: two constants are at
// distance 0, a constant against a non-constant at distance √(2w)² = 2w.
//
// This runs once per matrix-profile cell; it must stay allocation-free.
//
//ips:hotpath
func ZNormSqDistFromStats(qt float64, w int, meanA, stdA, meanB, stdB float64) float64 {
	const eps = 1e-12
	fw := float64(w)
	if stdA < eps && stdB < eps {
		return 0
	}
	if stdA < eps || stdB < eps {
		return 2 * fw
	}
	corr := (qt - fw*meanA*meanB) / (fw * stdA * stdB)
	// Huge-magnitude (but finite) inputs overflow the sliding statistics:
	// dots and variances reach ±Inf and Inf−Inf / Inf÷Inf turn corr into
	// NaN, which the clamps below cannot catch.  Treat such garbage as zero
	// correlation so the distance stays finite, in [0, 4w], and — crucially
	// for the tiled kernel — deterministic, instead of leaking NaN into the
	// profile where it would poison every min-reduce.
	if math.IsNaN(corr) {
		corr = 0
	}
	if corr > 1 {
		corr = 1
	}
	if corr < -1 {
		corr = -1
	}
	return 2 * fw * (1 - corr)
}

// DTW returns the dynamic time warping distance between a and b under the
// squared point cost, constrained to a Sakoe-Chiba band of half-width window
// (window < 0 means unconstrained).  The returned value is the square root of
// the accumulated cost, matching the usual 1NN-DTW convention.
func DTW(a, b []float64, window int) float64 {
	n, m := len(a), len(b)
	if n == 0 || m == 0 {
		return math.Inf(1)
	}
	if window < 0 {
		window = max(n, m)
	}
	// The band must be at least |n−m| wide for a path to exist.
	if w := abs(n - m); window < w {
		window = w
	}
	inf := math.Inf(1)
	prev := make([]float64, m+1)
	cur := make([]float64, m+1)
	for j := range prev {
		prev[j] = inf
	}
	prev[0] = 0
	for i := 1; i <= n; i++ {
		for j := range cur {
			cur[j] = inf
		}
		lo := max(1, i-window)
		hi := min(m, i+window)
		for j := lo; j <= hi; j++ {
			d := a[i-1] - b[j-1]
			cost := d * d
			best := prev[j]
			if prev[j-1] < best {
				best = prev[j-1]
			}
			if cur[j-1] < best {
				best = cur[j-1]
			}
			cur[j] = cost + best
		}
		prev, cur = cur, prev
	}
	return math.Sqrt(prev[m])
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
