package ts

import (
	"errors"
	"fmt"
	"math"
)

// Interpolate returns a copy of s with NaN runs filled by linear
// interpolation between the nearest finite neighbours; leading and trailing
// NaN runs are filled with the nearest finite value.  It returns an error
// when the series contains no finite value at all, or any infinity (an
// infinity is a data error interpolation would silently spread).
func Interpolate(s Series) (Series, error) {
	out := s.Clone()
	firstFinite := -1
	for i, v := range out {
		if math.IsInf(v, 0) {
			return nil, errors.New("ts: cannot interpolate across infinities")
		}
		if !math.IsNaN(v) && firstFinite < 0 {
			firstFinite = i
		}
	}
	if firstFinite < 0 {
		return nil, errors.New("ts: series has no finite values")
	}
	// Leading run.
	for i := 0; i < firstFinite; i++ {
		out[i] = out[firstFinite]
	}
	// Interior and trailing runs.
	lastFinite := firstFinite
	for i := firstFinite + 1; i < len(out); i++ {
		if math.IsNaN(out[i]) {
			continue
		}
		if gap := i - lastFinite; gap > 1 {
			lo, hi := out[lastFinite], out[i]
			for j := 1; j < gap; j++ {
				frac := float64(j) / float64(gap)
				out[lastFinite+j] = lo*(1-frac) + hi*frac
			}
		}
		lastFinite = i
	}
	for i := lastFinite + 1; i < len(out); i++ {
		out[i] = out[lastFinite]
	}
	return out, nil
}

// CleanDataset interpolates NaN gaps in every instance of the dataset in
// place and reports how many instances were repaired.  Instances that cannot
// be repaired (all-NaN or containing infinities) cause an error naming the
// offending instance.
func CleanDataset(d *Dataset) (repaired int, err error) {
	for i := range d.Instances {
		vals := d.Instances[i].Values
		dirty := false
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				dirty = true
				break
			}
		}
		if !dirty {
			continue
		}
		fixed, err := Interpolate(vals)
		if err != nil {
			return repaired, fmt.Errorf("ts: instance %d: %w", i, err)
		}
		d.Instances[i].Values = fixed
		repaired++
	}
	return repaired, nil
}
