package ts

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, tol float64) bool {
	return ApproxEqual(a, b, tol)
}

func TestSeriesClone(t *testing.T) {
	s := Series{1, 2, 3}
	c := s.Clone()
	c[0] = 99
	if s[0] != 1 {
		t.Fatalf("clone aliases original: %v", s)
	}
}

func TestSubsequence(t *testing.T) {
	s := Series{0, 1, 2, 3, 4}
	sub := s.Subsequence(1, 4)
	want := Series{1, 2, 3}
	if len(sub) != len(want) {
		t.Fatalf("len = %d, want %d", len(sub), len(want))
	}
	for i := range want {
		if sub[i] != want[i] {
			t.Fatalf("sub[%d] = %v, want %v", i, sub[i], want[i])
		}
	}
}

func TestDatasetClassesAndByClass(t *testing.T) {
	d := &Dataset{Instances: []Instance{
		{Values: Series{1}, Label: 2},
		{Values: Series{2}, Label: 0},
		{Values: Series{3}, Label: 2},
	}}
	got := d.Classes()
	if len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("Classes = %v, want [0 2]", got)
	}
	by := d.ByClass()
	if len(by[2]) != 2 || len(by[0]) != 1 {
		t.Fatalf("ByClass sizes wrong: %v", by)
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d", d.Len())
	}
	if d.SeriesLen() != 1 {
		t.Fatalf("SeriesLen = %d", d.SeriesLen())
	}
}

func TestDatasetValidate(t *testing.T) {
	empty := &Dataset{}
	if err := empty.Validate(false); err == nil {
		t.Fatal("empty dataset should not validate")
	}
	bad := &Dataset{Instances: []Instance{{Values: Series{math.NaN()}, Label: 0}}}
	if err := bad.Validate(false); err == nil {
		t.Fatal("NaN dataset should not validate")
	}
	oneClass := &Dataset{Instances: []Instance{{Values: Series{1}, Label: 0}}}
	if err := oneClass.Validate(true); err == nil {
		t.Fatal("one-class dataset should fail two-class validation")
	}
	if err := oneClass.Validate(false); err != nil {
		t.Fatalf("one-class dataset should pass relaxed validation: %v", err)
	}
}

func TestConcatenate(t *testing.T) {
	got := Concatenate([]Series{{1, 2}, {3}, {4, 5}})
	want := Series{1, 2, 3, 4, 5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Concatenate = %v, want %v", got, want)
		}
	}
}

func TestConcatenateInstancesAndBoundaryMask(t *testing.T) {
	ins := []Instance{
		{Values: Series{1, 2, 3}},
		{Values: Series{4, 5, 6, 7}},
	}
	cat, starts := ConcatenateInstances(ins)
	if len(cat) != 7 || starts[0] != 0 || starts[1] != 3 {
		t.Fatalf("cat=%v starts=%v", cat, starts)
	}
	valid := BoundaryMask(starts, len(cat), 3)
	// windows: [0..2] ok, [1..3] spans, [2..4] spans, [3..5] ok, [4..6] ok
	want := []bool{true, false, false, true, true}
	if len(valid) != len(want) {
		t.Fatalf("mask len = %d, want %d", len(valid), len(want))
	}
	for i := range want {
		if valid[i] != want[i] {
			t.Fatalf("mask[%d] = %v, want %v (%v)", i, valid[i], want[i], valid)
		}
	}
}

func TestBoundaryMaskDegenerate(t *testing.T) {
	if m := BoundaryMask([]int{0}, 2, 5); m != nil {
		t.Fatalf("window longer than series should give nil mask, got %v", m)
	}
}

func TestSampleWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ins := make([]Instance, 10)
	for i := range ins {
		ins[i] = Instance{Values: Series{float64(i)}}
	}
	got := Sample(ins, 4, rng)
	if len(got) != 4 {
		t.Fatalf("len = %d", len(got))
	}
	seen := map[float64]bool{}
	for _, in := range got {
		if seen[in.Values[0]] {
			t.Fatalf("duplicate sample %v", in.Values[0])
		}
		seen[in.Values[0]] = true
	}
	// Requesting more than available returns everything.
	all := Sample(ins, 99, rng)
	if len(all) != 10 {
		t.Fatalf("oversized sample len = %d", len(all))
	}
}

func TestMeanStd(t *testing.T) {
	m, s := MeanStd([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if !almostEqual(m, 5, 1e-12) || !almostEqual(s, 2, 1e-12) {
		t.Fatalf("mean=%v std=%v, want 5, 2", m, s)
	}
	m, s = MeanStd(nil)
	if m != 0 || s != 0 {
		t.Fatalf("empty MeanStd = %v,%v", m, s)
	}
}

func TestZNorm(t *testing.T) {
	z := ZNorm([]float64{1, 2, 3, 4, 5})
	m, s := MeanStd(z)
	if !almostEqual(m, 0, 1e-12) || !almostEqual(s, 1, 1e-12) {
		t.Fatalf("znorm mean=%v std=%v", m, s)
	}
	// Constant series maps to zeros, not NaN.
	z = ZNorm([]float64{3, 3, 3})
	for _, v := range z {
		if v != 0 {
			t.Fatalf("constant znorm = %v", z)
		}
	}
}

func TestMovingMeanStdMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	tseries := make([]float64, 100)
	for i := range tseries {
		tseries[i] = rng.NormFloat64() * 10
	}
	w := 12
	means, stds := MovingMeanStd(tseries, w)
	for i := range means {
		m, s := MeanStd(tseries[i : i+w])
		if !almostEqual(means[i], m, 1e-8) || !almostEqual(stds[i], s, 1e-8) {
			t.Fatalf("window %d: got (%v,%v) want (%v,%v)", i, means[i], stds[i], m, s)
		}
	}
}

func TestMovingMeanStdDegenerate(t *testing.T) {
	m, s := MovingMeanStd([]float64{1, 2}, 5)
	if m != nil || s != nil {
		t.Fatal("window larger than series should return nil")
	}
}

func TestSlidingDots(t *testing.T) {
	q := []float64{1, 2}
	tt := []float64{1, 2, 3, 4}
	got := SlidingDots(q, tt)
	want := []float64{5, 8, 11} // 1*1+2*2, 1*2+2*3, 1*3+2*4
	for i := range want {
		if !almostEqual(got[i], want[i], 1e-12) {
			t.Fatalf("dots = %v, want %v", got, want)
		}
	}
}

func TestDistDef4(t *testing.T) {
	p := []float64{1, 2}
	q := []float64{5, 1, 2, 9}
	// best alignment at j=1 with zero distance
	if d := Dist(p, q); !almostEqual(d, 0, 1e-12) {
		t.Fatalf("Dist = %v, want 0", d)
	}
	// order independence
	if d := Dist(q, p); !almostEqual(d, 0, 1e-12) {
		t.Fatalf("swapped Dist = %v, want 0", d)
	}
	// hand-computed: p=[0,0] against q=[1,2,3]: alignments give (1+4)/2, (4+9)/2 → 2.5
	if d := Dist([]float64{0, 0}, []float64{1, 2, 3}); !almostEqual(d, 2.5, 1e-12) {
		t.Fatalf("Dist = %v, want 2.5", d)
	}
}

func TestDistProfileMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	q := make([]float64, 9)
	tt := make([]float64, 64)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for i := range tt {
		tt[i] = rng.NormFloat64()
	}
	prof := DistProfile(q, tt)
	if len(prof) != len(tt)-len(q)+1 {
		t.Fatalf("profile len = %d", len(prof))
	}
	minProf := math.Inf(1)
	for j := range prof {
		var s float64
		for l := range q {
			d := tt[j+l] - q[l]
			s += d * d
		}
		naive := s / float64(len(q))
		if !almostEqual(prof[j], naive, 1e-9) {
			t.Fatalf("profile[%d] = %v, want %v", j, prof[j], naive)
		}
		if prof[j] < minProf {
			minProf = prof[j]
		}
	}
	if d := Dist(q, tt); !almostEqual(d, minProf, 1e-9) {
		t.Fatalf("Dist = %v, min profile = %v", d, minProf)
	}
}

func TestDistProfileDegenerate(t *testing.T) {
	if p := DistProfile([]float64{1, 2, 3}, []float64{1}); p != nil {
		t.Fatalf("query longer than series should give nil, got %v", p)
	}
}

// Property: Dist is non-negative and zero when the query occurs verbatim.
func TestDistProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		m := 2 + rng.Intn(n-2)
		tt := make([]float64, n)
		for i := range tt {
			tt[i] = rng.NormFloat64()
		}
		j := rng.Intn(n - m + 1)
		q := make([]float64, m)
		copy(q, tt[j:j+m])
		d := Dist(q, tt)
		return d >= 0 && d < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZNormSqDistFromStats(t *testing.T) {
	a := []float64{1, 3, 2, 5, 4, 6, 2, 1}
	b := []float64{2, 1, 4, 3, 6, 5, 1, 2}
	w := len(a)
	qt := Dot(a, b)
	ma, sa := MeanStd(a)
	mb, sb := MeanStd(b)
	got := ZNormSqDistFromStats(qt, w, ma, sa, mb, sb)
	want := SqDist(ZNorm(a), ZNorm(b))
	if !almostEqual(got, want, 1e-8) {
		t.Fatalf("got %v want %v", got, want)
	}
	// constant vs constant
	if d := ZNormSqDistFromStats(0, 4, 1, 0, 2, 0); d != 0 {
		t.Fatalf("const/const = %v", d)
	}
	// constant vs varying
	if d := ZNormSqDistFromStats(0, 4, 1, 0, 2, 1); d != 8 {
		t.Fatalf("const/vary = %v, want 2w=8", d)
	}
}

func TestDTWBasics(t *testing.T) {
	a := []float64{1, 2, 3}
	if d := DTW(a, a, -1); d != 0 {
		t.Fatalf("self DTW = %v", d)
	}
	// DTW of [0,0,1] and [0,1] warps to zero extra cost beyond alignment.
	d := DTW([]float64{0, 0, 1}, []float64{0, 1}, -1)
	if d != 0 {
		t.Fatalf("warpable DTW = %v, want 0", d)
	}
	// DTW is at most Euclidean distance on equal lengths.
	b := []float64{2, 2, 2}
	if DTW(a, b, -1) > EuclideanDist(a, b)+1e-12 {
		t.Fatal("DTW exceeds ED")
	}
	// Degenerate inputs.
	if !math.IsInf(DTW(nil, a, -1), 1) {
		t.Fatal("empty DTW should be +Inf")
	}
}

func TestDTWBandWidening(t *testing.T) {
	// Band narrower than the length difference must be widened internally,
	// never producing +Inf for non-empty inputs.
	a := make([]float64, 20)
	b := make([]float64, 5)
	if d := DTW(a, b, 0); math.IsInf(d, 1) {
		t.Fatal("band should be widened to |n-m|")
	}
}

func TestDTWWindowMonotone(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := make([]float64, 30)
	b := make([]float64, 30)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	prev := math.Inf(1)
	for _, w := range []int{0, 2, 5, 10, 30} {
		d := DTW(a, b, w)
		if d > prev+1e-9 {
			t.Fatalf("DTW should not increase with window: w=%d d=%v prev=%v", w, d, prev)
		}
		prev = d
	}
	// Unconstrained equals full window.
	if !almostEqual(DTW(a, b, -1), DTW(a, b, 30), 1e-12) {
		t.Fatal("unconstrained != full window")
	}
}

func TestSqDistEuclidean(t *testing.T) {
	a := []float64{0, 3}
	b := []float64{4, 0}
	if !almostEqual(SqDist(a, b), 25, 1e-12) {
		t.Fatalf("SqDist = %v", SqDist(a, b))
	}
	if !almostEqual(EuclideanDist(a, b), 5, 1e-12) {
		t.Fatalf("EuclideanDist = %v", EuclideanDist(a, b))
	}
}
