package ts

import (
	"math"
	"testing"
)

func TestInterpolateInteriorGap(t *testing.T) {
	s := Series{1, math.NaN(), math.NaN(), 4}
	got, err := Interpolate(s)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{1, 2, 3, 4}
	if !ApproxEqualSlice(got, want, 1e-12) {
		t.Fatalf("interp = %v, want %v", got, want)
	}
	// Original untouched.
	if !math.IsNaN(s[1]) {
		t.Fatal("Interpolate mutated its input")
	}
}

func TestInterpolateEdges(t *testing.T) {
	s := Series{math.NaN(), math.NaN(), 5, 7, math.NaN()}
	got, err := Interpolate(s)
	if err != nil {
		t.Fatal(err)
	}
	want := Series{5, 5, 5, 7, 7}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("interp = %v, want %v", got, want)
		}
	}
}

func TestInterpolateErrors(t *testing.T) {
	if _, err := Interpolate(Series{math.NaN(), math.NaN()}); err == nil {
		t.Fatal("all-NaN should error")
	}
	if _, err := Interpolate(Series{1, math.Inf(1), 2}); err == nil {
		t.Fatal("infinity should error")
	}
}

func TestInterpolateNoGaps(t *testing.T) {
	s := Series{1, 2, 3}
	got, err := Interpolate(s)
	if err != nil {
		t.Fatal(err)
	}
	for i := range s {
		if got[i] != s[i] {
			t.Fatal("gap-free series should be unchanged")
		}
	}
}

func TestCleanDataset(t *testing.T) {
	d := &Dataset{Instances: []Instance{
		{Values: Series{1, 2, 3}, Label: 0},
		{Values: Series{1, math.NaN(), 3}, Label: 1},
		{Values: Series{math.NaN(), 4, math.NaN()}, Label: 0},
	}}
	repaired, err := CleanDataset(d)
	if err != nil {
		t.Fatal(err)
	}
	if repaired != 2 {
		t.Fatalf("repaired = %d", repaired)
	}
	if err := d.Validate(false); err != nil {
		t.Fatalf("cleaned dataset invalid: %v", err)
	}
	if d.Instances[1].Values[1] != 2 {
		t.Fatalf("gap filled with %v", d.Instances[1].Values[1])
	}

	// Unrepairable instance is reported by index.
	bad := &Dataset{Instances: []Instance{
		{Values: Series{1, 2}, Label: 0},
		{Values: Series{math.NaN(), math.NaN()}, Label: 1},
	}}
	if _, err := CleanDataset(bad); err == nil {
		t.Fatal("all-NaN instance should error")
	}
}
