package ts

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzFloats decodes 8-byte chunks as float64s, remapping NaN/±Inf bit
// patterns to finite stand-ins so the harness explores the full finite
// range (including overflow-scale magnitudes) without feeding the
// normalisers inputs they do not claim to accept.
func fuzzFloats(data []byte) []float64 {
	n := len(data) / 8
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint64(data[i*8:])
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(int32(bits))
		}
		out = append(out, v)
	}
	return out
}

// FuzzZNorm asserts the z-normalisation contract for arbitrary finite
// input: the output never contains NaN or Inf — constant series, and
// series whose variance accumulator overflows, normalise to all zeros —
// and ZNormSqDistFromStats stays inside [0, 4w] for whatever statistics
// the sliding windows produce.
func FuzzZNorm(f *testing.F) {
	f.Add([]byte{})
	f.Add(make([]byte, 8*7)) // exactly constant (all zeros)
	big := make([]byte, 8*9)
	for i := 0; i < 9; i++ {
		binary.LittleEndian.PutUint64(big[i*8:], math.Float64bits(1e200)) // variance overflow
	}
	f.Add(big)
	mixed := make([]byte, 8*32)
	for i := range mixed {
		mixed[i] = byte(i * 31)
	}
	f.Add(mixed)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 8*2048 {
			return
		}
		s := fuzzFloats(data)
		z := ZNorm(s)
		if len(z) != len(s) {
			t.Fatalf("ZNorm length %d, want %d", len(z), len(s))
		}
		for i, v := range z {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("ZNorm[%d] = %v from input %v", i, v, s[i])
			}
		}
		// ZNormSqDistFromStats must stay in [0, 4w] — never NaN — for any
		// stats the sliding windows can produce, including Inf/NaN stds
		// from overflow.
		for _, w := range []int{2, 8} {
			if len(s) < w {
				continue
			}
			means, stds := MovingMeanStd(s, w)
			dots := SlidingDots(s[:w], s)
			for j := range dots {
				d := ZNormSqDistFromStats(dots[j], w, means[0], stds[0], means[j], stds[j])
				if math.IsNaN(d) || d < 0 || d > 4*float64(w) {
					t.Fatalf("ZNormSqDistFromStats(w=%d, j=%d) = %v, want in [0, %d]", w, j, d, 4*w)
				}
			}
		}
	})
}
