package ts

import "math"

// ApproxEqual reports whether a and b are within eps of each other.  It is
// the shared epsilon comparison the floateq lint check points to: floating-
// point accumulation order perturbs low-order bits, so computed values are
// never compared with == directly.
//
// Equal infinities compare true regardless of eps; NaN compares false
// against everything, matching IEEE semantics.
func ApproxEqual(a, b, eps float64) bool {
	if a == b {
		return true // exact hit, and the only way two infinities match
	}
	return math.Abs(a-b) <= eps
}

// ApproxEqualSlice reports whether a and b have equal length and are
// element-wise within eps.
func ApproxEqualSlice(a, b []float64, eps float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !ApproxEqual(a[i], b[i], eps) {
			return false
		}
	}
	return true
}

// ApproxEqualRel reports whether a and b are within a relative tolerance:
// |a−b| <= eps·max(|a|, |b|), falling back to the absolute test near zero.
// Use it when the compared magnitudes span orders of magnitude (profile
// distances do).
func ApproxEqualRel(a, b, eps float64) bool {
	if a == b {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale <= 1 {
		return math.Abs(a-b) <= eps
	}
	return math.Abs(a-b) <= eps*scale
}
