package lsh

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func randVec(dim int, rng *rand.Rand) []float64 {
	v := make([]float64, dim)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestKindString(t *testing.T) {
	if L2.String() != "L2" || Cosine.String() != "Cosine" || Hamming.String() != "Hamming" {
		t.Fatal("kind names wrong")
	}
	if Kind(99).String() != "Kind(99)" {
		t.Fatal("unknown kind name wrong")
	}
}

func TestNewDefaults(t *testing.T) {
	f := New(Config{})
	if f.Name() != "L2" || f.Dim() != 32 {
		t.Fatalf("defaults: name=%s dim=%d", f.Name(), f.Dim())
	}
}

func TestDeterminism(t *testing.T) {
	for _, kind := range []Kind{L2, Cosine, Hamming} {
		cfg := Config{Kind: kind, Dim: 16, NumHashes: 8, Width: 2, Seed: 7}
		f1 := New(cfg)
		f2 := New(cfg)
		rng := rand.New(rand.NewSource(1))
		x := randVec(16, rng)
		if f1.Signature(x) != f2.Signature(x) {
			t.Fatalf("%v: same seed gives different signatures", kind)
		}
		p1, p2 := f1.Project(x), f2.Project(x)
		for i := range p1 {
			if p1[i] != p2[i] {
				t.Fatalf("%v: same seed gives different projections", kind)
			}
		}
	}
}

func TestL2CollisionProbabilityOrdering(t *testing.T) {
	// Close points collide far more often than distant points (Def. 10).
	rng := rand.New(rand.NewSource(2))
	dim := 16
	closeHits, farHits := 0, 0
	const trials = 300
	for trial := 0; trial < trials; trial++ {
		f := New(Config{Kind: L2, Dim: dim, NumHashes: 4, Width: 4, Seed: int64(trial)})
		x := randVec(dim, rng)
		near := make([]float64, dim)
		far := make([]float64, dim)
		for i := range x {
			near[i] = x[i] + 0.05*rng.NormFloat64()
			far[i] = x[i] + 5*rng.NormFloat64()
		}
		sx := f.Signature(x)
		if f.Signature(near) == sx {
			closeHits++
		}
		if f.Signature(far) == sx {
			farHits++
		}
	}
	if closeHits <= farHits {
		t.Fatalf("close collisions (%d) should exceed far collisions (%d)", closeHits, farHits)
	}
	if closeHits < trials/2 {
		t.Fatalf("close pairs should usually collide, got %d/%d", closeHits, trials)
	}
}

func TestL2ProjectionPreservesNorm(t *testing.T) {
	// JL property: E‖Project(x)‖² = ‖x‖².  Average over many families.
	rng := rand.New(rand.NewSource(3))
	dim := 32
	x := randVec(dim, rng)
	var xn float64
	for _, v := range x {
		xn += v * v
	}
	var acc float64
	const reps = 400
	for i := 0; i < reps; i++ {
		f := New(Config{Kind: L2, Dim: dim, NumHashes: 8, Seed: int64(i)})
		n := Norm(f, x)
		acc += n * n
	}
	acc /= reps
	if math.Abs(acc-xn)/xn > 0.15 {
		t.Fatalf("mean projected norm² = %v, want ~%v", acc, xn)
	}
}

func TestCosineIgnoresScale(t *testing.T) {
	f := New(Config{Kind: Cosine, Dim: 8, NumHashes: 16, Seed: 4})
	rng := rand.New(rand.NewSource(5))
	x := randVec(8, rng)
	scaled := make([]float64, len(x))
	for i, v := range x {
		scaled[i] = 1000 * v
	}
	if f.Signature(x) != f.Signature(scaled) {
		t.Fatal("cosine signature should be scale invariant")
	}
	p1, p2 := f.Project(x), f.Project(scaled)
	for i := range p1 {
		if math.Abs(p1[i]-p2[i]) > 1e-9 {
			t.Fatal("cosine projection should be scale invariant")
		}
	}
	// Zero vector projects to zeros without NaN.
	z := f.Project(make([]float64, 8))
	for _, v := range z {
		if v != 0 || math.IsNaN(v) {
			t.Fatalf("zero vector projection = %v", z)
		}
	}
}

func TestCosineSeparatesAngles(t *testing.T) {
	f := New(Config{Kind: Cosine, Dim: 4, NumHashes: 32, Seed: 6})
	x := []float64{1, 0, 0, 0}
	y := []float64{-1, 0, 0, 0}
	sx, sy := f.Signature(x), f.Signature(y)
	// Antipodal points have complementary signatures (differ in every bit
	// except hyperplanes passing exactly through them, measure zero).
	same := 0
	for i := range sx {
		if sx[i] == sy[i] {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("antipodal signatures agree on %d/32 bits", same)
	}
}

func TestHammingBinarisation(t *testing.T) {
	f := New(Config{Kind: Hamming, Dim: 6, NumHashes: 6, Seed: 7})
	// A shape pattern above/below its mean.
	x := []float64{10, 10, 10, 0, 0, 0}
	y := []float64{7, 7, 7, -1, -1, -1} // same shape relative to mean
	if f.Signature(x) != f.Signature(y) {
		t.Fatal("same binarised shape should collide")
	}
	z := []float64{0, 0, 0, 10, 10, 10} // inverted shape
	if f.Signature(x) == f.Signature(z) {
		t.Fatal("inverted shape should differ")
	}
	p := f.Project(x)
	for _, v := range p {
		if v != 0 && v != 1 {
			t.Fatalf("hamming projection must be bits, got %v", p)
		}
	}
}

func TestResample(t *testing.T) {
	// Identity when lengths match.
	x := []float64{1, 2, 3, 4}
	got := Resample(x, 4)
	for i := range x {
		if math.Abs(got[i]-x[i]) > 1e-12 {
			t.Fatalf("identity resample = %v", got)
		}
	}
	// Endpoints preserved when upsampling a line, midpoints interpolated.
	got = Resample([]float64{0, 2}, 5)
	want := []float64{0, 0.5, 1, 1.5, 2}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("upsample = %v, want %v", got, want)
		}
	}
	// Downsampling preserves endpoints.
	got = Resample([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8}, 3)
	if got[0] != 0 || got[2] != 8 || math.Abs(got[1]-4) > 1e-12 {
		t.Fatalf("downsample = %v", got)
	}
	// Degenerate inputs.
	if out := Resample(nil, 3); len(out) != 3 {
		t.Fatal("nil input should still produce m zeros")
	}
	if out := Resample([]float64{5}, 3); out[0] != 5 || out[1] != 5 || out[2] != 5 {
		t.Fatalf("single point resample = %v", out)
	}
	if out := Resample([]float64{1, 2}, 0); len(out) != 0 {
		t.Fatal("m=0 should produce empty")
	}
}

// Property: Resample preserves min/max bounds (linear interpolation cannot
// overshoot).
func TestResampleBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(50)
		m := 1 + rng.Intn(50)
		x := randVec(n, rng)
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range x {
			lo = math.Min(lo, v)
			hi = math.Max(hi, v)
		}
		for _, v := range Resample(x, m) {
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestNormNonNegative(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, kind := range []Kind{L2, Cosine, Hamming} {
		f := New(Config{Kind: kind, Dim: 12, NumHashes: 8, Seed: 9})
		for i := 0; i < 20; i++ {
			if n := Norm(f, randVec(12, rng)); n < 0 || math.IsNaN(n) {
				t.Fatalf("%v: norm = %v", kind, n)
			}
		}
	}
}
