// Package lsh implements the locality-sensitive hashing families used by the
// distribution-aware bloom filter (§III-B, Def. 10, Table VII of the IPS
// paper): the p-stable L2 scheme of Datar et al., the cosine (SimHash)
// scheme, and Hamming bit sampling.  Each family provides both a bucket
// signature (for clustering candidates) and a distance-preserving linear
// projection in the sense of the Johnson–Lindenstrauss lemma.
package lsh

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
)

// Kind selects an LSH family.
type Kind int

const (
	// L2 is the p-stable scheme under the L2 norm (the paper's default).
	L2 Kind = iota
	// Cosine is random-hyperplane SimHash; compares angles only.
	Cosine
	// Hamming is bit sampling over a mean-threshold binarisation.
	Hamming
)

// String returns the human-readable family name used in Table VII.
func (k Kind) String() string {
	switch k {
	case L2:
		return "L2"
	case Cosine:
		return "Cosine"
	case Hamming:
		return "Hamming"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Family hashes fixed-dimension vectors.  Subsequences of arbitrary length
// are first brought to the family's dimension with Resample.
type Family interface {
	// Name reports the family kind.
	Name() string
	// Dim is the expected input dimension.
	Dim() int
	// Signature returns the bucket key of x (len(x) must equal Dim).
	Signature(x []float64) string
	// Project maps x to a lower-dimensional point such that Euclidean
	// distances are approximately preserved (JL-style); the DABF measures
	// ‖Project(x)‖ against its fitted distribution.
	Project(x []float64) []float64
}

// Config parameterises New.
type Config struct {
	Kind      Kind
	Dim       int     // input dimension (resampled subsequence length)
	NumHashes int     // number of hash functions / projection components
	Width     float64 // quantisation width r for the L2 scheme
	Seed      int64
}

// New constructs a family from the config.  Zero-valued fields get sensible
// defaults: Dim 32, NumHashes 8, Width 1.
func New(cfg Config) Family {
	if cfg.Dim <= 0 {
		cfg.Dim = 32
	}
	if cfg.NumHashes <= 0 {
		cfg.NumHashes = 8
	}
	if cfg.Width <= 0 {
		cfg.Width = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch cfg.Kind {
	case Cosine:
		return newCosine(cfg, rng)
	case Hamming:
		return newHamming(cfg, rng)
	default:
		return newL2(cfg, rng)
	}
}

// gaussianMatrix returns k rows of dim-dimensional standard normal vectors.
func gaussianMatrix(k, dim int, rng *rand.Rand) [][]float64 {
	m := make([][]float64, k)
	for i := range m {
		row := make([]float64, dim)
		for j := range row {
			row[j] = rng.NormFloat64()
		}
		m[i] = row
	}
	return m
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// l2Family is the p-stable LSH under L2: h_i(x) = ⌊(a_i·x + b_i)/r⌋.
type l2Family struct {
	a     [][]float64
	b     []float64
	r     float64
	dim   int
	scale float64 // 1/√k, making E‖Project(x)‖² = ‖x‖²
}

func newL2(cfg Config, rng *rand.Rand) *l2Family {
	f := &l2Family{
		a:     gaussianMatrix(cfg.NumHashes, cfg.Dim, rng),
		b:     make([]float64, cfg.NumHashes),
		r:     cfg.Width,
		dim:   cfg.Dim,
		scale: 1 / math.Sqrt(float64(cfg.NumHashes)),
	}
	for i := range f.b {
		f.b[i] = rng.Float64() * cfg.Width
	}
	return f
}

func (f *l2Family) Name() string { return L2.String() }
func (f *l2Family) Dim() int     { return f.dim }

func (f *l2Family) Signature(x []float64) string {
	var sb strings.Builder
	for i, row := range f.a {
		h := int(math.Floor((dot(row, x) + f.b[i]) / f.r))
		fmt.Fprintf(&sb, "%d,", h)
	}
	return sb.String()
}

func (f *l2Family) Project(x []float64) []float64 {
	out := make([]float64, len(f.a))
	for i, row := range f.a {
		out[i] = dot(row, x) * f.scale
	}
	return out
}

// cosineFamily is SimHash: signature bits are the signs of random
// hyperplane projections; Project normalises the input to unit norm first,
// so only angular information survives.
type cosineFamily struct {
	a     [][]float64
	dim   int
	scale float64
}

func newCosine(cfg Config, rng *rand.Rand) *cosineFamily {
	return &cosineFamily{
		a:     gaussianMatrix(cfg.NumHashes, cfg.Dim, rng),
		dim:   cfg.Dim,
		scale: 1 / math.Sqrt(float64(cfg.NumHashes)),
	}
}

func (f *cosineFamily) Name() string { return Cosine.String() }
func (f *cosineFamily) Dim() int     { return f.dim }

func unitNorm(x []float64) []float64 {
	var n float64
	for _, v := range x {
		n += v * v
	}
	n = math.Sqrt(n)
	out := make([]float64, len(x))
	if n == 0 {
		return out
	}
	for i, v := range x {
		out[i] = v / n
	}
	return out
}

func (f *cosineFamily) Signature(x []float64) string {
	u := unitNorm(x)
	var sb strings.Builder
	for _, row := range f.a {
		if dot(row, u) >= 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (f *cosineFamily) Project(x []float64) []float64 {
	u := unitNorm(x)
	out := make([]float64, len(f.a))
	for i, row := range f.a {
		out[i] = dot(row, u) * f.scale
	}
	return out
}

// hammingFamily binarises the input by its mean and samples k bit positions.
type hammingFamily struct {
	positions []int
	dim       int
}

func newHamming(cfg Config, rng *rand.Rand) *hammingFamily {
	pos := make([]int, cfg.NumHashes)
	for i := range pos {
		pos[i] = rng.Intn(cfg.Dim)
	}
	return &hammingFamily{positions: pos, dim: cfg.Dim}
}

func (f *hammingFamily) Name() string { return Hamming.String() }
func (f *hammingFamily) Dim() int     { return f.dim }

func binarise(x []float64) []float64 {
	var mean float64
	for _, v := range x {
		mean += v
	}
	mean /= float64(len(x))
	out := make([]float64, len(x))
	for i, v := range x {
		if v >= mean {
			out[i] = 1
		}
	}
	return out
}

func (f *hammingFamily) Signature(x []float64) string {
	bits := binarise(x)
	var sb strings.Builder
	for _, p := range f.positions {
		if bits[p] > 0 {
			sb.WriteByte('1')
		} else {
			sb.WriteByte('0')
		}
	}
	return sb.String()
}

func (f *hammingFamily) Project(x []float64) []float64 {
	bits := binarise(x)
	out := make([]float64, len(f.positions))
	for i, p := range f.positions {
		out[i] = bits[p]
	}
	return out
}

// Norm returns ‖Project(x)‖₂, the quantity the DABF's fitted distribution is
// built over (dist(LSH(e), 0) in Alg. 3).
func Norm(f Family, x []float64) float64 {
	p := f.Project(x)
	var s float64
	for _, v := range p {
		s += v * v
	}
	return math.Sqrt(s)
}

// Resample maps a series of any length to exactly m points by linear
// interpolation, so that subsequences of different candidate lengths can be
// hashed by one fixed-dimension family.
func Resample(x []float64, m int) []float64 {
	out := make([]float64, m)
	if len(x) == 0 || m == 0 {
		return out
	}
	if len(x) == 1 {
		for i := range out {
			out[i] = x[0]
		}
		return out
	}
	step := float64(len(x)-1) / float64(m-1)
	if m == 1 {
		out[0] = x[0]
		return out
	}
	for i := range out {
		pos := float64(i) * step
		j := int(pos)
		if j >= len(x)-1 {
			out[i] = x[len(x)-1]
			continue
		}
		frac := pos - float64(j)
		out[i] = x[j]*(1-frac) + x[j+1]*frac
	}
	return out
}
