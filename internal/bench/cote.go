package bench

import (
	"context"
	"fmt"

	"ips/internal/baselines"
	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/nn"
	"ips/internal/ts"
)

// COTERow compares the full measured ensemble against its strongest member
// on one dataset.
type COTERow struct {
	Dataset    string
	Ensemble   float64
	BestMember float64
	BestName   string
	Members    map[string]float64
}

// COTE measures a full collective-of-classifiers ensemble in the spirit of
// COTE-IPS: every classifier this repository implements (IPS, BASE,
// BSPCOVER, ST, LTS, FS, shapelet tree, Rotation Forest, FCN, 1NN-ED,
// 1NN-DTW) votes with a weight equal to its training accuracy.  The paper's
// Table VI shows the ensemble ranked 1st; the expectation here is that the
// ensemble matches or beats its best single member on most datasets.
func (h *Harness) COTE(ctx context.Context, datasets []string) ([]COTERow, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = []string{"ItalyPowerDemand", "GunPoint", "Coffee", "TwoLeadECG"}
	}
	var rows []COTERow
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.cote"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := COTERow{Dataset: name, Members: map[string]float64{}}
		builder := baselines.NewEnsembleBuilder(train)
		addMember := func(mname string, predict func(*ts.Dataset) []int) {
			builder.AddWeighted(mname, predict)
			row.Members[mname] = classify.Accuracy(predict(test), test.Labels())
		}

		// IPS.
		ipsModel, err := core.Fit(ctx, train, h.ipsOptions())
		if err != nil {
			return nil, err
		}
		addMember("IPS", func(d *ts.Dataset) []int {
			pred, err := ipsModel.Predict(ctx, d)
			if err != nil {
				return nil // nil votes are ignored by the ensemble
			}
			return pred
		})

		// Shapelet-transform methods sharing the common classifier.
		if sh, err := baselines.BaseDiscoverCtx(ctx, train, baselines.BaseConfig{K: h.k(), Workers: h.Workers}); err == nil {
			if m, err := baselines.TrainShapeletClassifierCtx(ctx, train, sh, classify.SVMConfig{Seed: h.Seed}); err == nil {
				addMember("BASE", m.Predict)
			}
		}
		if sh, err := baselines.BSPCoverDiscoverCtx(ctx, train, baselines.BSPConfig{K: h.k()}); err == nil {
			if m, err := baselines.TrainShapeletClassifierCtx(ctx, train, sh, classify.SVMConfig{Seed: h.Seed}); err == nil {
				addMember("BSPCOVER", m.Predict)
			}
		}
		if sh, err := baselines.STDiscoverCtx(ctx, train, baselines.STConfig{Seed: h.Seed}); err == nil {
			if m, err := baselines.TrainShapeletClassifierCtx(ctx, train, sh, classify.SVMConfig{Seed: h.Seed}); err == nil {
				addMember("ST", m.Predict)
			}
		}
		if sh, err := baselines.FastShapeletsDiscoverCtx(ctx, train, baselines.FSConfig{Seed: h.Seed}); err == nil {
			if m, err := baselines.TrainShapeletClassifierCtx(ctx, train, sh, classify.SVMConfig{Seed: h.Seed}); err == nil {
				addMember("FS", m.Predict)
			}
		}

		// Other families.
		if lts, err := baselines.LTSTrain(train, baselines.LTSConfig{Iterations: 120, Seed: h.Seed}); err == nil {
			addMember("LTS", lts.Predict)
		}
		if sdt, err := baselines.SDTreeTrainCtx(ctx, train, baselines.SDTreeConfig{Seed: h.Seed}); err == nil {
			addMember("SDTree", sdt.PredictAll)
		}
		if rotf, err := baselines.RotFTrain(train, baselines.RotFConfig{Seed: h.Seed}); err == nil {
			addMember("RotF", rotf.Predict)
		}
		if fcn, err := nn.TrainFCN(train, nn.FCNConfig{Epochs: 60, Seed: h.Seed}); err == nil {
			addMember("FCN", fcn.PredictAll)
		}
		nnED := classify.NewNN(train.Instances, classify.NNConfig{Metric: classify.Euclidean})
		addMember("1NN-ED", func(d *ts.Dataset) []int { return nnED.PredictAll(d.Instances) })
		nnDTW := classify.NewNN(train.Instances, classify.NNConfig{Metric: classify.DTWWindowed})
		addMember("1NN-DTW", func(d *ts.Dataset) []int { return nnDTW.PredictAll(d.Instances) })

		ensemble, err := builder.Build()
		if err != nil {
			return nil, err
		}
		row.Ensemble = ensemble.Accuracy(test)
		for mname, acc := range row.Members {
			if acc > row.BestMember {
				row.BestMember = acc
				row.BestName = mname
			}
		}
		rows = append(rows, row)
	}

	header := []string{"dataset", "ensemble", "best member", "best member acc", "IPS"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, f1(r.Ensemble), r.BestName, f1(r.BestMember), f1(r.Members["IPS"]),
		})
	}
	fmt.Fprintln(h.out(), "COTE-style full ensemble (training-accuracy-weighted vote of 11 measured classifiers)")
	table(h.out(), header, cells)
	return rows, nil
}
