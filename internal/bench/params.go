package bench

import (
	"context"
	"fmt"
	"time"
)

// ParamsRow is one (Q_N, Q_S) measurement of the parameter-sensitivity
// sweep.
type ParamsRow struct {
	QN, QS   int
	Accuracy float64
	Runtime  time.Duration
}

// ParamsResult holds the sweep of one dataset.
type ParamsResult struct {
	Dataset string
	Rows    []ParamsRow
}

// paramsQN and paramsQS are the parameter sets of §IV-A.
var (
	paramsQN = []int{10, 20, 50, 100}
	paramsQS = []int{2, 3, 4, 5, 10}
)

// Params sweeps the paper's sample-number (Q_N) and sample-size (Q_S)
// parameter grids and reports IPS accuracy and runtime for each setting —
// the sensitivity study behind the §IV-A parameter choices.  In quick mode
// the grid shrinks to the corners plus the default.
func (h *Harness) Params(ctx context.Context, datasets []string) ([]ParamsResult, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = []string{"ItalyPowerDemand", "GunPoint"}
	}
	qns, qss := paramsQN, paramsQS
	if h.Quick {
		qns = []int{10, 50}
		qss = []int{2, 3, 10}
	}
	var out []ParamsResult
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.params"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		res := ParamsResult{Dataset: name}
		for _, qn := range qns {
			for _, qs := range qss {
				opt := h.ipsOptions()
				opt.IP.QN = qn
				opt.IP.QS = qs
				acc, rt, err := evaluateWithOptions(ctx, train, test, opt)
				if err != nil {
					return nil, err
				}
				res.Rows = append(res.Rows, ParamsRow{QN: qn, QS: qs, Accuracy: acc, Runtime: rt})
			}
		}
		out = append(out, res)

		header := []string{"Q_N", "Q_S", "accuracy", "runtime(s)"}
		var cells [][]string
		for _, r := range res.Rows {
			cells = append(cells, []string{
				fmt.Sprintf("%d", r.QN), fmt.Sprintf("%d", r.QS),
				f1(r.Accuracy), secs(r.Runtime),
			})
		}
		fmt.Fprintf(h.out(), "Parameter sensitivity (Q_N × Q_S) on %s\n", name)
		table(h.out(), header, cells)
	}
	return out, nil
}
