package bench

import (
	"context"
	"fmt"
	"math"
	"strings"
	"time"

	"ips/internal/baselines"
	"ips/internal/classify"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Fig13Result holds the interpretability case study of Fig. 13.
type Fig13Result struct {
	Dataset     string
	IPSShapelet classify.Shapelet
	BSPShapelet classify.Shapelet
	ClassMeans  map[int]ts.Series
	IPSRuntime  time.Duration
	BSPRuntime  time.Duration
	SpeedupIPS  float64
}

// Fig13 reproduces the Fig. 13 case study on ItalyPowerDemand: the best IPS
// shapelet and the best BSPCOVER shapelet are rendered as ASCII sparklines
// against the per-class mean series, illustrating that both highlight the
// morning-demand difference while IPS discovers its shapelet several times
// faster (4× in the paper).
func (h *Harness) Fig13(ctx context.Context) (*Fig13Result, error) {
	ctx = benchCtx(ctx)
	const name = "ItalyPowerDemand"
	train, test, err := h.Load(name)
	if err != nil {
		return nil, err
	}
	res := &Fig13Result{Dataset: name, ClassMeans: map[int]ts.Series{}}

	ipsRes, model, err := h.RunIPS(ctx, train, test)
	if err != nil {
		return nil, err
	}
	res.IPSRuntime = ipsRes.Runtime
	best := model.Shapelets[0]
	for _, s := range model.Shapelets {
		if s.Score > best.Score {
			best = s
		}
	}
	res.IPSShapelet = best

	sw := obs.NewStopwatch()
	bspShapelets, err := baselines.BSPCoverDiscoverCtx(ctx, train, baselines.BSPConfig{K: h.k()})
	if err != nil {
		return nil, err
	}
	res.BSPRuntime = sw.Elapsed()
	bspBest := bspShapelets[0]
	for _, s := range bspShapelets {
		if s.Score > bspBest.Score {
			bspBest = s
		}
	}
	res.BSPShapelet = bspBest
	res.SpeedupIPS = res.BSPRuntime.Seconds() / res.IPSRuntime.Seconds()

	// Per-class mean series for the overlay.
	for class, ins := range train.ByClass() {
		mean := make(ts.Series, len(ins[0].Values))
		for _, in := range ins {
			for i, v := range in.Values {
				mean[i] += v
			}
		}
		for i := range mean {
			mean[i] /= float64(len(ins))
		}
		res.ClassMeans[class] = mean
	}

	w := h.out()
	fmt.Fprintf(w, "Fig. 13 — interpretability case study on %s\n", name)
	for class := 0; class < 2; class++ {
		fmt.Fprintf(w, "class %d mean:      %s\n", class, sparkline(res.ClassMeans[class]))
	}
	fmt.Fprintf(w, "IPS shapelet (class %d, len %d):      %s\n",
		res.IPSShapelet.Class, len(res.IPSShapelet.Values), sparkline(res.IPSShapelet.Values))
	fmt.Fprintf(w, "BSPCOVER shapelet (class %d, len %d): %s\n",
		res.BSPShapelet.Class, len(res.BSPShapelet.Values), sparkline(res.BSPShapelet.Values))
	fmt.Fprintf(w, "discovery time: IPS %.3fs vs BSPCOVER %.3fs (%.1fx faster; paper: 4x)\n",
		res.IPSRuntime.Seconds(), res.BSPRuntime.Seconds(), res.SpeedupIPS)
	return res, nil
}

// sparkline renders a series as a Unicode bar sparkline.
func sparkline(s ts.Series) string {
	if len(s) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		return strings.Repeat(string(levels[0]), len(s))
	}
	var sb strings.Builder
	for _, v := range s {
		idx := int((v - lo) / (hi - lo) * float64(len(levels)-1))
		sb.WriteRune(levels[idx])
	}
	return sb.String()
}
