package bench

import (
	"context"
	"fmt"
	"time"

	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/obs"
)

// Table5Row holds one dataset's per-step runtime breakdown.
type Table5Row struct {
	Dataset         string
	CandidateGen    time.Duration
	PruneNaive      time.Duration // "pruning without DABF"
	PruneDABF       time.Duration // "pruning with DABF"
	SelectRaw       time.Duration // "without DT+CR"
	SelectOptimised time.Duration // "with DT+CR"
}

// Table5Datasets are the four datasets of Table V.
var Table5Datasets = []string{"ArrowHead", "Computers", "ShapeletSim", "UWaveGestureLibraryY"}

// Table5 reproduces Table V: the runtime of the three IPS steps, with the
// pruning step measured both with the DABF and with the naive quadratic
// method, and top-k selection measured with and without the DT & CR
// optimisations.  Expectation (paper): DABF and DT+CR each save >= 50%.
func (h *Harness) Table5(ctx context.Context, datasets []string) ([]Table5Row, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Table5Datasets
	}
	cfg := h.ipsOptions()
	// Per-step cost is the quantity under test: enlarge the candidate pool
	// so the pruning and selection stages dominate constant factors (see
	// Fig10a for the same reasoning).
	cfg.IP.QN = 40
	if h.Quick {
		cfg.IP.QN = 20
	}
	var rows []Table5Row
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.table5"); err != nil {
			return nil, err
		}
		train, _, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Table5Row{Dataset: name}
		dsp := h.Obs.Root().Child("table5." + name)

		sw := obs.NewStopwatch()
		gsp := dsp.Child("candidate-gen")
		pool, err := ip.GenerateSpan(ctx, train, cfg.IP, gsp)
		gsp.End()
		if err != nil {
			dsp.End()
			return nil, err
		}
		row.CandidateGen = sw.Elapsed()

		sw = obs.NewStopwatch()
		psp := dsp.Child("prune-dabf")
		bsp := psp.Child("dabf-build")
		d, err := dabf.BuildSpan(ctx, pool, cfg.DABF, bsp)
		bsp.End()
		if err != nil {
			psp.End()
			dsp.End()
			return nil, err
		}
		qsp := psp.Child("dabf-query")
		pruned, _, err := dabf.PruneSpan(ctx, pool, d, qsp)
		qsp.End()
		psp.End()
		if err != nil {
			dsp.End()
			return nil, err
		}
		row.PruneDABF = sw.Elapsed()

		sw = obs.NewStopwatch()
		nsp := dsp.Child("prune-naive")
		if _, _, err := dabf.NaivePrune(ctx, pool, cfg.DABF.Dim, cfg.DABF.Sigma); err != nil {
			nsp.End()
			dsp.End()
			return nil, err
		}
		nsp.End()
		row.PruneNaive = sw.Elapsed()

		sw = obs.NewStopwatch()
		ssp := dsp.Child("select-dtcr")
		if _, err := core.SelectTopK(ctx, pruned, train, d, core.SelectionConfig{K: cfg.K, UseDT: true, UseCR: true, Span: ssp}); err != nil {
			ssp.End()
			dsp.End()
			return nil, err
		}
		ssp.End()
		row.SelectOptimised = sw.Elapsed()

		sw = obs.NewStopwatch()
		rsp := dsp.Child("select-raw")
		if _, err := core.SelectTopK(ctx, pruned, train, d, core.SelectionConfig{K: cfg.K, UseDT: false, UseCR: false, Span: rsp}); err != nil {
			rsp.End()
			dsp.End()
			return nil, err
		}
		rsp.End()
		row.SelectRaw = sw.Elapsed()
		dsp.End()

		rows = append(rows, row)
	}

	header := []string{"dataset", "cand. gen(s)", "prune naive(s)", "prune DABF(s)",
		"select raw(s)", "select DT+CR(s)"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, secs(r.CandidateGen), secs(r.PruneNaive), secs(r.PruneDABF),
			secs(r.SelectRaw), secs(r.SelectOptimised),
		})
	}
	fmt.Fprintln(h.out(), "Table V — per-step efficiency: pruning with/without DABF, selection with/without DT+CR")
	table(h.out(), header, cells)
	return rows, nil
}
