package bench

import (
	"context"
	"fmt"
	"time"
)

// Fig9Point is one (method, k) measurement of Fig. 9.
type Fig9Point struct {
	K        int
	Accuracy float64
	Runtime  time.Duration
}

// Fig9Result holds the Fig. 9 sweep for one dataset.
type Fig9Result struct {
	Dataset string
	Base    []Fig9Point
	IPS     []Fig9Point
	BSP     []Fig9Point
}

// Fig9Ks are the shapelet numbers Fig. 9 sweeps.
var Fig9Ks = []int{1, 2, 5, 10, 20}

// Fig9Datasets are the two datasets of Fig. 9.
var Fig9Datasets = []string{"BeetleFly", "TwoLeadECG"}

// Fig9 reproduces Fig. 9: runtime and accuracy of BASE, IPS, and BSPCOVER as
// the shapelet number k grows.  Expectation: BASE's accuracy is markedly
// lower; IPS tracks BSPCOVER's accuracy at a fraction of its runtime;
// runtimes of BASE/IPS grow roughly linearly with k.
func (h *Harness) Fig9(ctx context.Context, datasets []string) ([]Fig9Result, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Fig9Datasets
	}
	ks := Fig9Ks
	if h.Quick {
		ks = []int{1, 5, 20}
	}
	var out []Fig9Result
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.fig9"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		res := Fig9Result{Dataset: name}
		for _, k := range ks {
			opt := h.ipsOptions()
			opt.K = k
			acc, rt, err := evaluateWithOptions(ctx, train, test, opt)
			if err != nil {
				return nil, err
			}
			res.IPS = append(res.IPS, Fig9Point{K: k, Accuracy: acc, Runtime: rt})

			baseRes, err := h.RunBase(ctx, train, test, k)
			if err != nil {
				return nil, err
			}
			res.Base = append(res.Base, Fig9Point{K: k, Accuracy: baseRes.Accuracy, Runtime: baseRes.Runtime})

			bspRes, err := h.RunBSPCover(ctx, train, test, k)
			if err != nil {
				return nil, err
			}
			res.BSP = append(res.BSP, Fig9Point{K: k, Accuracy: bspRes.Accuracy, Runtime: bspRes.Runtime})
		}
		out = append(out, res)

		header := []string{"k", "BASE acc", "IPS acc", "BSP acc", "BASE s", "IPS s", "BSP s"}
		var cells [][]string
		for i, k := range ks {
			cells = append(cells, []string{
				fmt.Sprintf("%d", k),
				f1(res.Base[i].Accuracy), f1(res.IPS[i].Accuracy), f1(res.BSP[i].Accuracy),
				secs(res.Base[i].Runtime), secs(res.IPS[i].Runtime), secs(res.BSP[i].Runtime),
			})
		}
		fmt.Fprintf(h.out(), "Fig. 9 — efficiency and accuracy vs k on %s\n", name)
		table(h.out(), header, cells)
	}
	return out, nil
}
