package bench

import (
	"context"
	"fmt"
	"time"
)

// Table4Row holds one dataset's efficiency comparison.
type Table4Row struct {
	Dataset         string
	Base, BSP, IPS  time.Duration
	SpeedupBaseIPS  float64 // BASE vs IPS (paper column 5; ~1.2 on average)
	SpeedupIPSvsBSP float64 // IPS vs BSPCOVER (paper column 6; ~25 on average)
	PaperBaseVsIPS  float64
	PaperIPSvsBSP   float64
}

// Table4Quick is the dataset subset used in quick mode: small, medium, and
// the larger-shaped entries so the scaling trend is still visible.
var Table4Quick = []string{
	"ItalyPowerDemand", "SonyAIBORobotSurface1", "TwoLeadECG", "ECG200",
	"GunPoint", "ArrowHead", "Coffee", "BeetleFly", "ToeSegmentation1",
	"ShapeletSim",
}

// Table4 reproduces Table IV: the total running time of BASE, BSPCOVER, and
// IPS per dataset with the two speedup columns.  The paper's expectation:
// BASE is only slightly faster than IPS (~1.2×) while IPS is far faster than
// BSPCOVER (~25× on average); exact factors depend on dataset scale.
func (h *Harness) Table4(ctx context.Context, datasets []string) ([]Table4Row, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		if h.Quick {
			datasets = Table4Quick
		} else {
			datasets = AllDatasets()
		}
	}
	k := h.k()
	var rows []Table4Row
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.table4"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		ipsRes, _, err := h.RunIPS(ctx, train, test)
		if err != nil {
			return nil, err
		}
		baseRes, err := h.RunBase(ctx, train, test, k)
		if err != nil {
			return nil, err
		}
		bspRes, err := h.RunBSPCover(ctx, train, test, k)
		if err != nil {
			return nil, err
		}
		row := Table4Row{
			Dataset:         name,
			Base:            baseRes.Runtime,
			BSP:             bspRes.Runtime,
			IPS:             ipsRes.Runtime,
			SpeedupBaseIPS:  ipsRes.Runtime.Seconds() / baseRes.Runtime.Seconds(),
			SpeedupIPSvsBSP: bspRes.Runtime.Seconds() / ipsRes.Runtime.Seconds(),
		}
		if p, ok := PublishedRuntime[name]; ok {
			row.PaperBaseVsIPS = p[2] / p[0]
			row.PaperIPSvsBSP = p[1] / p[2]
		}
		rows = append(rows, row)
	}

	header := []string{"dataset", "BASE(s)", "BSPCOVER(s)", "IPS(s)",
		"IPS/BASE", "BSP/IPS", "paper IPS/BASE", "paper BSP/IPS"}
	var cells [][]string
	var sumBase, sumBSP float64
	for _, r := range rows {
		sumBase += r.SpeedupBaseIPS
		sumBSP += r.SpeedupIPSvsBSP
		cells = append(cells, []string{
			r.Dataset, secs(r.Base), secs(r.BSP), secs(r.IPS),
			f2(r.SpeedupBaseIPS), f2(r.SpeedupIPSvsBSP),
			f2(r.PaperBaseVsIPS), f2(r.PaperIPSvsBSP),
		})
	}
	n := float64(len(rows))
	cells = append(cells, []string{"Average", "", "", "", f2(sumBase / n), f2(sumBSP / n), "1.20", "25.74"})
	fmt.Fprintln(h.out(), "Table IV — efficiency of BASE / BSPCOVER / IPS and speedups")
	table(h.out(), header, cells)
	return rows, nil
}
