package bench

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"ips/internal/stats"
)

// Fig11Result holds the statistical comparison of Fig. 11.
type Fig11Result struct {
	Friedman *stats.FriedmanResult
	CD       float64
	// Ranked pairs (method, average rank), best first.
	Ranked []MethodRank
	// Wilcoxon holds the pairwise IPS-vs-other p-values with Holm rejection.
	Wilcoxon []PairwiseTest
}

// MethodRank pairs a method with its average rank.
type MethodRank struct {
	Method  string
	AvgRank float64
}

// PairwiseTest is one Wilcoxon signed-rank comparison against IPS.
type PairwiseTest struct {
	Method   string
	PValue   float64
	Rejected bool // significantly different from IPS at Holm-corrected 5%
}

// Fig11 reproduces Fig. 11: the Friedman test over the 13 methods on the 46
// datasets, Wilcoxon signed-rank post-hoc tests against IPS with Holm's
// correction, and an ASCII critical-difference diagram.  It ranks the
// paper's published Table VI matrix by default; pass measured accuracies
// (dataset → method → accuracy, using names from Methods) to rank a
// measured matrix instead.
func (h *Harness) Fig11(measured map[string]map[string]float64) (*Fig11Result, error) {
	datasets := AllDatasets()
	var matrix [][]float64
	for _, name := range datasets {
		row := make([]float64, len(Methods))
		pub := PublishedAccuracy[name]
		for j, m := range Methods {
			v := pub[j]
			if measured != nil {
				if dm, ok := measured[name]; ok {
					if mv, ok := dm[m]; ok {
						v = mv
					}
				}
			}
			if math.IsNaN(v) {
				v = 0 // the one missing entry (ELIS) ranks last, as in the paper
			}
			row[j] = v
		}
		matrix = append(matrix, row)
	}
	fr, err := stats.Friedman(matrix)
	if err != nil {
		return nil, err
	}
	cd, err := stats.NemenyiCD(len(Methods), len(datasets))
	if err != nil {
		return nil, err
	}
	res := &Fig11Result{Friedman: fr, CD: cd}
	for j, m := range Methods {
		res.Ranked = append(res.Ranked, MethodRank{Method: m, AvgRank: fr.AvgRanks[j]})
	}
	sort.Slice(res.Ranked, func(i, j int) bool { return res.Ranked[i].AvgRank < res.Ranked[j].AvgRank })

	// Wilcoxon post-hoc: IPS against every other method.
	ipsCol := len(Methods) - 1
	ipsScores := column(matrix, ipsCol)
	var pvals []float64
	var names []string
	for j, m := range Methods {
		if j == ipsCol {
			continue
		}
		_, p, err := stats.WilcoxonSignedRank(ipsScores, column(matrix, j))
		if err != nil {
			return nil, err
		}
		pvals = append(pvals, p)
		names = append(names, m)
	}
	rejected := stats.HolmCorrection(pvals, 0.05)
	for i, m := range names {
		res.Wilcoxon = append(res.Wilcoxon, PairwiseTest{Method: m, PValue: pvals[i], Rejected: rejected[i]})
	}

	fmt.Fprintf(h.out(), "Fig. 11 — Friedman χ² = %.2f, p = %.4g (k=%d methods, N=%d datasets), Nemenyi CD = %.3f\n",
		fr.Stat, fr.PValue, len(Methods), len(datasets), cd)
	fmt.Fprintln(h.out(), renderCD(res.Ranked, cd))
	fmt.Fprintln(h.out(), "Wilcoxon signed-rank vs IPS (Holm α=0.05):")
	var cells [][]string
	for _, w := range res.Wilcoxon {
		sig := "not significant"
		if w.Rejected {
			sig = "significant"
		}
		cells = append(cells, []string{w.Method, fmt.Sprintf("%.4g", w.PValue), sig})
	}
	table(h.out(), []string{"method", "p-value", "verdict"}, cells)
	return res, nil
}

func column(m [][]float64, j int) []float64 {
	out := make([]float64, len(m))
	for i := range m {
		out[i] = m[i][j]
	}
	return out
}

// renderCD draws an ASCII critical-difference diagram: methods on an average
// rank axis, with a bar marking the CD width from the best method.
func renderCD(ranked []MethodRank, cd float64) string {
	if len(ranked) == 0 {
		return ""
	}
	lo := math.Floor(ranked[0].AvgRank)
	hi := math.Ceil(ranked[len(ranked)-1].AvgRank)
	if hi <= lo {
		hi = lo + 1
	}
	const width = 70
	pos := func(rank float64) int {
		p := int((rank - lo) / (hi - lo) * float64(width-1))
		if p < 0 {
			p = 0
		}
		if p >= width {
			p = width - 1
		}
		return p
	}
	var sb strings.Builder
	sb.WriteString(fmt.Sprintf("rank %-5.1f%s%5.1f\n", lo, strings.Repeat(" ", width-10), hi))
	axis := []byte(strings.Repeat("-", width))
	for _, r := range ranked {
		axis[pos(r.AvgRank)] = '+'
	}
	sb.WriteString("     " + string(axis) + "\n")
	// CD bar anchored at the best method.
	bar := []byte(strings.Repeat(" ", width))
	from := pos(ranked[0].AvgRank)
	to := pos(ranked[0].AvgRank + cd)
	for i := from; i <= to && i < width; i++ {
		bar[i] = '='
	}
	sb.WriteString("  CD " + string(bar) + "\n")
	for _, r := range ranked {
		sb.WriteString(fmt.Sprintf("     %s %s (%.2f)\n",
			strings.Repeat(" ", pos(r.AvgRank)), r.Method, r.AvgRank))
	}
	return sb.String()
}
