package bench

import (
	"context"
	"fmt"

	"ips/internal/lsh"
)

// Table7Row holds one dataset's LSH-family accuracy comparison.
type Table7Row struct {
	Dataset string
	Acc     map[lsh.Kind]float64
}

// Table7Datasets are the ten datasets of Table VII.
var Table7Datasets = Table3Datasets // the paper uses the same ten

// Table7 reproduces Table VII: IPS accuracy with the Hamming, Cosine, and L2
// LSH families.  Expectation: L2 best, Cosine close behind, Hamming worst.
func (h *Harness) Table7(ctx context.Context, datasets []string) ([]Table7Row, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Table7Datasets
		if h.Quick {
			datasets = datasets[:5]
		}
	}
	kinds := []lsh.Kind{lsh.Hamming, lsh.Cosine, lsh.L2}
	var rows []Table7Row
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.table7"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Table7Row{Dataset: name, Acc: map[lsh.Kind]float64{}}
		for _, kind := range kinds {
			opt := h.ipsOptions()
			opt.DABF.LSH = kind
			acc, _, err := evaluateWithOptions(ctx, train, test, opt)
			if err != nil {
				return nil, err
			}
			row.Acc[kind] = acc
		}
		rows = append(rows, row)
	}

	header := []string{"dataset", "Hamming", "Cosine", "L2",
		"paper Hamming", "paper Cosine", "paper L2"}
	var cells [][]string
	for _, r := range rows {
		p, ok := PublishedTable7[r.Dataset]
		paper := []string{"", "", ""}
		if ok {
			paper = []string{f1(p[0]), f1(p[1]), f1(p[2])}
		}
		cells = append(cells, []string{
			r.Dataset, f1(r.Acc[lsh.Hamming]), f1(r.Acc[lsh.Cosine]), f1(r.Acc[lsh.L2]),
			paper[0], paper[1], paper[2],
		})
	}
	fmt.Fprintln(h.out(), "Table VII — IPS accuracy (%) under three LSH families")
	table(h.out(), header, cells)
	return rows, nil
}
