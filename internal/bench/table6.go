package bench

import (
	"context"
	"fmt"
	"math"

	"ips/internal/baselines"
	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/ts"
)

// Table6Row holds one dataset's accuracy results: the five methods this
// repository measures plus the COTE-IPS ensemble stand-in.
type Table6Row struct {
	Dataset string
	ED      float64 // 1NN-ED (the paper's DTW_Rn_1NN column analogue)
	DTW     float64 // 1NN-DTW (windowed)
	Base    float64
	BSP     float64
	IPS     float64
	COTEIPS float64 // ensemble of IPS + 1NN-ED + 1NN-DTW
}

// Table6Quick is the quick-mode dataset subset (two-class and multi-class,
// short and long).
var Table6Quick = []string{
	"ItalyPowerDemand", "ECG200", "GunPoint", "Coffee", "TwoLeadECG",
	"SonyAIBORobotSurface1", "ArrowHead", "CBF", "BeetleFly", "ToeSegmentation1",
}

// Table6 reproduces the measured portion of Table VI: accuracy of IPS, BASE,
// BSPCOVER, 1NN-ED, 1NN-DTW, and the COTE-IPS ensemble stand-in on each
// dataset.  The paper's full 13-method matrix (including quoted results for
// ST, LTS, FS, SD, ELIS, ResNet, COTE, RotF) is embedded in
// PublishedAccuracy and is what Fig11 ranks.
func (h *Harness) Table6(ctx context.Context, datasets []string) ([]Table6Row, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		if h.Quick {
			datasets = Table6Quick
		} else {
			datasets = AllDatasets()
		}
	}
	var rows []Table6Row
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.table6"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Table6Row{Dataset: name}
		row.ED = h.RunNN(train, test, classify.NNConfig{Metric: classify.Euclidean}).Accuracy
		row.DTW = h.RunNN(train, test, classify.NNConfig{Metric: classify.DTWWindowed}).Accuracy
		ipsRes, model, err := h.RunIPS(ctx, train, test)
		if err != nil {
			return nil, err
		}
		row.IPS = ipsRes.Accuracy
		baseRes, err := h.RunBase(ctx, train, test, h.k())
		if err != nil {
			return nil, err
		}
		row.Base = baseRes.Accuracy
		bspRes, err := h.RunBSPCover(ctx, train, test, h.k())
		if err != nil {
			return nil, err
		}
		row.BSP = bspRes.Accuracy

		// COTE-IPS stand-in: training-accuracy-weighted vote.
		row.COTEIPS = h.ensembleAccuracy(ctx, train, test, model)
		rows = append(rows, row)
	}

	header := []string{"dataset", "1NN-ED", "1NN-DTW", "BASE", "BSPCOVER", "IPS", "COTE-IPS",
		"paper BASE", "paper IPS"}
	var cells [][]string
	ipsWins, baseBelow := 0, 0
	for _, r := range rows {
		paperBase, paperIPS := math.NaN(), math.NaN()
		if p, ok := PublishedAccuracy[r.Dataset]; ok {
			paperBase, paperIPS = p[11], p[12]
		}
		cells = append(cells, []string{
			r.Dataset, f1(r.ED), f1(r.DTW), f1(r.Base), f1(r.BSP), f1(r.IPS), f1(r.COTEIPS),
			f1(paperBase), f1(paperIPS),
		})
		if r.IPS > r.Base {
			ipsWins++
		}
		if r.Base < r.IPS {
			baseBelow++
		}
	}
	fmt.Fprintln(h.out(), "Table VI — accuracy (%) of measured methods (paper BASE/IPS columns for reference)")
	table(h.out(), header, cells)
	fmt.Fprintf(h.out(), "IPS beats BASE on %d/%d datasets (paper: 41/46)\n", ipsWins, len(rows))
	return rows, nil
}

// ensembleAccuracy builds the COTE-IPS stand-in over an already-fitted IPS
// model plus the two 1NN baselines and returns its test accuracy (0 when any
// member fails — the stand-in is a diagnostic column, not a pipeline stage).
func (h *Harness) ensembleAccuracy(ctx context.Context, train, test *ts.Dataset, model *core.Model) float64 {
	nnED := classify.NewNN(train.Instances, classify.NNConfig{Metric: classify.Euclidean})
	nnDTW := classify.NewNN(train.Instances, classify.NNConfig{Metric: classify.DTWWindowed})
	ipsPredict := func(d *ts.Dataset) []int {
		pred, err := model.Predict(ctx, d)
		if err != nil {
			return nil // Build rejects the short vote vector below.
		}
		return pred
	}
	e, err := baselines.NewEnsembleBuilder(train).
		AddWeighted("ips", ipsPredict).
		AddWeighted("1nn-ed", func(d *ts.Dataset) []int { return nnED.PredictAll(d.Instances) }).
		AddWeighted("1nn-dtw", func(d *ts.Dataset) []int { return nnDTW.PredictAll(d.Instances) }).
		Build()
	if err != nil {
		return 0
	}
	return e.Accuracy(test)
}
