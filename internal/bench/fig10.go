package bench

import (
	"context"
	"fmt"
	"time"

	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Fig10aRow holds one dataset's pruning-time comparison (Fig. 10a).
type Fig10aRow struct {
	Dataset    string
	WithDABF   time.Duration
	WithoutDAB time.Duration
}

// Fig10bcRow holds one dataset's selection-time and accuracy comparison
// (Fig. 10b and 10c).
type Fig10bcRow struct {
	Dataset  string
	TimeDTCR time.Duration
	TimeRaw  time.Duration
	AccDTCR  float64
	AccRaw   float64
}

// Fig10Datasets is the dataset sweep used for both panels; the paper plots
// all UCR datasets, we default to a representative spread.
var Fig10Datasets = []string{
	"ItalyPowerDemand", "SonyAIBORobotSurface1", "TwoLeadECG", "ECG200",
	"GunPoint", "ArrowHead", "Coffee", "BeetleFly", "ShapeletSim", "ToeSegmentation1",
}

// Fig10a reproduces Fig. 10(a): candidate pruning time with and without the
// DABF across datasets.  Expectation: every dataset lands in the upper
// triangle (naive slower), 2–10× in the paper.
func (h *Harness) Fig10a(ctx context.Context, datasets []string) ([]Fig10aRow, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Fig10Datasets
		if h.Quick {
			datasets = datasets[:6]
		}
	}
	cfg := h.ipsOptions()
	// Pruning cost is the quantity under test: use a large candidate pool so
	// the asymptotic gap (DABF O(|Φ|) vs naive O(|Φ|²)) is visible above
	// constant factors, as it is at the paper's full scale.
	cfg.IP.QN = 40
	if h.Quick {
		cfg.IP.QN = 20
	}
	var rows []Fig10aRow
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.fig10a"); err != nil {
			return nil, err
		}
		train, _, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		dsp := h.Obs.Root().Child("fig10a." + name)
		gsp := dsp.Child("candidate-gen")
		pool, err := ip.GenerateSpan(ctx, train, cfg.IP, gsp)
		gsp.End()
		if err != nil {
			dsp.End()
			return nil, err
		}
		sw := obs.NewStopwatch()
		psp := dsp.Child("prune-dabf")
		bsp := psp.Child("dabf-build")
		d, err := dabf.BuildSpan(ctx, pool, cfg.DABF, bsp)
		bsp.End()
		if err != nil {
			psp.End()
			dsp.End()
			return nil, err
		}
		qsp := psp.Child("dabf-query")
		if _, _, err := dabf.PruneSpan(ctx, pool, d, qsp); err != nil {
			qsp.End()
			psp.End()
			dsp.End()
			return nil, err
		}
		qsp.End()
		psp.End()
		withDABF := sw.Elapsed()

		sw = obs.NewStopwatch()
		nsp := dsp.Child("prune-naive")
		if _, _, err := dabf.NaivePrune(ctx, pool, cfg.DABF.Dim, cfg.DABF.Sigma); err != nil {
			nsp.End()
			dsp.End()
			return nil, err
		}
		nsp.End()
		without := sw.Elapsed()
		dsp.End()

		rows = append(rows, Fig10aRow{Dataset: name, WithDABF: withDABF, WithoutDAB: without})
	}

	header := []string{"dataset", "with DABF(s)", "without DABF(s)", "speedup"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, secs(r.WithDABF), secs(r.WithoutDAB),
			f2(r.WithoutDAB.Seconds() / r.WithDABF.Seconds()),
		})
	}
	fmt.Fprintln(h.out(), "Fig. 10(a) — pruning time with vs without DABF")
	table(h.out(), header, cells)
	return rows, nil
}

// Fig10bc reproduces Fig. 10(b,c): top-k selection time and final accuracy
// with and without the DT & CR optimisations.  Expectation: 50–90% of the
// selection time saved with near-identical accuracy.
func (h *Harness) Fig10bc(ctx context.Context, datasets []string) ([]Fig10bcRow, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Fig10Datasets
		if h.Quick {
			datasets = datasets[:6]
		}
	}
	var rows []Fig10bcRow
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.fig10bc"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Fig10bcRow{Dataset: name}

		opt := h.ipsOptions()
		acc, _, err := core.Evaluate(ctx, train, test, opt)
		if err != nil {
			return nil, err
		}
		row.AccDTCR = acc
		row.TimeDTCR = h.selectionTime(ctx, train, opt)

		opt.DisableDT = true
		opt.DisableCR = true
		acc, _, err = core.Evaluate(ctx, train, test, opt)
		if err != nil {
			return nil, err
		}
		row.AccRaw = acc
		row.TimeRaw = h.selectionTime(ctx, train, opt)

		rows = append(rows, row)
	}

	header := []string{"dataset", "select DT+CR(s)", "select raw(s)", "time saved", "acc DT+CR", "acc raw"}
	var cells [][]string
	for _, r := range rows {
		saved := 1 - r.TimeDTCR.Seconds()/r.TimeRaw.Seconds()
		cells = append(cells, []string{
			r.Dataset, secs(r.TimeDTCR), secs(r.TimeRaw),
			fmt.Sprintf("%.0f%%", 100*saved), f1(r.AccDTCR), f1(r.AccRaw),
		})
	}
	fmt.Fprintln(h.out(), "Fig. 10(b,c) — selection time and accuracy with vs without DT & CR")
	table(h.out(), header, cells)
	return rows, nil
}

// selectionTime isolates the Alg. 4 stage runtime under the given options
// (0 when any stage fails or the context is cancelled — the caller's own
// Evaluate already surfaced the error).
func (h *Harness) selectionTime(ctx context.Context, train *ts.Dataset, opt core.Options) time.Duration {
	pool, err := ip.Generate(ctx, train, opt.IP)
	if err != nil {
		return 0
	}
	d, err := dabf.Build(pool, opt.DABF)
	if err != nil {
		return 0
	}
	pruned, _ := dabf.Prune(pool, d)
	sp := h.Obs.Root().Child("fig10bc.selection." + train.Name)
	sp.SetString("dt_cr", fmt.Sprint(!opt.DisableDT))
	sw := obs.NewStopwatch()
	if _, err := core.SelectTopK(ctx, pruned, train, d, core.SelectionConfig{
		K:     opt.K,
		UseDT: !opt.DisableDT,
		UseCR: !opt.DisableCR,
		Span:  sp,
	}); err != nil {
		sp.End()
		return 0
	}
	sp.End()
	return sw.Elapsed()
}
