package bench

import (
	"bytes"
	"context"
	"strings"
	"testing"
)

func quickHarness(buf *bytes.Buffer) *Harness {
	return &Harness{Quick: true, Seed: 1, Out: buf}
}

func TestPublishedDataComplete(t *testing.T) {
	names := AllDatasets()
	if len(names) != 46 {
		t.Fatalf("AllDatasets = %d, want 46", len(names))
	}
	for _, name := range names {
		acc, ok := PublishedAccuracy[name]
		if !ok {
			t.Fatalf("no published accuracy for %s", name)
		}
		if len(acc) != len(Methods) {
			t.Fatalf("%s has %d accuracy columns, want %d", name, len(acc), len(Methods))
		}
		if _, ok := PublishedRuntime[name]; !ok {
			t.Fatalf("no published runtime for %s", name)
		}
	}
	if len(Methods) != 13 {
		t.Fatalf("methods = %d, want 13", len(Methods))
	}
}

func TestHarnessLoadSyntheticAndQuickCaps(t *testing.T) {
	h := quickHarness(&bytes.Buffer{})
	train, test, err := h.Load("FordA") // real size 3601/1320/500 — must be capped
	if err != nil {
		t.Fatal(err)
	}
	if train.Len() > 30 || test.Len() > 60 || train.SeriesLen() > 160 {
		t.Fatalf("quick caps not applied: %d/%d len %d", train.Len(), test.Len(), train.SeriesLen())
	}
}

func TestTable2Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Table2(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.BaseAcc) != 3 { // quick ks
			t.Fatalf("%s ks = %v", r.Dataset, r.BaseAcc)
		}
		if r.ED <= 0 || r.DTW <= 0 {
			t.Fatalf("%s baselines missing", r.Dataset)
		}
	}
	if !strings.Contains(buf.String(), "Table II") {
		t.Fatal("output missing table header")
	}
}

func TestTable3Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Table3(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 10 {
		t.Fatalf("rows = %d", len(rows))
	}
	normish := 0
	for _, r := range rows {
		if r.BestFit == "" || r.NMSE < 0 {
			t.Fatalf("bad row %+v", r)
		}
		if r.BestFit == "Norm" || r.BestFit == "Gamma" {
			normish++
		}
	}
	// The paper finds Norm/Gamma on all ten; our fit should mostly agree.
	if normish < 6 {
		t.Fatalf("only %d/10 datasets fit Norm/Gamma", normish)
	}
}

func TestTable4Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Table4(context.Background(), []string{"ItalyPowerDemand", "ECG200", "GunPoint"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	fasterThanBSP := 0
	for _, r := range rows {
		if r.IPS <= 0 || r.Base <= 0 || r.BSP <= 0 {
			t.Fatalf("missing timings: %+v", r)
		}
		if r.SpeedupIPSvsBSP > 1 {
			fasterThanBSP++
		}
	}
	// The headline claim, at reduced scale: IPS beats BSPCOVER on most.
	if fasterThanBSP < 2 {
		t.Fatalf("IPS faster than BSPCOVER on only %d/3 datasets", fasterThanBSP)
	}
}

func TestTable5Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Table5(context.Background(), []string{"ArrowHead", "ShapeletSim"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.CandidateGen <= 0 {
			t.Fatalf("no candidate generation time for %s", r.Dataset)
		}
		if r.PruneDABF <= 0 || r.PruneNaive <= 0 || r.SelectRaw <= 0 || r.SelectOptimised <= 0 {
			t.Fatalf("missing step timings: %+v", r)
		}
	}
}

func TestTable6Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	h.Runs = 3 // the paper averages 5 runs; 3 keeps CI noise down
	datasets := []string{"ItalyPowerDemand", "GunPoint", "Coffee", "TwoLeadECG", "ECG200", "ArrowHead"}
	rows, err := h.Table6(context.Background(), datasets)
	if err != nil {
		t.Fatal(err)
	}
	ipsBeatsBase := 0
	for _, r := range rows {
		if r.IPS <= 0 || r.Base <= 0 || r.ED <= 0 {
			t.Fatalf("missing accuracies: %+v", r)
		}
		if r.IPS >= r.Base {
			ipsBeatsBase++
		}
	}
	// Paper: IPS above BASE on 41/46; demand a majority at quick scale.
	if ipsBeatsBase < 4 {
		t.Fatalf("IPS >= BASE on only %d/%d datasets", ipsBeatsBase, len(datasets))
	}
}

func TestTable7Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Table7(context.Background(), []string{"ItalyPowerDemand", "GunPoint"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if len(r.Acc) != 3 {
			t.Fatalf("families = %d", len(r.Acc))
		}
	}
}

func TestFig9Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	res, err := h.Fig9(context.Background(), []string{"BeetleFly"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].IPS) != 3 {
		t.Fatalf("unexpected sweep shape: %+v", res)
	}
}

func TestFig10Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rowsA, err := h.Fig10a(context.Background(), []string{"ItalyPowerDemand", "ECG200"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rowsA {
		if r.WithDABF <= 0 || r.WithoutDAB <= 0 {
			t.Fatalf("missing prune timings: %+v", r)
		}
	}
	rowsBC, err := h.Fig10bc(context.Background(), []string{"ItalyPowerDemand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rowsBC) != 1 || rowsBC[0].TimeRaw <= 0 {
		t.Fatalf("missing selection timings: %+v", rowsBC)
	}
}

func TestFig11OnPublishedMatrix(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	res, err := h.Fig11(nil)
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports p = 0.00: overwhelmingly significant.
	if res.Friedman.PValue > 1e-6 {
		t.Fatalf("Friedman p = %v", res.Friedman.PValue)
	}
	// IPS is ranked 4th among the 13 methods in the paper.
	pos := -1
	for i, r := range res.Ranked {
		if r.Method == "IPS" {
			pos = i + 1
		}
	}
	if pos < 3 || pos > 5 {
		t.Fatalf("IPS ranked %d on the published matrix, paper says 4th", pos)
	}
	// COTE-IPS is ranked 1st.
	if res.Ranked[0].Method != "COTE-IPS" {
		t.Fatalf("top method = %s, paper says COTE-IPS", res.Ranked[0].Method)
	}
	// BASE and FS/SD near the bottom.
	bottom := map[string]bool{}
	for _, r := range res.Ranked[len(res.Ranked)-4:] {
		bottom[r.Method] = true
	}
	if !bottom["BASE"] {
		t.Fatalf("BASE not in the bottom four: %+v", res.Ranked)
	}
	if len(res.Wilcoxon) != 12 {
		t.Fatalf("wilcoxon pairs = %d", len(res.Wilcoxon))
	}
	if !strings.Contains(buf.String(), "CD") {
		t.Fatal("no CD diagram in output")
	}
}

func TestFig12Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Fig12(context.Background(), []string{"ArrowHead", "MoteStrain"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Acc) != 3 {
			t.Fatalf("%s sweep = %v", r.Dataset, r.Acc)
		}
	}
}

func TestFig13Quick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	res, err := h.Fig13(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IPSShapelet.Values) == 0 || len(res.BSPShapelet.Values) == 0 {
		t.Fatal("missing case-study shapelets")
	}
	if len(res.ClassMeans) != 2 {
		t.Fatalf("class means = %d", len(res.ClassMeans))
	}
	out := buf.String()
	if !strings.Contains(out, "IPS shapelet") || !strings.Contains(out, "BSPCOVER shapelet") {
		t.Fatal("case study output incomplete")
	}
}

func TestParamsQuick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	res, err := h.Params(context.Background(), []string{"ItalyPowerDemand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 6 { // 2 QN × 3 QS in quick mode
		t.Fatalf("sweep shape = %+v", res)
	}
	for _, r := range res[0].Rows {
		if r.Accuracy <= 0 || r.Runtime <= 0 {
			t.Fatalf("bad row %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "Parameter sensitivity") {
		t.Fatal("missing output header")
	}
}

func TestTable6ExtendedQuick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.Table6Extended(context.Background(), []string{"ItalyPowerDemand", "GunPoint"})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.RotF <= 0 || r.LTS <= 0 || r.FS <= 0 || r.ST <= 0 || r.SDTree <= 0 || r.FCN <= 0 {
			t.Fatalf("missing extended measurements: %+v", r)
		}
	}
}

func TestAblationQuick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	res, err := h.Ablation(context.Background(), []string{"ItalyPowerDemand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 1 || len(res[0].Rows) != 5 {
		t.Fatalf("ablation shape = %+v", res)
	}
	for _, r := range res[0].Rows {
		if r.Accuracy <= 0 || r.Runtime <= 0 {
			t.Fatalf("bad variant row %+v", r)
		}
	}
	if !strings.Contains(buf.String(), "Design-choice ablation") {
		t.Fatal("missing output header")
	}
}

func TestCOTEQuick(t *testing.T) {
	var buf bytes.Buffer
	h := quickHarness(&buf)
	rows, err := h.COTE(context.Background(), []string{"ItalyPowerDemand"})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if len(r.Members) < 10 {
		t.Fatalf("ensemble members = %d", len(r.Members))
	}
	// The weighted ensemble should be within a few points of its best
	// member (the paper's COTE-IPS property).
	if r.Ensemble < r.BestMember-10 {
		t.Fatalf("ensemble %v far below best member %v (%s)", r.Ensemble, r.BestMember, r.BestName)
	}
}

func TestSparkline(t *testing.T) {
	s := sparkline([]float64{0, 1, 2, 3})
	if len([]rune(s)) != 4 {
		t.Fatalf("sparkline runes = %q", s)
	}
	if sparkline(nil) != "" {
		t.Fatal("empty sparkline should be empty")
	}
	flat := sparkline([]float64{5, 5, 5})
	for _, r := range flat {
		if r != '▁' {
			t.Fatalf("flat sparkline = %q", flat)
		}
	}
}

func TestRenderCDEmpty(t *testing.T) {
	if renderCD(nil, 1) != "" {
		t.Fatal("empty CD diagram should be empty")
	}
}

func TestTableFormatting(t *testing.T) {
	var buf bytes.Buffer
	table(&buf, []string{"a", "bb"}, [][]string{{"111", "2"}})
	out := buf.String()
	if !strings.Contains(out, "a    bb") && !strings.Contains(out, "a  ") {
		t.Fatalf("table output = %q", out)
	}
	if !strings.Contains(out, "---") {
		t.Fatalf("missing separator: %q", out)
	}
}
