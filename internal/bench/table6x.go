package bench

import (
	"context"
	"fmt"

	"ips/internal/baselines"
	"ips/internal/classify"
	"ips/internal/nn"
)

// Table6ExtendedRow adds the additionally implemented Table VI methods —
// Rotation Forest, LTS, and Fast Shapelets — to the measured comparison.
type Table6ExtendedRow struct {
	Table6Row
	RotF   float64
	LTS    float64
	FS     float64
	ST     float64
	SDTree float64 // Ye & Keogh's original shapelet decision tree
	FCN    float64 // plain FCN, the architecture family of the ResNet column
}

// Table6Extended measures nine methods per dataset: the six of Table6 plus
// Rotation Forest, learning shapelets (LTS), and fast shapelets (FS), the
// three Table VI columns this repository implements beyond the paper's own
// measured set.
func (h *Harness) Table6Extended(ctx context.Context, datasets []string) ([]Table6ExtendedRow, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Table6Quick
		if !h.Quick {
			datasets = AllDatasets()
		}
	}
	base, err := h.Table6(ctx, datasets)
	if err != nil {
		return nil, err
	}
	var rows []Table6ExtendedRow
	for i, name := range datasets {
		if err := ctxErr(ctx, "bench.table6x"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Table6ExtendedRow{Table6Row: base[i]}
		row.RotF, err = baselines.RotFEvaluate(train, test, baselines.RotFConfig{Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		iterations := 300
		if h.Quick {
			iterations = 120
		}
		row.LTS, err = baselines.LTSEvaluate(train, test, baselines.LTSConfig{Iterations: iterations, Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		row.FS, err = baselines.FastShapeletsEvaluateCtx(ctx, train, test,
			baselines.FSConfig{Seed: h.Seed}, classify.SVMConfig{Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		row.ST, err = baselines.STEvaluateCtx(ctx, train, test,
			baselines.STConfig{Seed: h.Seed}, classify.SVMConfig{Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		row.SDTree, err = baselines.SDTreeEvaluateCtx(ctx, train, test, baselines.SDTreeConfig{Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		epochs := 120
		if h.Quick {
			epochs = 60
		}
		fcn, err := nn.TrainFCN(train, nn.FCNConfig{Epochs: epochs, Seed: h.Seed})
		if err != nil {
			return nil, err
		}
		row.FCN = classify.Accuracy(fcn.PredictAll(test), test.Labels())
		rows = append(rows, row)
	}

	header := []string{"dataset", "RotF", "ST", "LTS", "FS", "SDTree", "FCN", "BASE", "BSPCOVER", "IPS"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, f1(r.RotF), f1(r.ST), f1(r.LTS), f1(r.FS), f1(r.SDTree), f1(r.FCN),
			f1(r.Base), f1(r.BSP), f1(r.IPS),
		})
	}
	fmt.Fprintln(h.out(), "Table VI (extended) — additionally measured methods")
	table(h.out(), header, cells)
	return rows, nil
}

// Fig11Measured re-runs the Fig. 11 statistics with the measured accuracies
// of the methods this repository implements substituted into the published
// matrix (quoted columns stay quoted, as in the paper itself).
func (h *Harness) Fig11Measured(ctx context.Context, datasets []string) (*Fig11Result, error) {
	rows, err := h.Table6Extended(ctx, datasets)
	if err != nil {
		return nil, err
	}
	measured := map[string]map[string]float64{}
	for _, r := range rows {
		measured[r.Dataset] = map[string]float64{
			"RotF":       r.RotF,
			"DTW_Rn_1NN": r.DTW,
			"ST":         r.ST,
			"LTS":        r.LTS,
			"FS":         r.FS,
			"SD":         r.SDTree,
			"ResNet":     r.FCN,
			"BSPCOVER":   r.BSP,
			"COTE-IPS":   r.COTEIPS,
			"BASE":       r.Base,
			"IPS":        r.IPS,
		}
	}
	return h.Fig11(measured)
}
