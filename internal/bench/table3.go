package bench

import (
	"context"
	"fmt"

	"ips/internal/dabf"
	"ips/internal/ip"
)

// Table3Row holds one dataset's best-fit distribution result.
type Table3Row struct {
	Dataset   string
	BestFit   string
	NMSE      float64
	PaperFit  string
	PaperNMSE float64
}

// Table3Datasets are the ten datasets of Table III.
var Table3Datasets = []string{
	"ArrowHead", "BeetleFly", "Coffee", "ECG200", "FordA",
	"GunPoint", "ItalyPowerDemand", "Meat", "Symbols", "ToeSegmentation1",
}

// Table3 reproduces Table III: the best-fit distribution of the DABF bucket
// histogram per dataset under NMSE (Formula 10).  The paper finds Norm on
// 9/10 datasets (Gamma on Meat); the measured column reports what our fitter
// selects on the generated data.  The reported NMSE is averaged over the
// dataset's classes; the fit name is the majority vote across classes.
func (h *Harness) Table3(ctx context.Context) ([]Table3Row, error) {
	ctx = benchCtx(ctx)
	var rows []Table3Row
	for _, name := range Table3Datasets {
		if err := ctxErr(ctx, "bench.table3"); err != nil {
			return nil, err
		}
		train, _, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		cfg := h.ipsOptions()
		dsp := h.Obs.Root().Child("table3." + name)
		gsp := dsp.Child("candidate-gen")
		pool, err := ip.GenerateSpan(ctx, train, cfg.IP, gsp)
		gsp.End()
		if err != nil {
			dsp.End()
			return nil, err
		}
		bsp := dsp.Child("dabf-build")
		d, err := dabf.BuildSpan(ctx, pool, cfg.DABF, bsp)
		bsp.End()
		dsp.End()
		if err != nil {
			return nil, err
		}
		votes := map[string]int{}
		var nmse float64
		for _, cf := range d.PerClass {
			votes[cf.Dist.Name()]++
			nmse += cf.FitNMSE
		}
		nmse /= float64(len(d.PerClass))
		best, bestN := "", -1
		for fit, n := range votes {
			if n > bestN || (n == bestN && fit < best) {
				best, bestN = fit, n
			}
		}
		row := Table3Row{Dataset: name, BestFit: best, NMSE: nmse}
		if p, ok := PublishedTable3[name]; ok {
			row.PaperFit = p.Dist
			row.PaperNMSE = p.NMSE
		}
		rows = append(rows, row)
	}

	header := []string{"dataset", "best fit", "NMSE", "paper fit", "paper NMSE"}
	var cells [][]string
	for _, r := range rows {
		cells = append(cells, []string{
			r.Dataset, r.BestFit, fmt.Sprintf("%.3f", r.NMSE), r.PaperFit, fmt.Sprintf("%.3f", r.PaperNMSE),
		})
	}
	fmt.Fprintln(h.out(), "Table III — best-fit distribution of DABF construction under NMSE")
	table(h.out(), header, cells)
	return rows, nil
}
