package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"

	"ips/internal/classify"
	"ips/internal/dist"
	"ips/internal/obs"
	"ips/internal/ts"
	"ips/internal/ucr"
)

// TransformBenchResult is one (dataset, shapelet length) transform
// measurement: the naive per-pair ts.Dist loop against the batched engine,
// both single-threaded, so the ratio isolates the algorithmic win (shared
// sliding statistics, norm-bound pruning, fft crossover) from parallelism.
type TransformBenchResult struct {
	Dataset      string `json:"dataset"`
	Instances    int    `json:"instances"`
	SeriesLen    int    `json:"series_len"`
	ShapeletLen  int    `json:"shapelet_len"`
	NumShapelets int    `json:"num_shapelets"`
	// Kernel is the crossover's choice for this (shapelet, series) shape.
	Kernel        string  `json:"kernel"`
	NaiveSeconds  float64 `json:"naive_seconds"`
	EngineSeconds float64 `json:"engine_seconds"`
	// Speedup is naive over engine wall time (single worker on both sides).
	Speedup float64 `json:"speedup"`
}

// TransformBenchReport is the full transform snapshot written to
// BENCH_transform.json.
type TransformBenchReport struct {
	// GOMAXPROCS records available parallelism; both sides of every row run
	// single-threaded, so speedups here are algorithmic, not parallel.
	GOMAXPROCS int                    `json:"gomaxprocs"`
	NumCPU     int                    `json:"numcpu"`
	Quick      bool                   `json:"quick"`
	Results    []TransformBenchResult `json:"results"`
}

// transformBenchCells returns the (dataset, instance cap, shapelet lengths,
// shapelets per length) grid.  GunPoint (150 points) and Mallat (1024
// points) stay on the rolling kernel under the auto crossover; HandOutlines'
// 2709-point series cross into fft at the 1024-point length.
func (h *Harness) transformBenchCells() []struct {
	dataset  string
	maxTrain int
	lengths  []int
	perLen   int
} {
	type cell = struct {
		dataset  string
		maxTrain int
		lengths  []int
		perLen   int
	}
	if h.Quick {
		return []cell{
			{"GunPoint", 30, []int{16, 64}, 8},
			{"Mallat", 8, []int{64, 512}, 4},
			{"HandOutlines", 4, []int{1024}, 4},
		}
	}
	return []cell{
		{"GunPoint", 50, []int{16, 64, 100}, 16},
		{"Mallat", 24, []int{64, 256, 512}, 16},
		{"HandOutlines", 10, []int{256, 1024}, 8},
	}
}

// TransformBench measures the shapelet transform — the embedding hot path
// every classifier in the repo funnels through — as a (dataset × shapelet
// length) grid, comparing the per-pair ts.Dist loop the transform used
// before the batched engine against classify.Transform on the engine.  Both
// sides run single-threaded and each cell is the best of three runs; the
// engine's output is verified byte-identical to the naive loop before
// timing is reported.  Snapshot with WriteJSON as BENCH_transform.json.
func (h *Harness) TransformBench(ctx context.Context) (*TransformBenchReport, error) {
	ctx = benchCtx(ctx)
	report := &TransformBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      h.Quick,
	}
	var rows [][]string
	for _, cell := range h.transformBenchCells() {
		if err := ctxErr(ctx, "bench.transform"); err != nil {
			return nil, err
		}
		// Generated directly (not via Load) so the harness's MaxLength cap
		// does not truncate the long series the fft crossover needs.
		train, _, err := ucr.GenerateByName(cell.dataset, ucr.GenConfig{
			Seed: h.Seed, MaxTrain: cell.maxTrain, MaxTest: 1,
		})
		if err != nil {
			return nil, err
		}
		n := train.SeriesLen()
		for _, L := range cell.lengths {
			if L > n {
				continue
			}
			shapelets := make([]classify.Shapelet, cell.perLen)
			for i := range shapelets {
				in := train.Instances[i%len(train.Instances)]
				at := (i * 31) % (len(in.Values) - L + 1)
				shapelets[i] = classify.Shapelet{Class: in.Label, Values: in.Values[at : at+L].Clone()}
			}
			naive := func() [][]float64 {
				out := make([][]float64, len(train.Instances))
				for j, in := range train.Instances {
					row := make([]float64, len(shapelets))
					for si, s := range shapelets {
						row[si] = ts.Dist(s.Values, in.Values)
					}
					out[j] = row
				}
				return out
			}
			var want, got [][]float64
			naiveBest, engineBest := 0.0, 0.0
			for attempt := 0; attempt < 3; attempt++ {
				sw := obs.NewStopwatch()
				want = naive()
				if el := sw.Elapsed().Seconds(); attempt == 0 || el < naiveBest {
					naiveBest = el
				}
				sw = obs.NewStopwatch()
				got, err = classify.TransformCtx(ctx, train, shapelets, 1, nil, nil)
				if err != nil {
					return nil, err
				}
				if el := sw.Elapsed().Seconds(); attempt == 0 || el < engineBest {
					engineBest = el
				}
			}
			// At float64 the engine is byte-identical to ts.Dist by
			// contract; under -precision float32 it returns the distance of
			// the rounded inputs, so the check relaxes to the documented
			// relative tolerance instead of exact bits.
			for j := range want {
				for si := range want[j] {
					if classify.DefaultPrecision == dist.PrecisionFloat32 {
						scale := 1.0
						if want[j][si] > scale {
							scale = want[j][si]
						}
						if math.Abs(got[j][si]-want[j][si]) <= 1e-3*scale {
							continue
						}
					} else if math.Float64bits(got[j][si]) == math.Float64bits(want[j][si]) {
						continue
					}
					return nil, fmt.Errorf("bench: transform diverged from ts.Dist on %s L=%d at [%d][%d]: %v vs %v",
						cell.dataset, L, j, si, got[j][si], want[j][si])
				}
			}
			res := TransformBenchResult{
				Dataset:       cell.dataset,
				Instances:     len(train.Instances),
				SeriesLen:     n,
				ShapeletLen:   L,
				NumShapelets:  len(shapelets),
				Kernel:        dist.KernelFor(L, n).String(),
				NaiveSeconds:  naiveBest,
				EngineSeconds: engineBest,
				Speedup:       naiveBest / engineBest,
			}
			report.Results = append(report.Results, res)
			rows = append(rows, []string{
				cell.dataset, fmt.Sprint(res.Instances), fmt.Sprint(n), fmt.Sprint(L),
				fmt.Sprint(res.NumShapelets), res.Kernel,
				fmt.Sprintf("%.4f", res.NaiveSeconds), fmt.Sprintf("%.4f", res.EngineSeconds),
				fmt.Sprintf("%.2f", res.Speedup),
			})
		}
	}
	fmt.Fprintf(h.out(), "shapelet transform (GOMAXPROCS=%d, both sides single-threaded)\n", report.GOMAXPROCS)
	table(h.out(), []string{"dataset", "inst", "n", "L", "|S|", "kernel", "naive s", "engine s", "speedup"}, rows)
	return report, nil
}

// WriteJSON writes the report to path as indented JSON.
func (r *TransformBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
