package bench

import (
	"context"
	"fmt"
	"time"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/ts"
)

// AblationRow reports one configuration of the design-choice ablation.
type AblationRow struct {
	Variant  string
	Accuracy float64
	Runtime  time.Duration
}

// AblationResult holds the ablation grid for one dataset.
type AblationResult struct {
	Dataset string
	Rows    []AblationRow
}

// Ablation measures the contribution of each IPS design choice on a dataset
// sweep: the full pipeline, then one variant per removed ingredient —
// no DT, no CR, naive pruning instead of the DABF, and no discord
// candidates in the inter-class utility (Def. 12 uses motifs AND discords
// of other classes; this variant drops the discords).
func (h *Harness) Ablation(ctx context.Context, datasets []string) ([]AblationResult, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = []string{"ItalyPowerDemand", "GunPoint", "ArrowHead"}
	}
	var out []AblationResult
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.ablation"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		res := AblationResult{Dataset: name}

		run := func(variant string, opt core.Options, mutatePool bool) error {
			sw := obs.NewStopwatch()
			var acc float64
			if mutatePool {
				acc, err = h.evaluateWithoutDiscords(ctx, train, test, opt)
			} else {
				acc, _, err = core.Evaluate(ctx, train, test, opt)
			}
			if err != nil {
				return err
			}
			res.Rows = append(res.Rows, AblationRow{Variant: variant, Accuracy: acc, Runtime: sw.Elapsed()})
			return nil
		}

		base := h.ipsOptions()
		if err := run("full", base, false); err != nil {
			return nil, err
		}
		v := base
		v.DisableDT = true
		if err := run("no DT", v, false); err != nil {
			return nil, err
		}
		v = base
		v.DisableCR = true
		if err := run("no CR", v, false); err != nil {
			return nil, err
		}
		v = base
		v.DisableDABF = true
		if err := run("naive pruning", v, false); err != nil {
			return nil, err
		}
		if err := run("no discords", base, true); err != nil {
			return nil, err
		}
		out = append(out, res)

		header := []string{"variant", "accuracy", "runtime(s)"}
		var cells [][]string
		for _, r := range res.Rows {
			cells = append(cells, []string{r.Variant, f1(r.Accuracy), secs(r.Runtime)})
		}
		fmt.Fprintf(h.out(), "Design-choice ablation on %s\n", name)
		table(h.out(), header, cells)
	}
	return out, nil
}

// evaluateWithoutDiscords runs the pipeline with discord candidates stripped
// from the pool before pruning/selection, isolating their contribution to
// the inter-class utility.
func (h *Harness) evaluateWithoutDiscords(ctx context.Context, train, test *ts.Dataset, opt core.Options) (float64, error) {
	opt = opt.WithDefaults()
	sp := h.Obs.Root().Child("ablation.no-discords." + train.Name)
	defer sp.End()
	gsp := sp.Child("candidate-gen")
	pool, err := ip.GenerateSpan(ctx, train, opt.IP, gsp)
	gsp.End()
	if err != nil {
		return 0, err
	}
	for class, cands := range pool.ByClass {
		var motifsOnly []ip.Candidate
		for _, c := range cands {
			if c.Kind == ip.Motif {
				motifsOnly = append(motifsOnly, c)
			}
		}
		pool.ByClass[class] = motifsOnly
	}
	bsp := sp.Child("dabf-build")
	d, err := dabf.BuildSpan(ctx, pool, opt.DABF, bsp)
	bsp.End()
	if err != nil {
		return 0, err
	}
	qsp := sp.Child("dabf-query")
	pruned, _, err := dabf.PruneSpan(ctx, pool, d, qsp)
	qsp.End()
	if err != nil {
		return 0, err
	}
	ssp := sp.Child("selection")
	shapelets, err := core.SelectTopK(ctx, pruned, train, d, core.SelectionConfig{K: opt.K, UseDT: true, UseCR: true, Span: ssp})
	ssp.End()
	if err != nil {
		return 0, err
	}
	if len(shapelets) == 0 {
		return 0, fmt.Errorf("bench: no shapelets without discords")
	}
	X, err := classify.TransformCtx(ctx, train, shapelets, 0, nil, nil)
	if err != nil {
		return 0, err
	}
	scaler, err := classify.FitScaler(X)
	if err != nil {
		return 0, err
	}
	svm, err := classify.TrainSVMCtx(ctx, scaler.Apply(X), train.Labels(), opt.SVM, nil)
	if err != nil {
		return 0, err
	}
	Xt, err := classify.TransformCtx(ctx, test, shapelets, 0, nil, nil)
	if err != nil {
		return 0, err
	}
	pred := svm.PredictAll(scaler.Apply(Xt))
	return classify.Accuracy(pred, test.Labels()), nil
}
