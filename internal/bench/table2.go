package bench

import (
	"context"
	"fmt"

	"ips/internal/classify"
)

// Table2Row holds one dataset's Table II measurements: BASE accuracy at each
// k plus the 1NN-ED and 1NN-DTW references.
type Table2Row struct {
	Dataset string
	BaseAcc map[int]float64
	ED      float64
	DTW     float64
}

// Table2Ks are the k values Table II sweeps.
var Table2Ks = []int{1, 2, 5, 10, 20, 50, 100}

// Table2Datasets are the four datasets of Table II.
var Table2Datasets = []string{"ArrowHead", "MoteStrain", "ShapeletSim", "ToeSegmentation1"}

// Table2 reproduces Table II: the MP baseline's top-k accuracy versus
// 1NN-ED/1NN-DTW, demonstrating the two issues of §II-B (BASE stays below
// the simple baselines at every k).
func (h *Harness) Table2(ctx context.Context) ([]Table2Row, error) {
	ctx = benchCtx(ctx)
	ks := Table2Ks
	if h.Quick {
		ks = []int{1, 5, 20}
	}
	var rows []Table2Row
	for _, name := range Table2Datasets {
		if err := ctxErr(ctx, "bench.table2"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Dataset: name, BaseAcc: map[int]float64{}}
		for _, k := range ks {
			r, err := h.RunBase(ctx, train, test, k)
			if err != nil {
				return nil, err
			}
			row.BaseAcc[k] = r.Accuracy
		}
		row.ED = h.RunNN(train, test, classify.NNConfig{Metric: classify.Euclidean}).Accuracy
		row.DTW = h.RunNN(train, test, classify.NNConfig{Metric: classify.DTWWindowed}).Accuracy
		rows = append(rows, row)
	}

	header := []string{"dataset"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	header = append(header, "1NN-ED", "1NN-DTW")
	var cells [][]string
	for _, row := range rows {
		c := []string{row.Dataset}
		for _, k := range ks {
			c = append(c, f1(row.BaseAcc[k]))
		}
		c = append(c, f1(row.ED), f1(row.DTW))
		cells = append(cells, c)
	}
	fmt.Fprintln(h.out(), "Table II — accuracy (%) of BASE top-k vs 1NN baselines")
	table(h.out(), header, cells)
	return rows, nil
}
