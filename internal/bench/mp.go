package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"ips/internal/mp"
	"ips/internal/obs"
)

// MPBenchResult is one (N, w, workers) kernel measurement.
type MPBenchResult struct {
	N       int     `json:"n"`
	W       int     `json:"w"`
	Workers int     `json:"workers"`
	Seconds float64 `json:"seconds"`
	// Speedup is the ratio of the Workers=1 time at the same (N, w) to
	// this time (1.0 for the Workers=1 row itself).
	Speedup float64 `json:"speedup"`
}

// MPBenchReport is the full kernel snapshot written to BENCH_mp.json.
type MPBenchReport struct {
	// GOMAXPROCS records the parallelism available when the snapshot was
	// taken: speedups are only meaningful up to this many workers.
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"numcpu"`
	Quick      bool            `json:"quick"`
	Results    []MPBenchResult `json:"results"`
}

// mpBenchSizes returns the (N, w) grid for the current mode.  Quick keeps
// CI inside seconds; full includes the 16k-point series the perf
// trajectory tracks.
func (h *Harness) mpBenchSizes() [][2]int {
	if h.Quick {
		return [][2]int{{2048, 64}, {4096, 128}}
	}
	return [][2]int{{4096, 128}, {16384, 64}, {16384, 256}}
}

// MPBench measures the STOMP self-join kernel on synthetic random walks at
// Workers ∈ {1, 2, 4, 8}, prints the table, and returns the report.
// Unlike the paper-reproduction experiments in this package, it benchmarks
// the substrate itself — SelfJoin wall time across series lengths, windows,
// and worker counts — so successive PRs have a comparable perf trajectory
// (snapshot it with WriteJSON as BENCH_mp.json).  Each cell is the best of
// three runs: the minimum is the least noisy estimator of the true cost.
func (h *Harness) MPBench(ctx context.Context) (*MPBenchReport, error) {
	ctx = benchCtx(ctx)
	report := &MPBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      h.Quick,
	}
	workerCounts := []int{1, 2, 4, 8}
	rows := make([][]string, 0, len(h.mpBenchSizes())*len(workerCounts))
	for _, size := range h.mpBenchSizes() {
		n, w := size[0], size[1]
		if err := ctxErr(ctx, "bench.mp"); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(h.Seed))
		series := make([]float64, n)
		v := 0.0
		for i := range series {
			v += rng.NormFloat64()
			series[i] = v
		}
		var base float64
		for _, workers := range workerCounts {
			best := 0.0
			for attempt := 0; attempt < 3; attempt++ {
				sw := obs.NewStopwatch()
				if _, err := mp.SelfJoinCtx(ctx, series, w, nil, mp.Options{Workers: workers}); err != nil {
					return nil, err
				}
				el := sw.Elapsed().Seconds()
				if attempt == 0 || el < best {
					best = el
				}
			}
			if workers == 1 {
				base = best
			}
			res := MPBenchResult{N: n, W: w, Workers: workers, Seconds: best, Speedup: base / best}
			report.Results = append(report.Results, res)
			rows = append(rows, []string{
				fmt.Sprint(n), fmt.Sprint(w), fmt.Sprint(workers),
				fmt.Sprintf("%.4f", res.Seconds), fmt.Sprintf("%.2f", res.Speedup),
			})
		}
	}
	fmt.Fprintf(h.out(), "MP kernel (GOMAXPROCS=%d)\n", report.GOMAXPROCS)
	table(h.out(), []string{"N", "w", "workers", "seconds", "speedup"}, rows)
	return report, nil
}

// WriteJSON writes the report to path as indented JSON.
func (r *MPBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
