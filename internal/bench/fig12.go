package bench

import (
	"context"
	"fmt"
)

// Fig12Row holds one dataset's accuracy-vs-k sweep.
type Fig12Row struct {
	Dataset string
	Acc     map[int]float64
}

// Fig12Ks are the shapelet numbers Fig. 12 sweeps.
var Fig12Ks = []int{1, 2, 5, 10, 20}

// Fig12Datasets are the four datasets of Fig. 12.
var Fig12Datasets = []string{"ArrowHead", "MoteStrain", "ShapeletSim", "ToeSegmentation1"}

// Fig12 reproduces Fig. 12: IPS accuracy as the shapelet number varies.
// Expectation: accuracy rises from k=1 and saturates around k≈5.
func (h *Harness) Fig12(ctx context.Context, datasets []string) ([]Fig12Row, error) {
	ctx = benchCtx(ctx)
	if datasets == nil {
		datasets = Fig12Datasets
	}
	ks := Fig12Ks
	if h.Quick {
		ks = []int{1, 5, 20}
	}
	var rows []Fig12Row
	for _, name := range datasets {
		if err := ctxErr(ctx, "bench.fig12"); err != nil {
			return nil, err
		}
		train, test, err := h.Load(name)
		if err != nil {
			return nil, err
		}
		row := Fig12Row{Dataset: name, Acc: map[int]float64{}}
		for _, k := range ks {
			opt := h.ipsOptions()
			opt.K = k
			acc, _, err := evaluateWithOptions(ctx, train, test, opt)
			if err != nil {
				return nil, err
			}
			row.Acc[k] = acc
		}
		rows = append(rows, row)
	}

	header := []string{"dataset"}
	for _, k := range ks {
		header = append(header, fmt.Sprintf("k=%d", k))
	}
	var cells [][]string
	for _, r := range rows {
		c := []string{r.Dataset}
		for _, k := range ks {
			c = append(c, f1(r.Acc[k]))
		}
		cells = append(cells, c)
	}
	fmt.Fprintln(h.out(), "Fig. 12 — IPS accuracy (%) by shapelet number k")
	table(h.out(), header, cells)
	return rows, nil
}
