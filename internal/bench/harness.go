package bench

import (
	"context"
	"fmt"
	"io"
	"strings"
	"time"

	"ips/internal/baselines"
	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/errs"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/ts"
	"ips/internal/ucr"
)

// Harness runs the paper's experiments against either the synthetic UCR
// substitute or real UCR TSV files.
type Harness struct {
	// Quick caps dataset sizes so the whole suite runs in CI time; the
	// relative ordering between datasets and methods is preserved.
	Quick bool
	// DataDir, when non-empty, loads <dir>/<name>_TRAIN.tsv and _TEST.tsv
	// instead of generating synthetic data.
	DataDir string
	// Seed drives every random choice (sampling, LSH, SVM, generation).
	Seed int64
	// K is the number of shapelets per class (paper default 5).
	K int
	// Runs is the number of repetitions whose accuracy is averaged for the
	// randomised methods (the paper reports the mean of 5 runs for IPS,
	// COTE-IPS, and BASE); default 1.
	Runs int
	// Out receives the formatted tables; defaults to io.Discard when nil.
	Out io.Writer
	// Obs, when non-nil, threads spans and metrics through every IPS
	// pipeline run the harness performs (see internal/obs); each Discover
	// appears as one subtree under the observer's root.
	Obs *obs.Observer
	// Workers parallelises the IPS pipeline and the BASE baseline's STOMP
	// joins (<=1 means sequential).  Accuracies are unaffected: every
	// parallel path is deterministic for any worker count.
	Workers int
}

// benchCtx normalises a possibly-nil context; every exported experiment
// method accepts ctx first and checks it between datasets (and, through the
// pipeline calls, inside each run), so cancelling the context stops a long
// table sweep within one pipeline stage's cancellation latency.
func benchCtx(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background()
	}
	return ctx
}

// ctxErr annotates a cancelled bench sweep with the experiment name.
func ctxErr(ctx context.Context, op string) error {
	return errs.Ctx(ctx, errs.StageBench, op)
}

func (h *Harness) runs() int {
	if h.Runs <= 0 {
		return 1
	}
	return h.Runs
}

func (h *Harness) out() io.Writer {
	if h.Out == nil {
		return io.Discard
	}
	return h.Out
}

func (h *Harness) k() int {
	if h.K <= 0 {
		return 5
	}
	return h.K
}

// genConfig returns the dataset generation caps for the current mode.
func (h *Harness) genConfig() ucr.GenConfig {
	cfg := ucr.GenConfig{Seed: h.Seed}
	if h.Quick {
		cfg.MaxTrain = 30
		cfg.MaxTest = 60
		cfg.MaxLength = 160
	} else {
		// Even in full mode, bound the very largest archive entries so a
		// complete Table IV run finishes in hours, not days, on a laptop.
		cfg.MaxTrain = 400
		cfg.MaxTest = 300
		cfg.MaxLength = 512
	}
	return cfg
}

// Load returns the train/test splits for a dataset.
func (h *Harness) Load(name string) (train, test *ts.Dataset, err error) {
	if h.DataDir != "" {
		return ucr.LoadSplit(h.DataDir, name)
	}
	return ucr.GenerateByName(name, h.genConfig())
}

// ipsOptions returns the IPS pipeline configuration for the current mode.
func (h *Harness) ipsOptions() core.Options {
	opt := core.Options{
		IP:      ip.Config{QN: 10, QS: 3, Seed: h.Seed},
		DABF:    dabf.Config{Seed: h.Seed},
		K:       h.k(),
		SVM:     classify.SVMConfig{Seed: h.Seed},
		Obs:     h.Obs,
		Workers: h.Workers,
	}
	if h.Quick {
		opt.IP.QN = 5
	}
	return opt.WithDefaults()
}

// MethodResult is one (method, dataset) measurement.
type MethodResult struct {
	Accuracy float64
	Runtime  time.Duration
}

// RunIPS measures the IPS pipeline (discovery + classification) on a
// dataset, averaging accuracy over h.Runs repetitions with distinct seeds
// (the paper's 5-run mean).  Runtime is the per-run average; the returned
// model is from the final run.
func (h *Harness) RunIPS(ctx context.Context, train, test *ts.Dataset) (MethodResult, *core.Model, error) {
	ctx = benchCtx(ctx)
	var sumAcc float64
	var sumRT time.Duration
	var model *core.Model
	n := h.runs()
	for r := 0; r < n; r++ {
		opt := h.ipsOptions()
		opt.IP.Seed = h.Seed + int64(r)
		opt.DABF.Seed = h.Seed + int64(r)
		opt.SVM.Seed = h.Seed + int64(r)
		sw := obs.NewStopwatch()
		acc, m, err := core.Evaluate(ctx, train, test, opt)
		if err != nil {
			return MethodResult{}, nil, err
		}
		sumRT += sw.Elapsed()
		sumAcc += acc
		model = m
	}
	obs.Log(ctx).Info("IPS runs measured", "op", "bench.run-ips",
		"dataset", train.Name, "runs", n,
		"accuracy", sumAcc/float64(n), "avg_runtime", sumRT/time.Duration(n))
	return MethodResult{
		Accuracy: sumAcc / float64(n),
		Runtime:  sumRT / time.Duration(n),
	}, model, nil
}

// evaluateWithOptions runs the IPS pipeline under explicit options and
// returns accuracy plus runtime.
func evaluateWithOptions(ctx context.Context, train, test *ts.Dataset, opt core.Options) (float64, time.Duration, error) {
	sw := obs.NewStopwatch()
	acc, _, err := core.Evaluate(ctx, train, test, opt)
	return acc, sw.Elapsed(), err
}

// RunBase measures the MP baseline with the given k.
func (h *Harness) RunBase(ctx context.Context, train, test *ts.Dataset, k int) (MethodResult, error) {
	sw := obs.NewStopwatch()
	acc, err := baselines.BaseEvaluateCtx(benchCtx(ctx), train, test,
		baselines.BaseConfig{K: k, Workers: h.Workers},
		classify.SVMConfig{Seed: h.Seed})
	if err != nil {
		return MethodResult{}, err
	}
	return MethodResult{Accuracy: acc, Runtime: sw.Elapsed()}, nil
}

// RunBSPCover measures the BSPCOVER comparator.
func (h *Harness) RunBSPCover(ctx context.Context, train, test *ts.Dataset, k int) (MethodResult, error) {
	sw := obs.NewStopwatch()
	acc, err := baselines.BSPCoverEvaluateCtx(benchCtx(ctx), train, test,
		baselines.BSPConfig{K: k},
		classify.SVMConfig{Seed: h.Seed})
	if err != nil {
		return MethodResult{}, err
	}
	return MethodResult{Accuracy: acc, Runtime: sw.Elapsed()}, nil
}

// RunNN measures a 1NN baseline.
func (h *Harness) RunNN(train, test *ts.Dataset, cfg classify.NNConfig) MethodResult {
	sw := obs.NewStopwatch()
	acc := classify.EvaluateNN(train.Instances, test.Instances, cfg)
	return MethodResult{Accuracy: acc, Runtime: sw.Elapsed()}
}

// table formats rows of cells with a header into aligned columns.
func table(w io.Writer, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, hcell := range header {
		widths[i] = len(hcell)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = fmt.Sprintf("%-*s", widths[i], c)
		}
		fmt.Fprintln(w, strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(header)
	sep := make([]string, len(header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }

func secs(d time.Duration) string { return fmt.Sprintf("%.3f", d.Seconds()) }
