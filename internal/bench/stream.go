package bench

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"

	"ips/internal/mp"
	"ips/internal/obs"
)

// StreamBenchResult is one series-length measurement of the streaming
// append path: the steady-state per-append cost of the incremental profile
// against the full SelfJoin recompute an append used to pay.
type StreamBenchResult struct {
	N int `json:"n"`
	W int `json:"w"`
	// AppendMicros is the mean per-append wall time (µs) of
	// mp.Incremental.Append at this series length.
	AppendMicros float64 `json:"append_micros"`
	// RecomputeMicros is the wall time (µs) of one full SelfJoin over the
	// same series — the per-append cost before this optimisation.
	RecomputeMicros float64 `json:"recompute_micros"`
	// Speedup is RecomputeMicros / AppendMicros.
	Speedup float64 `json:"speedup"`
}

// StreamBenchReport is the snapshot written to BENCH_stream.json.
type StreamBenchReport struct {
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"numcpu"`
	Quick      bool                `json:"quick"`
	Results    []StreamBenchResult `json:"results"`
}

// streamBenchSizes returns the series-length grid for the current mode.
func (h *Harness) streamBenchSizes() []int {
	if h.Quick {
		return []int{1000, 4000}
	}
	return []int{1000, 4000, 16000, 64000}
}

// StreamBench measures the STOMPI append path: the mean per-append cost at
// each series length, next to the full-recompute cost a quadratic append
// path would pay.  The incremental column should grow linearly with n and
// sit far under the recompute column; both produce byte-identical profiles
// (pinned by the mp test suite), so the gap is pure bookkeeping win.
func (h *Harness) StreamBench(ctx context.Context) (*StreamBenchReport, error) {
	ctx = benchCtx(ctx)
	const w = 50
	report := &StreamBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      h.Quick,
	}
	rows := make([][]string, 0, len(h.streamBenchSizes()))
	for _, n := range h.streamBenchSizes() {
		if err := ctxErr(ctx, "bench.stream"); err != nil {
			return nil, err
		}
		rng := rand.New(rand.NewSource(h.Seed))
		series := make([]float64, n+256)
		v := 0.0
		for i := range series {
			v += rng.NormFloat64()
			series[i] = v
		}

		// Steady state: seed with n points, time the next 256 appends.
		inc, err := mp.NewIncremental(series[:n], w)
		if err != nil {
			return nil, err
		}
		inc.Reserve(len(series))
		sw := obs.NewStopwatch()
		for _, p := range series[n:] {
			if err := inc.Append(p); err != nil {
				return nil, err
			}
		}
		appendUS := sw.Elapsed().Seconds() * 1e6 / 256

		// What each append used to cost: a full profile recompute.
		best := 0.0
		for attempt := 0; attempt < 3; attempt++ {
			sw := obs.NewStopwatch()
			if _, err := mp.SelfJoinCtx(ctx, series[:n], w, nil, mp.Options{Workers: 1}); err != nil {
				return nil, err
			}
			el := sw.Elapsed().Seconds() * 1e6
			if attempt == 0 || el < best {
				best = el
			}
		}

		res := StreamBenchResult{N: n, W: w, AppendMicros: appendUS, RecomputeMicros: best, Speedup: best / appendUS}
		report.Results = append(report.Results, res)
		rows = append(rows, []string{
			fmt.Sprint(n), fmt.Sprint(w),
			fmt.Sprintf("%.2f", res.AppendMicros), fmt.Sprintf("%.1f", res.RecomputeMicros),
			fmt.Sprintf("%.1f", res.Speedup),
		})
	}
	fmt.Fprintf(h.out(), "STOMPI append (GOMAXPROCS=%d)\n", report.GOMAXPROCS)
	table(h.out(), []string{"N", "w", "append µs", "recompute µs", "speedup"}, rows)
	return report, nil
}

// WriteJSON writes the report to path as indented JSON.
func (r *StreamBenchReport) WriteJSON(path string) error {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
