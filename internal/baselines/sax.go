package baselines

import (
	"strings"

	"ips/internal/ts"
)

// saxBreakpoints4 are the standard Gaussian equiprobable breakpoints for a
// 4-symbol SAX alphabet.
var saxBreakpoints4 = []float64{-0.6745, 0, 0.6745}

// PAA reduces a series to segments equal-width averages (piecewise aggregate
// approximation).
func PAA(x []float64, segments int) []float64 {
	n := len(x)
	if segments <= 0 || n == 0 {
		return nil
	}
	if segments > n {
		segments = n
	}
	out := make([]float64, segments)
	for s := 0; s < segments; s++ {
		lo := s * n / segments
		hi := (s + 1) * n / segments
		if hi <= lo {
			hi = lo + 1
		}
		var sum float64
		for i := lo; i < hi; i++ {
			sum += x[i]
		}
		out[s] = sum / float64(hi-lo)
	}
	return out
}

// SAXWord converts a subsequence to its SAX word: z-normalise, PAA to the
// given number of segments, and discretise each segment against the Gaussian
// breakpoints of a 4-symbol alphabet.
func SAXWord(x []float64, segments int) string {
	z := ts.ZNorm(x)
	paa := PAA(z, segments)
	var sb strings.Builder
	for _, v := range paa {
		sym := byte('a')
		for _, bp := range saxBreakpoints4 {
			if v > bp {
				sym++
			}
		}
		sb.WriteByte(sym)
	}
	return sb.String()
}
