package baselines

import (
	"testing"

	"ips/internal/ts"
)

func TestSDTreeLearnsPlantedPatterns(t *testing.T) {
	train := plantedDataset(12, 60, 2, 50)
	test := plantedDataset(12, 60, 2, 51)
	acc, err := SDTreeEvaluate(train, test, SDTreeConfig{Seed: 52})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("shapelet tree accuracy = %v%%", acc)
	}
}

func TestSDTreeMultiClass(t *testing.T) {
	train := plantedDataset(10, 50, 3, 53)
	test := plantedDataset(10, 50, 3, 54)
	acc, err := SDTreeEvaluate(train, test, SDTreeConfig{Seed: 55})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 55 { // chance is 33%
		t.Fatalf("3-class shapelet tree accuracy = %v%%", acc)
	}
}

func TestSDTreeShapeletsAccessor(t *testing.T) {
	train := plantedDataset(10, 50, 2, 56)
	tree, err := SDTreeTrain(train, SDTreeConfig{Seed: 57})
	if err != nil {
		t.Fatal(err)
	}
	sh := tree.Shapelets()
	if len(sh) == 0 {
		t.Fatal("trained tree should expose at least one shapelet")
	}
	for _, s := range sh {
		if len(s) == 0 {
			t.Fatal("empty node shapelet")
		}
	}
}

func TestSDTreeDepthLimit(t *testing.T) {
	train := plantedDataset(12, 50, 2, 58)
	tree, err := SDTreeTrain(train, SDTreeConfig{MaxDepth: 1, Seed: 59})
	if err != nil {
		t.Fatal(err)
	}
	// Depth 1 means at most one internal node.
	if n := len(tree.Shapelets()); n > 1 {
		t.Fatalf("depth-1 tree has %d internal nodes", n)
	}
}

func TestSDTreeErrors(t *testing.T) {
	if _, err := SDTreeTrain(&ts.Dataset{}, SDTreeConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestSDTreePureData(t *testing.T) {
	// One-class data is rejected by Validate(true)... so craft a dataset
	// with two classes where one leaf becomes pure quickly.
	d := &ts.Dataset{}
	for i := 0; i < 6; i++ {
		vals := make(ts.Series, 20)
		for j := range vals {
			vals[j] = float64(i % 2)
		}
		d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: i % 2})
	}
	tree, err := SDTreeTrain(d, SDTreeConfig{Seed: 60})
	if err != nil {
		t.Fatal(err)
	}
	pred := tree.PredictAll(d)
	for i, p := range pred {
		if p != d.Instances[i].Label {
			// Constant series per class are trivially separable by any
			// threshold; a miss would indicate a routing bug.
			t.Fatalf("trivial dataset misclassified at %d", i)
		}
	}
}
