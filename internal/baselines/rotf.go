package baselines

import (
	"math/rand"

	"ips/internal/classify"
	"ips/internal/linalg"
	"ips/internal/ts"
)

// RotFConfig parameterises the Rotation Forest baseline (Rodríguez et al.;
// the strongest non-shapelet classical method in the paper's Table VI).
// Each ensemble member partitions the features into groups, fits a PCA per
// group on a bootstrap sample of a random class subset, rotates the full
// training set with the resulting block-diagonal matrix, and trains a CART
// tree on the rotated features.
type RotFConfig struct {
	// Trees is the ensemble size (default 10).
	Trees int
	// GroupSize is the number of features per PCA group (default 8).
	GroupSize int
	// SampleFraction is the bootstrap fraction per group (default 0.75).
	SampleFraction float64
	Tree           classify.TreeConfig
	Seed           int64
}

func (c RotFConfig) defaults() RotFConfig {
	if c.Trees <= 0 {
		c.Trees = 10
	}
	if c.GroupSize <= 0 {
		c.GroupSize = 8
	}
	if c.SampleFraction <= 0 || c.SampleFraction > 1 {
		c.SampleFraction = 0.75
	}
	return c
}

// rotMember is one rotation + tree.
type rotMember struct {
	groups [][]int       // feature indices per group
	pcas   []*linalg.PCA // rotation per group
	tree   *classify.Tree
}

// RotF is a trained rotation forest over raw series values.
type RotF struct {
	members []rotMember
	classes []int
}

// RotFTrain fits a rotation forest on the raw series values of the dataset.
func RotFTrain(train *ts.Dataset, cfg RotFConfig) (*RotF, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	X := make([][]float64, train.Len())
	for i, in := range train.Instances {
		X[i] = in.Values
	}
	y := train.Labels()
	dim := len(X[0])
	rng := rand.New(rand.NewSource(cfg.Seed))
	forest := &RotF{classes: train.Classes()}

	for m := 0; m < cfg.Trees; m++ {
		member := rotMember{}
		// Random feature partition into groups of GroupSize.
		perm := rng.Perm(dim)
		for at := 0; at < dim; at += cfg.GroupSize {
			end := at + cfg.GroupSize
			if end > dim {
				end = dim
			}
			member.groups = append(member.groups, perm[at:end])
		}
		// Per group: bootstrap a random class subset, fit PCA.
		for _, group := range member.groups {
			sub := bootstrapClassSubset(X, y, forest.classes, cfg.SampleFraction, rng)
			gdata := make([][]float64, len(sub))
			for i, row := range sub {
				g := make([]float64, len(group))
				for j, f := range group {
					g[j] = row[f]
				}
				gdata[i] = g
			}
			pca, err := linalg.FitPCA(gdata)
			if err != nil {
				return nil, err
			}
			member.pcas = append(member.pcas, pca)
		}
		// Rotate the FULL training set and train the tree.
		rotated := make([][]float64, len(X))
		for i, row := range X {
			rotated[i] = member.rotate(row)
		}
		tree, err := classify.TrainTree(rotated, y, cfg.Tree)
		if err != nil {
			return nil, err
		}
		member.tree = tree
		forest.members = append(forest.members, member)
	}
	return forest, nil
}

// bootstrapClassSubset draws a bootstrap sample (with replacement) of the
// instances belonging to a random non-empty subset of classes — the step
// that decorrelates the per-group rotations across ensemble members.
func bootstrapClassSubset(X [][]float64, y []int, classes []int, fraction float64, rng *rand.Rand) [][]float64 {
	chosen := map[int]bool{}
	for _, c := range classes {
		if rng.Float64() < 0.5 {
			chosen[c] = true
		}
	}
	if len(chosen) == 0 {
		chosen[classes[rng.Intn(len(classes))]] = true
	}
	var pool []int
	for i, label := range y {
		if chosen[label] {
			pool = append(pool, i)
		}
	}
	if len(pool) == 0 {
		for i := range y {
			pool = append(pool, i)
		}
	}
	n := int(fraction * float64(len(pool)))
	if n < 2 {
		n = 2
	}
	out := make([][]float64, n)
	for i := 0; i < n; i++ {
		out[i] = X[pool[rng.Intn(len(pool))]]
	}
	return out
}

// rotate maps a raw feature vector through the member's block-diagonal PCA.
func (m *rotMember) rotate(x []float64) []float64 {
	out := make([]float64, 0, len(x))
	for gi, group := range m.groups {
		g := make([]float64, len(group))
		for j, f := range group {
			g[j] = x[f]
		}
		out = append(out, m.pcas[gi].Transform(g)...)
	}
	return out
}

// Predict returns the majority vote of the ensemble for every instance.
func (f *RotF) Predict(d *ts.Dataset) []int {
	out := make([]int, d.Len())
	for i, in := range d.Instances {
		votes := map[int]int{}
		for _, m := range f.members {
			votes[m.tree.Predict(m.rotate(in.Values))]++
		}
		best, bestN := 0, -1
		for label, n := range votes {
			if n > bestN || (n == bestN && label < best) {
				best, bestN = label, n
			}
		}
		out[i] = best
	}
	return out
}

// RotFEvaluate trains a rotation forest and returns its test accuracy.
func RotFEvaluate(train, test *ts.Dataset, cfg RotFConfig) (float64, error) {
	f, err := RotFTrain(train, cfg)
	if err != nil {
		return 0, err
	}
	return classify.Accuracy(f.Predict(test), test.Labels()), nil
}
