package baselines

import (
	"context"
	"math/rand"

	"ips/internal/classify"
	"ips/internal/dist"
	"ips/internal/ts"
)

// SDTreeConfig parameterises the original shapelet decision tree of Ye &
// Keogh (KDD'09) — the method that introduced shapelets.  Every node of the
// tree searches candidate subsequences for the one whose distance threshold
// maximises information gain, then routes instances by that threshold.  The
// exhaustive search is O(M²N³); CandidatesPerNode subsamples the candidate
// space to keep the baseline tractable, as later work (and our harness) do.
type SDTreeConfig struct {
	// LengthRatios are candidate lengths as fractions of the series length.
	LengthRatios []float64
	MinLength    int
	// CandidatesPerNode bounds the subsequences scored per node
	// (default 200; 0 subsamples nothing only when the space is smaller).
	CandidatesPerNode int
	// MaxDepth bounds the tree depth (default 8).
	MaxDepth int
	// MinLeaf stops splitting below this node size (default 2).
	MinLeaf int
	Seed    int64
}

func (c SDTreeConfig) defaults() SDTreeConfig {
	if len(c.LengthRatios) == 0 {
		c.LengthRatios = []float64{0.1, 0.2, 0.3}
	}
	if c.MinLength <= 0 {
		c.MinLength = 4
	}
	if c.CandidatesPerNode <= 0 {
		c.CandidatesPerNode = 200
	}
	if c.MaxDepth <= 0 {
		c.MaxDepth = 8
	}
	if c.MinLeaf <= 0 {
		c.MinLeaf = 2
	}
	return c
}

// sdNode is one node of the shapelet decision tree.
type sdNode struct {
	shapelet  ts.Series
	threshold float64
	left      *sdNode // dist <= threshold
	right     *sdNode
	label     int // leaf prediction when left == nil
}

// SDTree is a trained shapelet decision tree.
type SDTree struct {
	root *sdNode
}

// SDTreeTrain builds the shapelet decision tree on the training set with a
// background context; see SDTreeTrainCtx.
func SDTreeTrain(train *ts.Dataset, cfg SDTreeConfig) (*SDTree, error) {
	return SDTreeTrainCtx(context.Background(), train, cfg)
}

// SDTreeTrainCtx builds the shapelet decision tree on the training set.
// Cancellation is checked per node inside the batched distance engine; a
// cancelled run returns a nil tree with an error matching errs.ErrCanceled.
func SDTreeTrainCtx(ctx context.Context, train *ts.Dataset, cfg SDTreeConfig) (*SDTree, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	idx := make([]int, train.Len())
	for i := range idx {
		idx[i] = i
	}
	// One prepared-series cache for the whole tree: child nodes revisit the
	// same instances, so each series' prefix statistics are built once.
	cache := dist.NewCache()
	root, err := growSDNode(ctx, train, idx, cfg, rng, 0, cache)
	if err != nil {
		return nil, err
	}
	return &SDTree{root: root}, nil
}

// growSDNode recursively builds one node over the instances in idx.
func growSDNode(ctx context.Context, train *ts.Dataset, idx []int, cfg SDTreeConfig, rng *rand.Rand, depth int, cache *dist.Cache) (*sdNode, error) {
	labels := train.Labels()
	pure := true
	for _, i := range idx[1:] {
		if labels[i] != labels[idx[0]] {
			pure = false
			break
		}
	}
	if pure || depth >= cfg.MaxDepth || len(idx) < 2*cfg.MinLeaf {
		return &sdNode{label: majorityOf(labels, idx)}, nil
	}

	// Candidate shapelets: random subsequences drawn from the node's
	// instances at the configured lengths.
	n := train.SeriesLen()
	type candidate struct {
		values ts.Series
	}
	var cands []candidate
	for _, ratio := range cfg.LengthRatios {
		L := int(ratio * float64(n))
		if L < cfg.MinLength {
			L = cfg.MinLength
		}
		if L > n {
			L = n
		}
		perLength := cfg.CandidatesPerNode / len(cfg.LengthRatios)
		if perLength < 1 {
			perLength = 1
		}
		for c := 0; c < perLength; c++ {
			src := train.Instances[idx[rng.Intn(len(idx))]]
			at := rng.Intn(len(src.Values) - L + 1)
			cands = append(cands, candidate{values: src.Values[at : at+L]})
		}
	}

	// Score every candidate: best information-gain split over the node's
	// distance distribution.  The node's own dominant class defines the
	// binary "target vs rest" framing, as in the original method's
	// entropy computation over the node's class mix.
	nodeLabels := make([]int, len(idx))
	for pos, i := range idx {
		nodeLabels[pos] = labels[i]
	}
	target := majorityOf(labels, idx)
	queries := make([][]float64, len(cands))
	for ci, cand := range cands {
		queries[ci] = cand.values
	}
	D, err := distMatrix(ctx, train, idx, queries, cache)
	if err != nil {
		return nil, err
	}
	bestGain := 0.0
	var bestShapelet ts.Series
	bestThreshold := 0.0
	var bestDists []float64
	for ci, cand := range cands {
		gain, split := bestInfoGainSplit(D[ci], nodeLabels, target)
		if gain > bestGain {
			bestGain = gain
			bestShapelet = cand.values
			bestThreshold = split
			bestDists = D[ci]
		}
	}
	if bestShapelet == nil {
		return &sdNode{label: majorityOf(labels, idx)}, nil
	}
	// Route on the winning candidate's distance row — the values ts.Dist
	// would recompute per instance, already in hand.
	var leftIdx, rightIdx []int
	for pos, i := range idx {
		if bestDists[pos] <= bestThreshold {
			leftIdx = append(leftIdx, i)
		} else {
			rightIdx = append(rightIdx, i)
		}
	}
	if len(leftIdx) < cfg.MinLeaf || len(rightIdx) < cfg.MinLeaf {
		return &sdNode{label: majorityOf(labels, idx)}, nil
	}
	left, err := growSDNode(ctx, train, leftIdx, cfg, rng, depth+1, cache)
	if err != nil {
		return nil, err
	}
	right, err := growSDNode(ctx, train, rightIdx, cfg, rng, depth+1, cache)
	if err != nil {
		return nil, err
	}
	return &sdNode{
		shapelet:  bestShapelet.Clone(),
		threshold: bestThreshold,
		left:      left,
		right:     right,
	}, nil
}

func majorityOf(labels []int, idx []int) int {
	counts := map[int]int{}
	for _, i := range idx {
		counts[labels[i]]++
	}
	best, bestN := 0, -1
	for label, n := range counts {
		if n > bestN || (n == bestN && label < best) {
			best, bestN = label, n
		}
	}
	return best
}

// Predict routes an instance down the tree.
func (t *SDTree) Predict(x ts.Series) int {
	node := t.root
	for node.left != nil {
		if ts.Dist(node.shapelet, x) <= node.threshold {
			node = node.left
		} else {
			node = node.right
		}
	}
	return node.label
}

// PredictAll classifies every instance of the dataset.
func (t *SDTree) PredictAll(d *ts.Dataset) []int {
	out := make([]int, d.Len())
	for i, in := range d.Instances {
		out[i] = t.Predict(in.Values)
	}
	return out
}

// Shapelets returns the shapelets used at the tree's internal nodes, in
// breadth-first order.
func (t *SDTree) Shapelets() []ts.Series {
	var out []ts.Series
	queue := []*sdNode{t.root}
	for len(queue) > 0 {
		node := queue[0]
		queue = queue[1:]
		if node == nil || node.left == nil {
			continue
		}
		out = append(out, node.shapelet)
		queue = append(queue, node.left, node.right)
	}
	return out
}

// SDTreeEvaluate trains the shapelet decision tree with a background
// context and returns its test accuracy; see SDTreeEvaluateCtx.
func SDTreeEvaluate(train, test *ts.Dataset, cfg SDTreeConfig) (float64, error) {
	return SDTreeEvaluateCtx(context.Background(), train, test, cfg)
}

// SDTreeEvaluateCtx trains the shapelet decision tree and returns its test
// accuracy, with cooperative cancellation during training.
func SDTreeEvaluateCtx(ctx context.Context, train, test *ts.Dataset, cfg SDTreeConfig) (float64, error) {
	t, err := SDTreeTrainCtx(ctx, train, cfg)
	if err != nil {
		return 0, err
	}
	return classify.Accuracy(t.PredictAll(test), test.Labels()), nil
}
