package baselines

import (
	"math"
	"testing"

	"ips/internal/classify"
	"ips/internal/ts"
)

func TestSoftMinDistance(t *testing.T) {
	s := ts.Series{1, 2}
	series := ts.Series{9, 9, 1, 2, 9}
	// Hard minimum is 0 at alignment 2; a sharp alpha should approach it.
	d, grad := softMinDistance(s, series, -100)
	if d > 1e-6 {
		t.Fatalf("sharp softmin = %v, want ~0", d)
	}
	if len(grad) != 2 {
		t.Fatalf("grad len = %d", len(grad))
	}
	// Perfect match gradient is ~0.
	for _, g := range grad {
		if math.Abs(g) > 1e-4 {
			t.Fatalf("perfect match gradient = %v", grad)
		}
	}
	// Degenerate: shapelet longer than series.
	d, grad = softMinDistance(ts.Series{1, 2, 3}, ts.Series{1}, -30)
	if d != 0 || len(grad) != 3 {
		t.Fatal("degenerate softmin should be zero")
	}
}

func TestSoftMinGradientNumerically(t *testing.T) {
	s := ts.Series{0.5, -1.2, 0.3}
	series := ts.Series{0.1, 0.6, -1.0, 0.2, 0.9, -0.3}
	alpha := -10.0
	_, grad := softMinDistance(s, series, alpha)
	const eps = 1e-6
	for l := range s {
		plus := s.Clone()
		minus := s.Clone()
		plus[l] += eps
		minus[l] -= eps
		dp, _ := softMinDistance(plus, series, alpha)
		dm, _ := softMinDistance(minus, series, alpha)
		numeric := (dp - dm) / (2 * eps)
		if math.Abs(numeric-grad[l]) > 1e-4 {
			t.Fatalf("grad[%d]: analytic %v vs numeric %v", l, grad[l], numeric)
		}
	}
}

func TestLTSLearnsPlantedPatterns(t *testing.T) {
	train := plantedDataset(12, 60, 2, 20)
	test := plantedDataset(12, 60, 2, 21)
	acc, err := LTSEvaluate(train, test, LTSConfig{K: 3, Iterations: 200, Seed: 22})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("LTS accuracy = %v%%", acc)
	}
}

func TestLTSModelShape(t *testing.T) {
	train := plantedDataset(8, 50, 3, 23)
	m, err := LTSTrain(train, LTSConfig{K: 2, Iterations: 50, Seed: 24})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Shapelets) != 6 { // 2 per class × 3 classes
		t.Fatalf("shapelets = %d", len(m.Shapelets))
	}
	if len(m.Classes) != 3 || len(m.W) != 3 {
		t.Fatalf("classes = %v", m.Classes)
	}
	top := m.TopShapelets(3)
	if len(top) != 3 {
		t.Fatalf("top = %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Fatal("top shapelets not ranked by weight")
		}
	}
	// Oversized k clamps.
	if len(m.TopShapelets(100)) != 6 {
		t.Fatal("oversized TopShapelets should clamp")
	}
	if _, err := LTSTrain(&ts.Dataset{}, LTSConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestMaskWord(t *testing.T) {
	if got := maskWord("abcd", []int{1, 3}); got != "a*c*" {
		t.Fatalf("masked = %q", got)
	}
	// Out-of-range positions are ignored.
	if got := maskWord("ab", []int{5}); got != "ab" {
		t.Fatalf("masked = %q", got)
	}
}

func TestFastShapeletsDiscover(t *testing.T) {
	train := plantedDataset(10, 60, 2, 25)
	sh, err := FastShapeletsDiscover(train, FSConfig{K: 3, Seed: 26})
	if err != nil {
		t.Fatal(err)
	}
	perClass := map[int]int{}
	for _, s := range sh {
		perClass[s.Class]++
		if len(s.Values) == 0 {
			t.Fatal("empty shapelet")
		}
	}
	for c := 0; c < 2; c++ {
		if perClass[c] == 0 || perClass[c] > 3 {
			t.Fatalf("class %d has %d shapelets", c, perClass[c])
		}
	}
	if _, err := FastShapeletsDiscover(&ts.Dataset{}, FSConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestFastShapeletsEvaluate(t *testing.T) {
	train := plantedDataset(10, 60, 2, 27)
	test := plantedDataset(10, 60, 2, 28)
	acc, err := FastShapeletsEvaluate(train, test, FSConfig{K: 5, Seed: 29}, classify.SVMConfig{Seed: 30})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 70 {
		t.Fatalf("fast shapelets accuracy = %v%%", acc)
	}
}
