package baselines

import (
	"context"
	"errors"
	"math"
	"sort"

	"ips/internal/classify"
	"ips/internal/dabf"
	"ips/internal/ts"
)

// BSPConfig parameterises the BSPCOVER comparator.
type BSPConfig struct {
	K            int       // shapelets per class
	LengthRatios []float64 // candidate lengths, as in IPS
	MinLength    int
	Stride       float64 // candidate stride as a fraction of the length (default 0.25)
	SAXSegments  int     // SAX word length for similar-candidate pruning (default 8)
}

func (c BSPConfig) defaults() BSPConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if len(c.LengthRatios) == 0 {
		c.LengthRatios = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.MinLength <= 0 {
		c.MinLength = 4
	}
	if c.Stride <= 0 {
		c.Stride = 0.25
	}
	if c.SAXSegments <= 0 {
		c.SAXSegments = 8
	}
	return c
}

// bspCandidate is one BSPCOVER candidate with its quality assessment.
type bspCandidate struct {
	class  int
	values ts.Series
	gain   float64
	split  float64
	covers []int // indices of same-class training instances within the split
}

// BSPCoverDiscover re-implements the published BSPCOVER pipeline in spirit:
//
//  1. candidate generation: every training instance is slid at each
//     configured length with a fractional stride;
//  2. Bloom-filter pruning: candidates sharing a SAX word with an already
//     accepted candidate are pruned as similar (the paper's bit-sequence
//     pruning);
//  3. quality measurement: every surviving candidate is scored by the
//     information gain of its best distance split against EVERY training
//     instance — the full scan that dominates BSPCOVER's runtime and that
//     IPS avoids;
//  4. p-cover selection: per class, candidates are greedily chosen to cover
//     the most not-yet-covered same-class instances, ties broken by gain.
func BSPCoverDiscover(train *ts.Dataset, cfg BSPConfig) ([]classify.Shapelet, error) {
	return BSPCoverDiscoverCtx(context.Background(), train, cfg)
}

// BSPCoverDiscoverCtx is BSPCoverDiscover with cooperative cancellation:
// the dominant full-scan quality stage checks ctx per instance pass inside
// the batched distance engine.
func BSPCoverDiscoverCtx(ctx context.Context, train *ts.Dataset, cfg BSPConfig) ([]classify.Shapelet, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	n := train.SeriesLen()
	labels := train.Labels()

	// Stages 1+2: generate and dedup candidates.
	seen := dabf.NewBloom(64*1024, 0.01)
	var cands []bspCandidate
	for _, in := range train.Instances {
		for _, ratio := range cfg.LengthRatios {
			L := int(ratio * float64(n))
			if L < cfg.MinLength {
				L = cfg.MinLength
			}
			if L > len(in.Values) {
				L = len(in.Values)
			}
			stride := int(cfg.Stride * float64(L))
			if stride < 1 {
				stride = 1
			}
			for at := 0; at+L <= len(in.Values); at += stride {
				sub := in.Values[at : at+L]
				word := SAXWord(sub, cfg.SAXSegments)
				key := []byte(word)
				if seen.Contains(key) {
					continue // similar candidate already accepted
				}
				seen.Add(key)
				cands = append(cands, bspCandidate{class: in.Label, values: sub.Clone()})
			}
		}
	}
	if len(cands) == 0 {
		return nil, errors.New("baselines: BSPCOVER generated no candidates")
	}

	// Stage 3: full-scan quality assessment, batched: the distance matrix
	// shares per-instance sliding statistics across every candidate instead
	// of a fresh scan per (candidate, instance) pair.
	queries := make([][]float64, len(cands))
	for ci := range cands {
		queries[ci] = cands[ci].values
	}
	D, err := distMatrix(ctx, train, nil, queries, nil)
	if err != nil {
		return nil, err
	}
	for ci := range cands {
		dists := D[ci]
		gain, split := bestInfoGainSplit(dists, labels, cands[ci].class)
		cands[ci].gain = gain
		cands[ci].split = split
		for i, d := range dists {
			if labels[i] == cands[ci].class && d <= split {
				cands[ci].covers = append(cands[ci].covers, i)
			}
		}
	}

	// Stage 4: greedy p-cover per class.
	var out []classify.Shapelet
	for _, class := range train.Classes() {
		var classCands []int
		for ci, c := range cands {
			if c.class == class {
				classCands = append(classCands, ci)
			}
		}
		if len(classCands) == 0 {
			continue
		}
		covered := map[int]bool{}
		picked := 0
		for picked < cfg.K && len(classCands) > 0 {
			bestIdx, bestNew := -1, -1
			bestGain := math.Inf(-1)
			for pos, ci := range classCands {
				newCover := 0
				for _, inst := range cands[ci].covers {
					if !covered[inst] {
						newCover++
					}
				}
				if newCover > bestNew || (newCover == bestNew && cands[ci].gain > bestGain) {
					bestIdx, bestNew, bestGain = pos, newCover, cands[ci].gain
				}
			}
			ci := classCands[bestIdx]
			classCands = append(classCands[:bestIdx], classCands[bestIdx+1:]...)
			for _, inst := range cands[ci].covers {
				covered[inst] = true
			}
			out = append(out, classify.Shapelet{Class: class, Values: cands[ci].values, Score: cands[ci].gain})
			picked++
		}
	}
	if len(out) == 0 {
		return nil, errors.New("baselines: BSPCOVER selected no shapelets")
	}
	return out, nil
}

// bestInfoGainSplit finds the distance threshold that best separates the
// target class from the rest by information gain (the classic shapelet
// quality measure of Ye & Keogh).
func bestInfoGainSplit(dists []float64, labels []int, target int) (gain, split float64) {
	type dl struct {
		d     float64
		isTgt bool
	}
	rows := make([]dl, len(dists))
	totalTgt := 0
	for i := range dists {
		rows[i] = dl{d: dists[i], isTgt: labels[i] == target}
		if rows[i].isTgt {
			totalTgt++
		}
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].d < rows[j].d })
	n := len(rows)
	baseEnt := binaryEntropy(float64(totalTgt) / float64(n))
	bestGain, bestSplit := 0.0, rows[0].d
	tgtLeft := 0
	for i := 0; i < n-1; i++ {
		if rows[i].isTgt {
			tgtLeft++
		}
		//lint:ignore ipslint/floateq adjacent sorted values: exact tie detection is the split-point definition
		if rows[i].d == rows[i+1].d {
			continue // split must fall between distinct values
		}
		nl := i + 1
		nr := n - nl
		entL := binaryEntropy(float64(tgtLeft) / float64(nl))
		entR := binaryEntropy(float64(totalTgt-tgtLeft) / float64(nr))
		g := baseEnt - (float64(nl)*entL+float64(nr)*entR)/float64(n)
		if g > bestGain {
			bestGain = g
			bestSplit = (rows[i].d + rows[i+1].d) / 2
		}
	}
	return bestGain, bestSplit
}

func binaryEntropy(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// BSPCoverEvaluate runs the full BSPCOVER pipeline with a background
// context and returns its test accuracy; see BSPCoverEvaluateCtx.
func BSPCoverEvaluate(train, test *ts.Dataset, cfg BSPConfig, svmCfg classify.SVMConfig) (float64, error) {
	return BSPCoverEvaluateCtx(context.Background(), train, test, cfg, svmCfg)
}

// BSPCoverEvaluateCtx runs the full BSPCOVER pipeline — discovery,
// classifier training, and test scoring — with cooperative cancellation.
func BSPCoverEvaluateCtx(ctx context.Context, train, test *ts.Dataset, cfg BSPConfig, svmCfg classify.SVMConfig) (float64, error) {
	sh, err := BSPCoverDiscoverCtx(ctx, train, cfg)
	if err != nil {
		return 0, err
	}
	m, err := TrainShapeletClassifierCtx(ctx, train, sh, svmCfg)
	if err != nil {
		return 0, err
	}
	return m.AccuracyCtx(ctx, test)
}

// BestInfoGainSplitExported exposes the information-gain split search for
// diagnostic tooling and tests.
func BestInfoGainSplitExported(dists []float64, labels []int, target int) (gain, split float64) {
	return bestInfoGainSplit(dists, labels, target)
}
