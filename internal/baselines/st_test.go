package baselines

import (
	"testing"

	"ips/internal/classify"
	"ips/internal/ts"
)

func TestFStatQuality(t *testing.T) {
	// Perfectly separated groups have enormous F.
	dists := []float64{1, 1.1, 0.9, 5, 5.1, 4.9}
	labels := []int{0, 0, 0, 1, 1, 1}
	if f := FStatQuality(dists, labels); f < 100 {
		t.Fatalf("separated F = %v", f)
	}
	// Identical distributions have tiny F.
	dists = []float64{1, 2, 3, 1, 2, 3}
	if f := FStatQuality(dists, labels); f > 1 {
		t.Fatalf("overlapping F = %v", f)
	}
	// Degenerate inputs.
	if f := FStatQuality([]float64{1, 2}, []int{0, 0}); f != 0 {
		t.Fatalf("single group F = %v", f)
	}
	// Zero within-class variance, zero between → 0; nonzero between → huge.
	if f := FStatQuality([]float64{1, 1, 1, 1}, []int{0, 0, 1, 1}); f != 0 {
		t.Fatalf("all-equal F = %v", f)
	}
	if f := FStatQuality([]float64{1, 1, 2, 2}, []int{0, 0, 1, 1}); f < 1e9 {
		t.Fatalf("perfect split F = %v", f)
	}
}

func TestSTDiscoverAndEvaluate(t *testing.T) {
	train := plantedDataset(10, 60, 2, 61)
	test := plantedDataset(10, 60, 2, 62)
	sh, err := STDiscover(train, STConfig{K: 3, Seed: 63})
	if err != nil {
		t.Fatal(err)
	}
	perClass := map[int]int{}
	for _, s := range sh {
		perClass[s.Class]++
		if s.Score <= 0 {
			t.Fatalf("non-positive F score: %+v", s.Score)
		}
	}
	if perClass[0] == 0 || perClass[1] == 0 {
		t.Fatalf("per-class counts = %v", perClass)
	}
	acc, err := STEvaluate(train, test, STConfig{K: 5, Seed: 64}, classify.SVMConfig{Seed: 65})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 80 {
		t.Fatalf("ST accuracy = %v%%", acc)
	}
}

func TestSTErrors(t *testing.T) {
	if _, err := STDiscover(&ts.Dataset{}, STConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestSTCandidateSubsampling(t *testing.T) {
	// A tight MaxCandidates must still produce shapelets.
	train := plantedDataset(10, 60, 2, 66)
	sh, err := STDiscover(train, STConfig{K: 2, MaxCandidates: 20, Seed: 67})
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) == 0 {
		t.Fatal("subsampled ST found nothing")
	}
}
