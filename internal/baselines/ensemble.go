package baselines

import (
	"errors"

	"ips/internal/classify"
	"ips/internal/ts"
)

// Ensemble is the COTE-IPS stand-in: a weighted-vote ensemble over
// heterogeneous classifiers (the paper augments the COTE meta-ensemble [3]
// with IPS; we ensemble the classifiers this repository measures).  Each
// member votes with a weight equal to its training accuracy, COTE's scheme.
type Ensemble struct {
	members []ensembleMember
}

type ensembleMember struct {
	name    string
	weight  float64
	predict func(*ts.Dataset) []int
}

// EnsembleBuilder accumulates members before freezing the ensemble.
type EnsembleBuilder struct {
	train   *ts.Dataset
	members []ensembleMember
}

// NewEnsembleBuilder starts an ensemble over the given training set; member
// weights are computed as training accuracy.
func NewEnsembleBuilder(train *ts.Dataset) *EnsembleBuilder {
	return &EnsembleBuilder{train: train}
}

// Add registers a member with an explicit weight.
func (b *EnsembleBuilder) Add(name string, weight float64, predict func(*ts.Dataset) []int) *EnsembleBuilder {
	b.members = append(b.members, ensembleMember{name: name, weight: weight, predict: predict})
	return b
}

// AddWeighted registers a member weighted by its training-set accuracy.
func (b *EnsembleBuilder) AddWeighted(name string, predict func(*ts.Dataset) []int) *EnsembleBuilder {
	acc := classify.Accuracy(predict(b.train), b.train.Labels())
	return b.Add(name, acc/100, predict)
}

// Build freezes the ensemble.
func (b *EnsembleBuilder) Build() (*Ensemble, error) {
	if len(b.members) == 0 {
		return nil, errors.New("baselines: ensemble has no members")
	}
	return &Ensemble{members: b.members}, nil
}

// Predict returns the weighted-vote prediction for every instance.
func (e *Ensemble) Predict(d *ts.Dataset) []int {
	votes := make([]map[int]float64, d.Len())
	for i := range votes {
		votes[i] = map[int]float64{}
	}
	for _, m := range e.members {
		pred := m.predict(d)
		for i, p := range pred {
			votes[i][p] += m.weight
		}
	}
	out := make([]int, d.Len())
	for i, v := range votes {
		best, bestW := 0, -1.0
		for class, w := range v {
			//lint:ignore ipslint/floateq exact tie-break keeps the vote argmax deterministic
			if w > bestW || (w == bestW && class < best) {
				best, bestW = class, w
			}
		}
		out[i] = best
	}
	return out
}

// Accuracy returns the ensemble accuracy (%) on the dataset.
func (e *Ensemble) Accuracy(d *ts.Dataset) float64 {
	return classify.Accuracy(e.Predict(d), d.Labels())
}
