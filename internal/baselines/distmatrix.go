package baselines

import (
	"context"

	"ips/internal/dist"
	"ips/internal/ts"
)

// distMatrix evaluates every query against every training instance (or the
// subset named by idx; nil means all, in dataset order) and returns
// D[query][position], where position follows idx.  Each entry is
// byte-identical to ts.Dist(query, instance), but the work is batched: one
// engine pass per instance shares the per-length sliding statistics and the
// padded series FFT across all queries, instead of re-deriving them per
// (candidate, instance) pair.  An optional cache reuses prepared series
// across calls (tree growers revisit instances node after node); nil
// prepares per instance.
//
// Cancellation flows into the engine: once ctx is done the current instance
// pass stops at its next length-group boundary and distMatrix returns a nil
// matrix with an error matching errs.ErrCanceled.
func distMatrix(ctx context.Context, train *ts.Dataset, idx []int, queries [][]float64, cache *dist.Cache) ([][]float64, error) {
	if idx == nil {
		idx = make([]int, train.Len())
		for i := range idx {
			idx[i] = i
		}
	}
	D := make([][]float64, len(queries))
	for qi := range D {
		D[qi] = make([]float64, len(idx))
	}
	batch := dist.NewBatch(queries)
	col := make([]float64, len(queries))
	var counts dist.Counts
	for pos, i := range idx {
		p := cache.Prepared(train.Instances[i].Values, &counts)
		if err := batch.EvalIntoCtx(ctx, p, col, &counts); err != nil {
			return nil, err
		}
		for qi := range queries {
			D[qi][pos] = col[qi]
		}
	}
	return D, nil
}
