package baselines

import (
	"ips/internal/dist"
	"ips/internal/ts"
)

// distMatrix evaluates every query against every training instance (or the
// subset named by idx; nil means all, in dataset order) and returns
// D[query][position], where position follows idx.  Each entry is
// byte-identical to ts.Dist(query, instance), but the work is batched: one
// engine pass per instance shares the per-length sliding statistics and the
// padded series FFT across all queries, instead of re-deriving them per
// (candidate, instance) pair.  An optional cache reuses prepared series
// across calls (tree growers revisit instances node after node); nil
// prepares per instance.
func distMatrix(train *ts.Dataset, idx []int, queries [][]float64, cache *dist.Cache) [][]float64 {
	if idx == nil {
		idx = make([]int, train.Len())
		for i := range idx {
			idx[i] = i
		}
	}
	D := make([][]float64, len(queries))
	for qi := range D {
		D[qi] = make([]float64, len(idx))
	}
	batch := dist.NewBatch(queries)
	col := make([]float64, len(queries))
	var counts dist.Counts
	for pos, i := range idx {
		p := cache.Prepared(train.Instances[i].Values, &counts)
		batch.EvalInto(p, col, &counts)
		for qi := range queries {
			D[qi][pos] = col[qi]
		}
	}
	return D
}
