package baselines

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"ips/internal/classify"
	"ips/internal/ts"
)

var errSTNoCandidates = errors.New("baselines: ST found no candidates")

// STConfig parameterises the shapelet-transform baseline (Lines et al.,
// KDD'12): candidates are enumerated from the training set, scored by a
// statistical quality measure over their distance distribution (we use the
// one-way ANOVA F-statistic, the measure the ST authors adopted in later
// revisions), and the top-k per class define the transform.
type STConfig struct {
	// K is the number of shapelets kept per class (default 5).
	K int
	// LengthRatios are candidate lengths as fractions of the series length.
	LengthRatios []float64
	MinLength    int
	// MaxCandidates bounds the number of scored candidates; the candidate
	// space is subsampled uniformly beyond it (default 500).
	MaxCandidates int
	Seed          int64
}

func (c STConfig) defaults() STConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if len(c.LengthRatios) == 0 {
		c.LengthRatios = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.MinLength <= 0 {
		c.MinLength = 4
	}
	if c.MaxCandidates <= 0 {
		c.MaxCandidates = 500
	}
	return c
}

// FStatQuality returns the one-way ANOVA F-statistic of the distances
// grouped by class: between-class variance over within-class variance.
// Larger means the candidate separates classes better.
func FStatQuality(dists []float64, labels []int) float64 {
	groups := map[int][]float64{}
	for i, d := range dists {
		groups[labels[i]] = append(groups[labels[i]], d)
	}
	k := len(groups)
	n := len(dists)
	if k < 2 || n <= k {
		return 0
	}
	var grand float64
	for _, d := range dists {
		grand += d
	}
	grand /= float64(n)
	var ssBetween, ssWithin float64
	for _, g := range groups {
		var mean float64
		for _, d := range g {
			mean += d
		}
		mean /= float64(len(g))
		diff := mean - grand
		ssBetween += float64(len(g)) * diff * diff
		for _, d := range g {
			dd := d - mean
			ssWithin += dd * dd
		}
	}
	msBetween := ssBetween / float64(k-1)
	msWithin := ssWithin / float64(n-k)
	if msWithin == 0 {
		if msBetween == 0 {
			return 0
		}
		return 1e12 // perfectly separated
	}
	return msBetween / msWithin
}

// STDiscover enumerates (subsampled) candidates, scores each by the
// F-statistic of its distance distribution, and returns the top-k per class
// (a candidate is attributed to the class whose mean distance to it is
// smallest).
func STDiscover(train *ts.Dataset, cfg STConfig) ([]classify.Shapelet, error) {
	return STDiscoverCtx(context.Background(), train, cfg)
}

// STDiscoverCtx is STDiscover with cooperative cancellation: the scoring
// stage checks ctx per instance pass inside the batched distance engine.
func STDiscoverCtx(ctx context.Context, train *ts.Dataset, cfg STConfig) ([]classify.Shapelet, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	n := train.SeriesLen()
	labels := train.Labels()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Enumerate the candidate space (instance, length, offset) and
	// subsample it uniformly to MaxCandidates.
	type candRef struct {
		inst, at, length int
	}
	var space []candRef
	for idx, in := range train.Instances {
		for _, ratio := range cfg.LengthRatios {
			L := int(ratio * float64(n))
			if L < cfg.MinLength {
				L = cfg.MinLength
			}
			if L > len(in.Values) {
				L = len(in.Values)
			}
			stride := L / 2
			if stride < 1 {
				stride = 1
			}
			for at := 0; at+L <= len(in.Values); at += stride {
				space = append(space, candRef{inst: idx, at: at, length: L})
			}
		}
	}
	if len(space) > cfg.MaxCandidates {
		perm := rng.Perm(len(space))[:cfg.MaxCandidates]
		sub := make([]candRef, len(perm))
		for i, p := range perm {
			sub[i] = space[p]
		}
		space = sub
	}

	classes := train.Classes()
	type scored struct {
		s classify.Shapelet
		f float64
	}
	// Score candidates against the batched distance matrix: one engine pass
	// per instance shares sliding statistics across all candidates, instead
	// of a fresh ts.Dist scan per (candidate, instance) pair.
	queries := make([][]float64, len(space))
	for ci, ref := range space {
		queries[ci] = train.Instances[ref.inst].Values[ref.at : ref.at+ref.length]
	}
	D, err := distMatrix(ctx, train, nil, queries, nil)
	if err != nil {
		return nil, err
	}
	best := map[int][]scored{}
	for ci := range space {
		values := ts.Series(queries[ci])
		dists := D[ci]
		f := FStatQuality(dists, labels)
		if f <= 0 {
			continue
		}
		// Attribute to the class with the smallest mean distance.
		bestClass, bestMean := classes[0], 0.0
		first := true
		for _, class := range classes {
			var sum float64
			var cnt int
			for i, d := range dists {
				if labels[i] == class {
					sum += d
					cnt++
				}
			}
			mean := sum / float64(cnt)
			if first || mean < bestMean {
				bestClass, bestMean = class, mean
				first = false
			}
		}
		best[bestClass] = append(best[bestClass], scored{
			s: classify.Shapelet{Class: bestClass, Values: append(ts.Series(nil), values...), Score: f},
			f: f,
		})
	}
	var out []classify.Shapelet
	for _, class := range classes {
		cands := best[class]
		sort.Slice(cands, func(i, j int) bool { return cands[i].f > cands[j].f })
		limit := cfg.K
		if limit > len(cands) {
			limit = len(cands)
		}
		for _, c := range cands[:limit] {
			out = append(out, c.s)
		}
	}
	if len(out) == 0 {
		return nil, errSTNoCandidates
	}
	return out, nil
}

// STEvaluate runs the full ST pipeline with the common shapelet-transform
// classifier and a background context; see STEvaluateCtx.
func STEvaluate(train, test *ts.Dataset, cfg STConfig, svmCfg classify.SVMConfig) (float64, error) {
	return STEvaluateCtx(context.Background(), train, test, cfg, svmCfg)
}

// STEvaluateCtx runs the full ST pipeline — discovery, classifier training,
// and test scoring — with cooperative cancellation.
func STEvaluateCtx(ctx context.Context, train, test *ts.Dataset, cfg STConfig, svmCfg classify.SVMConfig) (float64, error) {
	sh, err := STDiscoverCtx(ctx, train, cfg)
	if err != nil {
		return 0, err
	}
	m, err := TrainShapeletClassifierCtx(ctx, train, sh, svmCfg)
	if err != nil {
		return 0, err
	}
	return m.AccuracyCtx(ctx, test)
}
