package baselines

import (
	"context"
	"errors"
	"math/rand"
	"sort"

	"ips/internal/classify"
	"ips/internal/dist"
	"ips/internal/ts"
)

// FSConfig parameterises the Fast Shapelets baseline (Rakthanmanon & Keogh,
// SDM'13), another Table VI comparison method: candidate subsequences are
// discretised into SAX words, random masking projections count hash
// collisions per class, and the words with the largest between-class
// frequency gaps nominate the shapelets that are then refined by
// information gain.
type FSConfig struct {
	// K is the number of shapelets per class (default 5).
	K int
	// LengthRatios are candidate lengths as fractions of the series length.
	LengthRatios []float64
	MinLength    int
	// SAXSegments is the SAX word length (default 8).
	SAXSegments int
	// Projections is the number of random-masking rounds (default 10).
	Projections int
	// MaskBits is the number of word positions masked per round (default 2).
	MaskBits int
	// TopWords bounds how many high-gap words are refined per class and
	// length (default 10).
	TopWords int
	Seed     int64
}

func (c FSConfig) defaults() FSConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if len(c.LengthRatios) == 0 {
		c.LengthRatios = []float64{0.1, 0.2, 0.3}
	}
	if c.MinLength <= 0 {
		c.MinLength = 4
	}
	if c.SAXSegments <= 0 {
		c.SAXSegments = 8
	}
	if c.Projections <= 0 {
		c.Projections = 10
	}
	if c.MaskBits <= 0 {
		c.MaskBits = 2
	}
	if c.TopWords <= 0 {
		c.TopWords = 10
	}
	return c
}

// fsWord tracks one SAX word's per-class collision counts and a
// representative raw subsequence.
type fsWord struct {
	counts map[int]float64
	rep    ts.Series
	class  int
	gap    float64
}

// FastShapeletsDiscover runs the SAX random-masking pipeline and returns
// top-k shapelets per class.
func FastShapeletsDiscover(train *ts.Dataset, cfg FSConfig) ([]classify.Shapelet, error) {
	return FastShapeletsDiscoverCtx(context.Background(), train, cfg)
}

// FastShapeletsDiscoverCtx is FastShapeletsDiscover with cooperative
// cancellation: the per-ratio refinement stage checks ctx per instance pass
// inside the batched distance engine.
func FastShapeletsDiscoverCtx(ctx context.Context, train *ts.Dataset, cfg FSConfig) ([]classify.Shapelet, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	n := train.SeriesLen()
	classes := train.Classes()
	classTotals := map[int]float64{}
	for _, in := range train.Instances {
		classTotals[in.Label]++
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	// One cache across length ratios: every ratio's refinement pass walks
	// the same training instances, so their prefix statistics are shared.
	cache := dist.NewCache()

	var out []classify.Shapelet
	for _, ratio := range cfg.LengthRatios {
		L := int(ratio * float64(n))
		if L < cfg.MinLength {
			L = cfg.MinLength
		}
		if L > n {
			L = n
		}
		// Collect the SAX word of every subsequence (stride L/4) with its
		// owner class and a representative.
		type occ struct {
			word  string
			class int
			rep   ts.Series
		}
		var occs []occ
		stride := L / 4
		if stride < 1 {
			stride = 1
		}
		for _, in := range train.Instances {
			for at := 0; at+L <= len(in.Values); at += stride {
				sub := in.Values[at : at+L]
				occs = append(occs, occ{word: SAXWord(sub, cfg.SAXSegments), class: in.Label, rep: sub})
			}
		}
		// Random masking: in each projection round, mask MaskBits positions
		// of every word and count per-class collisions of the masked keys.
		words := map[string]*fsWord{}
		for p := 0; p < cfg.Projections; p++ {
			mask := rng.Perm(cfg.SAXSegments)[:cfg.MaskBits]
			for _, o := range occs {
				key := maskWord(o.word, mask)
				w := words[key]
				if w == nil {
					w = &fsWord{counts: map[int]float64{}, rep: o.rep, class: o.class}
					words[key] = w
				}
				w.counts[o.class]++
			}
		}
		// Gap score: normalised own-class frequency minus the best
		// other-class frequency; large gaps mark class-distinctive words.
		var ranked []*fsWord
		for _, w := range words {
			bestClass, bestFreq := 0, -1.0
			secondFreq := 0.0
			for _, class := range classes {
				f := w.counts[class] / classTotals[class]
				if f > bestFreq {
					secondFreq = bestFreq
					bestClass, bestFreq = class, f
				} else if f > secondFreq {
					secondFreq = f
				}
			}
			if secondFreq < 0 {
				secondFreq = 0
			}
			w.class = bestClass
			w.gap = bestFreq - secondFreq
			ranked = append(ranked, w)
		}
		sort.Slice(ranked, func(i, j int) bool { return ranked[i].gap > ranked[j].gap })

		// Refine the top words per class by information gain over the raw
		// training distances.  The quota selection depends only on the gap
		// ranking, so the chosen representatives are collected first and
		// scored in one batched distance-matrix pass.
		perClass := map[int]int{}
		labels := train.Labels()
		var chosen []*fsWord
		for _, w := range ranked {
			if perClass[w.class] >= cfg.TopWords {
				continue
			}
			perClass[w.class]++
			chosen = append(chosen, w)
		}
		queries := make([][]float64, len(chosen))
		for i, w := range chosen {
			queries[i] = w.rep
		}
		D, err := distMatrix(ctx, train, nil, queries, cache)
		if err != nil {
			return nil, err
		}
		for i, w := range chosen {
			gain, _ := bestInfoGainSplit(D[i], labels, w.class)
			out = append(out, classify.Shapelet{Class: w.class, Values: w.rep.Clone(), Score: gain})
		}
	}
	if len(out) == 0 {
		return nil, errors.New("baselines: fast shapelets found no candidates")
	}
	// Keep the top-k by gain per class.
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	kept := map[int]int{}
	var final []classify.Shapelet
	for _, s := range out {
		if kept[s.Class] >= cfg.K {
			continue
		}
		kept[s.Class]++
		final = append(final, s)
	}
	return final, nil
}

// maskWord replaces the masked positions of a SAX word with '*'.
func maskWord(word string, mask []int) string {
	b := []byte(word)
	for _, m := range mask {
		if m < len(b) {
			b[m] = '*'
		}
	}
	return string(b)
}

// FastShapeletsEvaluate runs the full Fast Shapelets pipeline with the
// common shapelet-transform classifier and a background context; see
// FastShapeletsEvaluateCtx.
func FastShapeletsEvaluate(train, test *ts.Dataset, cfg FSConfig, svmCfg classify.SVMConfig) (float64, error) {
	return FastShapeletsEvaluateCtx(context.Background(), train, test, cfg, svmCfg)
}

// FastShapeletsEvaluateCtx runs the full Fast Shapelets pipeline —
// discovery, classifier training, and test scoring — with cooperative
// cancellation.
func FastShapeletsEvaluateCtx(ctx context.Context, train, test *ts.Dataset, cfg FSConfig, svmCfg classify.SVMConfig) (float64, error) {
	sh, err := FastShapeletsDiscoverCtx(ctx, train, cfg)
	if err != nil {
		return 0, err
	}
	m, err := TrainShapeletClassifierCtx(ctx, train, sh, svmCfg)
	if err != nil {
		return 0, err
	}
	return m.AccuracyCtx(ctx, test)
}
