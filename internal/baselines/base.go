// Package baselines implements the comparison methods of the IPS paper's
// evaluation: BASE, the matrix-profile baseline of Yeh et al. [37]
// (§II-B, Formula 4), and a faithful-in-spirit re-implementation of
// BSPCOVER, the SAX + Bloom-filter + p-cover shapelet method of Li et
// al. [23] the paper reports as the efficiency state of the art.  A small
// COTE-IPS ensemble stand-in rounds out the Table VI columns we measure.
package baselines

import (
	"context"
	"errors"
	"sort"

	"ips/internal/classify"
	"ips/internal/errs"
	"ips/internal/mp"
	"ips/internal/ts"
)

// BaseConfig parameterises the MP baseline.
type BaseConfig struct {
	// K is the number of shapelets per class.
	K int
	// LengthRatios are candidate lengths as fractions of the instance
	// length (kept identical to IPS for fairness, §IV-A).
	LengthRatios []float64
	MinLength    int
	// Workers parallelises the STOMP self- and AB-joins over diagonal
	// tiles (<=1 means sequential).  The discovered shapelets are
	// identical for any worker count; see mp.SelfJoinOpts.
	Workers int
}

func (c BaseConfig) defaults() BaseConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if len(c.LengthRatios) == 0 {
		c.LengthRatios = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.MinLength <= 0 {
		c.MinLength = 4
	}
	return c
}

// BaseDiscover implements the MP baseline (Formula 4) with a background
// context; see BaseDiscoverCtx.
func BaseDiscover(train *ts.Dataset, cfg BaseConfig) ([]classify.Shapelet, error) {
	return BaseDiscoverCtx(context.Background(), train, cfg)
}

// BaseDiscoverCtx implements the MP baseline (Formula 4): per class C it
// concatenates all of C's training instances into T_C and all remaining
// instances into T_rest, computes the self-join profile P_CC and the AB-join
// profile P_C,rest, and selects the subsequences of T_C with the top-k
// largest |P_C,rest − P_CC| as C's "shapelets".  Cancellation is checked
// per STOMP join (the unit of heavy work) and inside the joins' tile
// workers; a cancelled run returns an error matching errs.ErrCanceled.
func BaseDiscoverCtx(ctx context.Context, train *ts.Dataset, cfg BaseConfig) ([]classify.Shapelet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	cfg = cfg.defaults()
	if train == nil {
		return nil, errs.BadInput(errs.StageValidate, "base.discover", "", "nil dataset")
	}
	if err := train.Validate(true); err != nil {
		return nil, errs.BadInputErr(errs.StageValidate, "base.discover", train.Name, err)
	}
	byClass := train.ByClass()
	classes := train.Classes()
	n := train.SeriesLen()

	type scored struct {
		diff   float64
		values ts.Series
	}
	var out []classify.Shapelet
	for _, class := range classes {
		own := byClass[class]
		var rest []ts.Instance
		for _, oc := range classes {
			if oc != class {
				rest = append(rest, byClass[oc]...)
			}
		}
		catOwn, startsOwn := ts.ConcatenateInstances(own)
		catRest, startsRest := ts.ConcatenateInstances(rest)

		var best []scored
		for _, ratio := range cfg.LengthRatios {
			L := int(ratio * float64(n))
			if L < cfg.MinLength {
				L = cfg.MinLength
			}
			if L > n {
				L = n
			}
			validOwn := ts.BoundaryMask(startsOwn, len(catOwn), L)
			validRest := ts.BoundaryMask(startsRest, len(catRest), L)
			kern := mp.Options{Workers: cfg.Workers}
			pSelf, err := mp.SelfJoinCtx(ctx, catOwn, L, validOwn, kern)
			if err != nil {
				return nil, err
			}
			pCross, err := mp.ABJoinCtx(ctx, catOwn, catRest, L, validOwn, validRest, kern)
			if err != nil {
				return nil, err
			}
			diff := mp.Diff(pCross, pSelf)
			dp := &mp.Profile{P: diff, W: L}
			// Top-k per length with an exclusion zone; merged across
			// lengths below.
			for _, idx := range dp.TopK(cfg.K, true, L/2) {
				best = append(best, scored{
					diff:   diff[idx],
					values: catOwn[idx : idx+L].Clone(),
				})
			}
		}
		if len(best) == 0 {
			return nil, errors.New("baselines: BASE found no candidates")
		}
		sort.Slice(best, func(i, j int) bool { return best[i].diff > best[j].diff })
		limit := cfg.K
		if limit > len(best) {
			limit = len(best)
		}
		for _, s := range best[:limit] {
			out = append(out, classify.Shapelet{Class: class, Values: s.values, Score: s.diff})
		}
	}
	return out, nil
}

// TrainShapeletClassifier builds the common classifier with a background
// context; see TrainShapeletClassifierCtx.
func TrainShapeletClassifier(train *ts.Dataset, shapelets []classify.Shapelet, svmCfg classify.SVMConfig) (*ShapeletModel, error) {
	return TrainShapeletClassifierCtx(context.Background(), train, shapelets, svmCfg)
}

// TrainShapeletClassifierCtx builds the shapelet-transform + linear-SVM
// classifier used by every shapelet method in this repository, so accuracy
// comparisons isolate the discovery step.  Cancellation reaches both the
// transform's distance engine and the SVM training epochs.
func TrainShapeletClassifierCtx(ctx context.Context, train *ts.Dataset, shapelets []classify.Shapelet, svmCfg classify.SVMConfig) (*ShapeletModel, error) {
	if len(shapelets) == 0 {
		return nil, errors.New("baselines: no shapelets")
	}
	X, err := classify.TransformCtx(ctx, train, shapelets, 1, nil, nil)
	if err != nil {
		return nil, err
	}
	scaler, err := classify.FitScaler(X)
	if err != nil {
		return nil, err
	}
	svm, err := classify.TrainSVMCtx(ctx, scaler.Apply(X), train.Labels(), svmCfg, nil)
	if err != nil {
		return nil, err
	}
	return &ShapeletModel{Shapelets: shapelets, Scaler: scaler, SVM: svm}, nil
}

// ShapeletModel is a trained shapelet-transform classifier.
type ShapeletModel struct {
	Shapelets []classify.Shapelet
	Scaler    *classify.Scaler
	SVM       *classify.SVM
}

// Predict classifies every instance with a background context; see
// PredictCtx.
func (m *ShapeletModel) Predict(d *ts.Dataset) []int {
	pred, err := m.PredictCtx(context.Background(), d)
	if err != nil {
		// Unreachable: a background context never cancels and the transform
		// has no other failure mode.
		return nil
	}
	return pred
}

// PredictCtx classifies every instance.  A cancelled context aborts the
// shapelet transform and returns an error matching errs.ErrCanceled.
func (m *ShapeletModel) PredictCtx(ctx context.Context, d *ts.Dataset) ([]int, error) {
	X, err := classify.TransformCtx(ctx, d, m.Shapelets, 1, nil, nil)
	if err != nil {
		return nil, err
	}
	return m.SVM.PredictAll(m.Scaler.Apply(X)), nil
}

// Accuracy returns the model's accuracy (%) on the dataset with a
// background context; see AccuracyCtx.
func (m *ShapeletModel) Accuracy(d *ts.Dataset) float64 {
	acc, err := m.AccuracyCtx(context.Background(), d)
	if err != nil {
		return 0 // unreachable: a background context never cancels
	}
	return acc
}

// AccuracyCtx returns the model's accuracy (%) on the dataset.
func (m *ShapeletModel) AccuracyCtx(ctx context.Context, d *ts.Dataset) (float64, error) {
	pred, err := m.PredictCtx(ctx, d)
	if err != nil {
		return 0, err
	}
	return classify.Accuracy(pred, d.Labels()), nil
}

// BaseEvaluate runs the full BASE pipeline and returns its test accuracy.
func BaseEvaluate(train, test *ts.Dataset, cfg BaseConfig, svmCfg classify.SVMConfig) (float64, error) {
	return BaseEvaluateCtx(context.Background(), train, test, cfg, svmCfg)
}

// BaseEvaluateCtx is BaseEvaluate with cooperative cancellation; see
// BaseDiscoverCtx for the granularity.
func BaseEvaluateCtx(ctx context.Context, train, test *ts.Dataset, cfg BaseConfig, svmCfg classify.SVMConfig) (float64, error) {
	sh, err := BaseDiscoverCtx(ctx, train, cfg)
	if err != nil {
		return 0, err
	}
	m, err := TrainShapeletClassifierCtx(ctx, train, sh, svmCfg)
	if err != nil {
		return 0, err
	}
	return m.AccuracyCtx(ctx, test)
}
