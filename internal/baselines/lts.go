package baselines

import (
	"math"
	"math/rand"
	"sort"

	"ips/internal/classify"
	"ips/internal/ts"
)

// LTSConfig parameterises the learning-time-series-shapelets baseline
// (Grabocka et al., KDD'14), one of the Table VI comparison methods: instead
// of searching candidate subsequences, shapelets are *learned* jointly with
// a logistic classifier by gradient descent on a soft-minimum distance.
type LTSConfig struct {
	// K is the number of shapelets learned per class (default 5, matching
	// the search-based methods).
	K int
	// LengthRatio is the shapelet length as a fraction of the series
	// length (default 0.2).
	LengthRatio float64
	// Alpha controls the soft-minimum sharpness (default -30; more
	// negative approaches the hard minimum).
	Alpha float64
	// LearnRate is the gradient step size (default 0.1).
	LearnRate float64
	// Iterations is the number of full-batch descent steps (default 300).
	Iterations int
	// Lambda is the L2 regularisation on the classifier weights
	// (default 0.01).
	Lambda float64
	Seed   int64
}

func (c LTSConfig) defaults() LTSConfig {
	if c.K <= 0 {
		c.K = 5
	}
	if c.LengthRatio <= 0 {
		c.LengthRatio = 0.2
	}
	if c.Alpha >= 0 {
		c.Alpha = -30
	}
	if c.LearnRate <= 0 {
		c.LearnRate = 0.1
	}
	if c.Iterations <= 0 {
		c.Iterations = 300
	}
	if c.Lambda <= 0 {
		c.Lambda = 0.01
	}
	return c
}

// LTSModel is a trained learning-shapelets classifier.
type LTSModel struct {
	Shapelets []classify.Shapelet // learned shapelets (Class records initialisation origin)
	// W[c][k] and B[c] parameterise the per-class logistic model over the
	// K_total soft-min distances; Classes aligns the rows.
	W       [][]float64
	B       []float64
	Classes []int
	Alpha   float64
}

// LTSTrain learns shapelets and the logistic classifier jointly.
func LTSTrain(train *ts.Dataset, cfg LTSConfig) (*LTSModel, error) {
	cfg = cfg.defaults()
	if err := train.Validate(true); err != nil {
		return nil, err
	}
	n := train.SeriesLen()
	L := int(cfg.LengthRatio * float64(n))
	if L < 4 {
		L = 4
	}
	if L > n {
		L = n
	}
	classes := train.Classes()
	rng := rand.New(rand.NewSource(cfg.Seed))

	// Initialise shapelets from random training segments of each class —
	// the cheap stand-in for the paper's k-means centroid initialisation.
	byClass := train.ByClass()
	var shapelets []classify.Shapelet
	for _, class := range classes {
		ins := byClass[class]
		for k := 0; k < cfg.K; k++ {
			src := ins[rng.Intn(len(ins))]
			at := rng.Intn(len(src.Values) - L + 1)
			shapelets = append(shapelets, classify.Shapelet{
				Class:  class,
				Values: src.Values[at : at+L].Clone(),
			})
		}
	}
	kTotal := len(shapelets)

	m := &LTSModel{
		Shapelets: shapelets,
		Classes:   classes,
		Alpha:     cfg.Alpha,
		W:         make([][]float64, len(classes)),
		B:         make([]float64, len(classes)),
	}
	for ci := range classes {
		m.W[ci] = make([]float64, kTotal)
		for k := range m.W[ci] {
			m.W[ci][k] = 0.01 * rng.NormFloat64()
		}
	}

	// Full-batch gradient descent on the one-vs-rest logistic losses.
	nInst := len(train.Instances)
	for iter := 0; iter < cfg.Iterations; iter++ {
		// Forward: soft-min distances and their alignment weights.
		M := make([][]float64, nInst)       // M[i][k]
		grads := make([][][]float64, nInst) // grads[i][k][l] = dM/dS_kl aggregated later
		for i, in := range train.Instances {
			M[i] = make([]float64, kTotal)
			grads[i] = make([][]float64, kTotal)
			for k, s := range m.Shapelets {
				M[i][k], grads[i][k] = softMinDistance(s.Values, in.Values, cfg.Alpha)
			}
		}
		// Accumulate classifier and shapelet gradients.
		gW := make([][]float64, len(classes))
		gB := make([]float64, len(classes))
		for ci := range classes {
			gW[ci] = make([]float64, kTotal)
		}
		gS := make([][]float64, kTotal)
		for k := range gS {
			gS[k] = make([]float64, L)
		}
		for i, in := range train.Instances {
			for ci, class := range classes {
				y := 0.0
				if in.Label == class {
					y = 1
				}
				var z float64
				for k := 0; k < kTotal; k++ {
					z += m.W[ci][k] * M[i][k]
				}
				z += m.B[ci]
				p := 1 / (1 + math.Exp(-z))
				d := p - y // dLoss/dz
				gB[ci] += d
				for k := 0; k < kTotal; k++ {
					gW[ci][k] += d * M[i][k]
					// Chain rule into the shapelet values.
					coef := d * m.W[ci][k]
					for l := 0; l < L; l++ {
						gS[k][l] += coef * grads[i][k][l]
					}
				}
			}
		}
		scale := cfg.LearnRate / float64(nInst)
		for ci := range classes {
			for k := 0; k < kTotal; k++ {
				m.W[ci][k] -= scale*gW[ci][k] + cfg.LearnRate*cfg.Lambda*m.W[ci][k]
			}
			m.B[ci] -= scale * gB[ci]
		}
		for k := 0; k < kTotal; k++ {
			for l := 0; l < L; l++ {
				m.Shapelets[k].Values[l] -= scale * gS[k][l]
			}
		}
	}
	return m, nil
}

// softMinDistance returns the soft-minimum of the per-alignment mean squared
// distances between shapelet s and series t, together with the gradient of
// that soft-min with respect to each shapelet value.
func softMinDistance(s, t ts.Series, alpha float64) (float64, []float64) {
	L := len(s)
	nAlign := len(t) - L + 1
	if nAlign <= 0 {
		return 0, make([]float64, L)
	}
	dists := make([]float64, nAlign)
	maxExp := math.Inf(-1)
	for j := 0; j < nAlign; j++ {
		var d float64
		for l := 0; l < L; l++ {
			diff := s[l] - t[j+l]
			d += diff * diff
		}
		dists[j] = d / float64(L)
		if alpha*dists[j] > maxExp {
			maxExp = alpha * dists[j]
		}
	}
	// Numerically stable softmax weights over alpha·d.
	var num, den float64
	weights := make([]float64, nAlign)
	for j, d := range dists {
		w := math.Exp(alpha*d - maxExp)
		weights[j] = w
		num += d * w
		den += w
	}
	softMin := num / den
	// dSoftMin/dS_l = Σ_j w'_j (1 + α(d_j − softMin)) · dd_j/dS_l
	grad := make([]float64, L)
	for j := 0; j < nAlign; j++ {
		wj := weights[j] / den
		coef := wj * (1 + alpha*(dists[j]-softMin))
		for l := 0; l < L; l++ {
			grad[l] += coef * 2 * (s[l] - t[j+l]) / float64(L)
		}
	}
	return softMin, grad
}

// Predict classifies every instance by the per-class logistic scores.
func (m *LTSModel) Predict(d *ts.Dataset) []int {
	out := make([]int, d.Len())
	for i, in := range d.Instances {
		M := make([]float64, len(m.Shapelets))
		for k, s := range m.Shapelets {
			M[k], _ = softMinDistance(s.Values, in.Values, m.Alpha)
		}
		best, bestZ := 0, math.Inf(-1)
		for ci := range m.Classes {
			var z float64
			for k, v := range M {
				z += m.W[ci][k] * v
			}
			z += m.B[ci]
			if z > bestZ {
				best, bestZ = ci, z
			}
		}
		out[i] = m.Classes[best]
	}
	return out
}

// LTSEvaluate trains LTS and returns its test accuracy.
func LTSEvaluate(train, test *ts.Dataset, cfg LTSConfig) (float64, error) {
	m, err := LTSTrain(train, cfg)
	if err != nil {
		return 0, err
	}
	return classify.Accuracy(m.Predict(test), test.Labels()), nil
}

// TopShapelets returns the learned shapelets ranked by the magnitude of
// their classifier weight (most influential first).
func (m *LTSModel) TopShapelets(k int) []classify.Shapelet {
	type ranked struct {
		idx    int
		weight float64
	}
	rs := make([]ranked, len(m.Shapelets))
	for i := range m.Shapelets {
		var w float64
		for ci := range m.Classes {
			w += math.Abs(m.W[ci][i])
		}
		rs[i] = ranked{idx: i, weight: w}
	}
	sort.Slice(rs, func(a, b int) bool { return rs[a].weight > rs[b].weight })
	if k > len(rs) {
		k = len(rs)
	}
	out := make([]classify.Shapelet, 0, k)
	for _, r := range rs[:k] {
		s := m.Shapelets[r.idx]
		s.Score = r.weight
		out = append(out, s)
	}
	return out
}
