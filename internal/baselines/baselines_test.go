package baselines

import (
	"math"
	"math/rand"
	"testing"

	"ips/internal/classify"
	"ips/internal/ts"
	"ips/internal/ucr"
)

func plantedDataset(nPerClass, length, classes int, seed int64) *ts.Dataset {
	rng := rand.New(rand.NewSource(seed))
	patterns := make([][]float64, classes)
	pl := length / 4
	for c := range patterns {
		p := make([]float64, pl)
		for i := range p {
			p[i] = 4 * math.Sin(float64(i)*math.Pi/float64(pl)+float64(c)*2.1)
		}
		patterns[c] = p
	}
	d := &ts.Dataset{Name: "planted"}
	for c := 0; c < classes; c++ {
		for i := 0; i < nPerClass; i++ {
			vals := make(ts.Series, length)
			for j := range vals {
				vals[j] = 0.3 * rng.NormFloat64()
			}
			at := rng.Intn(length - pl)
			for j, pv := range patterns[c] {
				vals[at+j] += pv
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	return d
}

func TestPAA(t *testing.T) {
	got := PAA([]float64{1, 1, 2, 2, 3, 3}, 3)
	want := []float64{1, 2, 3}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-12 {
			t.Fatalf("PAA = %v, want %v", got, want)
		}
	}
	// Segments exceeding the length collapse to per-point averages.
	got = PAA([]float64{1, 2}, 5)
	if len(got) != 2 {
		t.Fatalf("oversized segments PAA = %v", got)
	}
	if PAA(nil, 3) != nil || PAA([]float64{1}, 0) != nil {
		t.Fatal("degenerate PAA should be nil")
	}
}

func TestSAXWord(t *testing.T) {
	// A rising ramp must produce a non-decreasing word from 'a' to 'd'.
	ramp := make([]float64, 32)
	for i := range ramp {
		ramp[i] = float64(i)
	}
	w := SAXWord(ramp, 4)
	if len(w) != 4 {
		t.Fatalf("word length = %d", len(w))
	}
	if w[0] != 'a' || w[3] != 'd' {
		t.Fatalf("ramp word = %q", w)
	}
	for i := 1; i < len(w); i++ {
		if w[i] < w[i-1] {
			t.Fatalf("ramp word not monotone: %q", w)
		}
	}
	// Scale invariance through z-normalisation.
	scaled := make([]float64, 32)
	for i := range scaled {
		scaled[i] = ramp[i]*100 + 7
	}
	if SAXWord(scaled, 4) != w {
		t.Fatal("SAX word should be scale invariant")
	}
	// Similar shapes share words; opposite shapes differ.
	fall := make([]float64, 32)
	for i := range fall {
		fall[i] = -ramp[i]
	}
	if SAXWord(fall, 4) == w {
		t.Fatal("opposite shapes should not share SAX words")
	}
}

func TestBaseDiscoverShapeAndClasses(t *testing.T) {
	d := plantedDataset(8, 80, 2, 1)
	sh, err := BaseDiscover(d, BaseConfig{K: 3, LengthRatios: []float64{0.2, 0.3}})
	if err != nil {
		t.Fatal(err)
	}
	perClass := map[int]int{}
	for _, s := range sh {
		perClass[s.Class]++
		if len(s.Values) == 0 {
			t.Fatal("empty shapelet")
		}
		if s.Score < 0 {
			t.Fatalf("diff score should be non-negative, got %v", s.Score)
		}
	}
	if perClass[0] != 3 || perClass[1] != 3 {
		t.Fatalf("per-class counts = %v", perClass)
	}
	// Scores are sorted descending per class (largest diff first).
	if _, err := BaseDiscover(&ts.Dataset{}, BaseConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestBaseEvaluateBeatsChance(t *testing.T) {
	train := plantedDataset(10, 80, 2, 2)
	test := plantedDataset(10, 80, 2, 3)
	acc, err := BaseEvaluate(train, test, BaseConfig{K: 5}, classify.SVMConfig{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 60 { // chance is 50%; BASE is weak but not useless here
		t.Fatalf("BASE accuracy = %v%%", acc)
	}
}

func TestBestInfoGainSplit(t *testing.T) {
	// Perfectly separable distances.
	dists := []float64{0.1, 0.2, 0.3, 5, 6, 7}
	labels := []int{0, 0, 0, 1, 1, 1}
	gain, split := bestInfoGainSplit(dists, labels, 0)
	if gain < 0.99 {
		t.Fatalf("separable gain = %v", gain)
	}
	if split < 0.3 || split > 5 {
		t.Fatalf("split = %v, want in (0.3, 5)", split)
	}
	// Useless distances give ~zero gain.
	gain, _ = bestInfoGainSplit([]float64{1, 1, 1, 1}, []int{0, 1, 0, 1}, 0)
	if gain != 0 {
		t.Fatalf("uninformative gain = %v", gain)
	}
}

func TestBinaryEntropy(t *testing.T) {
	if binaryEntropy(0.5) != 1 {
		t.Fatalf("H(0.5) = %v", binaryEntropy(0.5))
	}
	if binaryEntropy(0) != 0 || binaryEntropy(1) != 0 {
		t.Fatal("entropy edges wrong")
	}
}

func TestBSPCoverDiscover(t *testing.T) {
	d := plantedDataset(8, 60, 2, 5)
	sh, err := BSPCoverDiscover(d, BSPConfig{K: 3, LengthRatios: []float64{0.25}})
	if err != nil {
		t.Fatal(err)
	}
	perClass := map[int]int{}
	for _, s := range sh {
		perClass[s.Class]++
	}
	for c := 0; c < 2; c++ {
		if perClass[c] == 0 || perClass[c] > 3 {
			t.Fatalf("class %d has %d shapelets", c, perClass[c])
		}
	}
	if _, err := BSPCoverDiscover(&ts.Dataset{}, BSPConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestBSPCoverEvaluateAccuracy(t *testing.T) {
	train := plantedDataset(10, 60, 2, 6)
	test := plantedDataset(10, 60, 2, 7)
	acc, err := BSPCoverEvaluate(train, test, BSPConfig{K: 5, LengthRatios: []float64{0.2, 0.3}}, classify.SVMConfig{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 75 {
		t.Fatalf("BSPCOVER accuracy = %v%%", acc)
	}
}

func TestBSPCoverSlowerThanItLooks(t *testing.T) {
	// Not a timing test: verify BSPCOVER examines every training instance
	// per candidate by checking it works on a slightly larger set without
	// degenerate output.
	m, err := ucr.Find("SonyAIBORobotSurface1")
	if err != nil {
		t.Fatal(err)
	}
	train, test := ucr.Generate(m, ucr.GenConfig{MaxTest: 60, Seed: 9})
	acc, err := BSPCoverEvaluate(train, test, BSPConfig{K: 5}, classify.SVMConfig{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 55 {
		t.Fatalf("BSPCOVER on generated Sony = %v%%", acc)
	}
}

func TestEnsemble(t *testing.T) {
	train := plantedDataset(10, 60, 2, 11)
	test := plantedDataset(10, 60, 2, 12)
	truth := test.Labels()

	perfect := func(d *ts.Dataset) []int { return d.Labels() }
	alwaysZero := func(d *ts.Dataset) []int { return make([]int, d.Len()) }

	e, err := NewEnsembleBuilder(train).
		AddWeighted("perfect", perfect).
		Add("zero", 0.1, alwaysZero).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	pred := e.Predict(test)
	if classify.Accuracy(pred, truth) != 100 {
		t.Fatal("high-weight perfect member should dominate")
	}
	if e.Accuracy(test) != 100 {
		t.Fatal("Accuracy helper inconsistent")
	}
	// Two zero-weight... empty ensemble errors.
	if _, err := NewEnsembleBuilder(train).Build(); err == nil {
		t.Fatal("empty ensemble should error")
	}
	// Tie-break picks the smaller class deterministically.
	e2, _ := NewEnsembleBuilder(train).
		Add("zero", 1, alwaysZero).
		Add("one", 1, func(d *ts.Dataset) []int {
			out := make([]int, d.Len())
			for i := range out {
				out[i] = 1
			}
			return out
		}).
		Build()
	pred = e2.Predict(test)
	for _, p := range pred {
		if p != 0 {
			t.Fatal("tie-break should pick class 0")
		}
	}
}

func TestEnsembleCOTEIPSStandIn(t *testing.T) {
	// The actual Table VI construction: IPS + 1NN-ED + 1NN-DTW weighted by
	// training accuracy should do at least as well as the worst member and
	// usually track the best.
	m, err := ucr.Find("ItalyPowerDemand")
	if err != nil {
		t.Fatal(err)
	}
	train, test := ucr.Generate(m, ucr.GenConfig{MaxTest: 80, Seed: 13})
	nnED := classify.NewNN(train.Instances, classify.NNConfig{Metric: classify.Euclidean})
	nnDTW := classify.NewNN(train.Instances, classify.NNConfig{Metric: classify.DTWWindowed})
	e, err := NewEnsembleBuilder(train).
		AddWeighted("1nn-ed", func(d *ts.Dataset) []int { return nnED.PredictAll(d.Instances) }).
		AddWeighted("1nn-dtw", func(d *ts.Dataset) []int { return nnDTW.PredictAll(d.Instances) }).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	if acc := e.Accuracy(test); acc < 70 {
		t.Fatalf("ensemble accuracy = %v%%", acc)
	}
}
