package baselines

import (
	"testing"

	"ips/internal/ts"
)

func TestRotFLearnsPlantedPatterns(t *testing.T) {
	train := plantedDataset(15, 60, 2, 31)
	test := plantedDataset(15, 60, 2, 32)
	acc, err := RotFEvaluate(train, test, RotFConfig{Trees: 10, Seed: 33})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 70 {
		t.Fatalf("rotation forest accuracy = %v%%", acc)
	}
}

func TestRotFMultiClass(t *testing.T) {
	train := plantedDataset(12, 50, 3, 34)
	test := plantedDataset(12, 50, 3, 35)
	acc, err := RotFEvaluate(train, test, RotFConfig{Trees: 8, Seed: 36})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 55 { // chance is 33%
		t.Fatalf("3-class rotation forest accuracy = %v%%", acc)
	}
}

func TestRotFDeterministic(t *testing.T) {
	train := plantedDataset(10, 40, 2, 37)
	test := plantedDataset(10, 40, 2, 38)
	f1, err := RotFTrain(train, RotFConfig{Trees: 4, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	f2, err := RotFTrain(train, RotFConfig{Trees: 4, Seed: 39})
	if err != nil {
		t.Fatal(err)
	}
	p1 := f1.Predict(test)
	p2 := f2.Predict(test)
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("same seed should give identical predictions")
		}
	}
}

func TestRotFErrors(t *testing.T) {
	if _, err := RotFTrain(&ts.Dataset{}, RotFConfig{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestRotFGroupSizeLargerThanDim(t *testing.T) {
	// Series shorter than the group size: a single group covers everything.
	train := plantedDataset(10, 6, 2, 40)
	test := plantedDataset(10, 6, 2, 41)
	acc, err := RotFEvaluate(train, test, RotFConfig{Trees: 4, GroupSize: 100, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if acc < 50 {
		t.Fatalf("oversized group accuracy = %v%%", acc)
	}
}
