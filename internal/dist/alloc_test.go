package dist

import (
	"context"
	"math"
	"testing"
)

// allocBatch builds a batch spanning several length groups (short lengths
// resolve to the rolling kernel, the long one crosses into fft on a cached
// Prepared) plus a synthetic series, mirroring a serving model's shapelets.
func allocBatch() (*Batch, []float64) {
	lengths := []int{8, 16, 64}
	var queries [][]float64
	for _, m := range lengths {
		for k := 0; k < 3; k++ {
			q := make([]float64, m)
			for i := range q {
				q[i] = math.Sin(float64(i+k)*0.3) + 0.1*float64(k)
			}
			queries = append(queries, q)
		}
	}
	series := make([]float64, 256)
	for i := range series {
		series[i] = math.Cos(float64(i) * 0.07)
	}
	return NewBatch(queries), series
}

// requireZeroAllocs asserts fn performs no allocations per run after one
// warm-up call.
func requireZeroAllocs(t *testing.T, what string, fn func()) {
	t.Helper()
	fn() // warm-up: grow-once buffers and lazy caches fill here
	if allocs := testing.AllocsPerRun(50, fn); allocs != 0 {
		t.Errorf("%s: %v allocs/run after warm-up, want 0", what, allocs)
	}
}

// TestBatchEvalAllocs pins the arena contract of EvalScratchCtx: with a warm
// Scratch, re-evaluating a batch allocates nothing — neither on the
// scratch-prepared path (the serve loop: every request series is new) nor on
// the cached-Prepared path (CV folds re-evaluating resident series), in
// either precision.
func TestBatchEvalAllocs(t *testing.T) {
	ctx := context.Background()
	b, series := allocBatch()
	b32, _ := allocBatch()
	b32.SetPrecision(PrecisionFloat32)

	out := make([]float64, b.Len())
	var c Counts
	var evalErr error

	for _, tc := range []struct {
		name  string
		batch *Batch
	}{
		{"float64", b},
		{"float32", b32},
	} {
		var s Scratch
		requireZeroAllocs(t, tc.name+"/scratch-prepared", func() {
			p := s.Prepare(series)
			if err := tc.batch.EvalScratchCtx(ctx, p, out, &c, &s); err != nil {
				evalErr = err
			}
		})

		var s2 Scratch
		p := Prepare(series) // resident series: fft transforms cache on it
		requireZeroAllocs(t, tc.name+"/cached-prepared", func() {
			if err := tc.batch.EvalScratchCtx(ctx, p, out, &c, &s2); err != nil {
				evalErr = err
			}
		})
	}
	if evalErr != nil {
		t.Fatalf("eval: %v", evalErr)
	}
}

// TestScratchMatchesEvalInto pins that the scratch path is a pure
// refactoring of EvalInto at float64: byte-identical output on both the
// cached-Prepared and scratch-prepared routes (kernel choice differs between
// them, which by contract never changes results).
func TestScratchMatchesEvalInto(t *testing.T) {
	b, series := allocBatch()
	p := Prepare(series)
	want := make([]float64, b.Len())
	b.EvalInto(p, want, nil)

	var s Scratch
	got := make([]float64, b.Len())
	if err := b.EvalScratchCtx(context.Background(), s.Prepare(series), got, nil, &s); err != nil {
		t.Fatalf("scratch eval: %v", err)
	}
	for i := range want {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("query %d: scratch route = %v, EvalInto = %v (must be byte-identical)", i, got[i], want[i])
		}
	}
}
