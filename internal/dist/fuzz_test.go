package dist

import (
	"encoding/binary"
	"math"
	"testing"

	"ips/internal/ts"
)

// fuzzFloatsCapped decodes 8-byte chunks as float64s, remapping NaN/±Inf and
// overflow-scale magnitudes (>1e100) to small finite stand-ins.  The cap
// keeps every intermediate — window energies, cross terms, squared diffs —
// finite, so the fuzz exercises the kernels rather than the ts.Dist fallback
// the engine routes non-finite data to (that fallback is pinned separately
// in TestDegenerateInputs).
func fuzzFloatsCapped(data []byte) []float64 {
	n := len(data) / 8
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint64(data[i*8:])
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e100 {
			v = float64(int32(bits))
		}
		out = append(out, v)
	}
	return out
}

// roundF32 returns v rounded through float32, the inputs the
// single-precision kernels actually see.
func roundF32(v []float64) []float64 {
	out := make([]float64, len(v))
	for i, x := range v {
		out[i] = float64(float32(x))
	}
	return out
}

// FuzzDist cross-checks the four Def. 4 implementations on arbitrary finite
// input: ts.Dist (the reference), the engine's rolling and fft kernels
// (byte-identical to the reference by contract), and the min over
// ts.DistProfile (numerically equal up to its cancellation error).
func FuzzDist(f *testing.F) {
	f.Add([]byte{3})
	seed := make([]byte, 1+8*24)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	seed[0] = 8
	f.Add(seed)
	constant := make([]byte, 1+8*16)
	for i := 0; i < 16; i++ {
		binary.LittleEndian.PutUint64(constant[1+i*8:], math.Float64bits(2.5))
	}
	constant[0] = 4
	f.Add(constant)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 1 || len(data) > 1+8*256 {
			return // keep execs cheap: 256 points already spans both kernels
		}
		vals := fuzzFloatsCapped(data[1:])
		if len(vals) == 0 {
			return
		}
		split := int(data[0]) % (len(vals) + 1)
		q, series := vals[:split], vals[split:]
		want := ts.Dist(q, series)

		p := Prepare(series)
		if got := p.Dist(q); !bitsEqual(got, want) {
			t.Fatalf("Dist = %v (bits %x), ts.Dist = %v (bits %x), m=%d n=%d",
				got, math.Float64bits(got), want, math.Float64bits(want), len(q), len(series))
		}
		for _, kernel := range []Kernel{KernelRolling, KernelFFT} {
			b := NewBatch([][]float64{q})
			b.SetKernel(kernel)
			if out := b.Eval(p); !bitsEqual(out[0], want) {
				t.Fatalf("kernel %v = %v (bits %x), ts.Dist = %v (bits %x), m=%d n=%d",
					kernel, out[0], math.Float64bits(out[0]), want, math.Float64bits(want), len(q), len(series))
			}
		}

		// Float32 cross-check: the single-precision kernels return the Def. 4
		// distance of the float32-ROUNDED inputs up to float32 accumulation
		// error, so the reference is the exact float64 evaluation of the
		// rounded pair and the tolerance covers only accumulation.  Pairs the
		// float32 side cannot represent must fall back byte-identically to
		// the float64 answer.
		for _, kernel := range []Kernel{KernelRolling, KernelFFT} {
			b32 := NewBatch([][]float64{q})
			b32.SetKernel(kernel)
			b32.SetPrecision(PrecisionFloat32)
			out := make([]float64, 1)
			b32.EvalInto(p, out, nil)
			_, _, seriesOK := p.f32()
			if len(q) == 0 || len(q) > len(series) || !p.finite || !seriesOK || !b32.finite32[0] {
				if !bitsEqual(out[0], want) {
					t.Fatalf("float32 %v fallback = %v (bits %x), ts.Dist = %v (bits %x), m=%d n=%d",
						kernel, out[0], math.Float64bits(out[0]), want, math.Float64bits(want), len(q), len(series))
				}
				continue
			}
			qr := roundF32(q)
			tr := roundF32(series)
			ref := ts.Dist(qr, tr)
			tol := 1e-4*(sumSq(qr)+sumSq(tr))/float64(len(q)) + 1e-7
			if math.Abs(out[0]-ref) > tol {
				t.Fatalf("float32 %v = %v, rounded-input ts.Dist = %v (tol %v), m=%d n=%d",
					kernel, out[0], ref, tol, len(q), len(series))
			}
		}

		// DistProfile computes each window by the cancellation-prone
		// Σt² − 2Σtq + Σq² identity, so its min agrees only up to an
		// absolute tolerance scaled to the pair's total energy.
		if len(q) > 0 && len(q) <= len(series) {
			prof := ts.DistProfile(q, series)
			minProf := math.Inf(1)
			for _, v := range prof {
				if v < minProf {
					minProf = v
				}
			}
			absEps := 1e-9 * (sumSq(q) + sumSq(series)) / float64(len(q))
			if !ts.ApproxEqualRel(minProf, want, 1e-9) && math.Abs(minProf-want) > absEps {
				t.Fatalf("DistProfile min = %v, ts.Dist = %v (absEps %v), m=%d n=%d",
					minProf, want, absEps, len(q), len(series))
			}
		}
	})
}
