package dist

import (
	"math"
	"math/rand"
	"testing"

	"ips/internal/obs"
	"ips/internal/ts"
)

// randSeries draws a series whose character depends on kind: random walks
// (the benchmark substrate), iid noise, near-constant runs (norm-bound and
// refinement tie stress), and large-offset data (cancellation stress).
func randSeries(rng *rand.Rand, n, kind int) []float64 {
	out := make([]float64, n)
	switch kind % 4 {
	case 0:
		v := 0.0
		for i := range out {
			v += rng.NormFloat64()
			out[i] = v
		}
	case 1:
		for i := range out {
			out[i] = rng.NormFloat64()
		}
	case 2:
		level := rng.Float64()
		for i := range out {
			out[i] = level
			if rng.Intn(8) == 0 {
				out[i] += rng.NormFloat64() * 1e-3
			}
		}
	case 3:
		for i := range out {
			out[i] = 1e6 + rng.NormFloat64()
		}
	}
	return out
}

func bitsEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// TestDistMatchesTsDist drives the single-query path over a broad shape and
// data sweep and requires byte-identical agreement with ts.Dist.
func TestDistMatchesTsDist(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := [][2]int{
		{1, 1}, {5, 3}, {16, 16}, {40, 7}, {64, 64}, {120, 17},
		{256, 64}, {256, 128}, {300, 299}, {512, 256},
	}
	for kind := 0; kind < 4; kind++ {
		for _, sh := range shapes {
			n, m := sh[0], sh[1]
			series := randSeries(rng, n, kind)
			p := Prepare(series)
			for rep := 0; rep < 3; rep++ {
				var q []float64
				if rep == 0 && m <= n {
					at := rng.Intn(n - m + 1)
					q = append([]float64(nil), series[at:at+m]...) // exact match in series
				} else {
					q = randSeries(rng, m, kind+rep)
				}
				want := ts.Dist(q, series)
				got := p.Dist(q)
				if !bitsEqual(got, want) {
					t.Fatalf("kind=%d n=%d m=%d rep=%d: Dist=%v (bits %x), ts.Dist=%v (bits %x)",
						kind, n, m, rep, got, math.Float64bits(got), want, math.Float64bits(want))
				}
			}
		}
	}
}

// TestBatchKernelsMatchTsDist forces each kernel over the same workloads and
// requires byte-identical agreement with ts.Dist per (query, series) pair —
// the property that makes kernel choice a pure throughput knob.
func TestBatchKernelsMatchTsDist(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for kind := 0; kind < 4; kind++ {
		n := 300 + kind*100
		series := randSeries(rng, n, kind)
		var queries [][]float64
		for _, m := range []int{1, 4, 33, 64, 64, 100, 200, n} {
			if m <= n && rng.Intn(2) == 0 {
				at := rng.Intn(n - m + 1)
				queries = append(queries, append([]float64(nil), series[at:at+m]...))
			} else {
				queries = append(queries, randSeries(rng, m, kind+1))
			}
		}
		want := make([]float64, len(queries))
		for i, q := range queries {
			want[i] = ts.Dist(q, series)
		}
		for _, kernel := range []Kernel{KernelAuto, KernelRolling, KernelFFT} {
			b := NewBatch(queries)
			b.SetKernel(kernel)
			p := Prepare(series)
			var c Counts
			out := make([]float64, len(queries))
			b.EvalInto(p, out, &c)
			for i := range out {
				if !bitsEqual(out[i], want[i]) {
					t.Fatalf("kind=%d kernel=%v query %d (m=%d): got %v (bits %x), want %v (bits %x)",
						kind, kernel, i, len(queries[i]), out[i], math.Float64bits(out[i]), want[i], math.Float64bits(want[i]))
				}
			}
			if c.Rolling+c.FFT+c.Exact != int64(len(queries)) {
				t.Fatalf("kernel=%v counts %+v do not cover %d queries", kernel, c, len(queries))
			}
			if kernel == KernelFFT && c.FFT == 0 {
				t.Fatalf("forced fft kernel evaluated nothing via fft: %+v", c)
			}
			if kernel == KernelRolling && c.FFT != 0 {
				t.Fatalf("forced rolling kernel used fft: %+v", c)
			}
		}
	}
}

// TestDegenerateInputs pins the fallback paths: empty sides, over-long
// queries, and non-finite data all agree with ts.Dist (bitwise, including
// the +Inf result for NaN-poisoned input).
func TestDegenerateInputs(t *testing.T) {
	series := []float64{1, 2, 3}
	cases := []struct {
		name string
		t, q []float64
	}{
		{"empty query", series, nil},
		{"empty series", nil, series},
		{"both empty", nil, nil},
		{"query longer", series, []float64{1, 2, 3, 4, 5}},
		{"nan series", []float64{1, math.NaN(), 3, 4}, []float64{1, 2}},
		{"nan query", []float64{1, 2, 3, 4}, []float64{math.NaN(), 2}},
		{"inf series", []float64{1, math.Inf(1), 3, 4}, []float64{1, 2}},
		{"overflow series", []float64{1e200, 1e200, 3, 4}, []float64{1, 2}},
	}
	for _, tc := range cases {
		p := Prepare(tc.t)
		want := ts.Dist(tc.q, tc.t)
		got := p.Dist(tc.q)
		if !bitsEqual(got, want) {
			t.Errorf("%s: Dist=%v, ts.Dist=%v", tc.name, got, want)
		}
		b := NewBatch([][]float64{tc.q})
		if out := b.Eval(p); !bitsEqual(out[0], want) {
			t.Errorf("%s: batch=%v, ts.Dist=%v", tc.name, out[0], want)
		}
	}
}

// TestWindowSums pins the prefix-sum accessors against direct summation.
func TestWindowSums(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	series := randSeries(rng, 64, 1)
	p := Prepare(series)
	for _, w := range []int{1, 5, 64} {
		for j := 0; j+w <= len(series); j += 7 {
			var sum, sq float64
			for _, v := range series[j : j+w] {
				sum += v
				sq += v * v
			}
			if !ts.ApproxEqualRel(p.WindowSum(j, w), sum, 1e-9) {
				t.Fatalf("WindowSum(%d,%d) = %v, want %v", j, w, p.WindowSum(j, w), sum)
			}
			if got := p.WindowSqSum(j, w); !ts.ApproxEqualRel(got, sq, 1e-9) || got < 0 {
				t.Fatalf("WindowSqSum(%d,%d) = %v, want %v", j, w, got, sq)
			}
		}
	}
}

// TestKernelFor pins the crossover shape: short queries roll, long queries
// against long series cross to fft, degenerate shapes are exact.
func TestKernelFor(t *testing.T) {
	if k := KernelFor(8, 4096); k != KernelRolling {
		t.Fatalf("KernelFor(8, 4096) = %v, want rolling", k)
	}
	if k := KernelFor(512, 4096); k != KernelFFT {
		t.Fatalf("KernelFor(512, 4096) = %v, want fft", k)
	}
	if k := KernelFor(0, 100); k != KernelExact {
		t.Fatalf("KernelFor(0, 100) = %v, want exact", k)
	}
	if k := KernelFor(200, 100); k != KernelExact {
		t.Fatalf("KernelFor(200, 100) = %v, want exact", k)
	}
}

// TestCacheIdentity verifies slice-identity memoisation and hit accounting.
func TestCacheIdentity(t *testing.T) {
	cache := NewCache()
	var c Counts
	s := []float64{1, 2, 3, 4}
	p1 := cache.Prepared(s, &c)
	p2 := cache.Prepared(s, &c)
	if p1 != p2 {
		t.Fatal("same slice should memoise to the same Prepared")
	}
	if c.PreparedMisses != 1 || c.PreparedHits != 1 {
		t.Fatalf("counts = %+v, want 1 miss + 1 hit", c)
	}
	// A distinct window of the same array is a distinct key.
	if p3 := cache.Prepared(s[1:], &c); p3 == p1 {
		t.Fatal("different slice identity must not share an entry")
	}
	if cache.Size() != 2 {
		t.Fatalf("cache size = %d, want 2", cache.Size())
	}
	// Empty series bypass the cache.
	if p := cache.Prepared(nil, &c); p == nil || cache.Size() != 2 {
		t.Fatal("empty series must prepare fresh without caching")
	}
}

// TestCountsFlush verifies the obs plumbing end to end: counters land in the
// registry under the dist.* namespace and span attributes are recorded.
func TestCountsFlush(t *testing.T) {
	o := obs.New("test")
	rng := rand.New(rand.NewSource(9))
	series := randSeries(rng, 3000, 0)
	queries := [][]float64{randSeries(rng, 8, 1), randSeries(rng, 1024, 1)}
	b := NewBatch(queries)
	p := Prepare(series)
	var c Counts
	b.EvalInto(p, make([]float64, len(queries)), &c)
	c.AddTo(o.Metrics())
	if got := o.Metrics().Counter("dist.kernel.rolling").Value(); got != c.Rolling {
		t.Fatalf("registry rolling = %d, want %d", got, c.Rolling)
	}
	if got := o.Metrics().Counter("dist.kernel.fft").Value(); got != c.FFT || c.FFT == 0 {
		t.Fatalf("registry fft = %d, want %d (nonzero)", got, c.FFT)
	}
	sp := o.Root().Child("eval")
	c.Annotate(sp)
	sp.End()
	if len(sp.Attrs()) != 3 {
		t.Fatalf("span attrs = %v, want 3", sp.Attrs())
	}
}

// TestFFTTransformCacheReuse verifies the padded transform is built once per
// pad size and shared across queries and calls.
func TestFFTTransformCacheReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	series := randSeries(rng, 1000, 0)
	p := Prepare(series)
	queries := [][]float64{randSeries(rng, 400, 1), randSeries(rng, 400, 2), randSeries(rng, 420, 1)}
	b := NewBatch(queries)
	b.SetKernel(KernelFFT)
	var c Counts
	b.EvalInto(p, make([]float64, len(queries)), &c)
	if c.FFTCacheMisses == 0 || c.FFTCacheHits == 0 {
		t.Fatalf("expected both misses and hits across shared pad sizes: %+v", c)
	}
	before := c
	b.EvalInto(p, make([]float64, len(queries)), &c)
	if c.FFTCacheMisses != before.FFTCacheMisses {
		t.Fatalf("second pass rebuilt transforms: %+v", c)
	}
}
