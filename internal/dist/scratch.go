package dist

// Scratch is one worker's grow-once arena for repeated Batch evaluations:
// the per-group window-energy vector, the fft sliding-dots and complex
// buffers (both precisions), and a reusable Prepared for request-scoped
// series that are seen once and never again — the ipsd serve loop, CV folds,
// ensemble members.  Buffers grow to the high-water mark of the shapes they
// have seen and are then reused verbatim, so a warmed scratch makes the
// whole re-evaluation path allocation-free (asserted by TestBatchEvalAllocs
// and the serve steady-state alloc test).
//
// A Scratch is owned by exactly one goroutine at a time; give each worker
// its own.  The Prepared returned by Prepare aliases the scratch and is
// invalidated by the next Prepare call.
type Scratch struct {
	winSq   []float64
	dots    []float64
	cbuf    []complex128
	winSq32 []float32
	dots32  []float32
	cbuf32  []complex64

	prep Prepared
}

// Prepare builds the prepared form of t into the scratch's reusable
// Prepared, replacing whatever the previous call prepared.  Unlike
// dist.Prepare, nothing is retained beyond the next call and nothing is
// memoised: this is the path for series that flow through once (a serve
// request's instances), where the identity cache would only leak.
//
// Scratch-prepared series always evaluate on the rolling kernel: a padded
// series transform would be built and thrown away within one call, which
// costs more than the fft kernel saves, and building it would allocate.
// Kernel choice never changes float64 results, so this is a pure scheduling
// decision.
//
//ips:hotpath
func (s *Scratch) Prepare(t []float64) *Prepared {
	p := &s.prep
	n := len(t)
	if cap(p.prefix) < n+1 {
		p.prefix = make([]float64, n+1)
		p.prefixSq = make([]float64, n+1)
	}
	p.prefix = p.prefix[:n+1]
	p.prefixSq = p.prefixSq[:n+1]
	p.t = t
	p.prefix[0] = 0
	p.prefixSq[0] = 0
	for i, v := range t {
		p.prefix[i+1] = p.prefix[i] + v
		p.prefixSq[i+1] = p.prefixSq[i] + v*v
	}
	p.finite = finiteTotal(p.prefixSq[n])
	p.noFFT = true
	p.fts = nil // stale transforms of the previous series must never resolve
	p.fts32 = nil
	p.built32 = false
	return p
}
