package dist

import (
	"context"
	"math"
	"sort"

	"ips/internal/errs"
	"ips/internal/fft"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Batch is a set of queries prepared for evaluation against many series:
// per-query energies are precomputed and the queries are grouped by length,
// so per (series, length) work — the window Σt² vector from the prefix sums
// and the padded series FFT — is paid once per group instead of once per
// query.  A Batch is immutable after construction and safe for concurrent
// EvalInto calls against different (or the same) Prepared series.
type Batch struct {
	queries [][]float64
	qq      []float64
	finite  []bool
	groups  []group
	kernel  Kernel // forced kernel for non-degenerate pairs; KernelAuto picks per group
}

// group is the set of query indices sharing one length, ascending by length.
type group struct {
	m   int
	idx []int
}

// NewBatch prepares the queries for repeated evaluation.  The batch aliases
// the query slices; they must not be mutated while the batch is in use.
func NewBatch(queries [][]float64) *Batch {
	b := &Batch{
		queries: queries,
		qq:      make([]float64, len(queries)),
		finite:  make([]bool, len(queries)),
	}
	byLen := map[int][]int{}
	for i, q := range queries {
		qq := sumSq(q)
		b.qq[i] = qq
		b.finite[i] = !math.IsNaN(qq) && !math.IsInf(qq, 0)
		byLen[len(q)] = append(byLen[len(q)], i)
	}
	lens := make([]int, 0, len(byLen))
	for m := range byLen {
		lens = append(lens, m)
	}
	sort.Ints(lens)
	for _, m := range lens {
		b.groups = append(b.groups, group{m: m, idx: byLen[m]})
	}
	return b
}

// Len returns the number of queries in the batch.
func (b *Batch) Len() int { return len(b.queries) }

// SetKernel forces every non-degenerate evaluation onto the given kernel
// (KernelAuto restores the per-group crossover).  Kernel choice never
// changes results — it is a throughput/debugging knob, exposed on the CLIs
// as -dist-kernel.  Must be called before the batch is shared across
// goroutines.
func (b *Batch) SetKernel(k Kernel) {
	if k == KernelExact {
		k = KernelAuto // the exact fallback is reserved for degenerate pairs
	}
	b.kernel = k
}

// Eval returns the Def. 4 distance of every query against the prepared
// series, byte-identical per pair to ts.Dist(query, series).
//
//ips:blocking
func (b *Batch) Eval(p *Prepared) []float64 {
	out := make([]float64, len(b.queries))
	b.EvalInto(p, out, nil)
	return out
}

// EvalInto evaluates every query against p into out (which must hold Len()
// values), accumulating kernel accounting into c (nil is allowed).  Queries
// are processed grouped by length: the window Σt² vector is built once per
// group from the prefix sums, and the fft kernel reuses one cached padded
// series transform across every group whose pad size coincides.
//
//ips:blocking
func (b *Batch) EvalInto(p *Prepared, out []float64, c *Counts) {
	if err := b.EvalIntoCtx(context.Background(), p, out, c); err != nil {
		// Unreachable: a background context never cancels and the batch has
		// no other failure mode.  out is fully written either way.
		return
	}
}

// EvalIntoCtx is EvalInto with cooperative cancellation at length-group
// granularity: between groups the context is checked, and once it is done
// the remaining groups are skipped and an error matching errs.ErrCanceled
// is returned.  On cancellation out holds the completed groups' values and
// arbitrary (stale) values for the rest; callers must discard it.
//
//ips:blocking
func (b *Batch) EvalIntoCtx(ctx context.Context, p *Prepared, out []float64, c *Counts) error {
	if c == nil {
		c = &Counts{}
	}
	n := len(p.t)
	var winSq []float64   // per-group window Σt², shared by every query in the group
	var dots []float64    // fft sliding-dots / approximate-profile scratch
	var cbuf []complex128 // fft complex scratch, reused across queries
	for _, g := range b.groups {
		if err := errs.Ctx(ctx, errs.StageKernel, "dist.batch"); err != nil {
			b.logCanceled(ctx)
			return err
		}
		m := g.m
		if m == 0 {
			for _, qi := range g.idx {
				out[qi] = 0 // ts.Dist: an empty query is at distance 0
				c.Exact++
			}
			continue
		}
		if n == 0 || m > n || !p.finite {
			b.logExactFallback(ctx, m, n, p.finite, len(g.idx))
			for _, qi := range g.idx {
				out[qi] = ts.Dist(b.queries[qi], p.t)
				c.Exact++
			}
			continue
		}
		w := n - m + 1
		if cap(winSq) < w {
			winSq = make([]float64, w)
		}
		winSq = winSq[:w]
		for j := 0; j < w; j++ {
			winSq[j] = p.WindowSqSum(j, m)
		}
		kernel := b.kernel
		if kernel == KernelAuto {
			kernel = chooseKernel(m, n)
		}
		if kernel == KernelFFT {
			size := fft.NextPow2(n + m - 1)
			f, hit := p.ft(size)
			if f == nil {
				kernel = KernelRolling // impossible by construction
			} else {
				if hit {
					c.FFTCacheHits++
				} else {
					c.FFTCacheMisses++
				}
				if cap(dots) < w {
					dots = make([]float64, w)
				}
				dots = dots[:w]
				for _, qi := range g.idx {
					if !b.finite[qi] {
						out[qi] = ts.Dist(b.queries[qi], p.t)
						c.Exact++
						continue
					}
					var err error
					cbuf, err = f.SlidingDotsInto(b.queries[qi], dots, cbuf)
					if err != nil {
						out[qi] = ts.Dist(b.queries[qi], p.t)
						c.Exact++
						continue
					}
					c.FFT++
					out[qi] = b.fftMinShared(p, qi, winSq, dots, c)
				}
				continue
			}
		}
		for _, qi := range g.idx {
			if !b.finite[qi] {
				out[qi] = ts.Dist(b.queries[qi], p.t)
				c.Exact++
				continue
			}
			c.Rolling++
			out[qi] = b.rollingMinShared(p, qi, winSq, c)
		}
	}
	return nil
}

// logCanceled and logExactFallback exist to keep their variadic ...any
// arguments — which box one interface value per argument per call — out of
// EvalIntoCtx's group loop; in these straight-line bodies the boxing happens
// at most once per event instead of per iteration.
func (b *Batch) logCanceled(ctx context.Context) {
	obs.Log(ctx).Debug("batch evaluation canceled",
		"op", "dist.batch", "queries", len(b.queries))
}

func (b *Batch) logExactFallback(ctx context.Context, m, n int, finite bool, queries int) {
	obs.Log(ctx).Debug("batch group fell back to exact distances",
		"op", "dist.batch", "query_len", m, "series_len", n,
		"finite", finite, "queries", queries)
}

// fftMinShared converts the sliding dots of query qi into the approximate
// un-normalised profile in place and refines the candidate minima exactly.
// This is the batch engine's per-query inner loop; it must not allocate.
//
//ips:hotpath
func (b *Batch) fftMinShared(p *Prepared, qi int, winSq, dots []float64, c *Counts) float64 {
	qq := b.qq[qi]
	minHat := math.Inf(1)
	for j := range dots {
		sHat := winSq[j] - 2*dots[j] + qq
		if sHat < 0 {
			sHat = 0
		}
		dots[j] = sHat
		if sHat < minHat {
			minHat = sHat
		}
	}
	return p.refineMin(b.queries[qi], dots, minHat, qq, c)
}

// rollingMinShared is rollingMin with the per-group window Σt² vector
// already materialised (shared across every query of the length group).
// This is the batch engine's per-query inner loop; it must not allocate.
//
//ips:hotpath
func (b *Batch) rollingMinShared(p *Prepared, qi int, winSq []float64, c *Counts) float64 {
	q := b.queries[qi]
	qq := b.qq[qi]
	m := len(q)
	fm := float64(m)
	bound := p.errBound(qq)
	margin := 2*math.Sqrt(qq*bound) + bound
	best := math.Inf(1)
	lbT := math.Inf(1)
	for j, ws := range winSq {
		if a := ws + qq - lbT; a > 0 && a*a > 4*ws*qq {
			c.LBSkipped++
			continue
		}
		var s float64
		win := p.t[j : j+m]
		abandoned := false
		for l := range q {
			diff := win[l] - q[l]
			s += diff * diff
			if s >= best*fm {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		if v := s / fm; v < best {
			best = v
			lbT = s + margin
		}
	}
	return best
}
