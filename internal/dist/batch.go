package dist

import (
	"context"
	"math"
	"sort"

	"ips/internal/errs"
	"ips/internal/fft"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Batch is a set of queries prepared for evaluation against many series:
// per-query energies are precomputed and the queries are grouped by length,
// so per (series, length) work — the window Σt² vector from the prefix sums
// and the padded series FFT — is paid once per group instead of once per
// query.  A Batch is immutable after construction and safe for concurrent
// EvalInto calls against different (or the same) Prepared series.
type Batch struct {
	queries [][]float64
	qq      []float64
	finite  []bool
	groups  []group
	kernel  Kernel // forced kernel for non-degenerate pairs; KernelAuto picks per group

	// float32 side, materialised once by SetPrecision(PrecisionFloat32).
	precision Precision
	q32       [][]float32
	qq32      []float32 // per-query energy accumulated in float32
	finite32  []bool    // rounded query and its energy are finite in float32
}

// group is the set of query indices sharing one length, ascending by length.
type group struct {
	m   int
	idx []int
}

// NewBatch prepares the queries for repeated evaluation.  The batch aliases
// the query slices; they must not be mutated while the batch is in use.
func NewBatch(queries [][]float64) *Batch {
	b := &Batch{
		queries: queries,
		qq:      make([]float64, len(queries)),
		finite:  make([]bool, len(queries)),
	}
	byLen := map[int][]int{}
	for i, q := range queries {
		qq := sumSq(q)
		b.qq[i] = qq
		b.finite[i] = !math.IsNaN(qq) && !math.IsInf(qq, 0)
		byLen[len(q)] = append(byLen[len(q)], i)
	}
	lens := make([]int, 0, len(byLen))
	for m := range byLen {
		lens = append(lens, m)
	}
	sort.Ints(lens)
	for _, m := range lens {
		b.groups = append(b.groups, group{m: m, idx: byLen[m]})
	}
	return b
}

// Len returns the number of queries in the batch.
func (b *Batch) Len() int { return len(b.queries) }

// SetKernel forces every non-degenerate evaluation onto the given kernel
// (KernelAuto restores the per-group crossover).  Kernel choice never
// changes results — it is a throughput/debugging knob, exposed on the CLIs
// as -dist-kernel.  Must be called before the batch is shared across
// goroutines.
func (b *Batch) SetKernel(k Kernel) {
	if k == KernelExact {
		k = KernelAuto // the exact fallback is reserved for degenerate pairs
	}
	b.kernel = k
}

// SetPrecision selects the kernel arithmetic width (see Precision).  The
// float32 query views are materialised here, once, so the evaluation loops
// stay allocation-free.  Must be called before the batch is shared across
// goroutines.  Queries whose values overflow float32 range keep evaluating
// on the float64 kernels.
func (b *Batch) SetPrecision(p Precision) {
	b.precision = p
	if p != PrecisionFloat32 || b.q32 != nil {
		return
	}
	b.q32 = make([][]float32, len(b.queries))
	b.qq32 = make([]float32, len(b.queries))
	b.finite32 = make([]bool, len(b.queries))
	for i, q := range b.queries {
		q32 := make([]float32, len(q))
		var qq float32
		for l, v := range q {
			f := float32(v)
			q32[l] = f
			qq += f * f
		}
		b.q32[i] = q32
		b.qq32[i] = qq
		f64 := float64(qq)
		b.finite32[i] = b.finite[i] && !math.IsNaN(f64) && !math.IsInf(f64, 0)
	}
}

// Precision returns the arithmetic width the batch evaluates with.
func (b *Batch) Precision() Precision { return b.precision }

// Eval returns the Def. 4 distance of every query against the prepared
// series, byte-identical per pair to ts.Dist(query, series).
//
//ips:blocking
func (b *Batch) Eval(p *Prepared) []float64 {
	out := make([]float64, len(b.queries))
	b.EvalInto(p, out, nil)
	return out
}

// EvalInto evaluates every query against p into out (which must hold Len()
// values), accumulating kernel accounting into c (nil is allowed).  Queries
// are processed grouped by length: the window Σt² vector is built once per
// group from the prefix sums, and the fft kernel reuses one cached padded
// series transform across every group whose pad size coincides.
//
//ips:blocking
func (b *Batch) EvalInto(p *Prepared, out []float64, c *Counts) {
	if err := b.EvalIntoCtx(context.Background(), p, out, c); err != nil {
		// Unreachable: a background context never cancels and the batch has
		// no other failure mode.  out is fully written either way.
		return
	}
}

// EvalIntoCtx is EvalInto with cooperative cancellation at length-group
// granularity: between groups the context is checked, and once it is done
// the remaining groups are skipped and an error matching errs.ErrCanceled
// is returned.  On cancellation out holds the completed groups' values and
// arbitrary (stale) values for the rest; callers must discard it.
//
//ips:blocking
func (b *Batch) EvalIntoCtx(ctx context.Context, p *Prepared, out []float64, c *Counts) error {
	var s Scratch
	return b.EvalScratchCtx(ctx, p, out, c, &s)
}

// EvalScratchCtx is EvalIntoCtx with the working set drawn from a
// caller-owned Scratch instead of per-call locals: the window-energy vector,
// the fft buffers, and (for float32 batches) their single-precision
// counterparts all grow once inside s and are reused verbatim on the next
// call.  This is the steady-state path for callers that re-evaluate the same
// batch against a stream of series — the serve loop, CV folds — where it
// performs zero allocations after warm-up.  s must not be shared across
// goroutines.
//
//ips:blocking
func (b *Batch) EvalScratchCtx(ctx context.Context, p *Prepared, out []float64, c *Counts, s *Scratch) error {
	if c == nil {
		c = &Counts{}
	}
	if s == nil {
		s = &Scratch{}
	}
	n := len(p.t)
	for _, g := range b.groups {
		if err := errs.Ctx(ctx, errs.StageKernel, "dist.batch"); err != nil {
			b.logCanceled(ctx)
			return err
		}
		m := g.m
		if m == 0 {
			for _, qi := range g.idx {
				out[qi] = 0 // ts.Dist: an empty query is at distance 0
				c.Exact++
			}
			continue
		}
		if n == 0 || m > n || !p.finite {
			b.logExactFallback(ctx, m, n, p.finite, len(g.idx))
			for _, qi := range g.idx {
				out[qi] = ts.Dist(b.queries[qi], p.t)
				c.Exact++
			}
			continue
		}
		w := n - m + 1
		if b.precision == PrecisionFloat32 && b.evalGroup32(p, g, w, out, c, s) {
			continue
		}
		if cap(s.winSq) < w {
			s.winSq = make([]float64, w)
		}
		winSq := s.winSq[:w]
		for j := 0; j < w; j++ {
			winSq[j] = p.WindowSqSum(j, m)
		}
		kernel := b.kernel
		if kernel == KernelAuto {
			kernel = chooseKernel(m, n)
		}
		if p.noFFT {
			kernel = KernelRolling // scratch-prepared: no resident transform to amortise
		}
		if kernel == KernelFFT {
			size := fft.NextPow2(n + m - 1)
			f, hit := p.ft(size)
			if f == nil {
				kernel = KernelRolling // impossible by construction
			} else {
				if hit {
					c.FFTCacheHits++
				} else {
					c.FFTCacheMisses++
				}
				if cap(s.dots) < w {
					s.dots = make([]float64, w)
				}
				dots := s.dots[:w]
				for _, qi := range g.idx {
					if !b.finite[qi] {
						out[qi] = ts.Dist(b.queries[qi], p.t)
						c.Exact++
						continue
					}
					var err error
					s.cbuf, err = f.SlidingDotsInto(b.queries[qi], dots, s.cbuf)
					if err != nil {
						out[qi] = ts.Dist(b.queries[qi], p.t)
						c.Exact++
						continue
					}
					c.FFT++
					out[qi] = b.fftMinShared(p, qi, winSq, dots, c)
				}
				continue
			}
		}
		for _, qi := range g.idx {
			if !b.finite[qi] {
				out[qi] = ts.Dist(b.queries[qi], p.t)
				c.Exact++
				continue
			}
			c.Rolling++
			out[qi] = b.rollingMinShared(p, qi, winSq, c)
		}
	}
	return nil
}

// evalGroup32 evaluates one length group on the single-precision kernels and
// reports whether it handled the group; false means the series overflows
// float32 range and the caller must stay on the float64 kernels.  Individual
// queries that overflow float32 fall back per query.  The kernel crossover
// and the noFFT rule match the float64 path, so precision is the only
// difference.
//
//ips:hotpath
func (b *Batch) evalGroup32(p *Prepared, g group, w int, out []float64, c *Counts, s *Scratch) bool {
	t32, tt32, ok := p.f32()
	if !ok {
		return false
	}
	m := g.m
	n := len(t32)
	kernel := b.kernel
	if kernel == KernelAuto {
		kernel = chooseKernel(m, n)
	}
	if p.noFFT {
		kernel = KernelRolling
	}
	if kernel == KernelFFT {
		size := fft.NextPow2(n + m - 1)
		f, hit := p.ft32(size)
		if f == nil {
			kernel = KernelRolling
		} else {
			if hit {
				c.FFTCacheHits++
			} else {
				c.FFTCacheMisses++
			}
			if cap(s.winSq32) < w {
				s.winSq32 = make([]float32, w)
			}
			winSq32 := s.winSq32[:w]
			for j := 0; j < w; j++ {
				// The float64 prefix sums are exact to within distEps; one
				// rounding per window beats a float32 prefix difference.
				winSq32[j] = float32(p.WindowSqSum(j, m))
			}
			if cap(s.dots32) < w {
				s.dots32 = make([]float32, w)
			}
			dots32 := s.dots32[:w]
			for _, qi := range g.idx {
				if !b.finite32[qi] {
					b.eval64Fallback(p, qi, out, c)
					continue
				}
				var err error
				s.cbuf32, err = f.SlidingDotsInto32(b.q32[qi], dots32, s.cbuf32)
				if err != nil {
					b.eval64Fallback(p, qi, out, c)
					continue
				}
				c.FFT32++
				out[qi] = float64(b.fftMin32(t32, tt32, qi, winSq32, dots32, c))
			}
			return true
		}
	}
	for _, qi := range g.idx {
		if !b.finite32[qi] {
			b.eval64Fallback(p, qi, out, c)
			continue
		}
		c.Rolling32++
		out[qi] = float64(b.rollingMin32(t32, qi))
	}
	return true
}

// eval64Fallback evaluates one query on the float64 side — the escape hatch
// for queries a float32 batch cannot represent.  Exact for non-finite data,
// the min-only rolling kernel otherwise.
func (b *Batch) eval64Fallback(p *Prepared, qi int, out []float64, c *Counts) {
	if !b.finite[qi] {
		out[qi] = ts.Dist(b.queries[qi], p.t)
		c.Exact++
		return
	}
	c.Rolling++
	out[qi] = p.rollingMin(b.queries[qi], b.qq[qi], c)
}

// logCanceled and logExactFallback exist to keep their variadic ...any
// arguments — which box one interface value per argument per call — out of
// EvalIntoCtx's group loop; in these straight-line bodies the boxing happens
// at most once per event instead of per iteration.
func (b *Batch) logCanceled(ctx context.Context) {
	obs.Log(ctx).Debug("batch evaluation canceled",
		"op", "dist.batch", "queries", len(b.queries))
}

func (b *Batch) logExactFallback(ctx context.Context, m, n int, finite bool, queries int) {
	obs.Log(ctx).Debug("batch group fell back to exact distances",
		"op", "dist.batch", "query_len", m, "series_len", n,
		"finite", finite, "queries", queries)
}

// fftMinShared converts the sliding dots of query qi into the approximate
// un-normalised profile in place and refines the candidate minima exactly.
// This is the batch engine's per-query inner loop; it must not allocate.
//
//ips:hotpath
func (b *Batch) fftMinShared(p *Prepared, qi int, winSq, dots []float64, c *Counts) float64 {
	qq := b.qq[qi]
	minHat := math.Inf(1)
	for j := range dots {
		sHat := winSq[j] - 2*dots[j] + qq
		if sHat < 0 {
			sHat = 0
		}
		dots[j] = sHat
		if sHat < minHat {
			minHat = sHat
		}
	}
	return p.refineMin(b.queries[qi], dots, minHat, qq, c)
}

// rollingMin32 is the single-precision rolling kernel: a direct
// early-abandoning scan over the float32 series and query, reading half the
// bytes per window of the float64 scan.  No norm-lower-bound pruning — the
// bound's safety margin is derived for float64 error and early abandonment
// already does the heavy lifting; simplicity keeps the result a pure
// function of the rounded inputs.  Must not allocate.
//
//ips:hotpath
func (b *Batch) rollingMin32(t32 []float32, qi int) float32 {
	q := b.q32[qi]
	m := len(q)
	fm := float32(m)
	w := len(t32) - m + 1
	best := float32(math.Inf(1))
	for j := 0; j < w; j++ {
		var sum float32
		win := t32[j : j+m]
		abandoned := false
		for l := range q {
			diff := win[l] - q[l]
			sum += diff * diff
			if sum >= best*fm {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		if v := sum / fm; v < best {
			best = v
		}
	}
	return best
}

// fftMin32 converts the float32 sliding dots of query qi into the
// approximate un-normalised profile in place, then rescans every window
// within the float32 error bound of the approximate minimum directly (the
// same left-to-right float32 scan as rollingMin32), so both kernels return
// the same kind of value: the Def. 4 distance of the rounded inputs up to
// float32 accumulation error.  Must not allocate.
//
//ips:hotpath
func (b *Batch) fftMin32(t32 []float32, tt32 float32, qi int, winSq32, dots32 []float32, c *Counts) float32 {
	q := b.q32[qi]
	qq := b.qq32[qi]
	minHat := float32(math.Inf(1))
	for j := range dots32 {
		sHat := winSq32[j] - 2*dots32[j] + qq
		if sHat < 0 {
			sHat = 0
		}
		dots32[j] = sHat
		if sHat < minHat {
			minHat = sHat
		}
	}
	m := len(q)
	fm := float32(m)
	thr := minHat + 2*distEps32*(tt32+qq)
	best := float32(math.Inf(1))
	for j, sHat := range dots32 {
		if sHat > thr {
			continue
		}
		c.Refined++
		var sum float32
		win := t32[j : j+m]
		for l := range q {
			diff := win[l] - q[l]
			sum += diff * diff
		}
		if v := sum / fm; v < best {
			best = v
		}
	}
	return best
}

// rollingMinShared is rollingMin with the per-group window Σt² vector
// already materialised (shared across every query of the length group).
// This is the batch engine's per-query inner loop; it must not allocate.
//
//ips:hotpath
func (b *Batch) rollingMinShared(p *Prepared, qi int, winSq []float64, c *Counts) float64 {
	q := b.queries[qi]
	qq := b.qq[qi]
	m := len(q)
	fm := float64(m)
	bound := p.errBound(qq)
	margin := 2*math.Sqrt(qq*bound) + bound
	best := math.Inf(1)
	lbT := math.Inf(1)
	for j, ws := range winSq {
		if a := ws + qq - lbT; a > 0 && a*a > 4*ws*qq {
			c.LBSkipped++
			continue
		}
		var s float64
		win := p.t[j : j+m]
		abandoned := false
		for l := range q {
			diff := win[l] - q[l]
			s += diff * diff
			if s >= best*fm {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		if v := s / fm; v < best {
			best = v
			lbT = s + margin
		}
	}
	return best
}
