package dist

import "fmt"

// Precision selects the arithmetic width of the batch engine's kernels.
//
// Float64 is the default and the byte-determinism contract: every result is
// bit-identical to ts.Dist for the same pair, golden tests and saved models
// rely on it, and nothing in this file changes that path.
//
// Float32 is an opt-in throughput variant for cache-bandwidth-bound
// transforms: the rolling scan reads a float32 copy of the series (half the
// bytes per window) and the fft kernel runs a complex64 transform, so the
// memory traffic that bounds both kernels on long series roughly halves.
// The cost is accuracy, not correctness: the float32 kernels compute the
// Def. 4 distance of the float32-rounded inputs, and FuzzDist32 pins the
// result to the float64 reference on those rounded inputs within an
// accumulation tolerance (see float32Tolerance in fuzz_test.go).  Use it for
// serving and bulk transforms where ranking, not bit-equality, matters.
type Precision uint8

const (
	// PrecisionFloat64 is the byte-deterministic default.
	PrecisionFloat64 Precision = iota
	// PrecisionFloat32 opts into the single-precision kernel variants.
	PrecisionFloat32
)

// String names the precision for flags, span attributes, and reports.
func (p Precision) String() string {
	if p == PrecisionFloat32 {
		return "float32"
	}
	return "float64"
}

// ParsePrecision parses a precision name as accepted by the CLIs'
// -precision flag: "float64" (or "64", or empty) and "float32" (or "32").
func ParsePrecision(s string) (Precision, error) {
	switch s {
	case "", "float64", "64":
		return PrecisionFloat64, nil
	case "float32", "32":
		return PrecisionFloat32, nil
	}
	return PrecisionFloat64, fmt.Errorf("dist: unknown precision %q (want float64 or float32)", s)
}

// distEps32 is the float32 counterpart of distEps: the conservative relative
// error bound the float32 fft kernel's candidate refinement uses.  float32
// arithmetic carries ~1.2e-7 relative error per operation and the padded
// transforms accumulate a log₂N factor of it; 1e-4 leaves two orders of
// magnitude of margin for the largest series this repository handles, and an
// over-wide bound only refines a few extra windows.
const distEps32 = 1e-4
