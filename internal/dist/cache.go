package dist

import (
	"sync"

	"ips/internal/obs"
)

// Counts accumulates the engine's kernel decisions and cache traffic for one
// evaluation scope.  The engine increments plain fields (no atomics in the
// hot loops); callers working across goroutines keep one Counts per worker,
// Merge them, and flush the total to an obs registry once.
type Counts struct {
	// Rolling, FFT, and Exact count (query, series) evaluations by kernel;
	// Exact is the ts.Dist fallback for degenerate pairs.
	Rolling, FFT, Exact int64
	// Rolling32 and FFT32 count evaluations on the single-precision kernel
	// variants (see Precision).
	Rolling32, FFT32 int64
	// LBSkipped counts windows the rolling kernel's norm lower bound
	// excluded without touching their values.
	LBSkipped int64
	// Refined counts windows the fft kernel recomputed exactly.
	Refined int64
	// FFTCacheHits/Misses count padded-series-transform cache lookups.
	FFTCacheHits, FFTCacheMisses int64
	// PreparedHits/Misses count prepared-series cache lookups.
	PreparedHits, PreparedMisses int64
}

// Merge adds other into c.
func (c *Counts) Merge(other Counts) {
	c.Rolling += other.Rolling
	c.FFT += other.FFT
	c.Exact += other.Exact
	c.Rolling32 += other.Rolling32
	c.FFT32 += other.FFT32
	c.LBSkipped += other.LBSkipped
	c.Refined += other.Refined
	c.FFTCacheHits += other.FFTCacheHits
	c.FFTCacheMisses += other.FFTCacheMisses
	c.PreparedHits += other.PreparedHits
	c.PreparedMisses += other.PreparedMisses
}

// AddTo flushes the counts into the registry under the dist.* namespace
// (no-op on a nil registry, so spans-only observers cost nothing).
func (c *Counts) AddTo(m *obs.Registry) {
	if m == nil {
		return
	}
	m.Counter("dist.kernel.rolling").Add(c.Rolling)
	m.Counter("dist.kernel.fft").Add(c.FFT)
	m.Counter("dist.kernel.exact").Add(c.Exact)
	m.Counter("dist.kernel.rolling32").Add(c.Rolling32)
	m.Counter("dist.kernel.fft32").Add(c.FFT32)
	m.Counter("dist.rolling.lb_skipped").Add(c.LBSkipped)
	m.Counter("dist.fft.refined_windows").Add(c.Refined)
	m.Counter("dist.fft.cache.hits").Add(c.FFTCacheHits)
	m.Counter("dist.fft.cache.misses").Add(c.FFTCacheMisses)
	m.Counter("dist.prepared.cache.hits").Add(c.PreparedHits)
	m.Counter("dist.prepared.cache.misses").Add(c.PreparedMisses)
}

// Annotate records the kernel mix as span attributes (no-op on nil spans).
func (c *Counts) Annotate(sp *obs.Span) {
	sp.SetInt("dist.rolling", c.Rolling)
	sp.SetInt("dist.fft", c.FFT)
	sp.SetInt("dist.exact", c.Exact)
}

// Cache memoises prepared series by slice identity (base pointer + length),
// so callers that evaluate against the same underlying storage repeatedly —
// tree growers revisiting instances, concurrent transforms over a shared
// dataset — prepare each series once.  The cache retains the Prepared
// values (which alias their series) for its lifetime; scope it to a task.
// Safe for concurrent use; the prepared form is built outside the map lock,
// at most once per key.
type Cache struct {
	mu sync.Mutex
	m  map[cacheKey]*cacheEntry
}

type cacheKey struct {
	first *float64
	n     int
}

type cacheEntry struct {
	once sync.Once
	p    *Prepared
}

// NewCache returns an empty prepared-series cache.
func NewCache() *Cache {
	return &Cache{m: map[cacheKey]*cacheEntry{}}
}

// Prepared returns the prepared form of s, building and memoising it on
// first sight of the slice identity.  Two slices share an entry only when
// they share both base pointer and length, i.e. they view the same values.
// Empty series are prepared fresh (they have no identity and cost nothing).
func (c *Cache) Prepared(s []float64, counts *Counts) *Prepared {
	if c == nil || len(s) == 0 {
		return Prepare(s)
	}
	key := cacheKey{first: &s[0], n: len(s)}
	c.mu.Lock()
	e := c.m[key]
	hit := e != nil
	if !hit {
		e = &cacheEntry{}
		c.m[key] = e
	}
	c.mu.Unlock()
	if counts != nil {
		if hit {
			counts.PreparedHits++
		} else {
			counts.PreparedMisses++
		}
	}
	e.once.Do(func() { e.p = Prepare(s) })
	return e.p
}

// Size returns the number of cached prepared series.
func (c *Cache) Size() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.m)
}
