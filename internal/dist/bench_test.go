package dist

import (
	"fmt"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

// BenchmarkKernels measures each kernel against the naive per-pair ts.Dist
// scan over a (series length, query length) grid.  These runs calibrate the
// fftCostFactor crossover constant in dist.go: for every (m, n) cell the
// auto kernel should pick whichever of rolling/fft wins here.
func BenchmarkKernels(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{256, 1024, 4096} {
		series := randSeries(rng, n, 0)
		for _, m := range []int{16, 64, 256, 1024} {
			if m > n {
				continue
			}
			queries := make([][]float64, 16)
			for i := range queries {
				queries[i] = randSeries(rng, m, i)
			}
			b.Run(fmt.Sprintf("naive/n=%d/m=%d", n, m), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					for _, q := range queries {
						ts.Dist(q, series)
					}
				}
			})
			for _, kernel := range []Kernel{KernelRolling, KernelFFT} {
				b.Run(fmt.Sprintf("%v/n=%d/m=%d", kernel, n, m), func(b *testing.B) {
					batch := NewBatch(queries)
					batch.SetKernel(kernel)
					out := make([]float64, len(queries))
					p := Prepare(series)
					b.ResetTimer()
					for i := 0; i < b.N; i++ {
						batch.EvalInto(p, out, nil)
					}
				})
			}
		}
	}
}

// BenchmarkPrepare measures the per-series preparation cost the cache
// amortises away.
func BenchmarkPrepare(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{256, 4096} {
		series := randSeries(rng, n, 0)
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				Prepare(series)
			}
		})
	}
}
