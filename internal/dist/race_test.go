package dist

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"ips/internal/ts"
)

// TestSharedCacheConcurrent exercises the engine's concurrency contract
// under the race detector: one Cache and one Batch shared by many
// goroutines, each evaluating every series.  The prepared forms (including
// the mutex-guarded per-Prepared FFT transform cache) are shared, and every
// goroutine must see byte-identical results.  Query lengths straddle the
// crossover so both kernels run concurrently.
func TestSharedCacheConcurrent(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	var seriesSet [][]float64
	for i := 0; i < 6; i++ {
		seriesSet = append(seriesSet, randSeries(rng, 400+40*i, i))
	}
	queries := [][]float64{
		randSeries(rng, 8, 1),
		randSeries(rng, 32, 0),
		randSeries(rng, 128, 2),
		randSeries(rng, 256, 0),
	}
	want := make([][]float64, len(seriesSet))
	for si, s := range seriesSet {
		want[si] = make([]float64, len(queries))
		for qi, q := range queries {
			want[si][qi] = ts.Dist(q, s)
		}
	}

	cache := NewCache()
	batch := NewBatch(queries)
	const workers = 8
	var wg sync.WaitGroup
	errs := make(chan string, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var c Counts
			out := make([]float64, len(queries))
			for si, s := range seriesSet {
				p := cache.Prepared(s, &c)
				batch.EvalInto(p, out, &c)
				for qi := range out {
					if math.Float64bits(out[qi]) != math.Float64bits(want[si][qi]) {
						errs <- "concurrent result diverged from sequential reference"
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
	if cache.Size() != len(seriesSet) {
		t.Fatalf("cache size = %d, want %d (one entry per series, built once)", cache.Size(), len(seriesSet))
	}
}
