// Package dist is the batched Def. 4 distance engine: the shapelet transform
// (Def. 7) and every baseline's candidate evaluation reduce to "slide many
// queries over the same series and keep each minimum", and the per-pair
// ts.Dist loop recomputes window statistics from scratch for every pair.
// This package precomputes a per-series prepared form once — prefix sums of
// t and t² — shares it across every query against that series, and picks a
// kernel per query length:
//
//   - rolling: the window Σt² comes from the prefix sums in O(1), the
//     norm lower bound (√Σt² − √Σq²)² skips hopeless windows without
//     touching their values, and surviving windows run the exact
//     early-abandoning scan of ts.Dist;
//   - fft: sliding dot products via a cached padded FFT of the series
//     (internal/fft.FT) in O(n log n) per query, then the handful of
//     windows within floating-point error of the profile minimum are
//     recomputed exactly.
//
// Both kernels return values byte-identical to ts.Dist for the same pair:
// the rolling kernel replays ts.Dist's scan on every window the lower bound
// cannot exclude, and the fft kernel's candidate refinement recomputes the
// winning alignment with the same left-to-right summation (the conservative
// error bound guarantees the true minimiser is among the candidates).  This
// makes the engine a drop-in replacement under golden tests and saved
// models; kernel choice is a pure throughput knob.
package dist

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"ips/internal/fft"
	"ips/internal/ts"
)

// Kernel identifies which distance kernel evaluated a (query, series) pair.
type Kernel uint8

const (
	// KernelAuto lets the engine choose per query length (the default).
	KernelAuto Kernel = iota
	// KernelRolling is the prefix-sum + norm-bound + early-abandon scan.
	KernelRolling
	// KernelFFT is the cached-FFT profile with exact candidate refinement.
	KernelFFT
	// KernelExact is the plain ts.Dist fallback used for degenerate inputs
	// (non-finite values, empty or over-long queries).  It cannot be forced.
	KernelExact
)

// String names the kernel for span attributes and benchmark reports.
func (k Kernel) String() string {
	switch k {
	case KernelRolling:
		return "rolling"
	case KernelFFT:
		return "fft"
	case KernelExact:
		return "exact"
	default:
		return "auto"
	}
}

// ParseKernel parses a kernel name as accepted by the CLIs' -dist-kernel
// flag: "auto", "rolling", or "fft" (the exact fallback is not forcible).
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "auto", "":
		return KernelAuto, nil
	case "rolling":
		return KernelRolling, nil
	case "fft":
		return KernelFFT, nil
	}
	return KernelAuto, fmt.Errorf("dist: unknown kernel %q (want auto, rolling, or fft)", s)
}

// fftMinQueryLen is the shortest query the fft kernel is considered for:
// below it the padded transforms cannot beat the rolling scan at any series
// length.
const fftMinQueryLen = 64

// fftCostFactor scales the fft kernel's N·log₂N cost model against the
// rolling kernel's (n−m+1)·m when choosing a kernel.  Calibrated with the
// internal/dist benchmarks (see BenchmarkKernels): the complex butterflies
// of the two per-query transforms cost roughly this many times a rolling
// multiply-add, after the early-abandon savings of the rolling scan are
// priced in.  Measured on the benchmark grid: at (n=4096, m=1024) fft wins
// 2.7× and the model picks it; at (n=4096, m=256) and (n=1024, m=256)
// rolling wins 1.5–1.9× and the model correctly stays rolling (a factor of
// 8 mispredicted both of the latter cells).
const fftCostFactor = 14.0

// distEps scales the conservative floating-point error bound used by both
// the norm-lower-bound pruning and the fft candidate refinement.  The true
// accumulated error of the prefix sums and the FFT is below n·ε ≈ 1e-12 of
// the total energy for any series this repository handles; 1e-9 leaves three
// orders of magnitude of margin, and a too-large bound only costs a few
// extra exactly-recomputed windows, never correctness.
const distEps = 1e-9

// KernelFor returns the kernel the engine would choose for a length-m query
// against a length-n series (KernelExact for degenerate shapes).  Exposed so
// benchmarks and reports can label measurements with the chosen kernel.
func KernelFor(m, n int) Kernel {
	if m == 0 || n == 0 || m > n {
		return KernelExact
	}
	return chooseKernel(m, n)
}

// chooseKernel is the crossover heuristic for non-degenerate shapes: use the
// fft kernel when the rolling kernel's (n−m+1)·m work exceeds the cost model
// of two padded transforms, fftCostFactor·N·log₂N with N = nextpow2(n+m−1).
func chooseKernel(m, n int) Kernel {
	if m < fftMinQueryLen {
		return KernelRolling
	}
	w := n - m + 1
	size := fft.NextPow2(n + m - 1)
	rolling := float64(w) * float64(m)
	fftCost := fftCostFactor * float64(size) * float64(bits.Len(uint(size))-1)
	if rolling > fftCost {
		return KernelFFT
	}
	return KernelRolling
}

// Prepared is the per-series prepared form: prefix sums of t and t² computed
// once and shared by every query evaluated against the series, plus a cache
// of padded forward FFTs keyed by transform size.  Prepared aliases the
// series it was built from (the caller must not mutate it) and is safe for
// concurrent use.
type Prepared struct {
	t        []float64
	prefix   []float64 // prefix[i]   = Σ_{k<i} t[k]
	prefixSq []float64 // prefixSq[i] = Σ_{k<i} t[k]²
	finite   bool      // every value and the Σt² accumulator are finite
	// noFFT marks a scratch-prepared series (see Scratch.Prepare): padded
	// transforms would be built and discarded within one call, so the fft
	// kernel is never chosen and the fts caches are never populated.
	noFFT bool

	mu  sync.Mutex
	fts map[int]*fft.FT // padded forward transforms keyed by size

	// float32 side, built lazily on the first single-precision evaluation
	// (grow-once, so a scratch-reused Prepared re-fills in place).
	built32  bool
	t32      []float32
	tt32     float32 // Σt² accumulated in float32
	finite32 bool    // every rounded value and tt32 are finite in float32
	fts32    map[int]*fft.FT32
}

// Prepare builds the prepared form of t in O(n).  The returned value aliases
// t; it must not be mutated while the Prepared is in use.
func Prepare(t []float64) *Prepared {
	p := &Prepared{
		t:        t,
		prefix:   make([]float64, len(t)+1),
		prefixSq: make([]float64, len(t)+1),
	}
	for i, v := range t {
		p.prefix[i+1] = p.prefix[i] + v
		p.prefixSq[i+1] = p.prefixSq[i] + v*v
	}
	p.finite = finiteTotal(p.prefixSq[len(t)])
	return p
}

// finiteTotal reports whether the Σt² accumulator is finite.  Squares are
// non-negative, so a NaN anywhere or an overflow to +Inf both surface in the
// final accumulator; plain sums cannot overflow when the squared sums do not.
func finiteTotal(total float64) bool {
	return !math.IsNaN(total) && !math.IsInf(total, 0)
}

// Len returns the prepared series length.
func (p *Prepared) Len() int { return len(p.t) }

// Series returns the underlying series (aliased, read-only by convention).
func (p *Prepared) Series() []float64 { return p.t }

// WindowSum returns Σ t[j:j+m] in O(1) from the prefix sums.
func (p *Prepared) WindowSum(j, m int) float64 {
	return p.prefix[j+m] - p.prefix[j]
}

// WindowSqSum returns Σ t[j:j+m]² in O(1) from the prefix sums, clamped to
// be non-negative against prefix-difference round-off.
func (p *Prepared) WindowSqSum(j, m int) float64 {
	v := p.prefixSq[j+m] - p.prefixSq[j]
	if v < 0 {
		v = 0
	}
	return v
}

// errBound returns the absolute error margin for un-normalised squared
// distances of a query with energy qq against this series: any value the
// rolling statistics or the FFT produce is within this bound of the exact
// left-to-right sum.
func (p *Prepared) errBound(qq float64) float64 {
	return distEps * (p.prefixSq[len(p.t)] + qq)
}

// ft returns the cached padded transform of the series for the given size,
// building it on first use.  The second result reports a cache hit.
func (p *Prepared) ft(size int) (*fft.FT, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if f := p.fts[size]; f != nil {
		return f, true
	}
	f, err := fft.NewFT(p.t, size)
	if err != nil {
		return nil, false // impossible by construction; callers fall back
	}
	if p.fts == nil {
		p.fts = map[int]*fft.FT{}
	}
	p.fts[size] = f
	return f, false
}

// f32 returns the float32 view of the series — the rounded values and their
// float32-accumulated energy — building it on first use.  The third result
// reports whether the rounded series is usable: a magnitude beyond float32
// range converts to ±Inf, in which case callers stay on the float64 kernels.
// The build is grow-once so a scratch-reused Prepared re-fills in place.
func (p *Prepared) f32() ([]float32, float32, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if !p.built32 {
		n := len(p.t)
		if cap(p.t32) < n {
			p.t32 = make([]float32, n)
		}
		p.t32 = p.t32[:n]
		var tt float32
		for i, v := range p.t {
			f := float32(v)
			p.t32[i] = f
			tt += f * f
		}
		p.tt32 = tt
		f64 := float64(tt)
		p.finite32 = p.finite && !math.IsNaN(f64) && !math.IsInf(f64, 0)
		p.built32 = true
	}
	return p.t32, p.tt32, p.finite32
}

// ft32 returns the cached complex64 padded transform of the float32 series
// for the given size, building both on first use.  The second result reports
// a cache hit.  Never called for noFFT (scratch-prepared) series.
func (p *Prepared) ft32(size int) (*fft.FT32, bool) {
	t32, _, ok := p.f32()
	if !ok {
		return nil, false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if f := p.fts32[size]; f != nil {
		return f, true
	}
	f, err := fft.NewFT32(t32, size)
	if err != nil {
		return nil, false // impossible by construction; callers fall back
	}
	if p.fts32 == nil {
		p.fts32 = map[int]*fft.FT32{}
	}
	p.fts32[size] = f
	return f, false
}

// Dist returns the Def. 4 distance of q against the prepared series,
// byte-identical to ts.Dist(q, series).  Single queries keep an
// early-abandoning min-only path: the rolling kernel never materialises a
// profile.
func (p *Prepared) Dist(q []float64) float64 {
	return p.DistCounted(q, nil)
}

// DistCounted is Dist with kernel-choice accounting into c (nil is allowed).
func (p *Prepared) DistCounted(q []float64, c *Counts) float64 {
	if c == nil {
		c = &Counts{}
	}
	m, n := len(q), len(p.t)
	if m == 0 || n == 0 {
		c.Exact++
		return 0 // ts.Dist: an empty (shorter) side is at distance 0
	}
	if m > n || !p.finite {
		c.Exact++
		return ts.Dist(q, p.t)
	}
	qq := sumSq(q)
	if math.IsNaN(qq) || math.IsInf(qq, 0) {
		c.Exact++
		return ts.Dist(q, p.t)
	}
	if !p.noFFT && chooseKernel(m, n) == KernelFFT {
		if d, ok := p.fftMin(q, qq, c); ok {
			return d
		}
		c.Exact++
		return ts.Dist(q, p.t)
	}
	c.Rolling++
	return p.rollingMin(q, qq, c)
}

// rollingMin is the min-only rolling kernel: per window, the norm lower
// bound (√Σt² − √Σq²)² ≤ Σ(t−q)² is evaluated in O(1) from the prefix sums,
// and only windows it cannot exclude run ts.Dist's exact early-abandoning
// scan.  Pruned windows provably cannot improve the running best, so the
// result is byte-identical to ts.Dist.
//
// The bound test runs in the squared domain — lb > T ⟺ Σt²+Σq²−T >
// 2√(Σt²·Σq²), squared — so the hot loop carries no sqrt.  The margin on T
// is 2√(Σq²·errBound)+errBound, not errBound alone: the √-form of the bound
// amplifies the prefix-difference error of a near-zero-energy window by the
// query magnitude, and the wider margin provably covers that worst case.
func (p *Prepared) rollingMin(q []float64, qq float64, c *Counts) float64 {
	m := len(q)
	fm := float64(m)
	w := len(p.t) - m + 1
	bound := p.errBound(qq)
	margin := 2*math.Sqrt(qq*bound) + bound
	best := math.Inf(1)
	lbT := math.Inf(1) // best un-normalised sum + safety margin
	for j := 0; j < w; j++ {
		ws := p.WindowSqSum(j, m)
		if a := ws + qq - lbT; a > 0 && a*a > 4*ws*qq {
			c.LBSkipped++
			continue
		}
		var s float64
		win := p.t[j : j+m]
		abandoned := false
		for l := range q {
			diff := win[l] - q[l]
			s += diff * diff
			if s >= best*fm {
				abandoned = true
				break
			}
		}
		if abandoned {
			continue
		}
		if v := s / fm; v < best {
			best = v
			lbT = s + margin
		}
	}
	return best
}

// fftMin is the min-only fft kernel: sliding dots from the cached padded
// transform, the approximate profile ŝ_j = Σt² − 2Σtq + Σq², and an exact
// naive recomputation of every window within the error bound of the
// approximate minimum.  The bound guarantees the exact minimiser is among
// the candidates, so the returned minimum matches ts.Dist.
func (p *Prepared) fftMin(q []float64, qq float64, c *Counts) (float64, bool) {
	m, n := len(q), len(p.t)
	w := n - m + 1
	size := fft.NextPow2(n + m - 1)
	f, hit := p.ft(size)
	if f == nil {
		return 0, false
	}
	if hit {
		c.FFTCacheHits++
	} else {
		c.FFTCacheMisses++
	}
	prof := make([]float64, w)
	if _, err := f.SlidingDotsInto(q, prof, nil); err != nil {
		return 0, false
	}
	c.FFT++
	minHat := math.Inf(1)
	for j := 0; j < w; j++ {
		sHat := p.WindowSqSum(j, m) - 2*prof[j] + qq
		if sHat < 0 {
			sHat = 0
		}
		prof[j] = sHat
		if sHat < minHat {
			minHat = sHat
		}
	}
	return p.refineMin(q, prof, minHat, qq, c), true
}

// refineMin recomputes every window whose approximate un-normalised squared
// distance is within twice the error bound of the approximate minimum with
// the exact left-to-right summation of ts.Dist, and returns the minimum
// normalised distance among them.
func (p *Prepared) refineMin(q []float64, prof []float64, minHat, qq float64, c *Counts) float64 {
	m := len(q)
	fm := float64(m)
	thr := minHat + 2*p.errBound(qq)
	best := math.Inf(1)
	for j, sHat := range prof {
		if sHat > thr {
			continue
		}
		c.Refined++
		var s float64
		win := p.t[j : j+m]
		for l := range q {
			diff := win[l] - q[l]
			s += diff * diff
		}
		if v := s / fm; v < best {
			best = v
		}
	}
	return best
}

func sumSq(q []float64) float64 {
	var s float64
	for _, v := range q {
		s += v * v
	}
	return s
}
