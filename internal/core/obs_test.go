package core

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"testing"

	"ips/internal/classify"
	"ips/internal/obs"
)

// TestDiscoverDeterministicUnderInstrumentation reproduces the worker
// determinism guarantee with observability fully enabled: spans, metrics,
// and a concurrent progress callback must not perturb the discovered
// shapelets or the transform features for any worker count.  Run under
// -race this also proves the instrumentation itself is data-race free.
func TestDiscoverDeterministicUnderInstrumentation(t *testing.T) {
	train := plantedDataset(10, 60, 2, 7)

	type outcome struct {
		shapelets []classify.Shapelet
		features  [][]float64
	}
	runWith := func(workers int) outcome {
		o := obs.New("test")
		o.OnProgress(func(string, int, int) {}) // concurrent no-op sink
		opt := smallOptions(7)
		opt.Workers = workers
		opt.Obs = o
		res, err := Discover(context.Background(), train, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		X := classify.TransformSpan(train, res.Shapelets, workers, o.Root().Child("transform"))
		o.Finish()
		return outcome{shapelets: res.Shapelets, features: X}
	}

	seq := runWith(1)
	par := runWith(4)
	if !reflect.DeepEqual(seq.shapelets, par.shapelets) {
		t.Fatal("shapelets differ between Workers=1 and Workers=4 under instrumentation")
	}
	if !reflect.DeepEqual(seq.features, par.features) {
		t.Fatal("transform features differ between Workers=1 and Workers=4 under instrumentation")
	}
}

// TestTimingsAreSpanViews checks that Result.Timings is the span tree seen
// through the legacy struct: every stage duration equals its span's
// duration, and Fit fills the Transform/Train extension.
func TestTimingsAreSpanViews(t *testing.T) {
	train := plantedDataset(8, 60, 2, 3)
	o := obs.New("test")
	opt := smallOptions(3)
	opt.Obs = o
	model, err := Fit(context.Background(), train, opt)
	if err != nil {
		t.Fatal(err)
	}
	tm := model.Discovery.Timings

	dsp := o.Root().ChildByName("discover")
	if dsp == nil {
		t.Fatal("no discover span")
	}
	for _, c := range []struct {
		name string
		got  int64
	}{
		{"candidate-gen", int64(tm.CandidateGen)},
		{"pruning", int64(tm.Pruning)},
		{"selection", int64(tm.Selection)},
	} {
		sp := dsp.ChildByName(c.name)
		if sp == nil {
			t.Fatalf("no %s span", c.name)
		}
		if int64(sp.Duration()) != c.got {
			t.Fatalf("%s: timing %v != span %v", c.name, c.got, sp.Duration())
		}
	}
	if tm.Transform <= 0 || tm.Train <= 0 {
		t.Fatalf("Fit did not fill Transform/Train: %+v", tm)
	}
	if got := tm.FitTotal(); got != tm.Total()+tm.Transform+tm.Train {
		t.Fatalf("FitTotal = %v", got)
	}
	// The pipeline populated metrics: candidate counters, prune counters,
	// SVM passes.
	reg := o.Metrics()
	if reg.Counter("dabf.prune.examined").Value() == 0 {
		t.Fatal("dabf.prune.examined not incremented")
	}
	if reg.Counter("classify.svm.passes").Value() == 0 {
		t.Fatal("classify.svm.passes not incremented")
	}
	if reg.Counter("classify.transform.dists").Value() == 0 {
		t.Fatal("classify.transform.dists not incremented")
	}
}

// TestFitWithoutObserverStillTimes covers the nil default: no observer, but
// the Timings view still reports every stage.
func TestFitWithoutObserverStillTimes(t *testing.T) {
	train := plantedDataset(8, 60, 2, 3)
	model, err := Fit(context.Background(), train, smallOptions(3))
	if err != nil {
		t.Fatal(err)
	}
	tm := model.Discovery.Timings
	if tm.CandidateGen <= 0 || tm.Pruning <= 0 || tm.Selection <= 0 || tm.Transform <= 0 || tm.Train <= 0 {
		t.Fatalf("missing timings without observer: %+v", tm)
	}
}

// BenchmarkDiscoverObsOff measures the instrumented Discover path with
// observability off (Options.Obs == nil): the hot loops see only nil-checks,
// so this must stay within noise of the pre-instrumentation baseline.
func BenchmarkDiscoverObsOff(b *testing.B) {
	train := plantedDataset(10, 80, 2, 5)
	opt := smallOptions(5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Discover(context.Background(), train, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDiscoverObsOn is the same workload with a live observer, to
// quantify the cost of spans + metrics when they are requested.
func BenchmarkDiscoverObsOn(b *testing.B) {
	train := plantedDataset(10, 80, 2, 5)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		opt := smallOptions(5)
		opt.Obs = obs.New("bench")
		if _, err := Discover(context.Background(), train, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// TestDiscoverTraceExport is the acceptance check: a traced run emits valid
// Chrome trace-event JSON with nested spans for candidate generation,
// pruning, and selection.
func TestDiscoverTraceExport(t *testing.T) {
	train := plantedDataset(8, 60, 2, 3)
	o := obs.New("ips")
	opt := smallOptions(3)
	opt.Obs = o
	if _, err := Discover(context.Background(), train, opt); err != nil {
		t.Fatal(err)
	}
	o.Finish()
	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid trace JSON: %v", err)
	}
	byName := map[string]obs.TraceEvent{}
	for _, ev := range tf.TraceEvents {
		byName[ev.Name] = ev
	}
	disc, ok := byName["discover"]
	if !ok {
		t.Fatal("no discover event")
	}
	for _, name := range []string{"candidate-gen", "pruning", "selection"} {
		ev, ok := byName[name]
		if !ok {
			t.Fatalf("no %s event", name)
		}
		if ev.Ts+1 < disc.Ts || ev.Ts+ev.Dur > disc.Ts+disc.Dur+1 {
			t.Fatalf("%s not nested inside discover: %+v vs %+v", name, ev, disc)
		}
	}
	// Deeper nesting exists too: per-class selection and DABF fit spans.
	if _, ok := byName["class-0"]; !ok {
		t.Fatal("no per-class selection span in trace")
	}
	if _, ok := byName["fit.class-0"]; !ok {
		t.Fatal("no DABF fit span in trace")
	}
	if _, ok := byName["profiles"]; !ok {
		t.Fatal("no candidate-gen profiles span in trace")
	}
}
