package core

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ips/internal/errs"
	"ips/internal/faulty"
)

// trainedModel fits a small model on planted data for serialization tests.
func trainedModel(t *testing.T) *Model {
	t.Helper()
	m, err := Fit(context.Background(), plantedDataset(10, 60, 2, 90), smallOptions(92))
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestModelSaveLoadRoundTrip(t *testing.T) {
	train := plantedDataset(10, 60, 2, 90)
	test := plantedDataset(10, 60, 2, 91)
	model, err := Fit(context.Background(), train, smallOptions(92))
	if err != nil {
		t.Fatal(err)
	}
	wantPred, err := model.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := loaded.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
	if len(loaded.Shapelets) != len(model.Shapelets) {
		t.Fatalf("shapelet count %d, want %d", len(loaded.Shapelets), len(model.Shapelets))
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	train := plantedDataset(8, 50, 2, 93)
	model, err := Fit(context.Background(), train, smallOptions(94))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Shapelets) == 0 {
		t.Fatal("loaded model has no shapelets")
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestModelSaveErrors(t *testing.T) {
	var m Model
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("untrained model should not save")
	}
}

func TestLoadModelErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong format":  `{"format":99}`,
		"incomplete":    `{"format":1}`,
		"bad svm shape": `{"format":1,"shapelets":[{"class":0,"values":[1]}],"scaler":{"Mean":[0],"Std":[1]},"svm":{"classes":[0,1],"w":[[1]],"b":[0]}}`,
		"scaler mismatch": `{"format":1,"shapelets":[{"class":0,"values":[1]},{"class":1,"values":[2]}],` +
			`"scaler":{"Mean":[0],"Std":[1]},"svm":{"classes":[0,1],"w":[[1],[2]],"b":[0,0]}}`,
	}
	for name, payload := range cases {
		if _, err := LoadModel(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: should error", name)
		}
	}
}

// TestLoadModelCorruptFilesTyped pins the serving-path contract: every way a
// model file can be damaged — truncated JSON, garbage bytes, inconsistent
// dimensions, degenerate weights — must come back as errs.ErrBadInput, so
// ipsd admin loads fail typed (HTTP 400) instead of crashing the daemon or,
// worse, loading a model that panics at predict time.
func TestLoadModelCorruptFilesTyped(t *testing.T) {
	valid := `{"format":1,"shapelets":[{"class":0,"values":[1,2]},{"class":1,"values":[3,4]}],` +
		`"scaler":{"Mean":[0,0],"Std":[1,1]},"svm":{"classes":[0,1],"w":[[1,1],[2,2]],"b":[0,0]}}`
	if _, err := LoadModel(strings.NewReader(valid)); err != nil {
		t.Fatalf("valid fixture rejected: %v", err)
	}
	cases := map[string]string{
		"truncated json":    valid[:len(valid)/2],
		"empty file":        "",
		"garbage bytes":     "\x00\x01ips\xff",
		"one class":         `{"format":1,"shapelets":[{"class":0,"values":[1]}],"scaler":{"Mean":[0],"Std":[1]},"svm":{"classes":[0],"w":[[1]],"b":[0]}}`,
		"short weight row":  strings.Replace(valid, `"w":[[1,1],[2,2]]`, `"w":[[1],[2,2]]`, 1),
		"long weight row":   strings.Replace(valid, `"w":[[1,1],[2,2]]`, `"w":[[1,1,1],[2,2]]`, 1),
		"short scaler std":  strings.Replace(valid, `"Std":[1,1]`, `"Std":[1]`, 1),
		"zero scaler std":   strings.Replace(valid, `"Std":[1,1]`, `"Std":[1,0]`, 1),
		"empty shapelet":    strings.Replace(valid, `{"class":0,"values":[1,2]}`, `{"class":0,"values":[]}`, 1),
		"nonfinite weights": strings.Replace(valid, `"w":[[1,1],[2,2]]`, `"w":[[1,1],[2,2e999]]`, 1),
	}
	for name, payload := range cases {
		_, err := LoadModel(strings.NewReader(payload))
		if err == nil {
			t.Fatalf("%s: accepted", name)
		}
		if !errors.Is(err, errs.ErrBadInput) {
			t.Fatalf("%s: not ErrBadInput: %v", name, err)
		}
		if diag := faulty.CheckTyped(err); diag != "" {
			t.Fatalf("%s: %s", name, diag)
		}
	}
}

// TestLoadModelDamagedFileOnDisk damages a genuinely saved model file the way
// an interrupted copy would and asserts the typed-load contract end to end.
func TestLoadModelDamagedFileOnDisk(t *testing.T) {
	m := trainedModel(t)
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	info, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, info.Size()*2/3); err != nil {
		t.Fatal(err)
	}
	_, err = LoadModelFile(path)
	if err == nil {
		t.Fatal("truncated model file accepted")
	}
	if !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("truncated model file: not ErrBadInput: %v", err)
	}
}
