package core

import (
	"bytes"
	"context"
	"path/filepath"
	"strings"
	"testing"
)

func TestModelSaveLoadRoundTrip(t *testing.T) {
	train := plantedDataset(10, 60, 2, 90)
	test := plantedDataset(10, 60, 2, 91)
	model, err := Fit(context.Background(), train, smallOptions(92))
	if err != nil {
		t.Fatal(err)
	}
	wantPred, err := model.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := model.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	gotPred, err := loaded.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	for i := range wantPred {
		if gotPred[i] != wantPred[i] {
			t.Fatalf("prediction %d differs after round trip", i)
		}
	}
	if len(loaded.Shapelets) != len(model.Shapelets) {
		t.Fatalf("shapelet count %d, want %d", len(loaded.Shapelets), len(model.Shapelets))
	}
}

func TestModelSaveLoadFile(t *testing.T) {
	train := plantedDataset(8, 50, 2, 93)
	model, err := Fit(context.Background(), train, smallOptions(94))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "model.json")
	if err := model.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Shapelets) == 0 {
		t.Fatal("loaded model has no shapelets")
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Fatal("missing file should error")
	}
}

func TestModelSaveErrors(t *testing.T) {
	var m Model
	var buf bytes.Buffer
	if err := m.Save(&buf); err == nil {
		t.Fatal("untrained model should not save")
	}
}

func TestLoadModelErrors(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong format":  `{"format":99}`,
		"incomplete":    `{"format":1}`,
		"bad svm shape": `{"format":1,"shapelets":[{"class":0,"values":[1]}],"scaler":{"Mean":[0],"Std":[1]},"svm":{"classes":[0,1],"w":[[1]],"b":[0]}}`,
		"scaler mismatch": `{"format":1,"shapelets":[{"class":0,"values":[1]},{"class":1,"values":[2]}],` +
			`"scaler":{"Mean":[0],"Std":[1]},"svm":{"classes":[0,1],"w":[[1],[2]],"b":[0,0]}}`,
	}
	for name, payload := range cases {
		if _, err := LoadModel(strings.NewReader(payload)); err == nil {
			t.Fatalf("%s: should error", name)
		}
	}
}
