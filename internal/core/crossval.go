package core

import (
	"context"
	"math"
	"math/rand"

	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/ts"
)

// CVResult summarises a k-fold cross-validation run.
type CVResult struct {
	FoldAccuracies []float64
	Mean           float64
	Std            float64
}

// CrossValidate runs stratified k-fold cross-validation of the IPS pipeline
// on a single dataset — the evaluation mode for users without a train/test
// split.  Folds are stratified by class so every fold sees every class.
// The context is checked between folds and threaded into each fold's
// Evaluate; cancellation returns the fold accuracies gathered so far inside
// a partial CVResult alongside an error matching errs.ErrCanceled.
func CrossValidate(ctx context.Context, d *ts.Dataset, opt Options, folds int, seed int64) (*CVResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if d == nil {
		return nil, errs.BadInput(errs.StageValidate, "crossval", "", "nil dataset")
	}
	if folds < 2 {
		return nil, errs.BadInput(errs.StageValidate, "crossval", d.Name, "need at least 2 folds, got %d", folds)
	}
	if err := d.Validate(true); err != nil {
		return nil, errs.BadInputErr(errs.StageValidate, "crossval", d.Name, err)
	}
	// Stratified assignment: shuffle within each class, deal round-robin.
	rng := rand.New(rand.NewSource(seed))
	foldOf := make([]int, d.Len())
	byClass := map[int][]int{}
	for i, in := range d.Instances {
		byClass[in.Label] = append(byClass[in.Label], i)
	}
	for _, idxs := range byClass {
		rng.Shuffle(len(idxs), func(a, b int) { idxs[a], idxs[b] = idxs[b], idxs[a] })
		for pos, i := range idxs {
			foldOf[i] = pos % folds
		}
	}

	res := &CVResult{}
	for f := 0; f < folds; f++ {
		if err := errs.Ctx(ctx, errs.StageValidate, "crossval"); err != nil {
			return res, err // partial: accuracies of completed folds
		}
		train := &ts.Dataset{Name: d.Name}
		test := &ts.Dataset{Name: d.Name}
		for i, in := range d.Instances {
			if foldOf[i] == f {
				test.Instances = append(test.Instances, in)
			} else {
				train.Instances = append(train.Instances, in)
			}
		}
		if len(test.Instances) == 0 || len(train.Classes()) < 2 {
			return nil, errs.BadInput(errs.StageValidate, "crossval", d.Name,
				"fold %d has no test instances or one training class; use fewer folds", f)
		}
		acc, _, err := Evaluate(ctx, train, test, opt)
		if err != nil {
			return partialOn(res, err)
		}
		obs.Log(ctx).Info("fold done", "op", "crossval", "dataset", d.Name,
			"fold", f, "folds", folds, "accuracy", acc)
		res.FoldAccuracies = append(res.FoldAccuracies, acc)
	}
	var sum float64
	for _, a := range res.FoldAccuracies {
		sum += a
	}
	res.Mean = sum / float64(folds)
	var ss float64
	for _, a := range res.FoldAccuracies {
		dlt := a - res.Mean
		ss += dlt * dlt
	}
	res.Std = math.Sqrt(ss / float64(folds))
	return res, nil
}
