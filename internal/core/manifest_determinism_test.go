package core

import (
	"bytes"
	"context"
	"testing"

	"ips/internal/obs"
	"ips/internal/ucr"
)

// evaluateManifest runs the full pipeline at a fixed seed under a live
// observer and builds the run's manifest, exactly as cmd/ips -manifest does.
func evaluateManifest(t *testing.T) *obs.Manifest {
	t.Helper()
	train, test, err := ucr.GenerateByName("ItalyPowerDemand", ucr.GenConfig{Seed: 1, MaxTrain: 20, MaxTest: 20})
	if err != nil {
		t.Fatal(err)
	}
	o := obs.New("ips")
	opt := Options{K: 3, Workers: 2, Obs: o}.WithDefaults()
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 1, 1, 1
	acc, _, err := Evaluate(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	o.Finish()
	return obs.BuildManifest(o, obs.RunInfo{
		Tool: "ips", Seed: 1,
		Config: map[string]any{"k": 3, "workers": 2},
		Dataset: &obs.DatasetInfo{
			Name: train.Name, Hash: train.ContentHash(),
			Train: train.Len(), Test: test.Len(),
			Length: train.SeriesLen(), Classes: len(train.Classes()),
		},
		Accuracy: &acc,
	})
}

// TestManifestCrossRunDeterminism is the end-to-end byte-determinism pin:
// two full pipeline runs at the same seed must produce byte-identical
// manifests once Normalize strips the fields that legitimately vary between
// runs (wall times and timing-derived metric values).  Everything else —
// span tree shape, attribute values, counter values, accuracy, dataset
// hash — is covered by the byte comparison, so any nondeterminism sneaking
// into the pipeline shows up here as a diff.
func TestManifestCrossRunDeterminism(t *testing.T) {
	m1 := evaluateManifest(t)
	m2 := evaluateManifest(t)
	m1.Normalize()
	m2.Normalize()
	b1, err := m1.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m2.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatalf("normalized manifests of two same-seed runs differ:\n--- run 1\n%s\n--- run 2\n%s", b1, b2)
	}
}
