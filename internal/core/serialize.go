package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"

	"ips/internal/classify"
	"ips/internal/errs"
	"ips/internal/ts"
)

// modelFile is the on-disk JSON representation of a trained model.  Only
// what prediction needs is persisted: shapelets, scaler, and SVM weights;
// discovery diagnostics are not.
type modelFile struct {
	Format    int              `json:"format"`
	Shapelets []shapeletFile   `json:"shapelets"`
	Scaler    *classify.Scaler `json:"scaler"`
	SVM       *svmFile         `json:"svm"`
	Workers   int              `json:"workers,omitempty"`
}

type shapeletFile struct {
	Class  int       `json:"class"`
	Score  float64   `json:"score"`
	Values []float64 `json:"values"`
}

type svmFile struct {
	Classes []int       `json:"classes"`
	W       [][]float64 `json:"w"`
	B       []float64   `json:"b"`
}

// currentFormat is bumped on incompatible changes to the file layout.
const currentFormat = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.SVM == nil || m.Scaler == nil {
		return errs.BadInput(errs.StageData, "model.save", "", "model is not trained")
	}
	mf := modelFile{Format: currentFormat, Scaler: m.Scaler, Workers: m.workers}
	for _, s := range m.Shapelets {
		mf.Shapelets = append(mf.Shapelets, shapeletFile{Class: s.Class, Score: s.Score, Values: s.Values})
	}
	mf.SVM = &svmFile{Classes: m.SVM.Classes, W: m.SVM.W, B: m.SVM.B}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model previously written by Save.
//
// Every failure mode of a damaged file — truncated or corrupt JSON, a wrong
// format number, missing sections, inconsistent dimensions, non-finite
// weights — returns an error matching errs.ErrBadInput, never a raw decode
// error and never a model that panics later: the scaler and SVM shapes are
// fully cross-checked against the shapelet count here, because Predict
// indexes them without bounds checks on its hot path.
func LoadModel(r io.Reader) (*Model, error) {
	bad := func(format string, args ...any) (*Model, error) {
		return nil, errs.BadInput(errs.StageData, "model.load", "", format, args...)
	}
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, errs.BadInputErr(errs.StageData, "model.load",
			"", fmt.Errorf("corrupt model file: %w", err))
	}
	if mf.Format != currentFormat {
		return bad("unsupported model format %d", mf.Format)
	}
	if mf.SVM == nil || mf.Scaler == nil || len(mf.Shapelets) == 0 {
		return bad("model file incomplete")
	}
	if len(mf.SVM.W) != len(mf.SVM.Classes) || len(mf.SVM.B) != len(mf.SVM.Classes) {
		return bad("model file SVM shape inconsistent")
	}
	if len(mf.SVM.Classes) < 2 {
		return bad("model file has %d classes, need at least 2", len(mf.SVM.Classes))
	}
	m := &Model{
		Scaler:  mf.Scaler,
		SVM:     &classify.SVM{Classes: mf.SVM.Classes, W: mf.SVM.W, B: mf.SVM.B},
		workers: mf.Workers,
	}
	for i, s := range mf.Shapelets {
		if len(s.Values) == 0 {
			return bad("model file shapelet %d is empty", i)
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return bad("model file shapelet %d has non-finite values", i)
			}
		}
		m.Shapelets = append(m.Shapelets, classify.Shapelet{
			Class:  s.Class,
			Score:  s.Score,
			Values: ts.Series(s.Values),
		})
	}
	k := len(m.Shapelets)
	if len(m.Scaler.Mean) != k || len(m.Scaler.Std) != k {
		return bad("model file scaler/shapelet dimensions disagree")
	}
	for i := range m.Scaler.Mean {
		if !finite(m.Scaler.Mean[i]) || !finite(m.Scaler.Std[i]) || m.Scaler.Std[i] <= 0 {
			return bad("model file scaler feature %d is degenerate", i)
		}
	}
	for ci, w := range m.SVM.W {
		if len(w) != k {
			return bad("model file SVM weight row %d has %d features, want %d", ci, len(w), k)
		}
		for _, v := range w {
			if !finite(v) {
				return bad("model file SVM weight row %d has non-finite values", ci)
			}
		}
		if !finite(m.SVM.B[ci]) {
			return bad("model file SVM bias %d is non-finite", ci)
		}
	}
	return m, nil
}

// finite reports whether v is neither NaN nor infinite.
func finite(v float64) bool { return !math.IsNaN(v) && !math.IsInf(v, 0) }

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
