package core

import (
	"encoding/json"
	"io"
	"os"

	"ips/internal/classify"
	"ips/internal/errs"
	"ips/internal/ts"
)

// modelFile is the on-disk JSON representation of a trained model.  Only
// what prediction needs is persisted: shapelets, scaler, and SVM weights;
// discovery diagnostics are not.
type modelFile struct {
	Format    int              `json:"format"`
	Shapelets []shapeletFile   `json:"shapelets"`
	Scaler    *classify.Scaler `json:"scaler"`
	SVM       *svmFile         `json:"svm"`
	Workers   int              `json:"workers,omitempty"`
}

type shapeletFile struct {
	Class  int       `json:"class"`
	Score  float64   `json:"score"`
	Values []float64 `json:"values"`
}

type svmFile struct {
	Classes []int       `json:"classes"`
	W       [][]float64 `json:"w"`
	B       []float64   `json:"b"`
}

// currentFormat is bumped on incompatible changes to the file layout.
const currentFormat = 1

// Save writes the model as JSON.
func (m *Model) Save(w io.Writer) error {
	if m.SVM == nil || m.Scaler == nil {
		return errs.BadInput(errs.StageData, "model.save", "", "model is not trained")
	}
	mf := modelFile{Format: currentFormat, Scaler: m.Scaler, Workers: m.workers}
	for _, s := range m.Shapelets {
		mf.Shapelets = append(mf.Shapelets, shapeletFile{Class: s.Class, Score: s.Score, Values: s.Values})
	}
	mf.SVM = &svmFile{Classes: m.SVM.Classes, W: m.SVM.W, B: m.SVM.B}
	enc := json.NewEncoder(w)
	return enc.Encode(&mf)
}

// SaveFile writes the model to a file.
func (m *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadModel reads a model previously written by Save.
func LoadModel(r io.Reader) (*Model, error) {
	var mf modelFile
	if err := json.NewDecoder(r).Decode(&mf); err != nil {
		return nil, errs.BadInputErr(errs.StageData, "model.load", "", err)
	}
	if mf.Format != currentFormat {
		return nil, errs.BadInput(errs.StageData, "model.load", "", "unsupported model format %d", mf.Format)
	}
	if mf.SVM == nil || mf.Scaler == nil || len(mf.Shapelets) == 0 {
		return nil, errs.BadInput(errs.StageData, "model.load", "", "model file incomplete")
	}
	if len(mf.SVM.W) != len(mf.SVM.Classes) || len(mf.SVM.B) != len(mf.SVM.Classes) {
		return nil, errs.BadInput(errs.StageData, "model.load", "", "model file SVM shape inconsistent")
	}
	m := &Model{
		Scaler:  mf.Scaler,
		SVM:     &classify.SVM{Classes: mf.SVM.Classes, W: mf.SVM.W, B: mf.SVM.B},
		workers: mf.Workers,
	}
	for _, s := range mf.Shapelets {
		m.Shapelets = append(m.Shapelets, classify.Shapelet{
			Class:  s.Class,
			Score:  s.Score,
			Values: ts.Series(s.Values),
		})
	}
	if len(m.Scaler.Mean) != len(m.Shapelets) {
		return nil, errs.BadInput(errs.StageData, "model.load", "", "model file scaler/shapelet dimensions disagree")
	}
	return m, nil
}

// LoadModelFile reads a model from a file.
func LoadModelFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}
