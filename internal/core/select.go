package core

import (
	"container/heap"
	"context"
	"sort"
	"strconv"

	"ips/internal/classify"
	"ips/internal/dabf"
	"ips/internal/errs"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/ts"
)

// scoredCandidate pairs a motif candidate with its Alg. 4 score.
type scoredCandidate struct {
	cand  ip.Candidate
	score float64
}

// candidateHeap is the priority queue Q of Algorithm 4 (min-heap on score;
// smaller score = better shapelet).
type candidateHeap []scoredCandidate

func (h candidateHeap) Len() int            { return len(h) }
func (h candidateHeap) Less(i, j int) bool  { return h[i].score < h[j].score }
func (h candidateHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *candidateHeap) Push(x interface{}) { *h = append(*h, x.(scoredCandidate)) }
func (h *candidateHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// SelectionConfig controls top-k selection (Algorithm 4).
type SelectionConfig struct {
	K     int  // shapelets per class (paper default 5)
	UseDT bool // distribution transformation (Formula 15/16)
	UseCR bool // computation reuse
	// DiversityTau rejects a polled candidate whose Def. 4 distance to an
	// already selected shapelet of the same class is below this fraction of
	// the candidate's variance (near-duplicates); 0 means the default 0.01,
	// negative disables the guard.  Addresses the paper's 2nd issue (§II-B):
	// similar subsequences as shapelets.
	DiversityTau float64
	// Span, when non-nil, receives per-class sub-spans with per-utility
	// timing and distance-evaluation counters.
	Span *obs.Span
}

// SelectTopK runs Algorithm 4: scores every motif candidate of every class
// with the three utilities and polls the k best per class.  d may be nil
// only when UseDT is false.  The context is checked between utility blocks
// and every few candidate rows inside them; a cancelled selection returns
// nil shapelets and an error matching errs.ErrCanceled.
func SelectTopK(ctx context.Context, pool *ip.Pool, train *ts.Dataset, d *dabf.DABF, cfg SelectionConfig) ([]classify.Shapelet, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.K <= 0 {
		cfg.K = 5
	}
	if pool == nil || train == nil {
		return nil, errs.BadInput(errs.StageSelection, "select", "", "nil pool or dataset")
	}
	byClass := train.ByClass()
	classes := make([]int, 0, len(pool.ByClass))
	for c := range pool.ByClass {
		classes = append(classes, c)
	}
	sort.Ints(classes)

	var out []classify.Shapelet
	for _, class := range classes {
		motifs := pool.Motifs(class)
		if len(motifs) == 0 {
			continue
		}
		csp := cfg.Span.Child("class-" + strconv.Itoa(class))
		var others []ip.Candidate
		for _, oc := range classes {
			if oc != class {
				others = append(others, pool.ByClass[oc]...)
			}
		}
		instances := byClass[class]

		var u *utilities
		var uerr error
		if cfg.UseDT && d != nil {
			if cf := d.PerClass[class]; cf != nil {
				u, uerr = dtUtilities(ctx, motifs, others, instances, cf, d.Cfg.Dim, cfg.UseCR, csp)
			}
		}
		if u == nil && uerr == nil {
			u, uerr = rawUtilities(ctx, motifs, others, instances, cfg.UseCR, csp)
		}
		if uerr != nil {
			csp.End()
			return nil, uerr
		}
		scores := u.scores()

		q := make(candidateHeap, 0, len(motifs))
		for i, m := range motifs {
			q = append(q, scoredCandidate{cand: m, score: scores[i]})
		}
		heap.Init(&q)
		tau := cfg.DiversityTau
		if tau == 0 {
			tau = 0.01
		}
		var picked []classify.Shapelet
		var skipped []scoredCandidate
		for len(picked) < cfg.K && q.Len() > 0 {
			sc := heap.Pop(&q).(scoredCandidate)
			if tau > 0 && isNearDuplicate(sc.cand.Values, picked, tau) {
				skipped = append(skipped, sc)
				continue
			}
			picked = append(picked, classify.Shapelet{
				Class:  class,
				Values: sc.cand.Values,
				Score:  -sc.score, // expose "higher is better"
			})
		}
		// If diversity filtering starved the class, refill from the best
		// skipped candidates.
		for i := 0; len(picked) < cfg.K && i < len(skipped); i++ {
			picked = append(picked, classify.Shapelet{
				Class:  class,
				Values: skipped[i].cand.Values,
				Score:  -skipped[i].score,
			})
		}
		out = append(out, picked...)
		csp.SetInt("motifs", int64(len(motifs)))
		csp.SetInt("picked", int64(len(picked)))
		csp.End()
	}
	return out, nil
}

// isNearDuplicate reports whether the candidate is, under the Def. 4
// distance, within tau·variance of an already selected shapelet of the same
// class.
func isNearDuplicate(values ts.Series, picked []classify.Shapelet, tau float64) bool {
	_, std := ts.MeanStd(values)
	limit := tau * std * std
	if limit <= 0 {
		limit = 1e-9
	}
	for _, p := range picked {
		if ts.Dist(values, p.Values) < limit {
			return true
		}
	}
	return false
}
