// Package core implements the IPS pipeline itself: the three utility
// functions of Def. 11–13, the DT (distribution transformation) and CR
// (computation reuse) optimisations of §III-E, the top-k shapelet selection
// of Algorithm 4, and the end-to-end Discover/Fit/Evaluate entry points.
package core

import (
	"context"
	"math"

	"ips/internal/dabf"
	"ips/internal/dist"
	"ips/internal/errs"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/ts"
)

// utilityCheckEvery bounds the utility loops' cancellation latency: the
// context is polled once per this many outer-loop rows (each row is O(n·L²)
// work in the raw path), so ctx.Err's runtime mutex stays off the inner
// loops.
const utilityCheckEvery = 16

// sigmoid is the squashing function of Def. 11–13.
func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// standardise z-scores xs in place; a constant vector becomes all zeros.
// The paper feeds raw distance sums into the sigmoid; at realistic candidate
// counts those sums saturate the sigmoid to 1.0 for every candidate, so we
// standardise each utility's sums first.  The transformation is monotone per
// utility, preserving the ordering Def. 11–13 induce.
func standardise(xs []float64) {
	var mean float64
	for _, v := range xs {
		mean += v
	}
	n := float64(len(xs))
	if n == 0 {
		return
	}
	mean /= n
	var ss float64
	for _, v := range xs {
		d := v - mean
		ss += d * d
	}
	std := math.Sqrt(ss / n)
	if std < 1e-12 {
		for i := range xs {
			xs[i] = 0
		}
		return
	}
	for i := range xs {
		xs[i] = (xs[i] - mean) / std
	}
}

// utilities holds the three per-candidate utility sums for one class.
type utilities struct {
	intra []float64 // Def. 11: Σ dist to same-class motif candidates
	inter []float64 // Def. 12: Σ dist to other classes' motifs/discords
	dc    []float64 // Def. 13: Σ dist to same-class raw instances
}

// scores combines the utilities into Alg. 4 line 6's score
// u = Ũ_intra − Ũ_inter + Ũ_DC; smaller is better.
func (u *utilities) scores() []float64 {
	standardise(u.intra)
	standardise(u.inter)
	standardise(u.dc)
	out := make([]float64, len(u.intra))
	for i := range out {
		out[i] = sigmoid(u.intra[i]) - sigmoid(u.inter[i]) + sigmoid(u.dc[i])
	}
	return out
}

// rawUtilities computes the three utility sums for the motifs of class c
// using raw Def. 4 distances.  useCR enables computation reuse: each
// symmetric pairwise distance is computed once and credited to both
// endpoints; without it the loops recompute every pair from both sides,
// reproducing the cost the CR optimisation removes.  Each utility gets its
// own sub-span of sp; distance-evaluation counts are derived arithmetically
// so the loops themselves carry no instrumentation cost.  The context is
// polled every utilityCheckEvery rows; cancellation returns a nil utilities
// struct and an error matching errs.ErrCanceled.
func rawUtilities(ctx context.Context, motifs []ip.Candidate, others []ip.Candidate, instances []ts.Instance, useCR bool, sp *obs.Span) (*utilities, error) {
	n := len(motifs)
	u := &utilities{
		intra: make([]float64, n),
		inter: make([]float64, n),
		dc:    make([]float64, n),
	}
	dists := sp.Metrics().Counter("core.select.raw_dists")
	// All three utilities run on the batched engine: candidates and
	// instances are prepared once in a shared cache, and each pairwise
	// value is byte-identical to the ts.Dist it replaces.
	cache := dist.NewCache()
	var counts dist.Counts
	pair := func(a, b ts.Series) float64 {
		if len(a) < len(b) {
			a, b = b, a // prepare the longer side; the shorter one slides
		}
		return cache.Prepared(a, &counts).DistCounted(b, &counts)
	}
	intraSp := sp.Child("utility.intra")
	if useCR {
		// Intra: symmetric matrix, compute the upper triangle once.
		for i := 0; i < n; i++ {
			if i%utilityCheckEvery == 0 {
				if err := errs.Ctx(ctx, errs.StageSelection, "utility.intra"); err != nil {
					intraSp.End()
					return nil, err
				}
			}
			for j := i + 1; j < n; j++ {
				d := pair(motifs[i].Values, motifs[j].Values)
				u.intra[i] += d
				u.intra[j] += d
			}
		}
		dists.Add(int64(n) * int64(n-1) / 2)
	} else {
		for i := 0; i < n; i++ {
			if i%utilityCheckEvery == 0 {
				if err := errs.Ctx(ctx, errs.StageSelection, "utility.intra"); err != nil {
					intraSp.End()
					return nil, err
				}
			}
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				u.intra[i] += pair(motifs[i].Values, motifs[j].Values)
			}
		}
		dists.Add(int64(n) * int64(n-1))
	}
	intraSp.End()
	interSp := sp.Child("utility.inter")
	// Inter: each (motif, other) pair computed once; CR has nothing to
	// reuse here because the sums are one-sided.
	for i := 0; i < n; i++ {
		if i%utilityCheckEvery == 0 {
			if err := errs.Ctx(ctx, errs.StageSelection, "utility.inter"); err != nil {
				interSp.End()
				return nil, err
			}
		}
		for _, o := range others {
			u.inter[i] += pair(motifs[i].Values, o.Values)
		}
	}
	dists.Add(int64(n) * int64(len(others)))
	interSp.End()
	dcSp := sp.Child("utility.dc")
	// DC: instance-outer with one batch over the motifs, so every motif
	// shares each instance's sliding statistics.  dc[i] still accumulates
	// in instance order, preserving the original summation order exactly.
	motifValues := make([][]float64, n)
	for i, m := range motifs {
		motifValues[i] = m.Values
	}
	batch := dist.NewBatch(motifValues)
	col := make([]float64, n)
	for ii, in := range instances {
		if ii%utilityCheckEvery == 0 {
			if err := errs.Ctx(ctx, errs.StageSelection, "utility.dc"); err != nil {
				dcSp.End()
				return nil, err
			}
		}
		p := cache.Prepared(in.Values, &counts)
		if err := batch.EvalIntoCtx(ctx, p, col, &counts); err != nil {
			dcSp.End()
			return nil, err
		}
		for i := range col {
			u.dc[i] += col[i]
		}
	}
	dists.Add(int64(n) * int64(len(instances)))
	dcSp.End()
	counts.AddTo(sp.Metrics())
	return u, nil
}

// dtUtilities computes the utility sums through the DT optimisation
// (Formula 15/16): raw Def. 4 distances are replaced by distances in the
// class DABF's LSH projection space, the ‖LSH(Can_i) − LSH(Can_j)‖ lower
// bound of Formula 15.  Each candidate is hashed once (O(Dim·NumHashes))
// and every pairwise evaluation is then O(NumHashes) instead of O(L²).
// useCR additionally reuses the symmetric intra sums.  The context is polled
// every utilityCheckEvery rows, as in rawUtilities; the DT rows are far
// cheaper (O(NumHashes) per pair) so the latency bound is tighter here.
func dtUtilities(ctx context.Context, motifs []ip.Candidate, others []ip.Candidate, instances []ts.Instance,
	cf *dabf.ClassFilter, dim int, useCR bool, sp *obs.Span) (*utilities, error) {
	n := len(motifs)
	u := &utilities{
		intra: make([]float64, n),
		inter: make([]float64, n),
		dc:    make([]float64, n),
	}
	dists := sp.Metrics().Counter("core.select.dt_dists")
	// Hash everything once.
	hashSp := sp.Child("utility.hash")
	mb := make([][]float64, n)
	for i, m := range motifs {
		mb[i] = cf.ProjectValues(m.Values, dim)
	}
	ob := make([][]float64, len(others))
	for i, o := range others {
		ob[i] = cf.ProjectValues(o.Values, dim)
	}
	ib := make([][]float64, len(instances))
	for i, in := range instances {
		ib[i] = cf.ProjectValues(in.Values, dim)
	}
	sp.Metrics().Counter("core.select.hashes").Add(int64(n + len(others) + len(instances)))
	hashSp.End()
	if err := errs.Ctx(ctx, errs.StageSelection, "utility.hash"); err != nil {
		return nil, err
	}
	intraSp := sp.Child("utility.intra")
	if useCR {
		for i := 0; i < n; i++ {
			if i%utilityCheckEvery == 0 {
				if err := errs.Ctx(ctx, errs.StageSelection, "utility.intra"); err != nil {
					intraSp.End()
					return nil, err
				}
			}
			for j := i + 1; j < n; j++ {
				d := ts.EuclideanDist(mb[i], mb[j])
				u.intra[i] += d
				u.intra[j] += d
			}
		}
		dists.Add(int64(n) * int64(n-1) / 2)
	} else {
		for i := 0; i < n; i++ {
			if i%utilityCheckEvery == 0 {
				if err := errs.Ctx(ctx, errs.StageSelection, "utility.intra"); err != nil {
					intraSp.End()
					return nil, err
				}
			}
			for j := 0; j < n; j++ {
				if i != j {
					u.intra[i] += ts.EuclideanDist(mb[i], mb[j])
				}
			}
		}
		dists.Add(int64(n) * int64(n-1))
	}
	intraSp.End()
	interSp := sp.Child("utility.inter")
	for i := 0; i < n; i++ {
		if i%utilityCheckEvery == 0 {
			if err := errs.Ctx(ctx, errs.StageSelection, "utility.inter"); err != nil {
				interSp.End()
				return nil, err
			}
		}
		for _, b := range ob {
			u.inter[i] += ts.EuclideanDist(mb[i], b)
		}
	}
	dists.Add(int64(n) * int64(len(others)))
	interSp.End()
	dcSp := sp.Child("utility.dc")
	for i := 0; i < n; i++ {
		if i%utilityCheckEvery == 0 {
			if err := errs.Ctx(ctx, errs.StageSelection, "utility.dc"); err != nil {
				dcSp.End()
				return nil, err
			}
		}
		for _, b := range ib {
			u.dc[i] += ts.EuclideanDist(mb[i], b)
		}
	}
	dists.Add(int64(n) * int64(len(instances)))
	dcSp.End()
	return u, nil
}
