package core

// Ablation benchmarks for the design choices DESIGN.md calls out: the DABF
// versus naive pruning at growing pool sizes, the DT and CR optimisations
// individually, and sequential versus parallel candidate generation.

import (
	"context"
	"strconv"
	"testing"

	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/ts"
)

func ablationPool(b *testing.B, qn int) (*ip.Pool, *dabf.DABF, *ts.Dataset) {
	b.Helper()
	d := plantedDataset(10, 80, 2, 40)
	pool, err := ip.Generate(context.Background(), d, ip.Config{QN: qn, QS: 3, Seed: 41})
	if err != nil {
		b.Fatal(err)
	}
	filt, err := dabf.Build(pool, dabf.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	return pool, filt, d
}

func BenchmarkAblationPruneDABF(b *testing.B) {
	for _, qn := range []int{10, 40, 160} {
		b.Run(benchName("qn", qn), func(b *testing.B) {
			pool, filt, _ := ablationPool(b, qn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				dabf.Prune(pool, filt)
			}
		})
	}
}

func BenchmarkAblationPruneNaive(b *testing.B) {
	for _, qn := range []int{10, 40, 160} {
		b.Run(benchName("qn", qn), func(b *testing.B) {
			pool, filt, _ := ablationPool(b, qn)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := dabf.NaivePrune(context.Background(), pool, filt.Cfg.Dim, filt.Cfg.Sigma); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationSelection(b *testing.B) {
	cases := []struct {
		name  string
		useDT bool
		useCR bool
	}{
		{"raw", false, false},
		{"cr_only", false, true},
		{"dt_only", true, false},
		{"dt_cr", true, true},
	}
	pool, filt, d := ablationPool(b, 40)
	pruned, _ := dabf.Prune(pool, filt)
	for _, tc := range cases {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := SelectTopK(context.Background(), pruned, d, filt, SelectionConfig{K: 5, UseDT: tc.useDT, UseCR: tc.useCR}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkAblationWorkers(b *testing.B) {
	d := plantedDataset(12, 100, 2, 43)
	for _, workers := range []int{1, 2, 4} {
		b.Run(benchName("w", workers), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ip.Generate(context.Background(), d, ip.Config{QN: 20, QS: 3, Seed: 44, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func benchName(prefix string, v int) string {
	return prefix + "=" + strconv.Itoa(v)
}
