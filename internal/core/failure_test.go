package core

// Failure-injection tests: malformed, degenerate, and adversarial inputs
// must produce errors (or sensible results), never panics.

import (
	"context"
	"math"
	"testing"
	"time"

	"ips/internal/dabf"
	"ips/internal/faulty"
	"ips/internal/ip"
	"ips/internal/ts"
)

func TestDiscoverRejectsNaN(t *testing.T) {
	d := plantedDataset(6, 40, 2, 70)
	d.Instances[3].Values[10] = math.NaN()
	if _, err := Discover(context.Background(), d, smallOptions(71)); err == nil {
		t.Fatal("NaN data should be rejected")
	}
}

func TestDiscoverRejectsInf(t *testing.T) {
	d := plantedDataset(6, 40, 2, 72)
	d.Instances[0].Values[0] = math.Inf(1)
	if _, err := Discover(context.Background(), d, smallOptions(73)); err == nil {
		t.Fatal("Inf data should be rejected")
	}
}

func TestDiscoverSingleInstancePerClass(t *testing.T) {
	// One instance per class: Q_S sampling degenerates to single-instance
	// concatenations; the pipeline must still run or error cleanly.
	d := &ts.Dataset{}
	for c := 0; c < 2; c++ {
		vals := make(ts.Series, 40)
		for j := range vals {
			vals[j] = math.Sin(float64(j)/3 + float64(c)*2)
		}
		d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
	}
	res, err := Discover(context.Background(), d, smallOptions(74))
	if err != nil {
		t.Skipf("single-instance classes rejected (acceptable): %v", err)
	}
	if len(res.Shapelets) == 0 {
		t.Fatal("single-instance classes produced no shapelets without error")
	}
}

func TestDiscoverConstantSeries(t *testing.T) {
	// Constant series: z-normalisation treats them as all-equal; the
	// pipeline must not divide by zero or panic.
	d := &ts.Dataset{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			vals := make(ts.Series, 30)
			for j := range vals {
				vals[j] = float64(c * 10)
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	res, err := Discover(context.Background(), d, smallOptions(75))
	if err != nil {
		t.Skipf("constant series rejected (acceptable): %v", err)
	}
	for _, s := range res.Shapelets {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("constant input produced non-finite shapelet values")
			}
		}
	}
}

func TestDiscoverVeryShortSeries(t *testing.T) {
	// Series of length 5 with MinLength 4: exactly one usable length.
	d := &ts.Dataset{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 6; i++ {
			vals := ts.Series{float64(c), float64(c + i), float64(c * 2), float64(i), 1}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	if _, err := Discover(context.Background(), d, smallOptions(76)); err != nil {
		t.Logf("very short series rejected: %v (acceptable)", err)
	}
}

func TestFitScalerMismatchHandled(t *testing.T) {
	// Model.Predict on a dataset with a different series length works: the
	// shapelet transform slides the shapelet, so any length >= shapelet
	// length is valid.
	train := plantedDataset(8, 60, 2, 77)
	model, err := Fit(context.Background(), train, smallOptions(78))
	if err != nil {
		t.Fatal(err)
	}
	longer := plantedDataset(4, 90, 2, 79)
	pred, err := model.Predict(context.Background(), longer)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != longer.Len() {
		t.Fatalf("pred len = %d", len(pred))
	}
}

func TestSelectTopKEmptyPool(t *testing.T) {
	d := plantedDataset(4, 40, 2, 80)
	empty := &ip.Pool{ByClass: map[int][]ip.Candidate{}}
	if sh, err := SelectTopK(context.Background(), empty, d, nil, SelectionConfig{K: 5}); err != nil || len(sh) != 0 {
		t.Fatalf("empty pool selected %d shapelets", len(sh))
	}
}

// TestFailureMatrix drives every faulty injector through the package-level
// pipeline stages (the public entry points get the same treatment from
// internal/faulty's own suite).  Contract per cell: no panic, no goroutine
// leak, and any error is typed; WantErr faults must be rejected.
func TestFailureMatrix(t *testing.T) {
	clean := faulty.Planted(8, 60, 2, 83)
	stages := map[string]func(d *ts.Dataset) error{
		"discover": func(d *ts.Dataset) error {
			_, err := Discover(context.Background(), d, smallOptions(84))
			return err
		},
		"fit": func(d *ts.Dataset) error {
			_, err := Fit(context.Background(), d, smallOptions(85))
			return err
		},
		"evaluate": func(d *ts.Dataset) error {
			_, _, err := Evaluate(context.Background(), d, clean, smallOptions(86))
			return err
		},
	}
	lc := faulty.NewLeakCheck()
	for _, fault := range faulty.Faults() {
		fault := fault
		t.Run(fault.Name, func(t *testing.T) {
			corrupted := fault.Apply(clean)
			for op, run := range stages {
				err := func() (err error) {
					defer func() {
						if r := recover(); r != nil {
							t.Fatalf("%s/%s: panic: %v", fault.Name, op, r)
						}
					}()
					return run(corrupted)
				}()
				if fault.WantErr && err == nil {
					t.Errorf("%s/%s: corrupted input accepted without error", fault.Name, op)
				}
				if msg := faulty.CheckTyped(err); msg != "" {
					t.Errorf("%s/%s: %s", fault.Name, op, msg)
				}
			}
		})
	}
	if msg := lc.Done(5 * time.Second); msg != "" {
		t.Fatal(msg)
	}
}

// TestDiscoverCancellationStorm cancels the whole discovery pipeline at 100
// sweep points; every run must end in nil or a typed ErrCanceled with all
// worker pools drained.  Under -race this exercises the candidate-gen,
// pruning, and selection drain paths in one pass.
func TestDiscoverCancellationStorm(t *testing.T) {
	d := faulty.Planted(8, 80, 2, 87)
	t0 := time.Now()
	if _, err := Discover(context.Background(), d, smallOptions(88)); err != nil {
		t.Fatal(err)
	}
	span := time.Since(t0) + time.Millisecond
	if msg := faulty.Storm(100, span, func(ctx context.Context) error {
		_, err := Discover(ctx, d, smallOptions(88))
		return err
	}); msg != "" {
		t.Fatal(msg)
	}
}

func TestDiscoverManyClasses(t *testing.T) {
	// 8 classes with 3 instances each: stresses per-class DABF construction
	// with tiny pools.
	d := plantedDataset(3, 48, 8, 81)
	opt := Options{
		IP:   ip.Config{QN: 3, QS: 2, LengthRatios: []float64{0.25}, Seed: 82},
		DABF: dabf.Config{Seed: 82},
		K:    2,
	}
	res, err := Discover(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	classesWithShapelets := map[int]bool{}
	for _, s := range res.Shapelets {
		classesWithShapelets[s.Class] = true
	}
	if len(classesWithShapelets) < 8 {
		t.Fatalf("only %d/8 classes have shapelets", len(classesWithShapelets))
	}
}
