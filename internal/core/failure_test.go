package core

// Failure-injection tests: malformed, degenerate, and adversarial inputs
// must produce errors (or sensible results), never panics.

import (
	"math"
	"testing"

	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/ts"
)

func TestDiscoverRejectsNaN(t *testing.T) {
	d := plantedDataset(6, 40, 2, 70)
	d.Instances[3].Values[10] = math.NaN()
	if _, err := Discover(d, smallOptions(71)); err == nil {
		t.Fatal("NaN data should be rejected")
	}
}

func TestDiscoverRejectsInf(t *testing.T) {
	d := plantedDataset(6, 40, 2, 72)
	d.Instances[0].Values[0] = math.Inf(1)
	if _, err := Discover(d, smallOptions(73)); err == nil {
		t.Fatal("Inf data should be rejected")
	}
}

func TestDiscoverSingleInstancePerClass(t *testing.T) {
	// One instance per class: Q_S sampling degenerates to single-instance
	// concatenations; the pipeline must still run or error cleanly.
	d := &ts.Dataset{}
	for c := 0; c < 2; c++ {
		vals := make(ts.Series, 40)
		for j := range vals {
			vals[j] = math.Sin(float64(j)/3 + float64(c)*2)
		}
		d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
	}
	res, err := Discover(d, smallOptions(74))
	if err != nil {
		t.Skipf("single-instance classes rejected (acceptable): %v", err)
	}
	if len(res.Shapelets) == 0 {
		t.Fatal("single-instance classes produced no shapelets without error")
	}
}

func TestDiscoverConstantSeries(t *testing.T) {
	// Constant series: z-normalisation treats them as all-equal; the
	// pipeline must not divide by zero or panic.
	d := &ts.Dataset{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			vals := make(ts.Series, 30)
			for j := range vals {
				vals[j] = float64(c * 10)
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	res, err := Discover(d, smallOptions(75))
	if err != nil {
		t.Skipf("constant series rejected (acceptable): %v", err)
	}
	for _, s := range res.Shapelets {
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatal("constant input produced non-finite shapelet values")
			}
		}
	}
}

func TestDiscoverVeryShortSeries(t *testing.T) {
	// Series of length 5 with MinLength 4: exactly one usable length.
	d := &ts.Dataset{}
	for c := 0; c < 2; c++ {
		for i := 0; i < 6; i++ {
			vals := ts.Series{float64(c), float64(c + i), float64(c * 2), float64(i), 1}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	if _, err := Discover(d, smallOptions(76)); err != nil {
		t.Logf("very short series rejected: %v (acceptable)", err)
	}
}

func TestFitScalerMismatchHandled(t *testing.T) {
	// Model.Predict on a dataset with a different series length works: the
	// shapelet transform slides the shapelet, so any length >= shapelet
	// length is valid.
	train := plantedDataset(8, 60, 2, 77)
	model, err := Fit(train, smallOptions(78))
	if err != nil {
		t.Fatal(err)
	}
	longer := plantedDataset(4, 90, 2, 79)
	pred := model.Predict(longer)
	if len(pred) != longer.Len() {
		t.Fatalf("pred len = %d", len(pred))
	}
}

func TestSelectTopKEmptyPool(t *testing.T) {
	d := plantedDataset(4, 40, 2, 80)
	empty := &ip.Pool{ByClass: map[int][]ip.Candidate{}}
	if sh := SelectTopK(empty, d, nil, SelectionConfig{K: 5}); len(sh) != 0 {
		t.Fatalf("empty pool selected %d shapelets", len(sh))
	}
}

func TestDiscoverManyClasses(t *testing.T) {
	// 8 classes with 3 instances each: stresses per-class DABF construction
	// with tiny pools.
	d := plantedDataset(3, 48, 8, 81)
	opt := Options{
		IP:   ip.Config{QN: 3, QS: 2, LengthRatios: []float64{0.25}, Seed: 82},
		DABF: dabf.Config{Seed: 82},
		K:    2,
	}
	res, err := Discover(d, opt)
	if err != nil {
		t.Fatal(err)
	}
	classesWithShapelets := map[int]bool{}
	for _, s := range res.Shapelets {
		classesWithShapelets[s.Class] = true
	}
	if len(classesWithShapelets) < 8 {
		t.Fatalf("only %d/8 classes have shapelets", len(classesWithShapelets))
	}
}
