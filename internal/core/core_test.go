package core

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ips/internal/dabf"
	"ips/internal/ip"
	"ips/internal/ts"
	"ips/internal/ucr"
)

// plantedDataset builds a dataset where each class carries its own clear
// pattern; shapelet discovery should recover them and classify well.
func plantedDataset(nPerClass, length, classes int, seed int64) *ts.Dataset {
	rng := rand.New(rand.NewSource(seed))
	patterns := make([][]float64, classes)
	pl := length / 4
	for c := range patterns {
		p := make([]float64, pl)
		for i := range p {
			p[i] = 4 * math.Sin(float64(i)*math.Pi/float64(pl)+float64(c)*2)
		}
		patterns[c] = p
	}
	d := &ts.Dataset{Name: "planted"}
	for c := 0; c < classes; c++ {
		for i := 0; i < nPerClass; i++ {
			vals := make(ts.Series, length)
			for j := range vals {
				vals[j] = 0.3 * rng.NormFloat64()
			}
			at := rng.Intn(length - pl)
			for j, pv := range patterns[c] {
				vals[at+j] += pv
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	return d
}

func smallOptions(seed int64) Options {
	return Options{
		IP:   ip.Config{QN: 5, QS: 3, LengthRatios: []float64{0.2, 0.3}, Seed: seed},
		DABF: dabf.Config{Seed: seed},
		K:    3,
	}
}

func TestSigmoid(t *testing.T) {
	if sigmoid(0) != 0.5 {
		t.Fatalf("sigmoid(0) = %v", sigmoid(0))
	}
	if sigmoid(100) < 0.999 || sigmoid(-100) > 0.001 {
		t.Fatal("sigmoid tails wrong")
	}
}

func TestStandardise(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	standardise(xs)
	var mean float64
	for _, v := range xs {
		mean += v
	}
	if math.Abs(mean) > 1e-9 {
		t.Fatalf("standardised mean = %v", mean)
	}
	// Constant vector → zeros, empty → no panic.
	c := []float64{7, 7, 7}
	standardise(c)
	for _, v := range c {
		if v != 0 {
			t.Fatalf("constant standardise = %v", c)
		}
	}
	standardise(nil)
}

func TestRawUtilitiesCRMatchesNoCR(t *testing.T) {
	d := plantedDataset(6, 60, 2, 1)
	pool, err := ip.Generate(context.Background(), d, ip.Config{QN: 4, QS: 2, LengthRatios: []float64{0.25}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	motifs := pool.Motifs(0)
	others := pool.ByClass[1]
	instances := d.ByClass()[0]
	ctx := context.Background()
	withCR, err := rawUtilities(ctx, motifs, others, instances, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := rawUtilities(ctx, motifs, others, instances, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withCR.intra {
		if math.Abs(withCR.intra[i]-without.intra[i]) > 1e-9 {
			t.Fatalf("intra[%d]: CR %v vs no-CR %v", i, withCR.intra[i], without.intra[i])
		}
		if math.Abs(withCR.inter[i]-without.inter[i]) > 1e-9 {
			t.Fatalf("inter[%d] differs", i)
		}
		if math.Abs(withCR.dc[i]-without.dc[i]) > 1e-9 {
			t.Fatalf("dc[%d] differs", i)
		}
	}
}

func TestDTUtilitiesCRMatchesNoCR(t *testing.T) {
	d := plantedDataset(6, 60, 2, 3)
	pool, err := ip.Generate(context.Background(), d, ip.Config{QN: 4, QS: 2, LengthRatios: []float64{0.25}, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	filt, err := dabf.Build(pool, dabf.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	motifs := pool.Motifs(0)
	others := pool.ByClass[1]
	instances := d.ByClass()[0]
	cf := filt.PerClass[0]
	ctx := context.Background()
	withCR, err := dtUtilities(ctx, motifs, others, instances, cf, filt.Cfg.Dim, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	without, err := dtUtilities(ctx, motifs, others, instances, cf, filt.Cfg.Dim, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := range withCR.intra {
		if withCR.intra[i] != without.intra[i] || withCR.inter[i] != without.inter[i] || withCR.dc[i] != without.dc[i] {
			t.Fatalf("DT utilities differ at %d", i)
		}
	}
}

func TestUtilityScoresOrdering(t *testing.T) {
	// A candidate identical to its class and far from others should score
	// lower (better) than an outlier candidate.
	base := make(ts.Series, 20)
	for i := range base {
		base[i] = math.Sin(float64(i) / 2)
	}
	outlier := make(ts.Series, 20)
	for i := range outlier {
		outlier[i] = 50 + 10*math.Cos(float64(i))
	}
	motifs := []ip.Candidate{
		{Class: 0, Kind: ip.Motif, Values: base},
		{Class: 0, Kind: ip.Motif, Values: base.Clone()},
		{Class: 0, Kind: ip.Motif, Values: outlier},
	}
	var others []ip.Candidate
	for i := 0; i < 4; i++ {
		v := outlier.Clone()
		v[0] += float64(i)
		others = append(others, ip.Candidate{Class: 1, Kind: ip.Motif, Values: v})
	}
	instances := []ts.Instance{{Values: base.Clone(), Label: 0}}
	u, err := rawUtilities(context.Background(), motifs, others, instances, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	scores := u.scores()
	if scores[0] >= scores[2] {
		t.Fatalf("good candidate score %v should beat outlier score %v", scores[0], scores[2])
	}
}

func TestSelectTopKCounts(t *testing.T) {
	d := plantedDataset(8, 80, 3, 6)
	pool, err := ip.Generate(context.Background(), d, ip.Config{QN: 6, QS: 3, LengthRatios: []float64{0.2}, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sh, err := SelectTopK(context.Background(), pool, d, nil, SelectionConfig{K: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) != 6 { // 2 per class × 3 classes
		t.Fatalf("shapelets = %d, want 6", len(sh))
	}
	perClass := map[int]int{}
	for _, s := range sh {
		perClass[s.Class]++
		if len(s.Values) == 0 {
			t.Fatal("empty shapelet values")
		}
	}
	for c, n := range perClass {
		if n != 2 {
			t.Fatalf("class %d has %d shapelets", c, n)
		}
	}
	// K larger than the pool returns everything available.
	sh, err = SelectTopK(context.Background(), pool, d, nil, SelectionConfig{K: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) != pool.Size()/2 { // half the pool are motifs
		t.Fatalf("oversized K returned %d, want %d", len(sh), pool.Size()/2)
	}
	// Default K kicks in.
	sh, err = SelectTopK(context.Background(), pool, d, nil, SelectionConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sh) == 0 {
		t.Fatal("default K selected nothing")
	}
}

func TestDiscoverEndToEnd(t *testing.T) {
	d := plantedDataset(10, 80, 2, 8)
	res, err := Discover(context.Background(), d, smallOptions(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Shapelets) == 0 || res.PoolSize == 0 {
		t.Fatalf("result = %+v", res)
	}
	if res.PrunedSize > res.PoolSize {
		t.Fatal("pruning grew the pool")
	}
	if res.Timings.Total() <= 0 {
		t.Fatal("timings not recorded")
	}
	if len(res.FitsByClass) != 2 {
		t.Fatalf("fits per class = %v", res.FitsByClass)
	}
	// Per-class shapelet counts respect K.
	perClass := map[int]int{}
	for _, s := range res.Shapelets {
		perClass[s.Class]++
	}
	for c, n := range perClass {
		if n > 3 {
			t.Fatalf("class %d has %d > K shapelets", c, n)
		}
	}
}

func TestDiscoverWithoutDABF(t *testing.T) {
	d := plantedDataset(8, 60, 2, 10)
	opt := smallOptions(11)
	opt.DisableDABF = true
	res, err := Discover(context.Background(), d, opt)
	if err != nil {
		t.Fatal(err)
	}
	if res.DABF != nil {
		t.Fatal("DABF should be nil when disabled")
	}
	if len(res.Shapelets) == 0 {
		t.Fatal("no shapelets without DABF")
	}
}

func TestDiscoverErrors(t *testing.T) {
	if _, err := Discover(context.Background(), &ts.Dataset{}, Options{}); err == nil {
		t.Fatal("empty dataset should error")
	}
	oneClass := plantedDataset(5, 40, 1, 12)
	if _, err := Discover(context.Background(), oneClass, smallOptions(13)); err == nil {
		t.Fatal("one-class dataset should error")
	}
}

func TestFitPredictAccuracy(t *testing.T) {
	train := plantedDataset(12, 80, 2, 14)
	test := plantedDataset(12, 80, 2, 15)
	acc, m, err := Evaluate(context.Background(), train, test, smallOptions(16))
	if err != nil {
		t.Fatal(err)
	}
	if acc < 80 {
		t.Fatalf("accuracy on planted data = %v%%", acc)
	}
	if m == nil || m.SVM == nil || m.Scaler == nil {
		t.Fatal("model incomplete")
	}
	// Predict shape.
	pred, err := m.Predict(context.Background(), test)
	if err != nil {
		t.Fatal(err)
	}
	if len(pred) != test.Len() {
		t.Fatalf("pred len = %d", len(pred))
	}
}

func TestDTvsRawAccuracyComparable(t *testing.T) {
	// Fig. 10(c): accuracy with and without DT&CR should be similar.
	train := plantedDataset(10, 60, 2, 17)
	test := plantedDataset(10, 60, 2, 18)
	opt := smallOptions(19)
	accDT, _, err := Evaluate(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.DisableDT = true
	opt.DisableCR = true
	accRaw, _, err := Evaluate(context.Background(), train, test, opt)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(accDT-accRaw) > 35 {
		t.Fatalf("DT accuracy %v vs raw %v diverge wildly", accDT, accRaw)
	}
}

func TestDiscoverOnGeneratedUCR(t *testing.T) {
	m, err := ucr.Find("ItalyPowerDemand")
	if err != nil {
		t.Fatal(err)
	}
	train, test := ucr.Generate(m, ucr.GenConfig{MaxTest: 100, Seed: 20})
	// Mean of three runs, matching the paper's multi-run protocol.
	var sum float64
	for _, seed := range []int64{1, 2, 3} {
		opt := Options{
			IP:   ip.Config{QN: 10, QS: 3, Seed: seed},
			DABF: dabf.Config{Seed: seed},
			K:    5,
		}
		acc, _, err := Evaluate(context.Background(), train, test, opt)
		if err != nil {
			t.Fatal(err)
		}
		sum += acc
	}
	if mean := sum / 3; mean < 70 {
		t.Fatalf("IPS mean accuracy on generated ItalyPowerDemand = %v%%", mean)
	}
}

func TestDiscoverDeterministic(t *testing.T) {
	d := plantedDataset(8, 60, 2, 22)
	r1, err := Discover(context.Background(), d, smallOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Discover(context.Background(), d, smallOptions(23))
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Shapelets) != len(r2.Shapelets) {
		t.Fatal("shapelet counts differ across identical runs")
	}
	for i := range r1.Shapelets {
		a, b := r1.Shapelets[i], r2.Shapelets[i]
		if a.Class != b.Class || len(a.Values) != len(b.Values) {
			t.Fatal("shapelets differ across identical runs")
		}
		for j := range a.Values {
			if a.Values[j] != b.Values[j] {
				t.Fatal("shapelet values differ across identical runs")
			}
		}
	}
}
