package core

import (
	"context"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"ips/internal/classify"
	"ips/internal/mp"
	"ips/internal/obs"
)

// TestWorkerPoolRaceWorkers8 exercises the full fan-out surface at
// Workers=8 — candidate generation, the shapelet transform, and concurrent
// observability (spans, metrics, progress callbacks) — with two pipelines
// running at once.  Its job is to give the race detector maximal
// interleaving to bite on: under `go test -race` (the CI configuration) any
// unsynchronized access in the worker pools or the obs plumbing fails the
// run.  It also re-checks that the heavily parallel run is bit-identical to
// the sequential one, the determinism contract ipslint's analyzers guard.
func TestWorkerPoolRaceWorkers8(t *testing.T) {
	train := plantedDataset(12, 64, 3, 11)

	run := func(workers int) ([]classify.Shapelet, [][]float64) {
		o := obs.New("race")
		var progressMu sync.Mutex
		seen := map[string]int{}
		o.OnProgress(func(stage string, done, total int) {
			// A locking sink makes the callback itself race-visible work.
			progressMu.Lock()
			seen[stage]++
			progressMu.Unlock()
		})
		opt := smallOptions(11)
		opt.Workers = workers
		opt.Obs = o
		res, err := Discover(context.Background(), train, opt)
		if err != nil {
			t.Errorf("workers=%d: %v", workers, err)
			return nil, nil
		}
		X := classify.TransformSpan(train, res.Shapelets, workers, o.Root().Child("transform"))
		o.Finish()
		return res.Shapelets, X
	}

	// Two concurrent Workers=8 pipelines plus one sequential reference.
	var wg sync.WaitGroup
	results := make([][]classify.Shapelet, 2)
	features := make([][][]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], features[i] = run(8)
		}(i)
	}
	wg.Wait()
	refShapelets, refFeatures := run(1)

	for i := 0; i < 2; i++ {
		if !reflect.DeepEqual(results[i], refShapelets) {
			t.Fatalf("run %d: Workers=8 shapelets differ from sequential reference", i)
		}
		if !reflect.DeepEqual(features[i], refFeatures) {
			t.Fatalf("run %d: Workers=8 features differ from sequential reference", i)
		}
	}
}

// TestKernelDeterminismAtGOMAXPROCS pins the end-to-end determinism
// contract at the machine's own parallelism: a Discover run and a raw STOMP
// self-join at Workers=GOMAXPROCS must be identical — byte-identical for
// the kernel — to the sequential reference, whatever hardware CI lands on.
func TestKernelDeterminismAtGOMAXPROCS(t *testing.T) {
	workers := runtime.GOMAXPROCS(0)
	if workers < 2 {
		workers = 2 // still exercise the pooled path on single-core machines
	}

	// Raw kernel: byte-identical profile.
	series := make([]float64, 600)
	v := 0.0
	for i := range series {
		// Deterministic pseudo-walk without seeding a global rng.
		v += math.Sin(float64(i)*0.7) + math.Cos(float64(i*i)*0.13)
		series[i] = v
	}
	ref := mp.SelfJoinOpts(series, 24, nil, mp.Options{Workers: 1})
	got := mp.SelfJoinOpts(series, 24, nil, mp.Options{Workers: workers})
	for i := range ref.P {
		if math.Float64bits(got.P[i]) != math.Float64bits(ref.P[i]) || got.I[i] != ref.I[i] {
			t.Fatalf("workers=%d: kernel (P[%d],I[%d]) = (%v,%d), want (%v,%d)",
				workers, i, i, got.P[i], got.I[i], ref.P[i], ref.I[i])
		}
	}

	// Full pipeline: identical shapelets.
	train := plantedDataset(10, 64, 2, 17)
	run := func(w int) []classify.Shapelet {
		opt := smallOptions(17)
		opt.Workers = w
		res, err := Discover(context.Background(), train, opt)
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		return res.Shapelets
	}
	if !reflect.DeepEqual(run(workers), run(1)) {
		t.Fatalf("Workers=%d shapelets differ from sequential reference", workers)
	}
}
