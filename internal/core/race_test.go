package core

import (
	"reflect"
	"sync"
	"testing"

	"ips/internal/classify"
	"ips/internal/obs"
)

// TestWorkerPoolRaceWorkers8 exercises the full fan-out surface at
// Workers=8 — candidate generation, the shapelet transform, and concurrent
// observability (spans, metrics, progress callbacks) — with two pipelines
// running at once.  Its job is to give the race detector maximal
// interleaving to bite on: under `go test -race` (the CI configuration) any
// unsynchronized access in the worker pools or the obs plumbing fails the
// run.  It also re-checks that the heavily parallel run is bit-identical to
// the sequential one, the determinism contract ipslint's analyzers guard.
func TestWorkerPoolRaceWorkers8(t *testing.T) {
	train := plantedDataset(12, 64, 3, 11)

	run := func(workers int) ([]classify.Shapelet, [][]float64) {
		o := obs.New("race")
		var progressMu sync.Mutex
		seen := map[string]int{}
		o.OnProgress(func(stage string, done, total int) {
			// A locking sink makes the callback itself race-visible work.
			progressMu.Lock()
			seen[stage]++
			progressMu.Unlock()
		})
		opt := smallOptions(11)
		opt.Workers = workers
		opt.Obs = o
		res, err := Discover(train, opt)
		if err != nil {
			t.Errorf("workers=%d: %v", workers, err)
			return nil, nil
		}
		X := classify.TransformSpan(train, res.Shapelets, workers, o.Root().Child("transform"))
		o.Finish()
		return res.Shapelets, X
	}

	// Two concurrent Workers=8 pipelines plus one sequential reference.
	var wg sync.WaitGroup
	results := make([][]classify.Shapelet, 2)
	features := make([][][]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], features[i] = run(8)
		}(i)
	}
	wg.Wait()
	refShapelets, refFeatures := run(1)

	for i := 0; i < 2; i++ {
		if !reflect.DeepEqual(results[i], refShapelets) {
			t.Fatalf("run %d: Workers=8 shapelets differ from sequential reference", i)
		}
		if !reflect.DeepEqual(features[i], refFeatures) {
			t.Fatalf("run %d: Workers=8 features differ from sequential reference", i)
		}
	}
}
