package core

import (
	"context"
	"testing"

	"ips/internal/ts"
)

func TestCrossValidateStratified(t *testing.T) {
	d := plantedDataset(12, 50, 2, 110)
	res, err := CrossValidate(context.Background(), d, smallOptions(111), 4, 112)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.FoldAccuracies) != 4 {
		t.Fatalf("folds = %d", len(res.FoldAccuracies))
	}
	if res.Mean < 70 {
		t.Fatalf("CV mean = %v%%", res.Mean)
	}
	if res.Std < 0 {
		t.Fatalf("CV std = %v", res.Std)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	d := plantedDataset(6, 40, 2, 113)
	if _, err := CrossValidate(context.Background(), d, smallOptions(114), 1, 115); err == nil {
		t.Fatal("1 fold should error")
	}
	if _, err := CrossValidate(context.Background(), &ts.Dataset{}, smallOptions(116), 3, 117); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestCrossValidateDeterministic(t *testing.T) {
	d := plantedDataset(10, 40, 2, 118)
	r1, err := CrossValidate(context.Background(), d, smallOptions(119), 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := CrossValidate(context.Background(), d, smallOptions(119), 3, 120)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.FoldAccuracies {
		if r1.FoldAccuracies[i] != r2.FoldAccuracies[i] {
			t.Fatal("same seed should reproduce identical folds")
		}
	}
}
