// Package ip implements the instance profile (Def. 8/9 of the IPS paper) and
// the shapelet candidate generation of Algorithm 1: per class, Q_N bagging
// samples of Q_S randomly chosen instances are concatenated, the instance
// profile is computed with boundary-spanning subsequences masked out, and the
// motif (profile minimum) and discord (profile maximum) of every candidate
// length join the candidate pool.
package ip

import (
	"context"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"ips/internal/errs"
	"ips/internal/mp"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Kind distinguishes motif candidates from discord candidates.
type Kind int

const (
	// Motif marks a candidate drawn from an instance-profile minimum; only
	// motifs can become final shapelets (§III-A).
	Motif Kind = iota
	// Discord marks a candidate drawn from an instance-profile maximum;
	// discords participate in the inter-class utility (Def. 12).
	Discord
)

// String returns "motif" or "discord".
func (k Kind) String() string {
	if k == Motif {
		return "motif"
	}
	return "discord"
}

// Candidate is one shapelet candidate: a subsequence extracted from a class
// sample, tagged with its origin.
type Candidate struct {
	Class  int
	Kind   Kind
	Values ts.Series
	// Sample records which of the Q_N bagging samples produced the
	// candidate, Start its offset within that sample's concatenation.
	Sample int
	Start  int
}

// Pool is the per-class candidate pool Φ of Algorithm 1.
type Pool struct {
	ByClass map[int][]Candidate
}

// Classes returns the classes present in the pool in ascending order, so
// downstream per-class iteration (dabf pruning, selection) is deterministic.
func (p *Pool) Classes() []int {
	out := make([]int, 0, len(p.ByClass))
	for c := range p.ByClass {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}

// Size returns the total number of candidates across all classes.
func (p *Pool) Size() int {
	n := 0
	for _, cs := range p.ByClass {
		n += len(cs)
	}
	return n
}

// Motifs returns the motif candidates of class c.
func (p *Pool) Motifs(c int) []Candidate {
	return p.filter(c, Motif)
}

// Discords returns the discord candidates of class c.
func (p *Pool) Discords(c int) []Candidate {
	return p.filter(c, Discord)
}

func (p *Pool) filter(c int, k Kind) []Candidate {
	var out []Candidate
	for _, cand := range p.ByClass[c] {
		if cand.Kind == k {
			out = append(out, cand)
		}
	}
	return out
}

// Config parameterises Generate (Algorithm 1).
type Config struct {
	// QN is the number of bagging samples per class (paper: {10,20,50,100}).
	QN int
	// QS is the number of instances per sample (paper: {2,3,4,5,10}).
	QS int
	// LengthRatios are candidate lengths as fractions of the instance
	// length (paper: {0.1, 0.2, 0.3, 0.4, 0.5}).
	LengthRatios []float64
	// MinLength floors the absolute candidate length (default 4).
	MinLength int
	// Seed drives the sampling; runs are deterministic given a seed.
	Seed int64
	// Workers sets the number of goroutines computing instance profiles
	// (<=1 means sequential).  When there are fewer profile jobs than
	// workers, the spare parallelism drops into the diagonal-tiled STOMP
	// kernel instead (see mp.SelfJoinOpts).  The sampling itself stays
	// sequential and the kernel is byte-identical for any worker count, so
	// the candidate pool is identical however the work is split — this is
	// the shared-memory form of the distributed discovery the paper lists
	// as future work.
	Workers int
}

// Defaults fills zero-valued fields with the paper's defaults.
func (c Config) Defaults() Config {
	if c.QN <= 0 {
		c.QN = 10
	}
	if c.QS <= 0 {
		c.QS = 3
	}
	if len(c.LengthRatios) == 0 {
		c.LengthRatios = []float64{0.1, 0.2, 0.3, 0.4, 0.5}
	}
	if c.MinLength <= 0 {
		c.MinLength = 4
	}
	return c
}

// InstanceProfile computes IP(D_C, L) of Def. 8 over the given instances:
// the matrix profile of their concatenation with subsequences spanning
// instance boundaries excluded.  It returns the profile and the
// concatenated series it annotates.
func InstanceProfile(ins []ts.Instance, L int) (*mp.Profile, ts.Series) {
	return InstanceProfileOpts(ins, L, mp.Options{})
}

// InstanceProfileOpts is InstanceProfile with an explicit kernel
// configuration: opt.Workers parallelises the underlying STOMP self-join
// over diagonal tiles (the profile is byte-identical for any worker
// count), and opt.Span receives the kernel's spans.
func InstanceProfileOpts(ins []ts.Instance, L int, opt mp.Options) (*mp.Profile, ts.Series) {
	cat, starts := ts.ConcatenateInstances(ins)
	valid := ts.BoundaryMask(starts, len(cat), L)
	return mp.SelfJoinOpts(cat, L, valid, opt), cat
}

// Lengths converts the configured ratios into absolute candidate lengths for
// instances of length n, deduplicated and floored at MinLength.  A length
// that would exceed n — which happens exactly when the series is shorter
// than the smallest candidate length MinLength — is dropped rather than
// clamped, so a too-short series yields nil and Generate reports the class
// as a typed bad-input error instead of manufacturing a degenerate
// whole-series candidate.
func (c Config) Lengths(n int) []int {
	if n < 1 {
		return nil
	}
	c = c.Defaults()
	seen := map[int]bool{}
	var out []int
	for _, r := range c.LengthRatios {
		l := int(r * float64(n))
		if l < c.MinLength {
			l = c.MinLength
		}
		if l > n || l < 1 {
			continue
		}
		if !seen[l] {
			seen[l] = true
			out = append(out, l)
		}
	}
	return out
}

// job is one (class, sample, length) instance-profile computation.
type job struct {
	class  int
	sample int
	length int
	cat    ts.Series
	starts []int
}

// Generate runs Algorithm 1 and returns the candidate pool Φ.  The sampling
// is sequential and seeded; the per-sample instance-profile computations fan
// out over cfg.Workers goroutines, producing an identical pool for any
// worker count.
//
//ips:blocking
func Generate(ctx context.Context, d *ts.Dataset, cfg Config) (*Pool, error) {
	return GenerateSpan(ctx, d, cfg, nil)
}

// GenerateSpan is Generate with observability: sub-spans for per-class
// sampling and the profile fan-out, per-length and per-class candidate
// counters, worker-utilisation gauges, and streamed per-job progress hang
// off sp.  A nil span disables all of it at the cost of a pointer check;
// the candidate pool is identical either way.
//
// Cancellation is cooperative at instance-profile-job granularity (and,
// inside each job, at the STOMP kernel's tile granularity): once ctx is
// done the fan-out drains its remaining jobs without computing them and
// GenerateSpan returns a nil pool with an error matching errs.ErrCanceled.
//
//ips:blocking
func GenerateSpan(ctx context.Context, d *ts.Dataset, cfg Config, sp *obs.Span) (*Pool, error) {
	cfg = cfg.Defaults()
	if d == nil {
		return nil, errs.BadInput(errs.StageCandidateGen, "ip.generate", "", "nil dataset")
	}
	if err := d.Validate(false); err != nil {
		return nil, errs.BadInputErr(errs.StageCandidateGen, "ip.generate", d.Name, err)
	}
	byClass := d.ByClass()
	classes := d.Classes()

	// Phase 1 (sequential): draw every sample so the rng stream — and with
	// it the pool — is independent of scheduling.
	rng := rand.New(rand.NewSource(cfg.Seed))
	var jobs []job
	for _, class := range classes {
		ins := byClass[class]
		if len(ins) == 0 {
			continue
		}
		ssp := sp.Child("sample.class-" + strconv.Itoa(class))
		lengths := cfg.Lengths(len(ins[0].Values))
		if len(lengths) == 0 {
			ssp.End()
			return nil, errs.BadInput(errs.StageCandidateGen, "ip.generate", d.Name,
				"class %d: series length %d admits no candidate length", class, len(ins[0].Values))
		}
		for s := 0; s < cfg.QN; s++ {
			sample := ts.Sample(ins, cfg.QS, rng)
			cat, starts := ts.ConcatenateInstances(sample)
			for _, L := range lengths {
				jobs = append(jobs, job{class: class, sample: s, length: L, cat: cat, starts: starts})
			}
		}
		ssp.SetInt("samples", int64(cfg.QN))
		ssp.SetInt("lengths", int64(len(lengths)))
		ssp.End()
	}

	// Phase 2 (parallel): compute the instance profile of each job and
	// extract its motif and discord into a per-job slot.  The fan-out is
	// two-level: jobs spread across cfg.Workers goroutines, and when there
	// are fewer jobs than workers the spare parallelism moves down into the
	// STOMP kernel itself (diagonal tiles), so a handful of large profiles
	// still saturates the machine.  Either way the pool is identical: the
	// kernel is byte-identical for any worker count, and the sampling above
	// already fixed the rng stream.
	kernelWorkers := 1
	if cfg.Workers > 1 && len(jobs) > 0 && len(jobs) < cfg.Workers {
		kernelWorkers = (cfg.Workers + len(jobs) - 1) / len(jobs)
	}
	obs.Log(ctx).Debug("profile fan-out scheduled",
		"op", "ip.generate", "dataset", d.Name, "jobs", len(jobs),
		"workers", cfg.Workers, "kernel_workers", kernelWorkers)
	psp := sp.Child("profiles")
	psp.SetInt("jobs", int64(len(jobs)))
	psp.SetInt("kernel_workers", int64(kernelWorkers))
	var done atomic.Int64
	results := make([][]Candidate, len(jobs))
	run := func(ji int) {
		j := jobs[ji]
		valid := ts.BoundaryMask(j.starts, len(j.cat), j.length)
		prof, err := mp.SelfJoinCtx(ctx, j.cat, j.length, valid, mp.Options{Workers: kernelWorkers})
		if err != nil {
			return // cancelled mid-join; the post-fan-out ctx check reports it
		}
		if prof.Len() == 0 {
			return
		}
		if idx, _ := prof.MinIndex(); idx >= 0 {
			results[ji] = append(results[ji], Candidate{
				Class:  j.class,
				Kind:   Motif,
				Values: j.cat[idx : idx+j.length].Clone(),
				Sample: j.sample,
				Start:  idx,
			})
		}
		if idx, _ := prof.MaxIndex(); idx >= 0 {
			results[ji] = append(results[ji], Candidate{
				Class:  j.class,
				Kind:   Discord,
				Values: j.cat[idx : idx+j.length].Clone(),
				Sample: j.sample,
				Start:  idx,
			})
		}
	}
	if cfg.Workers > 1 {
		psp.SetInt("workers", int64(cfg.Workers))
		perWorker := make([]int64, cfg.Workers)
		var wg sync.WaitGroup
		ch := make(chan int)
		for w := 0; w < cfg.Workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for ji := range ch {
					if ctx.Err() != nil {
						continue // drain without working so the producer never blocks
					}
					run(ji)
					perWorker[w]++
					psp.Progress(int(done.Add(1)), len(jobs))
				}
			}(w)
		}
		for ji := range jobs {
			ch <- ji
		}
		close(ch)
		wg.Wait()
		// Worker utilisation: jobs handled per goroutine.  With a shared
		// unbuffered channel this stays near-uniform unless one profile
		// dominates.
		if m := sp.Metrics(); m != nil {
			for w, n := range perWorker {
				m.Gauge(fmt.Sprintf("ip.worker_jobs.w%d", w)).Set(float64(n))
			}
			psp.SetString("worker_jobs", fmt.Sprint(perWorker))
		}
	} else {
		for ji := range jobs {
			if ctx.Err() != nil {
				break
			}
			run(ji)
			psp.Progress(int(done.Add(1)), len(jobs))
		}
	}
	psp.End()
	if err := errs.Ctx(ctx, errs.StageCandidateGen, "ip.generate"); err != nil {
		return nil, err
	}

	// Phase 3: assemble in job order (class, sample, length).
	pool := &Pool{ByClass: map[int][]Candidate{}}
	byLength := map[int]int64{}
	for ji, cands := range results {
		pool.ByClass[jobs[ji].class] = append(pool.ByClass[jobs[ji].class], cands...)
		byLength[jobs[ji].length] += int64(len(cands))
	}
	if m := sp.Metrics(); m != nil {
		for L, n := range byLength {
			m.Counter(fmt.Sprintf("ip.candidates.len%d", L)).Add(n)
		}
		for class, cands := range pool.ByClass {
			m.Counter(fmt.Sprintf("ip.candidates.class%d", class)).Add(int64(len(cands)))
		}
	}
	sp.SetInt("candidates", int64(pool.Size()))
	for _, class := range classes {
		if len(byClass[class]) > 0 && len(pool.ByClass[class]) == 0 {
			return nil, errs.BadInput(errs.StageCandidateGen, "ip.generate", d.Name,
				"class %d produced no candidates (series too short?)", class)
		}
	}
	if len(pool.ByClass) == 0 {
		return nil, errs.BadInput(errs.StageCandidateGen, "ip.generate", d.Name, "empty candidate pool")
	}
	return pool, nil
}
