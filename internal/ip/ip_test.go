package ip

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

// makeDataset builds a two-class dataset where class 0 instances contain a
// distinctive planted pattern and class 1 instances are pure noise.
func makeDataset(nPerClass, length int, seed int64) *ts.Dataset {
	rng := rand.New(rand.NewSource(seed))
	pattern := []float64{0, 3, 6, 3, 0, -3, -6, -3, 0, 3, 6, 3}
	d := &ts.Dataset{Name: "synthetic"}
	for c := 0; c < 2; c++ {
		for i := 0; i < nPerClass; i++ {
			vals := make(ts.Series, length)
			for j := range vals {
				vals[j] = rng.NormFloat64() * 0.3
			}
			if c == 0 {
				at := 5 + rng.Intn(length-len(pattern)-10)
				copy(vals[at:], pattern)
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	return d
}

func TestKindString(t *testing.T) {
	if Motif.String() != "motif" || Discord.String() != "discord" {
		t.Fatal("kind strings wrong")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.Defaults()
	if c.QN != 10 || c.QS != 3 || len(c.LengthRatios) != 5 || c.MinLength != 4 {
		t.Fatalf("defaults = %+v", c)
	}
	// Explicit values survive.
	c = Config{QN: 2, QS: 5, LengthRatios: []float64{0.5}, MinLength: 8}.Defaults()
	if c.QN != 2 || c.QS != 5 || len(c.LengthRatios) != 1 || c.MinLength != 8 {
		t.Fatalf("explicit config clobbered: %+v", c)
	}
}

func TestLengths(t *testing.T) {
	c := Config{LengthRatios: []float64{0.1, 0.2, 0.5}, MinLength: 4}
	got := c.Lengths(100)
	want := []int{10, 20, 50}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("lengths = %v, want %v", got, want)
		}
	}
	// Flooring and dedup: tiny series collapse to MinLength once.
	got = Config{LengthRatios: []float64{0.1, 0.2}, MinLength: 4}.Lengths(10)
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("floored lengths = %v, want [4]", got)
	}
	// A series shorter than MinLength admits no candidate length at all;
	// Generate turns the nil into a typed bad-input error.
	got = Config{LengthRatios: []float64{0.9}, MinLength: 50}.Lengths(20)
	if got != nil {
		t.Fatalf("too-short series lengths = %v, want nil", got)
	}
}

func TestInstanceProfileExcludesBoundaries(t *testing.T) {
	ins := []ts.Instance{
		{Values: make(ts.Series, 20)},
		{Values: make(ts.Series, 20)},
	}
	rng := rand.New(rand.NewSource(1))
	for _, in := range ins {
		for j := range in.Values {
			in.Values[j] = rng.NormFloat64()
		}
	}
	L := 8
	prof, cat := InstanceProfile(ins, L)
	if len(cat) != 40 {
		t.Fatalf("cat len = %d", len(cat))
	}
	// Positions 13..19 span the boundary at 20 and must be +Inf.
	for i := 20 - L + 1; i < 20; i++ {
		if !math.IsInf(prof.P[i], 1) {
			t.Fatalf("boundary position %d has finite profile %v", i, prof.P[i])
		}
	}
	// Interior positions have finite values.
	if math.IsInf(prof.P[0], 1) || math.IsInf(prof.P[20], 1) {
		t.Fatal("interior positions should be finite")
	}
}

func TestGenerateFindsPlantedPattern(t *testing.T) {
	d := makeDataset(8, 60, 2)
	cfg := Config{QN: 6, QS: 3, LengthRatios: []float64{0.2}, Seed: 3}
	pool, err := Generate(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.ByClass) != 2 {
		t.Fatalf("classes in pool = %d", len(pool.ByClass))
	}
	// Each class and sample yields one motif and one discord per length.
	motifs := pool.Motifs(0)
	discords := pool.Discords(0)
	if len(motifs) != 6 || len(discords) != 6 {
		t.Fatalf("class 0: %d motifs, %d discords, want 6 each", len(motifs), len(discords))
	}
	// Class 0 motifs should be close (Def. 4) to the planted pattern.
	pattern := ts.Series{0, 3, 6, 3, 0, -3, -6, -3, 0, 3, 6, 3}
	close0 := 0
	for _, m := range motifs {
		if ts.Dist(pattern, m.Values) < 1.0 {
			close0++
		}
	}
	if close0 < len(motifs)/2 {
		t.Fatalf("only %d/%d class-0 motifs near the planted pattern", close0, len(motifs))
	}
	// Candidate metadata is populated.
	for _, m := range motifs {
		if m.Class != 0 || m.Kind != Motif || len(m.Values) != 12 {
			t.Fatalf("bad candidate metadata: %+v", m)
		}
		if m.Sample < 0 || m.Sample >= 6 || m.Start < 0 {
			t.Fatalf("bad candidate origin: %+v", m)
		}
	}
	if pool.Size() != 24 {
		t.Fatalf("pool size = %d, want 24", pool.Size())
	}
	if len(pool.Classes()) != 2 {
		t.Fatalf("pool classes = %v", pool.Classes())
	}
}

func TestGenerateDeterministic(t *testing.T) {
	d := makeDataset(6, 50, 4)
	cfg := Config{QN: 3, QS: 2, LengthRatios: []float64{0.3}, Seed: 99}
	p1, err := Generate(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := Generate(context.Background(), d, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for c, cands := range p1.ByClass {
		other := p2.ByClass[c]
		if len(cands) != len(other) {
			t.Fatalf("class %d candidate counts differ", c)
		}
		for i := range cands {
			if cands[i].Start != other[i].Start || cands[i].Sample != other[i].Sample {
				t.Fatalf("class %d candidate %d differs across runs", c, i)
			}
		}
	}
}

func TestGenerateCandidateValuesAreCopies(t *testing.T) {
	d := makeDataset(4, 40, 5)
	pool, err := Generate(context.Background(), d, Config{QN: 2, QS: 2, LengthRatios: []float64{0.25}, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Mutating dataset values must not corrupt candidates.
	before := pool.ByClass[0][0].Values.Clone()
	for _, in := range d.Instances {
		for j := range in.Values {
			in.Values[j] = 1e9
		}
	}
	after := pool.ByClass[0][0].Values
	for i := range before {
		if before[i] != after[i] {
			t.Fatal("candidate values alias dataset storage")
		}
	}
}

func TestGenerateParallelMatchesSequential(t *testing.T) {
	d := makeDataset(8, 60, 30)
	base := Config{QN: 6, QS: 3, LengthRatios: []float64{0.2, 0.3}, Seed: 31}
	seq, err := Generate(context.Background(), d, base)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 8} {
		cfg := base
		cfg.Workers = workers
		par, err := Generate(context.Background(), d, cfg)
		if err != nil {
			t.Fatal(err)
		}
		for c, want := range seq.ByClass {
			got := par.ByClass[c]
			if len(got) != len(want) {
				t.Fatalf("workers=%d class %d: %d candidates, want %d", workers, c, len(got), len(want))
			}
			for i := range want {
				if got[i].Sample != want[i].Sample || got[i].Start != want[i].Start ||
					got[i].Kind != want[i].Kind || len(got[i].Values) != len(want[i].Values) {
					t.Fatalf("workers=%d class %d candidate %d differs", workers, c, i)
				}
				for j := range want[i].Values {
					if got[i].Values[j] != want[i].Values[j] {
						t.Fatalf("workers=%d candidate values differ", workers)
					}
				}
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(context.Background(), &ts.Dataset{}, Config{}); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestGenerateShortSeries(t *testing.T) {
	// Series shorter than twice MinLength still produce candidates because
	// lengths are floored at MinLength; a series shorter than MinLength
	// cannot and must error out — never panic.
	d := &ts.Dataset{Instances: []ts.Instance{
		{Values: ts.Series{1, 2, 1, 2, 1, 2, 1, 2}, Label: 0},
		{Values: ts.Series{2, 1, 2, 1, 2, 1, 2, 1}, Label: 0},
		{Values: ts.Series{5, 5, 5, 5, 6, 6, 6, 6}, Label: 1},
		{Values: ts.Series{6, 6, 6, 6, 5, 5, 5, 5}, Label: 1},
	}}
	pool, err := Generate(context.Background(), d, Config{QN: 2, QS: 2, LengthRatios: []float64{0.5}, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pool.Size() == 0 {
		t.Fatal("short series produced no candidates")
	}
}
