package obs

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"

	"ips/internal/errs"
)

// ManifestSchema versions the manifest JSON format; ipsobs refuses schemas
// it does not understand.
const ManifestSchema = 1

// Manifest is the durable record of one run: what was run (tool, config,
// seed, environment), on what (dataset name and content hash), what happened
// (the span tree with wall times, metrics with quantile summaries, accuracy,
// the typed error if any), and how the runtime behaved (flight-recorder
// samples).  It is the artifact ipsobs reports on, diffs, and gates CI with.
//
// Encoding is deterministic: EncodeJSON serialises the same Manifest value
// to identical bytes on every call (maps encode key-sorted, attributes are
// pre-sorted, floats round-trip via strconv), and nothing in the manifest is
// an absolute timestamp — spans carry durations, flight samples carry
// offsets — so two runs at a fixed seed differ only where the runs
// themselves did (wall times, runtime samples, environment).
type Manifest struct {
	Schema     int            `json:"schema"`
	Tool       string         `json:"tool"`
	GoVersion  string         `json:"go_version"`
	GOOS       string         `json:"goos"`
	GOARCH     string         `json:"goarch"`
	GoMaxProcs int            `json:"gomaxprocs"`
	Seed       int64          `json:"seed"`
	Config     map[string]any `json:"config,omitempty"`
	Dataset    *DatasetInfo   `json:"dataset,omitempty"`
	Spans      *SpanNode      `json:"spans,omitempty"`
	Metrics    *MetricsDump   `json:"metrics,omitempty"`
	Accuracy   *float64       `json:"accuracy,omitempty"`
	Error      *ErrorInfo     `json:"error,omitempty"`
	Flight     []FlightSample `json:"flight,omitempty"`
}

// DatasetInfo identifies the data a run consumed.  Hash is the dataset's
// content hash (ts.Dataset.ContentHash), so a manifest diff can tell "code
// got slower" apart from "data changed".
type DatasetInfo struct {
	Name    string `json:"name"`
	Hash    string `json:"hash,omitempty"`
	Train   int    `json:"train,omitempty"`
	Test    int    `json:"test,omitempty"`
	Length  int    `json:"length,omitempty"`
	Classes int    `json:"classes,omitempty"`
}

// SpanNode is one span of the run's tree, durations only (no absolute
// times).  Attrs are key-sorted at build time.
type SpanNode struct {
	Name       string      `json:"name"`
	DurationNS int64       `json:"duration_ns"`
	Attrs      []AttrPair  `json:"attrs,omitempty"`
	Children   []*SpanNode `json:"children,omitempty"`
}

// AttrPair is one span attribute in the manifest.  Values are stringified so
// the encoding never depends on the dynamic type's JSON behaviour.
type AttrPair struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// MetricsDump is the manifest form of a registry snapshot.
type MetricsDump struct {
	Counters   map[string]int64        `json:"counters,omitempty"`
	Gauges     map[string]float64      `json:"gauges,omitempty"`
	Histograms map[string]HistSnapshot `json:"histograms,omitempty"`
}

// ErrorInfo records a run's typed failure: the errs.Error annotation plus
// the sentinel class, so a manifest consumer can classify without parsing
// the message.
type ErrorInfo struct {
	Message string `json:"message"`
	Class   string `json:"class,omitempty"`
	Stage   string `json:"stage,omitempty"`
	Op      string `json:"op,omitempty"`
	Dataset string `json:"dataset,omitempty"`
}

// RunInfo is the caller-supplied half of a manifest: everything BuildManifest
// cannot read off the observer.
type RunInfo struct {
	Tool     string
	Seed     int64
	Config   map[string]any
	Dataset  *DatasetInfo
	Accuracy *float64 // nil when the run produced none
	Err      error    // the run's failure, if any
	Flight   *FlightRecorder
}

// BuildManifest assembles the manifest of a finished run from the observer's
// span tree and metrics registry plus the caller's RunInfo.  The observer
// may be nil (a failed run that never started one); so may every RunInfo
// field.
func BuildManifest(o *Observer, info RunInfo) *Manifest {
	m := &Manifest{
		Schema:     ManifestSchema,
		Tool:       info.Tool,
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       info.Seed,
		Config:     info.Config,
		Dataset:    info.Dataset,
		Accuracy:   info.Accuracy,
	}
	if root := o.Root(); root != nil {
		m.Spans = spanNode(root)
	}
	if reg := o.Metrics(); reg != nil {
		m.Metrics = metricsDump(reg)
	}
	if info.Err != nil {
		m.Error = errorInfo(info.Err)
	}
	if info.Flight != nil {
		m.Flight = info.Flight.Samples()
	}
	return m
}

// spanNode converts a span subtree into its manifest form.
func spanNode(s *Span) *SpanNode {
	n := &SpanNode{Name: s.Name(), DurationNS: int64(s.Duration())}
	attrs := s.Attrs()
	if len(attrs) > 0 {
		n.Attrs = make([]AttrPair, len(attrs))
		for i, a := range attrs {
			n.Attrs[i] = AttrPair{Key: a.Key, Value: fmt.Sprint(a.Value)}
		}
		sort.Slice(n.Attrs, func(i, j int) bool {
			if n.Attrs[i].Key != n.Attrs[j].Key {
				return n.Attrs[i].Key < n.Attrs[j].Key
			}
			return n.Attrs[i].Value < n.Attrs[j].Value
		})
	}
	for _, c := range s.Children() {
		n.Children = append(n.Children, spanNode(c))
	}
	return n
}

// metricsDump snapshots a registry into plain maps.
func metricsDump(r *Registry) *MetricsDump {
	r.mu.RLock()
	defer r.mu.RUnlock()
	d := &MetricsDump{}
	if len(r.counters) > 0 {
		d.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			d.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		d.Gauges = make(map[string]float64, len(r.gauges))
		for name, g := range r.gauges {
			d.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		d.Histograms = make(map[string]HistSnapshot, len(r.hists))
		for name, h := range r.hists {
			d.Histograms[name] = h.Snapshot()
		}
	}
	return d
}

// errorInfo flattens a run error into its manifest record.
func errorInfo(err error) *ErrorInfo {
	ei := &ErrorInfo{Message: err.Error(), Class: ErrClass(err)}
	var e *errs.Error
	if errors.As(err, &e) {
		ei.Stage = string(e.Stage)
		ei.Op = e.Op
		ei.Dataset = e.Dataset
	}
	return ei
}

// EncodeJSON serialises the manifest with stable formatting: indented,
// key-sorted maps (encoding/json's map behaviour), trailing newline.  The
// same value encodes to identical bytes on every call.
func (m *Manifest) EncodeJSON() ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(m); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// WriteTo writes the JSON encoding to w.
func (m *Manifest) WriteTo(w io.Writer) (int64, error) {
	b, err := m.EncodeJSON()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(b)
	return int64(n), err
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	b, err := m.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// Normalize zeroes every field that legitimately varies between two runs of
// the same configuration — span durations, flight samples, quantile
// estimates and metric values that depend on timing — leaving the run's
// structure: span tree shape, attribute sets, counter names, config,
// dataset identity.  Two runs at the same seed must produce byte-identical
// normalized manifests; the determinism test pins exactly that.
func (m *Manifest) Normalize() {
	if m == nil {
		return
	}
	var walk func(n *SpanNode)
	walk = func(n *SpanNode) {
		if n == nil {
			return
		}
		n.DurationNS = 0
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(m.Spans)
	m.Flight = nil
	if m.Metrics != nil {
		for name, h := range m.Metrics.Histograms {
			h.Sum = 0
			h.Quantiles = nil
			m.Metrics.Histograms[name] = h
		}
		for name := range m.Metrics.Gauges {
			m.Metrics.Gauges[name] = 0
		}
	}
}

// ReadManifest parses a manifest file, rejecting unknown schemas.
func ReadManifest(path string) (*Manifest, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if m.Schema != ManifestSchema {
		return nil, fmt.Errorf("%s: unsupported manifest schema %d (want %d)", path, m.Schema, ManifestSchema)
	}
	return &m, nil
}
