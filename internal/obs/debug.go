package obs

import (
	"expvar"
	"net"
	"net/http"
	"net/http/pprof"
)

// DebugMux returns an http.ServeMux exposing live-profiling hooks:
// net/http/pprof under /debug/pprof/, expvar under /debug/vars, the
// registry's text exposition at /metrics, its JSON form at /metrics.json,
// and — when fr is non-nil — the flight recorder's ring buffer at
// /debug/flight.  reg may be nil (the metric endpoints then serve empty
// bodies).
func DebugMux(reg *Registry, fr *FlightRecorder) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	mux.Handle("/metrics", reg)
	mux.HandleFunc("/metrics.json", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		if reg == nil {
			w.Write([]byte("{}"))
			return
		}
		w.Write([]byte(reg.String()))
	})
	if fr != nil {
		mux.Handle("/debug/flight", fr)
	}
	return mux
}

// ServeDebug starts the debug server on addr in a background goroutine and
// returns it together with the bound address (useful with ":0").  fr may be
// nil (no /debug/flight endpoint).  The caller owns the returned server;
// Close it to stop serving.
//
//lint:ignore ipslint/ctxfirst process-lifetime daemon: the caller stops it through http.Server.Close, not a context
func ServeDebug(addr string, reg *Registry, fr *FlightRecorder) (*http.Server, string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, "", err
	}
	srv := &http.Server{Handler: DebugMux(reg, fr)}
	go srv.Serve(ln)
	return srv, ln.Addr().String(), nil
}
