package obs

import (
	"context"
	"errors"
	"io"
	"log/slog"
	"strings"

	"ips/internal/errs"
)

// Structured logging rides on log/slog and travels through context.Context,
// matching the ctx-first convention of the rest of the pipeline: a CLI (or a
// test) installs a logger with WithLogger, every stage retrieves it with
// Log(ctx), and the library itself never configures a sink.  When no logger
// was installed, Log returns a shared no-op logger whose handler reports
// every level as disabled, so a log point in a hot loop costs a context
// lookup and one interface call — no attribute is evaluated, nothing
// allocates.
//
// Stage attribution is automatic: the pipeline stores the active span with
// WithSpan as it descends, and WithSpan re-derives the context logger with a
// "span" attribute, so a deep log record (say, from the STOMP kernel) carries
// the stage that reached it without the kernel knowing about stages.  Error
// records use ErrAttrs to splice the errs.Error taxonomy — stage, op,
// dataset, sentinel class — into the same attribute space.

type loggerKey struct{}
type spanKey struct{}

// nopHandler is a slog.Handler that is disabled at every level.  Unlike a
// handler writing to io.Discard it short-circuits before attribute
// evaluation, which is what makes Log(ctx).Debug(...) effectively free when
// logging is off.
type nopHandler struct{}

func (nopHandler) Enabled(context.Context, slog.Level) bool  { return false }
func (nopHandler) Handle(context.Context, slog.Record) error { return nil }
func (nopHandler) WithAttrs([]slog.Attr) slog.Handler        { return nopHandler{} }
func (nopHandler) WithGroup(string) slog.Handler             { return nopHandler{} }

var nopLogger = slog.New(nopHandler{})

// NopLogger returns the shared disabled logger Log falls back to.
func NopLogger() *slog.Logger { return nopLogger }

// ParseLevel maps a -log-level flag value onto a slog.Level.  "off" (and "")
// report enabled=false: the caller should install no logger at all.
func ParseLevel(s string) (level slog.Level, enabled bool, err error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "off", "none":
		return 0, false, nil
	case "debug":
		return slog.LevelDebug, true, nil
	case "info":
		return slog.LevelInfo, true, nil
	case "warn", "warning":
		return slog.LevelWarn, true, nil
	case "error":
		return slog.LevelError, true, nil
	}
	return 0, false, errors.New("log level must be off, debug, info, warn, or error")
}

// NewLogger builds the CLI-facing logger for a -log-level / -log-json flag
// pair: a text or JSON slog handler on w at the given level, or nil when the
// level is "off" (install nothing, keep the library silent).
func NewLogger(w io.Writer, level string, json bool) (*slog.Logger, error) {
	lv, enabled, err := ParseLevel(level)
	if err != nil {
		return nil, err
	}
	if !enabled {
		return nil, nil
	}
	opts := &slog.HandlerOptions{Level: lv}
	if json {
		return slog.New(slog.NewJSONHandler(w, opts)), nil
	}
	return slog.New(slog.NewTextHandler(w, opts)), nil
}

// WithLogger installs l as the context logger.  A nil l clears it, so
// callers can thread flag parsing straight through.
func WithLogger(ctx context.Context, l *slog.Logger) context.Context {
	if l == nil {
		return ctx
	}
	return context.WithValue(ctx, loggerKey{}, l)
}

// Log returns the context logger, or the shared no-op logger when none was
// installed (including ctx == nil).  Never nil, so call sites chain
// unconditionally: obs.Log(ctx).Debug("...", ...).
func Log(ctx context.Context) *slog.Logger {
	if ctx == nil {
		return nopLogger
	}
	if l, ok := ctx.Value(loggerKey{}).(*slog.Logger); ok {
		return l
	}
	return nopLogger
}

// LogEnabled reports whether a record at level would be emitted — the guard
// for log points that must compute something expensive just to log it.
func LogEnabled(ctx context.Context, level slog.Level) bool {
	return Log(ctx).Enabled(ctx, level)
}

// WithSpan records sp as the active span of ctx and, when logging is live,
// re-derives the context logger with a "span" attribute naming it.  The
// attribute attachment happens once per stage here — not per log record — so
// descending into a span costs nothing on the log path when logging is off.
func WithSpan(ctx context.Context, sp *Span) context.Context {
	if sp == nil {
		return ctx
	}
	if ctx == nil {
		ctx = context.Background()
	}
	ctx = context.WithValue(ctx, spanKey{}, sp)
	if l := Log(ctx); l != nopLogger && l.Enabled(ctx, slog.LevelError) {
		ctx = WithLogger(ctx, l.With(slog.String("span", sp.Name())))
	}
	return ctx
}

// SpanFromContext returns the active span installed by WithSpan, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	sp, _ := ctx.Value(spanKey{}).(*Span)
	return sp
}

// ErrAttrs flattens an error into slog attributes: the message, and — when
// the chain carries an *errs.Error — its stage, op, and dataset, plus the
// sentinel classification ("canceled", "bad-input", ...).  Use it to log
// failures with the same attribution the error taxonomy promises:
//
//	obs.Log(ctx).Warn("discovery failed", obs.ErrAttrs(err)...)
func ErrAttrs(err error) []any {
	if err == nil {
		return nil
	}
	attrs := []any{slog.String("err", err.Error())}
	var e *errs.Error
	if errors.As(err, &e) {
		attrs = append(attrs, slog.String("stage", string(e.Stage)))
		if e.Op != "" {
			attrs = append(attrs, slog.String("op", e.Op))
		}
		if e.Dataset != "" {
			attrs = append(attrs, slog.String("dataset", e.Dataset))
		}
	}
	if c := ErrClass(err); c != "" {
		attrs = append(attrs, slog.String("class", c))
	}
	return attrs
}

// ErrClass names the errs sentinel an error chains to, or "" for an
// unclassified error.
func ErrClass(err error) string {
	switch {
	case err == nil:
		return ""
	// Raw context errors classify as cancellations too: a failure logged
	// before the errs wrapping happens should not read as unclassified.
	case errors.Is(err, errs.ErrCanceled),
		errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded):
		return "canceled"
	case errors.Is(err, errs.ErrBadInput):
		return "bad-input"
	case errors.Is(err, errs.ErrDegenerate):
		return "degenerate"
	case errors.Is(err, errs.ErrNoShapelets):
		return "no-shapelets"
	case errors.Is(err, errs.ErrInternal):
		return "internal"
	case errors.Is(err, errs.ErrOverload):
		return "overload"
	case errors.Is(err, errs.ErrUnavailable):
		return "unavailable"
	}
	return ""
}
