package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"
)

// Attr is one span attribute: a key with an arbitrary (JSON-encodable) value.
type Attr struct {
	Key   string
	Value any
}

// Span is one timed region of the pipeline.  Spans form a tree under the
// observer's root; children may be created and ended from any goroutine.
// Every method is safe on a nil receiver and does nothing, so instrumented
// code never needs to guard against observability being off.
type Span struct {
	obs   *Observer
	name  string
	start time.Time

	mu       sync.Mutex
	end      time.Time
	attrs    []Attr
	children []*Span
}

// Child starts a sub-span.  It returns nil when s is nil, so call sites can
// chain unconditionally.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{obs: s.obs, name: name, start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// End marks the span finished.  The first call wins; later calls (and calls
// on a nil span) are no-ops.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Name returns the span name ("" for nil).
func (s *Span) Name() string {
	if s == nil {
		return ""
	}
	return s.name
}

// Start returns the span start time (zero for nil).
func (s *Span) Start() time.Time {
	if s == nil {
		return time.Time{}
	}
	return s.start
}

// Duration returns end−start for an ended span, and the running duration for
// a live one (0 for nil).
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.start)
	}
	return end.Sub(s.start)
}

// SetAttr records an arbitrary attribute.  Prefer the typed setters in hot
// paths: they avoid boxing the value when the span is nil.
func (s *Span) SetAttr(key string, value any) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.mu.Unlock()
}

// SetInt records an integer attribute without allocating when s is nil.
func (s *Span) SetInt(key string, value int64) {
	if s == nil {
		return
	}
	s.SetAttr(key, value)
}

// SetFloat records a float attribute without allocating when s is nil.
func (s *Span) SetFloat(key string, value float64) {
	if s == nil {
		return
	}
	s.SetAttr(key, value)
}

// SetString records a string attribute without allocating when s is nil.
func (s *Span) SetString(key, value string) {
	if s == nil {
		return
	}
	s.SetAttr(key, value)
}

// Attrs returns a copy of the attributes recorded so far.
func (s *Span) Attrs() []Attr {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Attr, len(s.attrs))
	copy(out, s.attrs)
	return out
}

// Children returns a copy of the child spans created so far.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Span, len(s.children))
	copy(out, s.children)
	return out
}

// ChildByName returns the first child with the given name, or nil.
func (s *Span) ChildByName(name string) *Span {
	for _, c := range s.Children() {
		if c.name == name {
			return c
		}
	}
	return nil
}

// Metrics returns the observer's metrics registry (nil when the span is nil
// or the observer records spans only), so deep call sites can reach counters
// through the span they were handed.
func (s *Span) Metrics() *Registry {
	if s == nil || s.obs == nil {
		return nil
	}
	return s.obs.Metrics()
}

// Progress reports done/total progress under the span's name; see
// Observer.Progress.  Safe to call concurrently and on a nil span.
func (s *Span) Progress(done, total int) {
	if s == nil || s.obs == nil {
		return
	}
	s.obs.Progress(s.name, done, total)
}

// Render writes the span subtree as an indented text tree with durations and
// attributes, e.g.
//
//	discover                       41.2ms
//	├─ candidate-gen               29.8ms  jobs=50 candidates=100
//	│  └─ profiles                 29.1ms  workers=4
//	└─ selection                    9.6ms
func (s *Span) Render(w io.Writer) {
	if s == nil {
		return
	}
	s.render(w, "", "")
}

func (s *Span) render(w io.Writer, prefix, childPrefix string) {
	label := prefix + s.name
	line := fmt.Sprintf("%-*s %9.3fms", renderNameWidth, label, s.Duration().Seconds()*1e3)
	if attrs := s.Attrs(); len(attrs) > 0 {
		parts := make([]string, len(attrs))
		for i, a := range attrs {
			parts[i] = fmt.Sprintf("%s=%v", a.Key, a.Value)
		}
		sort.Strings(parts)
		line += "  " + strings.Join(parts, " ")
	}
	fmt.Fprintln(w, line)
	children := s.Children()
	for i, c := range children {
		connector, extend := "├─ ", "│  "
		if i == len(children)-1 {
			connector, extend = "└─ ", "   "
		}
		c.render(w, childPrefix+connector, childPrefix+extend)
	}
}

// renderNameWidth aligns the duration column of Render.
const renderNameWidth = 44
