package obs

import "time"

// Stopwatch measures elapsed wall time.  Run manifests are durations-only by
// contract: upstream packages must never read absolute timestamps, so every
// elapsed-time measurement flows through a Stopwatch (or a span, which uses
// the same clock) and the wallclock lint rule keeps time.Now confined to
// this package.  The zero value is not started; use NewStopwatch.
type Stopwatch struct {
	start time.Time
}

// NewStopwatch returns a stopwatch started now.
func NewStopwatch() Stopwatch {
	return Stopwatch{start: time.Now()}
}

// Elapsed returns the wall time since the stopwatch started.
func (s Stopwatch) Elapsed() time.Duration {
	return time.Since(s.start)
}

// Deadline is an absolute cut-off derived from the obs clock, for polling
// loops that must give up after a timeout without carrying a raw time.Time.
type Deadline struct {
	at time.Time
}

// NewDeadline returns a deadline the given duration from now.
func NewDeadline(d time.Duration) Deadline {
	return Deadline{at: time.Now().Add(d)}
}

// Exceeded reports whether the deadline has passed.
func (d Deadline) Exceeded() bool {
	return time.Now().After(d.at)
}
