package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"log/slog"
	"strings"
	"testing"

	"ips/internal/errs"
)

func TestParseLevel(t *testing.T) {
	cases := map[string]struct {
		level   slog.Level
		enabled bool
	}{
		"off": {0, false}, "": {0, false}, "none": {0, false},
		"debug": {slog.LevelDebug, true}, "info": {slog.LevelInfo, true},
		"warn": {slog.LevelWarn, true}, "warning": {slog.LevelWarn, true},
		"error": {slog.LevelError, true}, "DEBUG": {slog.LevelDebug, true},
	}
	for in, want := range cases {
		lvl, enabled, err := ParseLevel(in)
		if err != nil {
			t.Fatalf("ParseLevel(%q) error: %v", in, err)
		}
		if enabled != want.enabled || (enabled && lvl != want.level) {
			t.Fatalf("ParseLevel(%q) = %v/%v, want %v/%v", in, lvl, enabled, want.level, want.enabled)
		}
	}
	if _, _, err := ParseLevel("loud"); err == nil {
		t.Fatal("ParseLevel accepted garbage")
	}
}

func TestLoggerFromContext(t *testing.T) {
	// A bare context yields the silent logger, never nil.
	lg := Log(context.Background())
	if lg == nil {
		t.Fatal("Log returned nil")
	}
	if lg.Enabled(context.Background(), slog.LevelError) {
		t.Fatal("default logger is enabled")
	}
	lg.Info("goes nowhere") // must not panic

	var buf bytes.Buffer
	live, err := NewLogger(&buf, "info", false)
	if err != nil {
		t.Fatal(err)
	}
	ctx := WithLogger(context.Background(), live)
	Log(ctx).Info("hello", "k", 1)
	if !strings.Contains(buf.String(), "hello") || !strings.Contains(buf.String(), "k=1") {
		t.Fatalf("log output = %q", buf.String())
	}
	buf.Reset()
	Log(ctx).Debug("filtered")
	if buf.Len() != 0 {
		t.Fatalf("debug leaked through info level: %q", buf.String())
	}

	// Off level yields a nil logger from NewLogger and WithLogger(nil) is a
	// no-op context passthrough.
	off, err := NewLogger(&buf, "off", false)
	if err != nil {
		t.Fatal(err)
	}
	if off != nil {
		t.Fatal("off level returned a live logger")
	}
	if got := WithLogger(ctx, nil); got != ctx {
		t.Fatal("WithLogger(nil) changed the context")
	}
}

func TestLoggerJSON(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", true)
	if err != nil {
		t.Fatal(err)
	}
	lg.Info("structured", "n", 42)
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("JSON handler output not JSON: %v (%q)", err, buf.String())
	}
	if rec["msg"] != "structured" || rec["n"] != float64(42) {
		t.Fatalf("record = %v", rec)
	}
}

func TestWithSpanAnnotatesLogger(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "debug", false)
	if err != nil {
		t.Fatal(err)
	}
	o := New("run")
	sp := o.Root().Child("candidate-gen")
	defer sp.End()
	ctx := WithSpan(WithLogger(context.Background(), lg), sp)
	Log(ctx).Debug("inside the stage")
	if !strings.Contains(buf.String(), "span=candidate-gen") {
		t.Fatalf("span attr missing: %q", buf.String())
	}
	if SpanFromContext(ctx) != sp {
		t.Fatal("SpanFromContext lost the span")
	}
	// With logging off, WithSpan must not allocate a derived logger.
	plain := WithSpan(context.Background(), sp)
	if Log(plain).Enabled(plain, slog.LevelError) {
		t.Fatal("silent context became enabled through WithSpan")
	}
}

func TestErrAttrs(t *testing.T) {
	err := errs.BadInput(errs.StagePruning, "dabf.build", "GunPoint", "empty pool")
	attrs := ErrAttrs(err)
	var buf bytes.Buffer
	lg, _ := NewLogger(&buf, "error", false)
	lg.Error("failed", attrs...)
	out := buf.String()
	for _, want := range []string{"stage=pruning", "op=dabf.build", "dataset=GunPoint", "class=bad-input"} {
		if !strings.Contains(out, want) {
			t.Fatalf("ErrAttrs output missing %q: %q", want, out)
		}
	}
	if got := ErrClass(context.Canceled); got != "canceled" {
		t.Fatalf("ErrClass(context.Canceled) = %q", got)
	}
}

// TestDisabledLoggingAllocs pins "telemetry off is free": logging through a
// context with no logger must not allocate, even with attribute arguments.
func TestDisabledLoggingAllocs(t *testing.T) {
	ctx := context.Background()
	allocs := testing.AllocsPerRun(200, func() {
		Log(ctx).Debug("hot path", "a", 1, "b", 2.5)
		Log(ctx).Info("hot path", "c", "s")
	})
	if allocs != 0 {
		t.Fatalf("disabled logging allocates %v per run, want 0", allocs)
	}
}

// TestHistogramBoundsMismatchWarns covers the Registry.Histogram dedup
// contract: a second registration with different bounds reuses the first
// histogram and warns through the registry's logger instead of silently
// dropping the new bounds.
func TestHistogramBoundsMismatchWarns(t *testing.T) {
	var buf bytes.Buffer
	lg, err := NewLogger(&buf, "warn", false)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRegistry()
	r.SetLogger(lg)
	h1 := r.Histogram("h", []float64{1, 2})
	h2 := r.Histogram("h", []float64{99})
	if h1 != h2 {
		t.Fatal("histogram not deduplicated by name")
	}
	out := buf.String()
	if !strings.Contains(out, "bounds") || !strings.Contains(out, "h") {
		t.Fatalf("no bounds-mismatch warning: %q", out)
	}
	buf.Reset()
	// Same bounds: no warning.
	r.Histogram("h", []float64{1, 2})
	if buf.Len() != 0 {
		t.Fatalf("matching bounds warned: %q", buf.String())
	}
	// SetLogger(nil) restores silence without panicking.
	r.SetLogger(nil)
	r.Histogram("h", []float64{5})
}
