package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"testing"
	"time"
)

func TestFlightRecorderSamples(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fr := StartFlight(ctx, time.Millisecond, 64)
	time.Sleep(20 * time.Millisecond)
	fr.Stop()

	samples := fr.Samples()
	if len(samples) < 2 {
		t.Fatalf("got %d samples, want at least 2", len(samples))
	}
	if fr.Total() < int64(len(samples)) {
		t.Fatalf("total %d < returned %d", fr.Total(), len(samples))
	}
	prev := int64(-1)
	for i, s := range samples {
		if s.OffsetNS < prev {
			t.Fatalf("sample %d offset %d < previous %d: not chronological", i, s.OffsetNS, prev)
		}
		prev = s.OffsetNS
		if s.Goroutines <= 0 {
			t.Fatalf("sample %d has %d goroutines", i, s.Goroutines)
		}
		if s.HeapAllocBytes == 0 {
			t.Fatalf("sample %d has zero heap", i)
		}
	}
	// Stop is idempotent and Samples stays stable after it.
	fr.Stop()
	if got := len(fr.Samples()); got != len(samples) {
		t.Fatalf("samples changed after second Stop: %d != %d", got, len(samples))
	}
}

func TestFlightRecorderRingOverwrite(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fr := StartFlight(ctx, 100*time.Microsecond, 4)
	deadline := time.Now().Add(time.Second)
	for fr.Total() < 10 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	fr.Stop()
	if fr.Total() < 10 {
		t.Skipf("sampler too slow on this machine: %d samples", fr.Total())
	}
	if got := len(fr.Samples()); got != 4 {
		t.Fatalf("ring holds %d samples, want capacity 4", got)
	}
	// The ring keeps the newest samples: offsets must be the largest seen.
	samples := fr.Samples()
	if samples[0].OffsetNS == 0 {
		t.Fatal("oldest retained sample is the very first: ring never overwrote")
	}
}

func TestFlightRecorderNilSafety(t *testing.T) {
	var fr *FlightRecorder
	fr.Stop()
	fr.Wait()
	if fr.Samples() != nil || fr.Total() != 0 {
		t.Fatal("nil recorder returned data")
	}
}

func TestFlightEndpoint(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	fr := StartFlight(ctx, time.Millisecond, 64)
	time.Sleep(5 * time.Millisecond)
	fr.Stop()

	srv := httptest.NewServer(DebugMux(NewRegistry(), fr))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var snap struct {
		IntervalNS int64          `json:"interval_ns"`
		Total      int64          `json:"total_samples"`
		Samples    []FlightSample `json:"samples"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("flight endpoint is not JSON: %v", err)
	}
	if snap.IntervalNS != int64(time.Millisecond) {
		t.Fatalf("interval = %d, want %d", snap.IntervalNS, time.Millisecond)
	}
	if len(snap.Samples) == 0 || snap.Total == 0 {
		t.Fatalf("flight endpoint empty: %+v", snap)
	}
}
