package obs

import (
	"context"
	"encoding/json"
	"net/http"
	"runtime"
	"sync"
	"time"
)

// FlightSample is one runtime snapshot captured by the flight recorder.
// Offsets are relative to the recorder's start so samples carry no absolute
// timestamps (manifests stay timestamp-free).
type FlightSample struct {
	OffsetNS       int64  `json:"offset_ns"`
	Goroutines     int    `json:"goroutines"`
	HeapAllocBytes uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes   uint64 `json:"heap_sys_bytes"`
	HeapObjects    uint64 `json:"heap_objects"`
	NumGC          uint32 `json:"num_gc"`
	GCPauseTotalNS uint64 `json:"gc_pause_total_ns"`
	LastGCPauseNS  uint64 `json:"last_gc_pause_ns"`
}

// FlightRecorder samples runtime health — heap, goroutine count, GC pauses —
// into a fixed-capacity ring buffer from a background goroutine: a black box
// for the run that costs one ReadMemStats per interval and a bounded slice,
// whatever the run length.  It serves its contents at /debug/flight on the
// debug mux and is embedded into run manifests.
//
// The sampler goroutine exits when the context passed to StartFlight is
// cancelled or when Stop is called, whichever comes first; Stop (and Wait)
// block until it has drained, so a leak check bracketing Start/Stop sees the
// goroutine gone.
type FlightRecorder struct {
	interval time.Duration
	start    time.Time

	mu    sync.Mutex
	ring  []FlightSample
	next  int
	total int64

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// StartFlight begins sampling every interval into a ring of the given
// capacity and returns the running recorder.  Non-positive arguments fall
// back to 10ms and 512 samples.  The sampler takes one sample immediately so
// even a short run records at least one.
func StartFlight(ctx context.Context, interval time.Duration, capacity int) *FlightRecorder {
	if interval <= 0 {
		interval = 10 * time.Millisecond
	}
	if capacity <= 0 {
		capacity = 512
	}
	fr := &FlightRecorder{
		interval: interval,
		start:    time.Now(),
		ring:     make([]FlightSample, 0, capacity),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	var cancel <-chan struct{}
	if ctx != nil {
		cancel = ctx.Done()
	}
	go fr.run(cancel)
	return fr
}

// run is the sampler loop.  It records one final sample on the way out so
// the buffer always covers the run's end state.
func (fr *FlightRecorder) run(cancel <-chan struct{}) {
	defer close(fr.done)
	ticker := time.NewTicker(fr.interval)
	defer ticker.Stop()
	fr.sample()
	for {
		select {
		case <-ticker.C:
			fr.sample()
		case <-cancel:
			fr.sample()
			return
		case <-fr.stop:
			fr.sample()
			return
		}
	}
}

// sample appends one snapshot to the ring, overwriting the oldest once full.
func (fr *FlightRecorder) sample() {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := FlightSample{
		OffsetNS:       int64(time.Since(fr.start)),
		Goroutines:     runtime.NumGoroutine(),
		HeapAllocBytes: ms.HeapAlloc,
		HeapSysBytes:   ms.HeapSys,
		HeapObjects:    ms.HeapObjects,
		NumGC:          ms.NumGC,
		GCPauseTotalNS: ms.PauseTotalNs,
	}
	if ms.NumGC > 0 {
		s.LastGCPauseNS = ms.PauseNs[(ms.NumGC+255)%256]
	}
	fr.mu.Lock()
	if len(fr.ring) < cap(fr.ring) {
		fr.ring = append(fr.ring, s)
	} else {
		fr.ring[fr.next] = s
		fr.next = (fr.next + 1) % len(fr.ring)
	}
	fr.total++
	fr.mu.Unlock()
}

// Stop ends sampling and blocks until the sampler goroutine has exited.
// Idempotent, safe on nil, and safe to call after the start context was
// cancelled.
func (fr *FlightRecorder) Stop() {
	if fr == nil {
		return
	}
	fr.stopOnce.Do(func() { close(fr.stop) })
	<-fr.done
}

// Wait blocks until the sampler goroutine has exited (after Stop or context
// cancellation).  Safe on nil.
func (fr *FlightRecorder) Wait() {
	if fr == nil {
		return
	}
	<-fr.done
}

// Samples returns the buffered samples in chronological order (nil for a
// nil recorder).
func (fr *FlightRecorder) Samples() []FlightSample {
	if fr == nil {
		return nil
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	out := make([]FlightSample, 0, len(fr.ring))
	out = append(out, fr.ring[fr.next:]...)
	out = append(out, fr.ring[:fr.next]...)
	return out
}

// Total returns how many samples were taken over the recorder's lifetime,
// including ones the ring has since overwritten.
func (fr *FlightRecorder) Total() int64 {
	if fr == nil {
		return 0
	}
	fr.mu.Lock()
	defer fr.mu.Unlock()
	return fr.total
}

// flightSnapshot is the JSON body served at /debug/flight.
type flightSnapshot struct {
	IntervalNS int64          `json:"interval_ns"`
	Total      int64          `json:"total_samples"`
	Samples    []FlightSample `json:"samples"`
}

// ServeHTTP serves the current ring as JSON, making the recorder mountable
// at /debug/flight.
func (fr *FlightRecorder) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if fr == nil {
		if _, err := w.Write([]byte("{}")); err != nil {
			return
		}
		return
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	if err := enc.Encode(flightSnapshot{
		IntervalNS: int64(fr.interval),
		Total:      fr.Total(),
		Samples:    fr.Samples(),
	}); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}
