package obs

import (
	"bytes"
	"errors"
	"path/filepath"
	"strings"
	"testing"

	"ips/internal/errs"
)

// buildRun exercises one synthetic "run" against an observer and returns its
// manifest — called twice by the determinism test.
func buildRun() *Manifest {
	o := New("ips")
	sp := o.Root().Child("discover")
	gen := sp.Child("candidate-gen")
	gen.SetInt("candidates", 420)
	gen.SetString("kind", "motif")
	gen.End()
	sp.End()
	o.Finish()
	o.Metrics().Counter("dists").Add(1234)
	o.Metrics().Gauge("load").Set(1.5)
	h := o.Metrics().Histogram("lat", []float64{1, 10, 100})
	for i := 1; i <= 50; i++ {
		h.Observe(float64(i))
	}
	acc := 93.25
	return BuildManifest(o, RunInfo{
		Tool: "ips", Seed: 7,
		Config:   map[string]any{"k": 5, "workers": 2, "dataset": "GunPoint"},
		Dataset:  &DatasetInfo{Name: "GunPoint", Hash: "sha256:abc", Train: 50, Test: 150, Length: 150, Classes: 2},
		Accuracy: &acc,
	})
}

// TestManifestEncodeDeterministic pins byte-determinism at both layers: the
// same value encodes identically twice, and two fresh runs of the same
// deterministic work encode identically after Normalize strips what
// legitimately varies (durations, timing-derived metric values).
func TestManifestEncodeDeterministic(t *testing.T) {
	m := buildRun()
	b1, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := m.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("same manifest encoded to different bytes")
	}

	ma, mb := buildRun(), buildRun()
	ma.Normalize()
	mb.Normalize()
	ba, err := ma.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bb, err := mb.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ba, bb) {
		t.Fatalf("normalized manifests of identical runs differ:\n--- a\n%s\n--- b\n%s", ba, bb)
	}
	if strings.Contains(string(ba), "duration_ns\": ") && !strings.Contains(string(ba), "\"duration_ns\": 0") {
		t.Fatal("Normalize left a nonzero duration")
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := buildRun()
	m.Error = errorInfo(errs.BadInput(errs.StageSelection, "discover", "GunPoint", "no shapelets"))
	path := filepath.Join(t.TempDir(), "run.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := ReadManifest(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "ips" || got.Seed != 7 || got.Dataset.Hash != "sha256:abc" {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	if got.Spans == nil || got.Spans.Name != "ips" || len(got.Spans.Children) != 1 {
		t.Fatalf("span tree lost: %+v", got.Spans)
	}
	if got.Error == nil || got.Error.Stage != "selection" || got.Error.Class != "bad-input" {
		t.Fatalf("error info lost: %+v", got.Error)
	}
	if got.Metrics.Counters["dists"] != 1234 {
		t.Fatalf("metrics lost: %+v", got.Metrics)
	}
	if q := got.Metrics.Histograms["lat"].Quantiles; q == nil || q["p50"] == 0 {
		t.Fatalf("histogram quantiles lost: %+v", got.Metrics.Histograms["lat"])
	}

	// Unknown schema is rejected.
	bad := buildRun()
	bad.Schema = 99
	badPath := filepath.Join(t.TempDir(), "bad.json")
	if err := bad.WriteFile(badPath); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadManifest(badPath); err == nil {
		t.Fatal("unknown schema accepted")
	}
}

// TestManifestSpanAttrsSorted guards the determinism of attribute encoding:
// attrs come out key-sorted and stringified regardless of set order.
func TestManifestSpanAttrsSorted(t *testing.T) {
	o := New("run")
	sp := o.Root().Child("stage")
	sp.SetString("zeta", "last")
	sp.SetInt("alpha", 1)
	sp.SetFloat("mid", 2.5)
	sp.End()
	o.Finish()
	m := BuildManifest(o, RunInfo{Tool: "t"})
	attrs := m.Spans.Children[0].Attrs
	if len(attrs) != 3 || attrs[0].Key != "alpha" || attrs[1].Key != "mid" || attrs[2].Key != "zeta" {
		t.Fatalf("attrs not sorted: %+v", attrs)
	}
	if attrs[0].Value != "1" || attrs[1].Value != "2.5" {
		t.Fatalf("attrs not stringified: %+v", attrs)
	}
}

func TestBuildManifestNilObserver(t *testing.T) {
	m := BuildManifest(nil, RunInfo{Tool: "ips", Err: errors.New("boom")})
	if m.Spans != nil || m.Metrics != nil {
		t.Fatal("nil observer produced spans/metrics")
	}
	if m.Error == nil || m.Error.Message != "boom" {
		t.Fatalf("error lost: %+v", m.Error)
	}
	if _, err := m.EncodeJSON(); err != nil {
		t.Fatal(err)
	}
}
