package obs

import (
	"encoding/json"
	"io"
	"os"
	"time"
)

// TraceEvent is one Chrome trace_event record.  WriteTrace emits "X"
// (complete) events; the format is understood by chrome://tracing, Perfetto,
// and speedscope.
type TraceEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds since trace start
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// TraceFile is the JSON-object envelope of a trace_event file.
type TraceFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	Metrics         *Registry    `json:"ipsMetrics,omitempty"`
}

// Trace flattens the span tree into trace events with timestamps relative to
// the root span's start.  Live spans are clamped to now.
func (o *Observer) Trace() []TraceEvent {
	root := o.Root()
	if root == nil {
		return nil
	}
	var out []TraceEvent
	now := time.Now()
	var walk func(s *Span)
	walk = func(s *Span) {
		s.mu.Lock()
		end := s.end
		s.mu.Unlock()
		if end.IsZero() {
			end = now
		}
		ev := TraceEvent{
			Name: s.name,
			Cat:  "ips",
			Ph:   "X",
			Ts:   float64(s.start.Sub(root.start)) / float64(time.Microsecond),
			Dur:  float64(end.Sub(s.start)) / float64(time.Microsecond),
			Pid:  1,
			Tid:  1,
		}
		if attrs := s.Attrs(); len(attrs) > 0 {
			ev.Args = make(map[string]any, len(attrs))
			for _, a := range attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		out = append(out, ev)
		for _, c := range s.Children() {
			walk(c)
		}
	}
	walk(root)
	return out
}

// WriteTrace writes the span tree (and the metrics registry, when present)
// as Chrome trace_event JSON.  No-op on a nil observer.
func (o *Observer) WriteTrace(w io.Writer) error {
	if o == nil {
		return nil
	}
	tf := TraceFile{
		TraceEvents:     o.Trace(),
		DisplayTimeUnit: "ms",
		Metrics:         o.Metrics(),
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(&tf)
}

// WriteTraceFile writes the trace to a file.  No-op on a nil observer.
func (o *Observer) WriteTraceFile(path string) error {
	if o == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := o.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
