package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNesting(t *testing.T) {
	o := New("root")
	a := o.Root().Child("a")
	a1 := a.Child("a1")
	a1.End()
	a2 := a.Child("a2")
	a2.End()
	a.End()
	b := o.Root().Child("b")
	b.End()
	o.Finish()

	root := o.Root()
	if root.Name() != "root" {
		t.Fatalf("root name = %q", root.Name())
	}
	kids := root.Children()
	if len(kids) != 2 || kids[0].Name() != "a" || kids[1].Name() != "b" {
		t.Fatalf("root children = %v", kids)
	}
	if got := a.Children(); len(got) != 2 || got[0] != a1 || got[1] != a2 {
		t.Fatalf("a children wrong")
	}
	if root.ChildByName("b") != b || root.ChildByName("nope") != nil {
		t.Fatal("ChildByName wrong")
	}
	if a1.Duration() < 0 || a.Duration() < a1.Duration() {
		t.Fatalf("durations inconsistent: a=%v a1=%v", a.Duration(), a1.Duration())
	}
	// End is idempotent: duration must not change on a second End.
	d := a.Duration()
	time.Sleep(time.Millisecond)
	a.End()
	if a.Duration() != d {
		t.Fatal("second End changed the duration")
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	o := New("root")
	var wg sync.WaitGroup
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := o.Root().Child(fmt.Sprintf("c%d", i))
			c.SetInt("i", int64(i))
			c.End()
		}(i)
	}
	wg.Wait()
	if got := len(o.Root().Children()); got != 32 {
		t.Fatalf("children = %d, want 32", got)
	}
}

func TestTraceRoundTrip(t *testing.T) {
	o := New("run")
	outer := o.Root().Child("outer")
	outer.SetInt("n", 42)
	outer.SetString("kind", "test")
	inner := outer.Child("inner")
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()
	o.Finish()
	o.Metrics().Counter("c").Add(7)

	var buf bytes.Buffer
	if err := o.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		TraceEvents     []TraceEvent   `json:"traceEvents"`
		DisplayTimeUnit string         `json:"displayTimeUnit"`
		Metrics         map[string]any `json:"ipsMetrics"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) != 3 {
		t.Fatalf("events = %d, want 3", len(tf.TraceEvents))
	}
	byName := map[string]TraceEvent{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph != "X" {
			t.Fatalf("event %q phase = %q, want X", ev.Name, ev.Ph)
		}
		byName[ev.Name] = ev
	}
	run, outerEv, innerEv := byName["run"], byName["outer"], byName["inner"]
	// Containment: child interval inside parent interval (µs precision).
	const eps = 1.0
	contains := func(p, c TraceEvent) bool {
		return c.Ts+eps >= p.Ts && c.Ts+c.Dur <= p.Ts+p.Dur+eps
	}
	if !contains(run, outerEv) || !contains(outerEv, innerEv) {
		t.Fatalf("nesting violated: run=%+v outer=%+v inner=%+v", run, outerEv, innerEv)
	}
	if innerEv.Dur < 1000 {
		t.Fatalf("inner dur = %vµs, want ≥ ~2ms", innerEv.Dur)
	}
	if outerEv.Args["n"] != float64(42) || outerEv.Args["kind"] != "test" {
		t.Fatalf("outer args = %v", outerEv.Args)
	}
	counters, _ := tf.Metrics["counters"].(map[string]any)
	if counters["c"] != float64(7) {
		t.Fatalf("trace metrics = %v", tf.Metrics)
	}
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h", []float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 2, 3, 4, 5} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2, 1} // ≤1: {0.5,1}; ≤2: {1.5,2}; ≤4: {3,4}; +Inf: {5}
	if fmt.Sprint(s.Counts) != fmt.Sprint(want) {
		t.Fatalf("counts = %v, want %v", s.Counts, want)
	}
	if s.Count != 7 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Sum != 0.5+1+1.5+2+3+4+5 {
		t.Fatalf("sum = %v", s.Sum)
	}
	// Same name reuses the histogram regardless of bounds argument.
	if r.Histogram("h", []float64{99}) != h {
		t.Fatal("histogram not deduplicated by name")
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests").Add(3)
	r.Gauge("load").Set(1.5)
	r.Histogram("lat", []float64{1, 10}).Observe(5)

	var buf bytes.Buffer
	r.WriteText(&buf)
	text := buf.String()
	for _, want := range []string{
		"requests 3\n",
		"load 1.5\n",
		`lat_bucket{le="1"} 0`,
		`lat_bucket{le="10"} 1`,
		`lat_bucket{le="+Inf"} 1`,
		"lat_sum 5\n",
		"lat_count 1\n",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text exposition missing %q:\n%s", want, text)
		}
	}

	// String() is the expvar exposition and must be valid JSON.
	var decoded map[string]any
	if err := json.Unmarshal([]byte(r.String()), &decoded); err != nil {
		t.Fatalf("String() not valid JSON: %v", err)
	}

	// The registry serves its text form over HTTP.
	srv := httptest.NewServer(r)
	defer srv.Close()
	resp, err := http.Get(srv.URL)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "requests 3") {
		t.Fatalf("http exposition = %q", body)
	}
}

func TestDebugMux(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	srv := httptest.NewServer(DebugMux(r, nil))
	defer srv.Close()
	for path, want := range map[string]string{
		"/metrics":                     "x 1",
		"/metrics.json":                `"x":1`,
		"/debug/vars":                  "memstats",
		"/debug/pprof/":                "goroutine",
		"/debug/pprof/trace?seconds=0": "", // handler exists (no 404)
	} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Fatalf("%s -> 404", path)
		}
		if want != "" && !strings.Contains(string(body), want) {
			t.Fatalf("%s body missing %q: %q", path, want, body)
		}
	}
}

func TestProgress(t *testing.T) {
	o := New("run")
	var mu sync.Mutex
	var got []string
	o.OnProgress(func(stage string, done, total int) {
		mu.Lock()
		got = append(got, fmt.Sprintf("%s %d/%d", stage, done, total))
		mu.Unlock()
	})
	o.Progress("gen", 1, 2)
	o.Root().Child("span-stage").Progress(2, 2)
	if len(got) != 2 || got[0] != "gen 1/2" || got[1] != "span-stage 2/2" {
		t.Fatalf("progress = %v", got)
	}
	o.OnProgress(nil)
	o.Progress("gen", 2, 2)
	if len(got) != 2 {
		t.Fatal("uninstalled callback still fired")
	}
}

func TestRenderTree(t *testing.T) {
	o := New("run")
	c := o.Root().Child("stage")
	c.SetInt("items", 3)
	c.End()
	o.Finish()
	var buf bytes.Buffer
	o.RenderTree(&buf)
	out := buf.String()
	if !strings.Contains(out, "run") || !strings.Contains(out, "└─ stage") || !strings.Contains(out, "items=3") {
		t.Fatalf("render output:\n%s", out)
	}
}

// TestNilSafety exercises every entry point on nil receivers: nothing may
// panic and the no-op path must not allocate.
func TestNilSafety(t *testing.T) {
	var o *Observer
	var r *Registry
	o.Finish()
	o.Progress("x", 1, 2)
	o.OnProgress(nil)
	o.RenderTree(io.Discard)
	if err := o.WriteTrace(io.Discard); err != nil {
		t.Fatal(err)
	}
	if o.Root() != nil || o.Metrics() != nil || o.Trace() != nil {
		t.Fatal("nil observer returned non-nil")
	}
	if r.Counter("c") != nil || r.Gauge("g") != nil || r.Histogram("h", nil) != nil {
		t.Fatal("nil registry returned non-nil handle")
	}
	r.WriteText(io.Discard)

	allocs := testing.AllocsPerRun(200, func() {
		var o *Observer
		sp := o.Root().Child("x")
		sp.SetInt("k", 1)
		sp.SetFloat("f", 2.5)
		sp.SetString("s", "v")
		sp.Progress(1, 2)
		sp.End()
		var reg *Registry
		reg.Counter("c").Add(1)
		reg.Gauge("g").Set(3)
		reg.Histogram("h", nil).Observe(1)
		_ = sp.Metrics()
	})
	if allocs != 0 {
		t.Fatalf("no-op path allocates %v per run, want 0", allocs)
	}
}

func BenchmarkNoopInstrumentation(b *testing.B) {
	b.ReportAllocs()
	var o *Observer
	var reg *Registry
	for i := 0; i < b.N; i++ {
		sp := o.Root().Child("x")
		sp.SetInt("k", int64(i))
		reg.Counter("c").Add(1)
		reg.Histogram("h", nil).Observe(1)
		sp.End()
	}
}

func BenchmarkLiveCounter(b *testing.B) {
	b.ReportAllocs()
	c := NewRegistry().Counter("c")
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
