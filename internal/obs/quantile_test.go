package obs

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
)

// exactQuantile returns the same ceil(p·n) order statistic the P² estimator
// reports exactly for small n.
func exactQuantile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return math.NaN()
	}
	idx := int(math.Ceil(p*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

// rankError measures estimator quality on the rank scale: the fraction of
// observations between the estimate and the true quantile.  Rank error is
// the right yardstick for P² — on heavy-tailed data a value-scale error can
// be huge while the estimate is only a handful of ranks off.
func rankError(sorted []float64, estimate float64, p float64) float64 {
	below := sort.SearchFloat64s(sorted, estimate)
	return math.Abs(float64(below)/float64(len(sorted)) - p)
}

// TestP2AgainstExactQuantiles is the property test of the streaming
// estimator: over seeded uniform, normal, and heavy-tailed distributions,
// every tracked quantile must land within a small rank distance of the
// exact sort-based quantile.
func TestP2AgainstExactQuantiles(t *testing.T) {
	distributions := map[string]func(r *rand.Rand) float64{
		"uniform": func(r *rand.Rand) float64 { return r.Float64() },
		"normal":  func(r *rand.Rand) float64 { return r.NormFloat64() },
		"heavy-tail": func(r *rand.Rand) float64 {
			// Pareto-like: x = u^{-1/alpha} with alpha 1.2 has infinite
			// variance — the stress case for any moment-based summary.
			u := r.Float64()
			if u < 1e-12 {
				u = 1e-12
			}
			return math.Pow(u, -1/1.2)
		},
		"bimodal": func(r *rand.Rand) float64 {
			if r.Intn(2) == 0 {
				return r.NormFloat64()
			}
			return 100 + r.NormFloat64()
		},
	}
	quantiles := []float64{0.5, 0.95, 0.99}
	const n = 20000
	const maxRankErr = 0.02

	for name, draw := range distributions {
		for qi, p := range quantiles {
			for seed := int64(1); seed <= 3; seed++ {
				rng := rand.New(rand.NewSource(seed))
				est := NewP2(p)
				values := make([]float64, 0, n)
				for i := 0; i < n; i++ {
					v := draw(rng)
					est.Observe(v)
					values = append(values, v)
				}
				sort.Float64s(values)
				got := est.Quantile()
				if math.IsNaN(got) {
					t.Fatalf("%s p%v seed %d: estimate is NaN", name, p, seed)
				}
				if re := rankError(values, got, p); re > maxRankErr {
					t.Errorf("%s p%v seed %d: rank error %.4f > %.4f (est %v, exact %v)",
						name, p, seed, re, maxRankErr, got, exactQuantile(values, p))
				}
				if est.Count() != n {
					t.Fatalf("count = %d, want %d", est.Count(), n)
				}
				_ = qi
			}
		}
	}
}

// TestP2SmallSamples pins the exact-mode contract: for fewer than five
// observations the estimator returns the exact order statistic.
func TestP2SmallSamples(t *testing.T) {
	est := NewP2(0.5)
	if !math.IsNaN(est.Quantile()) {
		t.Fatal("empty estimator did not return NaN")
	}
	for _, v := range []float64{5, 1, 3} {
		est.Observe(v)
	}
	if got := est.Quantile(); got != 3 {
		t.Fatalf("median of {1,3,5} = %v, want 3", got)
	}
	est99 := NewP2(0.99)
	est99.Observe(2)
	est99.Observe(7)
	if got := est99.Quantile(); got != 7 {
		t.Fatalf("p99 of {2,7} = %v, want 7", got)
	}
}

// TestP2Monotone feeds a monotone stream: the p-quantile estimate must stay
// within the observed range and increase with p.
func TestP2Monotone(t *testing.T) {
	ests := []*P2{NewP2(0.5), NewP2(0.95), NewP2(0.99)}
	const n = 5000
	for i := 0; i < n; i++ {
		for _, e := range ests {
			e.Observe(float64(i))
		}
	}
	prev := math.Inf(-1)
	for _, e := range ests {
		q := e.Quantile()
		if q < 0 || q > n-1 {
			t.Fatalf("p%v estimate %v outside observed range", e.p, q)
		}
		if q < prev {
			t.Fatalf("quantile estimates not monotone in p: %v after %v", q, prev)
		}
		prev = q
	}
}

// TestHistogramQuantiles verifies the registry plumbing: a histogram's
// snapshot and text exposition both carry the streaming quantiles.
func TestHistogramQuantiles(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", []float64{10, 100})
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i))
	}
	s := h.Snapshot()
	if s.Quantiles == nil {
		t.Fatal("snapshot has no quantiles")
	}
	for q, want := range map[string]float64{"p50": 500, "p95": 950, "p99": 990} {
		got, ok := s.Quantiles[q]
		if !ok {
			t.Fatalf("snapshot missing %s: %v", q, s.Quantiles)
		}
		if math.Abs(got-want) > 25 {
			t.Fatalf("%s = %v, want ~%v", q, got, want)
		}
	}

	var sb strings.Builder
	r.WriteText(&sb)
	text := sb.String()
	for _, want := range []string{`lat{quantile="0.5"}`, `lat{quantile="0.95"}`, `lat{quantile="0.99"}`} {
		if !strings.Contains(text, want) {
			t.Fatalf("text exposition missing %q:\n%s", want, text)
		}
	}

	// A histogram with no observations exposes no quantile lines.
	r2 := NewRegistry()
	r2.Histogram("empty", nil)
	var sb2 strings.Builder
	r2.WriteText(&sb2)
	if strings.Contains(sb2.String(), "quantile") {
		t.Fatalf("empty histogram emitted quantiles:\n%s", sb2.String())
	}
}
