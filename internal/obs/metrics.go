package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"net/http"
	"slices"
	"sort"
	"sync"
	"sync/atomic"
)

// Registry is a concurrency-safe metrics registry.  Handles are get-or-create
// by name; updates are atomic and lock-free.  A nil *Registry hands out nil
// handles whose update methods are no-ops, so instrumented code can hold and
// use handles unconditionally.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	log      atomic.Pointer[slog.Logger]
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
	}
}

// Counter returns the named counter, creating it on first use (nil for a nil
// registry).
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use (nil for a nil
// registry).
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// SetLogger installs the logger the registry reports misuse through (the
// bounds-mismatch warning of Histogram).  Nil restores the silent default.
// Safe on a nil registry and from any goroutine.
func (r *Registry) SetLogger(l *slog.Logger) {
	if r == nil {
		return
	}
	if l == nil {
		r.log.Store(nil)
		return
	}
	r.log.Store(l)
}

func (r *Registry) logger() *slog.Logger {
	if l := r.log.Load(); l != nil {
		return l
	}
	return nopLogger
}

// Histogram returns the named fixed-bucket histogram, creating it with the
// given upper bounds on first use.  Bounds must be sorted ascending; an
// implicit +Inf bucket catches the overflow.
//
// Deduplication is by name alone: later calls reuse the first histogram
// as-is, whatever bounds they pass.  A later call whose bounds differ from
// the registered ones therefore observes into the original buckets — that
// call's bounds are dropped, and the mismatch is reported as a warning
// through the registry's logger (SetLogger) so the misconfiguration cannot
// stay silent.  Nil for a nil registry.
//
// Every histogram also feeds a fixed-memory P² quantile summary (p50, p95,
// p99), exposed by Snapshot and both expositions.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		h.warnBoundsMismatch(r, name, bounds)
		return h
	}
	r.mu.Lock()
	if h = r.hists[name]; h == nil {
		b := make([]float64, len(bounds))
		copy(b, bounds)
		h = &Histogram{bounds: b, counts: make([]atomic.Int64, len(b)+1), quants: newQuantileSet()}
		r.hists[name] = h
		r.mu.Unlock()
		return h
	}
	r.mu.Unlock()
	h.warnBoundsMismatch(r, name, bounds)
	return h
}

// warnBoundsMismatch logs when a Histogram call asked for bounds that differ
// from the ones the named histogram was registered with.
func (h *Histogram) warnBoundsMismatch(r *Registry, name string, bounds []float64) {
	if slices.Equal(h.bounds, bounds) {
		return
	}
	r.logger().Warn("histogram bounds mismatch: reusing first registration, new bounds dropped",
		slog.String("histogram", name),
		slog.Any("registered_bounds", h.bounds),
		slog.Any("requested_bounds", bounds))
}

// Counter is a monotone atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increments the counter by d (no-op on nil).
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one (no-op on nil).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for nil).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an atomic float-valued instantaneous measurement.
type Gauge struct{ bits atomic.Uint64 }

// Set stores v (no-op on nil).
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add adds d to the gauge (no-op on nil).
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Value returns the current gauge value (0 for nil).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram counts observations into fixed buckets: bucket i counts values
// v ≤ bounds[i] (and > bounds[i-1]); the final bucket is the +Inf overflow.
// Alongside the buckets it maintains a streaming P² quantile summary (p50,
// p95, p99) in constant memory.
type Histogram struct {
	bounds  []float64
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64

	qmu    sync.Mutex
	quants *quantileSet
}

// Observe records one value (no-op on nil).
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v
	h.counts[i].Add(1)
	h.count.Add(1)
	if h.quants != nil {
		h.qmu.Lock()
		h.quants.observe(v)
		h.qmu.Unlock()
	}
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// HistSnapshot is a consistent-enough point-in-time view of a histogram.
type HistSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"` // len(Bounds)+1; last is +Inf overflow
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
	// Quantiles carries the streaming P² estimates keyed "p50", "p95",
	// "p99"; nil before the first observation.
	Quantiles map[string]float64 `json:"quantiles,omitempty"`
}

// Snapshot returns the current bucket counts and quantile estimates (zero
// value for nil).
func (h *Histogram) Snapshot() HistSnapshot {
	if h == nil {
		return HistSnapshot{}
	}
	s := HistSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    math.Float64frombits(h.sumBits.Load()),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	if h.quants != nil {
		h.qmu.Lock()
		s.Quantiles = h.quants.snapshot()
		h.qmu.Unlock()
	}
	return s
}

// sortedKeys returns the map keys in sorted order.
func sortedKeys[V any](m map[string]V) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteText writes a Prometheus-flavoured plain-text exposition: one
// `name value` line per counter/gauge, and `name_bucket{le="..."}` /
// `name{quantile="..."}` / `name_sum` / `name_count` lines per histogram.
// No-op on nil.
func (r *Registry) WriteText(w io.Writer) {
	if r == nil {
		return
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, name := range sortedKeys(r.counters) {
		fmt.Fprintf(w, "%s %d\n", name, r.counters[name].Value())
	}
	for _, name := range sortedKeys(r.gauges) {
		fmt.Fprintf(w, "%s %g\n", name, r.gauges[name].Value())
	}
	for _, name := range sortedKeys(r.hists) {
		s := r.hists[name].Snapshot()
		cum := int64(0)
		for i, b := range s.Bounds {
			cum += s.Counts[i]
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, fmt.Sprintf("%g", b), cum)
		}
		cum += s.Counts[len(s.Counts)-1]
		fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", name, cum)
		if s.Quantiles != nil {
			for qi, q := range histQuantiles {
				fmt.Fprintf(w, "%s{quantile=%q} %g\n", name, fmt.Sprintf("%g", q), s.Quantiles[histQuantileNames[qi]])
			}
		}
		fmt.Fprintf(w, "%s_sum %g\n", name, s.Sum)
		fmt.Fprintf(w, "%s_count %d\n", name, s.Count)
	}
}

// snapshot collects every metric into plain maps for JSON encoding.
func (r *Registry) snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	counters := map[string]int64{}
	for name, c := range r.counters {
		counters[name] = c.Value()
	}
	gauges := map[string]float64{}
	for name, g := range r.gauges {
		gauges[name] = g.Value()
	}
	hists := map[string]HistSnapshot{}
	for name, h := range r.hists {
		hists[name] = h.Snapshot()
	}
	return map[string]any{"counters": counters, "gauges": gauges, "histograms": hists}
}

// MarshalJSON encodes the registry as {"counters":…,"gauges":…,"histograms":…}.
func (r *Registry) MarshalJSON() ([]byte, error) {
	return json.Marshal(r.snapshot())
}

// String returns the JSON exposition, which makes *Registry an expvar.Var so
// callers can expvar.Publish it.
func (r *Registry) String() string {
	b, err := json.Marshal(r.snapshot())
	if err != nil {
		return "{}"
	}
	return string(b)
}

// ServeHTTP serves the text exposition, making *Registry an http.Handler
// mountable at /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	r.WriteText(w)
}
