// Package obs is the stdlib-only observability layer of the IPS pipeline:
// hierarchical spans with a text tree renderer and Chrome trace_event JSON
// export, a concurrency-safe metrics registry (counters, gauges, fixed-bucket
// histograms) with text and expvar-style expositions, progress callbacks for
// CLIs, and a live-profiling debug server (net/http/pprof + /metrics).
//
// Every entry point is safe on a nil receiver and does nothing, so
// instrumented hot loops cost a single pointer comparison — and allocate
// nothing — when observability is off.  Typical wiring:
//
//	o := obs.New("ips")
//	opt.Obs = o                       // core.Options
//	res, _ := core.Discover(train, opt)
//	o.Finish()
//	o.Root().Render(os.Stderr)        // human-readable span tree
//	o.WriteTraceFile("trace.json")    // chrome://tracing / Perfetto
package obs

import (
	"io"
	"sync/atomic"
	"time"
)

// ProgressFunc receives streamed stage progress.  It may be invoked
// concurrently from worker goroutines, so implementations must be
// concurrency-safe; done/total are monotone per stage only up to scheduling.
type ProgressFunc func(stage string, done, total int)

// Observer owns one run's span tree and metrics registry.  A nil *Observer
// is the no-op default: every method returns a zero value without touching
// memory.
type Observer struct {
	root     *Span
	reg      *Registry
	progress atomic.Pointer[ProgressFunc]
}

// New returns an observer with a live metrics registry and a root span named
// name, started now.
func New(name string) *Observer {
	o := &Observer{reg: NewRegistry()}
	o.root = &Span{obs: o, name: name, start: time.Now()}
	return o
}

// SpansOnly returns an observer that records spans but has no metrics
// registry: Metrics() returns nil, so counter updates in hot loops stay
// no-ops.  The pipeline uses this internally to derive Timings when the
// caller did not ask for observability.
func SpansOnly(name string) *Observer {
	o := &Observer{}
	o.root = &Span{obs: o, name: name, start: time.Now()}
	return o
}

// Root returns the root span (nil for a nil observer).
func (o *Observer) Root() *Span {
	if o == nil {
		return nil
	}
	return o.root
}

// Metrics returns the registry, which is nil for a nil or spans-only
// observer; all Registry methods are nil-safe.
func (o *Observer) Metrics() *Registry {
	if o == nil {
		return nil
	}
	return o.reg
}

// Finish ends the root span.  Idempotent.
func (o *Observer) Finish() {
	o.Root().End()
}

// OnProgress installs the progress callback (nil uninstalls).
func (o *Observer) OnProgress(fn ProgressFunc) {
	if o == nil {
		return
	}
	if fn == nil {
		o.progress.Store(nil)
		return
	}
	o.progress.Store(&fn)
}

// Progress streams done/total progress for a stage to the installed
// callback, if any.  Safe from any goroutine.
func (o *Observer) Progress(stage string, done, total int) {
	if o == nil {
		return
	}
	if fn := o.progress.Load(); fn != nil {
		(*fn)(stage, done, total)
	}
}

// RenderTree writes the whole span tree; see Span.Render.
func (o *Observer) RenderTree(w io.Writer) {
	o.Root().Render(w)
}
