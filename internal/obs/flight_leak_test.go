// The leak check lives in an external test package: internal/faulty imports
// internal/ucr, which logs through obs, so an in-package test importing
// faulty would close an import cycle.
package obs_test

import (
	"context"
	"testing"
	"time"

	"ips/internal/faulty"
	"ips/internal/obs"
)

// TestFlightRecorderDrainsOnCancel is the leak check: cancelling the context
// (without calling Stop) must terminate the sampler goroutine.
func TestFlightRecorderDrainsOnCancel(t *testing.T) {
	lc := faulty.NewLeakCheck()
	ctx, cancel := context.WithCancel(context.Background())
	fr := obs.StartFlight(ctx, time.Millisecond, 64)
	time.Sleep(5 * time.Millisecond)
	cancel()
	fr.Wait()
	if diag := lc.Done(2 * time.Second); diag != "" {
		t.Fatalf("sampler leaked after context cancellation:\n%s", diag)
	}
	// Stop after cancellation must not hang or panic.
	fr.Stop()
	if len(fr.Samples()) == 0 {
		t.Fatal("no samples despite running before cancellation")
	}
}
