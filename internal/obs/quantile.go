package obs

import (
	"math"
	"sort"
)

// P2 is a streaming quantile estimator after Jain & Chlamtac's P² algorithm:
// five markers track the running minimum, the target quantile, the two
// mid-quantiles flanking it, and the maximum, adjusting marker heights by a
// piecewise-parabolic interpolation as observations arrive.  Memory is
// constant (five heights, five positions) regardless of stream length, and
// the estimate is exact until the sixth observation.
//
// P2 is not concurrency-safe; Histogram serialises access for the registry
// path.  Given the same observation sequence the estimate is deterministic.
type P2 struct {
	p    float64    // target quantile in (0, 1)
	n    int        // observations seen
	q    [5]float64 // marker heights
	pos  [5]float64 // actual marker positions (1-based)
	want [5]float64 // desired marker positions
	dn   [5]float64 // desired-position increments per observation
}

// NewP2 returns an estimator for the p-quantile, 0 < p < 1.
func NewP2(p float64) *P2 {
	e := &P2{p: p}
	e.dn = [5]float64{0, p / 2, p, (1 + p) / 2, 1}
	return e
}

// Observe feeds one value into the estimator.
func (e *P2) Observe(v float64) {
	if e.n < 5 {
		e.q[e.n] = v
		e.n++
		if e.n == 5 {
			sort.Float64s(e.q[:])
			for i := range e.pos {
				e.pos[i] = float64(i + 1)
				e.want[i] = 1 + 4*e.dn[i]
			}
		}
		return
	}

	// Locate the cell containing v and clamp the extreme markers.
	var k int
	switch {
	case v < e.q[0]:
		e.q[0] = v
		k = 0
	case v >= e.q[4]:
		e.q[4] = v
		k = 3
	default:
		for k = 0; k < 3; k++ {
			if v < e.q[k+1] {
				break
			}
		}
	}
	for i := k + 1; i < 5; i++ {
		e.pos[i]++
	}
	for i := range e.want {
		e.want[i] += e.dn[i]
	}

	// Nudge the three interior markers toward their desired positions.
	for i := 1; i <= 3; i++ {
		d := e.want[i] - e.pos[i]
		if (d >= 1 && e.pos[i+1]-e.pos[i] > 1) || (d <= -1 && e.pos[i-1]-e.pos[i] < -1) {
			s := 1.0
			if d < 0 {
				s = -1.0
			}
			q := e.parabolic(i, s)
			if e.q[i-1] < q && q < e.q[i+1] {
				e.q[i] = q
			} else {
				e.q[i] = e.linear(i, s)
			}
			e.pos[i] += s
		}
	}
	e.n++
}

// parabolic is the P² piecewise-parabolic height prediction for moving
// marker i by d ∈ {−1, +1}.
func (e *P2) parabolic(i int, d float64) float64 {
	return e.q[i] + d/(e.pos[i+1]-e.pos[i-1])*
		((e.pos[i]-e.pos[i-1]+d)*(e.q[i+1]-e.q[i])/(e.pos[i+1]-e.pos[i])+
			(e.pos[i+1]-e.pos[i]-d)*(e.q[i]-e.q[i-1])/(e.pos[i]-e.pos[i-1]))
}

// linear is the fallback height prediction when the parabola overshoots a
// neighbouring marker.
func (e *P2) linear(i int, d float64) float64 {
	j := i + int(d)
	return e.q[i] + d*(e.q[j]-e.q[i])/(e.pos[j]-e.pos[i])
}

// Count returns the number of observations fed so far.
func (e *P2) Count() int { return e.n }

// Quantile returns the current estimate: NaN before the first observation,
// the exact sample quantile while n ≤ 5, the P² marker height afterwards.
func (e *P2) Quantile() float64 {
	switch {
	case e.n == 0:
		return math.NaN()
	case e.n < 5:
		s := append([]float64(nil), e.q[:e.n]...)
		sort.Float64s(s)
		idx := int(math.Ceil(e.p*float64(e.n))) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= e.n {
			idx = e.n - 1
		}
		return s[idx]
	}
	return e.q[2]
}

// histQuantiles are the summary quantiles every registry histogram tracks.
var histQuantiles = []float64{0.5, 0.95, 0.99}

// histQuantileNames label histQuantiles in snapshots and reports.
var histQuantileNames = []string{"p50", "p95", "p99"}

// quantileSet bundles one P2 estimator per summary quantile.  Access is
// serialised by the owning Histogram.
type quantileSet struct {
	est [3]*P2
}

func newQuantileSet() *quantileSet {
	qs := &quantileSet{}
	for i, p := range histQuantiles {
		qs.est[i] = NewP2(p)
	}
	return qs
}

func (qs *quantileSet) observe(v float64) {
	for _, e := range qs.est {
		e.Observe(v)
	}
}

// snapshot returns the current estimates keyed p50/p95/p99, or nil before
// the first observation.
func (qs *quantileSet) snapshot() map[string]float64 {
	if qs.est[0].Count() == 0 {
		return nil
	}
	out := make(map[string]float64, len(qs.est))
	for i, e := range qs.est {
		out[histQuantileNames[i]] = e.Quantile()
	}
	return out
}
