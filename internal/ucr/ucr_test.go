package ucr

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"ips/internal/classify"
)

func TestArchiveMetadata(t *testing.T) {
	if len(Archive) != 46 {
		t.Fatalf("archive size = %d, want 46 (the paper's evaluation set)", len(Archive))
	}
	seen := map[string]bool{}
	for _, m := range Archive {
		if seen[m.Name] {
			t.Fatalf("duplicate dataset %s", m.Name)
		}
		seen[m.Name] = true
		if m.Train <= 0 || m.Test <= 0 || m.Classes < 2 || m.Length <= 0 {
			t.Fatalf("bad metadata: %+v", m)
		}
	}
	// Spot-check a few well-known entries.
	ah := mustFind(t, "ArrowHead")
	if ah.Train != 36 || ah.Classes != 3 || ah.Length != 251 {
		t.Fatalf("ArrowHead meta = %+v", ah)
	}
	ipd := mustFind(t, "ItalyPowerDemand")
	if ipd.Length != 24 || ipd.Classes != 2 {
		t.Fatalf("ItalyPowerDemand meta = %+v", ipd)
	}
}

// mustFind is the test-side shorthand for Find on names that are
// compile-time constants of the test tables.
func mustFind(t testing.TB, name string) Meta {
	t.Helper()
	m, err := Find(name)
	if err != nil {
		t.Fatalf("Find(%q): %v", name, err)
	}
	return m
}

func TestLookup(t *testing.T) {
	if _, ok := Lookup("NoSuchDataset"); ok {
		t.Fatal("unknown dataset should not be found")
	}
	_, err := Find("NoSuchDataset")
	if err == nil {
		t.Fatal("Find should fail on an unknown dataset")
	}
	if !errors.Is(err, ErrUnknownDataset) {
		t.Fatalf("Find error = %v, want ErrUnknownDataset", err)
	}
	if !strings.Contains(err.Error(), "NoSuchDataset") {
		t.Fatalf("Find error %q does not name the dataset", err)
	}
}

func TestGenerateShapes(t *testing.T) {
	m := mustFind(t, "GunPoint")
	train, test := Generate(m, GenConfig{Seed: 1})
	if train.Len() != m.Train || test.Len() != m.Test {
		t.Fatalf("sizes = %d/%d, want %d/%d", train.Len(), test.Len(), m.Train, m.Test)
	}
	if train.SeriesLen() != m.Length {
		t.Fatalf("length = %d, want %d", train.SeriesLen(), m.Length)
	}
	if got := len(train.Classes()); got != m.Classes {
		t.Fatalf("classes = %d, want %d", got, m.Classes)
	}
	if err := train.Validate(true); err != nil {
		t.Fatal(err)
	}
	if err := test.Validate(true); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateCaps(t *testing.T) {
	m := mustFind(t, "ElectricDevices") // 8926 train in the real archive
	train, test := Generate(m, GenConfig{MaxTrain: 50, MaxTest: 60, MaxLength: 64, Seed: 2})
	if train.Len() != 50 || test.Len() != 60 {
		t.Fatalf("capped sizes = %d/%d", train.Len(), test.Len())
	}
	if train.SeriesLen() != 64 {
		t.Fatalf("capped length = %d", train.SeriesLen())
	}
	// All 7 classes still present under the cap.
	if got := len(train.Classes()); got != m.Classes {
		t.Fatalf("capped classes = %d, want %d", got, m.Classes)
	}
	// Caps below the class count are raised to it.
	tiny, _ := Generate(m, GenConfig{MaxTrain: 2, MaxTest: 2, MaxLength: 32, Seed: 2})
	if tiny.Len() < m.Classes {
		t.Fatalf("tiny cap gave %d instances, need >= %d", tiny.Len(), m.Classes)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := mustFind(t, "Coffee")
	a, _ := Generate(m, GenConfig{Seed: 7})
	b, _ := Generate(m, GenConfig{Seed: 7})
	for i := range a.Instances {
		for j := range a.Instances[i].Values {
			if a.Instances[i].Values[j] != b.Instances[i].Values[j] {
				t.Fatal("same seed should reproduce identical data")
			}
		}
	}
	c, _ := Generate(m, GenConfig{Seed: 8})
	same := true
	for i := range a.Instances {
		for j := range a.Instances[i].Values {
			if a.Instances[i].Values[j] != c.Instances[i].Values[j] {
				same = false
			}
		}
	}
	if same {
		t.Fatal("different seeds should differ")
	}
}

func TestGeneratedDataIsLearnable(t *testing.T) {
	// The whole point of the substitute: classes must be separable by their
	// discriminative subsequences, so 1NN-ED should beat chance clearly.
	m := mustFind(t, "ItalyPowerDemand")
	train, test := Generate(m, GenConfig{MaxTest: 200, Seed: 3})
	acc := classify.EvaluateNN(train.Instances, test.Instances, classify.NNConfig{Metric: classify.Euclidean})
	if acc < 75 {
		t.Fatalf("1NN-ED accuracy on generated data = %v%%, want >= 75%%", acc)
	}
}

func TestGeneratedMultiClassLearnable(t *testing.T) {
	m := mustFind(t, "CBF") // 3 classes
	train, test := Generate(m, GenConfig{MaxTest: 150, Seed: 4})
	acc := classify.EvaluateNN(train.Instances, test.Instances, classify.NNConfig{Metric: classify.Euclidean})
	if acc < 60 { // chance is 33%
		t.Fatalf("3-class accuracy = %v%%", acc)
	}
}

func TestTSVRoundTrip(t *testing.T) {
	dir := t.TempDir()
	m := mustFind(t, "SonyAIBORobotSurface1")
	train, test := Generate(m, GenConfig{MaxTrain: 10, MaxTest: 10, MaxLength: 30, Seed: 5})
	if err := WriteTSV(filepath.Join(dir, "Sony_TRAIN.tsv"), train); err != nil {
		t.Fatal(err)
	}
	if err := WriteTSV(filepath.Join(dir, "Sony_TEST.tsv"), test); err != nil {
		t.Fatal(err)
	}
	ltrain, ltest, err := LoadSplit(dir, "Sony")
	if err != nil {
		t.Fatal(err)
	}
	if ltrain.Len() != train.Len() || ltest.Len() != test.Len() {
		t.Fatalf("round trip sizes = %d/%d", ltrain.Len(), ltest.Len())
	}
	for i := range train.Instances {
		if ltrain.Instances[i].Label != train.Instances[i].Label {
			t.Fatalf("label mismatch at %d", i)
		}
		for j := range train.Instances[i].Values {
			if math.Abs(ltrain.Instances[i].Values[j]-train.Instances[i].Values[j]) > 1e-9 {
				t.Fatalf("value mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestLoadTSVLabelMapping(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "labels.tsv")
	// Labels -1 and 1 (a common UCR convention) must map to 0 and 1.
	content := "1\t0.5\t0.6\n-1\t0.1\t0.2\n1\t0.7\t0.8\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instances[0].Label != 1 || d.Instances[1].Label != 0 || d.Instances[2].Label != 1 {
		t.Fatalf("labels = %v", d.Labels())
	}
	// Non-numeric labels sort lexically.
	content = "b\t1\na\t2\n"
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err = LoadTSV(path)
	if err != nil {
		t.Fatal(err)
	}
	if d.Instances[0].Label != 1 || d.Instances[1].Label != 0 {
		t.Fatalf("lexical labels = %v", d.Labels())
	}
}

func TestLoadTSVErrors(t *testing.T) {
	if _, err := LoadTSV("/nonexistent/path.tsv"); err == nil {
		t.Fatal("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.tsv")
	os.WriteFile(bad, []byte("1\tnot-a-number\n"), 0o644)
	if _, err := LoadTSV(bad); err == nil {
		t.Fatal("bad value should error")
	}
	os.WriteFile(bad, []byte("justalabel\n"), 0o644)
	if _, err := LoadTSV(bad); err == nil {
		t.Fatal("label-only line should error")
	}
	os.WriteFile(bad, []byte("\n\n"), 0o644)
	if _, err := LoadTSV(bad); err == nil {
		t.Fatal("empty dataset should error")
	}
}

func TestGenerateByName(t *testing.T) {
	tr, te, err := GenerateByName("Coffee", GenConfig{MaxTrain: 8, MaxTest: 8, MaxLength: 40, Seed: 6})
	if err != nil || tr.Len() == 0 || te.Len() == 0 {
		t.Fatalf("GenerateByName: %v", err)
	}
	if _, _, err := GenerateByName("Bogus", GenConfig{}); err == nil {
		t.Fatal("unknown name should error")
	}
}

func TestSmoothWalkProperties(t *testing.T) {
	// Patterns are tapered to zero at both ends (no step discontinuity).
	m := mustFind(t, "BeetleFly")
	g := newGenerator(m, GenConfig{Seed: 9})
	for _, p := range g.patterns {
		if math.Abs(p[0]) > 1e-9 || math.Abs(p[len(p)-1]) > 1e-9 {
			t.Fatalf("pattern ends not tapered: %v %v", p[0], p[len(p)-1])
		}
		var nonZero bool
		for _, v := range p {
			if math.Abs(v) > 0.1 {
				nonZero = true
			}
		}
		if !nonZero {
			t.Fatal("pattern is degenerate (all near zero)")
		}
	}
}
