package ucr

import (
	"context"
	"log/slog"

	"ips/internal/obs"
	"ips/internal/ts"
)

// The Ctx variants log what was loaded — name, shape, and content hash —
// through the context logger at debug level.  The hash walks the whole
// dataset, so it is computed only when a debug record would actually be
// emitted; with logging off the variants cost one context lookup over their
// plain counterparts.

// logDataset emits one debug record describing a loaded or generated split.
func logDataset(ctx context.Context, op string, d *ts.Dataset) {
	lg := obs.Log(ctx)
	if !lg.Enabled(ctx, slog.LevelDebug) {
		return
	}
	lg.Debug("dataset ready",
		slog.String("op", op),
		slog.String("dataset", d.Name),
		slog.Int("instances", d.Len()),
		slog.Int("length", d.SeriesLen()),
		slog.Int("classes", len(d.Classes())),
		slog.String("hash", d.ContentHash()))
}

// LoadTSVCtx is LoadTSV with a debug log record on success.
func LoadTSVCtx(ctx context.Context, path string) (*ts.Dataset, error) {
	d, err := LoadTSV(path)
	if err != nil {
		return nil, err
	}
	logDataset(ctx, "ucr.load-tsv", d)
	return d, nil
}

// LoadSplitCtx is LoadSplit with debug log records on success.
func LoadSplitCtx(ctx context.Context, dir, name string) (train, test *ts.Dataset, err error) {
	train, test, err = LoadSplit(dir, name)
	if err != nil {
		return nil, nil, err
	}
	logDataset(ctx, "ucr.load-split", train)
	logDataset(ctx, "ucr.load-split", test)
	return train, test, nil
}

// GenerateByNameCtx is GenerateByName with debug log records on success.
func GenerateByNameCtx(ctx context.Context, name string, cfg GenConfig) (train, test *ts.Dataset, err error) {
	train, test, err = GenerateByName(name, cfg)
	if err != nil {
		return nil, nil, err
	}
	logDataset(ctx, "ucr.generate", train)
	logDataset(ctx, "ucr.generate", test)
	return train, test, nil
}
