package ucr

import (
	"hash/fnv"
	"math"
	"math/rand"

	"ips/internal/ts"
)

// GenConfig controls synthetic generation.  Zero values mean "use the real
// archive size"; the caps exist so that CI-sized runs can shrink the largest
// datasets while keeping their relative scale ordering.
type GenConfig struct {
	MaxTrain  int     // cap on training instances (0 = archive size)
	MaxTest   int     // cap on test instances (0 = archive size)
	MaxLength int     // cap on series length (0 = archive length)
	Noise     float64 // noise std relative to pattern amplitude (0 = per-dataset default)
	Seed      int64   // mixed into the per-dataset seed
}

// datasetSeed derives a stable seed from the dataset name and config seed.
func datasetSeed(name string, seed int64) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return int64(h.Sum64()) ^ seed
}

// generator holds the per-dataset ingredients shared by every instance:
// per-class discriminative patterns and anchors, and the background process
// parameters.
type generator struct {
	meta     Meta
	length   int
	patterns [][]float64 // one per class
	anchors  []int       // preferred insertion position per class
	bgFreqs  []float64
	bgAmps   []float64
	bgPhases []float64
	noise    float64
	warp     float64 // anchor jitter as a fraction of length
	// anomalyProb is the chance an instance of ANY class carries a rare
	// high-amplitude burst with a unique shape.  These bursts are the
	// discords-as-"shapelets" trap of §II-B: they produce the largest
	// matrix-profile differences (discord in every class) and mislead the
	// MP baseline, while motif-based discovery is immune to them.
	anomalyProb float64
	anomalyLen  int
}

// smoothWalk produces a z-normalised smooth random curve of length n: a
// Gaussian random walk passed through a moving-average filter.  This is the
// shape family used for class-discriminative patterns.
func smoothWalk(n int, rng *rand.Rand) []float64 {
	raw := make([]float64, n)
	v := 0.0
	for i := range raw {
		v += rng.NormFloat64()
		raw[i] = v
	}
	// Moving average with window ~n/6 keeps the pattern smooth but shaped.
	w := n / 6
	if w < 2 {
		w = 2
	}
	out := make([]float64, n)
	for i := range out {
		lo := i - w/2
		hi := lo + w
		if lo < 0 {
			lo = 0
		}
		if hi > n {
			hi = n
		}
		var s float64
		for j := lo; j < hi; j++ {
			s += raw[j]
		}
		out[i] = s / float64(hi-lo)
	}
	// Taper the ends so insertion does not create step discontinuities.
	z := ts.ZNorm(out)
	for i := range z {
		t := float64(i) / float64(n-1)
		taper := math.Sin(math.Pi * t)
		z[i] *= taper
	}
	return z
}

// maxAbsCorrelation returns the largest |Pearson correlation| between p and
// any of the existing patterns (all patterns share a length).
func maxAbsCorrelation(p []float64, existing [][]float64) float64 {
	worst := 0.0
	zp := ts.ZNorm(p)
	for _, q := range existing {
		zq := ts.ZNorm(q)
		var corr float64
		for i := range zp {
			corr += zp[i] * zq[i]
		}
		corr = math.Abs(corr / float64(len(zp)))
		if corr > worst {
			worst = corr
		}
	}
	return worst
}

func newGenerator(m Meta, cfg GenConfig) *generator {
	length := m.Length
	if cfg.MaxLength > 0 && length > cfg.MaxLength {
		length = cfg.MaxLength
	}
	rng := rand.New(rand.NewSource(datasetSeed(m.Name, cfg.Seed)))
	g := &generator{meta: m, length: length}
	// Per-dataset difficulty: noise in [0.15, 0.45], warp in [0.05, 0.15].
	g.noise = 0.15 + 0.3*rng.Float64()
	if cfg.Noise > 0 {
		g.noise = cfg.Noise
	}
	g.warp = 0.05 + 0.1*rng.Float64()
	g.anomalyProb = 0.1 + 0.15*rng.Float64()
	g.anomalyLen = int(0.15 * float64(length))
	if g.anomalyLen < 4 {
		g.anomalyLen = 4
	}
	// Shared background: three slow sinusoids with dataset-level phases;
	// instances jitter the phase slightly so the background is structured
	// but not a constant offset.
	for h := 0; h < 3; h++ {
		g.bgFreqs = append(g.bgFreqs, 0.5+2.5*rng.Float64())
		g.bgAmps = append(g.bgAmps, 0.2+0.4*rng.Float64())
		g.bgPhases = append(g.bgPhases, rng.Float64()*2*math.Pi)
	}
	// One discriminative pattern per class, length ~22% of the series,
	// anchored at a class-specific position.
	pl := int(0.22 * float64(length))
	if pl < 6 {
		pl = 6
	}
	if pl > length {
		pl = length
	}
	for c := 0; c < m.Classes; c++ {
		// Redraw until the new pattern is decorrelated from every earlier
		// class's pattern; otherwise two classes can be inseparable by
		// construction, which no archive dataset is.
		var p []float64
		for attempt := 0; attempt < 50; attempt++ {
			p = smoothWalk(pl, rng)
			if maxAbsCorrelation(p, g.patterns) < 0.6 {
				break
			}
		}
		amp := 1.6 + 0.8*rng.Float64()
		for i := range p {
			p[i] *= amp
		}
		g.patterns = append(g.patterns, p)
		maxAnchor := length - pl
		anchor := 0
		if maxAnchor > 0 {
			anchor = rng.Intn(maxAnchor)
		}
		g.anchors = append(g.anchors, anchor)
	}
	return g
}

// addBackground writes the dataset-type-specific background process into
// vals.  Each UCR data type has a characteristic texture; reproducing it
// keeps the per-type difficulty ordering of the archive:
//
//   - ECG: a periodic sharp beat (QRS-like spike train) over a slow wander;
//   - Device: duty-cycle square waves (appliances switching on and off);
//   - Spectro: a single smooth broad curve (absorption spectra);
//   - Motion: heavy low-frequency drift (limb trajectories);
//   - everything else: the generic sum of slow sinusoids.
func (g *generator) addBackground(vals ts.Series, rng *rand.Rand) {
	n := len(vals)
	switch g.meta.Type {
	case "ECG":
		period := n / 4
		if period < 8 {
			period = 8
		}
		offset := rng.Intn(period)
		for i := range vals {
			// Slow baseline wander.
			vals[i] += 0.3 * math.Sin(2*math.Pi*float64(i)/float64(n)+g.bgPhases[0])
			// Sharp beat: a two-sample spike at each period.
			if (i+offset)%period == 0 {
				vals[i] += 1.2
				if i+1 < n {
					vals[i+1] -= 0.6
				}
			}
		}
	case "Device":
		period := n/3 + rng.Intn(n/3+1)
		duty := 0.3 + 0.4*rng.Float64()
		level := 0.8 + 0.4*rng.Float64()
		offset := rng.Intn(period)
		for i := range vals {
			if float64((i+offset)%period) < duty*float64(period) {
				vals[i] += level
			}
		}
	case "Spectro":
		// The absorption-curve centre is a dataset-level property (bgPhases
		// reused as the stable random source); instances jitter it slightly.
		centre := float64(n) * (0.3 + 0.4*(g.bgPhases[0]/(2*math.Pi)))
		centre += 0.02 * float64(n) * rng.NormFloat64()
		width := float64(n) * 0.3
		for i := range vals {
			d := (float64(i) - centre) / width
			vals[i] += 1.5 * math.Exp(-d*d)
		}
	case "Motion":
		// Damped random-walk drift, normalised afterwards so it textures
		// the series without drowning the class patterns.
		drift := make([]float64, n)
		v := 0.0
		x := 0.0
		for i := range drift {
			v += 0.05 * rng.NormFloat64()
			v *= 0.95
			x += v
			x *= 0.995
			drift[i] = x
		}
		_, std := ts.MeanStd(drift)
		if std < 1e-9 {
			std = 1
		}
		for i := range vals {
			vals[i] += 0.3 * drift[i] / std
		}
	default:
		for h := range g.bgFreqs {
			phase := g.bgPhases[h] + 0.3*rng.NormFloat64()
			f := g.bgFreqs[h]
			a := g.bgAmps[h]
			for i := range vals {
				vals[i] += a * math.Sin(2*math.Pi*f*float64(i)/float64(n)+phase)
			}
		}
	}
}

// instance synthesises one labelled instance.
func (g *generator) instance(class int, rng *rand.Rand) ts.Instance {
	n := g.length
	vals := make(ts.Series, n)
	g.addBackground(vals, rng)
	// Noise.
	for i := range vals {
		vals[i] += g.noise * rng.NormFloat64()
	}
	// Class pattern at a jittered anchor.
	p := g.patterns[class]
	jitter := int(g.warp * float64(n))
	at := g.anchors[class]
	if jitter > 0 {
		at += rng.Intn(2*jitter+1) - jitter
	}
	if at < 0 {
		at = 0
	}
	if at+len(p) > n {
		at = n - len(p)
	}
	for i, pv := range p {
		vals[at+i] += pv
	}
	// Rare cross-class anomaly burst with a unique shape (see anomalyProb).
	if rng.Float64() < g.anomalyProb && g.anomalyLen < n {
		burst := smoothWalk(g.anomalyLen, rng)
		amp := 3 + 2*rng.Float64()
		ba := rng.Intn(n - g.anomalyLen)
		for i, bv := range burst {
			vals[ba+i] += amp * bv
		}
	}
	return ts.Instance{Values: vals, Label: class}
}

// split generates count instances with classes cycling round-robin so every
// class is represented even under aggressive caps.
func (g *generator) split(name string, count int, rng *rand.Rand) *ts.Dataset {
	d := &ts.Dataset{Name: name}
	for i := 0; i < count; i++ {
		d.Instances = append(d.Instances, g.instance(i%g.meta.Classes, rng))
	}
	return d
}

// Generate synthesises the train and test splits of the dataset.  Output is
// deterministic in (m.Name, cfg.Seed).
func Generate(m Meta, cfg GenConfig) (train, test *ts.Dataset) {
	g := newGenerator(m, cfg)
	nTrain, nTest := m.Train, m.Test
	if cfg.MaxTrain > 0 && nTrain > cfg.MaxTrain {
		nTrain = cfg.MaxTrain
	}
	if cfg.MaxTest > 0 && nTest > cfg.MaxTest {
		nTest = cfg.MaxTest
	}
	if nTrain < m.Classes {
		nTrain = m.Classes // at least one instance per class
	}
	if nTest < m.Classes {
		nTest = m.Classes
	}
	rng := rand.New(rand.NewSource(datasetSeed(m.Name, cfg.Seed) + 1))
	train = g.split(m.Name+"_TRAIN", nTrain, rng)
	test = g.split(m.Name+"_TEST", nTest, rng)
	return train, test
}

// GenerateByName is Generate for a dataset identified by name.  Unknown
// names return an error matching ErrUnknownDataset.
func GenerateByName(name string, cfg GenConfig) (train, test *ts.Dataset, err error) {
	m, err := Find(name)
	if err != nil {
		return nil, nil, err
	}
	tr, te := Generate(m, cfg)
	return tr, te, nil
}
