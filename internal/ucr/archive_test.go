package ucr

import (
	"testing"

	"ips/internal/ts"
)

// TestAllDatasetsGenerate sweeps every archive entry (and the extras) at a
// small cap: each must produce a valid two-class-or-more dataset with every
// class represented and the configured shapes.
func TestAllDatasetsGenerate(t *testing.T) {
	cfg := GenConfig{MaxTrain: 12, MaxTest: 12, MaxLength: 64, Seed: 9}
	all := append(append([]Meta(nil), Archive...), Extra...)
	for _, m := range all {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			train, test := Generate(m, cfg)
			if err := train.Validate(true); err != nil {
				t.Fatalf("train invalid: %v", err)
			}
			if err := test.Validate(true); err != nil {
				t.Fatalf("test invalid: %v", err)
			}
			if got := len(train.Classes()); got != m.Classes {
				t.Fatalf("train classes = %d, want %d", got, m.Classes)
			}
			wantLen := m.Length
			if wantLen > 64 {
				wantLen = 64
			}
			if train.SeriesLen() != wantLen {
				t.Fatalf("series len = %d, want %d", train.SeriesLen(), wantLen)
			}
		})
	}
}

// TestGeneratedSeparability spot-checks that a sample of generated datasets
// is learnable by 1NN well above chance — the property the whole evaluation
// rests on.
func TestGeneratedSeparability(t *testing.T) {
	names := []string{"GunPoint", "Coffee", "Wafer", "SyntheticControl", "FaceFour"}
	for _, name := range names {
		m := mustFind(t, name)
		train, test := Generate(m, GenConfig{MaxTrain: 30, MaxTest: 50, MaxLength: 128, Seed: 10})
		chance := 100.0 / float64(m.Classes)
		acc := nn1Accuracy(train, test)
		if acc < chance+25 {
			t.Fatalf("%s: 1NN accuracy %.1f%% too close to chance %.1f%%", name, acc, chance)
		}
	}
}

// nn1Accuracy is a small local 1NN-ED so this package's tests do not pull
// in the classify package.
func nn1Accuracy(train, test *ts.Dataset) float64 {
	hits := 0
	for _, te := range test.Instances {
		best := -1
		bestD := 1e308
		for j, tr := range train.Instances {
			var d float64
			for l := range te.Values {
				diff := te.Values[l] - tr.Values[l]
				d += diff * diff
				if d >= bestD {
					break
				}
			}
			if d < bestD {
				bestD = d
				best = j
			}
		}
		if train.Instances[best].Label == te.Label {
			hits++
		}
	}
	return 100 * float64(hits) / float64(len(test.Instances))
}
