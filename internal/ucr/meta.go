// Package ucr is the UCR Time Series Archive substitute (see DESIGN.md §3).
// It carries the genuine archive metadata (train/test sizes, series length,
// class count, data type) for the 46 datasets the IPS paper evaluates, a
// deterministic synthetic generator that produces class-structured workloads
// with the same shape — discriminative subsequences that occur widely within
// a class and rarely outside it — and a loader/writer for the real UCR TSV
// format so genuine archive files can be used when available.
package ucr

import (
	"errors"
	"fmt"
)

// ErrUnknownDataset marks a dataset name absent from both the evaluation set
// and the extras.  Find wraps it with the offending name; callers branch
// with errors.Is(err, ErrUnknownDataset).
var ErrUnknownDataset = errors.New("ucr: unknown dataset")

// Meta describes one UCR dataset.
type Meta struct {
	Name    string
	Train   int // training instances
	Test    int // test instances
	Classes int
	Length  int // series length
	Type    string
}

// Archive lists the 46 UCR datasets of the paper's evaluation (Table IV/VI),
// with the real metadata of the 2018 archive release.
var Archive = []Meta{
	{"ArrowHead", 36, 175, 3, 251, "Image"},
	{"Beef", 30, 30, 5, 470, "Spectro"},
	{"BeetleFly", 20, 20, 2, 512, "Image"},
	{"CBF", 30, 900, 3, 128, "Simulated"},
	{"ChlorineConcentration", 467, 3840, 3, 166, "Sensor"},
	{"Coffee", 28, 28, 2, 286, "Spectro"},
	{"Computers", 250, 250, 2, 720, "Device"},
	{"CricketZ", 390, 390, 12, 300, "Motion"},
	{"DiatomSizeReduction", 16, 306, 4, 345, "Image"},
	{"DistalPhalanxOutlineCorrect", 600, 276, 2, 80, "Image"},
	{"Earthquakes", 322, 139, 2, 512, "Sensor"},
	{"ECG200", 100, 100, 2, 96, "ECG"},
	{"ECG5000", 500, 4500, 5, 140, "ECG"},
	{"ECGFiveDays", 23, 861, 2, 136, "ECG"},
	{"ElectricDevices", 8926, 7711, 7, 96, "Device"},
	{"FaceAll", 560, 1690, 14, 131, "Image"},
	{"FaceFour", 24, 88, 4, 350, "Image"},
	{"FacesUCR", 200, 2050, 14, 131, "Image"},
	{"FordA", 3601, 1320, 2, 500, "Sensor"},
	{"GunPoint", 50, 150, 2, 150, "Motion"},
	{"Ham", 109, 105, 2, 431, "Spectro"},
	{"HandOutlines", 1000, 370, 2, 2709, "Image"},
	{"Haptics", 155, 308, 5, 1092, "Motion"},
	{"InlineSkate", 100, 550, 7, 1882, "Motion"},
	{"InsectWingbeatSound", 220, 1980, 11, 256, "Sensor"},
	{"ItalyPowerDemand", 67, 1029, 2, 24, "Sensor"},
	{"LargeKitchenAppliances", 375, 375, 3, 720, "Device"},
	{"Mallat", 55, 2345, 8, 1024, "Simulated"},
	{"Meat", 60, 60, 3, 448, "Spectro"},
	{"NonInvasiveFatalECGThorax1", 1800, 1965, 42, 750, "ECG"},
	{"OSULeaf", 200, 242, 6, 427, "Image"},
	{"Phoneme", 214, 1896, 39, 1024, "Sensor"},
	{"RefrigerationDevices", 375, 375, 3, 720, "Device"},
	{"ShapeletSim", 20, 180, 2, 500, "Simulated"},
	{"SonyAIBORobotSurface1", 20, 601, 2, 70, "Sensor"},
	{"SonyAIBORobotSurface2", 27, 953, 2, 65, "Sensor"},
	{"Strawberry", 613, 370, 2, 235, "Spectro"},
	{"Symbols", 25, 995, 6, 398, "Image"},
	{"SyntheticControl", 300, 300, 6, 60, "Simulated"},
	{"ToeSegmentation1", 40, 228, 2, 277, "Motion"},
	{"TwoLeadECG", 23, 1139, 2, 82, "ECG"},
	{"TwoPatterns", 1000, 4000, 4, 128, "Simulated"},
	{"UWaveGestureLibraryY", 896, 3582, 8, 315, "Motion"},
	{"Wafer", 1000, 6164, 2, 152, "Sensor"},
	{"WormsTwoClass", 181, 77, 2, 900, "Motion"},
	{"Yoga", 300, 3000, 2, 426, "Image"},
}

// Extra lists datasets outside the 46-dataset evaluation set that individual
// experiments use (MoteStrain appears in Table II and Fig. 12).
var Extra = []Meta{
	{"MoteStrain", 20, 1252, 2, 84, "Sensor"},
}

// Lookup finds a dataset by name in the evaluation set or the extras.
func Lookup(name string) (Meta, bool) {
	for _, m := range Archive {
		if m.Name == name {
			return m, true
		}
	}
	for _, m := range Extra {
		if m.Name == name {
			return m, true
		}
	}
	return Meta{}, false
}

// Find is Lookup with a typed error instead of a boolean: unknown names
// return ErrUnknownDataset (wrapped with the name) rather than panicking,
// so harness tables and CLIs can surface a clean failure for a typo'd
// dataset name.
func Find(name string) (Meta, error) {
	m, ok := Lookup(name)
	if !ok {
		return Meta{}, fmt.Errorf("%w %q", ErrUnknownDataset, name)
	}
	return m, nil
}
