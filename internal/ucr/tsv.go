package ucr

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"ips/internal/ts"
)

// LoadTSV reads a dataset in the UCR 2018 archive TSV format: one instance
// per line, the class label first, then the values, whitespace-separated.
// Labels are remapped to dense 0-based integers: numerically sorted when all
// labels parse as numbers, lexically otherwise.
func LoadTSV(path string) (*ts.Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ParseTSV(f, strings.TrimSuffix(filepath.Base(path), filepath.Ext(path)))
}

// ParseTSV reads the UCR TSV format from any reader — a file, an HTTP
// request body, a buffer — naming the dataset name.  Diagnostics cite name
// and line number; label remapping follows LoadTSV.
func ParseTSV(r io.Reader, name string) (*ts.Dataset, error) {
	type row struct {
		label string
		vals  ts.Series
	}
	var rows []row
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return nil, fmt.Errorf("ucr: %s:%d: need a label and at least one value", name, lineNo)
		}
		vals := make(ts.Series, len(fields)-1)
		for i, fstr := range fields[1:] {
			v, err := strconv.ParseFloat(fstr, 64)
			if err != nil {
				return nil, fmt.Errorf("ucr: %s:%d: bad value %q: %w", name, lineNo, fstr, err)
			}
			vals[i] = v
		}
		rows = append(rows, row{label: fields[0], vals: vals})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("ucr: %s: empty dataset", name)
	}

	// Dense label assignment.
	distinct := map[string]bool{}
	for _, r := range rows {
		distinct[r.label] = true
	}
	labels := make([]string, 0, len(distinct))
	for l := range distinct {
		labels = append(labels, l)
	}
	numeric := make(map[string]float64, len(labels))
	allNumeric := true
	for _, l := range labels {
		v, err := strconv.ParseFloat(l, 64)
		if err != nil {
			allNumeric = false
			break
		}
		numeric[l] = v
	}
	sort.Slice(labels, func(i, j int) bool {
		if allNumeric {
			return numeric[labels[i]] < numeric[labels[j]]
		}
		return labels[i] < labels[j]
	})
	dense := map[string]int{}
	for i, l := range labels {
		dense[l] = i
	}

	d := &ts.Dataset{Name: name}
	for _, rw := range rows {
		d.Instances = append(d.Instances, ts.Instance{Values: rw.vals, Label: dense[rw.label]})
	}
	return d, nil
}

// WriteTSV writes a dataset in the UCR TSV format.
func WriteTSV(path string, d *ts.Dataset) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	for _, in := range d.Instances {
		fmt.Fprintf(w, "%d", in.Label)
		for _, v := range in.Values {
			fmt.Fprintf(w, "\t%g", v)
		}
		fmt.Fprintln(w)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadSplit loads <dir>/<name>_TRAIN.tsv and <dir>/<name>_TEST.tsv, the UCR
// archive directory layout.
func LoadSplit(dir, name string) (train, test *ts.Dataset, err error) {
	train, err = LoadTSV(filepath.Join(dir, name+"_TRAIN.tsv"))
	if err != nil {
		return nil, nil, err
	}
	test, err = LoadTSV(filepath.Join(dir, name+"_TEST.tsv"))
	if err != nil {
		return nil, nil, err
	}
	return train, test, nil
}
