package mp

import (
	"fmt"
	"math"
	"testing"
)

// TestParallelMergeByteIdentical drives a join large enough to cross the
// parallelMergeMin threshold, so the partial-profile min-reduction actually
// runs chunked across goroutines, and requires the profile byte-identical to
// the sequential worker-count-1 result.  The property suite's cases are two
// orders of magnitude smaller and never reach the parallel merge.
func TestParallelMergeByteIdentical(t *testing.T) {
	const n, w = parallelMergeMin + 1000, 32
	series := make([]float64, n)
	for i := range series {
		series[i] = math.Sin(float64(i)*0.02) + 0.3*math.Cos(float64(i)*0.11)
	}
	if len(series)-w+1 < parallelMergeMin {
		t.Fatalf("fixture too small to exercise the parallel merge")
	}
	ref := SelfJoinOpts(series, w, nil, Options{Workers: 1})
	for _, workers := range []int{2, 8} {
		got := SelfJoinOpts(series, w, nil, Options{Workers: workers})
		requireIdentical(t, got, ref, fmt.Sprintf("large self-join workers=%d", workers))
	}
}
