package mp

import (
	"math"
	"testing"
)

func TestSTAMPFullMatchesSelfJoin(t *testing.T) {
	series := randomSeries(150, 7)
	w := 10
	exact := SelfJoin(series, w, nil)
	stamp := STAMP(series, w, 1, 1)
	profilesClose(t, stamp, exact, 1e-6)
}

func TestSTAMPPartialUpperBounds(t *testing.T) {
	// An anytime partial run can only overestimate nearest-neighbour
	// distances (it has seen fewer rows), never underestimate.
	series := randomSeries(200, 8)
	w := 12
	exact := SelfJoin(series, w, nil)
	partial := STAMP(series, w, 0.3, 2)
	for j := range exact.P {
		if math.IsInf(partial.P[j], 1) {
			continue
		}
		if partial.P[j] < exact.P[j]-1e-6 {
			t.Fatalf("partial profile underestimates at %d: %v < %v", j, partial.P[j], exact.P[j])
		}
	}
	// A fair share of entries should already be finite after 30% of rows.
	finite := 0
	for _, v := range partial.P {
		if !math.IsInf(v, 1) {
			finite++
		}
	}
	if finite < len(partial.P)/2 {
		t.Fatalf("only %d/%d entries touched", finite, len(partial.P))
	}
}

func TestSTAMPDegenerate(t *testing.T) {
	p := STAMP([]float64{1, 2}, 5, 1, 1)
	if p.Len() != 0 {
		t.Fatal("window > series should give empty profile")
	}
	// Out-of-range fraction falls back to full.
	series := randomSeries(60, 9)
	full := STAMP(series, 8, -1, 3)
	exact := SelfJoin(series, 8, nil)
	profilesClose(t, full, exact, 1e-6)
}

func TestIncrementalMatchesBatch(t *testing.T) {
	series := randomSeries(120, 10)
	w := 9
	// Start from a prefix and append the rest one by one.
	inc := NewIncremental(series[:40], w)
	for _, v := range series[40:] {
		inc.Append(v)
	}
	if inc.Len() != len(series) {
		t.Fatalf("len = %d", inc.Len())
	}
	got := inc.Profile()
	want := SelfJoin(series, w, nil)
	profilesClose(t, got, want, 1e-6)
}

func TestIncrementalFromEmpty(t *testing.T) {
	series := randomSeries(50, 11)
	w := 6
	inc := NewIncremental(nil, w)
	for _, v := range series {
		inc.Append(v)
	}
	got := inc.Profile()
	want := SelfJoin(series, w, nil)
	profilesClose(t, got, want, 1e-6)
}

func TestIncrementalShortSeries(t *testing.T) {
	inc := NewIncremental([]float64{1, 2}, 8)
	inc.Append(3)
	if inc.Profile().Len() != 0 {
		t.Fatal("series shorter than window should have empty profile")
	}
}

func BenchmarkIncrementalAppend(b *testing.B) {
	series := randomSeries(2000, 12)
	inc := NewIncremental(series, 50)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inc.Append(float64(i % 7))
	}
}
