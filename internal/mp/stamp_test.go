package mp

import (
	"errors"
	"fmt"
	"math"
	"testing"

	"ips/internal/errs"
)

func TestSTAMPFullMatchesSelfJoin(t *testing.T) {
	series := randomSeries(150, 7)
	w := 10
	exact := SelfJoin(series, w, nil)
	stamp := STAMP(series, w, 1, 1)
	profilesClose(t, stamp, exact, 1e-6)
}

func TestSTAMPPartialUpperBounds(t *testing.T) {
	// An anytime partial run can only overestimate nearest-neighbour
	// distances (it has seen fewer rows), never underestimate.
	series := randomSeries(200, 8)
	w := 12
	exact := SelfJoin(series, w, nil)
	partial := STAMP(series, w, 0.3, 2)
	for j := range exact.P {
		if math.IsInf(partial.P[j], 1) {
			continue
		}
		if partial.P[j] < exact.P[j]-1e-6 {
			t.Fatalf("partial profile underestimates at %d: %v < %v", j, partial.P[j], exact.P[j])
		}
	}
	// A fair share of entries should already be finite after 30% of rows.
	finite := 0
	for _, v := range partial.P {
		if !math.IsInf(v, 1) {
			finite++
		}
	}
	if finite < len(partial.P)/2 {
		t.Fatalf("only %d/%d entries touched", finite, len(partial.P))
	}
}

func TestSTAMPDegenerate(t *testing.T) {
	p := STAMP([]float64{1, 2}, 5, 1, 1)
	if p.Len() != 0 {
		t.Fatal("window > series should give empty profile")
	}
	// Out-of-range fraction falls back to full.
	series := randomSeries(60, 9)
	full := STAMP(series, 8, -1, 3)
	exact := SelfJoin(series, 8, nil)
	profilesClose(t, full, exact, 1e-6)
}

// TestSTAMPRowClamp pins the at-least-one-row contract: fractions whose
// product with n rounds (or underflows) toward zero, and NaN, must still
// process a row — the profile may not come back all-Inf when n > 0.
func TestSTAMPRowClamp(t *testing.T) {
	series := randomSeries(80, 4)
	for _, fraction := range []float64{1e-9, 5e-324, math.NaN()} {
		p := STAMP(series, 8, fraction, 3)
		finite := 0
		for _, v := range p.P {
			if !math.IsInf(v, 1) {
				finite++
			}
		}
		if finite == 0 {
			t.Fatalf("fraction %v: all-Inf profile, zero rows processed", fraction)
		}
	}
}

// mustIncremental builds an Incremental or fails the test.
func mustIncremental(t testing.TB, initial []float64, w int) *Incremental {
	t.Helper()
	inc, err := NewIncremental(initial, w)
	if err != nil {
		t.Fatalf("NewIncremental: %v", err)
	}
	return inc
}

// mustAppend appends or fails the test.
func mustAppend(t testing.TB, inc *Incremental, v float64) {
	t.Helper()
	if err := inc.Append(v); err != nil {
		t.Fatalf("Append(%v): %v", v, err)
	}
}

// profilesEqual asserts got and want are byte-identical: every distance
// bitwise equal (math.Float64bits, so Inf and negative-zero distinctions
// count) and every neighbour index equal.
func profilesEqual(t testing.TB, got, want *Profile, step int) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("step %d: len %d != %d", step, got.Len(), want.Len())
	}
	for j := range want.P {
		if math.Float64bits(got.P[j]) != math.Float64bits(want.P[j]) {
			t.Fatalf("step %d: P[%d] = %v (%#x) != %v (%#x)", step, j,
				got.P[j], math.Float64bits(got.P[j]), want.P[j], math.Float64bits(want.P[j]))
		}
		if got.I[j] != want.I[j] {
			t.Fatalf("step %d: I[%d] = %d != %d (P = %v)", step, j, got.I[j], want.I[j], want.P[j])
		}
	}
}

// TestIncrementalByteIdentity is the STOMPI contract test: after EVERY
// append the incremental profile must be byte-identical — bitwise distances
// and equal neighbour indices — to a full SelfJoin recompute over the
// current series.  Constant runs exercise the degenerate-window guards on
// the same footing.
func TestIncrementalByteIdentity(t *testing.T) {
	cases := []struct {
		name   string
		series []float64
		w      int
	}{
		{"random", randomSeries(160, 10), 9},
		{"tiny-window", randomSeries(90, 3), 1},
		{"window-2", randomSeries(90, 5), 2},
		{"large-window", randomSeries(120, 21), 40},
		{"constant-run", append(append(randomSeries(50, 4), make([]float64, 30)...), randomSeries(40, 6)...), 8},
		{"all-constant", make([]float64, 60), 7},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			inc := mustIncremental(t, nil, tc.w)
			for step, v := range tc.series {
				mustAppend(t, inc, v)
				profilesEqual(t, inc.Profile(), SelfJoin(inc.Series(), tc.w, nil), step)
			}
		})
	}
}

// TestIncrementalSeedMatchesBatch pins the other construction path: seeding
// from a non-empty initial series, then appending, is byte-identical too.
func TestIncrementalSeedMatchesBatch(t *testing.T) {
	series := randomSeries(120, 10)
	w := 9
	inc := mustIncremental(t, series[:40], w)
	profilesEqual(t, inc.Profile(), SelfJoin(series[:40], w, nil), 0)
	for k, v := range series[40:] {
		mustAppend(t, inc, v)
		profilesEqual(t, inc.Profile(), SelfJoin(series[:41+k], w, nil), k+1)
	}
	if inc.Len() != len(series) {
		t.Fatalf("len = %d", inc.Len())
	}
}

func TestIncrementalFromEmpty(t *testing.T) {
	series := randomSeries(50, 11)
	w := 6
	inc := mustIncremental(t, nil, w)
	for _, v := range series {
		mustAppend(t, inc, v)
	}
	profilesEqual(t, inc.Profile(), SelfJoin(series, w, nil), len(series))
}

func TestIncrementalShortSeries(t *testing.T) {
	inc := mustIncremental(t, []float64{1, 2}, 8)
	mustAppend(t, inc, 3)
	if inc.Profile().Len() != 0 {
		t.Fatal("series shorter than window should have empty profile")
	}
	if inc.MinIndex() != -1 || inc.MaxIndex() != -1 {
		t.Fatal("motif/discord of an empty profile should be -1")
	}
}

// TestIncrementalBadInput pins the typed-rejection contract: NaN/Inf
// values — at construction or on append — come back as errs.ErrBadInput,
// a rejected append leaves the state untouched, and the stream remains
// usable afterwards.
func TestIncrementalBadInput(t *testing.T) {
	if _, err := NewIncremental([]float64{1, 2}, 0); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("w=0: err = %v, want ErrBadInput", err)
	}
	if _, err := NewIncremental([]float64{1, math.NaN(), 3}, 2); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("NaN initial: err = %v, want ErrBadInput", err)
	}
	if _, err := NewIncremental([]float64{1, math.Inf(-1)}, 2); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("-Inf initial: err = %v, want ErrBadInput", err)
	}

	series := randomSeries(40, 3)
	w := 5
	inc := mustIncremental(t, series, w)
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := inc.Append(bad); !errors.Is(err, errs.ErrBadInput) {
			t.Fatalf("Append(%v): err = %v, want ErrBadInput", bad, err)
		}
	}
	if inc.Len() != len(series) {
		t.Fatalf("rejected appends mutated state: len = %d", inc.Len())
	}
	// The stream stays usable: further good appends still match the batch.
	mustAppend(t, inc, 0.25)
	profilesEqual(t, inc.Profile(), SelfJoin(inc.Series(), w, nil), len(series)+1)
}

// TestIncrementalAppendNoAllocs pins the serving-path contract: after
// Reserve, the append kernel allocates nothing.
func TestIncrementalAppendNoAllocs(t *testing.T) {
	series := randomSeries(512, 9)
	inc := mustIncremental(t, series, 16)
	extra := randomSeries(200, 10)
	inc.Reserve(len(series) + len(extra))
	k := 0
	avg := testing.AllocsPerRun(len(extra)-1, func() {
		mustAppend(t, inc, extra[k])
		k++
	})
	if avg != 0 {
		t.Fatalf("Append allocates %.1f times per call after Reserve, want 0", avg)
	}
}

// TestIncrementalMotifDiscord exercises the drift accessors against the
// batch profile's own argmin/argmax.
func TestIncrementalMotifDiscord(t *testing.T) {
	series := randomSeries(200, 12)
	w := 10
	inc := mustIncremental(t, series, w)
	want := SelfJoin(series, w, nil)
	wantMin, wantMinD := want.MinIndex()
	wantMax, _ := want.MaxIndex()
	if got := inc.MinIndex(); got != wantMin {
		t.Fatalf("MinIndex = %d, want %d", got, wantMin)
	}
	if got := inc.MaxIndex(); got != wantMax {
		t.Fatalf("MaxIndex = %d, want %d", got, wantMax)
	}
	if d := inc.DistAt(inc.MinIndex()); math.Float64bits(d) != math.Float64bits(wantMinD) {
		t.Fatalf("DistAt(motif) = %v, want %v", d, wantMinD)
	}
}

// BenchmarkIncrementalAppend measures steady-state per-append cost across
// series lengths.  The bug this PR fixes made each append pay a full
// MovingMeanStd + FFT SlidingDots pass, so per-append time grew with n·log n
// and allocated; now it is a pair of O(n) passes with zero allocations.
func BenchmarkIncrementalAppend(b *testing.B) {
	for _, size := range []int{1000, 4000, 16000} {
		b.Run(fmt.Sprintf("n=%d/w=50", size), func(b *testing.B) {
			series := randomSeries(size, 12)
			extra := randomSeries(b.N, 13)
			inc, err := NewIncremental(series, 50)
			if err != nil {
				b.Fatal(err)
			}
			inc.Reserve(len(series) + b.N)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := inc.Append(extra[i]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
