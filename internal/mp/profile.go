// Package mp implements the matrix profile (Def. 5 of the IPS paper): the
// STOMP self-join and AB-join over z-normalised Euclidean distance, masked
// variants that exclude subsequences spanning instance boundaries, motif and
// discord extraction, and the profile difference used by the MP baseline.
package mp

import (
	"math"

	"ips/internal/ts"
)

// Profile annotates a time series: P[i] is the nearest-neighbour distance of
// the length-W subsequence starting at i, and I[i] the index of that
// neighbour (-1 when no valid neighbour exists).
type Profile struct {
	P []float64
	I []int
	W int
}

// Len returns the number of annotated subsequences.
func (p *Profile) Len() int { return len(p.P) }

// MinIndex returns the index of the smallest finite profile value (the top
// motif location) and that value.  It returns (-1, +Inf) when the profile has
// no finite entry.
func (p *Profile) MinIndex() (int, float64) {
	best, bestV := -1, math.Inf(1)
	for i, v := range p.P {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// MaxIndex returns the index of the largest finite profile value (the top
// discord location) and that value.  It returns (-1, -Inf) when the profile
// has no finite entry.
func (p *Profile) MaxIndex() (int, float64) {
	best, bestV := -1, math.Inf(-1)
	for i, v := range p.P {
		if !math.IsInf(v, 1) && v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// TopK returns the indices of the k smallest (largest=false) or largest
// (largest=true) finite profile values, enforcing an exclusion zone of
// excl positions between any two reported indices so that trivially
// overlapping subsequences are not reported twice.
func (p *Profile) TopK(k int, largest bool, excl int) []int {
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, 0, len(p.P))
	for i, v := range p.P {
		if math.IsInf(v, 0) {
			continue
		}
		order = append(order, iv{i, v})
	}
	// Simple selection: repeatedly pick the extreme value not excluded.
	picked := make([]int, 0, k)
	used := make([]bool, len(p.P))
	for len(picked) < k {
		best := -1
		for j, e := range order {
			if used[e.i] {
				continue
			}
			if best == -1 {
				best = j
				continue
			}
			if largest && e.v > order[best].v || !largest && e.v < order[best].v {
				best = j
			}
		}
		if best == -1 {
			break
		}
		bi := order[best].i
		picked = append(picked, bi)
		for d := -excl; d <= excl; d++ {
			if j := bi + d; j >= 0 && j < len(used) {
				used[j] = true
			}
		}
	}
	return picked
}

// Diff returns |a.P[i] − b.P[i]| for the overlapping prefix of two profiles
// (the paper's diff(P_AB, P_AA), Fig. 4).  Entries where either profile is
// infinite are set to -Inf so they are never selected as maxima.
func Diff(a, b *Profile) []float64 {
	n := len(a.P)
	if len(b.P) < n {
		n = len(b.P)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.IsInf(a.P[i], 0) || math.IsInf(b.P[i], 0) {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = math.Abs(a.P[i] - b.P[i])
	}
	return out
}

// SelfJoin computes the matrix profile of t with window w under z-normalised
// Euclidean distance, using the STOMP recurrence (O(1) dot-product update per
// cell, O(N²) total).  Subsequences within w/2 of the query (the standard
// exclusion zone¹) are excluded, as are subsequences for which valid is false
// when a mask is supplied (nil means all valid).
//
// ¹ Footnote 1 of the paper: trivially overlapping neighbours are excluded.
func SelfJoin(t []float64, w int, valid []bool) *Profile {
	n := len(t) - w + 1
	if n <= 0 || w <= 0 {
		return &Profile{W: w}
	}
	means, stds := ts.MovingMeanStd(t, w)
	p := &Profile{P: make([]float64, n), I: make([]int, n), W: w}
	for i := range p.P {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
	}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	ok := func(i int) bool { return valid == nil || valid[i] }

	// First column of dot products: q = t[0:w] against every window.
	qt := ts.SlidingDots(t[:w], t)
	firstRow := make([]float64, n)
	copy(firstRow, qt)
	update := func(i, j int, dot float64) {
		if !ok(i) || !ok(j) {
			return
		}
		if d := i - j; d < 0 {
			d = -d
			if d <= excl {
				return
			}
		} else if d <= excl {
			return
		}
		dist := ts.ZNormSqDistFromStats(dot, w, means[i], stds[i], means[j], stds[j])
		if dist < p.P[i] {
			p.P[i] = dist
			p.I[i] = j
		}
		if dist < p.P[j] {
			p.P[j] = dist
			p.I[j] = i
		}
	}
	for j := 0; j < n; j++ {
		update(0, j, qt[j])
	}
	// STOMP: row i is derived from row i−1.
	for i := 1; i < n; i++ {
		for j := n - 1; j >= 1; j-- {
			qt[j] = qt[j-1] - t[i-1]*t[j-1] + t[i+w-1]*t[j+w-1]
		}
		qt[0] = firstRow[i]
		for j := i + 1; j < n; j++ { // upper triangle only; update is symmetric
			update(i, j, qt[j])
		}
	}
	// Report distances, not squared distances.
	for i := range p.P {
		if !math.IsInf(p.P[i], 1) {
			p.P[i] = math.Sqrt(p.P[i])
		}
	}
	return p
}

// ABJoin computes, for every length-w subsequence of a, its nearest-neighbour
// z-normalised distance among the subsequences of b (the paper's P_AB).  No
// exclusion zone applies because the two series are distinct.  validA/validB
// optionally mask boundary-spanning subsequences (nil means all valid).
func ABJoin(a, b []float64, w int, validA, validB []bool) *Profile {
	na := len(a) - w + 1
	nb := len(b) - w + 1
	if na <= 0 || nb <= 0 || w <= 0 {
		return &Profile{W: w}
	}
	meansA, stdsA := ts.MovingMeanStd(a, w)
	meansB, stdsB := ts.MovingMeanStd(b, w)
	p := &Profile{P: make([]float64, na), I: make([]int, na), W: w}
	for i := range p.P {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
	}
	okA := func(i int) bool { return validA == nil || validA[i] }
	okB := func(i int) bool { return validB == nil || validB[i] }

	// qt[j] = dot(a[i:i+w], b[j:j+w]) for the current row i.
	qt := ts.SlidingDots(a[:w], b)
	firstCol := ts.SlidingDots(b[:w], a) // dot(a[i:i+w], b[0:w])
	row := func(i int) {
		if !okA(i) {
			return
		}
		for j := 0; j < nb; j++ {
			if !okB(j) {
				continue
			}
			dist := ts.ZNormSqDistFromStats(qt[j], w, meansA[i], stdsA[i], meansB[j], stdsB[j])
			if dist < p.P[i] {
				p.P[i] = dist
				p.I[i] = j
			}
		}
	}
	row(0)
	for i := 1; i < na; i++ {
		for j := nb - 1; j >= 1; j-- {
			qt[j] = qt[j-1] - a[i-1]*b[j-1] + a[i+w-1]*b[j+w-1]
		}
		qt[0] = firstCol[i]
		row(i)
	}
	for i := range p.P {
		if !math.IsInf(p.P[i], 1) {
			p.P[i] = math.Sqrt(p.P[i])
		}
	}
	return p
}
