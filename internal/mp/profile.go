// Package mp implements the matrix profile (Def. 5 of the IPS paper): the
// STOMP self-join and AB-join over z-normalised Euclidean distance, masked
// variants that exclude subsequences spanning instance boundaries, motif and
// discord extraction, and the profile difference used by the MP baseline.
package mp

import "math"

// Profile annotates a time series: P[i] is the nearest-neighbour distance of
// the length-W subsequence starting at i, and I[i] the index of that
// neighbour (-1 when no valid neighbour exists).
type Profile struct {
	P []float64
	I []int
	W int
}

// Len returns the number of annotated subsequences.
func (p *Profile) Len() int { return len(p.P) }

// MinIndex returns the index of the smallest finite profile value (the top
// motif location) and that value.  It returns (-1, +Inf) when the profile has
// no finite entry.
func (p *Profile) MinIndex() (int, float64) {
	best, bestV := -1, math.Inf(1)
	for i, v := range p.P {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// MaxIndex returns the index of the largest finite profile value (the top
// discord location) and that value.  It returns (-1, -Inf) when the profile
// has no finite entry.
func (p *Profile) MaxIndex() (int, float64) {
	best, bestV := -1, math.Inf(-1)
	for i, v := range p.P {
		if !math.IsInf(v, 1) && v > bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// TopK returns the indices of the k smallest (largest=false) or largest
// (largest=true) finite profile values, enforcing an exclusion zone of
// excl positions between any two reported indices so that trivially
// overlapping subsequences are not reported twice.
func (p *Profile) TopK(k int, largest bool, excl int) []int {
	type iv struct {
		i int
		v float64
	}
	order := make([]iv, 0, len(p.P))
	for i, v := range p.P {
		if math.IsInf(v, 0) {
			continue
		}
		order = append(order, iv{i, v})
	}
	// Simple selection: repeatedly pick the extreme value not excluded.
	picked := make([]int, 0, k)
	used := make([]bool, len(p.P))
	for len(picked) < k {
		best := -1
		for j, e := range order {
			if used[e.i] {
				continue
			}
			if best == -1 {
				best = j
				continue
			}
			if largest && e.v > order[best].v || !largest && e.v < order[best].v {
				best = j
			}
		}
		if best == -1 {
			break
		}
		bi := order[best].i
		picked = append(picked, bi)
		for d := -excl; d <= excl; d++ {
			if j := bi + d; j >= 0 && j < len(used) {
				used[j] = true
			}
		}
	}
	return picked
}

// Diff returns |a.P[i] − b.P[i]| for the overlapping prefix of two profiles
// (the paper's diff(P_AB, P_AA), Fig. 4).  Entries where either profile is
// infinite are set to -Inf so they are never selected as maxima.
func Diff(a, b *Profile) []float64 {
	n := len(a.P)
	if len(b.P) < n {
		n = len(b.P)
	}
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		if math.IsInf(a.P[i], 0) || math.IsInf(b.P[i], 0) {
			out[i] = math.Inf(-1)
			continue
		}
		out[i] = math.Abs(a.P[i] - b.P[i])
	}
	return out
}

// SelfJoin computes the matrix profile of t with window w under z-normalised
// Euclidean distance, using the STOMP recurrence (O(1) dot-product update per
// cell, O(N²) total).  Subsequences within w/2 of the query (the standard
// exclusion zone¹) are excluded, as are subsequences for which valid is false
// when a mask is supplied (nil means all valid).
//
// SelfJoin is the sequential convenience form of SelfJoinOpts; see there for
// the diagonal-tiled kernel and its determinism contract.
//
// ¹ Footnote 1 of the paper: trivially overlapping neighbours are excluded.
//
//ips:blocking
func SelfJoin(t []float64, w int, valid []bool) *Profile {
	return SelfJoinOpts(t, w, valid, Options{})
}

// ABJoin computes, for every length-w subsequence of a, its nearest-neighbour
// z-normalised distance among the subsequences of b (the paper's P_AB).  No
// exclusion zone applies because the two series are distinct.  validA/validB
// optionally mask boundary-spanning subsequences (nil means all valid).
//
// ABJoin is the sequential convenience form of ABJoinOpts.
//
//ips:blocking
func ABJoin(a, b []float64, w int, validA, validB []bool) *Profile {
	return ABJoinOpts(a, b, w, validA, validB, Options{})
}
