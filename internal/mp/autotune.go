package mp

import (
	"math"
	"sync"
	"time"

	"ips/internal/obs"
	"ips/internal/ts"
)

// Tile-size autotuning.  The historical kernel used a fixed tilesPerWorker=4
// regardless of problem size, which over-cuts small joins (channel traffic
// dominates) and under-cuts large ones (a single slow tile serialises the
// tail).  Instead the kernel probes the per-cell walk cost once per process
// — a bounded synthetic self-join timed with obs.Stopwatch — and sizes tiles
// so each costs roughly targetTileCost, giving the dynamic scheduler enough
// slack to absorb uneven diagonals without shrinking tiles into scheduling
// noise.  The resulting tile count is cached per (n, w, workers), so a given
// join shape tiles identically for the whole process lifetime.
//
// Tiling is pure scheduling: every cell distance is bitwise reproducible and
// the merge order (not the tile schedule) defines the result, so the profile
// stays byte-identical for any tile size and worker count.
const (
	// targetTileCost is the walk time one tile should cost.  Large enough
	// that handing a tile over a channel is noise, small enough that the
	// scheduler can rebalance a slow worker several times per join.
	targetTileCost = 200 * time.Microsecond
	// minTilesPerWorker/maxTilesPerWorker clamp the probe's answer: at least
	// two tiles per worker so dynamic scheduling has something to rebalance,
	// at most 32 so tiny tiles never dominate with channel traffic.
	minTilesPerWorker = 2
	maxTilesPerWorker = 32
	// defaultCellCostNs backstops a degenerate probe (a clock with too
	// little resolution to see the probe walk).
	defaultCellCostNs = 2.0
)

var (
	probeOnce   sync.Once
	probedCost  float64 // nanoseconds per matrix cell
	tuneCacheMu sync.Mutex
	tuneCache   = map[tuneKey]int{}
)

type tuneKey struct{ n, w, workers int }

// cellCostNs returns the calibrated per-cell walk cost, probing on first
// use: one synthetic self-join walk of ~430k cells (about a millisecond),
// timed with a stopwatch.  The probe is bounded and runs at most once per
// process.
func cellCostNs() float64 {
	probeOnce.Do(func() {
		const pn, pw = 1024, 64
		t := make([]float64, pn)
		for i := range t {
			t[i] = math.Sin(float64(i) * 0.05)
		}
		n := pn - pw + 1
		lo := pw/2 + 1
		means, stds := ts.MovingMeanStd(t, pw)
		first := ts.SlidingDots(t[:pw], t)
		wk := &selfJoinWalker{t: t, w: pw, n: n, first: first, means: means, stds: stds}
		pt := getPartial(n)
		cells := diagCells(lo, n)
		sw := obs.NewStopwatch()
		wk.walk(pt, tile{lo, n})
		el := sw.Elapsed()
		putPartial(pt)
		probedCost = float64(el.Nanoseconds()) / float64(cells)
		if !(probedCost > 0) || math.IsInf(probedCost, 1) {
			probedCost = defaultCellCostNs
		}
	})
	return probedCost
}

// diagCells returns the cell count of self-join diagonals [lo, hi) of an
// n×n upper triangle: sum over k of (n − k).
func diagCells(lo, hi int) int {
	a, b := hi-lo, hi-lo+1 // consecutive, so one of them is even
	return a * b / 2
}

// tuneTilesPerWorker returns the tiles-per-worker count for a join of
// totalCells cells on the given worker count, derived from the calibrated
// cell cost and cached per (n, w, workers).  Within one process a given key
// always answers the same value, so repeated joins of one shape — CV folds,
// per-class profiles — tile identically.
func tuneTilesPerWorker(n, w, workers, totalCells int) int {
	if workers <= 1 {
		return 1
	}
	key := tuneKey{n: n, w: w, workers: workers}
	tuneCacheMu.Lock()
	if v, ok := tuneCache[key]; ok {
		tuneCacheMu.Unlock()
		return v
	}
	tuneCacheMu.Unlock()
	perWorkerNs := cellCostNs() * float64(totalCells) / float64(workers)
	tpw := int(math.Round(perWorkerNs / float64(targetTileCost.Nanoseconds())))
	if tpw < minTilesPerWorker {
		tpw = minTilesPerWorker
	}
	if tpw > maxTilesPerWorker {
		tpw = maxTilesPerWorker
	}
	tuneCacheMu.Lock()
	// First store wins, so concurrent callers agree for the process lifetime
	// (they computed the same value anyway: the probed cost is fixed after
	// the once).
	if v, ok := tuneCache[key]; ok {
		tpw = v
	} else {
		tuneCache[key] = tpw
	}
	tuneCacheMu.Unlock()
	return tpw
}
