package mp

import (
	"math"
	"sync"
	"testing"
)

// TestConcurrentJoinsSharedArena runs several parallel self- and AB-joins
// at once, all drawing partial-profile buffers from the shared package
// arena.  Under `go test -race` (the CI configuration) this gives the race
// detector the full surface to bite on: concurrent arena Get/Put, the tile
// channel, and the per-worker span plumbing.  Every concurrent result must
// stay byte-identical to the sequential reference — corruption from a
// recycled buffer would show up as a profile diff even when the scheduler
// happens to hide the race itself.
func TestConcurrentJoinsSharedArena(t *testing.T) {
	series := randomSeries(400, 21)
	other := randomSeries(300, 22)
	w := 16
	selfRef := SelfJoinOpts(series, w, nil, Options{Workers: 1})
	abRef := ABJoinOpts(series, other, w, nil, nil, Options{Workers: 1})

	const goroutines = 8
	var wg sync.WaitGroup
	errs := make(chan string, goroutines*2)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			workers := 1 + g%4
			sp := SelfJoinOpts(series, w, nil, Options{Workers: workers})
			for i := range sp.P {
				if math.Float64bits(sp.P[i]) != math.Float64bits(selfRef.P[i]) || sp.I[i] != selfRef.I[i] {
					errs <- "self-join diverged under concurrency"
					return
				}
			}
			ab := ABJoinOpts(series, other, w, nil, nil, Options{Workers: workers})
			for i := range ab.P {
				if math.Float64bits(ab.P[i]) != math.Float64bits(abRef.P[i]) || ab.I[i] != abRef.I[i] {
					errs <- "ab-join diverged under concurrency"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Fatal(msg)
	}
}
