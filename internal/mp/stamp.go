package mp

import (
	"math"
	"math/rand"

	"ips/internal/ts"
)

// STAMP computes the self-join matrix profile with the anytime STAMP
// algorithm: query rows are processed in random order, each via a MASS
// distance-profile pass, so stopping after a fraction of the rows yields an
// unbiased approximation.  fraction in (0,1] selects how many rows to
// process; fraction 1 reproduces the exact profile of SelfJoin.
func STAMP(t []float64, w int, fraction float64, seed int64) *Profile {
	n := len(t) - w + 1
	if n <= 0 || w <= 0 {
		return &Profile{W: w}
	}
	if fraction <= 0 || fraction > 1 {
		fraction = 1
	}
	p := &Profile{P: make([]float64, n), I: make([]int, n), W: w}
	for i := range p.P {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
	}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	rows := int(math.Ceil(fraction * float64(n)))
	for _, i := range order[:rows] {
		prof := MASS(t[i:i+w], t)
		for j, d := range prof {
			diff := i - j
			if diff < 0 {
				diff = -diff
			}
			if diff <= excl {
				continue
			}
			if d < p.P[i] {
				p.P[i] = d
				p.I[i] = j
			}
			if d < p.P[j] {
				p.P[j] = d
				p.I[j] = i
			}
		}
	}
	return p
}

// Incremental maintains a self-join matrix profile under appends (STOMPI):
// each Append extends the series and updates the profile in O(N) rather
// than recomputing the O(N²) join.
type Incremental struct {
	t    ts.Series
	w    int
	excl int
	p    []float64 // squared z-norm distances (sqrt applied on Profile())
	i    []int
}

// NewIncremental starts an incremental profile over the initial series.
func NewIncremental(initial []float64, w int) *Incremental {
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	inc := &Incremental{t: append(ts.Series(nil), initial...), w: w, excl: excl}
	n := len(initial) - w + 1
	if n > 0 {
		base := SelfJoin(initial, w, nil)
		inc.p = make([]float64, n)
		inc.i = append([]int(nil), base.I...)
		for j, v := range base.P {
			if math.IsInf(v, 1) {
				inc.p[j] = math.Inf(1)
			} else {
				inc.p[j] = v * v
			}
		}
	}
	return inc
}

// Append adds one value to the series and updates the profile.
func (inc *Incremental) Append(v float64) {
	inc.t = append(inc.t, v)
	n := len(inc.t) - inc.w + 1
	if n <= 0 {
		return
	}
	// The new subsequence is the last one; compute its dot products against
	// all others directly (O(N·w) — the simple STOMPI variant; the rolling
	// optimisation would reuse the previous row).
	newIdx := n - 1
	q := inc.t[newIdx:]
	means, stds := ts.MovingMeanStd(inc.t, inc.w)
	dots := ts.SlidingDots(q, inc.t)
	best := math.Inf(1)
	bestJ := -1
	for j := 0; j < n-1; j++ {
		diff := newIdx - j
		if diff <= inc.excl {
			continue
		}
		d := ts.ZNormSqDistFromStats(dots[j], inc.w, means[newIdx], stds[newIdx], means[j], stds[j])
		if d < best {
			best = d
			bestJ = j
		}
		if j < len(inc.p) && d < inc.p[j] {
			inc.p[j] = d
			inc.i[j] = newIdx
		}
	}
	inc.p = append(inc.p, best)
	inc.i = append(inc.i, bestJ)
}

// Profile returns the current matrix profile (distances, not squared).
func (inc *Incremental) Profile() *Profile {
	out := &Profile{P: make([]float64, len(inc.p)), I: append([]int(nil), inc.i...), W: inc.w}
	for j, v := range inc.p {
		if math.IsInf(v, 1) {
			out.P[j] = v
		} else {
			out.P[j] = math.Sqrt(v)
		}
	}
	return out
}

// Len returns the current series length.
func (inc *Incremental) Len() int { return len(inc.t) }
