package mp

import (
	"math"
	"math/rand"

	"ips/internal/errs"
	"ips/internal/ts"
)

// STAMP computes the self-join matrix profile with the anytime STAMP
// algorithm: query rows are processed in random order, each via a MASS
// distance-profile pass, so stopping after a fraction of the rows yields an
// unbiased approximation.  fraction in (0,1] selects how many rows to
// process; fraction 1 reproduces the exact profile of SelfJoin.
//
// Contract: whenever the series admits at least one window (n > 0), at
// least one row is processed — the row count ceil(fraction·n) is clamped to
// [1, n], so a tiny n·fraction product (or a subnormal fraction that
// underflows the multiply to zero) can never yield the silent all-Inf
// profile a zero-row pass would produce.  A fraction outside (0, 1],
// including NaN, falls back to 1 (the exact join).
func STAMP(t []float64, w int, fraction float64, seed int64) *Profile {
	n := len(t) - w + 1
	if n <= 0 || w <= 0 {
		return &Profile{W: w}
	}
	// !(x > 0 && x <= 1) is deliberately NaN-safe: both comparisons are
	// false for NaN, so a NaN fraction lands here instead of flowing into
	// Ceil and producing an undefined slice bound below.
	if !(fraction > 0 && fraction <= 1) {
		fraction = 1
	}
	p := &Profile{P: make([]float64, n), I: make([]int, n), W: w}
	for i := range p.P {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
	}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	rng := rand.New(rand.NewSource(seed))
	order := rng.Perm(n)
	rows := int(math.Ceil(fraction * float64(n)))
	if rows < 1 {
		rows = 1 // n > 0: an anytime profile with zero rows carries no signal
	}
	if rows > n {
		rows = n
	}
	for _, i := range order[:rows] {
		prof := MASS(t[i:i+w], t)
		for j, d := range prof {
			diff := i - j
			if diff < 0 {
				diff = -diff
			}
			if diff <= excl {
				continue
			}
			if d < p.P[i] {
				p.P[i] = d
				p.I[i] = j
			}
			if d < p.P[j] {
				p.P[j] = d
				p.I[j] = i
			}
		}
	}
	return p
}

// Incremental maintains a self-join matrix profile under appends (STOMPI):
// each Append extends the series by one point and updates the profile in
// O(N) — one rolling-statistics advance, one O(N) dot-row update along the
// matrix diagonals, and one O(N) min pass — instead of recomputing the
// O(N²) join.
//
// The maintained profile is byte-identical to a fresh SelfJoin over the
// current series after every append, by construction rather than by
// tolerance: window statistics advance through the same ts.Rolling state
// MovingMeanStd walks, every dot product is reached by rolling the same
// diagonal recurrence (rollDot) from the same ts.Dot seed the batch kernel
// uses, distances go through ts.ZNormSqDistFromStats with the smaller
// window index first exactly as the tile walker passes them, and ties on
// exact distance resolve to the lower neighbour index as in mergeRange.
//
// Incremental is not safe for concurrent use; callers serialise appends.
type Incremental struct {
	t    ts.Series
	w    int
	excl int
	p    []float64 // squared z-norm distances (sqrt applied on Profile())
	i    []int
	// Sliding-window statistics of every window so far, grown one entry
	// per append past the first full window; roll is the cumulative-sum
	// state of the newest window.
	means, stds []float64
	roll        ts.Rolling
	// dots[j] = dot(t[j:j+w], t[last:last+w]) for the newest window: the
	// previous append's row, reused by the STOMPI recurrence — entry j of
	// the new row is one rollDot step from entry j−1 of the old row, both
	// cells of the same matrix diagonal.
	dots []float64
}

// NewIncremental starts an incremental profile over the initial series.
// It rejects w < 1 and non-finite initial values as typed errs.ErrBadInput
// — the silent-garbage alternative (NaN poisoning every future profile
// entry it touches) is exactly what the batch path's validation prevents.
// The initial profile is seeded by replaying the appends, so it is
// byte-identical to SelfJoin for the same reason every later step is.
func NewIncremental(initial []float64, w int) (*Incremental, error) {
	if w < 1 {
		return nil, errs.BadInput(errs.StageKernel, "mp.incremental", "", "window must be >= 1 (got %d)", w)
	}
	for idx, v := range initial {
		if !isFinite(v) {
			return nil, errs.BadInput(errs.StageKernel, "mp.incremental", "", "non-finite value %v at index %d", v, idx)
		}
	}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	inc := &Incremental{w: w, excl: excl}
	inc.Reserve(len(initial))
	for _, v := range initial {
		inc.appendPoint(v)
	}
	return inc, nil
}

// Append adds one value to the series and updates the profile in O(N).
// A non-finite value is rejected as typed errs.ErrBadInput before any
// state changes, so the profile remains valid and further appends may
// continue.  Degenerate (constant) trailing windows are not an error: they
// flow through the same near-zero-std guards as the batch kernel (two
// constant windows are at distance 0, a constant and a non-constant window
// at the maximum 2w) and stay byte-identical to SelfJoin.
func (inc *Incremental) Append(v float64) error {
	if !isFinite(v) {
		return errs.BadInput(errs.StageKernel, "mp.incremental", "", "non-finite value %v appended at index %d", v, len(inc.t))
	}
	inc.appendPoint(v)
	return nil
}

// Reserve grows the internal buffers to hold a series of total points
// without further allocation, so a caller that knows (or bounds) its
// stream length makes every subsequent Append allocation-free.
func (inc *Incremental) Reserve(total int) {
	nw := total - inc.w + 1
	if nw < 0 {
		nw = 0
	}
	inc.t = growFloats(inc.t, total)
	inc.p = growFloats(inc.p, nw)
	inc.means = growFloats(inc.means, nw)
	inc.stds = growFloats(inc.stds, nw)
	inc.dots = growFloats(inc.dots, nw)
	inc.i = growInts(inc.i, nw)
}

// appendPoint is the STOMPI kernel: one point in, one profile row out.
// It runs once per streamed point on the serving path, so after Reserve it
// must not allocate.
//
//ips:hotpath
func (inc *Incremental) appendPoint(v float64) {
	inc.t = append(inc.t, v)
	n := len(inc.t) - inc.w + 1
	if n <= 0 {
		return
	}
	newIdx := n - 1
	w := inc.w
	t := inc.t

	// Window statistics: the first full window seeds the shared Rolling
	// state; every later window is one Advance — the identical walk
	// MovingMeanStd performs, so the stats are bitwise equal to a batch
	// recompute.
	if newIdx == 0 {
		inc.roll = ts.NewRolling(t[:w])
	} else {
		inc.roll.Advance(t[newIdx-1], t[newIdx+w-1])
	}
	m, s := inc.roll.MeanStd()
	inc.means = append(inc.means, m)
	inc.stds = append(inc.stds, s)

	// Dot-row update.  Pair (j, newIdx) lies on diagonal newIdx−j, whose
	// previous cell (j−1, newIdx−1) is entry j−1 of last append's row;
	// walking j downward consumes each old entry before overwriting it,
	// so the update is in place.  Entry 0 opens diagonal newIdx and is
	// seeded exactly as SlidingDots seeds it for the batch kernel.
	// Excluded diagonals (newIdx−j <= excl) are maintained but never
	// scored; a cell stays on its diagonal forever, so they can never
	// leak into a distance.
	inc.dots = append(inc.dots, 0)
	for j := newIdx; j >= 1; j-- {
		inc.dots[j] = rollDot(inc.dots[j-1], t[j-1], t[newIdx-1], t[j+w-1], t[newIdx+w-1])
	}
	inc.dots[0] = ts.Dot(t[:w], t[newIdx:newIdx+w])

	// Min pass: update old positions that gain newIdx as nearest
	// neighbour, and reduce the new row.  Both comparisons are strictly
	// `<`: newIdx is the largest index in play, so on an exact tie the
	// established lower neighbour index must win, matching mergeRange's
	// total order on (distance, neighbour index).  Scanning j upward makes
	// the new row's own ties resolve to the lowest j the same way.
	best, bestJ := math.Inf(1), -1
	lim := newIdx - inc.excl // score exactly the pairs with newIdx−j > excl
	for j := 0; j < lim; j++ {
		d := ts.ZNormSqDistFromStats(inc.dots[j], w, inc.means[j], inc.stds[j], m, s)
		if d < best {
			best, bestJ = d, j
		}
		if d < inc.p[j] {
			inc.p[j] = d
			inc.i[j] = newIdx
		}
	}
	inc.p = append(inc.p, best)
	inc.i = append(inc.i, bestJ)
}

// Profile returns the current matrix profile (distances, not squared).
func (inc *Incremental) Profile() *Profile {
	out := &Profile{P: make([]float64, len(inc.p)), I: append([]int(nil), inc.i...), W: inc.w}
	for j, v := range inc.p {
		if math.IsInf(v, 1) {
			out.P[j] = v
		} else {
			out.P[j] = math.Sqrt(v)
		}
	}
	return out
}

// Len returns the current series length.
func (inc *Incremental) Len() int { return len(inc.t) }

// Windows returns the number of profile positions (series windows) so far.
func (inc *Incremental) Windows() int { return len(inc.p) }

// W returns the window length.
func (inc *Incremental) W() int { return inc.w }

// Series returns the accumulated series.  The slice is the live internal
// buffer — callers must treat it as read-only and must not retain it
// across Appends (growth may move it).
func (inc *Incremental) Series() []float64 { return inc.t }

// DistAt returns the profile distance (not squared) at window j.
func (inc *Incremental) DistAt(j int) float64 {
	v := inc.p[j]
	if math.IsInf(v, 1) {
		return v
	}
	return math.Sqrt(v)
}

// MinIndex returns the window with the smallest profile distance — the
// motif — or -1 while no window has a neighbour.  Ties resolve to the
// lowest index.  It is an O(N) scan that does not allocate.
func (inc *Incremental) MinIndex() int {
	best, bestJ := math.Inf(1), -1
	for j, v := range inc.p {
		if v < best {
			best, bestJ = v, j
		}
	}
	return bestJ
}

// MaxIndex returns the window with the largest finite profile distance —
// the discord — or -1 if no window has a finite distance.  Ties resolve to
// the lowest index.  It is an O(N) scan that does not allocate.
func (inc *Incremental) MaxIndex() int {
	best, bestJ := math.Inf(-1), -1
	for j, v := range inc.p {
		if !math.IsInf(v, 1) && v > best {
			best, bestJ = v, j
		}
	}
	return bestJ
}

// isFinite reports whether v is neither NaN nor ±Inf.
func isFinite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// growFloats returns s with capacity at least n, preserving contents.
func growFloats(s []float64, n int) []float64 {
	if cap(s) < n {
		out := make([]float64, len(s), n)
		copy(out, s)
		return out
	}
	return s
}

// growInts returns s with capacity at least n, preserving contents.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		out := make([]int, len(s), n)
		copy(out, s)
		return out
	}
	return s
}
