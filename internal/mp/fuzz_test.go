package mp

import (
	"encoding/binary"
	"math"
	"testing"
)

// fuzzSeries decodes 8-byte chunks of data as float64s.  NaN and ±Inf bit
// patterns are remapped to finite values derived from the same bits, so the
// harness explores the full finite range — including the huge magnitudes
// (|v| ≳ 1e154) whose squares overflow the sliding statistics — without
// feeding the kernels inputs they do not claim to accept.
func fuzzSeries(data []byte) []float64 {
	n := len(data) / 8
	out := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		bits := binary.LittleEndian.Uint64(data[i*8:])
		v := math.Float64frombits(bits)
		if math.IsNaN(v) || math.IsInf(v, 0) {
			v = float64(int32(bits)) // deterministic finite stand-in
		}
		out = append(out, v)
	}
	return out
}

// checkProfileFinite asserts the NaN/Inf contract of a join result: every
// distance is either +Inf with neighbour −1 (no valid neighbour) or a
// finite non-negative value with a neighbour in range — NaN never leaks
// into a profile, whatever the (finite) input.
func checkProfileFinite(t *testing.T, p *Profile, nNeighbours int) {
	t.Helper()
	for i, v := range p.P {
		switch {
		case math.IsNaN(v):
			t.Fatalf("P[%d] is NaN", i)
		case math.IsInf(v, 1):
			if p.I[i] != -1 {
				t.Fatalf("P[%d] = +Inf but I[%d] = %d", i, i, p.I[i])
			}
		case math.IsInf(v, -1) || v < 0:
			t.Fatalf("P[%d] = %v, want non-negative", i, v)
		default:
			if p.I[i] < 0 || p.I[i] >= nNeighbours {
				t.Fatalf("I[%d] = %d out of range [0,%d)", i, p.I[i], nNeighbours)
			}
		}
	}
}

// FuzzSelfJoin feeds arbitrary finite series — zero-variance segments,
// overflow-scale magnitudes, sub-window lengths — through the tiled kernel
// at several worker counts, asserting the no-NaN contract and worker-count
// byte-identity on every input.
func FuzzSelfJoin(f *testing.F) {
	f.Add([]byte{}, uint8(4))
	f.Add(make([]byte, 8*6), uint8(3))                             // all-zero (constant) series
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x7f, 1, 2, 3}, uint8(2)) // +Inf bit pattern remapped
	seed := make([]byte, 8*40)
	for i := range seed {
		seed[i] = byte(i * 37)
	}
	f.Add(seed, uint8(8))
	f.Fuzz(func(t *testing.T, data []byte, wRaw uint8) {
		if len(data) > 8*512 {
			return // keep the O(N²) join inside fuzz-time budget
		}
		series := fuzzSeries(data)
		w := 2 + int(wRaw)%64
		ref := SelfJoinOpts(series, w, nil, Options{Workers: 1})
		n := len(series) - w + 1
		if n <= 0 {
			if ref.Len() != 0 {
				t.Fatalf("sub-window input produced %d entries", ref.Len())
			}
			return
		}
		checkProfileFinite(t, ref, n)
		for _, workers := range []int{2, 5} {
			got := SelfJoinOpts(series, w, nil, Options{Workers: workers})
			for i := range got.P {
				if math.Float64bits(got.P[i]) != math.Float64bits(ref.P[i]) || got.I[i] != ref.I[i] {
					t.Fatalf("workers=%d: (P[%d],I[%d]) = (%v,%d), want (%v,%d)",
						workers, i, i, got.P[i], got.I[i], ref.P[i], ref.I[i])
				}
			}
		}
	})
}

// FuzzMASS asserts that the FFT-based distance profile never emits NaN or
// negative values: every entry is finite and non-negative for any finite
// query/series pair, including constant queries and sub-window series.
func FuzzMASS(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add(make([]byte, 8*4), make([]byte, 8*16)) // constant query and series
	q := make([]byte, 8*8)
	s := make([]byte, 8*64)
	for i := range q {
		q[i] = byte(i * 13)
	}
	for i := range s {
		s[i] = byte(i * 7)
	}
	f.Add(q, s)
	f.Fuzz(func(t *testing.T, qb, tb []byte) {
		if len(qb) > 8*64 || len(tb) > 8*1024 {
			return
		}
		query := fuzzSeries(qb)
		series := fuzzSeries(tb)
		prof := MASS(query, series)
		wantLen := len(series) - len(query) + 1
		if len(query) == 0 || wantLen <= 0 {
			if prof != nil {
				t.Fatalf("degenerate input produced %d entries", len(prof))
			}
			return
		}
		if len(prof) != wantLen {
			t.Fatalf("profile length %d, want %d", len(prof), wantLen)
		}
		for i, v := range prof {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				t.Fatalf("prof[%d] = %v, want finite non-negative", i, v)
			}
		}
	})
}

// FuzzIncremental cross-checks the STOMPI append path against a fresh
// SelfJoin recompute: for an arbitrary finite series, an arbitrary window,
// and an arbitrary seed/append split point, the incrementally maintained
// profile must be byte-identical to the batch kernel's.  This is the same
// contract TestIncrementalByteIdentity pins on curated cases, explored over
// random shapes — zero-variance runs, overflow-scale magnitudes, windows
// longer than the series.
func FuzzIncremental(f *testing.F) {
	f.Add([]byte{}, uint8(4), uint8(0))
	f.Add(make([]byte, 8*12), uint8(3), uint8(5)) // constant series, split mid-way
	seed := make([]byte, 8*30)
	for i := range seed {
		seed[i] = byte(i * 53)
	}
	f.Add(seed, uint8(6), uint8(10))
	f.Fuzz(func(t *testing.T, data []byte, wRaw, splitRaw uint8) {
		if len(data) > 8*256 {
			return // keep the O(N²) reference join inside fuzz-time budget
		}
		series := fuzzSeries(data)
		w := 1 + int(wRaw)%32
		split := 0
		if len(series) > 0 {
			split = int(splitRaw) % (len(series) + 1)
		}
		inc, err := NewIncremental(series[:split], w)
		if err != nil {
			t.Fatalf("NewIncremental(finite series): %v", err)
		}
		for _, v := range series[split:] {
			if err := inc.Append(v); err != nil {
				t.Fatalf("Append(%v): %v", v, err)
			}
		}
		got := inc.Profile()
		want := SelfJoinOpts(series, w, nil, Options{Workers: 1})
		n := len(series) - w + 1
		if n <= 0 {
			if got.Len() != 0 {
				t.Fatalf("sub-window input produced %d entries", got.Len())
			}
			return
		}
		checkProfileFinite(t, got, n)
		profilesEqual(t, got, want, len(series))
	})
}
