package mp

import (
	"math"
	"testing"

	"ips/internal/ts"
)

// These tests pin the profile-level NaN contract surfaced by FuzzSelfJoin /
// FuzzMASS: constant subsequences and overflow-scale magnitudes must never
// put NaN into a profile.

func TestMASSConstantQueryIsSqrt2W(t *testing.T) {
	w := 16
	q := make([]float64, w) // all zeros: zero variance
	series := randomSeries(200, 3)
	prof := MASS(q, series)
	want := math.Sqrt(2 * float64(w))
	for i, v := range prof {
		if !ts.ApproxEqual(v, want, 1e-9) {
			t.Fatalf("prof[%d] = %v, want %v (constant query convention)", i, v, want)
		}
	}
}

func TestMASSConstantEverythingIsZero(t *testing.T) {
	q := []float64{2, 2, 2, 2}
	series := []float64{5, 5, 5, 5, 5, 5, 5, 5}
	for i, v := range MASS(q, series) {
		if v != 0 {
			t.Fatalf("prof[%d] = %v, want 0 (two constants are at distance 0)", i, v)
		}
	}
}

func TestMASSHugeMagnitudesNoNaN(t *testing.T) {
	series := randomSeries(120, 8)
	for i := range series {
		series[i] *= 1e170 // squares overflow the sliding statistics
	}
	q := series[10:26]
	for i, v := range MASS(q, series) {
		if math.IsNaN(v) || v < 0 {
			t.Fatalf("prof[%d] = %v, want finite non-negative", i, v)
		}
	}
}

func TestSelfJoinFlatSegmentNoNaN(t *testing.T) {
	series := randomSeries(150, 11)
	for i := 40; i < 90; i++ {
		series[i] = 7.25 // long constant run: many zero-variance windows
	}
	for _, workers := range []int{1, 4} {
		p := SelfJoinOpts(series, 12, nil, Options{Workers: workers})
		for i, v := range p.P {
			if math.IsNaN(v) {
				t.Fatalf("workers=%d: P[%d] is NaN", workers, i)
			}
			if !math.IsInf(v, 1) && (p.I[i] < 0 || p.I[i] >= p.Len()) {
				t.Fatalf("workers=%d: I[%d] = %d out of range", workers, i, p.I[i])
			}
		}
	}
}

func TestSelfJoinHugeMagnitudesNoNaN(t *testing.T) {
	series := randomSeries(100, 13)
	for i := range series {
		series[i] *= 1e180
	}
	p := SelfJoin(series, 8, nil)
	for i, v := range p.P {
		if math.IsNaN(v) {
			t.Fatalf("P[%d] is NaN", i)
		}
	}
}
