package mp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

// propertyCase is one randomised join input: a series (possibly with flat
// segments and exactly repeated patterns, to force zero-variance windows and
// exact distance ties), a window, and an optional validity mask.
type propertyCase struct {
	t     []float64
	w     int
	valid []bool
}

// genCase derives a join input from a seed.  Roughly a third of the cases
// get a constant segment spliced in (zero-variance windows), a third get an
// exactly repeated pattern (bitwise distance ties, so the lower-index
// tie-break is exercised), and a quarter get a validity mask.
func genCase(seed int64) propertyCase {
	rng := rand.New(rand.NewSource(seed))
	ws := []int{3, 4, 5, 8, 16, 32}
	w := ws[rng.Intn(len(ws))]
	n := 2*w + 2 + rng.Intn(140)
	t := make([]float64, n)
	v := 0.0
	for i := range t {
		v += rng.NormFloat64()
		t[i] = v
	}
	switch rng.Intn(3) {
	case 0:
		// Constant segment of at least a full window.
		start := rng.Intn(n - w)
		length := w + rng.Intn(w)
		c := rng.NormFloat64() * 10
		for i := start; i < start+length && i < n; i++ {
			t[i] = c
		}
	case 1:
		// The same pattern at three sites: two of the three pairwise
		// distances tie at exactly 0, so the tie-break decides the index.
		pat := make([]float64, w)
		for i := range pat {
			pat[i] = rng.NormFloat64() * 5
		}
		for _, at := range []int{0, n / 2, n - w} {
			copy(t[at:], pat)
		}
	}
	var valid []bool
	if rng.Intn(4) == 0 {
		valid = make([]bool, n-w+1)
		for i := range valid {
			valid[i] = rng.Intn(5) != 0
		}
	}
	return propertyCase{t: t, w: w, valid: valid}
}

// requireIdentical asserts two profiles are byte-identical: every distance
// bit pattern and every neighbour index must match exactly.
func requireIdentical(t *testing.T, got, want *Profile, label string) {
	t.Helper()
	if len(got.P) != len(want.P) || len(got.I) != len(want.I) {
		t.Fatalf("%s: profile size (%d,%d), want (%d,%d)", label, len(got.P), len(got.I), len(want.P), len(want.I))
	}
	for i := range got.P {
		if math.Float64bits(got.P[i]) != math.Float64bits(want.P[i]) {
			t.Fatalf("%s: P[%d] = %x (%v), want %x (%v)", label,
				i, math.Float64bits(got.P[i]), got.P[i], math.Float64bits(want.P[i]), want.P[i])
		}
		if got.I[i] != want.I[i] {
			t.Fatalf("%s: I[%d] = %d, want %d (P[%d]=%v)", label, i, got.I[i], want.I[i], i, got.P[i])
		}
	}
}

// defDist returns the z-normalised Euclidean distance between two length-w
// windows, computed directly from the definition, under the package's
// documented zero-variance convention (see ts.ZNormSqDistFromStats): two
// constant windows are at distance 0, a constant against a non-constant at
// √(2w).  Plain ZNorm-to-zeros would instead yield √w for the mixed case,
// which is a different (equally common) convention than the kernel's.
func defDist(a, b []float64) float64 {
	const eps = 1e-12
	_, stdA := ts.MeanStd(a)
	_, stdB := ts.MeanStd(b)
	if stdA < eps && stdB < eps {
		return 0
	}
	if stdA < eps || stdB < eps {
		return math.Sqrt(2 * float64(len(a)))
	}
	return math.Sqrt(ts.SqDist(ts.ZNorm(a), ts.ZNorm(b)))
}

// defSelfJoin is the O(N²·w) brute-force self-join reference under defDist.
func defSelfJoin(t []float64, w int, valid []bool) *Profile {
	n := len(t) - w + 1
	p := &Profile{P: make([]float64, n), I: make([]int, n), W: w}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	ok := func(i int) bool { return valid == nil || valid[i] }
	for i := 0; i < n; i++ {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
		if !ok(i) {
			continue
		}
		for j := 0; j < n; j++ {
			if d := i - j; !ok(j) || (-excl <= d && d <= excl) {
				continue
			}
			dist := defDist(t[i:i+w], t[j:j+w])
			if dist < p.P[i] {
				p.P[i] = dist
				p.I[i] = j
			}
		}
	}
	return p
}

// defABJoin is the O(N²·w) brute-force AB-join reference under defDist.
func defABJoin(a, b []float64, w int, validA, validB []bool) *Profile {
	na := len(a) - w + 1
	nb := len(b) - w + 1
	p := &Profile{P: make([]float64, na), I: make([]int, na), W: w}
	for i := 0; i < na; i++ {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
		if validA != nil && !validA[i] {
			continue
		}
		for j := 0; j < nb; j++ {
			if validB != nil && !validB[j] {
				continue
			}
			dist := defDist(a[i:i+w], b[j:j+w])
			if dist < p.P[i] {
				p.P[i] = dist
				p.I[i] = j
			}
		}
	}
	return p
}

// nearDegenerate reports whether a window is constant up to round-off.  The
// kernel's O(1) sliding statistics cannot distinguish an exactly constant
// window from one whose cumulative sums left ~1e-13-relative residue, so on
// such windows the kernel follows its own (deterministic) zero-variance
// convention rather than the two-pass reference's; the definitional
// comparison skips them.  Worker-count determinism and NaN-freeness are
// still asserted for every position, degenerate or not.
func nearDegenerate(win []float64) bool {
	mean, std := ts.MeanStd(win)
	return std <= 1e-5*(1+math.Abs(mean))
}

// checkAgainstNaive compares a kernel join of a against b (a==b for a
// self-join) to the brute-force reference: distances must agree within tol,
// infinite rows must agree exactly, and when the neighbour indices differ
// the two candidates must be a genuine tie (their definition-computed
// distances agree within tol).  Positions touching near-degenerate windows
// are exempt from the definitional comparison (see nearDegenerate).
func checkAgainstNaive(t *testing.T, a, b []float64, w int, got, want *Profile, tol float64, label string) {
	t.Helper()
	for i := range got.P {
		gi, wi := got.P[i], want.P[i]
		if math.IsInf(gi, 1) != math.IsInf(wi, 1) {
			t.Fatalf("%s: P[%d] = %v, want %v", label, i, gi, wi)
		}
		if math.IsInf(gi, 1) {
			if got.I[i] != -1 {
				t.Fatalf("%s: infinite P[%d] has neighbour %d, want -1", label, i, got.I[i])
			}
			continue
		}
		if math.IsNaN(gi) {
			t.Fatalf("%s: P[%d] is NaN", label, i)
		}
		if nearDegenerate(a[i:i+w]) || nearDegenerate(b[got.I[i]:got.I[i]+w]) ||
			(want.I[i] >= 0 && nearDegenerate(b[want.I[i]:want.I[i]+w])) {
			continue
		}
		if !ts.ApproxEqualRel(gi, wi, tol) {
			t.Fatalf("%s: P[%d] = %v, want %v", label, i, gi, wi)
		}
		if got.I[i] != want.I[i] {
			// Legitimate only if the alternative neighbour ties.
			alt := defDist(a[i:i+w], b[got.I[i]:got.I[i]+w])
			if !ts.ApproxEqualRel(alt, wi, tol) {
				t.Fatalf("%s: I[%d] = %d (dist %v), want %d (dist %v)", label, i, got.I[i], alt, want.I[i], wi)
			}
		}
	}
}

// TestSelfJoinPropertyWorkers cross-checks the tiled kernel on ~200 seeded
// random series: for every case, SelfJoin at Workers ∈ {1,2,3,8} must be
// byte-identical, must match the naive O(N²·w) reference within tolerance
// (index disagreements only on genuine ties), and must respect the
// exclusion zone and the validity mask.
func TestSelfJoinPropertyWorkers(t *testing.T) {
	for seed := int64(0); seed < 200; seed++ {
		pc := genCase(seed)
		ref := SelfJoinOpts(pc.t, pc.w, pc.valid, Options{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			got := SelfJoinOpts(pc.t, pc.w, pc.valid, Options{Workers: workers})
			requireIdentical(t, got, ref, labelFor("self", seed, pc.w, workers))
		}
		want := defSelfJoin(pc.t, pc.w, pc.valid)
		checkAgainstNaive(t, pc.t, pc.t, pc.w, ref, want, 1e-4, labelFor("self-naive", seed, pc.w, 1))

		excl := pc.w / 2
		if excl < 1 {
			excl = 1
		}
		for i, j := range ref.I {
			if j < 0 {
				continue
			}
			if d := i - j; -excl <= d && d <= excl {
				t.Fatalf("seed %d: I[%d] = %d violates exclusion zone %d", seed, i, j, excl)
			}
			if pc.valid != nil && (!pc.valid[i] || !pc.valid[j]) {
				t.Fatalf("seed %d: masked pair (%d,%d) in profile", seed, i, j)
			}
		}
	}
}

// TestABJoinPropertyWorkers is the AB-join analogue: byte-identical across
// Workers ∈ {1,2,3,8}, tolerance-equal to the brute-force reference with
// tie-aware index checks, and mask-respecting.
func TestABJoinPropertyWorkers(t *testing.T) {
	for seed := int64(1000); seed < 1200; seed++ {
		ca := genCase(seed)
		cb := genCase(seed + 5000)
		w := ca.w // use a's window for both; cb.t is just a second series
		if len(cb.t)-w+1 <= 0 {
			continue
		}
		var validB []bool
		if cb.valid != nil {
			validB = make([]bool, len(cb.t)-w+1)
			for i := range validB {
				validB[i] = i >= len(cb.valid) || cb.valid[i]
			}
		}
		ref := ABJoinOpts(ca.t, cb.t, w, ca.valid, validB, Options{Workers: 1})
		for _, workers := range []int{2, 3, 8} {
			got := ABJoinOpts(ca.t, cb.t, w, ca.valid, validB, Options{Workers: workers})
			requireIdentical(t, got, ref, labelFor("ab", seed, w, workers))
		}
		want := defABJoin(ca.t, cb.t, w, ca.valid, validB)
		checkAgainstNaive(t, ca.t, cb.t, w, ref, want, 1e-4, labelFor("ab-naive", seed, w, 1))
	}
}

// TestSelfJoinTieBreakLowerIndex pins the tie-break contract on an exact
// tie.  The series is integer-valued, so every rolling dot product, window
// sum, and window mean is computed exactly: the pattern planted at 8, 44,
// and 80 gives position 44 bitwise-identical distances to both copies, and
// the reported neighbour must be the lower index, at every worker count.
func TestSelfJoinTieBreakLowerIndex(t *testing.T) {
	w := 8
	pat := []float64{0, 3, 6, 3, 0, -3, -6, -3}
	n := 96
	tt := make([]float64, n)
	rng := rand.New(rand.NewSource(7))
	for i := range tt {
		tt[i] = float64(rng.Intn(13) - 6)
	}
	sites := []int{8, 44, 80} // pairwise gaps far beyond the exclusion zone
	for _, at := range sites {
		copy(tt[at:], pat)
	}
	for _, workers := range []int{1, 2, 4, 8} {
		p := SelfJoinOpts(tt, w, nil, Options{Workers: workers})
		if p.P[44] > 1e-6 {
			t.Fatalf("workers=%d: P[44] = %v, want ~0", workers, p.P[44])
		}
		// 8 and 80 tie bitwise as neighbours of 44; the lower index wins.
		if p.I[44] != 8 {
			t.Fatalf("workers=%d: I[44] = %d, want tie broken to 8", workers, p.I[44])
		}
		if p.I[80] != 8 {
			t.Fatalf("workers=%d: I[80] = %d, want tie broken to 8", workers, p.I[80])
		}
	}
}

func labelFor(kind string, seed int64, w, workers int) string {
	return fmt.Sprintf("%s/seed=%d/w=%d/workers=%d", kind, seed, w, workers)
}
