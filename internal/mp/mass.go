package mp

import (
	"math"

	"ips/internal/fft"
	"ips/internal/ts"
)

// MASS computes the z-normalised Euclidean distance profile of query q
// against every length-|q| window of t in O(N log N) using FFT-based sliding
// dot products (Mueen's Algorithm for Similarity Search) — the classic
// building block of STAMP-style matrix profiles.  The STOMP joins in this
// package amortise their dot products incrementally instead, but MASS is the
// right tool for one-off queries such as locating a shapelet inside a long
// recording.
func MASS(q, t []float64) []float64 {
	m := len(q)
	n := len(t) - m + 1
	if n <= 0 || m == 0 {
		return nil
	}
	dots := fft.SlidingDots(q, t)
	meanQ, stdQ := ts.MeanStd(q)
	means, stds := ts.MovingMeanStd(t, m)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		d := ts.ZNormSqDistFromStats(dots[i], m, meanQ, stdQ, means[i], stds[i])
		out[i] = math.Sqrt(d)
	}
	return out
}

// BestMatch returns the window offset of t whose z-normalised distance to q
// is smallest, together with that distance.  It returns (-1, +Inf) when t is
// shorter than q.
func BestMatch(q, t []float64) (int, float64) {
	prof := MASS(q, t)
	best, bestV := -1, math.Inf(1)
	for i, v := range prof {
		if v < bestV {
			best, bestV = i, v
		}
	}
	return best, bestV
}

// TopMotifs returns up to k motif pairs of the profile: positions whose
// nearest-neighbour distances are smallest, each paired with its neighbour,
// with an exclusion zone of half the window between reported positions.
func (p *Profile) TopMotifs(k int) [][2]int {
	idxs := p.TopK(k, false, p.W/2)
	out := make([][2]int, 0, len(idxs))
	for _, i := range idxs {
		out = append(out, [2]int{i, p.I[i]})
	}
	return out
}

// TopDiscords returns up to k discord positions of the profile: positions
// whose nearest-neighbour distances are largest, with an exclusion zone of
// half the window.
func (p *Profile) TopDiscords(k int) []int {
	return p.TopK(k, true, p.W/2)
}
