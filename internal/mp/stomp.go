package mp

import (
	"context"
	"math"
	"sync"

	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/ts"
)

// Options configures a join kernel invocation.  The zero value reproduces
// the historical sequential behaviour.
type Options struct {
	// Workers is the number of goroutines walking diagonal tiles (<=1 means
	// sequential).  The kernel is worker-count invariant: the profile is
	// byte-identical for every value of Workers, because each diagonal's
	// rolling dot product is walked by exactly one goroutine (so every cell
	// distance is bitwise reproducible) and the partial profiles are merged
	// under the total order (distance, neighbour index).
	Workers int
	// Span, when non-nil, receives a child span per join with size/tile
	// attributes and one sub-span per worker (see internal/obs).
	Span *obs.Span
}

// rollDot advances a diagonal dot product one cell: the window pair
// (i, j) slides to (i+1, j+1), dropping the products of the elements that
// leave and entering the ones that arrive.  Every path that walks a matrix
// diagonal — the self-join and AB-join tile walkers and the STOMPI append
// in Incremental — MUST roll through this one function: byte-identity
// between the batch and incremental profiles depends on every cell's dot
// being computed by the same compiled expression (so e.g. a platform's
// fused-multiply-add decisions apply identically), not merely the same
// formula written twice.
//
//ips:hotpath
func rollDot(dot, aOld, bOld, aNew, bNew float64) float64 {
	return dot + (aNew*bNew - aOld*bOld)
}

// tile is a half-open range [lo, hi) of diagonal offsets.
type tile struct{ lo, hi int }

// cutTiles partitions the diagonal offsets [lo, hi) into tiles of roughly
// equal cell count, so dynamic tile scheduling stays balanced even though
// early diagonals of a self-join are much longer than late ones.  cells(k)
// returns the number of matrix cells on diagonal k; tilesPerWorker comes
// from the calibrated autotuner (see autotune.go) and is purely a
// scheduling knob — the profile is byte-identical for any value.
func cutTiles(lo, hi, workers, tilesPerWorker int, cells func(k int) int) []tile {
	if workers <= 1 {
		return []tile{{lo, hi}}
	}
	total := 0
	for k := lo; k < hi; k++ {
		total += cells(k)
	}
	target := total/(workers*tilesPerWorker) + 1
	var out []tile
	start, acc := lo, 0
	for k := lo; k < hi; k++ {
		acc += cells(k)
		if acc >= target {
			out = append(out, tile{start, k + 1})
			start, acc = k+1, 0
		}
	}
	if start < hi {
		out = append(out, tile{start, hi})
	}
	return out
}

// clampWorkers bounds the requested worker count to something useful for
// ndiags diagonals.
func clampWorkers(workers, ndiags int) int {
	if workers < 1 {
		workers = 1
	}
	if workers > ndiags {
		workers = ndiags
	}
	return workers
}

// runTiles drains the tile set with workers goroutines, each accumulating
// into its own partial profile from the shared arena, and returns the
// partials for merging.  walk must be safe to call concurrently for
// distinct partials; tiles are handed out dynamically, which is safe
// because the merge order (not the schedule) defines the result.
//
// Cancellation is cooperative at tile granularity: once ctx is done the
// workers keep draining the channel (so the producer never blocks on an
// abandoned send) but skip the walks, bounding cancellation latency to one
// in-flight tile per worker.  The caller must check ctx after runTiles and
// discard the (incomplete) partials on cancellation.
func runTiles(ctx context.Context, workers int, tiles []tile, n int, sp *obs.Span, walk func(pt *partial, tl tile)) []*partial {
	parts := make([]*partial, workers)
	if workers <= 1 {
		pt := getPartial(n)
		for _, tl := range tiles {
			if ctx.Err() != nil {
				break
			}
			walk(pt, tl)
		}
		parts[0] = pt
		return parts
	}
	ch := make(chan tile)
	var wg sync.WaitGroup
	for wi := 0; wi < workers; wi++ {
		parts[wi] = getPartial(n)
		wg.Add(1)
		go func(wi int, pt *partial) {
			defer wg.Done()
			wsp := sp.Child("worker")
			defer wsp.End()
			ntiles := 0
			for tl := range ch {
				if ctx.Err() != nil {
					continue // drain without working
				}
				walk(pt, tl)
				ntiles++
			}
			wsp.SetInt("worker", int64(wi))
			wsp.SetInt("tiles", int64(ntiles))
		}(wi, parts[wi])
	}
	for _, tl := range tiles {
		ch <- tl
	}
	close(ch)
	wg.Wait()
	return parts
}

// finishTiles either merges the partials into p or, when ctx was cancelled
// mid-join, returns every partial to the arena unmerged and reports the
// cancellation as a typed error.
func finishTiles(ctx context.Context, parts []*partial, p *Profile, op string) (*Profile, error) {
	if err := errs.Ctx(ctx, errs.StageKernel, op); err != nil {
		for _, pt := range parts {
			if pt != nil {
				putPartial(pt)
			}
		}
		return nil, err
	}
	mergePartials(parts, p)
	return p, nil
}

// parallelMergeMin is the profile length below which the min-merge stays
// sequential: under it the per-position work is too small to pay for
// goroutine startup and the barrier.
const parallelMergeMin = 4096

// mergePartials min-reduces the partial profiles into prof (squared
// distances), then converts to distances in place.  Each output position is
// computed independently from the same partials under the same total order
// as partial.update, so the reduction parallelises over contiguous position
// chunks — one per merging goroutine — with a result independent of the
// worker count, the tile schedule, and the chunking.
func mergePartials(parts []*partial, prof *Profile) {
	n := len(prof.P)
	workers := len(parts)
	if workers <= 1 || n < parallelMergeMin {
		mergeRange(parts, prof, 0, n)
	} else {
		chunk := (n + workers - 1) / workers
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				mergeRange(parts, prof, lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	for _, pt := range parts {
		putPartial(pt)
	}
}

// mergeRange min-reduces positions [lo, hi) of the partials into prof.
// Runs once per output position across the whole profile — it must not
// allocate.
//
//ips:hotpath
func mergeRange(parts []*partial, prof *Profile, lo, hi int) {
	for pos := lo; pos < hi; pos++ {
		best, bestIdx := math.Inf(1), -1
		for _, pt := range parts {
			d, idx := pt.p[pos], pt.i[pos]
			//lint:ignore ipslint/floateq cell distances are bitwise reproducible across workers, so an exact tie means the same value reached via two neighbours; the lower index wins by definition
			if d < best || (d == best && idx >= 0 && (bestIdx < 0 || idx < bestIdx)) {
				best, bestIdx = d, idx
			}
		}
		if math.IsInf(best, 1) {
			prof.P[pos] = best
		} else {
			prof.P[pos] = math.Sqrt(best)
		}
		prof.I[pos] = bestIdx
	}
}

// SelfJoinOpts is SelfJoinCtx without cancellation (a background context).
//
//ips:blocking
func SelfJoinOpts(t []float64, w int, valid []bool, opt Options) *Profile {
	p, err := SelfJoinCtx(context.Background(), t, w, valid, opt)
	if err != nil {
		// Unreachable: a background context never cancels and the kernel
		// has no other failure mode; keep the degenerate shape anyway.
		return &Profile{W: w}
	}
	return p
}

// SelfJoinCtx computes the matrix profile of t with window w under
// z-normalised Euclidean distance, using a diagonal-tiled STOMP kernel:
// the strict upper triangle of the distance matrix (offsets k > excl) is
// partitioned into contiguous diagonal tiles, each walked with the O(1)
// rolling dot-product recurrence
//
//	qt(i+1, j+1) = qt(i, j) − t[i]·t[j] + t[i+w]·t[j+w]
//
// into per-worker partial profiles, which are then min-reduced
// deterministically (ties on exact distance go to the lower neighbour
// index).  Subsequences within w/2 of the query are excluded, as are
// subsequences for which valid is false (nil means all valid).
//
// Cancelling ctx stops the join at tile granularity and returns a nil
// profile with an error matching errs.ErrCanceled; no partial profile
// escapes, so callers never see a half-merged result.
//
//ips:blocking
func SelfJoinCtx(ctx context.Context, t []float64, w int, valid []bool, opt Options) (*Profile, error) {
	n := len(t) - w + 1
	if n <= 0 || w <= 0 {
		return &Profile{W: w}, nil
	}
	sp := opt.Span.Child("mp.selfjoin")
	defer sp.End()
	sp.SetInt("n", int64(n))
	sp.SetInt("w", int64(w))

	p := &Profile{P: make([]float64, n), I: make([]int, n), W: w}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	lo := excl + 1 // first diagonal offset with a non-trivial pair
	if lo >= n {
		for i := range p.P {
			p.P[i] = math.Inf(1)
			p.I[i] = -1
		}
		return p, nil
	}
	means, stds := ts.MovingMeanStd(t, w)
	first := ts.SlidingDots(t[:w], t) // first[k] = dot(t[0:w], t[k:k+w])

	workers := clampWorkers(opt.Workers, n-lo)
	tpw := tuneTilesPerWorker(n, w, workers, diagCells(lo, n))
	tiles := cutTiles(lo, n, workers, tpw, func(k int) int { return n - k })
	sp.SetInt("workers", int64(workers))
	sp.SetInt("tiles", int64(len(tiles)))
	obs.Log(ctx).Debug("stomp self-join", "op", "mp.selfjoin",
		"n", n, "w", w, "workers", workers, "tiles", len(tiles))

	wk := &selfJoinWalker{t: t, w: w, n: n, valid: valid, first: first, means: means, stds: stds}
	parts := runTiles(ctx, workers, tiles, n, sp, wk.walk)
	return finishTiles(ctx, parts, p, "mp.selfjoin")
}

// selfJoinWalker is the STOMP tile kernel of SelfJoinCtx: the series, its
// sliding statistics, and the seed dot products, shared read-only across
// workers.
type selfJoinWalker struct {
	t           []float64
	w, n        int
	valid       []bool
	first       []float64
	means, stds []float64
}

// walk drains one diagonal tile into pt with the O(1) rolling dot-product
// recurrence.  This is the innermost loop of the whole pipeline — it runs
// once per matrix cell — so it must not allocate.
//
//ips:hotpath
func (wk *selfJoinWalker) walk(pt *partial, tl tile) {
	t, w, n := wk.t, wk.w, wk.n
	for k := tl.lo; k < tl.hi; k++ {
		dot := wk.first[k]
		for i, j := 0, k; j < n; i, j = i+1, j+1 {
			if i > 0 {
				dot = rollDot(dot, t[i-1], t[j-1], t[i+w-1], t[j+w-1])
			}
			if wk.valid != nil && (!wk.valid[i] || !wk.valid[j]) {
				continue
			}
			d := ts.ZNormSqDistFromStats(dot, w, wk.means[i], wk.stds[i], wk.means[j], wk.stds[j])
			pt.update(i, d, j)
			pt.update(j, d, i)
		}
	}
}

// ABJoinOpts is ABJoinCtx without cancellation (a background context).
//
//ips:blocking
func ABJoinOpts(a, b []float64, w int, validA, validB []bool, opt Options) *Profile {
	p, err := ABJoinCtx(context.Background(), a, b, w, validA, validB, opt)
	if err != nil {
		// Unreachable: a background context never cancels and the kernel
		// has no other failure mode; keep the degenerate shape anyway.
		return &Profile{W: w}
	}
	return p
}

// ABJoinCtx computes, for every length-w subsequence of a, its
// nearest-neighbour z-normalised distance among the subsequences of b (the
// paper's P_AB), with the same diagonal-tiled kernel as SelfJoinCtx: the
// na×nb cross matrix is cut along its diagonals j−i = k ∈ (−na, nb), each
// walked with the rolling dot-product recurrence into per-worker partials.
// No exclusion zone applies because the two series are distinct.
// validA/validB optionally mask boundary-spanning subsequences.
// Cancellation behaves exactly as in SelfJoinCtx.
//
//ips:blocking
func ABJoinCtx(ctx context.Context, a, b []float64, w int, validA, validB []bool, opt Options) (*Profile, error) {
	na := len(a) - w + 1
	nb := len(b) - w + 1
	if na <= 0 || nb <= 0 || w <= 0 {
		return &Profile{W: w}, nil
	}
	sp := opt.Span.Child("mp.abjoin")
	defer sp.End()
	sp.SetInt("na", int64(na))
	sp.SetInt("nb", int64(nb))
	sp.SetInt("w", int64(w))

	meansA, stdsA := ts.MovingMeanStd(a, w)
	meansB, stdsB := ts.MovingMeanStd(b, w)
	ab := ts.SlidingDots(a[:w], b) // ab[k]  = dot(a[0:w], b[k:k+w]), diagonals k >= 0
	ba := ts.SlidingDots(b[:w], a) // ba[i0] = dot(a[i0:i0+w], b[0:w]), diagonals k < 0

	p := &Profile{P: make([]float64, na), I: make([]int, na), W: w}
	// Diagonal offsets k are shifted by (na−1) so the tile range is [0, nd).
	nd := na + nb - 1
	wk := &abJoinWalker{
		a: a, b: b, w: w, na: na, nb: nb,
		validA: validA, validB: validB, ab: ab, ba: ba,
		meansA: meansA, stdsA: stdsA, meansB: meansB, stdsB: stdsB,
	}
	workers := clampWorkers(opt.Workers, nd)
	// Every cross-matrix cell lies on exactly one diagonal: na·nb total.
	tpw := tuneTilesPerWorker(na+nb, w, workers, na*nb)
	tiles := cutTiles(0, nd, workers, tpw, wk.diagLen)
	sp.SetInt("workers", int64(workers))
	sp.SetInt("tiles", int64(len(tiles)))
	obs.Log(ctx).Debug("stomp ab-join", "op", "mp.abjoin",
		"na", na, "nb", nb, "w", w, "workers", workers, "tiles", len(tiles))

	parts := runTiles(ctx, workers, tiles, na, sp, wk.walk)
	return finishTiles(ctx, parts, p, "mp.abjoin")
}

// abJoinWalker is the STOMP tile kernel of ABJoinCtx: both series, their
// sliding statistics, and the seed dot products for positive (ab) and
// negative (ba) diagonals, shared read-only across workers.
type abJoinWalker struct {
	a, b           []float64
	w, na, nb      int
	validA, validB []bool
	ab, ba         []float64
	meansA, stdsA  []float64
	meansB, stdsB  []float64
}

// diagLen returns the number of cells on shifted diagonal s.
func (wk *abJoinWalker) diagLen(s int) int {
	k := s - (wk.na - 1)
	i0, j0 := 0, k
	if k < 0 {
		i0, j0 = -k, 0
	}
	la, lb := wk.na-i0, wk.nb-j0
	if la < lb {
		return la
	}
	return lb
}

// walk drains one diagonal tile of the cross matrix into pt.  Like the
// self-join kernel it runs once per cell and must not allocate.
//
//ips:hotpath
func (wk *abJoinWalker) walk(pt *partial, tl tile) {
	a, b, w := wk.a, wk.b, wk.w
	for s := tl.lo; s < tl.hi; s++ {
		k := s - (wk.na - 1)
		i0, j0 := 0, k
		dot := 0.0
		if k < 0 {
			i0, j0 = -k, 0
			dot = wk.ba[i0]
		} else {
			dot = wk.ab[j0]
		}
		count := wk.diagLen(s)
		for c := 0; c < count; c++ {
			i, j := i0+c, j0+c
			if c > 0 {
				dot = rollDot(dot, a[i-1], b[j-1], a[i+w-1], b[j+w-1])
			}
			if wk.validA != nil && !wk.validA[i] || wk.validB != nil && !wk.validB[j] {
				continue
			}
			d := ts.ZNormSqDistFromStats(dot, w, wk.meansA[i], wk.stdsA[i], wk.meansB[j], wk.stdsB[j])
			pt.update(i, d, j)
		}
	}
}
