package mp

import (
	"math"
	"sync"
)

// partial is one worker's private view of the profile while a tiled join is
// in flight: squared nearest-neighbour distances and neighbour indices,
// initialised to (+Inf, −1).  Partials come from a package-level arena so
// repeated joins — and concurrent joins from different goroutines — reuse
// buffers instead of re-allocating O(N) per worker per call.
type partial struct {
	p []float64
	i []int
}

// update offers (d, idx) as position pos's nearest neighbour.  The
// comparison is the kernel's deterministic total order: strictly smaller
// distance wins, and an exact tie goes to the lower neighbour index, so the
// result is independent of the order in which diagonals are walked.
func (pt *partial) update(pos int, d float64, idx int) {
	//lint:ignore ipslint/floateq cell distances are bitwise reproducible across workers, so an exact tie means the same value reached via two neighbours; the lower index wins by definition
	if d < pt.p[pos] || (d == pt.p[pos] && idx < pt.i[pos] && pt.i[pos] >= 0) {
		pt.p[pos] = d
		pt.i[pos] = idx
	}
}

// partialArena recycles partial buffers across joins.  sync.Pool is already
// safe for concurrent Get/Put; the race test in race_test.go exercises
// several simultaneous joins sharing this arena under -race.
var partialArena = sync.Pool{New: func() any { return new(partial) }}

// getPartial returns a length-n partial with every slot reset to (+Inf, −1).
func getPartial(n int) *partial {
	pt := partialArena.Get().(*partial)
	if cap(pt.p) < n {
		pt.p = make([]float64, n)
		pt.i = make([]int, n)
	} else {
		pt.p = pt.p[:n]
		pt.i = pt.i[:n]
	}
	inf := math.Inf(1)
	for x := range pt.p {
		pt.p[x] = inf
		pt.i[x] = -1
	}
	return pt
}

// putPartial returns a partial to the arena.  The buffer contents are left
// as-is; getPartial re-initialises on the way out.
func putPartial(pt *partial) { partialArena.Put(pt) }
