package mp

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

// naiveSelfJoin computes the self-join matrix profile directly from the
// definition, used as an oracle for the STOMP implementation.
func naiveSelfJoin(t []float64, w int, valid []bool) *Profile {
	n := len(t) - w + 1
	p := &Profile{P: make([]float64, n), I: make([]int, n), W: w}
	excl := w / 2
	if excl < 1 {
		excl = 1
	}
	ok := func(i int) bool { return valid == nil || valid[i] }
	for i := 0; i < n; i++ {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
		if !ok(i) {
			continue
		}
		zi := ts.ZNorm(t[i : i+w])
		for j := 0; j < n; j++ {
			if !ok(j) {
				continue
			}
			d := i - j
			if d < 0 {
				d = -d
			}
			if d <= excl {
				continue
			}
			zj := ts.ZNorm(t[j : j+w])
			dist := math.Sqrt(ts.SqDist(zi, zj))
			if dist < p.P[i] {
				p.P[i] = dist
				p.I[i] = j
			}
		}
	}
	return p
}

func naiveABJoin(a, b []float64, w int, validA, validB []bool) *Profile {
	na := len(a) - w + 1
	nb := len(b) - w + 1
	p := &Profile{P: make([]float64, na), I: make([]int, na), W: w}
	okA := func(i int) bool { return validA == nil || validA[i] }
	okB := func(i int) bool { return validB == nil || validB[i] }
	for i := 0; i < na; i++ {
		p.P[i] = math.Inf(1)
		p.I[i] = -1
		if !okA(i) {
			continue
		}
		zi := ts.ZNorm(a[i : i+w])
		for j := 0; j < nb; j++ {
			if !okB(j) {
				continue
			}
			zj := ts.ZNorm(b[j : j+w])
			dist := math.Sqrt(ts.SqDist(zi, zj))
			if dist < p.P[i] {
				p.P[i] = dist
				p.I[i] = j
			}
		}
	}
	return p
}

func randomSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	v := 0.0
	for i := range out {
		v += rng.NormFloat64()
		out[i] = v
	}
	return out
}

func profilesClose(t *testing.T, got, want *Profile, tol float64) {
	t.Helper()
	if len(got.P) != len(want.P) {
		t.Fatalf("profile length %d, want %d", len(got.P), len(want.P))
	}
	for i := range got.P {
		gi, wi := got.P[i], want.P[i]
		if math.IsInf(gi, 1) != math.IsInf(wi, 1) {
			t.Fatalf("P[%d]: got %v want %v", i, gi, wi)
		}
		if math.IsInf(gi, 1) {
			continue
		}
		if !ts.ApproxEqual(gi, wi, tol) {
			t.Fatalf("P[%d]: got %v want %v", i, gi, wi)
		}
	}
}

func TestSelfJoinMatchesNaive(t *testing.T) {
	for _, n := range []int{30, 64, 127} {
		for _, w := range []int{4, 8, 16} {
			series := randomSeries(n, int64(n*w))
			got := SelfJoin(series, w, nil)
			want := naiveSelfJoin(series, w, nil)
			profilesClose(t, got, want, 1e-6)
		}
	}
}

func TestSelfJoinMasked(t *testing.T) {
	series := randomSeries(80, 5)
	w := 8
	valid := make([]bool, len(series)-w+1)
	for i := range valid {
		valid[i] = i%3 != 0 // arbitrary mask
	}
	got := SelfJoin(series, w, valid)
	want := naiveSelfJoin(series, w, valid)
	profilesClose(t, got, want, 1e-6)
	for i := range valid {
		if !valid[i] && !math.IsInf(got.P[i], 1) {
			t.Fatalf("masked position %d got finite value %v", i, got.P[i])
		}
	}
}

func TestSelfJoinFindsPlantedMotif(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	series := make([]float64, 300)
	for i := range series {
		series[i] = rng.NormFloat64() * 0.2
	}
	// Plant the same distinctive pattern at two distant locations.
	pattern := []float64{0, 2, 4, 2, 0, -2, -4, -2, 0, 2, 4, 2, 0, -2, -4, -2}
	copy(series[40:], pattern)
	copy(series[200:], pattern)
	p := SelfJoin(series, len(pattern), nil)
	idx, v := p.MinIndex()
	if v > 0.2 {
		t.Fatalf("motif distance too large: %v", v)
	}
	if !(near(idx, 40, 2) || near(idx, 200, 2)) {
		t.Fatalf("motif found at %d, want near 40 or 200", idx)
	}
	if !(near(p.I[idx], 40, 2) || near(p.I[idx], 200, 2)) || near(p.I[idx], idx, 2) {
		t.Fatalf("motif neighbour at %d (motif at %d)", p.I[idx], idx)
	}
}

func near(x, target, tol int) bool {
	d := x - target
	if d < 0 {
		d = -d
	}
	return d <= tol
}

func TestSelfJoinDegenerate(t *testing.T) {
	p := SelfJoin([]float64{1, 2}, 5, nil)
	if p.Len() != 0 {
		t.Fatalf("window > series should yield empty profile, got %d", p.Len())
	}
	idx, v := p.MinIndex()
	if idx != -1 || !math.IsInf(v, 1) {
		t.Fatalf("MinIndex on empty profile = %d,%v", idx, v)
	}
	idx, v = p.MaxIndex()
	if idx != -1 || !math.IsInf(v, -1) {
		t.Fatalf("MaxIndex on empty profile = %d,%v", idx, v)
	}
}

func TestABJoinMatchesNaive(t *testing.T) {
	a := randomSeries(70, 1)
	b := randomSeries(90, 2)
	for _, w := range []int{5, 12} {
		got := ABJoin(a, b, w, nil, nil)
		want := naiveABJoin(a, b, w, nil, nil)
		profilesClose(t, got, want, 1e-6)
	}
}

func TestABJoinMasked(t *testing.T) {
	a := randomSeries(60, 3)
	b := randomSeries(60, 4)
	w := 6
	va := make([]bool, len(a)-w+1)
	vb := make([]bool, len(b)-w+1)
	for i := range va {
		va[i] = i%2 == 0
	}
	for i := range vb {
		vb[i] = i%4 != 1
	}
	got := ABJoin(a, b, w, va, vb)
	want := naiveABJoin(a, b, w, va, vb)
	profilesClose(t, got, want, 1e-6)
}

func TestABJoinSharedPatternHasZeroDistance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]float64, 150)
	b := make([]float64, 150)
	for i := range a {
		a[i] = rng.NormFloat64()
		b[i] = rng.NormFloat64()
	}
	pattern := []float64{1, 5, 9, 5, 1, -3, -7, -3}
	copy(a[30:], pattern)
	copy(b[100:], pattern)
	p := ABJoin(a, b, len(pattern), nil, nil)
	if p.P[30] > 1e-6 {
		t.Fatalf("shared pattern distance = %v, want ~0", p.P[30])
	}
	if p.I[30] != 100 {
		t.Fatalf("neighbour index = %d, want 100", p.I[30])
	}
}

func TestDiff(t *testing.T) {
	a := &Profile{P: []float64{1, 5, math.Inf(1)}}
	b := &Profile{P: []float64{4, 2}}
	d := Diff(a, b)
	if len(d) != 2 {
		t.Fatalf("diff len = %d", len(d))
	}
	if d[0] != 3 || d[1] != 3 {
		t.Fatalf("diff = %v", d)
	}
	// Infinite entries map to -Inf.
	d = Diff(a, &Profile{P: []float64{0, 0, 0}})
	if !math.IsInf(d[2], -1) {
		t.Fatalf("inf diff = %v", d[2])
	}
}

func TestTopKExclusion(t *testing.T) {
	p := &Profile{P: []float64{9, 1, 1.1, 8, 0.5, 7, 0.6}, W: 4}
	top := p.TopK(3, false, 1)
	if len(top) != 3 {
		t.Fatalf("topk len = %d (%v)", len(top), top)
	}
	// 4 (0.5) is smallest; 6 (0.6) is within excl=1? |6-4|=2 > 1, so allowed;
	// then 1 (1.0).
	if top[0] != 4 || top[1] != 6 || top[2] != 1 {
		t.Fatalf("topk = %v, want [4 6 1]", top)
	}
	// Largest mode.
	top = p.TopK(2, true, 1)
	if top[0] != 0 || top[1] != 3 {
		t.Fatalf("topk largest = %v, want [0 3]", top)
	}
	// Exhaustion: huge exclusion zone limits the count.
	top = p.TopK(5, false, 100)
	if len(top) != 1 {
		t.Fatalf("exhausted topk = %v", top)
	}
}

// BenchmarkSelfJoin measures the diagonal-tiled STOMP kernel across series
// lengths, windows, and worker counts.  Speedups over workers=1 require as
// many CPUs as workers (compare with runtime.GOMAXPROCS); determinism does
// not — every cell is byte-identical regardless (TestSelfJoinPropertyWorkers).
func BenchmarkSelfJoin(b *testing.B) {
	for _, size := range [][2]int{{1000, 50}, {4096, 128}, {16384, 64}} {
		n, w := size[0], size[1]
		series := randomSeries(n, 1)
		for _, workers := range []int{1, 2, 4, 8} {
			name := fmt.Sprintf("N=%dxw=%d/workers=%d", n, w, workers)
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					SelfJoinOpts(series, w, nil, Options{Workers: workers})
				}
			})
		}
	}
}
