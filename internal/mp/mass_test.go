package mp

import (
	"math"
	"math/rand"
	"testing"

	"ips/internal/ts"
)

// naiveZNormProfile is the O(N·L) oracle for MASS.
func naiveZNormProfile(q, t []float64) []float64 {
	m := len(q)
	n := len(t) - m + 1
	if n <= 0 {
		return nil
	}
	zq := ts.ZNorm(q)
	out := make([]float64, n)
	for i := 0; i < n; i++ {
		zw := ts.ZNorm(t[i : i+m])
		out[i] = math.Sqrt(ts.SqDist(zq, zw))
	}
	return out
}

func TestMASSMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ m, n int }{{8, 50}, {16, 300}, {32, 33}} {
		q := make([]float64, tc.m)
		series := make([]float64, tc.n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		v := 0.0
		for i := range series {
			v += rng.NormFloat64()
			series[i] = v
		}
		got := MASS(q, series)
		want := naiveZNormProfile(q, series)
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range want {
			if !ts.ApproxEqual(got[i], want[i], 1e-6) {
				t.Fatalf("m=%d profile[%d]: %v vs %v", tc.m, i, got[i], want[i])
			}
		}
	}
}

func TestMASSDegenerate(t *testing.T) {
	if MASS([]float64{1, 2, 3}, []float64{1}) != nil {
		t.Fatal("query longer than series should give nil")
	}
	if MASS(nil, []float64{1, 2}) != nil {
		t.Fatal("empty query should give nil")
	}
}

func TestBestMatchFindsPlantedQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	series := make([]float64, 400)
	for i := range series {
		series[i] = rng.NormFloat64() * 0.3
	}
	q := []float64{0, 2, 4, 6, 4, 2, 0, -2, -4, -2}
	copy(series[123:], q)
	at, dist := BestMatch(q, series)
	if at != 123 {
		t.Fatalf("best match at %d, want 123", at)
	}
	if dist > 1e-6 {
		t.Fatalf("planted match distance = %v", dist)
	}
	at, dist = BestMatch(q, []float64{1})
	if at != -1 || !math.IsInf(dist, 1) {
		t.Fatalf("degenerate BestMatch = %d,%v", at, dist)
	}
}

func TestTopMotifsAndDiscords(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Near-periodic background: every window has a close neighbour one
	// period away, so nearest-neighbour distances are small by default.
	series := make([]float64, 300)
	for i := range series {
		series[i] = math.Sin(float64(i)/5) + 0.05*rng.NormFloat64()
	}
	motif := []float64{0, 3, 6, 3, 0, -3, -6, -3}
	copy(series[50:], motif)
	copy(series[200:], motif)
	// A one-off irregular segment is the discord: its shape (not its
	// amplitude — z-normalisation removes that) occurs nowhere else.
	discordShape := []float64{0, 4, -3, 5, -4, 2, -5, 3}
	copy(series[120:], discordShape)
	p := SelfJoin(series, len(motif), nil)
	motifs := p.TopMotifs(1)
	if len(motifs) != 1 {
		t.Fatalf("motifs = %v", motifs)
	}
	a, b := motifs[0][0], motifs[0][1]
	if !(near(a, 50, 2) || near(a, 200, 2)) || !(near(b, 50, 2) || near(b, 200, 2)) {
		t.Fatalf("motif pair = (%d,%d), want near 50/200", a, b)
	}
	discords := p.TopDiscords(1)
	if len(discords) != 1 || !near(discords[0], 120, 10) {
		t.Fatalf("discords = %v, want near 120", discords)
	}
}

func BenchmarkMASS(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	q := make([]float64, 100)
	series := make([]float64, 10000)
	for i := range q {
		q[i] = rng.NormFloat64()
	}
	for i := range series {
		series[i] = rng.NormFloat64()
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MASS(q, series)
	}
}
