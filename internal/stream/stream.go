// Package stream maintains online per-series state for streaming
// classification: an incremental matrix profile (STOMPI, byte-identical to
// a batch SelfJoin at every step), a shapelet-transform feature vector kept
// current by delta-evaluation (only windows touching newly appended points
// are re-scored), and drift detection over the profile's nearest-neighbour
// distances.
//
// The delta transform is exact, not approximate: the Def. 4 distance of a
// shapelet to a series is the minimum over alignment windows of a value
// that depends only on the window's contents, so the minimum decomposes
// over any window cover — evaluating just the suffix of the series that
// contains every new window and min-folding the result into the running
// feature vector is bitwise identical to re-evaluating the whole series.
// The equivalence suite pins stream output byte-identical to the batch
// classify.TransformCtx on the accumulated series.
//
// A Stream is not safe for concurrent use; callers (e.g. the serving
// layer's session table) serialise Appends.
package stream

import (
	"context"
	"math"

	"ips/internal/classify"
	"ips/internal/dist"
	"ips/internal/errs"
	"ips/internal/mp"
)

// DriftConfig tunes the drift detector: the stream tracks the running mean
// and standard deviation (Welford) of each new window's nearest-neighbour
// distance at arrival, and flags an append whose distance exceeds
// mean + Factor·std once MinSamples windows have been observed.  A flagged
// window is a discord relative to the series' own history — the signal that
// the generating process has shifted and the model should be re-fit.
type DriftConfig struct {
	// Factor is the flag threshold in standard deviations (default 3).
	Factor float64
	// MinSamples is the number of windows observed before flagging starts
	// (default 30): early profile entries are poor neighbours by
	// construction and would otherwise flag spuriously.
	MinSamples int
}

// Config configures a Stream.
type Config struct {
	// Window is the matrix-profile window length (required, >= 1).
	Window int
	// Shapelets is the model's shapelet set; the feature vector has one
	// entry per shapelet.  May be empty for profile-only streaming.
	Shapelets []classify.Shapelet
	// Scaler and SVM complete the classification head; when either is nil
	// the stream still maintains features but returns no predictions.
	Scaler *classify.Scaler
	SVM    *classify.SVM
	// Kernel forces the distance kernel (KernelAuto selects per length).
	// The streaming path always evaluates in float64: delta-evaluation's
	// exactness needs per-window values that are pure functions of window
	// contents, which the float32 variant's rolling accumulation does not
	// guarantee across different evaluation extents.
	Kernel dist.Kernel
	// MaxPoints caps the total ingested points (0 = unbounded).  An append
	// that would exceed it is refused whole as typed errs.ErrOverload
	// before any state changes.
	MaxPoints int
	// Drift tunes re-fit flagging; the zero value gets defaults.
	Drift DriftConfig
}

// Update is the result of one Append: the state of the stream after the
// new points were ingested.
type Update struct {
	// N is the total points ingested so far; Windows the number of
	// matrix-profile positions (N − Window + 1, floored at 0).
	N, Windows int
	// Pred is the predicted class for the accumulated series, valid when
	// HasPred is true (the stream has points, shapelets, and a head).
	Pred    int
	HasPred bool
	// Drift reports whether any window ingested by this append exceeded
	// the drift threshold; DriftScore is the largest z-score observed this
	// append (0 when no window was scored).
	Drift      bool
	DriftScore float64
	// Motif/Discord are the window indices of the smallest and largest
	// finite profile distances (−1 while the profile has no neighbours),
	// with their distances.
	Motif, Discord         int
	MotifDist, DiscordDist float64
}

// Stream is the online state for one series.
type Stream struct {
	cfg    Config
	inc    *mp.Incremental
	batch  *dist.Batch
	maxLen int // longest shapelet (>= 1 when shapelets exist)

	feat    []float64 // min distance per shapelet over the first featLen points
	featLen int       // series length feat reflects (delta-eval resume point)
	row     []float64 // suffix-evaluation output row
	scaled  []float64
	dec     []float64
	scratch dist.Scratch
	counts  dist.Counts

	// Welford state over new-window nearest-neighbour distances.
	windowsSeen int // finite-distance windows observed, including skipped warmup
	driftN      int
	driftMean   float64
	driftM2     float64
}

// New builds a Stream.  The configuration is validated up front as typed
// errs.ErrBadInput, so every later Append failure is about the appended
// data, not the setup.
func New(cfg Config) (*Stream, error) {
	if cfg.Window < 1 {
		return nil, errs.BadInput(errs.StageStream, "stream.new", "", "window must be >= 1 (got %d)", cfg.Window)
	}
	if cfg.SVM != nil && cfg.Scaler != nil && len(cfg.Scaler.Mean) != len(cfg.Shapelets) {
		return nil, errs.BadInput(errs.StageStream, "stream.new", "", "scaler width %d != %d shapelets", len(cfg.Scaler.Mean), len(cfg.Shapelets))
	}
	if cfg.Drift.Factor <= 0 {
		cfg.Drift.Factor = 3
	}
	if cfg.Drift.MinSamples <= 0 {
		cfg.Drift.MinSamples = 30
	}
	inc, err := mp.NewIncremental(nil, cfg.Window)
	if err != nil {
		return nil, err
	}
	s := &Stream{cfg: cfg, inc: inc}
	if n := len(cfg.Shapelets); n > 0 {
		queries := make([][]float64, n)
		s.maxLen = 1
		for i, sh := range cfg.Shapelets {
			queries[i] = sh.Values
			if len(sh.Values) > s.maxLen {
				s.maxLen = len(sh.Values)
			}
		}
		s.batch = dist.NewBatch(queries)
		s.batch.SetKernel(cfg.Kernel)
		s.feat = make([]float64, n)
		s.row = make([]float64, n)
		s.scaled = make([]float64, n)
	}
	if cfg.SVM != nil {
		s.dec = make([]float64, len(cfg.SVM.Classes))
	}
	return s, nil
}

// Reserve grows the internal buffers for a series of total points, making
// subsequent Appends of bounded batch size allocation-free.
func (s *Stream) Reserve(total int) { s.inc.Reserve(total) }

// N returns the total points ingested.
func (s *Stream) N() int { return s.inc.Len() }

// Windows returns the number of matrix-profile positions.
func (s *Stream) Windows() int { return s.inc.Windows() }

// Profile returns a copy of the current matrix profile.
func (s *Stream) Profile() *mp.Profile { return s.inc.Profile() }

// Features returns the current shapelet-transform feature vector (one
// entry per shapelet, valid once at least one point was ingested).  The
// slice is the live internal buffer; callers must not mutate or retain it
// across Appends.
func (s *Stream) Features() []float64 { return s.feat[:len(s.feat):len(s.feat)] }

// Append ingests pts and brings the profile, features, prediction, and
// drift state current.  Non-finite points are rejected whole — before any
// state changes — as typed errs.ErrBadInput; an append that would exceed
// MaxPoints is refused the same way as errs.ErrOverload.  A cancelled ctx
// aborts the (suffix) feature evaluation with errs.ErrCanceled, leaving
// the stream consistent: the profile includes the new points, the feature
// vector still reflects its last fully evaluated prefix, and the next
// Append resumes the delta evaluation from that prefix.
//
//ips:blocking
func (s *Stream) Append(ctx context.Context, pts []float64) (Update, error) {
	if err := errs.Ctx(ctx, errs.StageStream, "stream.append"); err != nil {
		return Update{}, err
	}
	for k, v := range pts {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Update{}, errs.BadInput(errs.StageStream, "stream.append", "", "non-finite value %v at offset %d", v, k)
		}
	}
	if s.cfg.MaxPoints > 0 && s.inc.Len()+len(pts) > s.cfg.MaxPoints {
		return Update{}, errs.Overload(errs.StageStream, "stream.append", "",
			"stream at %d points, appending %d exceeds cap %d", s.inc.Len(), len(pts), s.cfg.MaxPoints)
	}

	up := Update{}
	for _, v := range pts {
		before := s.inc.Windows()
		if err := s.inc.Append(v); err != nil {
			return Update{}, err // unreachable: pts pre-validated
		}
		if s.inc.Windows() > before {
			s.observeWindow(s.inc.DistAt(before), &up)
		}
	}

	if s.batch != nil && s.inc.Len() > s.featLen {
		if err := s.deltaEval(ctx); err != nil {
			return Update{}, err
		}
	}
	// Deliberately no per-append logging here: this is the steady-state
	// serving path and even a discarded slog call boxes its arguments.
	// The serving layer logs at session granularity instead.
	s.fillUpdate(&up)
	return up, nil
}

// deltaEval brings feat current with the series: it evaluates the suffix
// containing every window not yet folded into feat and min-folds (or, while
// the series is shorter than the longest shapelet, replaces — the short-
// series fallback distance is not a window minimum and does not decompose).
func (s *Stream) deltaEval(ctx context.Context) error {
	series := s.inc.Series()
	suffixStart := s.featLen - s.maxLen + 1
	if suffixStart < 0 {
		suffixStart = 0
	}
	p := s.scratch.Prepare(series[suffixStart:])
	if err := s.batch.EvalScratchCtx(ctx, p, s.row, &s.counts, &s.scratch); err != nil {
		return err
	}
	if suffixStart == 0 {
		copy(s.feat, s.row)
	} else {
		for i, v := range s.row {
			if v < s.feat[i] {
				s.feat[i] = v
			}
		}
	}
	s.featLen = len(series)
	return nil
}

// observeWindow runs the drift detector on one new window's
// nearest-neighbour distance at arrival.  The threshold check uses the
// statistics from *before* this distance is folded in, so a sustained
// burst of discords keeps flagging instead of absorbing itself into the
// baseline.  +Inf distances (windows with no neighbour yet) are skipped,
// and so are the first MinSamples finite windows entirely: the earliest
// windows have only a handful of candidate neighbours, so their distances
// are structurally inflated and would poison the baseline's variance for
// the life of the stream.
func (s *Stream) observeWindow(d float64, up *Update) {
	if math.IsInf(d, 1) {
		return
	}
	s.windowsSeen++
	if s.windowsSeen <= s.cfg.Drift.MinSamples {
		return
	}
	if s.driftN >= s.cfg.Drift.MinSamples {
		std := math.Sqrt(s.driftM2 / float64(s.driftN))
		if std > 0 {
			z := (d - s.driftMean) / std
			if z > up.DriftScore {
				up.DriftScore = z
			}
			if z > s.cfg.Drift.Factor {
				up.Drift = true
			}
		}
	}
	s.driftN++
	delta := d - s.driftMean
	s.driftMean += delta / float64(s.driftN)
	s.driftM2 += delta * (d - s.driftMean)
}

// fillUpdate completes up with the post-append state: counts, prediction,
// and motif/discord locations.
func (s *Stream) fillUpdate(up *Update) {
	up.N = s.inc.Len()
	up.Windows = s.inc.Windows()
	if s.batch != nil && s.featLen > 0 && s.cfg.Scaler != nil && s.cfg.SVM != nil {
		s.cfg.Scaler.ApplyRowInto(s.scaled, s.feat)
		up.Pred = s.cfg.SVM.PredictRow(s.scaled, s.dec)
		up.HasPred = true
	}
	up.Motif = s.inc.MinIndex()
	up.Discord = s.inc.MaxIndex()
	if up.Motif >= 0 {
		up.MotifDist = s.inc.DistAt(up.Motif)
	}
	if up.Discord >= 0 {
		up.DiscordDist = s.inc.DistAt(up.Discord)
	}
}
