package stream

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"ips/internal/classify"
	"ips/internal/errs"
	"ips/internal/faulty"
	"ips/internal/mp"
	"ips/internal/ts"
)

// testShapelets builds a deterministic mixed-length shapelet set.
func testShapelets(seed int64) []classify.Shapelet {
	rng := rand.New(rand.NewSource(seed))
	lengths := []int{5, 9, 17}
	out := make([]classify.Shapelet, 0, 2*len(lengths))
	for _, m := range lengths {
		for c := 0; c < 2; c++ {
			vals := make(ts.Series, m)
			for i := range vals {
				vals[i] = rng.NormFloat64()
			}
			out = append(out, classify.Shapelet{Class: c, Values: vals, Score: 1})
		}
	}
	return out
}

func randSeries(n int, seed int64) []float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]float64, n)
	for i := range out {
		out[i] = math.Sin(float64(i)/7) + 0.3*rng.NormFloat64()
	}
	return out
}

// batchFeatures computes the reference feature row: classify.TransformCtx
// over the series as a one-instance dataset.
func batchFeatures(t *testing.T, series []float64, shapelets []classify.Shapelet, workers int) []float64 {
	t.Helper()
	d := &ts.Dataset{Name: "stream-test", Instances: []ts.Instance{{Values: series, Label: 0}}}
	X, err := classify.TransformCtx(context.Background(), d, shapelets, workers, nil, nil)
	if err != nil {
		t.Fatalf("TransformCtx: %v", err)
	}
	return X[0]
}

// TestStreamFeatureEquivalence is the tentpole contract: after every
// append, the delta-evaluated feature vector is byte-identical to the
// batch classify.TransformCtx on the full accumulated series, for every
// worker count, and the maintained profile is byte-identical to SelfJoin.
func TestStreamFeatureEquivalence(t *testing.T) {
	lc := faulty.NewLeakCheck()
	shapelets := testShapelets(1)
	series := randSeries(140, 2)
	s, err := New(Config{Window: 8, Shapelets: shapelets})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(3))
	for pos := 0; pos < len(series); {
		chunk := 1 + rng.Intn(7)
		if pos+chunk > len(series) {
			chunk = len(series) - pos
		}
		if _, err := s.Append(ctx, series[pos:pos+chunk]); err != nil {
			t.Fatalf("Append at %d: %v", pos, err)
		}
		pos += chunk
		prefix := series[:pos]
		got := s.Features()
		for _, workers := range []int{1, 2, 8} {
			want := batchFeatures(t, prefix, shapelets, workers)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("n=%d workers=%d: feature[%d] = %v (%#x) != %v (%#x)",
						pos, workers, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
				}
			}
		}
		gotP := s.Profile()
		wantP := mp.SelfJoin(prefix, 8, nil)
		for j := range wantP.P {
			if math.Float64bits(gotP.P[j]) != math.Float64bits(wantP.P[j]) || gotP.I[j] != wantP.I[j] {
				t.Fatalf("n=%d: profile[%d] = (%v,%d) != (%v,%d)",
					pos, j, gotP.P[j], gotP.I[j], wantP.P[j], wantP.I[j])
			}
		}
	}
	if msg := lc.Done(2 * time.Second); msg != "" {
		t.Fatal(msg)
	}
}

// TestStreamPredictionMatchesBatch pins the full head: stream predictions
// equal scaling + SVM over the batch transform of the same series.
func TestStreamPredictionMatchesBatch(t *testing.T) {
	shapelets := testShapelets(4)
	series := randSeries(90, 5)
	nf := len(shapelets)
	scaler := &classify.Scaler{Mean: make([]float64, nf), Std: make([]float64, nf)}
	rng := rand.New(rand.NewSource(6))
	for i := range scaler.Mean {
		scaler.Mean[i] = rng.NormFloat64()
		scaler.Std[i] = 0.5 + rng.Float64()
	}
	svm := &classify.SVM{Classes: []int{0, 1}, W: [][]float64{make([]float64, nf), make([]float64, nf)}, B: []float64{0.1, -0.1}}
	for i := 0; i < nf; i++ {
		svm.W[0][i] = rng.NormFloat64()
		svm.W[1][i] = rng.NormFloat64()
	}
	s, err := New(Config{Window: 6, Shapelets: shapelets, Scaler: scaler, SVM: svm})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	for pos := 0; pos < len(series); pos += 5 {
		end := pos + 5
		if end > len(series) {
			end = len(series)
		}
		up, err := s.Append(ctx, series[pos:end])
		if err != nil {
			t.Fatal(err)
		}
		if !up.HasPred {
			t.Fatalf("no prediction at n=%d", end)
		}
		row := batchFeatures(t, series[:end], shapelets, 1)
		scaled := make([]float64, nf)
		scaler.ApplyRowInto(scaled, row)
		if want := svm.Predict(scaled); up.Pred != want {
			t.Fatalf("n=%d: pred %d != batch %d", end, up.Pred, want)
		}
	}
}

// countdownCtx cancels itself after its Err method has been consulted n
// times, landing the cancellation at an arbitrary internal checkpoint of
// Append — ingest boundaries, batch-evaluation group boundaries — without
// depending on timing.
type countdownCtx struct {
	context.Context
	left *int
}

func (c countdownCtx) Err() error {
	if *c.left <= 0 {
		return context.Canceled
	}
	*c.left--
	return nil
}

// TestStreamCancellationResume drives appends under every cancellation
// point the countdown context can reach and asserts the resume contract:
// a cancelled append is typed ErrCanceled, and the next good append brings
// the features back byte-identical to the batch transform of everything
// ingested so far.
func TestStreamCancellationResume(t *testing.T) {
	shapelets := testShapelets(7)
	series := randSeries(120, 8)
	for budget := 0; budget < 12; budget++ {
		s, err := New(Config{Window: 5, Shapelets: shapelets})
		if err != nil {
			t.Fatal(err)
		}
		pos := 0
		// First a clean prefix, then one append under a counting context.
		if _, err := s.Append(context.Background(), series[:40]); err != nil {
			t.Fatal(err)
		}
		pos = 40
		left := budget
		_, err = s.Append(countdownCtx{context.Background(), &left}, series[pos:pos+30])
		if err != nil && !errors.Is(err, errs.ErrCanceled) {
			t.Fatalf("budget %d: err = %v, want ErrCanceled", budget, err)
		}
		if err == nil {
			pos += 30
		} else {
			// The profile may be ahead of the features (ingest succeeded,
			// evaluation cancelled); all points up to pos+30 may or may not
			// be ingested depending on where the budget ran out.
			pos = s.N()
		}
		// A good append must land byte-identical to batch on the full series.
		if _, err := s.Append(context.Background(), series[pos:]); err != nil {
			t.Fatalf("budget %d: resume append: %v", budget, err)
		}
		got := s.Features()
		want := batchFeatures(t, series, shapelets, 1)
		for i := range want {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("budget %d: feature[%d] = %v != %v after resume", budget, i, got[i], want[i])
			}
		}
	}
}

// TestStreamBadInput pins the typed-rejection contract at the stream layer.
func TestStreamBadInput(t *testing.T) {
	if _, err := New(Config{Window: 0}); !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("window 0: err = %v, want ErrBadInput", err)
	}
	s, err := New(Config{Window: 4, Shapelets: testShapelets(9)})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Append(ctx, []float64{1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if _, err := s.Append(ctx, []float64{1, bad}); !errors.Is(err, errs.ErrBadInput) {
			t.Fatalf("append %v: err = %v, want ErrBadInput", bad, err)
		}
	}
	if s.N() != 5 {
		t.Fatalf("rejected appends mutated state: n = %d", s.N())
	}
}

// TestStreamMaxPoints pins the per-stream admission cap: an append that
// would exceed MaxPoints is refused whole as typed ErrOverload.
func TestStreamMaxPoints(t *testing.T) {
	s, err := New(Config{Window: 3, MaxPoints: 10})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	if _, err := s.Append(ctx, make([]float64, 8)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Append(ctx, make([]float64, 3)); !errors.Is(err, errs.ErrOverload) {
		t.Fatalf("over-cap append: err = %v, want ErrOverload", err)
	}
	if s.N() != 8 {
		t.Fatalf("refused append mutated state: n = %d", s.N())
	}
	if _, err := s.Append(ctx, make([]float64, 2)); err != nil {
		t.Fatalf("append to exactly the cap should succeed: %v", err)
	}
}

// TestStreamAppendNoAllocs pins the serving-path contract: once the stream
// is reserved and warm, a bounded append allocates nothing end to end —
// ingest, suffix evaluation, scaling, and prediction included.
func TestStreamAppendNoAllocs(t *testing.T) {
	shapelets := testShapelets(10)
	nf := len(shapelets)
	scaler := &classify.Scaler{Mean: make([]float64, nf), Std: make([]float64, nf)}
	for i := range scaler.Std {
		scaler.Std[i] = 1
	}
	svm := &classify.SVM{Classes: []int{0, 1}, W: [][]float64{make([]float64, nf), make([]float64, nf)}, B: []float64{0, 0}}
	s, err := New(Config{Window: 8, Shapelets: shapelets, Scaler: scaler, SVM: svm})
	if err != nil {
		t.Fatal(err)
	}
	warm := randSeries(256, 11)
	extra := randSeries(400, 12)
	s.Reserve(len(warm) + len(extra))
	ctx := context.Background()
	if _, err := s.Append(ctx, warm); err != nil {
		t.Fatal(err)
	}
	k := 0
	avg := testing.AllocsPerRun(len(extra)-1, func() {
		if _, err := s.Append(ctx, extra[k:k+1]); err != nil {
			t.Fatal(err)
		}
		k++
	})
	if avg != 0 {
		t.Fatalf("Append allocates %.1f times per call steady-state, want 0", avg)
	}
}

// TestStreamDrift feeds a stable periodic signal, then an anomalous burst,
// and asserts the detector flags during the burst and not during the
// stable phase.
func TestStreamDrift(t *testing.T) {
	s, err := New(Config{Window: 16, Drift: DriftConfig{Factor: 4, MinSamples: 20}})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rng := rand.New(rand.NewSource(13))
	stable := make([]float64, 400)
	for i := range stable {
		stable[i] = math.Sin(float64(i)/3) + 0.02*rng.NormFloat64()
	}
	for pos := 0; pos < len(stable); pos += 20 {
		up, err := s.Append(ctx, stable[pos:pos+20])
		if err != nil {
			t.Fatal(err)
		}
		if up.Drift && pos > 100 {
			t.Fatalf("spurious drift flag at n=%d (score %.2f)", up.N, up.DriftScore)
		}
	}
	burst := make([]float64, 40)
	for i := range burst {
		burst[i] = 25 * rng.NormFloat64() // regime change: amplitude explosion
	}
	flagged := false
	for pos := 0; pos < len(burst); pos += 10 {
		up, err := s.Append(ctx, burst[pos:pos+10])
		if err != nil {
			t.Fatal(err)
		}
		if up.Drift {
			flagged = true
		}
	}
	if !flagged {
		t.Fatal("anomalous burst never flagged drift")
	}
	// Motif/discord surface through the update.
	up, err := s.Append(ctx, stable[:10])
	if err != nil {
		t.Fatal(err)
	}
	if up.Motif < 0 || up.Discord < 0 {
		t.Fatalf("motif/discord not populated: %d/%d", up.Motif, up.Discord)
	}
	if up.DiscordDist <= up.MotifDist {
		t.Fatalf("discord %.3f should exceed motif %.3f", up.DiscordDist, up.MotifDist)
	}
}
