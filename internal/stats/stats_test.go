package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ips/internal/ts"
)

func approx(a, b, tol float64) bool { return ts.ApproxEqual(a, b, tol) }

func TestRegularizedGammaP(t *testing.T) {
	// P(1, x) = 1 − e^{−x}
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		want := 1 - math.Exp(-x)
		if got := RegularizedGammaP(1, x); !approx(got, want, 1e-10) {
			t.Fatalf("P(1,%v) = %v, want %v", x, got, want)
		}
	}
	// P(a, 0) = 0; monotone in x.
	if RegularizedGammaP(3, 0) != 0 {
		t.Fatal("P(a,0) != 0")
	}
	prev := 0.0
	for x := 0.5; x < 20; x += 0.5 {
		v := RegularizedGammaP(3, x)
		if v < prev-1e-12 {
			t.Fatalf("P(3,x) not monotone at %v", x)
		}
		prev = v
	}
	if !approx(prev, 1, 1e-6) {
		t.Fatalf("P(3,20) = %v, want ~1", prev)
	}
	if !math.IsNaN(RegularizedGammaP(-1, 1)) || !math.IsNaN(RegularizedGammaP(1, -1)) {
		t.Fatal("invalid domain should return NaN")
	}
}

func TestChiSquareCDF(t *testing.T) {
	// Known value: chi-square with 2 df is Exp(1/2): CDF(x) = 1 − e^{−x/2}.
	for _, x := range []float64{0.5, 1, 3, 6} {
		want := 1 - math.Exp(-x/2)
		if got := ChiSquareCDF(x, 2); !approx(got, want, 1e-9) {
			t.Fatalf("chi2(%v,2) = %v, want %v", x, got, want)
		}
	}
	// Median of chi-square with 1 df is ~0.4549.
	if got := ChiSquareCDF(0.4549, 1); !approx(got, 0.5, 1e-3) {
		t.Fatalf("chi2 median check = %v", got)
	}
	if ChiSquareCDF(-1, 3) != 0 {
		t.Fatal("negative x should give 0")
	}
}

func TestNormalCDF(t *testing.T) {
	if !approx(NormalCDF(0), 0.5, 1e-12) {
		t.Fatal("Φ(0) != 0.5")
	}
	if !approx(NormalCDF(1.959964), 0.975, 1e-5) {
		t.Fatalf("Φ(1.96) = %v", NormalCDF(1.959964))
	}
	if !approx(NormalCDF(-1.959964), 0.025, 1e-5) {
		t.Fatalf("Φ(-1.96) = %v", NormalCDF(-1.959964))
	}
}

func TestChebyshevBound(t *testing.T) {
	if !approx(ChebyshevBound(3), 1-1.0/9, 1e-12) {
		t.Fatalf("3σ bound = %v", ChebyshevBound(3))
	}
	if ChebyshevBound(0) != 0 || ChebyshevBound(-1) != 0 {
		t.Fatal("non-positive z should give 0")
	}
}

func TestHistogram(t *testing.T) {
	h, err := NewHistogram([]float64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range h.Counts {
		if c != 2 {
			t.Fatalf("counts = %v, want uniform 2s", h.Counts)
		}
	}
	// Density integrates to 1.
	var total float64
	for _, d := range h.Density {
		total += d * h.Width
	}
	if !approx(total, 1, 1e-12) {
		t.Fatalf("density integral = %v", total)
	}
	if _, err := NewHistogram(nil, 5); err == nil {
		t.Fatal("empty samples should error")
	}
	if _, err := NewHistogram([]float64{1}, 0); err == nil {
		t.Fatal("zero bins should error")
	}
	// Constant samples don't divide by zero.
	h, err = NewHistogram([]float64{2, 2, 2}, 3)
	if err != nil || h.Width <= 0 {
		t.Fatalf("constant samples: %v %v", h, err)
	}
}

func TestNormalFitAndPDF(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 20000)
	for i := range xs {
		xs[i] = 3 + 2*rng.NormFloat64()
	}
	d := FitNormal(xs)
	if !approx(d.Mu, 3, 0.1) || !approx(d.Sigma, 2, 0.1) {
		t.Fatalf("fit = %+v", d)
	}
	// PDF peak at mean.
	if d.PDF(3) < d.PDF(4) || d.PDF(3) < d.PDF(2) {
		t.Fatal("PDF not peaked at mean")
	}
	if !approx(d.CDF(d.Mu), 0.5, 1e-9) {
		t.Fatalf("CDF(mean) = %v", d.CDF(d.Mu))
	}
	if !approx(d.Mean(), d.Mu, 1e-12) || !approx(d.Std(), d.Sigma, 1e-12) {
		t.Fatal("Mean/Std accessors wrong")
	}
}

func TestGammaFit(t *testing.T) {
	// Generate gamma(k=4, θ=2) samples via sum of exponentials.
	rng := rand.New(rand.NewSource(2))
	xs := make([]float64, 20000)
	for i := range xs {
		v := 0.0
		for j := 0; j < 4; j++ {
			v += -2 * math.Log(rng.Float64())
		}
		xs[i] = v
	}
	d := FitGamma(xs)
	if d.Flip {
		t.Fatal("positively skewed data should not flip")
	}
	// Moments should approximately match: mean 8, std 4.
	if !approx(d.Mean(), 8, 0.5) || !approx(d.Std(), 4, 0.5) {
		t.Fatalf("gamma moments: mean=%v std=%v", d.Mean(), d.Std())
	}
	// CDF is monotone 0→1.
	if d.CDF(-100) != 0 && d.CDF(-100) > 1e-9 {
		t.Fatalf("CDF(-100) = %v", d.CDF(-100))
	}
	if !approx(d.CDF(1e6), 1, 1e-6) {
		t.Fatalf("CDF(+big) = %v", d.CDF(1e6))
	}
	// Flipped fit mirrors correctly.
	neg := make([]float64, len(xs))
	for i, v := range xs {
		neg[i] = -v
	}
	fd := FitGamma(neg)
	if !fd.Flip {
		t.Fatal("negatively skewed data should flip")
	}
	if !approx(fd.Mean(), -8, 0.5) {
		t.Fatalf("flipped mean = %v", fd.Mean())
	}
	if !approx(fd.CDF(-8), 1-d.CDF(8), 0.02) {
		t.Fatalf("flipped CDF inconsistent: %v vs %v", fd.CDF(-8), 1-d.CDF(8))
	}
}

func TestUniformAndExponential(t *testing.T) {
	u := FitUniform([]float64{1, 2, 3, 4, 5})
	if u.A != 1 || u.B != 5 {
		t.Fatalf("uniform fit = %+v", u)
	}
	if !approx(u.PDF(3), 0.25, 1e-12) || u.PDF(0) != 0 || u.PDF(6) != 0 {
		t.Fatal("uniform PDF wrong")
	}
	if u.CDF(0) != 0 || u.CDF(6) != 1 || !approx(u.CDF(3), 0.5, 1e-12) {
		t.Fatal("uniform CDF wrong")
	}
	if !approx(u.Mean(), 3, 1e-12) {
		t.Fatal("uniform mean wrong")
	}

	e := FitExponential([]float64{2, 3, 4, 5})
	if e.Loc != 2 {
		t.Fatalf("exp loc = %v", e.Loc)
	}
	if e.PDF(1) != 0 || e.CDF(1) != 0 {
		t.Fatal("exp support wrong")
	}
	if !approx(e.Mean(), 3.5, 1e-9) {
		t.Fatalf("exp mean = %v", e.Mean())
	}
}

func TestFitBestSelectsNormalOnGaussianData(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.NormFloat64()
	}
	fits, err := FitBest(xs, 30)
	if err != nil {
		t.Fatal(err)
	}
	if fits[0].Dist.Name() != "Norm" && fits[0].Dist.Name() != "Gamma" {
		// Gamma with tiny skew approximates normal; either is acceptable,
		// but uniform/exp must not win.
		t.Fatalf("best fit on gaussian data = %s (NMSE %v)", fits[0].Dist.Name(), fits[0].NMSE)
	}
	if fits[0].NMSE > 0.2 {
		t.Fatalf("gaussian NMSE too large: %v", fits[0].NMSE)
	}
	// Results are sorted best-first.
	for i := 1; i < len(fits); i++ {
		if fits[i].NMSE < fits[i-1].NMSE {
			t.Fatal("fits not sorted")
		}
	}
}

func TestFitBestSelectsUniformOnUniformData(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	fits, err := FitBest(xs, 20)
	if err != nil {
		t.Fatal(err)
	}
	if fits[0].Dist.Name() != "Uniform" {
		t.Fatalf("best fit on uniform data = %s", fits[0].Dist.Name())
	}
}

func TestRanks(t *testing.T) {
	r := Ranks([]float64{0.9, 0.7, 0.9, 0.5})
	// 0.9s tie for ranks 1,2 → 1.5 each; 0.7 → 3; 0.5 → 4
	want := []float64{1.5, 3, 1.5, 4}
	for i := range want {
		if r[i] != want[i] {
			t.Fatalf("ranks = %v, want %v", r, want)
		}
	}
}

func TestFriedman(t *testing.T) {
	// Method 0 always best, method 2 always worst — should be significant.
	scores := [][]float64{}
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 30; i++ {
		base := rng.Float64()
		scores = append(scores, []float64{base + 0.2, base + 0.1, base})
	}
	res, err := Friedman(scores)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue > 0.001 {
		t.Fatalf("p = %v, want tiny", res.PValue)
	}
	if !(res.AvgRanks[0] < res.AvgRanks[1] && res.AvgRanks[1] < res.AvgRanks[2]) {
		t.Fatalf("avg ranks = %v", res.AvgRanks)
	}
	if !approx(res.AvgRanks[0], 1, 1e-12) {
		t.Fatalf("dominant method should have rank 1, got %v", res.AvgRanks[0])
	}

	// Identical methods: statistic ~0, p ~1 (ties give each rank 2).
	same := [][]float64{{1, 1, 1}, {2, 2, 2}}
	res, err = Friedman(same)
	if err != nil {
		t.Fatal(err)
	}
	if res.PValue < 0.9 {
		t.Fatalf("identical methods p = %v", res.PValue)
	}

	if _, err := Friedman(nil); err == nil {
		t.Fatal("empty matrix should error")
	}
	if _, err := Friedman([][]float64{{1}}); err == nil {
		t.Fatal("single method should error")
	}
	if _, err := Friedman([][]float64{{1, 2}, {1}}); err == nil {
		t.Fatal("ragged matrix should error")
	}
}

func TestWilcoxon(t *testing.T) {
	// Strongly separated pairs: significant.
	a := []float64{}
	b := []float64{}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 40; i++ {
		v := rng.Float64()
		a = append(a, v+0.5+0.01*rng.Float64())
		b = append(b, v)
	}
	_, p, err := WilcoxonSignedRank(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if p > 0.001 {
		t.Fatalf("separated pairs p = %v", p)
	}
	// Identical: p = 1.
	_, p, err = WilcoxonSignedRank(a, a)
	if err != nil || p != 1 {
		t.Fatalf("identical pairs p = %v err = %v", p, err)
	}
	// Symmetric noise: not significant.
	c := make([]float64, 60)
	d := make([]float64, 60)
	for i := range c {
		c[i] = rng.NormFloat64()
		d[i] = rng.NormFloat64()
	}
	_, p, err = WilcoxonSignedRank(c, d)
	if err != nil {
		t.Fatal(err)
	}
	if p < 0.01 {
		t.Fatalf("noise pairs p = %v, should not be significant", p)
	}
	if _, _, err := WilcoxonSignedRank([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestHolmCorrection(t *testing.T) {
	ps := []float64{0.001, 0.02, 0.04, 0.9}
	rej := HolmCorrection(ps, 0.05)
	// m=4: 0.001 <= 0.05/4 ✓; 0.02 <= 0.05/3 ≈ 0.0167? No → stop.
	want := []bool{true, false, false, false}
	for i := range want {
		if rej[i] != want[i] {
			t.Fatalf("holm = %v, want %v", rej, want)
		}
	}
	ps = []float64{0.001, 0.01, 0.012, 0.04}
	rej = HolmCorrection(ps, 0.05)
	// 0.001<=0.0125 ✓; 0.01<=0.0167 ✓; 0.012<=0.025 ✓; 0.04<=0.05 ✓
	for i, r := range rej {
		if !r {
			t.Fatalf("all should be rejected, got %v at %d", rej, i)
		}
	}
}

func TestNemenyiCD(t *testing.T) {
	// Demšar's example scale: k=13, n=46 (the paper's Fig. 11 setting).
	cd, err := NemenyiCD(13, 46)
	if err != nil {
		t.Fatal(err)
	}
	want := 3.313 * math.Sqrt(13.0*14.0/(6*46)) // ≈ 2.69
	if !approx(cd, want, 1e-9) {
		t.Fatalf("CD = %v, want %v", cd, want)
	}
	if _, err := NemenyiCD(25, 10); err == nil {
		t.Fatal("k out of table should error")
	}
}

func TestMoments(t *testing.T) {
	m, s, g := Moments([]float64{1, 2, 3, 4, 5})
	if !approx(m, 3, 1e-12) || !approx(s, math.Sqrt(2), 1e-12) || !approx(g, 0, 1e-12) {
		t.Fatalf("moments = %v %v %v", m, s, g)
	}
	m, s, g = Moments(nil)
	if m != 0 || s != 0 || g != 0 {
		t.Fatal("empty moments should be zero")
	}
}

// Property: histogram density always integrates to 1 and NMSE is
// non-negative for any fitted normal.
func TestHistogramNMSEProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 50 + rng.Intn(500)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = rng.NormFloat64()*(1+rng.Float64()*5) + rng.Float64()*10
		}
		h, err := NewHistogram(xs, 10+rng.Intn(20))
		if err != nil {
			return false
		}
		var total float64
		for _, d := range h.Density {
			total += d * h.Width
		}
		if !approx(total, 1, 1e-9) {
			return false
		}
		return h.NMSE(FitNormal(xs)) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestImanDavenport(t *testing.T) {
	// Demšar's worked setting: chi2 well below N(k-1) gives a finite F.
	f, df1, df2, err := ImanDavenport(50, 13, 46)
	if err != nil {
		t.Fatal(err)
	}
	if df1 != 12 || df2 != 540 {
		t.Fatalf("df = %d,%d", df1, df2)
	}
	want := 45.0 * 50 / (46*12 - 50)
	if !approx(f, want, 1e-9) {
		t.Fatalf("F = %v, want %v", f, want)
	}
	// Degenerate saturation diverges rather than going negative.
	f, _, _, err = ImanDavenport(46*12, 13, 46)
	if err != nil || !math.IsInf(f, 1) {
		t.Fatalf("saturated F = %v err=%v", f, err)
	}
	if _, _, _, err := ImanDavenport(1, 1, 46); err == nil {
		t.Fatal("k=1 should error")
	}
}
