package stats

import (
	"errors"
	"math"
	"sort"
)

// Ranks assigns ranks 1..k to xs with rank 1 for the LARGEST value (the
// convention for accuracy comparisons: best method gets rank 1).  Ties
// receive the average of the ranks they span.
func Ranks(xs []float64) []float64 {
	k := len(xs)
	idx := make([]int, k)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return xs[idx[a]] > xs[idx[b]] })
	ranks := make([]float64, k)
	for i := 0; i < k; {
		j := i
		//lint:ignore ipslint/floateq rank ties are defined by exact equality of the sorted values
		for j+1 < k && xs[idx[j+1]] == xs[idx[i]] {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		for l := i; l <= j; l++ {
			ranks[idx[l]] = avg
		}
		i = j + 1
	}
	return ranks
}

// FriedmanResult holds the outcome of the Friedman test over N datasets and
// k methods.
type FriedmanResult struct {
	Stat     float64   // chi-square statistic
	PValue   float64   // from chi-square with k-1 df
	AvgRanks []float64 // average rank per method (rank 1 = best)
}

// Friedman runs the Friedman test on an N×k matrix of scores (scores[i][j] is
// method j's score — e.g. accuracy — on dataset i; higher is better).
func Friedman(scores [][]float64) (*FriedmanResult, error) {
	n := len(scores)
	if n == 0 {
		return nil, errors.New("stats: no datasets")
	}
	k := len(scores[0])
	if k < 2 {
		return nil, errors.New("stats: need at least two methods")
	}
	sums := make([]float64, k)
	for _, row := range scores {
		if len(row) != k {
			return nil, errors.New("stats: ragged score matrix")
		}
		for j, r := range Ranks(row) {
			sums[j] += r
		}
	}
	avg := make([]float64, k)
	var sq float64
	for j, s := range sums {
		avg[j] = s / float64(n)
		sq += s * s
	}
	fn, fk := float64(n), float64(k)
	stat := 12/(fn*fk*(fk+1))*sq - 3*fn*(fk+1)
	p := 1 - ChiSquareCDF(stat, k-1)
	return &FriedmanResult{Stat: stat, PValue: p, AvgRanks: avg}, nil
}

// ImanDavenport converts a Friedman statistic into the less conservative
// Iman–Davenport F-statistic F_F = (N−1)·χ² / (N(k−1) − χ²) recommended by
// Demšar for CD-diagram analyses; it returns the statistic and its degrees
// of freedom (k−1, (k−1)(N−1)).
func ImanDavenport(chi2 float64, k, n int) (f float64, df1, df2 int, err error) {
	if k < 2 || n < 2 {
		return 0, 0, 0, errors.New("stats: need k >= 2 methods and n >= 2 datasets")
	}
	den := float64(n*(k-1)) - chi2
	if den <= 0 {
		// Degenerate (perfect ranking agreement): the statistic diverges.
		return math.Inf(1), k - 1, (k - 1) * (n - 1), nil
	}
	return float64(n-1) * chi2 / den, k - 1, (k - 1) * (n - 1), nil
}

// WilcoxonSignedRank runs the two-sided Wilcoxon signed-rank test on paired
// samples a and b, using the normal approximation with tie and
// continuity corrections.  Zero differences are dropped (Wilcoxon's rule).
// It returns the W statistic and two-sided p-value; an all-zero difference
// vector yields p = 1.
func WilcoxonSignedRank(a, b []float64) (w, p float64, err error) {
	if len(a) != len(b) {
		return 0, 0, errors.New("stats: paired samples have different lengths")
	}
	type dr struct {
		abs  float64
		sign float64
	}
	diffs := make([]dr, 0, len(a))
	for i := range a {
		d := a[i] - b[i]
		if d == 0 {
			continue
		}
		s := 1.0
		if d < 0 {
			s = -1
		}
		diffs = append(diffs, dr{abs: math.Abs(d), sign: s})
	}
	n := len(diffs)
	if n == 0 {
		return 0, 1, nil
	}
	sort.Slice(diffs, func(i, j int) bool { return diffs[i].abs < diffs[j].abs })
	// Average ranks for ties; accumulate the tie correction term.
	var wPlus, wMinus, tieCorr float64
	for i := 0; i < n; {
		j := i
		//lint:ignore ipslint/floateq rank ties are defined by exact equality of the sorted values
		for j+1 < n && diffs[j+1].abs == diffs[i].abs {
			j++
		}
		avg := (float64(i+1) + float64(j+1)) / 2
		tlen := float64(j - i + 1)
		tieCorr += tlen*tlen*tlen - tlen
		for l := i; l <= j; l++ {
			if diffs[l].sign > 0 {
				wPlus += avg
			} else {
				wMinus += avg
			}
		}
		i = j + 1
	}
	w = math.Min(wPlus, wMinus)
	fn := float64(n)
	mean := fn * (fn + 1) / 4
	variance := fn*(fn+1)*(2*fn+1)/24 - tieCorr/48
	if variance <= 0 {
		return w, 1, nil
	}
	z := (w - mean + 0.5) / math.Sqrt(variance) // continuity correction
	p = 2 * NormalCDF(z)
	if p > 1 {
		p = 1
	}
	return w, p, nil
}

// HolmCorrection applies Holm's step-down procedure at level alpha to the
// given p-values and returns reject[i]==true when hypothesis i is rejected.
func HolmCorrection(pvalues []float64, alpha float64) []bool {
	m := len(pvalues)
	idx := make([]int, m)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return pvalues[idx[a]] < pvalues[idx[b]] })
	reject := make([]bool, m)
	for rank, i := range idx {
		if pvalues[i] <= alpha/float64(m-rank) {
			reject[i] = true
		} else {
			break // step-down stops at the first acceptance
		}
	}
	return reject
}

// nemenyiQ05 holds the critical values q_0.05 of the studentized range
// statistic divided by √2, indexed by the number of methods k (2..20).
var nemenyiQ05 = map[int]float64{
	2: 1.960, 3: 2.343, 4: 2.569, 5: 2.728, 6: 2.850, 7: 2.949, 8: 3.031,
	9: 3.102, 10: 3.164, 11: 3.219, 12: 3.268, 13: 3.313, 14: 3.354,
	15: 3.391, 16: 3.426, 17: 3.458, 18: 3.489, 19: 3.517, 20: 3.544,
}

// NemenyiCD returns the critical difference of average ranks at α = 0.05 for
// k methods over n datasets: CD = q_α √(k(k+1)/(6n)).  Demšar 2006, the
// procedure behind Fig. 11's diagram.
func NemenyiCD(k, n int) (float64, error) {
	q, ok := nemenyiQ05[k]
	if !ok {
		return 0, errors.New("stats: Nemenyi critical value available for 2..20 methods only")
	}
	return q * math.Sqrt(float64(k*(k+1))/(6*float64(n))), nil
}
