package stats

import (
	"errors"
	"math"
)

// Histogram is a density-normalised histogram over equal-width bins, the
// structure Formula 10 fits a distribution against.
type Histogram struct {
	Min, Max float64   // range covered
	Width    float64   // bin width
	Counts   []int     // raw counts per bin
	Density  []float64 // counts normalised so that Σ density·width = 1
	N        int       // total number of samples
}

// NewHistogram builds a histogram of the samples with the given number of
// bins.  Samples outside [min,max] are clamped into the boundary bins.
func NewHistogram(samples []float64, bins int) (*Histogram, error) {
	if len(samples) == 0 {
		return nil, errors.New("stats: no samples")
	}
	if bins < 1 {
		return nil, errors.New("stats: bins must be >= 1")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range samples {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		hi = lo + 1 // all-equal samples: one unit-wide bin range
	}
	h := &Histogram{
		Min:    lo,
		Max:    hi,
		Width:  (hi - lo) / float64(bins),
		Counts: make([]int, bins),
		N:      len(samples),
	}
	for _, v := range samples {
		b := int((v - lo) / h.Width)
		if b < 0 {
			b = 0
		}
		if b >= bins {
			b = bins - 1
		}
		h.Counts[b]++
	}
	h.Density = make([]float64, bins)
	norm := float64(h.N) * h.Width
	for i, c := range h.Counts {
		h.Density[i] = float64(c) / norm
	}
	return h, nil
}

// BinCenter returns the centre of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Min + (float64(i)+0.5)*h.Width
}

// NMSE returns the normalised mean squared error between the histogram
// density and the distribution's density evaluated at the bin centres:
//
//	NMSE = Σ_i (pdf(c_i) − density_i)² / Σ_i density_i²
//
// This is the goodness-of-fit criterion of Formula 10 / Table III.
func (h *Histogram) NMSE(d Distribution) float64 {
	var num, den float64
	for i, dens := range h.Density {
		p := d.PDF(h.BinCenter(i))
		diff := p - dens
		num += diff * diff
		den += dens * dens
	}
	if den == 0 {
		return math.Inf(1)
	}
	return num / den
}
