// Package stats provides the statistical substrate of the reproduction:
// histograms, method-of-moments distribution fitting with NMSE model
// selection (Table III / Formula 10 of the IPS paper), the 3σ/Chebyshev rule
// used by the DABF (Formula 11), and the Friedman and Wilcoxon-Holm tests
// behind the critical-difference diagram (Fig. 11).
package stats

import (
	"math"
)

// RegularizedGammaP computes P(a,x), the regularised lower incomplete gamma
// function, via the series expansion for x < a+1 and the continued fraction
// for x >= a+1 (Numerical Recipes style).  Domain: a > 0, x >= 0.
func RegularizedGammaP(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 0
	}
	if x < a+1 {
		return gammaSeries(a, x)
	}
	return 1 - gammaContinuedFraction(a, x)
}

func gammaSeries(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*eps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

func gammaContinuedFraction(a, x float64) float64 {
	const maxIter = 500
	const eps = 1e-14
	const tiny = 1e-300
	lg, _ := math.Lgamma(a)
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < eps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ChiSquareCDF returns P(X <= x) for a chi-square distribution with df
// degrees of freedom.
func ChiSquareCDF(x float64, df int) float64 {
	if x <= 0 {
		return 0
	}
	return RegularizedGammaP(float64(df)/2, x/2)
}

// NormalCDF returns P(X <= x) for the standard normal distribution.
func NormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// ChebyshevBound returns the Chebyshev guarantee 1 − 1/z² for z standard
// deviations (Formula 11); e.g. z=3 gives ≈0.8889.
func ChebyshevBound(z float64) float64 {
	if z <= 0 {
		return 0
	}
	return 1 - 1/(z*z)
}
