package stats

import (
	"math"
	"sort"
)

// Distribution is a univariate continuous distribution fitted to data.
type Distribution interface {
	Name() string
	PDF(x float64) float64
	CDF(x float64) float64
	Mean() float64
	Std() float64
}

// Moments returns the mean, standard deviation, and (sample) skewness of xs.
func Moments(xs []float64) (mean, std, skew float64) {
	n := float64(len(xs))
	if n == 0 {
		return 0, 0, 0
	}
	for _, v := range xs {
		mean += v
	}
	mean /= n
	var m2, m3 float64
	for _, v := range xs {
		d := v - mean
		m2 += d * d
		m3 += d * d * d
	}
	m2 /= n
	m3 /= n
	std = math.Sqrt(m2)
	if std > 0 {
		skew = m3 / (std * std * std)
	}
	return mean, std, skew
}

// Normal is the normal distribution N(mu, sigma²).
type Normal struct{ Mu, Sigma float64 }

// FitNormal fits a normal distribution by moments.
func FitNormal(xs []float64) Normal {
	m, s, _ := Moments(xs)
	if s == 0 {
		s = 1e-9
	}
	return Normal{Mu: m, Sigma: s}
}

func (d Normal) Name() string { return "Norm" }
func (d Normal) PDF(x float64) float64 {
	z := (x - d.Mu) / d.Sigma
	return math.Exp(-0.5*z*z) / (d.Sigma * math.Sqrt(2*math.Pi))
}
func (d Normal) CDF(x float64) float64 { return NormalCDF((x - d.Mu) / d.Sigma) }
func (d Normal) Mean() float64         { return d.Mu }
func (d Normal) Std() float64          { return d.Sigma }

// Gamma is a three-parameter (shifted) gamma distribution with shape K,
// scale Theta, and location Loc.  Flip=true mirrors the distribution around
// Loc to model negatively skewed data.
type Gamma struct {
	K, Theta, Loc float64
	Flip          bool
}

// FitGamma fits a shifted gamma by matching mean, variance, and skewness:
// k = 4/γ², θ = σ·|γ|/2, loc = μ − kθ (mirrored when γ < 0).  Near-zero skew
// degenerates toward a normal; we floor |γ| to keep the fit finite.
func FitGamma(xs []float64) Gamma {
	m, s, g := Moments(xs)
	if s == 0 {
		s = 1e-9
	}
	flip := g < 0
	ag := math.Abs(g)
	if ag < 0.05 {
		ag = 0.05
	}
	k := 4 / (ag * ag)
	theta := s * ag / 2
	loc := m - k*theta
	if flip {
		loc = -m - k*theta // fit on the mirrored data −x
	}
	return Gamma{K: k, Theta: theta, Loc: loc, Flip: flip}
}

func (d Gamma) Name() string { return "Gamma" }
func (d Gamma) PDF(x float64) float64 {
	if d.Flip {
		x = -x
	}
	t := (x - d.Loc) / d.Theta
	if t <= 0 {
		return 0
	}
	lg, _ := math.Lgamma(d.K)
	return math.Exp((d.K-1)*math.Log(t)-t-lg) / d.Theta
}
func (d Gamma) CDF(x float64) float64 {
	if d.Flip {
		// P(X <= x) = P(−X >= −x) = 1 − F_mirror(−x)
		t := (-x - d.Loc) / d.Theta
		if t <= 0 {
			return 1
		}
		return 1 - RegularizedGammaP(d.K, t)
	}
	t := (x - d.Loc) / d.Theta
	if t <= 0 {
		return 0
	}
	return RegularizedGammaP(d.K, t)
}
func (d Gamma) Mean() float64 {
	m := d.Loc + d.K*d.Theta
	if d.Flip {
		return -m
	}
	return m
}
func (d Gamma) Std() float64 { return math.Sqrt(d.K) * d.Theta }

// Uniform is the continuous uniform distribution on [A, B].
type Uniform struct{ A, B float64 }

// FitUniform fits a uniform distribution to the sample range.
func FitUniform(xs []float64) Uniform {
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	if hi <= lo {
		hi = lo + 1e-9
	}
	return Uniform{A: lo, B: hi}
}

func (d Uniform) Name() string { return "Uniform" }
func (d Uniform) PDF(x float64) float64 {
	if x < d.A || x > d.B {
		return 0
	}
	return 1 / (d.B - d.A)
}
func (d Uniform) CDF(x float64) float64 {
	switch {
	case x < d.A:
		return 0
	case x > d.B:
		return 1
	default:
		return (x - d.A) / (d.B - d.A)
	}
}
func (d Uniform) Mean() float64 { return (d.A + d.B) / 2 }
func (d Uniform) Std() float64  { return (d.B - d.A) / math.Sqrt(12) }

// Exponential is a shifted exponential distribution with rate Lambda and
// location Loc.
type Exponential struct{ Lambda, Loc float64 }

// FitExponential fits a shifted exponential: loc = min(x), λ = 1/(mean−loc).
func FitExponential(xs []float64) Exponential {
	lo := math.Inf(1)
	var sum float64
	for _, v := range xs {
		if v < lo {
			lo = v
		}
		sum += v
	}
	mean := sum / float64(len(xs))
	scale := mean - lo
	if scale <= 0 {
		scale = 1e-9
	}
	return Exponential{Lambda: 1 / scale, Loc: lo}
}

func (d Exponential) Name() string { return "Exp" }
func (d Exponential) PDF(x float64) float64 {
	t := x - d.Loc
	if t < 0 {
		return 0
	}
	return d.Lambda * math.Exp(-d.Lambda*t)
}
func (d Exponential) CDF(x float64) float64 {
	t := x - d.Loc
	if t < 0 {
		return 0
	}
	return 1 - math.Exp(-d.Lambda*t)
}
func (d Exponential) Mean() float64 { return d.Loc + 1/d.Lambda }
func (d Exponential) Std() float64  { return 1 / d.Lambda }

// FitResult is the outcome of best-fit model selection (Table III rows).
type FitResult struct {
	Dist Distribution
	NMSE float64
}

// FitBest fits each candidate family to the samples by moments, scores each
// against a histogram with the given number of bins by NMSE (Formula 10), and
// returns the candidates ordered best-first.
func FitBest(samples []float64, bins int) ([]FitResult, error) {
	h, err := NewHistogram(samples, bins)
	if err != nil {
		return nil, err
	}
	cands := []Distribution{
		FitNormal(samples),
		FitGamma(samples),
		FitUniform(samples),
		FitExponential(samples),
	}
	out := make([]FitResult, 0, len(cands))
	for _, d := range cands {
		out = append(out, FitResult{Dist: d, NMSE: h.NMSE(d)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].NMSE < out[j].NMSE })
	return out, nil
}
