// Package errs defines the structured error taxonomy of the IPS pipeline.
//
// Every failure crossing a package boundary is an *Error carrying the
// pipeline stage it happened in, the operation, and (when known at the
// boundary) the dataset name, wrapping a sentinel that classifies the
// failure.  Callers branch with errors.Is on the sentinels and recover the
// annotation with errors.As:
//
//	_, err := core.Fit(ctx, train, opt)
//	if errors.Is(err, errs.ErrCanceled) { ... }   // run was cancelled
//	if errors.Is(err, errs.ErrBadInput) { ... }   // caller's data is bad
//	var e *errs.Error
//	if errors.As(err, &e) { log.Printf("stage %s failed", e.Stage) }
//
// Cancellation errors wrap both ErrCanceled and the originating ctx.Err(),
// so errors.Is matches ErrCanceled, context.Canceled, and
// context.DeadlineExceeded as appropriate.
package errs

import (
	"context"
	"errors"
	"fmt"
)

// Stage identifies the pipeline stage an error originated in.  The values
// mirror the span names of internal/obs, so an error's Stage lines up with
// the span tree of the run that produced it.
type Stage string

const (
	// StageValidate covers input validation at API boundaries.
	StageValidate Stage = "validate"
	// StageCandidateGen covers Algorithm 1 (ip.Generate).
	StageCandidateGen Stage = "candidate-gen"
	// StagePruning covers DABF build + prune (Alg. 2+3) and NaivePrune.
	StagePruning Stage = "pruning"
	// StageSelection covers top-k selection (Alg. 4).
	StageSelection Stage = "selection"
	// StageTransform covers the shapelet-transform embedding.
	StageTransform Stage = "transform"
	// StageTrain covers scaler fitting and SVM training.
	StageTrain Stage = "train"
	// StagePredict covers model application.
	StagePredict Stage = "predict"
	// StageKernel covers the STOMP join and batched distance kernels.
	StageKernel Stage = "kernel"
	// StageData covers dataset loading and generation.
	StageData Stage = "data"
	// StageBench covers the experiment harness.
	StageBench Stage = "bench"
	// StageServe covers the model-serving daemon (internal/serve): request
	// admission, the batching gate, and the model registry.
	StageServe Stage = "serve"
	// StageStream covers online ingest (internal/stream): incremental
	// profile maintenance, delta shapelet transform, and drift detection.
	StageStream Stage = "stream"
)

// Sentinel classification errors.  Every *Error wraps exactly one of these
// (possibly chained with further detail), so errors.Is always classifies.
var (
	// ErrCanceled marks a run stopped by context cancellation or deadline.
	// It always wraps the originating ctx.Err(), so errors.Is also matches
	// context.Canceled / context.DeadlineExceeded.
	ErrCanceled = errors.New("run canceled")
	// ErrBadInput marks failures caused by the caller's data: NaN/Inf
	// values, empty datasets, mismatched dimensions, series too short.
	ErrBadInput = errors.New("bad input")
	// ErrDegenerate marks statistically degenerate situations the pipeline
	// cannot fit a distribution to (e.g. a single-candidate class).
	ErrDegenerate = errors.New("degenerate statistics")
	// ErrNoShapelets marks a run in which selection produced no shapelets.
	ErrNoShapelets = errors.New("no shapelets discovered")
	// ErrInternal marks invariant violations that indicate a bug in the
	// pipeline itself rather than in the caller's data.
	ErrInternal = errors.New("internal invariant violation")
	// ErrOverload marks work rejected by backpressure: an admission queue
	// was full and accepting the request would have grown latency without
	// bound.  The serving layer maps it to HTTP 429.
	ErrOverload = errors.New("overloaded")
	// ErrUnavailable marks work refused because the serving surface (or the
	// model it names) is draining, retired, or not loaded.  The serving
	// layer maps it to HTTP 503.
	ErrUnavailable = errors.New("unavailable")
)

// Error is the structured pipeline error: a classification sentinel (via
// Err) annotated with where it happened.
type Error struct {
	Stage   Stage  // pipeline stage, e.g. StageCandidateGen
	Op      string // operation, e.g. "ip.generate"
	Dataset string // dataset name when known at the failing boundary
	Err     error  // wrapped cause; always chains to a sentinel
}

// Error formats as "ips: <stage>: <op> [<dataset>]: <cause>".
func (e *Error) Error() string {
	msg := "ips: " + string(e.Stage)
	if e.Op != "" {
		msg += ": " + e.Op
	}
	if e.Dataset != "" {
		msg += " [" + e.Dataset + "]"
	}
	return msg + ": " + e.Err.Error()
}

// Unwrap exposes the cause chain to errors.Is / errors.As.
func (e *Error) Unwrap() error { return e.Err }

// Wrap annotates err with stage/op/dataset, returning nil for nil.  An err
// that is already an *Error keeps its (more specific) stage and op; only a
// missing Dataset is filled in, so the dataset known at the outermost
// boundary reaches the caller without erasing where the failure happened.
func Wrap(stage Stage, op, dataset string, err error) error {
	if err == nil {
		return nil
	}
	if e, ok := err.(*Error); ok {
		if e.Dataset == "" && dataset != "" {
			return &Error{Stage: e.Stage, Op: e.Op, Dataset: dataset, Err: e.Err}
		}
		return err
	}
	return &Error{Stage: stage, Op: op, Dataset: dataset, Err: err}
}

// BadInput builds an ErrBadInput *Error with a formatted detail message.
func BadInput(stage Stage, op, dataset, format string, args ...any) error {
	return &Error{Stage: stage, Op: op, Dataset: dataset,
		Err: fmt.Errorf("%w: "+format, append([]any{ErrBadInput}, args...)...)}
}

// BadInputErr builds an ErrBadInput *Error around an existing cause (e.g. a
// ts.Dataset.Validate failure), keeping both in the chain.
func BadInputErr(stage Stage, op, dataset string, cause error) error {
	if cause == nil {
		return nil
	}
	return &Error{Stage: stage, Op: op, Dataset: dataset,
		Err: fmt.Errorf("%w: %w", ErrBadInput, cause)}
}

// Overload builds an ErrOverload *Error with a formatted detail message.
func Overload(stage Stage, op, dataset, format string, args ...any) error {
	return &Error{Stage: stage, Op: op, Dataset: dataset,
		Err: fmt.Errorf("%w: "+format, append([]any{ErrOverload}, args...)...)}
}

// Unavailable builds an ErrUnavailable *Error with a formatted detail message.
func Unavailable(stage Stage, op, dataset, format string, args ...any) error {
	return &Error{Stage: stage, Op: op, Dataset: dataset,
		Err: fmt.Errorf("%w: "+format, append([]any{ErrUnavailable}, args...)...)}
}

// Degenerate builds an ErrDegenerate *Error with a formatted detail message.
func Degenerate(stage Stage, op, dataset, format string, args ...any) error {
	return &Error{Stage: stage, Op: op, Dataset: dataset,
		Err: fmt.Errorf("%w: "+format, append([]any{ErrDegenerate}, args...)...)}
}

// Internal builds an ErrInternal *Error with a formatted detail message.
func Internal(stage Stage, op, format string, args ...any) error {
	return &Error{Stage: stage, Op: op,
		Err: fmt.Errorf("%w: "+format, append([]any{ErrInternal}, args...)...)}
}

// Canceled builds an ErrCanceled *Error around the context's error.  The
// chain wraps both ErrCanceled and cause, so errors.Is matches either.
func Canceled(stage Stage, op, dataset string, cause error) error {
	if cause == nil {
		cause = context.Canceled
	}
	return &Error{Stage: stage, Op: op, Dataset: dataset,
		Err: fmt.Errorf("%w: %w", ErrCanceled, cause)}
}

// Ctx is the cooperative cancellation check of the worker loops: nil while
// ctx is live, a Canceled *Error once it is done.  The ctx.Err() call takes
// a mutex in the runtime, so hot loops should call Ctx at a bounded
// granularity (per tile, per batch, per epoch) rather than per cell.
func Ctx(ctx context.Context, stage Stage, op string) error {
	if ctx == nil {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return Canceled(stage, op, "", err)
	}
	return nil
}
