package errs

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
)

func TestErrorFormat(t *testing.T) {
	e := &Error{Stage: StageCandidateGen, Op: "ip.generate", Dataset: "GunPoint",
		Err: fmt.Errorf("%w: empty pool", ErrBadInput)}
	got := e.Error()
	for _, want := range []string{"ips:", "candidate-gen", "ip.generate", "[GunPoint]", "bad input", "empty pool"} {
		if !strings.Contains(got, want) {
			t.Errorf("Error() = %q, missing %q", got, want)
		}
	}
}

func TestSentinelClassification(t *testing.T) {
	cases := []struct {
		err      error
		sentinel error
	}{
		{BadInput(StageValidate, "fit", "X", "n=%d", 0), ErrBadInput},
		{BadInputErr(StageValidate, "fit", "X", errors.New("nan at 3")), ErrBadInput},
		{Degenerate(StagePruning, "dabf.build", "", "one candidate"), ErrDegenerate},
		{Internal(StageKernel, "mp.selfjoin", "nil partial"), ErrInternal},
		{Canceled(StageTransform, "transform", "", context.Canceled), ErrCanceled},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.sentinel) {
			t.Errorf("%v: errors.Is(%v) = false", c.err, c.sentinel)
		}
		var e *Error
		if !errors.As(c.err, &e) {
			t.Errorf("%v: errors.As(*Error) = false", c.err)
		}
	}
}

func TestCanceledMatchesContextErrors(t *testing.T) {
	err := Canceled(StageKernel, "mp.selfjoin", "", context.Canceled)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("Canceled(context.Canceled) does not match both sentinels: %v", err)
	}
	err = Canceled(StageKernel, "mp.selfjoin", "", context.DeadlineExceeded)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Canceled(DeadlineExceeded) does not match both sentinels: %v", err)
	}
	if errors.Is(err, context.Canceled) {
		t.Fatalf("deadline error must not match context.Canceled")
	}
}

func TestCtx(t *testing.T) {
	if err := Ctx(context.Background(), StageKernel, "x"); err != nil {
		t.Fatalf("live context: %v", err)
	}
	if err := Ctx(nil, StageKernel, "x"); err != nil { //nolint — nil ctx documented as live
		t.Fatalf("nil context: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	err := Ctx(ctx, StageKernel, "mp.selfjoin")
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled context: %v", err)
	}
	var e *Error
	if !errors.As(err, &e) || e.Stage != StageKernel || e.Op != "mp.selfjoin" {
		t.Fatalf("annotation lost: %+v", e)
	}
}

func TestWrap(t *testing.T) {
	if Wrap(StageValidate, "op", "ds", nil) != nil {
		t.Fatal("Wrap(nil) != nil")
	}
	plain := errors.New("boom")
	err := Wrap(StageSelection, "select", "GunPoint", plain)
	var e *Error
	if !errors.As(err, &e) || e.Stage != StageSelection || e.Dataset != "GunPoint" {
		t.Fatalf("plain wrap: %+v", e)
	}
	if !errors.Is(err, plain) {
		t.Fatal("cause lost")
	}

	// Re-wrapping keeps the inner stage/op and fills only a missing dataset.
	inner := BadInput(StageCandidateGen, "ip.generate", "", "short series")
	outer := Wrap(StageSelection, "discover", "Coffee", inner)
	if !errors.As(outer, &e) {
		t.Fatal("as failed")
	}
	if e.Stage != StageCandidateGen || e.Op != "ip.generate" || e.Dataset != "Coffee" {
		t.Fatalf("re-wrap lost specificity: %+v", e)
	}
	// A dataset already present is never overwritten.
	inner2 := BadInput(StageCandidateGen, "ip.generate", "Beef", "short series")
	outer2 := Wrap(StageSelection, "discover", "Coffee", inner2)
	if !errors.As(outer2, &e) || e.Dataset != "Beef" {
		t.Fatalf("dataset overwritten: %+v", e)
	}
}

func TestServeSentinels(t *testing.T) {
	over := Overload(StageServe, "serve.admit", "m1", "queue full (%d waiting)", 256)
	if !errors.Is(over, ErrOverload) {
		t.Fatalf("Overload does not match ErrOverload: %v", over)
	}
	var e *Error
	if !errors.As(over, &e) || e.Stage != StageServe || e.Op != "serve.admit" || e.Dataset != "m1" {
		t.Fatalf("Overload annotation lost: %+v", e)
	}
	un := Unavailable(StageServe, "serve.route", "", "model %q draining", "m1")
	if !errors.Is(un, ErrUnavailable) {
		t.Fatalf("Unavailable does not match ErrUnavailable: %v", un)
	}
	// The serve sentinels are disjoint from each other and the rest of the
	// taxonomy, so HTTP status mapping by errors.Is is unambiguous.
	for _, other := range []error{ErrCanceled, ErrBadInput, ErrDegenerate, ErrNoShapelets, ErrInternal, ErrUnavailable} {
		if errors.Is(over, other) {
			t.Fatalf("ErrOverload chain also matches %v", other)
		}
	}
}
