package serve

import (
	"context"
	"errors"
	"net/http"
	"testing"
	"time"

	"ips/internal/errs"
	"ips/internal/faulty"
	"ips/internal/obs"
	"ips/internal/ts"
)

// heldServer builds a server whose gate workers wait for one token per batch
// group, so tests control exactly when (and how) queued jobs coalesce.
func heldServer(t *testing.T, cfg Config) (*Server, chan struct{}, *slot) {
	t.Helper()
	m, _ := testModel(t)
	hold := make(chan struct{})
	cfg.gateHold = hold
	if cfg.Obs == nil {
		cfg.Obs = obs.New("batcher-test")
	}
	s := NewServer(context.Background(), cfg)
	if _, err := s.Register(context.Background(), "planted", "test", m); err != nil {
		t.Fatalf("register: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	sl, err := s.reg.resolve("planted")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	return s, hold, sl
}

func testJob(ctx context.Context, train *ts.Dataset, i int) *job {
	return &job{
		ctx:       ctx,
		kind:      kindClassify,
		instances: []ts.Series{train.Instances[i].Values},
		done:      make(chan jobResult, 1),
	}
}

// TestCoalescing verifies the core batching claim with the obs counters: N
// jobs queued while the worker is held execute as ONE batch group with one
// transform pass over all instances.
func TestCoalescing(t *testing.T) {
	_, train := testModel(t)
	s, hold, sl := heldServer(t, Config{})
	const n = 5
	jobs := make([]*job, n)
	for i := range jobs {
		jobs[i] = testJob(context.Background(), train, i)
		if err := sl.gate.admit(jobs[i]); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	hold <- struct{}{} // release exactly one batch group
	for i, j := range jobs {
		res := <-j.done
		if res.err != nil {
			t.Fatalf("job %d: %v", i, res.err)
		}
		if len(res.preds) != 1 || res.version != 1 {
			t.Fatalf("job %d result = %+v", i, res)
		}
	}
	met := s.metrics()
	if got := met.Counter("serve.batch.groups").Value(); got != 1 {
		t.Fatalf("batch groups = %d, want 1 (jobs did not coalesce)", got)
	}
	if got := met.Counter("serve.batch.jobs").Value(); got != n {
		t.Fatalf("batch jobs = %d, want %d", got, n)
	}
	if got := met.Counter("serve.batch.coalesced").Value(); got != n-1 {
		t.Fatalf("coalesced = %d, want %d", got, n-1)
	}
	if got := met.Counter("serve.batch.instances").Value(); got != n {
		t.Fatalf("batch instances = %d, want %d", got, n)
	}
}

// TestMaxBatchSplitsGroups: more queued jobs than MaxBatch execute as
// multiple groups, none larger than the cap.
func TestMaxBatchSplitsGroups(t *testing.T) {
	_, train := testModel(t)
	s, hold, sl := heldServer(t, Config{MaxBatch: 2})
	const n = 5
	jobs := make([]*job, n)
	for i := range jobs {
		jobs[i] = testJob(context.Background(), train, i)
		if err := sl.gate.admit(jobs[i]); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	for i := 0; i < 3; i++ { // ceil(5/2) groups
		hold <- struct{}{}
	}
	for i, j := range jobs {
		if res := <-j.done; res.err != nil {
			t.Fatalf("job %d: %v", i, res.err)
		}
	}
	met := s.metrics()
	if got := met.Counter("serve.batch.groups").Value(); got != 3 {
		t.Fatalf("batch groups = %d, want 3", got)
	}
	if got := met.Counter("serve.batch.jobs").Value(); got != n {
		t.Fatalf("batch jobs = %d, want %d", got, n)
	}
}

// TestQueueFull429 fills the queue and asserts the next admission is an
// immediate typed overload, not a wait.
func TestQueueFull429(t *testing.T) {
	_, train := testModel(t)
	s, hold, sl := heldServer(t, Config{QueueDepth: 2})
	j1, j2, j3 := testJob(context.Background(), train, 0), testJob(context.Background(), train, 1), testJob(context.Background(), train, 2)
	if err := sl.gate.admit(j1); err != nil {
		t.Fatalf("admit 1: %v", err)
	}
	if err := sl.gate.admit(j2); err != nil {
		t.Fatalf("admit 2: %v", err)
	}
	err := sl.gate.admit(j3)
	if err == nil {
		t.Fatal("third admit succeeded with QueueDepth=2 and a held worker")
	}
	if !errors.Is(err, errs.ErrOverload) {
		t.Fatalf("overflow error = %v, want ErrOverload", err)
	}
	if diag := faulty.CheckTyped(err); diag != "" {
		t.Fatal(diag)
	}
	if got := statusFor(err); got != http.StatusTooManyRequests {
		t.Fatalf("statusFor(overload) = %d, want 429", got)
	}
	met := s.metrics()
	if got := met.Counter("serve.admit.rejected").Value(); got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	// Drain the two queued jobs so Close does not count them as leaks.
	hold <- struct{}{}
	<-j1.done
	<-j2.done
}

// TestDeadlineInQueue504 queues a job whose deadline fires before a worker
// picks it up: it must come back as a typed cancellation (504) without the
// batch ever executing it.
func TestDeadlineInQueue504(t *testing.T) {
	_, train := testModel(t)
	s, hold, sl := heldServer(t, Config{})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	j := testJob(ctx, train, 0)
	if err := sl.gate.admit(j); err != nil {
		t.Fatalf("admit: %v", err)
	}
	<-ctx.Done() // deadline fires while the job waits in the queue
	hold <- struct{}{}
	res := <-j.done
	if res.err == nil {
		t.Fatal("expired job executed")
	}
	if !errors.Is(res.err, errs.ErrCanceled) || !errors.Is(res.err, context.DeadlineExceeded) {
		t.Fatalf("expired job error = %v", res.err)
	}
	if diag := faulty.CheckTyped(res.err); diag != "" {
		t.Fatal(diag)
	}
	if got := statusFor(res.err); got != http.StatusGatewayTimeout {
		t.Fatalf("statusFor(queue deadline) = %d, want 504", got)
	}
	met := s.metrics()
	if got := met.Counter("serve.queue.expired").Value(); got != 1 {
		t.Fatalf("queue.expired = %d, want 1", got)
	}
	// The whole group expired: nothing executed, no transform ran.
	if got := met.Counter("serve.batch.groups").Value(); got != 0 {
		t.Fatalf("batch groups = %d, want 0", got)
	}
	if got := met.Counter("serve.batch.instances").Value(); got != 0 {
		t.Fatalf("batch instances = %d, want 0", got)
	}
}

// TestRetiredInQueue503: jobs already queued when the model is retired fail
// typed at execution rather than running against a dead model.
func TestRetiredInQueue503(t *testing.T) {
	_, train := testModel(t)
	s, hold, sl := heldServer(t, Config{})
	j := testJob(context.Background(), train, 0)
	if err := sl.gate.admit(j); err != nil {
		t.Fatalf("admit: %v", err)
	}
	if _, err := s.Retire(context.Background(), "planted"); err != nil {
		t.Fatalf("retire: %v", err)
	}
	hold <- struct{}{}
	res := <-j.done
	if !errors.Is(res.err, errs.ErrUnavailable) {
		t.Fatalf("retired-in-queue error = %v, want ErrUnavailable", res.err)
	}
	if got := statusFor(res.err); got != http.StatusServiceUnavailable {
		t.Fatalf("statusFor = %d, want 503", got)
	}
}

// TestCloseFlushesQueue: jobs still queued at Close are answered (executed
// by the shutdown flush), never dropped.
func TestCloseFlushesQueue(t *testing.T) {
	m, train := testModel(t)
	hold := make(chan struct{})
	s := NewServer(context.Background(), Config{Obs: obs.New("flush-test"), gateHold: hold})
	if _, err := s.Register(context.Background(), "planted", "test", m); err != nil {
		t.Fatalf("register: %v", err)
	}
	sl, _ := s.reg.resolve("planted")
	jobs := make([]*job, 3)
	for i := range jobs {
		jobs[i] = testJob(context.Background(), train, i)
		if err := sl.gate.admit(jobs[i]); err != nil {
			t.Fatalf("admit %d: %v", i, err)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil { // workers flush without any hold token
		t.Fatalf("close: %v", err)
	}
	for i, j := range jobs {
		select {
		case res := <-j.done:
			if res.err != nil {
				t.Fatalf("flushed job %d: %v", i, res.err)
			}
		default:
			t.Fatalf("job %d got no result from the shutdown flush", i)
		}
	}
	if err := sl.gate.admit(testJob(context.Background(), train, 0)); !errors.Is(err, errs.ErrUnavailable) {
		t.Fatalf("post-close admit = %v, want ErrUnavailable", err)
	}
}
