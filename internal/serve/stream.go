package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"
	"sync"
	"time"

	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/stream"
	"ips/internal/ucr"
)

// session is one live streaming series: a stream.Stream pinned to the model
// version it was created against.  Hot-swapping or retiring the model never
// tears a session's state out from under it — the pinned version keeps
// serving this session's appends (predictions within one session come from
// one model), while *new* sessions land on the new version and appends to a
// retired model's sessions are refused.
//
// The mutex serialises appends: a stream's profile is an ordered fold over
// its points, so concurrent appends to the same session have no meaningful
// semantics — the second caller waits.
type session struct {
	id    string
	model string // resolved canonical model name
	sl    *slot
	v     *version
	mu    sync.Mutex
	st    *stream.Stream
}

// sessionTable is the server's live-session registry.
type sessionTable struct {
	mu       sync.Mutex
	sessions map[string]*session
	lastID   int64
}

// create registers a new session, enforcing the MaxStreams admission cap.
func (t *sessionTable) create(max int, model string, sl *slot, v *version, st *stream.Stream) (*session, error) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.sessions == nil {
		t.sessions = map[string]*session{}
	}
	if len(t.sessions) >= max {
		return nil, errs.Overload(errs.StageServe, "serve.stream", model,
			"%d streams open, cap is %d; close a session or retry later", len(t.sessions), max)
	}
	t.lastID++
	ses := &session{id: "s-" + strconv.FormatInt(t.lastID, 10), model: model, sl: sl, v: v, st: st}
	t.sessions[ses.id] = ses
	return ses, nil
}

// lookup finds a live session.
func (t *sessionTable) lookup(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ses, ok := t.sessions[id]
	return ses, ok
}

// remove deletes a session, reporting whether it existed.
func (t *sessionTable) remove(id string) (*session, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	ses, ok := t.sessions[id]
	delete(t.sessions, id)
	return ses, ok
}

// count returns the number of live sessions.
func (t *sessionTable) count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sessions)
}

// streamRequest is the JSON body of the streaming route: the points to
// append (may be empty on session creation).
type streamRequest struct {
	Points []float64 `json:"points"`
}

// streamResponse is the streaming route's success body: the session handle
// plus the post-append state of the stream.
type streamResponse struct {
	Session string `json:"session"`
	Model   string `json:"model"`
	Version int64  `json:"version"`
	N       int    `json:"n"`
	Windows int    `json:"windows"`
	// Prediction is present once the stream has enough state to classify
	// (points ingested and the model head attached).
	Prediction  *int    `json:"prediction,omitempty"`
	Drift       bool    `json:"drift"`
	DriftScore  float64 `json:"drift_score"`
	Motif       int     `json:"motif"`
	Discord     int     `json:"discord"`
	MotifDist   float64 `json:"motif_dist,omitempty"`
	DiscordDist float64 `json:"discord_dist,omitempty"`
}

// streamCloseResponse is the DELETE /v1/stream success body.
type streamCloseResponse struct {
	Session string `json:"session"`
	Closed  bool   `json:"closed"`
	N       int    `json:"n"`
}

// handleStream is the chunked-POST streaming route.
//
//	POST   /v1/stream?model=NAME[&window=N]  create a session (body optional)
//	POST   /v1/stream?session=ID             append points to a session
//	DELETE /v1/stream?session=ID             close a session
//
// Each POST body ({"points": [...]} JSON, or a one-row UCR TSV) is appended
// to the session's series; the response carries the incremental prediction
// and drift state after those points.  Sessions are subject to the same
// admission taxonomy as the batch routes: draining server 503, unknown
// model 404, retired model 503, MaxStreams and per-stream point caps 429,
// non-finite points 400, deadline mid-evaluation 504 (the session stays
// consistent and the next append resumes the evaluation).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	sw := obs.NewStopwatch()
	status := http.StatusOK
	defer func() {
		met := s.metrics()
		met.Counter("serve.http.stream.requests").Inc()
		met.Counter("serve.http.status." + strconv.Itoa(status)).Inc()
		met.Histogram("serve.http.stream.ms", latencyBuckets).Observe(float64(sw.Elapsed().Microseconds()) / 1000)
		met.Gauge("serve.streams.open").Set(float64(s.streams.count()))
	}()

	ctx, cancel, err := s.requestCtx(r, "stream", "")
	if err != nil {
		status = writeError(r.Context(), w, err)
		return
	}
	defer cancel()

	if id := r.URL.Query().Get("session"); id != "" {
		status = s.streamAppend(ctx, w, r, id)
		return
	}
	status = s.streamCreate(ctx, w, r)
}

// handleStreamDelete closes a session.  Close keeps working while the
// server drains — releasing sessions is part of shutting down.
func (s *Server) handleStreamDelete(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	id := r.URL.Query().Get("session")
	if id == "" {
		writeError(ctx, w, errs.BadInput(errs.StageServe, "serve.stream", "", "missing required ?session= parameter"))
		return
	}
	ses, ok := s.streams.remove(id)
	if !ok {
		writeError(ctx, w, streamNotFound(id))
		return
	}
	s.metrics().Gauge("serve.streams.open").Set(float64(s.streams.count()))
	obs.Log(ctx).Info("stream closed", "op", "serve.stream", "session", id, "n", ses.st.N())
	writeJSON(ctx, w, http.StatusOK, streamCloseResponse{Session: id, Closed: true, N: ses.st.N()})
}

// streamCreate opens a session against ?model= and ingests the (optional)
// first body chunk.
func (s *Server) streamCreate(ctx context.Context, w http.ResponseWriter, r *http.Request) int {
	if s.Draining() {
		return writeError(ctx, w, errs.Unavailable(errs.StageServe, "serve.stream", "", "server is draining"))
	}
	name := r.URL.Query().Get("model")
	if name == "" {
		return writeError(ctx, w, errs.BadInput(errs.StageServe, "serve.stream", "",
			"missing ?model= (create) or ?session= (append) parameter"))
	}
	sl, err := s.reg.resolve(name)
	if err != nil {
		return writeError(ctx, w, err)
	}
	if sl.retired.Load() {
		return writeError(ctx, w, errs.Unavailable(errs.StageServe, "serve.stream", name, "model is retired"))
	}
	v := sl.cur.Load()
	if v == nil {
		return writeError(ctx, w, errs.Unavailable(errs.StageServe, "serve.stream", name, "model has no active version"))
	}

	window := 0
	for _, sh := range v.model.Shapelets {
		if window == 0 || len(sh.Values) < window {
			window = len(sh.Values) // default: shortest shapelet length
		}
	}
	if wq := r.URL.Query().Get("window"); wq != "" {
		n, err := strconv.Atoi(wq)
		if err != nil || n < 1 {
			return writeError(ctx, w, errs.BadInput(errs.StageServe, "serve.stream", name, "bad window %q", wq))
		}
		window = n
	}

	points, err := decodePoints(ctx, w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		return writeError(ctx, w, errs.Wrap(errs.StageServe, "serve.stream", name, err))
	}

	st, err := stream.New(stream.Config{
		Window:    window,
		Shapelets: v.model.Shapelets,
		Scaler:    v.model.Scaler,
		SVM:       v.model.SVM,
		Kernel:    s.cfg.Kernel,
		MaxPoints: s.cfg.MaxStreamPoints,
	})
	if err != nil {
		return writeError(ctx, w, err)
	}
	ses, err := s.streams.create(s.cfg.MaxStreams, sl.name, sl, v, st)
	if err != nil {
		return writeError(ctx, w, err)
	}
	ses.mu.Lock()
	up, err := st.Append(ctx, points)
	ses.mu.Unlock()
	if err != nil {
		// The session exists (the client may retry the first chunk), but
		// this request failed; report it typed.
		return writeError(ctx, w, err)
	}
	obs.Log(ctx).Info("stream opened", "op", "serve.stream",
		"session", ses.id, "model", ses.model, "version", v.id, "window", window, "points", len(points))
	writeJSON(ctx, w, http.StatusOK, streamResp(ses, up))
	return http.StatusOK
}

// streamAppend ingests one body chunk into an existing session.
func (s *Server) streamAppend(ctx context.Context, w http.ResponseWriter, r *http.Request, id string) int {
	if s.Draining() {
		return writeError(ctx, w, errs.Unavailable(errs.StageServe, "serve.stream", "", "server is draining"))
	}
	ses, ok := s.streams.lookup(id)
	if !ok {
		return writeError(ctx, w, streamNotFound(id))
	}
	if ses.sl.retired.Load() {
		return writeError(ctx, w, errs.Unavailable(errs.StageServe, "serve.stream", ses.model, "model is retired"))
	}
	points, err := decodePoints(ctx, w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		return writeError(ctx, w, errs.Wrap(errs.StageServe, "serve.stream", ses.model, err))
	}
	ses.mu.Lock()
	up, err := ses.st.Append(ctx, points)
	ses.mu.Unlock()
	if err != nil {
		return writeError(ctx, w, err)
	}
	s.metrics().Counter("serve.stream.points").Add(int64(len(points)))
	writeJSON(ctx, w, http.StatusOK, streamResp(ses, up))
	return http.StatusOK
}

// streamResp shapes an Update into the wire response.
func streamResp(ses *session, up stream.Update) streamResponse {
	resp := streamResponse{
		Session: ses.id, Model: ses.model, Version: ses.v.id,
		N: up.N, Windows: up.Windows,
		Drift: up.Drift, DriftScore: up.DriftScore,
		Motif: up.Motif, Discord: up.Discord,
		MotifDist: up.MotifDist, DiscordDist: up.DiscordDist,
	}
	if up.HasPred {
		pred := up.Pred
		resp.Prediction = &pred
	}
	return resp
}

// streamNotFound types an unknown-session error so statusFor answers 404,
// matching the unknown-model contract.
func streamNotFound(id string) error {
	return notFound("serve.stream", "session "+id)
}

// requestCtx derives the request's deadline context from ?timeout_ms
// (capped at MaxTimeout; DefaultTimeout when absent).
func (s *Server) requestCtx(r *http.Request, route, name string) (context.Context, context.CancelFunc, error) {
	timeout := s.cfg.DefaultTimeout
	if tm := r.URL.Query().Get("timeout_ms"); tm != "" {
		ms, err := strconv.Atoi(tm)
		if err != nil || ms <= 0 {
			return nil, nil, errs.BadInput(errs.StageServe, "serve."+route, name, "bad timeout_ms %q", tm)
		}
		timeout = time.Duration(ms) * time.Millisecond
		if timeout > s.cfg.MaxTimeout {
			timeout = s.cfg.MaxTimeout
		}
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// decodePoints reads one streaming chunk: {"points": [...]} JSON or a
// one-row UCR TSV (label ignored).  An empty body is a valid no-op chunk on
// session creation; non-finite values are the caller's bad input.
func decodePoints(ctx context.Context, w http.ResponseWriter, r *http.Request, maxBytes int64) ([]float64, error) {
	body := ctxReader{ctx: ctx, r: http.MaxBytesReader(w, r.Body, maxBytes)}
	raw, err := io.ReadAll(body)
	if err != nil {
		return nil, decodeErr(ctx, err)
	}
	if len(raw) == 0 {
		return nil, nil
	}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "missing or malformed Content-Type")
	}
	var points []float64
	switch mt {
	case "application/json":
		dec := json.NewDecoder(bytes.NewReader(raw))
		dec.DisallowUnknownFields()
		var req streamRequest
		if err := dec.Decode(&req); err != nil {
			return nil, decodeErr(ctx, err)
		}
		if err := dec.Decode(&struct{}{}); err != io.EOF {
			return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "trailing data after JSON body")
		}
		points = req.Points
	case "text/tab-separated-values":
		d, err := ucr.ParseTSV(bytes.NewReader(raw), "request")
		if err != nil {
			return nil, decodeErr(ctx, err)
		}
		if len(d.Instances) != 1 {
			return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "stream TSV chunk must be one row, got %d", len(d.Instances))
		}
		points = d.Instances[0].Values
	default:
		return nil, errs.BadInput(errs.StageServe, "serve.decode",
			"", "unsupported Content-Type %q (want application/json or text/tab-separated-values)", mt)
	}
	for i, v := range points {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "point %d is non-finite", i)
		}
	}
	return points, nil
}
