package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strconv"
	"testing"
	"time"

	"ips/internal/faulty"
)

// TestHTTPFaultMatrix drives every faulty.HTTPFault against the classify
// route: each misbehaving client must get exactly the documented typed
// status with a JSON error body naming the errs class — never a panic,
// never a 200, never a hung connection — and the server must serve a clean
// request immediately afterwards.
func TestHTTPFaultMatrix(t *testing.T) {
	_, train := testModel(t)
	_, hs := testServer(t, Config{})
	cleanBody, _ := evalBody(t, train, 1)
	cleanURL := hs.URL + "/v1/classify?model=planted"

	for _, f := range faulty.HTTPFaults() {
		t.Run(f.Name, func(t *testing.T) {
			url := cleanURL
			if f.Timeout > 0 {
				url += "&timeout_ms=" + strconv.Itoa(int(f.Timeout/time.Millisecond))
			}
			ctx := context.Background()
			if f.CancelAfter > 0 {
				var cancel context.CancelFunc
				ctx, cancel = context.WithTimeout(ctx, f.CancelAfter)
				defer cancel()
			}
			req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, f.Body())
			if err != nil {
				t.Fatalf("build request: %v", err)
			}
			req.Header.Set("Content-Type", f.ContentType)
			resp, err := http.DefaultClient.Do(req)

			if f.WantStatus == 0 {
				// Client-side failure expected: the transport must report the
				// cancellation, and the server must shrug it off.
				if err == nil {
					resp.Body.Close()
					t.Fatalf("expected a client-side error, got HTTP %d", resp.StatusCode)
				}
			} else {
				if err != nil {
					t.Fatalf("round trip: %v", err)
				}
				out, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr != nil {
					t.Fatalf("read body: %v", rerr)
				}
				if resp.StatusCode == http.StatusOK {
					t.Fatalf("fault answered 200 with body %s", out)
				}
				if resp.StatusCode != f.WantStatus {
					t.Fatalf("status = %d, want %d (body %s)", resp.StatusCode, f.WantStatus, out)
				}
				var er errorResponse
				if err := json.Unmarshal(out, &er); err != nil {
					t.Fatalf("error body is not JSON: %v (%s)", err, out)
				}
				if er.Class != f.WantClass {
					t.Fatalf("error class = %q, want %q (body %s)", er.Class, f.WantClass, out)
				}
				if er.Status != f.WantStatus {
					t.Fatalf("body status = %d, want %d", er.Status, f.WantStatus)
				}
			}

			// The server must stay healthy after every fault.
			cresp, cout := postJSON(t, cleanURL, cleanBody)
			if cresp.StatusCode != http.StatusOK {
				t.Fatalf("clean request after fault: status %d, body %s", cresp.StatusCode, cout)
			}
		})
	}
}

// TestHTTPFaultMatrixTransform spot-checks that the transform route shares
// the decode contract.
func TestHTTPFaultMatrixTransform(t *testing.T) {
	_, hs := testServer(t, Config{})
	for _, f := range faulty.HTTPFaults() {
		if f.Name != "truncated-json" && f.Name != "wrong-content-type" {
			continue
		}
		req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/transform?model=planted", f.Body())
		if err != nil {
			t.Fatalf("build request: %v", err)
		}
		req.Header.Set("Content-Type", f.ContentType)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s: %v", f.Name, err)
		}
		out, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != f.WantStatus {
			t.Fatalf("%s: status = %d, want %d (body %s)", f.Name, resp.StatusCode, f.WantStatus, out)
		}
	}
}
