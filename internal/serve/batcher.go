package serve

import (
	"context"
	"sync"

	"ips/internal/classify"
	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/ts"
)

// jobKind selects which serving path a job takes after the shared transform.
type jobKind int

const (
	kindClassify jobKind = iota
	kindTransform
)

// job is one admitted request waiting in a model's queue.
type job struct {
	ctx       context.Context
	kind      jobKind
	instances []ts.Series
	// done receives exactly one result; buffered so a worker never blocks on
	// a handler that already gave up (its result is simply dropped).
	done chan jobResult
}

// jobResult is what a worker sends back: predictions for kindClassify, the
// raw shapelet-transform feature rows for kindTransform.
type jobResult struct {
	preds   []int
	rows    [][]float64
	version int64
	err     error
}

// gate is one model's admission queue plus the worker pool that drains it.
// Admission is non-blocking — a full queue is a typed overload, never an
// unbounded wait — and each worker coalesces everything queued at wake-up
// (capped by Config.MaxBatch) into a single transform pass so concurrent
// requests share one batched distance evaluation and one prepared-statistics
// cache pass over the model's shapelets.
type gate struct {
	srv  *Server
	slot *slot
	q    chan *job
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
	// hold, when non-nil (tests only), makes each worker wait for a token
	// before collecting a group, so a test can pile N jobs into the queue and
	// then release one token to force them through as a single batch.
	hold chan struct{}
}

func newGate(srv *Server, sl *slot) *gate {
	return &gate{
		srv:  srv,
		slot: sl,
		q:    make(chan *job, srv.cfg.QueueDepth),
		stop: make(chan struct{}),
		hold: srv.cfg.gateHold,
	}
}

// start launches the worker pool.  The goroutines are spawned by spawnWorker
// (not inline) so each worker's closure captures nothing loop-scoped; the
// pool joins in registry.waitGates via g.wg.
func (g *gate) start(workers int) {
	for i := 0; i < workers; i++ {
		g.spawnWorker()
	}
}

// spawnWorker adds one worker to the pool.
func (g *gate) spawnWorker() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.run()
	}()
}

// stopOnce signals the pool to flush the queue and exit.  Idempotent.
func (g *gate) stopOnce() {
	g.once.Do(func() { close(g.stop) })
}

// admit enqueues j without blocking.  A full queue is the backpressure
// signal: the caller gets a typed ErrOverload (HTTP 429) immediately instead
// of a queue slot that would only grow its latency past its deadline.
func (g *gate) admit(j *job) error {
	met := g.srv.metrics()
	select {
	case <-g.stop:
		return errs.Unavailable(errs.StageServe, "serve.admit", g.slot.name, "server is shutting down")
	default:
	}
	select {
	case g.q <- j:
		met.Counter("serve.admit.accepted").Inc()
		return nil
	default:
		met.Counter("serve.admit.rejected").Inc()
		return errs.Overload(errs.StageServe, "serve.admit", g.slot.name,
			"queue full (%d waiting)", cap(g.q))
	}
}

// run is one worker's loop: wait for a job, coalesce whatever else is queued
// behind it, execute the group as one batch, repeat.  On stop it flushes the
// remaining queue (each group still executes, so graceful drain completes
// admitted work) and exits when the queue is empty.
func (g *gate) run() {
	for {
		if g.hold != nil {
			select {
			case <-g.hold:
			case <-g.stop:
				g.flush()
				return
			}
		}
		select {
		case j := <-g.q:
			g.exec(g.collect(j))
		case <-g.stop:
			g.flush()
			return
		}
	}
}

// flush drains and executes everything still queued at shutdown.
func (g *gate) flush() {
	for {
		select {
		case j := <-g.q:
			g.exec(g.collect(j))
		default:
			return
		}
	}
}

// collect returns first plus every job already queued behind it, up to the
// batch cap.  It never waits: batching here exploits queueing that has
// already happened under load rather than adding latency to an idle server.
func (g *gate) collect(first *job) []*job {
	group := []*job{first}
	for len(group) < g.srv.cfg.MaxBatch {
		select {
		case j := <-g.q:
			group = append(group, j)
		default:
			return group
		}
	}
	return group
}

// exec runs one coalesced group.  The slot's current version is resolved
// exactly once for the whole group — the hot-swap consistency point: every
// job in the group sees the same model, scaler, SVM, and prepared-statistics
// cache, even if a swap lands mid-execution.  Jobs whose deadline expired
// while queued are answered with a typed cancellation and excluded from the
// batch, so a stale request never burns transform work.
func (g *gate) exec(group []*job) {
	met := g.srv.metrics()
	v := g.slot.cur.Load()
	if v == nil || g.slot.retired.Load() {
		err := errs.Unavailable(errs.StageServe, "serve.exec", g.slot.name, "model retired")
		for _, j := range group {
			j.done <- jobResult{err: err}
		}
		return
	}

	live := group[:0]
	for _, j := range group {
		if err := j.ctx.Err(); err != nil {
			met.Counter("serve.queue.expired").Inc()
			j.done <- jobResult{err: errs.Canceled(errs.StageServe, "serve.queue", g.slot.name, err)}
			continue
		}
		live = append(live, j)
	}
	if len(live) == 0 {
		return
	}
	met.Counter("serve.batch.groups").Inc()
	met.Counter("serve.batch.jobs").Add(int64(len(live)))
	if len(live) > 1 {
		met.Counter("serve.batch.coalesced").Add(int64(len(live) - 1))
	}

	d := &ts.Dataset{Name: g.slot.name}
	for _, j := range live {
		for _, s := range j.instances {
			d.Instances = append(d.Instances, ts.Instance{Values: s})
		}
	}
	met.Counter("serve.batch.instances").Add(int64(len(d.Instances)))

	// The transform runs under the server's lifetime context, not any single
	// request's: the group shares one pass, and one client hanging up must
	// not cancel its batch-mates.  Expired requests were already excluded;
	// re-checked per job below before predicting.
	sw := obs.NewStopwatch()
	rows, err := classify.TransformCtx(g.srv.base, d, v.model.Shapelets, 1, nil, v.cache)
	met.Histogram("serve.batch.ms", latencyBuckets).Observe(float64(sw.Elapsed().Microseconds()) / 1000)
	if err != nil {
		for _, j := range live {
			j.done <- jobResult{err: err}
		}
		return
	}

	off := 0
	for _, j := range live {
		n := len(j.instances)
		jr := jobResult{version: v.id}
		switch j.kind {
		case kindClassify:
			jr.preds = v.model.SVM.PredictAll(v.model.Scaler.Apply(rows[off : off+n]))
		case kindTransform:
			jr.rows = rows[off : off+n]
		}
		off += n
		j.done <- jr
	}
}
