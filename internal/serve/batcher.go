package serve

import (
	"context"
	"sync"

	"ips/internal/dist"
	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/ts"
)

// jobKind selects which serving path a job takes after the shared transform.
type jobKind int

const (
	kindClassify jobKind = iota
	kindTransform
)

// job is one admitted request waiting in a model's queue.
type job struct {
	ctx       context.Context
	kind      jobKind
	instances []ts.Series
	// preds is the classify job's result storage, preallocated by the handler
	// at admission (capacity len(instances)) so the steady-state exec loop
	// writes predictions without allocating.
	preds []int
	// rows is the transform job's result storage, filled at execution (the
	// feature rows are the response payload, so they must escape the worker).
	rows [][]float64
	// done receives exactly one result; buffered so a worker never blocks on
	// a handler that already gave up (its result is simply dropped).
	done chan jobResult
}

// jobResult is what a worker sends back: predictions for kindClassify, the
// raw shapelet-transform feature rows for kindTransform.
type jobResult struct {
	preds   []int
	rows    [][]float64
	version int64
	err     error
}

// gate is one model's admission queue plus the worker pool that drains it.
// Admission is non-blocking — a full queue is a typed overload, never an
// unbounded wait — and each worker coalesces everything queued at wake-up
// (capped by Config.MaxBatch) into a single transform pass so concurrent
// requests share one batched distance evaluation and one prepared-statistics
// cache pass over the model's shapelets.
type gate struct {
	srv  *Server
	slot *slot
	q    chan *job
	stop chan struct{}
	once sync.Once
	wg   sync.WaitGroup
	// hold, when non-nil (tests only), makes each worker wait for a token
	// before collecting a group, so a test can pile N jobs into the queue and
	// then release one token to force them through as a single batch.
	hold chan struct{}
	// Metric handles are resolved once at construction (nil-safe no-ops when
	// observability is off) so the exec loop never touches the registry map.
	cntAccepted, cntRejected *obs.Counter
	cntExpired, cntGroups    *obs.Counter
	cntJobs, cntCoalesced    *obs.Counter
	cntInstances             *obs.Counter
	histBatch                *obs.Histogram
}

func newGate(srv *Server, sl *slot) *gate {
	met := srv.metrics()
	return &gate{
		srv:  srv,
		slot: sl,
		q:    make(chan *job, srv.cfg.QueueDepth),
		stop: make(chan struct{}),
		hold: srv.cfg.gateHold,

		cntAccepted:  met.Counter("serve.admit.accepted"),
		cntRejected:  met.Counter("serve.admit.rejected"),
		cntExpired:   met.Counter("serve.queue.expired"),
		cntGroups:    met.Counter("serve.batch.groups"),
		cntJobs:      met.Counter("serve.batch.jobs"),
		cntCoalesced: met.Counter("serve.batch.coalesced"),
		cntInstances: met.Counter("serve.batch.instances"),
		histBatch:    met.Histogram("serve.batch.ms", latencyBuckets),
	}
}

// execScratch is one gate worker's grow-once working set: the distance
// engine's scratch arena, a kernel-mix accumulator flushed per group, the
// embedding/scaled/decision row buffers, and the reusable group slice.  One
// per worker goroutine; after warm-up the classify exec loop runs entirely
// inside it without allocating (asserted by TestServeExecAllocs).
type execScratch struct {
	scratch dist.Scratch
	counts  dist.Counts
	row     []float64
	scaled  []float64
	dec     []float64
	group   []*job
}

// start launches the worker pool.  The goroutines are spawned by spawnWorker
// (not inline) so each worker's closure captures nothing loop-scoped; the
// pool joins in registry.waitGates via g.wg.
func (g *gate) start(workers int) {
	for i := 0; i < workers; i++ {
		g.spawnWorker()
	}
}

// spawnWorker adds one worker to the pool.
func (g *gate) spawnWorker() {
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		g.run()
	}()
}

// stopOnce signals the pool to flush the queue and exit.  Idempotent.
func (g *gate) stopOnce() {
	g.once.Do(func() { close(g.stop) })
}

// admit enqueues j without blocking.  A full queue is the backpressure
// signal: the caller gets a typed ErrOverload (HTTP 429) immediately instead
// of a queue slot that would only grow its latency past its deadline.
func (g *gate) admit(j *job) error {
	select {
	case <-g.stop:
		return errs.Unavailable(errs.StageServe, "serve.admit", g.slot.name, "server is shutting down")
	default:
	}
	select {
	case g.q <- j:
		g.cntAccepted.Inc()
		return nil
	default:
		g.cntRejected.Inc()
		return errs.Overload(errs.StageServe, "serve.admit", g.slot.name,
			"queue full (%d waiting)", cap(g.q))
	}
}

// run is one worker's loop: wait for a job, coalesce whatever else is queued
// behind it, execute the group as one batch, repeat.  The worker's scratch
// arena lives across iterations — that's what makes the steady state
// allocation-free.  On stop it flushes the remaining queue (each group still
// executes, so graceful drain completes admitted work) and exits when the
// queue is empty.
func (g *gate) run() {
	es := &execScratch{group: make([]*job, 0, g.srv.cfg.MaxBatch)}
	for {
		if g.hold != nil {
			select {
			case <-g.hold:
			case <-g.stop:
				g.flush(es)
				return
			}
		}
		select {
		case j := <-g.q:
			g.exec(g.collect(j, es), es)
		case <-g.stop:
			g.flush(es)
			return
		}
	}
}

// flush drains and executes everything still queued at shutdown.
func (g *gate) flush(es *execScratch) {
	for {
		select {
		case j := <-g.q:
			g.exec(g.collect(j, es), es)
		default:
			return
		}
	}
}

// collect returns first plus every job already queued behind it, up to the
// batch cap, reusing the worker's group slice.  It never waits: batching
// here exploits queueing that has already happened under load rather than
// adding latency to an idle server.
func (g *gate) collect(first *job, es *execScratch) []*job {
	group := append(es.group[:0], first)
	for len(group) < g.srv.cfg.MaxBatch {
		select {
		case j := <-g.q:
			group = append(group, j)
		default:
			es.group = group // keep any growth for the next batch
			return group
		}
	}
	es.group = group
	return group
}

// exec runs one coalesced group.  The slot's current version is resolved
// exactly once for the whole group — the hot-swap consistency point: every
// job in the group sees the same model, scaler, SVM, and prepared batch,
// even if a swap lands mid-execution.  Jobs whose deadline expired while
// queued are answered with a typed cancellation and excluded from the batch,
// so a stale request never burns transform work.
func (g *gate) exec(group []*job, es *execScratch) {
	v := g.slot.cur.Load()
	if v == nil || g.slot.retired.Load() {
		err := errs.Unavailable(errs.StageServe, "serve.exec", g.slot.name, "model retired")
		for _, j := range group {
			j.done <- jobResult{err: err}
		}
		return
	}

	live := group[:0]
	nInstances := 0
	for _, j := range group {
		if err := j.ctx.Err(); err != nil {
			g.cntExpired.Inc()
			j.done <- jobResult{err: errs.Canceled(errs.StageServe, "serve.queue", g.slot.name, err)}
			continue
		}
		live = append(live, j)
		nInstances += len(j.instances)
	}
	if len(live) == 0 {
		return
	}
	g.cntGroups.Inc()
	g.cntJobs.Add(int64(len(live)))
	if len(live) > 1 {
		g.cntCoalesced.Add(int64(len(live) - 1))
	}
	g.cntInstances.Add(int64(nInstances))

	// Evaluation runs under the server's lifetime context, not any single
	// request's: the group shares one pass, and one client hanging up must
	// not cancel its batch-mates.  Expired requests were already excluded.
	sw := obs.NewStopwatch()
	err := g.evalGroup(v, live, es)
	g.histBatch.Observe(float64(sw.Elapsed().Microseconds()) / 1000)
	es.counts.AddTo(g.srv.metrics())
	es.counts = dist.Counts{}
	if err != nil {
		for _, j := range live {
			j.done <- jobResult{err: err}
		}
		return
	}
	for _, j := range live {
		j.done <- jobResult{preds: j.preds, rows: j.rows, version: v.id}
	}
}

// evalGroup embeds (and, for classify jobs, scores) every live job against
// the resolved version, entirely inside the worker's scratch: request series
// are scratch-prepared (they are seen once — the identity cache would only
// leak), the embedding evaluates into the reusable row buffers, and classify
// predictions append into the job's admission-preallocated storage.  After
// warm-up the classify path allocates nothing; transform rows are the
// response payload and must escape, so that path allocates exactly the rows
// it returns.
func (g *gate) evalGroup(v *version, live []*job, es *execScratch) error {
	m := v.model
	k := len(m.Shapelets)
	if cap(es.row) < k {
		es.row = make([]float64, k)
		es.scaled = make([]float64, k)
	}
	es.row = es.row[:k]
	es.scaled = es.scaled[:k]
	nc := len(m.SVM.Classes)
	if cap(es.dec) < nc {
		es.dec = make([]float64, nc)
	}
	es.dec = es.dec[:nc]
	for _, j := range live {
		switch j.kind {
		case kindClassify:
			if cap(j.preds) < len(j.instances) {
				// Handlers preallocate; this backstops tests building jobs by hand.
				j.preds = make([]int, 0, len(j.instances))
			}
			j.preds = j.preds[:0]
			for _, s := range j.instances {
				p := es.scratch.Prepare(s)
				if err := v.batch.EvalScratchCtx(g.srv.base, p, es.row, &es.counts, &es.scratch); err != nil {
					return err
				}
				m.Scaler.ApplyRowInto(es.scaled, es.row)
				j.preds = append(j.preds, m.SVM.PredictRow(es.scaled, es.dec))
			}
		case kindTransform:
			j.rows = make([][]float64, len(j.instances))
			for i, s := range j.instances {
				row := make([]float64, k)
				p := es.scratch.Prepare(s)
				if err := v.batch.EvalScratchCtx(g.srv.base, p, row, &es.counts, &es.scratch); err != nil {
					return err
				}
				j.rows[i] = row
			}
		}
	}
	return nil
}
