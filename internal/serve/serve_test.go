package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/faulty"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/ts"
)

// The suite fits one small model on planted synthetic data and shares it
// across every test: the model is immutable, so concurrent servers can
// register the same instance.
var (
	fitOnce  sync.Once
	fitModel *core.Model
	fitTrain *ts.Dataset
	fitErr   error
)

func testModel(t *testing.T) (*core.Model, *ts.Dataset) {
	t.Helper()
	fitOnce.Do(func() {
		fitTrain = faulty.Planted(8, 64, 2, 901)
		opt := core.Options{
			IP:   ip.Config{QN: 5, QS: 3, LengthRatios: []float64{0.2, 0.3}, Seed: 92},
			DABF: dabf.Config{Seed: 92},
			K:    3,
		}
		fitModel, fitErr = core.Fit(context.Background(), fitTrain, opt)
	})
	if fitErr != nil {
		t.Fatalf("fitting the suite model: %v", fitErr)
	}
	return fitModel, fitTrain
}

// testServer registers the shared model as "planted" on a fresh Server and
// exposes it through an httptest server.
func testServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	m, _ := testModel(t)
	if cfg.Obs == nil {
		cfg.Obs = obs.New("serve-test")
	}
	s := NewServer(context.Background(), cfg)
	if _, err := s.Register(context.Background(), "planted", "test", m); err != nil {
		t.Fatalf("register: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	return s, hs
}

// evalBody builds the JSON eval body for the first n training instances.
func evalBody(t *testing.T, d *ts.Dataset, n int) ([]byte, *ts.Dataset) {
	t.Helper()
	req := evalRequest{}
	sub := &ts.Dataset{Name: "req"}
	for i := 0; i < n; i++ {
		req.Instances = append(req.Instances, d.Instances[i].Values)
		sub.Instances = append(sub.Instances, d.Instances[i])
	}
	buf, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return buf, sub
}

func postJSON(t *testing.T, url string, body []byte) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return resp, out
}

func TestClassifyRoundTrip(t *testing.T) {
	m, train := testModel(t)
	_, hs := testServer(t, Config{})
	body, sub := evalBody(t, train, 6)

	resp, out := postJSON(t, hs.URL+"/v1/classify?model=planted", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, out)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Fatalf("Content-Type = %q", ct)
	}
	want, err := m.Predict(context.Background(), sub)
	if err != nil {
		t.Fatalf("local predict: %v", err)
	}
	// Golden body: the response must be byte-identical to the canonical
	// encoding of the expected payload, not merely equivalent JSON.
	golden, _ := json.Marshal(classifyResponse{Model: "planted", Version: 1, Predictions: want})
	golden = append(golden, '\n')
	if !bytes.Equal(out, golden) {
		t.Fatalf("classify body:\n got %s\nwant %s", out, golden)
	}
}

func TestTransformRoundTrip(t *testing.T) {
	m, train := testModel(t)
	_, hs := testServer(t, Config{})
	body, sub := evalBody(t, train, 4)

	resp, out := postJSON(t, hs.URL+"/v1/transform?model=planted", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, body %s", resp.StatusCode, out)
	}
	want := classify.Transform(sub, m.Shapelets)
	golden, _ := json.Marshal(transformResponse{Model: "planted", Version: 1, Features: want})
	golden = append(golden, '\n')
	if !bytes.Equal(out, golden) {
		t.Fatalf("transform body:\n got %s\nwant %s", out, golden)
	}
}

func TestTSVBodyMatchesJSON(t *testing.T) {
	_, train := testModel(t)
	_, hs := testServer(t, Config{})
	jsonBody, _ := evalBody(t, train, 5)

	var tsv bytes.Buffer
	for i := 0; i < 5; i++ {
		fmt.Fprintf(&tsv, "%d", train.Instances[i].Label)
		for _, v := range train.Instances[i].Values {
			fmt.Fprintf(&tsv, "\t%g", v)
		}
		fmt.Fprintln(&tsv)
	}
	resp, err := http.Post(hs.URL+"/v1/classify?model=planted", "text/tab-separated-values", &tsv)
	if err != nil {
		t.Fatalf("POST tsv: %v", err)
	}
	tsvOut, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("tsv status = %d, body %s", resp.StatusCode, tsvOut)
	}
	_, jsonOut := postJSON(t, hs.URL+"/v1/classify?model=planted", jsonBody)
	if !bytes.Equal(tsvOut, jsonOut) {
		t.Fatalf("TSV and JSON bodies disagree:\n tsv  %s\n json %s", tsvOut, jsonOut)
	}
}

// TestWorkerCountByteIdentical is the serving determinism contract: the same
// requests against pools of 1, 4, and 8 workers produce byte-identical
// responses.
func TestWorkerCountByteIdentical(t *testing.T) {
	_, train := testModel(t)
	body, _ := evalBody(t, train, 8)
	var baseline []byte
	for _, workers := range []int{1, 4, 8} {
		_, hs := testServer(t, Config{WorkersPerModel: workers})
		for i := 0; i < 3; i++ {
			resp, out := postJSON(t, hs.URL+"/v1/classify?model=planted", body)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("workers=%d status = %d, body %s", workers, resp.StatusCode, out)
			}
			if baseline == nil {
				baseline = out
			} else if !bytes.Equal(out, baseline) {
				t.Fatalf("workers=%d response diverged:\n got %s\nwant %s", workers, out, baseline)
			}
		}
	}
}

// TestGoldenErrorResponse pins the exact JSON error contract bytes.
func TestGoldenErrorResponse(t *testing.T) {
	_, hs := testServer(t, Config{})
	resp, out := postJSON(t, hs.URL+"/v1/classify", []byte(`{"instances":[[1,2]]}`))
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	golden := `{"error":"ips: serve: serve.classify: bad input: missing required ?model= parameter","class":"bad-input","stage":"serve","op":"serve.classify","status":400}` + "\n"
	if string(out) != golden {
		t.Fatalf("error body:\n got %s\nwant %s", out, golden)
	}
}

func TestUnknownModel404(t *testing.T) {
	_, hs := testServer(t, Config{})
	resp, out := postJSON(t, hs.URL+"/v1/classify?model=nope", []byte(`{"instances":[[1,2]]}`))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status = %d, body %s", resp.StatusCode, out)
	}
	var er errorResponse
	if err := json.Unmarshal(out, &er); err != nil {
		t.Fatalf("error body is not JSON: %v (%s)", err, out)
	}
	if er.Class != "bad-input" || er.Status != 404 {
		t.Fatalf("error body = %+v", er)
	}
}

func TestAdminLoadAliasRetire(t *testing.T) {
	m, train := testModel(t)
	s, hs := testServer(t, Config{})

	// Save the model and load it under a second name through the admin API.
	path := filepath.Join(t.TempDir(), "model.json")
	if err := m.SaveFile(path); err != nil {
		t.Fatalf("save: %v", err)
	}
	admin := func(body string) (*http.Response, []byte) {
		return postJSON(t, hs.URL+"/admin/models", []byte(body))
	}
	resp, out := admin(`{"action":"load","name":"second","path":"` + path + `"}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("load status = %d, body %s", resp.StatusCode, out)
	}
	var info ModelInfo
	if err := json.Unmarshal(out, &info); err != nil || info.Version != 1 || info.Name != "second" {
		t.Fatalf("load info = %s (err %v)", out, err)
	}

	// Alias and serve through the alias.
	if resp, out = admin(`{"action":"alias","name":"prod","target":"second"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("alias status = %d, body %s", resp.StatusCode, out)
	}
	body, _ := evalBody(t, train, 2)
	if resp, out = postJSON(t, hs.URL+"/v1/classify?model=prod", body); resp.StatusCode != http.StatusOK {
		t.Fatalf("classify via alias = %d, body %s", resp.StatusCode, out)
	}

	// Listing is sorted by name.
	lresp, err := http.Get(hs.URL + "/admin/models")
	if err != nil {
		t.Fatalf("GET models: %v", err)
	}
	lout, _ := io.ReadAll(lresp.Body)
	lresp.Body.Close()
	var listing struct {
		Models []ModelInfo `json:"models"`
	}
	if err := json.Unmarshal(lout, &listing); err != nil {
		t.Fatalf("listing: %v (%s)", err, lout)
	}
	var names []string
	for _, mi := range listing.Models {
		names = append(names, mi.Name)
	}
	if !reflect.DeepEqual(names, []string{"planted", "prod", "second"}) {
		t.Fatalf("listing names = %v", names)
	}

	// Retire: requests get a typed 503, a reload revives with version 2.
	if resp, out = admin(`{"action":"retire","name":"second"}`); resp.StatusCode != http.StatusOK {
		t.Fatalf("retire status = %d, body %s", resp.StatusCode, out)
	}
	if resp, out = postJSON(t, hs.URL+"/v1/classify?model=prod", body); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("retired classify = %d, body %s", resp.StatusCode, out)
	}
	if _, err := s.Register(context.Background(), "second", "test", m); err != nil {
		t.Fatalf("revive: %v", err)
	}
	resp, out = postJSON(t, hs.URL+"/v1/classify?model=prod", body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("revived classify = %d, body %s", resp.StatusCode, out)
	}
	var cr classifyResponse
	if err := json.Unmarshal(out, &cr); err != nil || cr.Version != 2 {
		t.Fatalf("revived version = %s (err %v)", out, err)
	}

	// Admin misuse is typed 400/404.
	if resp, _ = admin(`{"action":"explode"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown action = %d", resp.StatusCode)
	}
	if resp, _ = admin(`{"action":"retire","name":"ghost"}`); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("retire ghost = %d", resp.StatusCode)
	}
	if resp, _ = admin(`{"action":"load","name":"prod","path":"` + path + `"}`); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("load onto alias = %d", resp.StatusCode)
	}
}

func TestHealthzAndDrain(t *testing.T) {
	_, train := testModel(t)
	s, hs := testServer(t, Config{})
	get := func() int {
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET healthz: %v", err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusOK {
		t.Fatalf("healthz = %d", code)
	}
	s.StartDrain()
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("draining healthz = %d", code)
	}
	body, _ := evalBody(t, train, 2)
	resp, out := postJSON(t, hs.URL+"/v1/classify?model=planted", body)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining classify = %d, body %s", resp.StatusCode, out)
	}
	var er errorResponse
	if err := json.Unmarshal(out, &er); err != nil || er.Class != "unavailable" {
		t.Fatalf("draining body = %s (err %v)", out, err)
	}
}

func TestBadTimeoutParam(t *testing.T) {
	_, hs := testServer(t, Config{})
	for _, tm := range []string{"abc", "-5", "0"} {
		resp, out := postJSON(t, hs.URL+"/v1/classify?model=planted&timeout_ms="+tm, []byte(`{"instances":[[1,2]]}`))
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("timeout_ms=%s status = %d, body %s", tm, resp.StatusCode, out)
		}
	}
}

func TestMethodAndRouteErrors(t *testing.T) {
	_, hs := testServer(t, Config{})
	resp, err := http.Get(hs.URL + "/v1/classify?model=planted")
	if err != nil {
		t.Fatalf("GET classify: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET classify = %d", resp.StatusCode)
	}
	resp, err = http.Post(hs.URL+"/v1/unknown", "application/json", strings.NewReader("{}"))
	if err != nil {
		t.Fatalf("POST unknown: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("POST unknown route = %d", resp.StatusCode)
	}
}

func TestBodyTooLarge413(t *testing.T) {
	_, hs := testServer(t, Config{MaxBodyBytes: 256})
	big := `{"instances":[[` + strings.Repeat("1.0,", 200) + `1.0]]}`
	resp, out := postJSON(t, hs.URL+"/v1/classify?model=planted", []byte(big))
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status = %d, body %s", resp.StatusCode, out)
	}
}
