package serve

import (
	"context"
	"testing"
	"time"

	"ips/internal/obs"
	"ips/internal/ts"
)

// TestServeExecAllocs pins the serving layer's arena contract: once a gate
// worker's scratch is warm, executing a classify batch group allocates
// nothing — the request series is scratch-prepared, the embedding evaluates
// into reusable row buffers, predictions append into the job's
// admission-preallocated storage, and every metric handle was resolved at
// gate construction.  Runs with observability ON, so the assertion covers
// the counters and the latency histogram too.
func TestServeExecAllocs(t *testing.T) {
	m, train := testModel(t)
	s := NewServer(context.Background(), Config{Obs: obs.New("alloc-test")})
	if _, err := s.Register(context.Background(), "planted", "test", m); err != nil {
		t.Fatalf("register: %v", err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := s.Close(ctx); err != nil {
			t.Errorf("close: %v", err)
		}
	})
	sl, err := s.reg.resolve("planted")
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	g := sl.gate

	// The job is built once outside the measured loop, exactly as a handler
	// builds it at admission: result storage preallocated, done buffered.
	j := &job{
		ctx:       context.Background(),
		kind:      kindClassify,
		instances: []ts.Series{train.Instances[0].Values, train.Instances[1].Values},
		preds:     make([]int, 0, 2),
		done:      make(chan jobResult, 1),
	}
	es := &execScratch{group: make([]*job, 0, s.cfg.MaxBatch)}
	group := append(es.group, j)
	es.group = group

	var execErr error
	run := func() {
		g.exec(group, es)
		res := <-j.done
		if res.err != nil {
			execErr = res.err
		}
	}
	run() // warm-up: scratch buffers grow, metric names intern
	if allocs := testing.AllocsPerRun(50, run); allocs != 0 {
		t.Errorf("serve classify exec: %v allocs/run after warm-up, want 0", allocs)
	}
	if execErr != nil {
		t.Fatalf("exec: %v", execErr)
	}
	if len(j.preds) != 2 {
		t.Fatalf("preds = %v, want 2 predictions", j.preds)
	}
}
