package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"sync"
	"testing"
	"time"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/faulty"
	"ips/internal/ip"
	"ips/internal/obs"
)

// A second, structurally different model (fewer shapelets per class) for the
// hot-swap tests: a response computed under a torn mix of the two would
// match neither model's reference output.
var (
	swapOnce  sync.Once
	swapModel *core.Model
	swapErr   error
)

func secondModel(t *testing.T) *core.Model {
	t.Helper()
	swapOnce.Do(func() {
		train := faulty.Planted(6, 48, 2, 77)
		opt := core.Options{
			IP:   ip.Config{QN: 4, QS: 2, LengthRatios: []float64{0.25}, Seed: 77},
			DABF: dabf.Config{Seed: 77},
			K:    2,
		}
		swapModel, swapErr = core.Fit(context.Background(), train, opt)
	})
	if swapErr != nil {
		t.Fatalf("fitting the swap model: %v", swapErr)
	}
	return swapModel
}

// TestHotSwapUnderLoad hammers /v1/transform from concurrent clients while
// the registry hot-swaps between two models.  Every response must be exactly
// one model's output — the version says which, and the features must match
// that model's reference transform bit for bit.  Run with -race this is the
// torn-model check: no request may observe half of one model and half of
// another.
func TestHotSwapUnderLoad(t *testing.T) {
	m1, train := testModel(t)
	m2 := secondModel(t)
	s, hs := testServer(t, Config{WorkersPerModel: 2})

	body, sub := evalBody(t, train, 2)
	f1 := classify.Transform(sub, m1.Shapelets)
	f2 := classify.Transform(sub, m2.Shapelets)

	// Swapper: keep alternating m2/m1 registrations while readers hammer.
	// Odd versions are m1 (the initial registration is version 1), even m2.
	stop := make(chan struct{})
	swapDone := make(chan struct{})
	go func() {
		defer close(swapDone)
		next := m2
		for {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := s.Register(context.Background(), "planted", "swap", next); err != nil {
				t.Errorf("swap register: %v", err)
				return
			}
			if next == m2 {
				next = m1
			} else {
				next = m2
			}
			time.Sleep(200 * time.Microsecond)
		}
	}()

	const readers = 8
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 40; i++ {
				resp, err := http.Post(hs.URL+"/v1/transform?model=planted", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("reader %d: %v", g, err)
					return
				}
				out, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					t.Errorf("reader %d: status %d, err %v, body %s", g, resp.StatusCode, err, out)
					return
				}
				var tr transformResponse
				if err := json.Unmarshal(out, &tr); err != nil {
					t.Errorf("reader %d: bad body %s", g, out)
					return
				}
				want := f1
				if tr.Version%2 == 0 {
					want = f2
				}
				if !reflect.DeepEqual(tr.Features, want) {
					t.Errorf("reader %d: torn response for version %d:\n got %v\nwant %v",
						g, tr.Version, tr.Features, want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	<-swapDone
}

// TestConcurrentClassifyDuringDrain: requests racing StartDrain either
// complete normally or fail with the typed 503 — never anything else.
func TestConcurrentClassifyDuringDrain(t *testing.T) {
	_, train := testModel(t)
	s, hs := testServer(t, Config{})
	body, _ := evalBody(t, train, 1)

	var wg sync.WaitGroup
	for g := 0; g < 6; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				resp, err := http.Post(hs.URL+"/v1/classify?model=planted", "application/json", bytes.NewReader(body))
				if err != nil {
					t.Errorf("drain reader %d: %v", g, err)
					return
				}
				out, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusServiceUnavailable {
					t.Errorf("drain reader %d: status %d, body %s", g, resp.StatusCode, out)
					return
				}
			}
		}(g)
	}
	time.Sleep(2 * time.Millisecond)
	s.StartDrain()
	wg.Wait()
}

// TestServerLifecycleNoLeak wraps a full serve lifecycle — start, register,
// serve, hot-swap, drain, close — in the goroutine-leak check.
func TestServerLifecycleNoLeak(t *testing.T) {
	m1, train := testModel(t)
	m2 := secondModel(t)

	lc := faulty.NewLeakCheck()
	s := NewServer(context.Background(), Config{Obs: obs.New("leak-test"), WorkersPerModel: 3})
	if _, err := s.Register(context.Background(), "planted", "test", m1); err != nil {
		t.Fatalf("register: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	body, _ := evalBody(t, train, 2)
	for i := 0; i < 5; i++ {
		resp, err := http.Post(hs.URL+"/v1/classify?model=planted", "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("classify %d: %v", i, err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("classify %d: status %d", i, resp.StatusCode)
		}
		if _, err := s.Register(context.Background(), "planted", "swap", m2); err != nil {
			t.Fatalf("swap %d: %v", i, err)
		}
	}
	s.StartDrain()
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	if diag := lc.Done(3 * time.Second); diag != "" {
		t.Fatal(diag)
	}
}
