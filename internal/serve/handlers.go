package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"mime"
	"net/http"
	"strconv"

	"ips/internal/errs"
	"ips/internal/obs"
	"ips/internal/ts"
	"ips/internal/ucr"
)

// Mount registers the serving routes on mux:
//
//	POST   /v1/classify?model=NAME[&timeout_ms=N]   classify instances
//	POST   /v1/transform?model=NAME[&timeout_ms=N]  shapelet-transform features
//	POST   /v1/stream?model=NAME[&window=N]         open a streaming session
//	POST   /v1/stream?session=ID                    append points to a session
//	DELETE /v1/stream?session=ID                    close a session
//	GET    /admin/models                            registry listing
//	POST   /admin/models                            load / alias / retire
//	GET    /healthz                                 200 serving, 503 draining
//
// The eval routes accept two body encodings, selected by Content-Type:
// application/json ({"instances": [[...], ...]}) and text/tab-separated-values
// (the UCR TSV layout: label first — ignored here — then the values).
func (s *Server) Mount(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/classify", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, kindClassify, "classify")
	})
	mux.HandleFunc("POST /v1/transform", func(w http.ResponseWriter, r *http.Request) {
		s.handleEval(w, r, kindTransform, "transform")
	})
	mux.HandleFunc("POST /v1/stream", s.handleStream)
	mux.HandleFunc("DELETE /v1/stream", s.handleStreamDelete)
	mux.HandleFunc("GET /admin/models", s.handleModelsGet)
	mux.HandleFunc("POST /admin/models", s.handleModelsPost)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
}

// Handler returns a mux with the serving routes mounted.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	s.Mount(mux)
	return mux
}

// classifyResponse is the POST /v1/classify success body.
type classifyResponse struct {
	Model       string `json:"model"`
	Version     int64  `json:"version"`
	Predictions []int  `json:"predictions"`
}

// transformResponse is the POST /v1/transform success body.
type transformResponse struct {
	Model    string      `json:"model"`
	Version  int64       `json:"version"`
	Features [][]float64 `json:"features"`
}

// evalRequest is the JSON body of the eval routes.
type evalRequest struct {
	Instances [][]float64 `json:"instances"`
}

// handleEval is the shared classify/transform path: resolve the model, put a
// deadline on the request, decode and validate the body, admit through the
// model's batching gate, and wait for the worker's result or the deadline —
// whichever comes first.
func (s *Server) handleEval(w http.ResponseWriter, r *http.Request, kind jobKind, route string) {
	sw := obs.NewStopwatch()
	status := http.StatusOK
	defer func() {
		met := s.metrics()
		met.Counter("serve.http." + route + ".requests").Inc()
		met.Counter("serve.http.status." + strconv.Itoa(status)).Inc()
		met.Histogram("serve.http."+route+".ms", latencyBuckets).Observe(float64(sw.Elapsed().Microseconds()) / 1000)
	}()

	if s.Draining() {
		status = writeError(r.Context(), w, errs.Unavailable(errs.StageServe, "serve."+route, "", "server is draining"))
		return
	}
	name := r.URL.Query().Get("model")
	if name == "" {
		status = writeError(r.Context(), w, errs.BadInput(errs.StageServe, "serve."+route, "", "missing required ?model= parameter"))
		return
	}

	ctx, cancel, err := s.requestCtx(r, route, name)
	if err != nil {
		status = writeError(r.Context(), w, err)
		return
	}
	defer cancel()

	sl, err := s.reg.resolve(name)
	if err != nil {
		status = writeError(ctx, w, err)
		return
	}
	if sl.retired.Load() {
		status = writeError(ctx, w, errs.Unavailable(errs.StageServe, "serve."+route, name, "model is retired"))
		return
	}

	instances, err := decodeInstances(ctx, w, r, s.cfg.MaxBodyBytes)
	if err != nil {
		status = writeError(ctx, w, errs.Wrap(errs.StageServe, "serve."+route, name, err))
		return
	}

	j := &job{ctx: ctx, kind: kind, instances: instances, done: make(chan jobResult, 1)}
	if kind == kindClassify {
		// Result storage is allocated here, at admission, so the gate's
		// steady-state exec loop stays allocation-free.
		j.preds = make([]int, 0, len(instances))
	}
	if err := sl.gate.admit(j); err != nil {
		status = writeError(ctx, w, err)
		return
	}
	select {
	case res := <-j.done:
		if res.err != nil {
			status = writeError(ctx, w, res.err)
			return
		}
		switch kind {
		case kindClassify:
			writeJSON(ctx, w, http.StatusOK, classifyResponse{Model: name, Version: res.version, Predictions: res.preds})
		case kindTransform:
			writeJSON(ctx, w, http.StatusOK, transformResponse{Model: name, Version: res.version, Features: res.rows})
		}
	case <-ctx.Done():
		status = writeError(ctx, w, errs.Canceled(errs.StageServe, "serve."+route, name, ctx.Err()))
	}
}

// decodeInstances reads and validates the request body under the size cap,
// checking ctx between reads so a slow or stalled client trips the request
// deadline instead of holding a connection open indefinitely.
func decodeInstances(ctx context.Context, w http.ResponseWriter, r *http.Request, maxBytes int64) ([]ts.Series, error) {
	body := ctxReader{ctx: ctx, r: http.MaxBytesReader(w, r.Body, maxBytes)}
	mt, _, err := mime.ParseMediaType(r.Header.Get("Content-Type"))
	if err != nil {
		return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "missing or malformed Content-Type")
	}
	var instances []ts.Series
	switch mt {
	case "application/json":
		dec := json.NewDecoder(body)
		dec.DisallowUnknownFields()
		var req evalRequest
		if err := dec.Decode(&req); err != nil {
			return nil, decodeErr(ctx, err)
		}
		// Trailing garbage after the JSON document is a malformed body too.
		if err := dec.Decode(&struct{}{}); err != io.EOF {
			return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "trailing data after JSON body")
		}
		for _, row := range req.Instances {
			instances = append(instances, ts.Series(row))
		}
	case "text/tab-separated-values":
		d, err := ucr.ParseTSV(body, "request")
		if err != nil {
			return nil, decodeErr(ctx, err)
		}
		for _, in := range d.Instances {
			instances = append(instances, in.Values)
		}
	default:
		return nil, errs.BadInput(errs.StageServe, "serve.decode",
			"", "unsupported Content-Type %q (want application/json or text/tab-separated-values)", mt)
	}
	if len(instances) == 0 {
		return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "no instances in request body")
	}
	for i, inst := range instances {
		if len(inst) == 0 {
			return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "instance %d is empty", i)
		}
		for _, v := range inst {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return nil, errs.BadInput(errs.StageServe, "serve.decode", "", "instance %d has non-finite values", i)
			}
		}
	}
	return instances, nil
}

// decodeErr types a body-decoding failure: cancellations and the body-size
// cap keep their own classification (504/499/413), everything else is the
// client's malformed body (400).
func decodeErr(ctx context.Context, err error) error {
	if ctxErr := ctx.Err(); ctxErr != nil {
		return errs.Canceled(errs.StageServe, "serve.decode", "", ctxErr)
	}
	var tooBig *http.MaxBytesError
	if errors.As(err, &tooBig) {
		// Stays typed (bad input) while keeping the *MaxBytesError in the
		// chain so statusFor answers 413 rather than a generic 400.
		return errs.BadInputErr(errs.StageServe, "serve.decode", "", err)
	}
	return errs.BadInputErr(errs.StageServe, "serve.decode", "", fmt.Errorf("malformed body: %w", err))
}

// ctxReader checks the request context between reads, bounding how long a
// slow client can trickle a body: the gap to the next read observes the
// deadline even though the underlying Read itself cannot be interrupted.
type ctxReader struct {
	ctx context.Context
	r   io.Reader
}

func (cr ctxReader) Read(p []byte) (int, error) {
	if err := cr.ctx.Err(); err != nil {
		return 0, err
	}
	return cr.r.Read(p)
}

// adminRequest is the POST /admin/models body.
type adminRequest struct {
	Action string `json:"action"` // "load", "alias", or "retire"
	Name   string `json:"name"`
	Path   string `json:"path,omitempty"`   // load: model file to read
	Target string `json:"target,omitempty"` // alias: canonical name to point at
}

// handleModelsGet lists the registry.
func (s *Server) handleModelsGet(w http.ResponseWriter, r *http.Request) {
	writeJSON(r.Context(), w, http.StatusOK, struct {
		Models []ModelInfo `json:"models"`
	}{Models: s.List()})
}

// handleModelsPost executes one admin action.  Admin keeps working while the
// server drains — retiring models is part of shutting down.
func (s *Server) handleModelsPost(w http.ResponseWriter, r *http.Request) {
	ctx := r.Context()
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	var req adminRequest
	if err := dec.Decode(&req); err != nil {
		writeError(ctx, w, errs.BadInputErr(errs.StageServe, "serve.admin", "", fmt.Errorf("malformed body: %w", err)))
		return
	}
	var info ModelInfo
	var err error
	switch req.Action {
	case "load":
		if req.Path == "" {
			err = errs.BadInput(errs.StageServe, "serve.admin", req.Name, "load requires a path")
		} else {
			info, err = s.LoadFile(ctx, req.Name, req.Path)
		}
	case "alias":
		info, err = s.Alias(ctx, req.Name, req.Target)
	case "retire":
		info, err = s.Retire(ctx, req.Name)
	default:
		err = errs.BadInput(errs.StageServe, "serve.admin", "", "unknown action %q (want load, alias, or retire)", req.Action)
	}
	if err != nil {
		writeError(ctx, w, err)
		return
	}
	writeJSON(ctx, w, http.StatusOK, info)
}

// handleHealthz reports liveness: 200 while serving, 503 once draining so
// load balancers stop routing here before the listener closes.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		writeJSON(r.Context(), w, http.StatusServiceUnavailable, struct {
			Status string `json:"status"`
		}{Status: "draining"})
		return
	}
	writeJSON(r.Context(), w, http.StatusOK, struct {
		Status string `json:"status"`
	}{Status: "ok"})
}

// writeJSON writes v as a JSON response.  Encoding a response struct cannot
// fail; a broken connection mid-write surfaces as the write error logged at
// Debug (the client is gone, nothing to do).
func writeJSON(ctx context.Context, w http.ResponseWriter, status int, v any) {
	buf, err := json.Marshal(v)
	if err != nil {
		// Unreachable for the response types above; keep the contract anyway.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusInternalServerError)
		fmt.Fprintln(w, `{"error":"response encoding failed","status":500}`)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	buf = append(buf, '\n')
	if _, err := w.Write(buf); err != nil {
		obs.Log(ctx).Debug("response write failed", "err", err.Error())
	}
}
