package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"ips/internal/errs"
	"ips/internal/obs"
)

// errModelNotFound marks a request naming a model the registry does not
// hold.  It chains through ErrBadInput — the name came from the caller — but
// carries its own identity so statusFor can answer 404 rather than 400.
var errModelNotFound = errors.New("model not found")

// notFound builds the typed not-found error for name.
func notFound(op, name string) error {
	return &errs.Error{Stage: errs.StageServe, Op: op, Dataset: name,
		Err: fmt.Errorf("%w: %w: %q", errs.ErrBadInput, errModelNotFound, name)}
}

// StatusClientClosedRequest is the (nginx-convention) status for a request
// whose client went away before the response was ready.
const StatusClientClosedRequest = 499

// statusFor maps the errs taxonomy onto the serving HTTP contract:
//
//	ErrOverload           429  queue full, retry with backoff
//	ErrUnavailable        503  draining / retired / not loaded yet
//	deadline exceeded     504  the request's deadline fired
//	client cancellation   499  the client hung up first
//	model not found       404
//	body too large        413
//	ErrBadInput           400
//	anything else         500
//
// Order matters: a deadline that fires mid-body-read gets wrapped in a
// bad-input decode error, and the cancellation must win so the client sees
// the timeout, not a parse complaint.
func statusFor(err error) int {
	var tooBig *http.MaxBytesError
	switch {
	case err == nil:
		return http.StatusOK
	case errors.Is(err, errs.ErrOverload):
		return http.StatusTooManyRequests
	case errors.Is(err, errs.ErrUnavailable):
		return http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded):
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled), errors.Is(err, errs.ErrCanceled):
		return StatusClientClosedRequest
	case errors.Is(err, errModelNotFound):
		return http.StatusNotFound
	case errors.As(err, &tooBig):
		return http.StatusRequestEntityTooLarge
	case errors.Is(err, errs.ErrBadInput):
		return http.StatusBadRequest
	}
	return http.StatusInternalServerError
}

// errorResponse is the JSON body of every non-2xx response.
type errorResponse struct {
	Error  string `json:"error"`
	Class  string `json:"class,omitempty"`
	Stage  string `json:"stage,omitempty"`
	Op     string `json:"op,omitempty"`
	Status int    `json:"status"`
}

// writeError renders err as its typed JSON error response and returns the
// status it wrote (for the route metrics).  Server-side failures log at
// Warn, client-side ones at Debug — a client sending garbage is not an
// incident.
func writeError(ctx context.Context, w http.ResponseWriter, err error) int {
	status := statusFor(err)
	resp := errorResponse{Error: err.Error(), Class: obs.ErrClass(err), Status: status}
	var e *errs.Error
	if errors.As(err, &e) {
		resp.Stage = string(e.Stage)
		resp.Op = e.Op
	}
	if status >= 500 && status != http.StatusServiceUnavailable && status != http.StatusGatewayTimeout {
		obs.Log(ctx).Warn("request failed", obs.ErrAttrs(err)...)
	} else {
		obs.Log(ctx).Debug("request rejected", obs.ErrAttrs(err)...)
	}
	writeJSON(ctx, w, status, resp)
	return status
}
