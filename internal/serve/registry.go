package serve

import (
	"context"
	"sort"
	"sync"
	"sync/atomic"

	"ips/internal/core"
	"ips/internal/dist"
	"ips/internal/errs"
	"ips/internal/obs"
)

// version is one immutable loaded model version.  Everything a batch needs
// — the model and its prepared-statistics cache — hangs off this struct, so
// resolving the slot's atomic pointer once per batch group is the whole
// consistency story: a hot-swap publishes a new *version in a single store
// and in-flight groups keep (and drain on) the one they resolved.
type version struct {
	id     int64
	source string
	model  *core.Model
	// batch is the version's shapelet queries grouped by length and prepared
	// exactly once — the "keep prepared statistics resident" amortization the
	// batching gate exists for.  Every request served by this version
	// evaluates against it with a worker-owned dist.Scratch, so the
	// steady-state classify loop allocates nothing and retains nothing per
	// request.  (An earlier design memoised request series into a per-version
	// dist.Cache keyed by slice identity; since request storage is never seen
	// twice, that cache was a per-request memory leak.)
	batch *dist.Batch
}

// slot is one model name: an atomically swappable current version plus the
// admission gate, which survives swaps so queued requests ride through a
// deploy untouched.
type slot struct {
	name    string
	cur     atomic.Pointer[version]
	gate    *gate
	retired atomic.Bool
	lastID  atomic.Int64
}

// registry maps model names (and aliases) to slots.  The map is guarded by
// a mutex — admin operations are rare — while the per-request hot path only
// takes the read lock to resolve a name and then works lock-free off the
// slot's atomic version pointer.
type registry struct {
	srv     *Server
	mu      sync.RWMutex
	slots   map[string]*slot  // canonical name -> slot
	aliases map[string]string // alias -> canonical name
}

func newRegistry(srv *Server) *registry {
	return &registry{srv: srv, slots: map[string]*slot{}, aliases: map[string]string{}}
}

// ModelInfo is the admin view of one registered name.
type ModelInfo struct {
	Name      string `json:"name"`
	Version   int64  `json:"version"`
	Source    string `json:"source,omitempty"`
	State     string `json:"state"` // "active" or "retired"
	Shapelets int    `json:"shapelets"`
	Classes   int    `json:"classes"`
	AliasOf   string `json:"alias_of,omitempty"`
}

// Register publishes m as the next version of name, creating the slot (and
// starting its worker pool) on first sight and atomically hot-swapping on a
// reload.  The old version is not torn down: batch groups that already
// resolved it finish on it, and it is garbage once they drain.  Registering
// over a retired name revives it.
func (s *Server) Register(ctx context.Context, name, source string, m *core.Model) (ModelInfo, error) {
	if name == "" {
		return ModelInfo{}, errs.BadInput(errs.StageServe, "serve.register", "", "empty model name")
	}
	if m == nil || m.SVM == nil || m.Scaler == nil || len(m.Shapelets) == 0 {
		return ModelInfo{}, errs.BadInput(errs.StageServe, "serve.register", name, "model is nil or untrained")
	}
	r := s.reg
	r.mu.Lock()
	if _, isAlias := r.aliases[name]; isAlias {
		r.mu.Unlock()
		return ModelInfo{}, errs.BadInput(errs.StageServe, "serve.register", name,
			"%q is an alias; load under its canonical name", name)
	}
	sl := r.slots[name]
	created := sl == nil
	if created {
		sl = &slot{name: name}
		sl.gate = newGate(s, sl)
		r.slots[name] = sl
	}
	r.mu.Unlock()

	queries := make([][]float64, len(m.Shapelets))
	for i, sh := range m.Shapelets {
		queries[i] = sh.Values
	}
	batch := dist.NewBatch(queries)
	batch.SetKernel(s.cfg.Kernel)
	batch.SetPrecision(s.cfg.Precision)
	v := &version{id: sl.lastID.Add(1), source: source, model: m, batch: batch}
	sl.cur.Store(v)
	sl.retired.Store(false)
	// The worker pool's lifetime is the server's, not this registering
	// caller's: batches run on Server.base (cancelled by Close) and the stop
	// channel joins the workers, so threading a request-scoped ctx here
	// would tear down the pool when the admin request that loaded the model
	// completes.
	if created {
		//lint:ignore ipslint/ctxflow workers outlive the caller; cancellation reaches batches via Server.base and the stop channel
		sl.gate.start(s.cfg.WorkersPerModel)
	}

	met := s.metrics()
	if v.id > 1 {
		met.Counter("serve.models.swaps").Inc()
	}
	met.Gauge("serve.models.loaded").Set(float64(r.activeCount()))
	obs.Log(ctx).Info("model registered", "op", "serve.register",
		"model", name, "version", v.id, "source", source,
		"shapelets", len(m.Shapelets), "classes", len(m.SVM.Classes))
	return infoFor(name, sl, ""), nil
}

// LoadFile loads a saved model file and registers it under name.  A damaged
// file comes back as the typed errs.ErrBadInput that core.LoadModel
// guarantees, so an admin load of a corrupt artifact is a 400, never a
// crashed daemon.
func (s *Server) LoadFile(ctx context.Context, name, path string) (ModelInfo, error) {
	sp := s.cfg.Obs.Root().Child("serve.load")
	defer sp.End()
	sp.SetString("model", name)
	sp.SetString("path", path)
	m, err := core.LoadModelFile(path)
	if err != nil {
		obs.Log(ctx).Warn("model load failed", obs.ErrAttrs(err)...)
		return ModelInfo{}, errs.Wrap(errs.StageServe, "serve.load", name, err)
	}
	info, err := s.Register(ctx, name, path, m)
	if err != nil {
		return ModelInfo{}, err
	}
	sp.SetInt("version", info.Version)
	return info, nil
}

// Alias makes alias resolve to the slot of target.  Aliases are how a
// deployment exposes a stable routing name ("prod") over versioned loads.
func (s *Server) Alias(ctx context.Context, alias, target string) (ModelInfo, error) {
	if alias == "" || target == "" {
		return ModelInfo{}, errs.BadInput(errs.StageServe, "serve.alias", alias, "alias and target must be non-empty")
	}
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if canonical, ok := r.aliases[target]; ok {
		target = canonical // aliasing an alias lands on the canonical slot
	}
	sl := r.slots[target]
	if sl == nil {
		return ModelInfo{}, notFound("serve.alias", target)
	}
	if _, exists := r.slots[alias]; exists {
		return ModelInfo{}, errs.BadInput(errs.StageServe, "serve.alias", alias,
			"%q already names a loaded model", alias)
	}
	r.aliases[alias] = target
	obs.Log(ctx).Info("alias created", "op", "serve.alias", "alias", alias, "target", target)
	return infoFor(alias, sl, target), nil
}

// Retire stops serving name: admission starts refusing with a typed 503 and
// queued requests for it fail the same way at execution.  The slot (and its
// workers) stay, so a later Register revives the name with a fresh version.
func (s *Server) Retire(ctx context.Context, name string) (ModelInfo, error) {
	sl, err := s.reg.resolve(name)
	if err != nil {
		return ModelInfo{}, err
	}
	sl.retired.Store(true)
	met := s.metrics()
	met.Counter("serve.models.retired").Inc()
	met.Gauge("serve.models.loaded").Set(float64(s.reg.activeCount()))
	obs.Log(ctx).Info("model retired", "op", "serve.retire", "model", sl.name)
	return infoFor(sl.name, sl, ""), nil
}

// List returns every registered name — canonical slots and aliases — sorted
// by name for deterministic admin output.
func (s *Server) List() []ModelInfo {
	r := s.reg
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.slots)+len(r.aliases))
	for name := range r.slots {
		names = append(names, name)
	}
	for alias := range r.aliases {
		names = append(names, alias)
	}
	sort.Strings(names)
	out := make([]ModelInfo, 0, len(names))
	for _, name := range names {
		if target, ok := r.aliases[name]; ok {
			out = append(out, infoFor(name, r.slots[target], target))
			continue
		}
		out = append(out, infoFor(name, r.slots[name], ""))
	}
	return out
}

// infoFor snapshots a slot into its admin view.
func infoFor(name string, sl *slot, aliasOf string) ModelInfo {
	info := ModelInfo{Name: name, State: "active", AliasOf: aliasOf}
	if sl.retired.Load() {
		info.State = "retired"
	}
	if v := sl.cur.Load(); v != nil {
		info.Version = v.id
		info.Source = v.source
		info.Shapelets = len(v.model.Shapelets)
		info.Classes = len(v.model.SVM.Classes)
	}
	return info
}

// resolve maps a request's model name (or alias) to its slot.
func (r *registry) resolve(name string) (*slot, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if canonical, ok := r.aliases[name]; ok {
		name = canonical
	}
	sl := r.slots[name]
	if sl == nil {
		return nil, notFound("serve.resolve", name)
	}
	return sl, nil
}

// activeCount counts non-retired slots; callers hold no particular lock —
// the count feeds a gauge, slight staleness is fine.
func (r *registry) activeCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, sl := range r.slots {
		if !sl.retired.Load() {
			n++
		}
	}
	return n
}

// stopGates signals every worker pool to flush and exit.
func (r *registry) stopGates() {
	r.mu.RLock()
	defer r.mu.RUnlock()
	for _, sl := range r.slots {
		sl.gate.stopOnce()
	}
}

// waitGates blocks until every worker has exited.  Slots are never deleted
// (retire keeps them for revival), so the looked-up gates stay valid after
// the lock drops.
func (r *registry) waitGates() {
	r.mu.RLock()
	names := make([]string, 0, len(r.slots))
	for name := range r.slots {
		names = append(names, name)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, name := range names {
		r.mu.RLock()
		sl := r.slots[name]
		r.mu.RUnlock()
		sl.gate.wg.Wait()
	}
}
