package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"ips/internal/faulty"
	"ips/internal/obs"
	"ips/internal/stream"
)

// streamChunk marshals one {"points": [...]} body.
func streamChunk(t *testing.T, points []float64) []byte {
	t.Helper()
	buf, err := json.Marshal(streamRequest{Points: points})
	if err != nil {
		t.Fatalf("marshal chunk: %v", err)
	}
	return buf
}

// doStream issues one streaming request and decodes the success body.
func doStream(t *testing.T, method, url string, body []byte) (*http.Response, streamResponse, []byte) {
	t.Helper()
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("new request: %v", err)
	}
	if len(body) > 0 {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	var sr streamResponse
	if resp.StatusCode == http.StatusOK && method != http.MethodDelete {
		if err := json.Unmarshal(raw, &sr); err != nil {
			t.Fatalf("unmarshal %s: %v", raw, err)
		}
	}
	return resp, sr, raw
}

// shortestShapelet returns the server's default stream window for the suite
// model: the shortest shapelet length.
func shortestShapelet(t *testing.T) int {
	t.Helper()
	m, _ := testModel(t)
	w := 0
	for _, sh := range m.Shapelets {
		if w == 0 || len(sh.Values) < w {
			w = len(sh.Values)
		}
	}
	if w == 0 {
		t.Fatal("suite model has no shapelets")
	}
	return w
}

// TestStreamLifecycle drives the full session arc — create with the first
// chunk, append the rest point-by-point, close — and pins every response to
// a directly-driven stream.Stream built with the same configuration: the
// HTTP layer must add routing and admission, never change results.
func TestStreamLifecycle(t *testing.T) {
	m, train := testModel(t)
	_, hs := testServer(t, Config{})
	series := train.Instances[0].Values
	window := shortestShapelet(t)

	direct, err := stream.New(stream.Config{
		Window:    window,
		Shapelets: m.Shapelets,
		Scaler:    m.Scaler,
		SVM:       m.SVM,
		MaxPoints: 1 << 20,
	})
	if err != nil {
		t.Fatalf("direct stream: %v", err)
	}

	first := []float64(series[:4])
	resp, sr, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", streamChunk(t, first))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d body %s", resp.StatusCode, raw)
	}
	if sr.Session == "" || sr.Model != "planted" || sr.Version != 1 {
		t.Fatalf("create response: %+v", sr)
	}
	wantUp, err := direct.Append(context.Background(), first)
	if err != nil {
		t.Fatalf("direct append: %v", err)
	}
	checkStreamResp(t, sr, wantUp, 0)

	for k, v := range series[4:] {
		resp, sr, raw = doStream(t, http.MethodPost,
			hs.URL+"/v1/stream?session="+sr.Session, streamChunk(t, []float64{v}))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("append %d: status %d body %s", k, resp.StatusCode, raw)
		}
		wantUp, err = direct.Append(context.Background(), []float64{v})
		if err != nil {
			t.Fatalf("direct append %d: %v", k, err)
		}
		checkStreamResp(t, sr, wantUp, k+1)
	}
	if sr.Prediction == nil {
		t.Fatal("full series streamed, no prediction")
	}

	resp, _, raw = doStream(t, http.MethodDelete, hs.URL+"/v1/stream?session="+sr.Session, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d body %s", resp.StatusCode, raw)
	}
	var cr streamCloseResponse
	if err := json.Unmarshal(raw, &cr); err != nil {
		t.Fatalf("close body %s: %v", raw, err)
	}
	if !cr.Closed || cr.N != len(series) {
		t.Fatalf("close response: %+v", cr)
	}
	// The session is gone: another append is a 404.
	resp, _, _ = doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+cr.Session, streamChunk(t, []float64{0}))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("append after close: status %d, want 404", resp.StatusCode)
	}
}

// checkStreamResp pins a wire response to a direct stream.Update bitwise.
func checkStreamResp(t *testing.T, sr streamResponse, up stream.Update, step int) {
	t.Helper()
	if sr.N != up.N || sr.Windows != up.Windows {
		t.Fatalf("step %d: n/windows = %d/%d, want %d/%d", step, sr.N, sr.Windows, up.N, up.Windows)
	}
	if up.HasPred != (sr.Prediction != nil) {
		t.Fatalf("step %d: prediction presence = %v, want %v", step, sr.Prediction != nil, up.HasPred)
	}
	if up.HasPred && *sr.Prediction != up.Pred {
		t.Fatalf("step %d: prediction = %d, want %d", step, *sr.Prediction, up.Pred)
	}
	if sr.Drift != up.Drift || sr.Motif != up.Motif || sr.Discord != up.Discord {
		t.Fatalf("step %d: drift/motif/discord = %v/%d/%d, want %v/%d/%d",
			step, sr.Drift, sr.Motif, sr.Discord, up.Drift, up.Motif, up.Discord)
	}
	if math.Float64bits(sr.MotifDist) != math.Float64bits(up.MotifDist) ||
		math.Float64bits(sr.DiscordDist) != math.Float64bits(up.DiscordDist) {
		t.Fatalf("step %d: dists = %v/%v, want %v/%v", step, sr.MotifDist, sr.DiscordDist, up.MotifDist, up.DiscordDist)
	}
}

// TestStreamAdmission pins the typed refusal taxonomy of the streaming
// route: session caps 429, point caps 429, unknown sessions 404, bad
// windows and bodies 400.
func TestStreamAdmission(t *testing.T) {
	_, hs := testServer(t, Config{MaxStreams: 1, MaxStreamPoints: 16})

	resp, sr, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d body %s", resp.StatusCode, raw)
	}
	// Second session exceeds MaxStreams.
	resp, _, raw = doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", nil)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-cap create: status %d body %s, want 429", resp.StatusCode, raw)
	}
	// An append that would exceed MaxStreamPoints is refused whole.
	resp, _, raw = doStream(t, http.MethodPost,
		hs.URL+"/v1/stream?session="+sr.Session, streamChunk(t, make([]float64, 17)))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-points append: status %d body %s, want 429", resp.StatusCode, raw)
	}
	// The refused append changed nothing; an in-cap append still lands.
	resp, got, raw := doStream(t, http.MethodPost,
		hs.URL+"/v1/stream?session="+sr.Session, streamChunk(t, make([]float64, 16)))
	if resp.StatusCode != http.StatusOK || got.N != 16 {
		t.Fatalf("in-cap append: status %d n %d body %s", resp.StatusCode, got.N, raw)
	}
	// Closing the session frees its MaxStreams slot.
	if resp, _, _ = doStream(t, http.MethodDelete, hs.URL+"/v1/stream?session="+sr.Session, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("close: status %d", resp.StatusCode)
	}
	if resp, _, _ = doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("create after close: status %d", resp.StatusCode)
	}

	for _, tc := range []struct {
		name, method, path string
		body               []byte
		want               int
	}{
		{"unknown session", http.MethodPost, "/v1/stream?session=s-999", streamChunk(t, []float64{1}), http.StatusNotFound},
		{"delete unknown", http.MethodDelete, "/v1/stream?session=s-999", nil, http.StatusNotFound},
		{"unknown model", http.MethodPost, "/v1/stream?model=ghost", nil, http.StatusNotFound},
		{"missing params", http.MethodPost, "/v1/stream", nil, http.StatusBadRequest},
		{"missing session on delete", http.MethodDelete, "/v1/stream", nil, http.StatusBadRequest},
		{"bad window", http.MethodPost, "/v1/stream?model=planted&window=0", nil, http.StatusBadRequest},
		{"bad timeout", http.MethodPost, "/v1/stream?model=planted&timeout_ms=potato", nil, http.StatusBadRequest},
		{"non-finite point", http.MethodPost, "/v1/stream?model=planted", []byte(`{"points":[1,"NaN"]}`), http.StatusBadRequest},
		{"unknown field", http.MethodPost, "/v1/stream?model=planted", []byte(`{"pts":[1]}`), http.StatusBadRequest},
		{"trailing garbage", http.MethodPost, "/v1/stream?model=planted", []byte(`{"points":[1]} extra`), http.StatusBadRequest},
	} {
		resp, _, raw := doStream(t, tc.method, hs.URL+tc.path, tc.body)
		if resp.StatusCode != tc.want {
			t.Errorf("%s: status %d body %s, want %d", tc.name, resp.StatusCode, raw, tc.want)
		}
	}
}

// TestStreamDrainAndRetire pins the availability taxonomy: a draining
// server refuses creates and appends (503) while DELETE keeps working, and
// a retired model refuses both for its pinned sessions.
func TestStreamDrainAndRetire(t *testing.T) {
	s, hs := testServer(t, Config{})
	resp, sr, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", streamChunk(t, []float64{1, 2, 3}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d body %s", resp.StatusCode, raw)
	}

	if _, err := s.Retire(context.Background(), "planted"); err != nil {
		t.Fatalf("retire: %v", err)
	}
	resp, _, raw = doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+sr.Session, streamChunk(t, []float64{4}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append to retired: status %d body %s, want 503", resp.StatusCode, raw)
	}
	resp, _, raw = doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("create on retired: status %d body %s, want 503", resp.StatusCode, raw)
	}

	s.StartDrain()
	resp, _, raw = doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+sr.Session, streamChunk(t, []float64{4}))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("append while draining: status %d body %s, want 503", resp.StatusCode, raw)
	}
	// Graceful drain still releases sessions.
	resp, _, raw = doStream(t, http.MethodDelete, hs.URL+"/v1/stream?session="+sr.Session, nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("close while draining: status %d body %s", resp.StatusCode, raw)
	}
	if n := s.streams.count(); n != 0 {
		t.Fatalf("%d sessions left after drain close", n)
	}
}

// TestStreamTSVChunk pins the second body encoding: a one-row UCR TSV chunk
// (label ignored) lands the same points as JSON.
func TestStreamTSVChunk(t *testing.T) {
	_, hs := testServer(t, Config{})
	req, err := http.NewRequest(http.MethodPost, hs.URL+"/v1/stream?model=planted",
		strings.NewReader("0\t1.5\t2.5\t3.5\n"))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "text/tab-separated-values")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("TSV create: status %d body %s", resp.StatusCode, raw)
	}
	var sr streamResponse
	if err := json.Unmarshal(raw, &sr); err != nil {
		t.Fatal(err)
	}
	if sr.N != 3 {
		t.Fatalf("TSV chunk ingested %d points, want 3", sr.N)
	}
}

// TestStreamConcurrentSessions hammers the route from many goroutines —
// concurrent creates, interleaved appends to separate sessions, and
// concurrent appends to ONE shared session — and checks the table drains to
// zero with no goroutine leaks.  Run under -race this is the data-race gate
// for the session layer.
func TestStreamConcurrentSessions(t *testing.T) {
	m, _ := testModel(t)
	lc := faulty.NewLeakCheck()
	s := NewServer(context.Background(), Config{Obs: obs.New("stream-race-test")})
	if _, err := s.Register(context.Background(), "planted", "test", m); err != nil {
		t.Fatalf("register: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	const workers = 8

	// Shared session first: appends must serialise, total N must add up.
	resp, shared, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create shared: status %d body %s", resp.StatusCode, raw)
	}
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			pts := make([]float64, 5)
			for i := range pts {
				pts[i] = float64(g*31+i) / 7
			}
			// Private session per goroutine, plus appends to the shared one.
			resp, own, _ := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", streamChunk(t, pts))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("goroutine %d create: status %d", g, resp.StatusCode)
				return
			}
			for k := 0; k < 4; k++ {
				if resp, _, _ = doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+own.Session, streamChunk(t, pts)); resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d own append: status %d", g, resp.StatusCode)
				}
				if resp, _, _ = doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+shared.Session, streamChunk(t, pts)); resp.StatusCode != http.StatusOK {
					t.Errorf("goroutine %d shared append: status %d", g, resp.StatusCode)
				}
			}
			if resp, _, _ = doStream(t, http.MethodDelete, hs.URL+"/v1/stream?session="+own.Session, nil); resp.StatusCode != http.StatusOK {
				t.Errorf("goroutine %d close: status %d", g, resp.StatusCode)
			}
		}(g)
	}
	wg.Wait()
	resp, final, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+shared.Session, streamChunk(t, nil))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("final shared probe: status %d body %s", resp.StatusCode, raw)
	}
	if want := workers * 4 * 5; final.N != want {
		t.Fatalf("shared session has %d points, want %d (lost appends)", final.N, want)
	}
	if resp, _, _ = doStream(t, http.MethodDelete, hs.URL+"/v1/stream?session="+shared.Session, nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("close shared: status %d", resp.StatusCode)
	}
	if n := s.streams.count(); n != 0 {
		t.Fatalf("%d sessions still open", n)
	}
	hs.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("close: %v", err)
	}
	http.DefaultClient.CloseIdleConnections()
	if leaked := lc.Done(3 * time.Second); leaked != "" {
		t.Fatalf("leaked goroutines:\n%s", leaked)
	}
}

// TestStreamSessionPinsVersion pins hot-swap consistency: a session created
// before a model reload keeps answering from the version it was created
// against, while new sessions land on the new version.
func TestStreamSessionPinsVersion(t *testing.T) {
	m, _ := testModel(t)
	s, hs := testServer(t, Config{})

	resp, old, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", streamChunk(t, []float64{1, 2}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create: status %d body %s", resp.StatusCode, raw)
	}
	if _, err := s.Register(context.Background(), "planted", "swap", m); err != nil {
		t.Fatalf("re-register: %v", err)
	}
	resp, got, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?session="+old.Session, streamChunk(t, []float64{3}))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("append after swap: status %d body %s", resp.StatusCode, raw)
	}
	if got.Version != old.Version {
		t.Fatalf("session switched versions mid-life: %d -> %d", old.Version, got.Version)
	}
	resp, fresh, _ := doStream(t, http.MethodPost, hs.URL+"/v1/stream?model=planted", nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("create after swap: status %d", resp.StatusCode)
	}
	if fresh.Version != old.Version+1 {
		t.Fatalf("new session version = %d, want %d", fresh.Version, old.Version+1)
	}
}

// TestStreamGoldenError pins the wire shape of a typed streaming failure.
func TestStreamGoldenError(t *testing.T) {
	_, hs := testServer(t, Config{})
	resp, _, raw := doStream(t, http.MethodPost, hs.URL+"/v1/stream?session=s-404", streamChunk(t, []float64{1}))
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("status %d, want 404", resp.StatusCode)
	}
	golden := `{"error":"ips: serve: serve.stream [session s-404]: bad input: model not found: \"session s-404\"","class":"bad-input","stage":"serve","op":"serve.stream","status":404}` + "\n"
	if string(raw) != golden {
		t.Fatalf("error body:\n got %s\nwant %s", raw, golden)
	}
}
