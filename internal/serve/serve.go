// Package serve is the model-serving layer behind cmd/ipsd: a versioned
// in-memory model registry with atomic hot-swap, a per-model batching
// admission gate, and stdlib net/http handlers for classification and
// shapelet-transform requests.
//
// The serving path is built directly on the substrate the earlier PRs laid
// down.  Saved models (core.LoadModelFile) load into registry slots whose
// active version is an atomic pointer: a hot-swap publishes a fully built
// immutable version in one store, in-flight batches keep the version they
// resolved (old versions drain, they are never torn out from under a
// request), and every batch group resolves the pointer exactly once so no
// request can observe half of one model and half of another.
//
// Requests are admitted through a bounded per-model queue drained by a
// per-model worker pool.  Each worker coalesces whatever is queued (up to
// Config.MaxBatch) into one shapelet-transform pass over a single batched
// distance evaluation, which amortizes the dist prepared-statistics cache
// across concurrent requests; per-model pools isolate a hot model from
// starving the others.  Overload is explicit and typed: a full queue maps
// to errs.ErrOverload (HTTP 429), a draining server or retired model to
// errs.ErrUnavailable (HTTP 503), and a deadline that fires while a request
// waits in the queue to errs.ErrCanceled with context.DeadlineExceeded
// (HTTP 504) — the job is skipped, never executed.
//
// Observability rides the existing obs layer: per-route latency histograms
// with streaming p50/p95/p99, admission and batching counters, and — when
// mounted by ipsd — the debug server's pprof/metrics/flight endpoints next
// to the serving routes.
package serve

import (
	"context"
	"sync/atomic"
	"time"

	"ips/internal/dist"
	"ips/internal/obs"
)

// Config parameterises a Server.  The zero value serves with the defaults
// noted on each field.
type Config struct {
	// QueueDepth bounds each model's admission queue (default 256).  A full
	// queue rejects with a typed 429 instead of queueing without bound.
	QueueDepth int
	// MaxBatch caps how many queued requests one worker coalesces into a
	// single transform pass (default 64).
	MaxBatch int
	// WorkersPerModel sizes each model's worker pool (default 1).  Workers
	// parallelise across batch groups; within a group the transform runs
	// sequentially, so responses are byte-identical for any value.
	WorkersPerModel int
	// DefaultTimeout is the per-request deadline when the client does not
	// pass ?timeout_ms (default 10s).
	DefaultTimeout time.Duration
	// MaxTimeout caps the client-requested deadline (default 60s).
	MaxTimeout time.Duration
	// MaxBodyBytes bounds request bodies (default 16 MiB); larger bodies
	// get a typed 413.
	MaxBodyBytes int64
	// Kernel forces the distance kernel for every model's batch evaluation
	// (default auto; kernel choice never changes float64 results).  Request
	// series are scratch-prepared per batch, which always resolves to the
	// rolling kernel — the knob exists for parity with the CLIs.
	Kernel dist.Kernel
	// MaxStreams caps concurrently open streaming sessions (default 1024).
	// A create that would exceed it is refused with a typed 429.
	MaxStreams int
	// MaxStreamPoints caps the total points one streaming session may
	// ingest (default 1<<20).  An append that would exceed it is refused
	// whole with a typed 429 before any state changes.
	MaxStreamPoints int
	// Precision selects the distance-kernel arithmetic width for every
	// transform the server runs.  The float64 zero value keeps responses
	// byte-identical to the offline pipeline; dist.PrecisionFloat32 opts into
	// the single-precision throughput variant within documented tolerance.
	// Applies to versions registered after the change (versions bind their
	// precision at load).
	Precision dist.Precision
	// Obs receives metrics (route histograms, admission counters) and the
	// admin-operation spans.  Nil means observability off; the serving path
	// then updates nothing.
	Obs *obs.Observer
	// gateHold, when non-nil (tests only), makes every gate worker wait for
	// one token per batch group, so tests can pile jobs into a queue and
	// observe exactly how they coalesce.
	gateHold chan struct{}
}

// withDefaults fills zero fields.
func (c Config) withDefaults() Config {
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.WorkersPerModel <= 0 {
		c.WorkersPerModel = 1
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 10 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 60 * time.Second
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 16 << 20
	}
	if c.MaxStreams <= 0 {
		c.MaxStreams = 1024
	}
	if c.MaxStreamPoints <= 0 {
		c.MaxStreamPoints = 1 << 20
	}
	return c
}

// Server owns the model registry and the admission gates.  Create with
// NewServer, mount its routes with Mount or Handler, stop with Close.
type Server struct {
	cfg      Config
	reg      *registry
	streams  sessionTable
	base     context.Context // lifetime context batch execution runs under
	cancel   context.CancelFunc
	draining atomic.Bool
}

// NewServer builds a server whose batch execution and worker lifetime hang
// off ctx: cancelling it hard-stops in-flight work, while Close drains
// gracefully first.  The logger carried by ctx (obs.WithLogger) becomes the
// serving path's logger.
func NewServer(ctx context.Context, cfg Config) *Server {
	if ctx == nil {
		ctx = context.Background()
	}
	s := &Server{cfg: cfg.withDefaults()}
	s.base, s.cancel = context.WithCancel(ctx)
	s.reg = newRegistry(s)
	return s
}

// Draining reports whether StartDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// StartDrain flips the server into drain mode: every subsequent request is
// refused with a typed 503 while already-admitted work keeps executing.
// Call it before shutting the HTTP listener down so load balancers see the
// 503s and stop routing here.
func (s *Server) StartDrain() { s.draining.Store(true) }

// Close drains and stops the server: admission closes (503), the per-model
// workers flush whatever is still queued, and the call returns once every
// worker has exited — or when ctx expires, in which case the remaining work
// is hard-cancelled through the base context before returning ctx's error.
// After Close the server no longer executes anything; requests still fail
// typed (503), they do not hang.
func (s *Server) Close(ctx context.Context) error {
	s.StartDrain()
	s.reg.stopGates()
	done := make(chan struct{})
	go func() {
		s.reg.waitGates()
		close(done)
	}()
	defer s.cancel()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancel() // hard-stop the in-flight batch work
		<-done
		return ctx.Err()
	}
}

// metrics returns the registry the serving path records into (nil-safe).
func (s *Server) metrics() *obs.Registry { return s.cfg.Obs.Metrics() }

// latencyBuckets are the fixed bounds (milliseconds) of the serving latency
// histograms; the P² streaming quantiles ride on the same histograms, so the
// route p50/p95/p99 in /metrics do not depend on these edges.
var latencyBuckets = []float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000}
