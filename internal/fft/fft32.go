package fft

import (
	"errors"
	"math"
	"math/bits"
)

// This file is the single-precision mirror of the complex128 transform: a
// radix-2 Cooley–Tukey core over complex64 plus the padded-series FT32 used
// by the opt-in float32 distance kernels in internal/dist.  Halving the
// element width halves the bytes the cache-bandwidth-bound sliding-dots pass
// moves, which is the whole point of the float32 variant; twiddle factors are
// still generated in float64 and rounded once per butterfly stage, so the
// only precision loss is the float32 arithmetic itself, not sloppy
// trigonometry.

// dft32 is the unchecked complex64 transform core; len(x) must be a power of
// two.
func dft32(x []complex64, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	for size := 2; size <= n; size <<= 1 {
		angle := 2 * math.Pi / float64(size)
		if !inverse {
			angle = -angle
		}
		wStep := complex64(complex(float32(math.Cos(angle)), float32(math.Sin(angle))))
		for start := 0; start < n; start += size {
			w := complex64(complex(1, 0))
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// idft32 is the unchecked inverse transform with 1/n scaling.
func idft32(x []complex64) {
	dft32(x, true)
	inv := 1 / float32(len(x))
	for i := range x {
		x[i] *= complex(inv, 0)
	}
}

// FT32 is the float32 counterpart of FT: the forward complex64 transform of
// a real series zero-padded to a fixed power-of-two length, precomputed once
// and reused across every query slid against the series.  Immutable after
// construction and safe for concurrent use.
type FT32 struct {
	size int
	n    int
	freq []complex64
}

// NewFT32 computes the padded forward transform of t.  size must be a power
// of two with size >= len(t)+m-1 for every query length m the caller intends
// to slide.
func NewFT32(t []float32, size int) (*FT32, error) {
	if err := checkLen(size); err != nil {
		return nil, err
	}
	if size < len(t) {
		return nil, errors.New("fft: transform size smaller than series")
	}
	freq := make([]complex64, size)
	for i, v := range t {
		freq[i] = complex(v, 0)
	}
	dft32(freq, false)
	return &FT32{size: size, n: len(t), freq: freq}, nil
}

// Size returns the transform length.
func (f *FT32) Size() int { return f.size }

// SeriesLen returns the length of the series the transform was built from.
func (f *FT32) SeriesLen() int { return f.n }

// SlidingDotsInto32 computes dot(q, t[j:j+len(q)]) in float32 for every
// window j of the prepared series into out, which must hold
// len(t)-len(q)+1 values.  scratch is an optional reusable buffer, grown
// when its capacity is below Size() and returned so callers can thread it
// through a query loop without reallocating.
func (f *FT32) SlidingDotsInto32(q []float32, out []float32, scratch []complex64) ([]complex64, error) {
	m := len(q)
	w := f.n - m + 1
	if m == 0 || w <= 0 {
		return scratch, errors.New("fft: query length out of range")
	}
	if m+f.n-1 > f.size {
		return scratch, errors.New("fft: transform size too small for query")
	}
	if len(out) < w {
		return scratch, errors.New("fft: output shorter than window count")
	}
	if cap(scratch) < f.size {
		scratch = make([]complex64, f.size)
	}
	scratch = scratch[:f.size]
	for i, v := range q {
		scratch[m-1-i] = complex(v, 0)
	}
	for i := m; i < f.size; i++ {
		scratch[i] = 0
	}
	dft32(scratch, false)
	for i := range scratch {
		scratch[i] *= f.freq[i]
	}
	idft32(scratch)
	for j := 0; j < w; j++ {
		out[j] = real(scratch[m-1+j])
	}
	return scratch, nil
}
