package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"ips/internal/ts"
)

func TestForwardKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := []complex128{1, 0, 0, 0}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of a constant is an impulse at DC.
	x = []complex128{1, 1, 1, 1}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(x[0]-4) > 1e-12 {
		t.Fatalf("DC = %v", x[0])
	}
	for i := 1; i < 4; i++ {
		if cmplx.Abs(x[i]) > 1e-12 {
			t.Fatalf("bin %d = %v", i, x[i])
		}
	}
}

func TestForwardMatchesDFT(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 64
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
	}
	want := naiveDFT(x)
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if cmplx.Abs(x[i]-want[i]) > 1e-9 {
			t.Fatalf("bin %d: %v vs %v", i, x[i], want[i])
		}
	}
}

func naiveDFT(x []complex128) []complex128 {
	n := len(x)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			angle := -2 * math.Pi * float64(k*j) / float64(n)
			out[k] += x[j] * cmplx.Exp(complex(0, angle))
		}
	}
	return out
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{1, 2, 8, 128} {
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if err := Forward(x); err != nil {
			t.Fatal(err)
		}
		if err := Inverse(x); err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				t.Fatalf("n=%d round trip differs at %d", n, i)
			}
		}
	}
}

func TestNonPowerOfTwoRejected(t *testing.T) {
	x := make([]complex128, 6)
	if err := Forward(x); err == nil {
		t.Fatal("length 6 should be rejected")
	}
	if err := Inverse(x); err == nil {
		t.Fatal("length 6 should be rejected")
	}
	if err := Forward(nil); err != nil {
		t.Fatal("empty input should be a no-op")
	}
}

func TestNextPow2(t *testing.T) {
	cases := map[int]int{0: 1, 1: 1, 2: 2, 3: 4, 4: 4, 5: 8, 1023: 1024, 1024: 1024}
	for in, want := range cases {
		if got := NextPow2(in); got != want {
			t.Fatalf("NextPow2(%d) = %d, want %d", in, got, want)
		}
	}
}

func TestConvolve(t *testing.T) {
	got := Convolve([]float64{1, 2, 3}, []float64{0, 1, 0.5})
	want := []float64{0, 1, 2.5, 4, 1.5}
	if len(got) != len(want) {
		t.Fatalf("conv len = %d", len(got))
	}
	for i := range want {
		if math.Abs(got[i]-want[i]) > 1e-9 {
			t.Fatalf("conv[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if Convolve(nil, []float64{1}) != nil {
		t.Fatal("empty input should give nil")
	}
}

func TestSlidingDotsMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, tc := range []struct{ m, n int }{{3, 10}, {16, 200}, {50, 51}} {
		q := make([]float64, tc.m)
		series := make([]float64, tc.n)
		for i := range q {
			q[i] = rng.NormFloat64()
		}
		for i := range series {
			series[i] = rng.NormFloat64()
		}
		got := SlidingDots(q, series)
		want := ts.SlidingDots(q, series)
		if len(got) != len(want) {
			t.Fatalf("len %d vs %d", len(got), len(want))
		}
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-8 {
				t.Fatalf("m=%d n=%d dots[%d]: %v vs %v", tc.m, tc.n, i, got[i], want[i])
			}
		}
	}
	if SlidingDots([]float64{1, 2, 3}, []float64{1}) != nil {
		t.Fatal("query longer than series should give nil")
	}
}

// Property: Parseval's theorem — energy is preserved by the transform.
func TestParseval(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 << (2 + rng.Intn(6))
		x := make([]complex128, n)
		var timeEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			timeEnergy += real(x[i]) * real(x[i])
		}
		if err := Forward(x); err != nil {
			return false
		}
		var freqEnergy float64
		for _, v := range x {
			freqEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		freqEnergy /= float64(n)
		return ts.ApproxEqual(timeEnergy, freqEnergy, 1e-6*(1+timeEnergy))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFFT1024(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(rng.NormFloat64(), 0)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		buf := make([]complex128, len(x))
		copy(buf, x)
		Forward(buf)
	}
}
