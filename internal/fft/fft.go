// Package fft implements the radix-2 Cooley–Tukey fast Fourier transform
// used by the MASS distance-profile algorithm in package mp.  Inputs whose
// length is not a power of two are zero-padded by the convolution helpers.
package fft

import (
	"errors"
	"math"
	"math/bits"
)

// Forward computes the in-place FFT of x, whose length must be a power of
// two (including 1).
func Forward(x []complex128) error {
	if err := checkLen(len(x)); err != nil {
		return err
	}
	dft(x, false)
	return nil
}

// Inverse computes the in-place inverse FFT of x (scaled by 1/len(x)),
// whose length must be a power of two.
func Inverse(x []complex128) error {
	if err := checkLen(len(x)); err != nil {
		return err
	}
	idft(x)
	return nil
}

func checkLen(n int) error {
	if n&(n-1) != 0 {
		return errors.New("fft: length must be a power of two")
	}
	return nil
}

// idft is the unchecked inverse transform with 1/n scaling; len(x) must be
// a power of two.
func idft(x []complex128) {
	dft(x, true)
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
}

// dft is the unchecked transform core; len(x) must be a power of two.
func dft(x []complex128, inverse bool) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.TrailingZeros(uint(n)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	// Butterflies.
	for size := 2; size <= n; size <<= 1 {
		angle := 2 * math.Pi / float64(size)
		if !inverse {
			angle = -angle
		}
		wStep := complex(math.Cos(angle), math.Sin(angle))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			half := size / 2
			for k := 0; k < half; k++ {
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
				w *= wStep
			}
		}
	}
}

// NextPow2 returns the smallest power of two >= n (and 1 for n <= 1).
func NextPow2(n int) int {
	if n <= 1 {
		return 1
	}
	return 1 << bits.Len(uint(n-1))
}

// Convolve returns the linear convolution of a and b (length
// len(a)+len(b)-1) computed via FFT in O(N log N).
func Convolve(a, b []float64) []float64 {
	if len(a) == 0 || len(b) == 0 {
		return nil
	}
	outLen := len(a) + len(b) - 1
	n := NextPow2(outLen)
	fa := make([]complex128, n)
	fb := make([]complex128, n)
	for i, v := range a {
		fa[i] = complex(v, 0)
	}
	for i, v := range b {
		fb[i] = complex(v, 0)
	}
	// Lengths are powers of two by construction, so the unchecked core
	// applies directly.
	dft(fa, false)
	dft(fb, false)
	for i := range fa {
		fa[i] *= fb[i]
	}
	idft(fa)
	out := make([]float64, outLen)
	for i := range out {
		out[i] = real(fa[i])
	}
	return out
}

// FT is the forward transform of a real series zero-padded to a fixed
// power-of-two length, precomputed once and reused across convolutions.
// Batch callers that slide many queries against the same series (the Def. 4
// engine in internal/dist) pay the series transform once and each query then
// costs two transforms instead of three.  FT is immutable after construction
// and safe for concurrent use.
type FT struct {
	size int          // power-of-two transform length
	n    int          // original series length
	freq []complex128 // forward transform of the zero-padded series
}

// NewFT computes the padded forward transform of t.  size must be a power of
// two with size >= len(t)+m-1 for every query length m the caller intends to
// slide (padding beyond the minimum is harmless for linear convolution).
func NewFT(t []float64, size int) (*FT, error) {
	if err := checkLen(size); err != nil {
		return nil, err
	}
	if size < len(t) {
		return nil, errors.New("fft: transform size smaller than series")
	}
	freq := make([]complex128, size)
	for i, v := range t {
		freq[i] = complex(v, 0)
	}
	dft(freq, false)
	return &FT{size: size, n: len(t), freq: freq}, nil
}

// Size returns the transform length.
func (f *FT) Size() int { return f.size }

// SeriesLen returns the length of the series the transform was built from.
func (f *FT) SeriesLen() int { return f.n }

// SlidingDotsInto computes dot(q, t[j:j+len(q)]) for every window j of the
// prepared series into out, which must hold len(t)-len(q)+1 values.  scratch
// is an optional reusable buffer; when its capacity is at least Size() it is
// used in place, otherwise a new one is allocated.  The (possibly new)
// scratch is returned so callers can thread it through a query loop.
func (f *FT) SlidingDotsInto(q, out []float64, scratch []complex128) ([]complex128, error) {
	m := len(q)
	w := f.n - m + 1
	if m == 0 || w <= 0 {
		return scratch, errors.New("fft: query length out of range")
	}
	if m+f.n-1 > f.size {
		return scratch, errors.New("fft: transform size too small for query")
	}
	if len(out) < w {
		return scratch, errors.New("fft: output shorter than window count")
	}
	if cap(scratch) < f.size {
		scratch = make([]complex128, f.size)
	}
	scratch = scratch[:f.size]
	// Reversed query followed by zero padding: convolution with the reversed
	// query is correlation, and the aligned dots live at offsets m-1..m-1+w-1.
	for i, v := range q {
		scratch[m-1-i] = complex(v, 0)
	}
	for i := m; i < f.size; i++ {
		scratch[i] = 0
	}
	dft(scratch, false)
	for i := range scratch {
		scratch[i] *= f.freq[i]
	}
	idft(scratch)
	for j := 0; j < w; j++ {
		out[j] = real(scratch[m-1+j])
	}
	return scratch, nil
}

// SlidingDots returns the dot product of q against every length-|q| window
// of t, computed by FFT convolution in O(N log N): reverse q, convolve, and
// read the aligned segment.  Equivalent to ts.SlidingDots but asymptotically
// faster for long queries.
func SlidingDots(q, t []float64) []float64 {
	m := len(q)
	n := len(t) - m + 1
	if n <= 0 {
		return nil
	}
	rq := make([]float64, m)
	for i, v := range q {
		rq[m-1-i] = v
	}
	conv := Convolve(rq, t)
	out := make([]float64, n)
	copy(out, conv[m-1:m-1+n])
	return out
}
