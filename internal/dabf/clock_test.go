package dabf

import "time"

// testingClock isolates the monotonic clock used by timing-sensitive tests.
func testingClock() int64 { return time.Now().UnixNano() }
