package dabf

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"ips/internal/ip"
	"ips/internal/lsh"
	"ips/internal/ts"
)

func TestBloomBasics(t *testing.T) {
	b := NewBloom(100, 0.01)
	keys := []string{"alpha", "beta", "gamma"}
	for _, k := range keys {
		b.Add([]byte(k))
	}
	for _, k := range keys {
		if !b.Contains([]byte(k)) {
			t.Fatalf("inserted key %q reported absent", k)
		}
	}
	if b.Count() != 3 {
		t.Fatalf("count = %d", b.Count())
	}
	// False positive rate should stay near the target under load.
	b = NewBloom(1000, 0.01)
	for i := 0; i < 1000; i++ {
		b.Add([]byte{byte(i), byte(i >> 8), 1})
	}
	fp := 0
	const probes = 5000
	for i := 0; i < probes; i++ {
		if b.Contains([]byte{byte(i), byte(i >> 8), 2}) {
			fp++
		}
	}
	if rate := float64(fp) / probes; rate > 0.05 {
		t.Fatalf("false positive rate = %v", rate)
	}
	if est := b.EstimatedFPRate(); est <= 0 || est > 0.05 {
		t.Fatalf("estimated fp rate = %v", est)
	}
}

func TestBloomDegenerateParams(t *testing.T) {
	b := NewBloom(0, 2.0) // both invalid → defaults
	b.Add([]byte("x"))
	if !b.Contains([]byte("x")) {
		t.Fatal("degenerate-parameter filter broken")
	}
	if NewBloom(5, 0.5).EstimatedFPRate() != 0 {
		t.Fatal("empty filter should estimate 0 fp rate")
	}
}

func TestDSBF(t *testing.T) {
	cfg := lsh.Config{Kind: lsh.L2, Dim: 16, NumHashes: 4, Width: 4, Seed: 1}
	d := NewDSBF(cfg, 6, 3, 100)
	rng := rand.New(rand.NewSource(2))
	base := make([]float64, 16)
	for i := range base {
		base[i] = rng.NormFloat64() * 3
	}
	d.Add(base)
	// A tiny perturbation should be reported close.
	near := make([]float64, 16)
	for i := range near {
		near[i] = base[i] + 0.01*rng.NormFloat64()
	}
	if !d.CloseToSome(near) {
		t.Fatal("near point not reported close")
	}
	// A far point should usually not be close.
	far := make([]float64, 16)
	for i := range far {
		far[i] = base[i] + 50*rng.NormFloat64()
	}
	if d.CloseToSome(far) {
		t.Fatal("far point reported close")
	}
}

func TestDSBFDefaults(t *testing.T) {
	d := NewDSBF(lsh.Config{Dim: 8}, 0, 0, 10)
	if len(d.families) != 4 || d.threshold != 2 {
		t.Fatalf("defaults: %d families, threshold %d", len(d.families), d.threshold)
	}
}

// twoClassPool builds a pool whose class-0 candidates cluster around one
// shape and class-1 candidates around a very different shape.
func twoClassPool(perClass int, seed int64) *ip.Pool {
	rng := rand.New(rand.NewSource(seed))
	mk := func(base []float64, scale float64) ts.Series {
		out := make(ts.Series, len(base))
		for i, v := range base {
			out[i] = v + scale*rng.NormFloat64()
		}
		return out
	}
	base0 := make([]float64, 24)
	base1 := make([]float64, 24)
	for i := range base0 {
		base0[i] = math.Sin(float64(i) / 3)
		base1[i] = 10 + 5*math.Cos(float64(i)/2)
	}
	pool := &ip.Pool{ByClass: map[int][]ip.Candidate{}}
	for i := 0; i < perClass; i++ {
		pool.ByClass[0] = append(pool.ByClass[0], ip.Candidate{
			Class: 0, Kind: ip.Motif, Values: mk(base0, 0.05),
		})
		pool.ByClass[1] = append(pool.ByClass[1], ip.Candidate{
			Class: 1, Kind: ip.Motif, Values: mk(base1, 0.05),
		})
	}
	return pool
}

func TestBuildProducesRankedBucketsAndFit(t *testing.T) {
	pool := twoClassPool(40, 3)
	d, err := Build(pool, Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.PerClass) != 2 {
		t.Fatalf("class filters = %d", len(d.PerClass))
	}
	for class, cf := range d.PerClass {
		if len(cf.Buckets) == 0 {
			t.Fatalf("class %d has no buckets", class)
		}
		total := 0
		for i, b := range cf.Buckets {
			total += b.Count
			if i > 0 && cf.Buckets[i].NormDist < cf.Buckets[i-1].NormDist {
				t.Fatalf("class %d buckets not ranked", class)
			}
		}
		if total != 40 {
			t.Fatalf("class %d bucket counts sum to %d", class, total)
		}
		if cf.Dist == nil || math.IsNaN(cf.FitNMSE) {
			t.Fatalf("class %d missing distribution fit", class)
		}
		if cf.Sigma <= 0 {
			t.Fatalf("class %d sigma = %v", class, cf.Sigma)
		}
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(nil, Config{}); err == nil {
		t.Fatal("nil pool should error")
	}
	if _, err := Build(&ip.Pool{ByClass: map[int][]ip.Candidate{}}, Config{}); err == nil {
		t.Fatal("empty pool should error")
	}
}

func TestCloseToMostSemantics(t *testing.T) {
	pool := twoClassPool(60, 5)
	d, err := Build(pool, Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	cf0 := d.PerClass[0]
	// A class-0 candidate is close to most of class 0.
	member := pool.ByClass[0][0].Values
	if !cf0.CloseToMost(member, d.Cfg.Dim, d.Cfg.Sigma) {
		t.Fatal("class member not close to most of its own class")
	}
	// A class-1 candidate (very different scale/shape) is definitely not.
	outsider := pool.ByClass[1][0].Values
	if cf0.CloseToMost(outsider, d.Cfg.Dim, d.Cfg.Sigma) {
		t.Fatal("outsider reported close to most of class 0")
	}
}

func TestBucketIndex(t *testing.T) {
	pool := twoClassPool(50, 7)
	d, err := Build(pool, Config{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	cf := d.PerClass[0]
	// Known candidates map inside the bucket range.
	for _, cand := range pool.ByClass[0] {
		idx := cf.BucketIndex(cand.Values, d.Cfg.Dim)
		if idx < 0 || idx >= len(cf.Buckets) {
			t.Fatalf("bucket index %d out of range [0,%d)", idx, len(cf.Buckets))
		}
	}
	// An unseen far-away candidate maps to a valid (edge) bucket.
	far := make(ts.Series, 24)
	for i := range far {
		far[i] = 1e4
	}
	idx := cf.BucketIndex(far, d.Cfg.Dim)
	if idx < 0 || idx >= len(cf.Buckets) {
		t.Fatalf("unseen candidate bucket index %d out of range", idx)
	}
	// Two near-identical candidates land in nearby (usually equal) buckets.
	a := pool.ByClass[0][0].Values
	b := a.Clone()
	b[0] += 1e-9
	ia, ib := cf.BucketIndex(a, d.Cfg.Dim), cf.BucketIndex(b, d.Cfg.Dim)
	if diff := ia - ib; diff < -1 || diff > 1 {
		t.Fatalf("near-identical candidates map to distant buckets %d vs %d", ia, ib)
	}
}

func TestPruneRemovesCrossClassCandidates(t *testing.T) {
	pool := twoClassPool(40, 9)
	// Add to class 0 a candidate that mimics class 1 exactly: it should be
	// pruned because it is close to most of class 1.
	impostor := pool.ByClass[1][0].Values.Clone()
	pool.ByClass[0] = append(pool.ByClass[0], ip.Candidate{
		Class: 0, Kind: ip.Motif, Values: impostor,
	})
	d, err := Build(pool, Config{Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	pruned, st := Prune(pool, d)
	if st.Examined != pool.Size() {
		t.Fatalf("examined %d, want %d", st.Examined, pool.Size())
	}
	for _, cand := range pruned.ByClass[0] {
		if ts.EuclideanDist(lsh.Resample(cand.Values, 24), impostor) < 1e-9 {
			t.Fatal("impostor survived pruning")
		}
	}
	// The genuinely distinctive candidates survive.
	if len(pruned.ByClass[0]) == 0 || len(pruned.ByClass[1]) == 0 {
		t.Fatalf("pruning starved a class: %d / %d", len(pruned.ByClass[0]), len(pruned.ByClass[1]))
	}
}

func TestPruneKeepsFallbackMotif(t *testing.T) {
	// Two identical classes: everything is close to everything, so pruning
	// would remove all candidates — the fallback must keep one motif each.
	rng := rand.New(rand.NewSource(11))
	pool := &ip.Pool{ByClass: map[int][]ip.Candidate{}}
	base := make([]float64, 16)
	for i := range base {
		base[i] = rng.NormFloat64()
	}
	for c := 0; c < 2; c++ {
		for i := 0; i < 20; i++ {
			vals := make(ts.Series, 16)
			for j := range vals {
				vals[j] = base[j] + 0.01*rng.NormFloat64()
			}
			pool.ByClass[c] = append(pool.ByClass[c], ip.Candidate{Class: c, Kind: ip.Motif, Values: vals})
		}
	}
	d, err := Build(pool, Config{Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	pruned, _ := Prune(pool, d)
	for c := 0; c < 2; c++ {
		motifs := 0
		for _, cand := range pruned.ByClass[c] {
			if cand.Kind == ip.Motif {
				motifs++
			}
		}
		if motifs == 0 {
			t.Fatalf("class %d has no motif after pruning", c)
		}
	}
}

func TestNaivePruneAgreesDirectionally(t *testing.T) {
	pool := twoClassPool(30, 13)
	impostor := pool.ByClass[1][0].Values.Clone()
	pool.ByClass[0] = append(pool.ByClass[0], ip.Candidate{Class: 0, Kind: ip.Motif, Values: impostor})
	pruned, st, err := NaivePrune(context.Background(), pool, 24, 3)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pruned == 0 {
		t.Fatal("naive prune removed nothing")
	}
	for _, cand := range pruned.ByClass[0] {
		if ts.EuclideanDist(cand.Values, impostor) < 1e-9 {
			t.Fatal("impostor survived naive pruning")
		}
	}
	// Defaults path.
	if _, _, err := NaivePrune(context.Background(), pool, 0, 0); err != nil {
		t.Fatal(err)
	}
}

func TestDABFFasterThanNaive(t *testing.T) {
	if testing.Short() {
		t.Skip("timing comparison skipped in -short mode")
	}
	pool := twoClassPool(400, 14)
	d, err := Build(pool, Config{Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	t0 := nowNs()
	Prune(pool, d)
	dabfNs := nowNs() - t0
	t0 = nowNs()
	if _, _, err := NaivePrune(context.Background(), pool, 32, 3); err != nil {
		t.Fatal(err)
	}
	naiveNs := nowNs() - t0
	// The asymptotic gap (linear vs quadratic in |Φ|) should be visible at
	// this size; allow generous slack for timer noise.
	if dabfNs > naiveNs {
		t.Logf("warning: DABF prune (%d ns) not faster than naive (%d ns) at this size", dabfNs, naiveNs)
	}
}

func nowNs() int64 {
	return testingClock()
}
