package dabf

import (
	"ips/internal/lsh"
)

// DSBF is a distance-sensitive Bloom filter in the spirit of Goswami et
// al. [15]: it answers whether a query vector is *close to some element* of
// the inserted set.  It keeps several independent LSH families; an element
// inserts its signature under each family into a Bloom filter, and a query is
// reported close when at least Threshold of its signatures are present.
//
// The IPS paper generalises this structure to "close to *most* elements"
// (the DABF below); the DSBF is kept for ablation and tests.
type DSBF struct {
	families  []lsh.Family
	filters   []*Bloom
	dim       int
	threshold int
}

// NewDSBF builds a distance-sensitive filter with the given number of
// independent LSH repetitions; a query passes when at least threshold of
// them collide.  cfg.Seed seeds the first family; repetitions use
// consecutive seeds.
func NewDSBF(cfg lsh.Config, repetitions, threshold, expected int) *DSBF {
	if repetitions < 1 {
		repetitions = 4
	}
	if threshold < 1 {
		threshold = (repetitions + 1) / 2
	}
	d := &DSBF{dim: cfg.Dim, threshold: threshold}
	for i := 0; i < repetitions; i++ {
		c := cfg
		c.Seed = cfg.Seed + int64(i)
		d.families = append(d.families, lsh.New(c))
		d.filters = append(d.filters, NewBloom(expected, 0.01))
	}
	return d
}

// Add inserts a vector (resampled to the filter dimension internally).
func (d *DSBF) Add(x []float64) {
	v := lsh.Resample(x, d.families[0].Dim())
	for i, f := range d.families {
		d.filters[i].Add([]byte(f.Signature(v)))
	}
}

// CloseToSome reports whether x is possibly close to some inserted element.
func (d *DSBF) CloseToSome(x []float64) bool {
	v := lsh.Resample(x, d.families[0].Dim())
	hits := 0
	for i, f := range d.families {
		if d.filters[i].Contains([]byte(f.Signature(v))) {
			hits++
			if hits >= d.threshold {
				return true
			}
		}
	}
	return false
}
