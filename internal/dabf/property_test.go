package dabf

import (
	"math/rand"
	"testing"
	"testing/quick"

	"ips/internal/ts"
)

// Property: CloseToMost is monotone in θ — a candidate close at a tighter
// threshold stays close at any looser one.
func TestCloseToMostMonotoneInTheta(t *testing.T) {
	pool := twoClassPool(40, 100)
	d, err := Build(pool, Config{Seed: 101})
	if err != nil {
		t.Fatal(err)
	}
	cf := d.PerClass[0]
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		vals := make(ts.Series, 24)
		for i := range vals {
			vals[i] = rng.NormFloat64() * 5
		}
		prev := false
		for _, theta := range []float64{0.5, 1, 2, 3, 5, 10} {
			now := cf.CloseToMost(vals, d.Cfg.Dim, theta)
			if prev && !now {
				return false // was close at a tighter θ, not at a looser one
			}
			prev = now
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestProjectValuesDimension(t *testing.T) {
	pool := twoClassPool(20, 102)
	d, err := Build(pool, Config{NumHashes: 6, Seed: 103})
	if err != nil {
		t.Fatal(err)
	}
	cf := d.PerClass[0]
	for _, n := range []int{5, 24, 100} {
		vals := make(ts.Series, n)
		p := cf.ProjectValues(vals, d.Cfg.Dim)
		if len(p) != 6 {
			t.Fatalf("projection of length-%d input has %d dims, want 6", n, len(p))
		}
	}
}

// Property: pruning never grows the pool and never invents candidates.
func TestPruneNeverGrows(t *testing.T) {
	f := func(seed int64) bool {
		pool := twoClassPool(10+int(seed%30+30)%30, seed)
		d, err := Build(pool, Config{Seed: seed})
		if err != nil {
			return false
		}
		pruned, st := Prune(pool, d)
		if pruned.Size() > pool.Size() {
			return false
		}
		return st.Examined == pool.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
