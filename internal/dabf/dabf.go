package dabf

import (
	"context"
	"fmt"
	"math"
	"sort"
	"strconv"

	"ips/internal/errs"
	"ips/internal/ip"
	"ips/internal/lsh"
	"ips/internal/obs"
	"ips/internal/stats"
)

// Config parameterises DABF construction (Algorithm 2).
type Config struct {
	LSH       lsh.Kind // hash family (paper default: L2, Table VII)
	Dim       int      // resampled subsequence dimension (default 32)
	NumHashes int      // hash functions per family (default 8)
	Width     float64  // p-stable quantisation width (default 1)
	Bins      int      // histogram bins for distribution fitting (default 16)
	Sigma     float64  // z-score threshold θ of the 3σ rule (default 3)
	// MinKeep is the minimum number of motif candidates Prune retains per
	// class (default 10): when the θσ rule would remove more, the motifs
	// with the largest z-scores against other classes — the most
	// distinctive ones — are kept, so top-k selection never starves.
	MinKeep int
	Seed    int64
}

// Defaults fills zero-valued fields.
func (c Config) Defaults() Config {
	if c.Dim <= 0 {
		c.Dim = 32
	}
	if c.NumHashes <= 0 {
		c.NumHashes = 8
	}
	if c.Width <= 0 {
		c.Width = 1
	}
	if c.Bins <= 0 {
		c.Bins = 16
	}
	if c.Sigma <= 0 {
		c.Sigma = 3
	}
	if c.MinKeep <= 0 {
		c.MinKeep = 10
	}
	return c
}

// Bucket is one LSH bucket: candidates sharing a signature, summarised by
// their centre and its distance from the origin (Alg. 2 line 7).
type Bucket struct {
	Signature string
	Center    []float64
	Count     int
	NormDist  float64 // ‖Center‖₂
}

// ClassFilter is the per-class structure DABF_C = (LSH_C, Distribution_C).
type ClassFilter struct {
	Class   int
	Family  lsh.Family
	Buckets []Bucket // ranked by NormDist ascending
	// Dist is the best-fit distribution over the z-normalised projected
	// norms of the class's candidates; Mu/Sigma are the z-normalisation
	// parameters of the raw norms.
	Dist      stats.Distribution
	Mu, Sigma float64
	FitNMSE   float64
	// Degenerate marks a class whose projected norms carry no spread —
	// fewer than two candidates, or all norms identical — so no
	// distribution can be fitted meaningfully.  A degenerate filter answers
	// every CloseToMost query with false (zScore returns +Inf): it never
	// prunes candidates of other classes, the safe direction for a filter
	// whose statistics are fiction.  Build still records Dist/Mu/Sigma for
	// inspection, but downstream pruning ignores them.
	Degenerate bool

	sigToRank map[string]int
}

// DABF is the distribution-aware bloom filter over all classes.
type DABF struct {
	PerClass map[int]*ClassFilter
	Cfg      Config
}

// Build runs Algorithm 2: per class, hash every candidate (motifs and
// discords) into buckets, rank buckets by centre distance from the origin,
// z-normalise the projected norms, and fit the best distribution by NMSE.
func Build(pool *ip.Pool, cfg Config) (*DABF, error) {
	return BuildSpan(context.Background(), pool, cfg, nil)
}

// BuildSpan is Build with observability and cooperative cancellation: a
// sub-span per class filter (annotated with the chosen distribution, its
// NMSE, and the bucket count) and a bucket-occupancy histogram hang off sp.
// A nil span disables all of it; the filter is identical either way.  The
// context is checked once per class; a cancelled build returns a nil filter
// and an error matching errs.ErrCanceled.
func BuildSpan(ctx context.Context, pool *ip.Pool, cfg Config, sp *obs.Span) (*DABF, error) {
	cfg = cfg.Defaults()
	if pool == nil || len(pool.ByClass) == 0 {
		return nil, errs.BadInput(errs.StagePruning, "dabf.build", "", "empty candidate pool")
	}
	occupancy := sp.Metrics().Histogram("dabf.bucket_occupancy", []float64{1, 2, 4, 8, 16, 32, 64, 128})
	d := &DABF{PerClass: map[int]*ClassFilter{}, Cfg: cfg}
	classes := pool.Classes()
	sort.Ints(classes)
	for ci, class := range classes {
		if err := errs.Ctx(ctx, errs.StagePruning, "dabf.build"); err != nil {
			return nil, err
		}
		cands := pool.ByClass[class]
		if len(cands) == 0 {
			continue
		}
		fsp := sp.Child("fit.class-" + strconv.Itoa(class))
		family := lsh.New(lsh.Config{
			Kind:      cfg.LSH,
			Dim:       cfg.Dim,
			NumHashes: cfg.NumHashes,
			Width:     cfg.Width,
			Seed:      cfg.Seed + int64(ci),
		})
		cf := &ClassFilter{Class: class, Family: family, sigToRank: map[string]int{}}

		// Bucket inserting (Alg. 2 lines 4-6).
		type acc struct {
			sum   []float64
			count int
		}
		buckets := map[string]*acc{}
		norms := make([]float64, 0, len(cands))
		for _, cand := range cands {
			v := lsh.Resample(cand.Values, cfg.Dim)
			proj := family.Project(v)
			var n float64
			for _, p := range proj {
				n += p * p
			}
			norms = append(norms, math.Sqrt(n))
			sig := family.Signature(v)
			a := buckets[sig]
			if a == nil {
				a = &acc{sum: make([]float64, len(proj))}
				buckets[sig] = a
			}
			for i, p := range proj {
				a.sum[i] += p
			}
			a.count++
		}
		for sig, a := range buckets {
			center := make([]float64, len(a.sum))
			var n float64
			for i, s := range a.sum {
				center[i] = s / float64(a.count)
				n += center[i] * center[i]
			}
			cf.Buckets = append(cf.Buckets, Bucket{
				Signature: sig,
				Center:    center,
				Count:     a.count,
				NormDist:  math.Sqrt(n),
			})
		}
		// Rank buckets by distance from the origin (Alg. 2 line 7).
		sort.Slice(cf.Buckets, func(i, j int) bool {
			//lint:ignore ipslint/floateq comparator tie-break: exact inequality falls through to the signature order
			if cf.Buckets[i].NormDist != cf.Buckets[j].NormDist {
				return cf.Buckets[i].NormDist < cf.Buckets[j].NormDist
			}
			return cf.Buckets[i].Signature < cf.Buckets[j].Signature
		})
		for rank, b := range cf.Buckets {
			cf.sigToRank[b.Signature] = rank
		}

		// Z-normalise the norms and fit the best distribution
		// (Alg. 2 lines 8-10, Formula 10).  A class with fewer than two
		// candidates, or whose norms all coincide, has no spread to
		// normalise by: the old sigma→1e-9 substitution turned the z-scores
		// into ±1e9-scale noise that pruned (or spared) other classes'
		// candidates on floating-point accidents.  Such a filter is marked
		// Degenerate instead — it still exists (so FitsByClass and the DT
		// projection keep working) but never prunes anything.
		mu, sigma, _ := stats.Moments(norms)
		if len(norms) < 2 || sigma == 0 {
			cf.Degenerate = true
			fsp.SetString("degenerate", "true")
		}
		if sigma == 0 {
			sigma = 1e-9
		}
		cf.Mu, cf.Sigma = mu, sigma
		z := make([]float64, len(norms))
		for i, n := range norms {
			z[i] = (n - mu) / sigma
		}
		bins := cfg.Bins
		if bins > len(z) {
			bins = len(z)
		}
		if bins < 1 {
			bins = 1
		}
		// The 3σ rule presumes a bell-shaped fit; following Table III (which
		// observes only Norm and Gamma across the archive) the DABF chooses
		// between those two families by NMSE.
		hist, err := stats.NewHistogram(z, bins)
		if err != nil {
			fsp.End()
			return nil, errs.Wrap(errs.StagePruning, "dabf.build", "",
				fmt.Errorf("class %d distribution fit: %w", class, err))
		}
		norm := stats.FitNormal(z)
		gamma := stats.FitGamma(z)
		nNMSE, gNMSE := hist.NMSE(norm), hist.NMSE(gamma)
		if nNMSE <= gNMSE {
			cf.Dist, cf.FitNMSE = norm, nNMSE
		} else {
			cf.Dist, cf.FitNMSE = gamma, gNMSE
		}
		d.PerClass[class] = cf
		for _, b := range cf.Buckets {
			occupancy.Observe(float64(b.Count))
		}
		fsp.SetInt("candidates", int64(len(cands)))
		fsp.SetInt("buckets", int64(len(cf.Buckets)))
		fsp.SetString("dist", cf.Dist.Name())
		fsp.SetFloat("nmse", cf.FitNMSE)
		fsp.End()
		obs.Log(ctx).Debug("class filter fitted", "op", "dabf.build",
			"class", class, "candidates", len(cands),
			"buckets", len(cf.Buckets), "dist", cf.Dist.Name(),
			"nmse", cf.FitNMSE, "degenerate", cf.Degenerate)
	}
	if len(d.PerClass) == 0 {
		return nil, errs.BadInput(errs.StagePruning, "dabf.build", "", "no class filters built")
	}
	return d, nil
}

// zScore returns the position of the candidate's projected norm within the
// class's fitted distribution, in standard deviations.  A degenerate filter
// (see ClassFilter.Degenerate) places everything infinitely far away, so it
// never claims a candidate as "close".
func (cf *ClassFilter) zScore(values []float64, dim int) float64 {
	if cf.Degenerate {
		return math.Inf(1)
	}
	v := lsh.Resample(values, dim)
	n := lsh.Norm(cf.Family, v)
	z := (n - cf.Mu) / cf.Sigma
	std := cf.Dist.Std()
	if std <= 0 {
		std = 1e-9
	}
	return (z - cf.Dist.Mean()) / std
}

// CloseToMost answers the DABF query of Alg. 3: true means the candidate is
// "possibly close to most elements" of this class (its normalised projected
// norm lies within θ standard deviations of the fitted distribution), false
// means "definitely not close to most elements".
func (cf *ClassFilter) CloseToMost(values []float64, dim int, theta float64) bool {
	return math.Abs(cf.zScore(values, dim)) <= theta
}

// ProjectValues resamples a subsequence to the filter dimension and maps it
// through the class LSH projection — the ‖LSH(·)‖ space the DT optimisation
// (Formula 15) measures distances in.
func (cf *ClassFilter) ProjectValues(values []float64, dim int) []float64 {
	return cf.Family.Project(lsh.Resample(values, dim))
}

// BucketIndex returns the rank B_i of the candidate's bucket in the class's
// distance-ranked bucket list; unseen signatures are mapped to the bucket
// with the nearest centre norm.  This is the quantity the DT optimisation
// (Formula 15/16) substitutes for raw distances.
func (cf *ClassFilter) BucketIndex(values []float64, dim int) int {
	v := lsh.Resample(values, dim)
	if rank, ok := cf.sigToRank[cf.Family.Signature(v)]; ok {
		return rank
	}
	n := lsh.Norm(cf.Family, v)
	// Binary search over the sorted NormDist values.
	lo, hi := 0, len(cf.Buckets)-1
	if hi < 0 {
		return 0
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if cf.Buckets[mid].NormDist < n {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo > 0 && math.Abs(cf.Buckets[lo-1].NormDist-n) < math.Abs(cf.Buckets[lo].NormDist-n) {
		return lo - 1
	}
	return lo
}

// PruneStats summarises a pruning pass.
type PruneStats struct {
	Examined int
	Pruned   int
}

// Prune runs Algorithm 3: every candidate is queried against the DABF of
// every *other* class; candidates possibly close to most elements of some
// other class are removed.  A new pool is returned; the input is untouched.
// At least cfg.MinKeep motif candidates survive per class (the most
// distinctive ones by z-score) so downstream selection never starves.
func Prune(pool *ip.Pool, d *DABF) (*ip.Pool, PruneStats) {
	out, st, err := PruneSpan(context.Background(), pool, d, nil)
	if err != nil {
		// Unreachable: a background context never cancels and the queries
		// have no other failure mode.
		return &ip.Pool{ByClass: map[int][]ip.Candidate{}}, st
	}
	return out, st
}

// PruneSpan is Prune with observability and cooperative cancellation.  It
// feeds four counters: dabf.prune.examined / accepted / rejected, and
// dabf.prune.false_positives — candidates the filter answered "possibly
// close" for but the MinKeep floor restored as the most distinctive of
// their class, i.e. the measurable proxy for the filter's false-positive
// side.  Counts are accumulated locally and published once, so the
// per-candidate loop carries no atomic traffic.  The context is checked
// once per pruneCheckEvery candidates; a cancelled prune returns a nil pool
// and an error matching errs.ErrCanceled.
func PruneSpan(ctx context.Context, pool *ip.Pool, d *DABF, sp *obs.Span) (*ip.Pool, PruneStats, error) {
	cfg := d.Cfg
	out := &ip.Pool{ByClass: map[int][]ip.Candidate{}}
	var st PruneStats
	refilled := 0
	for class, cands := range pool.ByClass {
		var kept []ip.Candidate
		// Pruned motifs ranked by distinctiveness for the MinKeep fallback.
		type rejected struct {
			idx int
			z   float64 // smallest |z| across other classes; larger = more distinctive
		}
		var rejectedMotifs []rejected
		keptMotifs := 0
		for i, cand := range cands {
			if i%pruneCheckEvery == 0 {
				if err := errs.Ctx(ctx, errs.StagePruning, "dabf.prune"); err != nil {
					return nil, st, err
				}
			}
			st.Examined++
			worst := math.Inf(1) // smallest |z| across other classes decides pruning
			prune := false
			for otherClass, cf := range d.PerClass {
				if otherClass == class {
					continue
				}
				z := math.Abs(cf.zScore(cand.Values, cfg.Dim))
				if z < worst {
					worst = z
				}
				if z <= cfg.Sigma {
					prune = true
				}
			}
			if prune {
				st.Pruned++
				if cand.Kind == ip.Motif {
					rejectedMotifs = append(rejectedMotifs, rejected{idx: i, z: worst})
				}
				continue
			}
			if cand.Kind == ip.Motif {
				keptMotifs++
			}
			kept = append(kept, cand)
		}
		if keptMotifs < cfg.MinKeep && len(rejectedMotifs) > 0 {
			sort.Slice(rejectedMotifs, func(a, b int) bool {
				return rejectedMotifs[a].z > rejectedMotifs[b].z
			})
			for _, r := range rejectedMotifs {
				if keptMotifs >= cfg.MinKeep {
					break
				}
				kept = append(kept, cands[r.idx])
				keptMotifs++
				st.Pruned--
				refilled++
			}
		}
		out.ByClass[class] = kept
	}
	if m := sp.Metrics(); m != nil {
		m.Counter("dabf.prune.examined").Add(int64(st.Examined))
		m.Counter("dabf.prune.accepted").Add(int64(st.Examined - st.Pruned))
		m.Counter("dabf.prune.rejected").Add(int64(st.Pruned))
		m.Counter("dabf.prune.false_positives").Add(int64(refilled))
	}
	sp.SetInt("examined", int64(st.Examined))
	sp.SetInt("pruned", int64(st.Pruned))
	sp.SetInt("refilled", int64(refilled))
	obs.Log(ctx).Debug("pruning stats", "op", "dabf.prune",
		"examined", st.Examined, "pruned", st.Pruned, "refilled", refilled)
	return out, st, nil
}

// pruneCheckEvery bounds the pruning loops' cancellation latency: the
// context is polled every this many candidates (ctx.Err takes a runtime
// mutex, so per-candidate polling would add contention for nothing — a
// single candidate's query work is microseconds).
const pruneCheckEvery = 64

// NaivePrune is the quadratic baseline the DABF replaces (§III-B): for every
// candidate it computes the raw distance to every candidate of every other
// class and prunes when at least the Chebyshev fraction (1 − 1/θ²) of them
// lie below that class's closeness radius (the mean intra-class pairwise
// distance).  Complexity O(|Φ|² · Dim) versus the DABF's O(|Φ| · Dim).
//
// A class with fewer than two candidates has no intra-class pairwise
// distances and therefore no closeness radius; such classes never prune
// anyone (they are skipped in the per-candidate loop), mirroring the
// Degenerate fallback of the DABF proper.  Previously a missing map entry
// silently read as radius 0, which spuriously counted exact duplicates as
// "close" while claiming every other candidate was not — neither direction
// intended.  The context is checked once per pruneCheckEvery candidates;
// as the quadratic baseline this is the pruning path that most needs
// cancellation.
func NaivePrune(ctx context.Context, pool *ip.Pool, dim int, theta float64) (*ip.Pool, PruneStats, error) {
	if dim <= 0 {
		dim = 32
	}
	if theta <= 0 {
		theta = 3
	}
	// Resample every candidate once.
	resampled := map[int][][]float64{}
	for class, cands := range pool.ByClass {
		vs := make([][]float64, len(cands))
		for i, c := range cands {
			vs[i] = lsh.Resample(c.Values, dim)
		}
		resampled[class] = vs
	}
	// Closeness radius per class: mean + θ·std of the intra-class pairwise
	// distances, mirroring the θσ tolerance the DABF applies in hash space.
	// Classes without at least one pair get no entry — see above.
	radius := map[int]float64{}
	for class, vs := range resampled {
		var ds []float64
		for i := 0; i < len(vs); i++ {
			for j := i + 1; j < len(vs); j++ {
				ds = append(ds, euclid(vs[i], vs[j]))
			}
		}
		if len(ds) > 0 {
			mu, sigma, _ := stats.Moments(ds)
			radius[class] = mu + theta*sigma
		}
	}
	quota := 1 - 1/(theta*theta) // Chebyshev's "most elements"
	const minKeep = 10           // same starvation floor as the DABF Prune
	out := &ip.Pool{ByClass: map[int][]ip.Candidate{}}
	var st PruneStats
	for class, cands := range pool.ByClass {
		var kept []ip.Candidate
		keptMotifs := 0
		type rejected struct {
			idx      int
			maxClose float64 // largest close-fraction seen; smaller = more distinctive
		}
		var rejectedMotifs []rejected
		for i, cand := range cands {
			if i%pruneCheckEvery == 0 {
				if err := errs.Ctx(ctx, errs.StagePruning, "dabf.naive-prune"); err != nil {
					return nil, st, err
				}
			}
			st.Examined++
			v := resampled[class][i]
			prune := false
			worstClose := 0.0
			for otherClass, ovs := range resampled {
				if otherClass == class || len(ovs) == 0 {
					continue
				}
				r, ok := radius[otherClass]
				if !ok {
					continue // single-candidate class: no radius, prunes no one
				}
				close := 0
				for _, ov := range ovs {
					if euclid(v, ov) <= r {
						close++
					}
				}
				frac := float64(close) / float64(len(ovs))
				if frac > worstClose {
					worstClose = frac
				}
				if frac >= quota {
					prune = true
				}
			}
			if prune {
				st.Pruned++
				if cand.Kind == ip.Motif {
					rejectedMotifs = append(rejectedMotifs, rejected{idx: i, maxClose: worstClose})
				}
				continue
			}
			if cand.Kind == ip.Motif {
				keptMotifs++
			}
			kept = append(kept, cand)
		}
		if keptMotifs < minKeep && len(rejectedMotifs) > 0 {
			sort.Slice(rejectedMotifs, func(a, b int) bool {
				return rejectedMotifs[a].maxClose < rejectedMotifs[b].maxClose
			})
			for _, r := range rejectedMotifs {
				if keptMotifs >= minKeep {
					break
				}
				kept = append(kept, cands[r.idx])
				keptMotifs++
				st.Pruned--
			}
		}
		out.ByClass[class] = kept
	}
	return out, st, nil
}

func euclid(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return math.Sqrt(s)
}
