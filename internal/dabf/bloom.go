// Package dabf implements the distribution-aware bloom filter of §III-B/C of
// the IPS paper (Algorithms 2 and 3), together with the two prior structures
// it generalises — the classic Bloom filter [4] and the distance-sensitive
// Bloom filter [15] — and the naive quadratic pruning method it is compared
// against (Table V, Fig. 10a).
package dabf

import (
	"encoding/binary"
	"hash/fnv"
	"math"
)

// Bloom is a classic Bloom filter over byte-string keys: queries answer
// "possibly in the set" or "definitely not in the set".
type Bloom struct {
	bits []uint64
	m    uint64 // number of bits
	k    int    // number of hash functions
	n    int    // inserted elements
}

// NewBloom sizes a Bloom filter for the expected number of elements and
// target false-positive probability.
func NewBloom(expected int, fpRate float64) *Bloom {
	if expected < 1 {
		expected = 1
	}
	if fpRate <= 0 || fpRate >= 1 {
		fpRate = 0.01
	}
	mBits := math.Ceil(-float64(expected) * math.Log(fpRate) / (math.Ln2 * math.Ln2))
	k := int(math.Round(mBits / float64(expected) * math.Ln2))
	if k < 1 {
		k = 1
	}
	m := uint64(mBits)
	if m < 64 {
		m = 64
	}
	return &Bloom{bits: make([]uint64, (m+63)/64), m: m, k: k}
}

// hashPair derives two independent 64-bit hashes of key; the k probe
// positions are the standard Kirsch–Mitzenmacher combination h1 + i·h2.
func hashPair(key []byte) (uint64, uint64) {
	h := fnv.New64a()
	h.Write(key)
	h1 := h.Sum64()
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], h1)
	h.Reset()
	h.Write(buf[:])
	h.Write(key)
	return h1, h.Sum64()
}

// Add inserts key into the filter.
func (b *Bloom) Add(key []byte) {
	h1, h2 := hashPair(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		b.bits[pos/64] |= 1 << (pos % 64)
	}
	b.n++
}

// Contains reports whether key is possibly in the set.  A false return is
// definitive.
func (b *Bloom) Contains(key []byte) bool {
	h1, h2 := hashPair(key)
	for i := 0; i < b.k; i++ {
		pos := (h1 + uint64(i)*h2) % b.m
		if b.bits[pos/64]&(1<<(pos%64)) == 0 {
			return false
		}
	}
	return true
}

// Count returns the number of inserted elements.
func (b *Bloom) Count() int { return b.n }

// EstimatedFPRate returns the standard (1 − e^{−kn/m})^k estimate for the
// filter's current load.
func (b *Bloom) EstimatedFPRate() float64 {
	if b.n == 0 {
		return 0
	}
	return math.Pow(1-math.Exp(-float64(b.k)*float64(b.n)/float64(b.m)), float64(b.k))
}
