package faulty

import (
	"fmt"
	"runtime"
	"time"

	"ips/internal/obs"
)

// LeakCheck snapshots the goroutine count so a test can assert that a
// (possibly cancelled) run drained its worker pools.  Cancellation returns
// to the caller before the drained workers exit, so Done polls with a
// deadline rather than comparing instantaneously.
type LeakCheck struct {
	before int
}

// NewLeakCheck records the current goroutine count as the baseline.
// Take the baseline before starting the work under test, with no other
// goroutine-spawning tests running concurrently.
func NewLeakCheck() *LeakCheck {
	return &LeakCheck{before: runtime.NumGoroutine()}
}

// Done waits up to timeout for the goroutine count to return to the
// baseline and returns a diagnostic ("" on success) including a full stack
// dump of the leaked goroutines on failure.
func (lc *LeakCheck) Done(timeout time.Duration) string {
	deadline := obs.NewDeadline(timeout)
	for {
		now := runtime.NumGoroutine()
		if now <= lc.before {
			return ""
		}
		if deadline.Exceeded() {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			return fmt.Sprintf("goroutine leak: %d before, %d after %v drain\n%s",
				lc.before, now, timeout, buf[:n])
		}
		time.Sleep(5 * time.Millisecond)
	}
}
