package faulty

import (
	"io"
	"strings"
	"time"
)

// HTTPFault is one misbehaving-client scenario against the serving daemon's
// eval routes, paired with the typed response the serving contract requires:
// a documented HTTP status carrying a JSON error body whose class names an
// errs sentinel — never a panic, never a 200, never a hung connection.
//
// WantStatus 0 marks a fault whose failure is client-side (the client
// cancels and never sees a response); the matrix then asserts the transport
// error and that the server stays healthy for the next request.
type HTTPFault struct {
	Name        string
	ContentType string
	// Body builds a fresh request body per attempt (bodies are one-shot).
	Body func() io.Reader
	// Timeout is the ?timeout_ms to request; 0 keeps the server default.
	Timeout time.Duration
	// CancelAfter, when positive, cancels the request context mid-flight.
	CancelAfter time.Duration
	WantStatus  int
	// WantClass is the obs.ErrClass the JSON error body must carry.
	WantClass string
}

// slowReader trickles its payload one byte per read with a pause before
// each, modelling a client stalled mid-upload.  The serving side must bound
// it with the request deadline, not wait for the body forever.
type slowReader struct {
	data []byte
	gap  time.Duration
}

func (s *slowReader) Read(p []byte) (int, error) {
	if len(s.data) == 0 {
		return 0, io.EOF
	}
	time.Sleep(s.gap)
	p[0] = s.data[0]
	s.data = s.data[1:]
	return 1, nil
}

// SlowBody returns a reader that delivers data one byte at a time with gap
// between bytes.
func SlowBody(data []byte, gap time.Duration) io.Reader {
	return &slowReader{data: data, gap: gap}
}

// HTTPFaults returns the serving fault matrix.  The classify and transform
// routes share a decode path, so the matrix applies to both.
func HTTPFaults() []HTTPFault {
	const jsonCT = "application/json"
	str := func(s string) func() io.Reader {
		return func() io.Reader { return strings.NewReader(s) }
	}
	return []HTTPFault{
		{
			Name:        "truncated-json",
			ContentType: jsonCT,
			Body:        str(`{"instances":[[1.0,2.0,`),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "empty-body",
			ContentType: jsonCT,
			Body:        str(""),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "trailing-garbage",
			ContentType: jsonCT,
			Body:        str(`{"instances":[[1.0,2.0]]} & more`),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "unknown-field",
			ContentType: jsonCT,
			Body:        str(`{"instanzes":[[1.0,2.0]]}`),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "nonfinite-value",
			ContentType: jsonCT,
			Body:        str(`{"instances":[[1.0,1e999]]}`),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "empty-instance",
			ContentType: jsonCT,
			Body:        str(`{"instances":[[]]}`),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "wrong-content-type",
			ContentType: "text/plain",
			Body:        str(`{"instances":[[1.0,2.0]]}`),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			Name:        "truncated-tsv",
			ContentType: "text/tab-separated-values",
			Body:        str("0\t1.5\t2.5\t0.5\n0\t1.7\t2e"),
			WantStatus:  400,
			WantClass:   "bad-input",
		},
		{
			// The body trickles slower than the requested deadline allows:
			// the ctx-checking body reader must trip the deadline and answer
			// 504 instead of waiting out the upload.
			Name:        "slow-client",
			ContentType: jsonCT,
			Body: func() io.Reader {
				return SlowBody([]byte(`{"instances":[[1.0,2.0,3.0,4.0]]}`), 40*time.Millisecond)
			},
			Timeout:    150 * time.Millisecond,
			WantStatus: 504,
			WantClass:  "canceled",
		},
		{
			// The client hangs up mid-upload.  No response reaches it (the
			// transport reports the cancellation); the server must shrug the
			// request off and stay healthy.
			Name:        "canceled-request",
			ContentType: jsonCT,
			Body: func() io.Reader {
				return SlowBody([]byte(`{"instances":[[1.0,2.0,3.0,4.0]]}`), 40*time.Millisecond)
			},
			CancelAfter: 100 * time.Millisecond,
			WantStatus:  0,
		},
	}
}
