package faulty_test

// Robustness coverage for the streaming layer: the fault injectors drive
// corrupted series through mp.NewIncremental and stream.Append, which must
// reject bad points typed (errs.ErrBadInput) without mutating state, survive
// degenerate-but-legal input (constant runs, single points), and stop
// cleanly under the cancellation storm with no goroutine leaks.

import (
	"context"
	"errors"
	"math"
	"testing"
	"time"

	"ips/internal/classify"
	"ips/internal/errs"
	"ips/internal/faulty"
	"ips/internal/mp"
	"ips/internal/stream"
	"ips/internal/ts"
)

// streamShapelets cuts a few subsequences of the planted dataset into a
// shapelet set, so the stream under test exercises the delta transform.
func streamShapelets(d *ts.Dataset) []classify.Shapelet {
	var out []classify.Shapelet
	for i, ln := range []int{5, 9, 16} {
		in := d.Instances[i%len(d.Instances)]
		out = append(out, classify.Shapelet{Class: in.Label, Values: in.Values[:ln].Clone()})
	}
	return out
}

// TestStreamFaultMatrix drives every value-level fault through the streaming
// append path.  WantErr faults that corrupt values must come back as typed
// ErrBadInput with the stream state untouched; survivable faults must append
// cleanly end to end.
func TestStreamFaultMatrix(t *testing.T) {
	clean := faulty.Planted(4, 48, 2, 3301)
	shapelets := streamShapelets(clean)
	for _, f := range faulty.Faults() {
		t.Run(f.Name, func(t *testing.T) {
			corrupted := f.Apply(clean)
			if len(corrupted.Instances) == 0 {
				t.Skip("dataset-level fault, no series to stream")
			}
			st, err := stream.New(stream.Config{Window: 6, Shapelets: shapelets})
			if err != nil {
				t.Fatalf("stream.New: %v", err)
			}
			var sawErr error
			for _, in := range corrupted.Instances {
				before := st.N()
				if _, err := st.Append(context.Background(), in.Values); err != nil {
					if msg := faulty.CheckTyped(err); msg != "" {
						t.Fatal(msg)
					}
					if !errors.Is(err, errs.ErrBadInput) {
						t.Fatalf("append error is not ErrBadInput: %v", err)
					}
					if st.N() != before {
						t.Fatalf("rejected append mutated state: %d -> %d", before, st.N())
					}
					sawErr = err
					continue
				}
			}
			if f.WantErr && sawErr == nil && hasBadValue(corrupted) {
				t.Fatal("value-corrupting fault streamed without a typed rejection")
			}
			// The stream stays usable after any mix of rejections.
			if _, err := st.Append(context.Background(), []float64{0.5, 1.5}); err != nil {
				t.Fatalf("append after faults: %v", err)
			}
		})
	}
}

// hasBadValue reports whether any instance carries a non-finite point — the
// only corruption the streaming path itself is responsible for catching.
func hasBadValue(d *ts.Dataset) bool {
	for _, in := range d.Instances {
		for _, v := range in.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return true
			}
		}
	}
	return false
}

// TestIncrementalFaultTyped pins the same contract one layer down, on the
// raw STOMPI state: bad construction and bad appends are typed, and a
// rejected append never corrupts the profile.
func TestIncrementalFaultTyped(t *testing.T) {
	if _, err := mp.NewIncremental([]float64{1, math.NaN()}, 2); faulty.CheckTyped(err) != "" || !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("NaN seed: %v", err)
	}
	inc, err := mp.NewIncremental([]float64{1, 2, 3, 4, 5, 6, 7, 8}, 3)
	if err != nil {
		t.Fatal(err)
	}
	wantP := inc.Profile()
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		err := inc.Append(bad)
		if msg := faulty.CheckTyped(err); msg != "" {
			t.Fatal(msg)
		}
		if !errors.Is(err, errs.ErrBadInput) {
			t.Fatalf("Append(%v): %v", bad, err)
		}
	}
	gotP := inc.Profile()
	for j := range wantP.P {
		if math.Float64bits(wantP.P[j]) != math.Float64bits(gotP.P[j]) || wantP.I[j] != gotP.I[j] {
			t.Fatalf("rejected appends changed profile at %d", j)
		}
	}
}

// TestCancellationStormStream sweeps cancellation across the streaming
// append path: every run must finish or fail as ErrCanceled, the feature
// state must stay consistent (resumable), and no goroutines may leak.
func TestCancellationStormStream(t *testing.T) {
	clean := faulty.Planted(4, 64, 2, 3302)
	shapelets := streamShapelets(clean)
	series := clean.Instances[0].Values
	if msg := faulty.Storm(12, 3*time.Millisecond, func(ctx context.Context) error {
		st, err := stream.New(stream.Config{Window: 8, Shapelets: shapelets})
		if err != nil {
			return err
		}
		for _, in := range clean.Instances {
			if _, err := st.Append(ctx, in.Values); err != nil {
				return err
			}
		}
		return nil
	}); msg != "" {
		t.Fatal(msg)
	}

	// A cancelled append leaves the stream resumable: finishing the series
	// under a live context yields features byte-identical to an uncancelled
	// stream fed the same points.
	ctx, cancel := context.WithCancel(context.Background())
	st, err := stream.New(stream.Config{Window: 8, Shapelets: shapelets})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Append(ctx, series[:20]); err != nil {
		t.Fatal(err)
	}
	cancel()
	if _, err := st.Append(ctx, series[20:]); !errors.Is(err, errs.ErrCanceled) {
		t.Fatalf("append on dead ctx: %v", err)
	}
	if _, err := st.Append(context.Background(), nil); err != nil {
		t.Fatalf("resume append: %v", err)
	}
	want, err := stream.New(stream.Config{Window: 8, Shapelets: shapelets})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := want.Append(context.Background(), series[:20]); err != nil {
		t.Fatal(err)
	}
	for i, v := range want.Features() {
		if math.Float64bits(st.Features()[i]) != math.Float64bits(v) {
			t.Fatalf("feature %d diverged after cancellation: %v != %v", i, st.Features()[i], v)
		}
	}
}
