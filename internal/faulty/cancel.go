package faulty

import (
	"context"
	"errors"
	"fmt"
	"time"

	"ips/internal/errs"
)

// Storm runs fn repeatedly, cancelling each run's context at a different
// point in its lifetime, and checks the cancellation contract on every run:
// fn returns nil (the run beat the cancel) or an error matching
// errs.ErrCanceled, and the worker goroutines drain afterwards.
//
// The cancellation delay sweeps [0, max) linearly across the n runs rather
// than being drawn at random, so a failing delay is reproducible by run
// index while the sweep still lands cancels inside every stage of fn.
// Storm returns a diagnostic string, "" when every run upheld the contract.
func Storm(n int, max time.Duration, fn func(ctx context.Context) error) string {
	lc := NewLeakCheck()
	for i := 0; i < n; i++ {
		delay := max * time.Duration(i) / time.Duration(n)
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		err := fn(ctx)
		cancel()
		if err != nil && !errors.Is(err, errs.ErrCanceled) {
			return fmt.Sprintf("run %d (cancel after %v): error is not ErrCanceled: %v", i, delay, err)
		}
		if msg := CheckTyped(err); msg != "" {
			return fmt.Sprintf("run %d (cancel after %v): %s", i, delay, msg)
		}
	}
	if msg := lc.Done(5 * time.Second); msg != "" {
		return msg
	}
	return ""
}
