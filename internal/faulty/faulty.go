// Package faulty is the fault-injection harness behind the pipeline's
// robustness suite.  It produces the specific malformed inputs the pipeline
// promises to survive — NaN/Inf values, empty datasets and classes,
// zero-length and single-point instances, truncated UCR TSV files — and
// provides the cancellation and goroutine-leak checks that turn "no panic,
// typed error, no leak" into executable assertions.
//
// The package depends only on the substrate (ts, ucr, errs); the pipeline
// packages under test import nothing from here.  The matrix tests live in
// internal/core/failure_test.go and in this package's own test suite, which
// drives the injectors against the public entry points.
package faulty

import (
	"errors"
	"math"
	"math/rand"

	"ips/internal/errs"
	"ips/internal/ts"
)

// Fault is one injected input corruption.  Apply returns a corrupted deep
// copy, leaving the input dataset untouched so one clean dataset can seed
// the whole matrix.
type Fault struct {
	Name string
	// Apply corrupts a copy of d.
	Apply func(d *ts.Dataset) *ts.Dataset
	// WantErr is true when every pipeline entry point must reject the
	// corrupted input with a typed error.  When false the fault is
	// survivable: a run may succeed or fail, but must never panic and any
	// error must still be typed.
	WantErr bool
	// TestSideOK marks a WantErr fault whose corruption is nonetheless
	// legal as test-side input: Model.Predict validates without the
	// two-class requirement, so e.g. a dataset with an emptied class is
	// rejected at train time but accepted at predict time.
	TestSideOK bool
}

// clone deep-copies a dataset so injectors can mutate freely.
func clone(d *ts.Dataset) *ts.Dataset {
	out := &ts.Dataset{Name: d.Name, Instances: make([]ts.Instance, len(d.Instances))}
	for i, in := range d.Instances {
		out.Instances[i] = ts.Instance{Values: in.Values.Clone(), Label: in.Label}
	}
	return out
}

// Faults returns the injection matrix.  Every fault is deterministic: the
// same input dataset yields byte-identical corrupted output, so error
// messages and pipeline behaviour are reproducible across runs.
func Faults() []Fault {
	return []Fault{
		{Name: "nan-value", WantErr: true, Apply: func(d *ts.Dataset) *ts.Dataset {
			c := clone(d)
			in := &c.Instances[len(c.Instances)/2]
			in.Values[len(in.Values)/2] = math.NaN()
			return c
		}},
		{Name: "pos-inf-value", WantErr: true, Apply: func(d *ts.Dataset) *ts.Dataset {
			c := clone(d)
			c.Instances[0].Values[0] = math.Inf(1)
			return c
		}},
		{Name: "neg-inf-value", WantErr: true, Apply: func(d *ts.Dataset) *ts.Dataset {
			c := clone(d)
			last := &c.Instances[len(c.Instances)-1]
			last.Values[len(last.Values)-1] = math.Inf(-1)
			return c
		}},
		{Name: "empty-dataset", WantErr: true, Apply: func(d *ts.Dataset) *ts.Dataset {
			return &ts.Dataset{Name: d.Name}
		}},
		{Name: "empty-class", WantErr: true, TestSideOK: true, Apply: func(d *ts.Dataset) *ts.Dataset {
			// Remove every instance of the highest class, leaving the label
			// space with a hole and (for two-class data) a single class.
			c := clone(d)
			classes := c.Classes()
			top := classes[len(classes)-1]
			kept := c.Instances[:0]
			for _, in := range c.Instances {
				if in.Label != top {
					kept = append(kept, in)
				}
			}
			c.Instances = kept
			return c
		}},
		{Name: "zero-length-instance", WantErr: true, Apply: func(d *ts.Dataset) *ts.Dataset {
			c := clone(d)
			c.Instances[len(c.Instances)/2].Values = nil
			return c
		}},
		{Name: "single-point-instance", Apply: func(d *ts.Dataset) *ts.Dataset {
			// A one-sample series among full-length ones: structurally valid,
			// but shorter than any candidate length.  The pipeline may refuse
			// it or work around it; it must not panic.
			c := clone(d)
			c.Instances[0].Values = ts.Series{1}
			return c
		}},
		{Name: "all-constant", Apply: func(d *ts.Dataset) *ts.Dataset {
			// Zero-variance series: z-normalisation and distribution fitting
			// hit their sigma==0 guards.  Survivable.
			c := clone(d)
			for i := range c.Instances {
				for j := range c.Instances[i].Values {
					c.Instances[i].Values[j] = float64(c.Instances[i].Label)
				}
			}
			return c
		}},
	}
}

// Planted builds the suite's clean seed dataset: classes instances carry a
// class-specific sinusoid planted in noise, so discovery succeeds on the
// uncorrupted input and any matrix failure is attributable to the fault.
func Planted(nPerClass, length, classes int, seed int64) *ts.Dataset {
	rng := rand.New(rand.NewSource(seed))
	pl := length / 4
	d := &ts.Dataset{Name: "faulty-planted"}
	for c := 0; c < classes; c++ {
		for i := 0; i < nPerClass; i++ {
			vals := make(ts.Series, length)
			for j := range vals {
				vals[j] = 0.3 * rng.NormFloat64()
			}
			at := rng.Intn(length - pl)
			for j := 0; j < pl; j++ {
				vals[at+j] += 4 * math.Sin(float64(j)*math.Pi/float64(pl)+float64(c)*2)
			}
			d.Instances = append(d.Instances, ts.Instance{Values: vals, Label: c})
		}
	}
	return d
}

// CheckTyped asserts the structured-error contract on a non-nil err: it
// must unwrap to *errs.Error and classify under exactly the taxonomy's
// sentinels.  It returns a diagnostic string ("" when the contract holds)
// instead of taking testing.TB so both test packages can report it with
// their own context.
func CheckTyped(err error) string {
	if err == nil {
		return ""
	}
	var e *errs.Error
	if !errors.As(err, &e) {
		return "error does not unwrap to *errs.Error: " + err.Error()
	}
	for _, sentinel := range []error{
		errs.ErrCanceled, errs.ErrBadInput, errs.ErrDegenerate,
		errs.ErrNoShapelets, errs.ErrInternal,
		errs.ErrOverload, errs.ErrUnavailable,
	} {
		if errors.Is(err, sentinel) {
			return ""
		}
	}
	return "error matches no taxonomy sentinel: " + err.Error()
}
