package faulty_test

// The robustness suite: every injected fault must yield a typed error or a
// clean result — never a panic, never a goroutine leak — and cancellation
// must stop every stage of the pipeline within its bounded check
// granularity.  Run under -race in CI.

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"ips/internal/classify"
	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/errs"
	"ips/internal/faulty"
	"ips/internal/ip"
	"ips/internal/mp"
	"ips/internal/ts"
	"ips/internal/ucr"
)

func smallOptions(seed int64) core.Options {
	return core.Options{
		IP:   ip.Config{QN: 5, QS: 3, LengthRatios: []float64{0.2, 0.3}, Seed: seed},
		DABF: dabf.Config{Seed: seed},
		K:    3,
	}
}

// entryPoints are the public pipeline operations the matrix drives against
// every fault.  Each returns the run's error; the clean test split lets
// Evaluate and Predict separate train-side from test-side corruption.
func entryPoints(clean *ts.Dataset) map[string]func(ctx context.Context, d *ts.Dataset) error {
	return map[string]func(ctx context.Context, d *ts.Dataset) error{
		"discover": func(ctx context.Context, d *ts.Dataset) error {
			_, err := core.Discover(ctx, d, smallOptions(1))
			return err
		},
		"fit": func(ctx context.Context, d *ts.Dataset) error {
			_, err := core.Fit(ctx, d, smallOptions(2))
			return err
		},
		"evaluate": func(ctx context.Context, d *ts.Dataset) error {
			_, _, err := core.Evaluate(ctx, d, clean, smallOptions(3))
			return err
		},
		"crossval": func(ctx context.Context, d *ts.Dataset) error {
			_, err := core.CrossValidate(ctx, d, smallOptions(4), 3, 5)
			return err
		},
		"predict": func(ctx context.Context, d *ts.Dataset) error {
			m, err := core.Fit(ctx, clean, smallOptions(6))
			if err != nil {
				return err
			}
			_, err = m.Predict(ctx, d)
			return err
		},
	}
}

// runCell executes one (fault, entry point) cell, converting a panic into a
// test failure that names the cell.
func runCell(t *testing.T, name string, fn func() error) (err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", name, r)
		}
	}()
	return fn()
}

func TestFaultMatrix(t *testing.T) {
	clean := faulty.Planted(8, 60, 2, 42)
	lc := faulty.NewLeakCheck()
	for _, fault := range faulty.Faults() {
		corrupted := fault.Apply(clean)
		for op, call := range entryPoints(clean) {
			cell := fault.Name + "/" + op
			err := runCell(t, cell, func() error {
				return call(context.Background(), corrupted)
			})
			wantErr := fault.WantErr && !(op == "predict" && fault.TestSideOK)
			if wantErr && err == nil {
				t.Errorf("%s: corrupted input accepted without error", cell)
			}
			if msg := faulty.CheckTyped(err); msg != "" {
				t.Errorf("%s: %s", cell, msg)
			}
		}
	}
	if msg := lc.Done(5 * time.Second); msg != "" {
		t.Fatal(msg)
	}
}

// TestFaultErrorsDeterministic pins the typed errors: the same fault on the
// same data produces the identical error message on every run, so failures
// are diagnosable from logs alone.
func TestFaultErrorsDeterministic(t *testing.T) {
	clean := faulty.Planted(8, 60, 2, 43)
	for _, fault := range faulty.Faults() {
		if !fault.WantErr {
			continue
		}
		var msgs [2]string
		for i := range msgs {
			_, err := core.Discover(context.Background(), fault.Apply(clean), smallOptions(7))
			if err == nil {
				t.Fatalf("%s: no error", fault.Name)
			}
			msgs[i] = err.Error()
		}
		if msgs[0] != msgs[1] {
			t.Errorf("%s: error message not deterministic:\n  %s\n  %s", fault.Name, msgs[0], msgs[1])
		}
	}
}

// TestTruncatedTSV checks the interrupted-download scenario: the loader
// either rejects the damaged file or produces a dataset the pipeline then
// handles without panicking.
func TestTruncatedTSV(t *testing.T) {
	d := faulty.Planted(10, 40, 2, 44)
	path, err := faulty.WriteTruncatedTSV(t.TempDir(), d)
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := runCellDataset(t, "load", func() (*ts.Dataset, error) { return ucr.LoadTSV(path) })
	if err != nil {
		t.Logf("truncated TSV rejected at load time: %v", err)
		return
	}
	// The truncated tail produced a short final row; discovery on the ragged
	// dataset must not panic.
	derr := runCell(t, "discover-after-truncation", func() error {
		_, err := core.Discover(context.Background(), loaded, smallOptions(8))
		return err
	})
	if msg := faulty.CheckTyped(derr); msg != "" {
		t.Error(msg)
	}
}

func runCellDataset(t *testing.T, name string, fn func() (*ts.Dataset, error)) (d *ts.Dataset, err error) {
	t.Helper()
	defer func() {
		if r := recover(); r != nil {
			t.Fatalf("%s: panic: %v", name, r)
		}
	}()
	return fn()
}

// TestCancellationStormSelfJoin cancels the STOMP kernel at 100 different
// points of its lifetime with a live worker pool.  Run under -race this is
// the central drain-pattern check: producers must never block on a channel
// whose consumers have stopped consuming.
func TestCancellationStormSelfJoin(t *testing.T) {
	series := make([]float64, 2048)
	v := 0.0
	for i := range series {
		v += float64(i%7) - 3
		series[i] = v
	}
	// Time one clean run so the sweep spans the kernel's real lifetime.
	t0 := time.Now()
	if _, err := mp.SelfJoinCtx(context.Background(), series, 64, nil, mp.Options{Workers: 4}); err != nil {
		t.Fatal(err)
	}
	span := time.Since(t0) + time.Millisecond
	if msg := faulty.Storm(100, span, func(ctx context.Context) error {
		_, err := mp.SelfJoinCtx(ctx, series, 64, nil, mp.Options{Workers: 4})
		return err
	}); msg != "" {
		t.Fatal(msg)
	}
}

// TestCancellationStormTransform is the same storm against the shapelet
// transform's worker pool.
func TestCancellationStormTransform(t *testing.T) {
	d := faulty.Planted(20, 120, 2, 45)
	var shapelets []classify.Shapelet
	for i := 0; i < 12; i++ {
		in := d.Instances[i%len(d.Instances)]
		shapelets = append(shapelets, classify.Shapelet{Class: in.Label, Values: in.Values[:24].Clone()})
	}
	t0 := time.Now()
	if _, err := classify.TransformCtx(context.Background(), d, shapelets, 4, nil, nil); err != nil {
		t.Fatal(err)
	}
	span := time.Since(t0) + time.Millisecond
	if msg := faulty.Storm(100, span, func(ctx context.Context) error {
		_, err := classify.TransformCtx(ctx, d, shapelets, 4, nil, nil)
		return err
	}); msg != "" {
		t.Fatal(msg)
	}
}

// TestFitCancelLatency is the acceptance bound: cancelling core.Fit mid-run
// on the quickstart workload returns an ErrCanceled within 250ms of the
// cancel.  Several cancel points are tried; at least one must land mid-run
// (the others may lose the race to a fast Fit, which is fine).
func TestFitCancelLatency(t *testing.T) {
	train, _, err := ucr.GenerateByName("ItalyPowerDemand", ucr.GenConfig{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	opt := core.Options{K: 5}.WithDefaults()
	opt.IP.Seed, opt.DABF.Seed, opt.SVM.Seed = 7, 7, 7

	landed := false
	for _, delay := range []time.Duration{0, time.Millisecond, 5 * time.Millisecond, 20 * time.Millisecond} {
		ctx, cancel := context.WithCancel(context.Background())
		done := make(chan error, 1)
		go func() {
			_, err := core.Fit(ctx, train, opt)
			done <- err
		}()
		time.Sleep(delay)
		t0 := time.Now()
		cancel()
		select {
		case err := <-done:
			latency := time.Since(t0)
			if err == nil {
				continue // Fit beat the cancel; try a later cancel point
			}
			if !errors.Is(err, errs.ErrCanceled) {
				t.Fatalf("cancel after %v: error is not ErrCanceled: %v", delay, err)
			}
			if latency > 250*time.Millisecond {
				t.Fatalf("cancel after %v: Fit took %v to return after cancel, want <= 250ms", delay, latency)
			}
			landed = true
		case <-time.After(5 * time.Second):
			t.Fatalf("cancel after %v: Fit did not return within 5s of cancel", delay)
		}
		cancel()
	}
	if !landed {
		t.Skip("every cancel lost the race to a fast Fit; latency bound not exercised")
	}
}

// TestCanceledContextFailsFast pins the contract that an already-cancelled
// context stops every entry point before any real work, and that the error
// carries both the taxonomy sentinel and the originating context error.
func TestCanceledContextFailsFast(t *testing.T) {
	clean := faulty.Planted(8, 60, 2, 46)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for op, call := range entryPoints(clean) {
		err := call(ctx, clean)
		if err == nil {
			t.Errorf("%s: cancelled context accepted", op)
			continue
		}
		if !errors.Is(err, errs.ErrCanceled) {
			t.Errorf("%s: error does not match ErrCanceled: %v", op, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Errorf("%s: error does not match context.Canceled: %v", op, err)
		}
	}
}

// TestDeadlineErrorMatchesDeadlineExceeded checks the multi-sentinel
// wrapping for timeouts: a deadline-expired run matches ErrCanceled AND
// context.DeadlineExceeded, so callers can distinguish timeout from
// explicit cancel.
func TestDeadlineErrorMatchesDeadlineExceeded(t *testing.T) {
	clean := faulty.Planted(8, 60, 2, 47)
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	time.Sleep(time.Millisecond)
	_, err := core.Discover(ctx, clean, smallOptions(9))
	if err == nil {
		t.Fatal("expired deadline accepted")
	}
	if !errors.Is(err, errs.ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error should match both ErrCanceled and DeadlineExceeded: %v", err)
	}
}

// TestPartialCrossValidation checks the partial-result contract: a cross
// validation cancelled between folds returns the completed folds alongside
// the ErrCanceled error.
func TestPartialCrossValidation(t *testing.T) {
	d := faulty.Planted(12, 50, 2, 48)
	// Cancel after the first fold by tripping the context from a progress
	// point: sweep cancel delays until a run returns 1..folds-1 accuracies.
	for delay := time.Millisecond; delay < time.Second; delay *= 2 {
		ctx, cancel := context.WithTimeout(context.Background(), delay)
		res, err := core.CrossValidate(ctx, d, smallOptions(10), 4, 11)
		cancel()
		if err == nil {
			return // whole CV beat the timeout; contract not violated
		}
		if !errors.Is(err, errs.ErrCanceled) {
			t.Fatalf("cancelled CV error = %v", err)
		}
		if res != nil && len(res.FoldAccuracies) > 0 {
			if len(res.FoldAccuracies) >= 4 {
				t.Fatalf("cancelled CV returned all folds with an error: %+v", res)
			}
			return // partial result observed — contract holds
		}
	}
	t.Skip("no cancel landed between folds; partial-result contract not exercised")
}

// TestLengthsTooShort pins satellite input validation: candidate lengths on
// a series shorter than the minimum candidate length yield a typed error
// from discovery rather than an empty-slice panic downstream.
func TestLengthsTooShort(t *testing.T) {
	d := &ts.Dataset{Name: "tiny"}
	for c := 0; c < 2; c++ {
		for i := 0; i < 4; i++ {
			d.Instances = append(d.Instances, ts.Instance{Values: ts.Series{1, 2}, Label: c})
		}
	}
	_, err := core.Discover(context.Background(), d, smallOptions(12))
	if err == nil {
		t.Fatal("two-point series should not support discovery")
	}
	if msg := faulty.CheckTyped(err); msg != "" {
		t.Fatal(msg)
	}
	if !errors.Is(err, errs.ErrBadInput) {
		t.Fatalf("want ErrBadInput, got %v", err)
	}
}

// TestStormHelperRejectsUntypedErrors guards the harness itself: Storm must
// flag a callee that returns an untyped error on cancellation.
func TestStormHelperRejectsUntypedErrors(t *testing.T) {
	msg := faulty.Storm(3, time.Millisecond, func(ctx context.Context) error {
		<-ctx.Done()
		return fmt.Errorf("plain error: %w", ctx.Err())
	})
	if msg == "" {
		t.Fatal("Storm accepted an untyped cancellation error")
	}
}
