package faulty

import (
	"os"
	"path/filepath"

	"ips/internal/ts"
	"ips/internal/ucr"
)

// WriteTruncatedTSV writes d in the UCR TSV format and then truncates the
// file to two thirds of its size, cutting the tail mid-row (and usually
// mid-number) the way an interrupted download or copy would.  It returns
// the path of the damaged file.
func WriteTruncatedTSV(dir string, d *ts.Dataset) (string, error) {
	path := filepath.Join(dir, d.Name+"_TRAIN.tsv")
	if err := ucr.WriteTSV(path, d); err != nil {
		return "", err
	}
	info, err := os.Stat(path)
	if err != nil {
		return "", err
	}
	if err := os.Truncate(path, info.Size()*2/3); err != nil {
		return "", err
	}
	return path, nil
}
