// Command ips trains an IPS shapelet classifier on a dataset and reports its
// test accuracy, the discovered shapelets, and the per-stage timing
// breakdown.
//
// Usage:
//
//	ips -dataset GunPoint                       # synthetic UCR substitute
//	ips -dataset GunPoint -data /path/to/UCR    # real UCR TSV files
//	ips -train a_TRAIN.tsv -test a_TEST.tsv     # explicit files
//
// Flags:
//
//	-k N         shapelets per class (default 5)
//	-qn N        bagging samples per class (default 10)
//	-qs N        instances per sample (default 3)
//	-seed N      random seed (default 1)
//	-timeout D   abort the run after D (e.g. 30s, 5m); a timed-out run exits
//	             with status 1 after reporting how far it got (0 = no limit)
//	-workers N   parallelise the pipeline; output identical for any value
//	-show N      print the first N shapelets as sparklines (default 3)
//	-save FILE   write the trained model to FILE as JSON
//	-load FILE   classify with a previously saved model instead of training
//	-dist-kernel auto|rolling|fft  force the shapelet transform's distance
//	             kernel (debugging/measurement; output identical for any value)
//	-precision float64|float32  transform kernel arithmetic width; float64
//	             (default) is byte-deterministic, float32 trades documented
//	             tolerance for throughput
//
// Observability (see internal/obs):
//
//	-log-level L      structured logging to stderr: off (default), debug,
//	                  info, warn, or error; the library is silent at off
//	-log-json         emit structured logs as JSON instead of text
//	-manifest FILE    write a run manifest: config, seed, environment,
//	                  dataset hash, span tree with wall times, metrics with
//	                  p50/p95/p99 summaries, accuracy, flight-recorder
//	                  samples, and the typed error if the run failed.
//	                  Inspect/compare with cmd/ipsobs.  (Training runs only;
//	                  ignored with -load.)
//	-trace FILE       write the run's span tree as Chrome trace_event JSON
//	                  (open in chrome://tracing or Perfetto)
//	-spans            print the span tree after the run
//	-progress         stream stage progress to stderr
//	-debug-addr ADDR  serve net/http/pprof, expvar, /metrics, and the
//	                  flight recorder at /debug/flight on ADDR (e.g. :6060)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"

	ips "ips"
	"ips/internal/classify"
	"ips/internal/dist"
	"ips/internal/obs"
	"ips/internal/ucr"
)

func main() {
	dataset := flag.String("dataset", "", "UCR dataset name (generated synthetically unless -data is set)")
	data := flag.String("data", "", "directory with real UCR TSV files")
	trainPath := flag.String("train", "", "training TSV file (overrides -dataset)")
	testPath := flag.String("test", "", "test TSV file (overrides -dataset)")
	k := flag.Int("k", 5, "shapelets per class")
	qn := flag.Int("qn", 10, "bagging samples per class (Q_N)")
	qs := flag.Int("qs", 3, "instances per sample (Q_S)")
	seed := flag.Int64("seed", 1, "random seed")
	workers := flag.Int("workers", 1, "parallelise the pipeline (output identical for any value)")
	show := flag.Int("show", 3, "print the first N shapelets as sparklines")
	savePath := flag.String("save", "", "write the trained model to this JSON file")
	loadPath := flag.String("load", "", "classify with a previously saved model instead of training")
	logLevel := flag.String("log-level", "off", "structured log level: off, debug, info, warn, or error")
	logJSON := flag.Bool("log-json", false, "emit structured logs as JSON instead of text")
	manifestPath := flag.String("manifest", "", "write a run manifest (JSON) to this file; inspect with ipsobs")
	tracePath := flag.String("trace", "", "write Chrome trace_event JSON of the run to this file")
	spans := flag.Bool("spans", false, "print the span tree after the run")
	progress := flag.Bool("progress", false, "stream stage progress to stderr")
	debugAddr := flag.String("debug-addr", "", "serve net/http/pprof, expvar, /metrics, and /debug/flight on this address (e.g. :6060)")
	distKernel := flag.String("dist-kernel", "auto", "force the transform's distance kernel: auto, rolling, or fft (output identical)")
	precision := flag.String("precision", "float64", "transform kernel arithmetic: float64 (byte-deterministic) or float32 (faster, approximate)")
	timeout := flag.Duration("timeout", 0, "abort the run after this long, e.g. 30s or 5m (0 = no limit)")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, *logJSON)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ips:", err)
		os.Exit(2)
	}

	ctx := obs.WithLogger(context.Background(), logger)
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if k, err := dist.ParseKernel(*distKernel); err != nil {
		fmt.Fprintln(os.Stderr, "ips:", err)
		os.Exit(2)
	} else {
		classify.DefaultKernel = k
	}
	if p, err := dist.ParsePrecision(*precision); err != nil {
		fmt.Fprintln(os.Stderr, "ips:", err)
		os.Exit(2)
	} else {
		classify.DefaultPrecision = p
	}

	train, test, err := loadData(ctx, *dataset, *data, *trainPath, *testPath, *seed)
	if err != nil {
		obs.Log(ctx).Error("loading data failed", obs.ErrAttrs(err)...)
		fmt.Fprintln(os.Stderr, "ips:", err)
		os.Exit(1)
	}

	if *loadPath != "" {
		classifyWithSavedModel(ctx, *loadPath, test)
		return
	}

	// Observability: a full observer (spans + metrics) when any hook is
	// requested; nil otherwise, which keeps the hot loops no-op.
	var o *ips.Observer
	if *tracePath != "" || *spans || *progress || *debugAddr != "" || *manifestPath != "" {
		o = ips.NewObserver("ips")
		o.Metrics().SetLogger(obs.Log(ctx))
	}
	if *progress {
		o.OnProgress(func(stage string, done, total int) {
			fmt.Fprintf(os.Stderr, "\r%-16s %d/%d", stage, done, total)
			if done >= total {
				fmt.Fprintln(os.Stderr)
			}
		})
	}

	// Flight recorder: sample runtime health for the manifest and the
	// /debug/flight endpoint whenever either consumer exists.
	var flight *obs.FlightRecorder
	if *manifestPath != "" || *debugAddr != "" {
		flight = obs.StartFlight(ctx, 5*time.Millisecond, 1024)
	}

	if *debugAddr != "" {
		_, addr, err := obs.ServeDebug(*debugAddr, o.Metrics(), flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, "ips: debug server:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "debug server on http://%s (pprof /debug/pprof/, metrics /metrics, flight /debug/flight)\n", addr)
	}

	opt := ips.DefaultOptions()
	opt.K = *k
	opt.IP.QN = *qn
	opt.IP.QS = *qs
	opt.IP.Seed = *seed
	opt.DABF.Seed = *seed
	opt.SVM.Seed = *seed
	opt.Workers = *workers
	opt.Obs = o

	config := map[string]any{
		"k": *k, "qn": *qn, "qs": *qs, "workers": *workers,
		"dist_kernel": *distKernel, "dataset": *dataset,
		"train": *trainPath, "test": *testPath,
	}
	writeManifest := func(acc *float64, runErr error) {
		if *manifestPath == "" {
			return
		}
		flight.Stop()
		man := obs.BuildManifest(o, obs.RunInfo{
			Tool: "ips", Seed: *seed, Config: config,
			Dataset: &obs.DatasetInfo{
				Name: train.Name, Hash: train.ContentHash(),
				Train: train.Len(), Test: test.Len(),
				Length: train.SeriesLen(), Classes: len(train.Classes()),
			},
			Accuracy: acc, Err: runErr, Flight: flight,
		})
		if err := man.WriteFile(*manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "ips: writing manifest:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "manifest written to %s\n", *manifestPath)
	}

	acc, model, err := ips.Evaluate(ctx, train, test, opt)
	if err != nil {
		o.Finish()
		obs.Log(ctx).Error("run failed", obs.ErrAttrs(err)...)
		writeManifest(nil, err)
		if errors.Is(err, ips.ErrCanceled) {
			fmt.Fprintf(os.Stderr, "ips: run canceled (timeout %v): %v\n", *timeout, err)
		} else {
			fmt.Fprintln(os.Stderr, "ips:", err)
		}
		os.Exit(1)
	}
	o.Finish()
	writeManifest(&acc, nil)
	d := model.Discovery
	fmt.Printf("dataset            %s (%d train / %d test, length %d, %d classes)\n",
		train.Name, train.Len(), test.Len(), train.SeriesLen(), len(train.Classes()))
	fmt.Printf("accuracy           %.2f%%\n", acc)
	fmt.Printf("candidates         %d generated, %d after DABF pruning\n", d.PoolSize, d.PrunedSize)
	fmt.Printf("shapelets          %d (k=%d per class)\n", len(model.Shapelets), *k)
	fmt.Printf("timings            generate %.3fs  prune %.3fs  select %.3fs  discovery %.3fs\n",
		d.Timings.CandidateGen.Seconds(), d.Timings.Pruning.Seconds(),
		d.Timings.Selection.Seconds(), d.Timings.Total().Seconds())
	fmt.Printf("                   transform %.3fs  train %.3fs  fit total %.3fs\n",
		d.Timings.Transform.Seconds(), d.Timings.Train.Seconds(), d.Timings.FitTotal().Seconds())
	var fits []string
	for c, f := range d.FitsByClass {
		fits = append(fits, fmt.Sprintf("class %d: %s", c, f))
	}
	sort.Strings(fits)
	fmt.Printf("DABF fits          %s\n", strings.Join(fits, ", "))

	if *savePath != "" {
		if err := model.SaveFile(*savePath); err != nil {
			fmt.Fprintln(os.Stderr, "ips: saving model:", err)
			os.Exit(1)
		}
		fmt.Printf("model saved to     %s\n", *savePath)
	}

	if *spans {
		fmt.Println("\nspan tree:")
		o.RenderTree(os.Stdout)
	}
	if *tracePath != "" {
		if err := o.WriteTraceFile(*tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "ips: writing trace:", err)
			os.Exit(1)
		}
		fmt.Printf("trace written to   %s\n", *tracePath)
	}

	if *show > 0 {
		fmt.Println("\ntop shapelets:")
		shown := 0
		for _, s := range model.Shapelets {
			if shown >= *show {
				break
			}
			fmt.Printf("  class %d len %3d score %7.3f  %s\n",
				s.Class, len(s.Values), s.Score, sparkline(s.Values))
			shown++
		}
	}
	flight.Stop()
}

// classifyWithSavedModel loads a serialized model and reports its accuracy
// on the test split.
func classifyWithSavedModel(ctx context.Context, path string, test *ips.Dataset) {
	model, err := ips.LoadModel(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ips: loading model:", err)
		os.Exit(1)
	}
	pred, err := model.Predict(ctx, test)
	if err != nil {
		obs.Log(ctx).Error("prediction failed", obs.ErrAttrs(err)...)
		fmt.Fprintln(os.Stderr, "ips: predicting:", err)
		os.Exit(1)
	}
	correct := 0
	for i, in := range test.Instances {
		if pred[i] == in.Label {
			correct++
		}
	}
	fmt.Printf("loaded model       %s (%d shapelets)\n", path, len(model.Shapelets))
	fmt.Printf("accuracy           %.2f%% on %d instances\n",
		100*float64(correct)/float64(test.Len()), test.Len())
}

func loadData(ctx context.Context, dataset, dataDir, trainPath, testPath string, seed int64) (train, test *ips.Dataset, err error) {
	switch {
	case trainPath != "" && testPath != "":
		train, err = ucr.LoadTSVCtx(ctx, trainPath)
		if err != nil {
			return nil, nil, err
		}
		test, err = ucr.LoadTSVCtx(ctx, testPath)
		return train, test, err
	case dataset != "" && dataDir != "":
		return ucr.LoadSplitCtx(ctx, dataDir, dataset)
	case dataset != "":
		return ucr.GenerateByNameCtx(ctx, dataset, ips.GenConfig{Seed: seed})
	default:
		return nil, nil, fmt.Errorf("need -dataset, or -train and -test")
	}
}

// sparkline renders a series with Unicode block characters.
func sparkline(s ips.Series) string {
	if len(s) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		return strings.Repeat(string(levels[0]), len(s))
	}
	var sb strings.Builder
	for _, v := range s {
		sb.WriteRune(levels[int((v-lo)/(hi-lo)*float64(len(levels)-1))])
	}
	return sb.String()
}
