// Command mpview computes the matrix profile of a univariate series and
// prints the top motifs and discords — a standalone front-end to the
// internal/mp substrate for exploring recordings before classification.
//
// Usage:
//
//	mpview -w 50 series.txt         # one value per line
//	mpview -w 24 -dataset ItalyPowerDemand -instance 0
//
// Flags:
//
//	-w N          subsequence length (required)
//	-motifs N     number of motif pairs to report (default 3)
//	-discords N   number of discords to report (default 3)
//	-dataset S    use an instance of a generated UCR dataset instead of a file
//	-instance N   which instance of the dataset (default 0)
//	-seed N       generation seed (default 1)
//	-workers N    parallelise the self-join over diagonal tiles; the
//	              profile is identical for any value (default 1)
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strconv"
	"strings"

	ips "ips"
	"ips/internal/mp"
)

func main() {
	w := flag.Int("w", 0, "subsequence length")
	motifs := flag.Int("motifs", 3, "motif pairs to report")
	discords := flag.Int("discords", 3, "discords to report")
	dataset := flag.String("dataset", "", "generated UCR dataset name")
	instance := flag.Int("instance", 0, "dataset instance index")
	seed := flag.Int64("seed", 1, "generation seed")
	workers := flag.Int("workers", 1, "parallelise the self-join (profile identical for any value)")
	flag.Parse()

	if *w <= 0 {
		fmt.Fprintln(os.Stderr, "mpview: -w is required and must be positive")
		os.Exit(2)
	}
	series, err := loadSeries(*dataset, *instance, *seed, flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "mpview:", err)
		os.Exit(1)
	}
	if len(series) < 2**w {
		fmt.Fprintf(os.Stderr, "mpview: series length %d too short for window %d\n", len(series), *w)
		os.Exit(1)
	}

	p := mp.SelfJoinOpts(series, *w, nil, mp.Options{Workers: *workers})
	fmt.Printf("series length %d, window %d, %d subsequences\n\n", len(series), *w, p.Len())

	fmt.Println("top motifs (position, neighbour, distance):")
	for _, pair := range p.TopMotifs(*motifs) {
		fmt.Printf("  %5d  %5d  %.4f  %s\n", pair[0], pair[1], p.P[pair[0]],
			spark(series[pair[0]:pair[0]+*w]))
	}
	fmt.Println("\ntop discords (position, distance):")
	for _, idx := range p.TopDiscords(*discords) {
		fmt.Printf("  %5d  %.4f  %s\n", idx, p.P[idx], spark(series[idx:idx+*w]))
	}
}

func loadSeries(dataset string, instance int, seed int64, path string) (ips.Series, error) {
	if dataset != "" {
		train, _, err := ips.GenerateDataset(dataset, ips.GenConfig{Seed: seed})
		if err != nil {
			return nil, err
		}
		if instance < 0 || instance >= train.Len() {
			return nil, fmt.Errorf("instance %d out of range [0,%d)", instance, train.Len())
		}
		return train.Instances[instance].Values, nil
	}
	if path == "" {
		return nil, fmt.Errorf("need a series file or -dataset")
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var out ips.Series
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		for _, field := range strings.Fields(line) {
			v, err := strconv.ParseFloat(field, 64)
			if err != nil {
				return nil, fmt.Errorf("bad value %q: %w", field, err)
			}
			out = append(out, v)
		}
	}
	return out, sc.Err()
}

func spark(s ips.Series) string {
	levels := []rune("▁▂▃▄▅▆▇█")
	lo, hi := math.Inf(1), math.Inf(-1)
	for _, v := range s {
		lo = math.Min(lo, v)
		hi = math.Max(hi, v)
	}
	if hi <= lo {
		return strings.Repeat(string(levels[0]), len(s))
	}
	var sb strings.Builder
	for _, v := range s {
		sb.WriteRune(levels[int((v-lo)/(hi-lo)*float64(len(levels)-1))])
	}
	return sb.String()
}
