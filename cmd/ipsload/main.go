// Command ipsload is a closed-loop load generator for ipsd.  By default it
// self-hosts: it fits a model on a planted synthetic dataset, starts an
// in-process serve.Server on a loopback port, and drives it — so one binary
// produces a reproducible serving benchmark with no external setup.  Point
// -url at a running ipsd to load an external daemon instead.
//
// For each concurrency level C in -levels, C workers POST /v1/classify in a
// closed loop (next request only after the previous response) for -duration.
// Per-level latency quantiles (p50/p95/p99), request counts, error counts,
// and throughput are recorded as span attributes and histograms in an
// obs.Manifest written to -out — the BENCH_serve.json artifact that
// `ipsobs report` and `ipsobs check` understand.
//
// Usage:
//
//	ipsload -out BENCH_serve.json                   # self-hosted benchmark
//	ipsload -url http://localhost:8080 -model prod  # load a live daemon
//
// Flags:
//
//	-url URL       target daemon; empty means self-host in-process
//	-model NAME    model name to query (default planted)
//	-levels LIST   comma-separated concurrency levels (default 1,4,16)
//	-duration D    time spent per level (default 2s)
//	-instances N   instances per request body (default 4)
//	-seed N        RNG seed for the planted dataset and model fit (default 92)
//	-workers N     serve workers per model when self-hosting (default 2)
//	-out PATH      manifest output path (default BENCH_serve.json)
//	-log-level L   structured log level (default warn)
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"time"

	"ips/internal/core"
	"ips/internal/dabf"
	"ips/internal/errs"
	"ips/internal/faulty"
	"ips/internal/ip"
	"ips/internal/obs"
	"ips/internal/serve"
	"ips/internal/ts"
)

func main() {
	os.Exit(run())
}

func run() int {
	url := flag.String("url", "", "target daemon base URL; empty self-hosts an in-process server")
	model := flag.String("model", "planted", "model name to query")
	levelsFlag := flag.String("levels", "1,4,16", "comma-separated concurrency levels")
	duration := flag.Duration("duration", 2*time.Second, "time spent per concurrency level")
	instances := flag.Int("instances", 4, "instances per request body")
	seed := flag.Int64("seed", 92, "RNG seed for the planted dataset and model fit")
	workers := flag.Int("workers", 2, "serve workers per model when self-hosting")
	out := flag.String("out", "BENCH_serve.json", "manifest output path")
	logLevel := flag.String("log-level", "warn", "structured log level: off, debug, info, warn, or error")
	flag.Parse()

	logger, err := obs.NewLogger(os.Stderr, *logLevel, false)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipsload:", err)
		return 2
	}
	levels, err := parseLevels(*levelsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ipsload:", err)
		return 2
	}
	if *instances < 1 {
		fmt.Fprintln(os.Stderr, "ipsload: -instances must be at least 1")
		return 2
	}
	ctx := obs.WithLogger(context.Background(), logger)

	o := obs.New("ipsload")
	runErr := bench(ctx, o, *url, *model, levels, *duration, *instances, *seed, *workers)
	o.Finish()

	m := obs.BuildManifest(o, obs.RunInfo{
		Tool: "ipsload",
		Seed: *seed,
		Config: map[string]any{
			"url":       *url,
			"model":     *model,
			"levels":    *levelsFlag,
			"duration":  duration.String(),
			"instances": *instances,
			"workers":   *workers,
		},
		Err: runErr,
	})
	if err := m.WriteFile(*out); err != nil {
		fmt.Fprintln(os.Stderr, "ipsload: writing manifest:", err)
		return 1
	}
	if runErr != nil {
		fmt.Fprintln(os.Stderr, "ipsload:", runErr)
		return 1
	}
	report(os.Stdout, o, levels)
	fmt.Fprintln(os.Stdout, "manifest:", *out)
	return 0
}

// bench prepares the target (self-hosting if url is empty) and runs every
// concurrency level against it.
func bench(ctx context.Context, o *obs.Observer, url, model string, levels []int, duration time.Duration, instances int, seed int64, workers int) error {
	train := faulty.Planted(8, 64, 2, 901+seed-92) // default seed keeps the canonical planted set

	if url == "" {
		sp := o.Root().Child("load.fit")
		m, err := core.Fit(ctx, train, core.Options{
			IP:   ip.Config{QN: 5, QS: 3, LengthRatios: []float64{0.2, 0.3}, Seed: seed},
			DABF: dabf.Config{Seed: seed},
			K:    3,
		})
		sp.End()
		if err != nil {
			return err
		}
		s := serve.NewServer(ctx, serve.Config{WorkersPerModel: workers, Obs: o})
		if _, err := s.Register(ctx, model, "ipsload self-host", m); err != nil {
			return err
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return errs.Wrap(errs.StageServe, "load.listen", "", err)
		}
		hs := &http.Server{Handler: s.Handler()}
		done := make(chan struct{})
		go func() {
			defer close(done)
			hs.Serve(ln)
		}()
		defer func() {
			hs.Close()
			<-done
			closeCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
			defer cancel()
			s.Close(closeCtx)
		}()
		url = "http://" + ln.Addr().String()
	}

	body, err := requestBody(train, instances)
	if err != nil {
		return err
	}
	target := url + "/v1/classify?model=" + model

	// Warm the serving path (prepared-statistics cache, connection pool) so
	// the first level does not pay one-time costs the others skip.
	client := &http.Client{Timeout: 30 * time.Second}
	if err := post(client, target, body); err != nil {
		return fmt.Errorf("warmup request: %w", err)
	}

	for _, c := range levels {
		runLevel(o, client, target, body, c, duration)
	}
	return nil
}

// runLevel drives one closed-loop concurrency level and records it as a child
// span with latency and throughput attributes.
func runLevel(o *obs.Observer, client *http.Client, target string, body []byte, c int, duration time.Duration) {
	sp := o.Root().Child("load.c" + strconv.Itoa(c))
	met := o.Metrics()
	hist := met.Histogram("load.c"+strconv.Itoa(c)+".ms",
		[]float64{0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 10000})
	requests := met.Counter("load.c" + strconv.Itoa(c) + ".requests")
	failures := met.Counter("load.c" + strconv.Itoa(c) + ".errors")

	dl := obs.NewDeadline(duration)
	var wg sync.WaitGroup
	for w := 0; w < c; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !dl.Exceeded() {
				sw := obs.NewStopwatch()
				err := post(client, target, body)
				hist.Observe(float64(sw.Elapsed().Microseconds()) / 1000)
				requests.Inc()
				if err != nil {
					failures.Inc()
				}
			}
		}()
	}
	wg.Wait()
	sp.End()

	n := requests.Value()
	snap := hist.Snapshot()
	sp.SetInt("concurrency", int64(c))
	sp.SetInt("requests", n)
	sp.SetInt("errors", failures.Value())
	sp.SetFloat("rps", float64(n)/duration.Seconds())
	for _, q := range []string{"p50", "p95", "p99"} {
		if v, ok := snap.Quantiles[q]; ok {
			sp.SetFloat(q+"_ms", v)
		}
	}
}

// post performs one classify request, treating any non-200 as an error.
func post(client *http.Client, target string, body []byte) error {
	resp, err := client.Post(target, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		return fmt.Errorf("reading response: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("HTTP %d: %s", resp.StatusCode, out)
	}
	var parsed struct {
		Predictions []int `json:"predictions"`
	}
	if err := json.Unmarshal(out, &parsed); err != nil {
		return fmt.Errorf("decoding response: %w", err)
	}
	if len(parsed.Predictions) == 0 {
		return fmt.Errorf("empty predictions in response")
	}
	return nil
}

// requestBody builds the shared JSON body from the first n planted instances,
// cycling through the dataset when n exceeds it.
func requestBody(train *ts.Dataset, n int) ([]byte, error) {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = train.Instances[i%len(train.Instances)].Values
	}
	return json.Marshal(struct {
		Instances [][]float64 `json:"instances"`
	}{Instances: rows})
}

// parseLevels parses the -levels flag.
func parseLevels(s string) ([]int, error) {
	var levels []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		c, err := strconv.Atoi(part)
		if err != nil || c < 1 {
			return nil, fmt.Errorf("bad concurrency level %q in -levels", part)
		}
		levels = append(levels, c)
	}
	if len(levels) == 0 {
		return nil, fmt.Errorf("-levels is empty")
	}
	return levels, nil
}

// report prints the per-level summary table.
func report(w *os.File, o *obs.Observer, levels []int) {
	fmt.Fprintf(w, "%-6s %9s %7s %9s %9s %9s %9s\n", "conc", "requests", "errors", "rps", "p50ms", "p95ms", "p99ms")
	for _, c := range levels {
		sp := o.Root().ChildByName("load.c" + strconv.Itoa(c))
		if sp == nil {
			continue
		}
		attrs := map[string]string{}
		for _, a := range sp.Attrs() {
			attrs[a.Key] = fmt.Sprint(a.Value)
		}
		fmt.Fprintf(w, "%-6d %9s %7s %9s %9s %9s %9s\n", c,
			attrs["requests"], attrs["errors"], trim(attrs["rps"]),
			trim(attrs["p50_ms"]), trim(attrs["p95_ms"]), trim(attrs["p99_ms"]))
	}
}

// trim shortens a printed float to 3 significant decimals.
func trim(s string) string {
	if v, err := strconv.ParseFloat(s, 64); err == nil {
		return strconv.FormatFloat(v, 'f', 3, 64)
	}
	return s
}
