package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"ips/internal/obs"
)

// writeReport renders one manifest as a text report.
func writeReport(w io.Writer, m *obs.Manifest) {
	fmt.Fprintf(w, "tool        %s (%s %s/%s, GOMAXPROCS %d)\n",
		m.Tool, m.GoVersion, m.GOOS, m.GOARCH, m.GoMaxProcs)
	fmt.Fprintf(w, "seed        %d\n", m.Seed)
	if len(m.Config) > 0 {
		keys := make([]string, 0, len(m.Config))
		for k := range m.Config {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		parts := make([]string, 0, len(keys))
		for _, k := range keys {
			parts = append(parts, fmt.Sprintf("%s=%v", k, m.Config[k]))
		}
		fmt.Fprintf(w, "config      %s\n", strings.Join(parts, " "))
	}
	if d := m.Dataset; d != nil {
		fmt.Fprintf(w, "dataset     %s (%d train / %d test, length %d, %d classes)\n",
			d.Name, d.Train, d.Test, d.Length, d.Classes)
		if d.Hash != "" {
			fmt.Fprintf(w, "data hash   %s\n", d.Hash)
		}
	}
	if m.Accuracy != nil {
		fmt.Fprintf(w, "accuracy    %.2f%%\n", *m.Accuracy)
	}
	if e := m.Error; e != nil {
		fmt.Fprintf(w, "error       [%s] %s\n", e.Class, e.Message)
		if e.Stage != "" {
			fmt.Fprintf(w, "            stage=%s op=%s dataset=%s\n", e.Stage, e.Op, e.Dataset)
		}
	}

	if m.Spans != nil {
		fmt.Fprintf(w, "\nspans (total %s):\n", fmtDur(m.Spans.DurationNS))
		writeSpanTree(w, m.Spans, "  ", m.Spans.DurationNS)
	}

	if mt := m.Metrics; mt != nil {
		if len(mt.Counters) > 0 {
			fmt.Fprintf(w, "\ncounters:\n")
			for _, k := range sortedKeys(mt.Counters) {
				fmt.Fprintf(w, "  %-40s %d\n", k, mt.Counters[k])
			}
		}
		if len(mt.Histograms) > 0 {
			fmt.Fprintf(w, "\nhistograms:\n")
			for _, k := range sortedKeys(mt.Histograms) {
				h := mt.Histograms[k]
				line := fmt.Sprintf("  %-40s n=%d sum=%g", k, h.Count, h.Sum)
				for _, q := range []string{"p50", "p95", "p99"} {
					if v, ok := h.Quantiles[q]; ok {
						line += fmt.Sprintf(" %s=%g", q, v)
					}
				}
				fmt.Fprintln(w, line)
			}
		}
	}

	if len(m.Flight) > 0 {
		var peakHeap, peakGoroutines uint64
		last := m.Flight[len(m.Flight)-1]
		for _, s := range m.Flight {
			if s.HeapAllocBytes > peakHeap {
				peakHeap = s.HeapAllocBytes
			}
			if uint64(s.Goroutines) > peakGoroutines {
				peakGoroutines = uint64(s.Goroutines)
			}
		}
		fmt.Fprintf(w, "\nflight      %d samples over %s\n",
			len(m.Flight), fmtDur(last.OffsetNS))
		fmt.Fprintf(w, "            peak heap %s, peak goroutines %d, GC cycles %d, GC pause total %s\n",
			fmtBytes(peakHeap), peakGoroutines, last.NumGC, fmtDur(int64(last.GCPauseTotalNS)))
	}
}

// writeSpanTree prints the span hierarchy with durations and percentages of
// the root's wall time.
func writeSpanTree(w io.Writer, n *obs.SpanNode, indent string, total int64) {
	pct := ""
	if total > 0 {
		pct = fmt.Sprintf(" (%.1f%%)", 100*float64(n.DurationNS)/float64(total))
	}
	fmt.Fprintf(w, "%s%-24s %s%s\n", indent, n.Name, fmtDur(n.DurationNS), pct)
	for _, c := range n.Children {
		writeSpanTree(w, c, indent+"  ", total)
	}
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fmtDur(ns int64) string {
	return time.Duration(ns).Round(time.Microsecond).String()
}

func fmtBytes(b uint64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	default:
		return fmt.Sprintf("%dB", b)
	}
}
