// Command ipsobs inspects and compares the run manifests written by
// ips/ipsbench -manifest (see internal/obs.Manifest).
//
// Usage:
//
//	ipsobs report run.json
//	ipsobs diff  [-threshold 0.10] old.json new.json
//	ipsobs check [-threshold 0.25] baseline.json fresh.json
//
// report renders one manifest as a human-readable text report: environment,
// config, dataset identity, the span tree with wall times, metric summaries
// with streaming quantiles, and the flight recorder's runtime peaks.
//
// diff compares two manifests stage by stage and flags regressions: total or
// per-stage wall time grown by more than the threshold (default 10%),
// accuracy dropped by more than the threshold relative, or a run error that
// the old manifest did not have.  Exit status 1 when any regression is
// flagged, 0 when clean.
//
// check is diff with CI defaults: a 25% threshold (wall times on shared
// runners are noisy), terse output, and the same exit contract — wire it
// against a committed baseline manifest to gate merges.  Improvements never
// fail either mode; only regressions do.
//
// Exit status: 0 clean, 1 regression flagged, 2 usage or read error.
package main

import (
	"flag"
	"fmt"
	"os"

	"ips/internal/obs"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	if len(args) < 1 {
		usage()
		return 2
	}
	switch args[0] {
	case "report":
		if len(args) != 2 {
			fmt.Fprintln(os.Stderr, "usage: ipsobs report <manifest.json>")
			return 2
		}
		m, err := obs.ReadManifest(args[1])
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipsobs:", err)
			return 2
		}
		writeReport(os.Stdout, m)
		return 0
	case "diff", "check":
		fs := flag.NewFlagSet("ipsobs "+args[0], flag.ContinueOnError)
		def := 0.10
		terse := false
		if args[0] == "check" {
			def = 0.25
			terse = true
		}
		threshold := fs.Float64("threshold", def, "relative regression threshold (0.10 = 10%)")
		if err := fs.Parse(args[1:]); err != nil {
			return 2
		}
		if fs.NArg() != 2 {
			fmt.Fprintf(os.Stderr, "usage: ipsobs %s [-threshold F] <old.json> <new.json>\n", args[0])
			return 2
		}
		if *threshold <= 0 {
			fmt.Fprintln(os.Stderr, "ipsobs: -threshold must be positive")
			return 2
		}
		old, err := obs.ReadManifest(fs.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipsobs:", err)
			return 2
		}
		fresh, err := obs.ReadManifest(fs.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "ipsobs:", err)
			return 2
		}
		d := compare(old, fresh, *threshold)
		writeDiff(os.Stdout, d, terse)
		if len(d.Regressions) > 0 {
			return 1
		}
		return 0
	default:
		fmt.Fprintf(os.Stderr, "ipsobs: unknown command %q\n", args[0])
		usage()
		return 2
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  ipsobs report run.json
  ipsobs diff  [-threshold 0.10] old.json new.json
  ipsobs check [-threshold 0.25] baseline.json fresh.json`)
}
