package main

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"ips/internal/obs"
)

// fixture builds a plausible run manifest; scale multiplies every span
// duration, so scale 1.2 is a 20% across-the-board wall-time regression.
func fixture(scale float64, acc float64) *obs.Manifest {
	ns := func(ms float64) int64 { return int64(ms * scale * 1e6) }
	a := acc
	return &obs.Manifest{
		Schema: obs.ManifestSchema, Tool: "ips",
		GoVersion: "go1.24.0", GOOS: "linux", GOARCH: "amd64", GoMaxProcs: 8,
		Seed:    1,
		Config:  map[string]any{"k": 5, "workers": 4},
		Dataset: &obs.DatasetInfo{Name: "GunPoint", Hash: "sha256:abc", Train: 50, Test: 150, Length: 150, Classes: 2},
		Spans: &obs.SpanNode{
			Name: "ips", DurationNS: ns(1000),
			Children: []*obs.SpanNode{
				{Name: "discover", DurationNS: ns(800), Children: []*obs.SpanNode{
					{Name: "candidate-gen", DurationNS: ns(500)},
					{Name: "pruning", DurationNS: ns(200)},
					{Name: "selection", DurationNS: ns(100)},
				}},
				{Name: "transform", DurationNS: ns(150)},
				{Name: "train", DurationNS: ns(50)},
			},
		},
		Metrics: &obs.MetricsDump{
			Counters: map[string]int64{"classify.transform.dists": 1500},
			Histograms: map[string]obs.HistSnapshot{
				"dabf.bucket_occupancy": {
					Bounds: []float64{1, 2, 4}, Counts: []int64{3, 2, 1, 0},
					Count: 6, Sum: 12,
					Quantiles: map[string]float64{"p50": 2, "p95": 4, "p99": 4},
				},
			},
		},
		Accuracy: &a,
	}
}

func writeFixture(t *testing.T, name string, m *obs.Manifest) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestDiffIdenticalPairPasses(t *testing.T) {
	a := writeFixture(t, "a.json", fixture(1, 90))
	b := writeFixture(t, "b.json", fixture(1, 90))
	if code := run([]string{"diff", a, b}); code != 0 {
		t.Fatalf("identical pair: exit %d, want 0", code)
	}
	if code := run([]string{"check", a, b}); code != 0 {
		t.Fatalf("identical pair (check): exit %d, want 0", code)
	}
}

func TestDiffFlagsWallTimeRegression(t *testing.T) {
	a := writeFixture(t, "a.json", fixture(1, 90))
	b := writeFixture(t, "b.json", fixture(1.2, 90)) // +20% everywhere
	if code := run([]string{"diff", a, b}); code != 1 {
		t.Fatalf("20%% regression at 10%% threshold: exit %d, want 1", code)
	}
	// Above the threshold the same pair must pass.
	if code := run([]string{"diff", "-threshold", "0.5", a, b}); code != 0 {
		t.Fatalf("20%% regression at 50%% threshold: exit %d, want 0", code)
	}
	// check's CI default (25%) tolerates 20% noise...
	if code := run([]string{"check", a, b}); code != 0 {
		t.Fatalf("20%% regression at check's 25%% threshold: exit %d, want 0", code)
	}
	// ...but not a 40% cliff.
	c := writeFixture(t, "c.json", fixture(1.4, 90))
	if code := run([]string{"check", a, c}); code != 1 {
		t.Fatalf("40%% regression at check's 25%% threshold: exit %d, want 1", code)
	}
}

func TestDiffFlagsAccuracyDrop(t *testing.T) {
	a := writeFixture(t, "a.json", fixture(1, 90))
	b := writeFixture(t, "b.json", fixture(1, 60)) // -33% relative
	if code := run([]string{"diff", a, b}); code != 1 {
		t.Fatalf("accuracy drop: exit %d, want 1", code)
	}
}

func TestCompareDetails(t *testing.T) {
	old := fixture(1, 90)
	fresh := fixture(1.2, 90)
	d := compare(old, fresh, 0.10)
	if len(d.Regressions) == 0 {
		t.Fatal("no regressions flagged for +20% wall time")
	}
	foundRoot := false
	for _, s := range d.Stages {
		if s.Path == "ips" && s.Flagged {
			foundRoot = true
		}
	}
	if !foundRoot {
		t.Fatalf("root span not flagged: %+v", d.Stages)
	}

	// A new error is a regression even with identical timings.
	bad := fixture(1, 90)
	bad.Error = &obs.ErrorInfo{Message: "boom", Class: "internal"}
	d = compare(fixture(1, 90), bad, 0.10)
	if len(d.Regressions) != 1 || !strings.Contains(d.Regressions[0], "new run failed") {
		t.Fatalf("error regression = %v", d.Regressions)
	}

	// Micro-spans below the floor never flag: 3x growth on a span worth
	// 0.1% of the run is noise, not a regression.
	o2 := fixture(1, 90)
	n2 := fixture(1, 90)
	o2.Spans.Children = append(o2.Spans.Children, &obs.SpanNode{Name: "tiny", DurationNS: 1000})
	n2.Spans.Children = append(n2.Spans.Children, &obs.SpanNode{Name: "tiny", DurationNS: 3000})
	d = compare(o2, n2, 0.10)
	if len(d.Regressions) != 0 {
		t.Fatalf("micro-span flagged: %v", d.Regressions)
	}

	// Changed dataset hash is a note, not a regression.
	h2 := fixture(1, 90)
	h2.Dataset.Hash = "sha256:def"
	d = compare(fixture(1, 90), h2, 0.10)
	if len(d.Regressions) != 0 {
		t.Fatalf("hash change treated as regression: %v", d.Regressions)
	}
	if len(d.Notes) == 0 || !strings.Contains(d.Notes[0], "dataset content changed") {
		t.Fatalf("hash change note missing: %v", d.Notes)
	}
}

func TestReportRenders(t *testing.T) {
	m := fixture(1, 90)
	m.Flight = []obs.FlightSample{
		{OffsetNS: 0, Goroutines: 4, HeapAllocBytes: 1 << 20, NumGC: 0},
		{OffsetNS: 5e6, Goroutines: 9, HeapAllocBytes: 3 << 20, NumGC: 2, GCPauseTotalNS: 40000},
	}
	var buf bytes.Buffer
	writeReport(&buf, m)
	out := buf.String()
	for _, want := range []string{
		"tool        ips", "GunPoint", "sha256:abc", "accuracy    90.00%",
		"candidate-gen", "p95=4", "flight      2 samples",
		"peak heap 3.0MiB", "peak goroutines 9",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("report missing %q:\n%s", want, out)
		}
	}
}

func TestUsageErrors(t *testing.T) {
	if code := run([]string{}); code != 2 {
		t.Fatalf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"bogus"}); code != 2 {
		t.Fatalf("unknown command: exit %d, want 2", code)
	}
	if code := run([]string{"report", "/nonexistent.json"}); code != 2 {
		t.Fatalf("missing file: exit %d, want 2", code)
	}
	if code := run([]string{"diff", "-threshold", "-1", "a", "b"}); code != 2 {
		t.Fatalf("bad threshold: exit %d, want 2", code)
	}
}
