package main

import (
	"fmt"
	"io"
	"sort"

	"ips/internal/obs"
)

// Diff is the outcome of comparing two manifests: flagged regressions (which
// fail the exit status), informational notes, and the per-stage wall-time
// deltas behind them.
type Diff struct {
	Threshold   float64
	Regressions []string
	Notes       []string
	Stages      []StageDelta
}

// StageDelta is one span path's wall time in both runs.
type StageDelta struct {
	Path         string
	OldNS, NewNS int64
	Rel          float64 // (new-old)/old; 0 when old is 0
	Flagged      bool
}

// stageFloor keeps micro-spans out of the gate: a stage is only eligible for
// flagging when it accounted for at least this fraction of the old run's
// total wall time.  Tiny stages jitter by whole multiples between runs
// without meaning anything.
const stageFloor = 0.01

// compare diffs two manifests.  A regression is: total wall time grown by
// more than threshold, a non-trivial stage grown by more than threshold,
// accuracy dropped by more than threshold relative, or a run error the old
// manifest did not have.  Improvements and structural changes become notes.
func compare(old, fresh *obs.Manifest, threshold float64) *Diff {
	d := &Diff{Threshold: threshold}

	if old.Dataset != nil && fresh.Dataset != nil &&
		old.Dataset.Hash != "" && fresh.Dataset.Hash != "" &&
		old.Dataset.Hash != fresh.Dataset.Hash {
		d.Notes = append(d.Notes,
			fmt.Sprintf("dataset content changed (%s -> %s): timings are not comparable",
				old.Dataset.Hash, fresh.Dataset.Hash))
	}
	if old.GoVersion != fresh.GoVersion {
		d.Notes = append(d.Notes,
			fmt.Sprintf("go version changed (%s -> %s)", old.GoVersion, fresh.GoVersion))
	}
	if old.GoMaxProcs != fresh.GoMaxProcs {
		d.Notes = append(d.Notes,
			fmt.Sprintf("GOMAXPROCS changed (%d -> %d)", old.GoMaxProcs, fresh.GoMaxProcs))
	}

	switch {
	case fresh.Error != nil && old.Error == nil:
		d.Regressions = append(d.Regressions,
			fmt.Sprintf("new run failed: [%s] %s", fresh.Error.Class, fresh.Error.Message))
	case fresh.Error != nil && old.Error != nil:
		d.Notes = append(d.Notes, "both runs failed")
	case fresh.Error == nil && old.Error != nil:
		d.Notes = append(d.Notes, "old run failed, new run succeeded")
	}

	oldTimes := flattenSpans(old.Spans)
	newTimes := flattenSpans(fresh.Spans)
	var rootOld int64
	if old.Spans != nil {
		rootOld = old.Spans.DurationNS
	}
	paths := make([]string, 0, len(oldTimes))
	for p := range oldTimes {
		paths = append(paths, p)
	}
	sort.Strings(paths)
	for _, p := range paths {
		o := oldTimes[p]
		n, ok := newTimes[p]
		if !ok {
			d.Notes = append(d.Notes, fmt.Sprintf("stage %s missing from new run", p))
			continue
		}
		sd := StageDelta{Path: p, OldNS: o, NewNS: n}
		if o > 0 {
			sd.Rel = float64(n-o) / float64(o)
		}
		isRoot := old.Spans != nil && p == old.Spans.Name
		bigEnough := isRoot || (rootOld > 0 && float64(o) >= stageFloor*float64(rootOld))
		if sd.Rel > threshold && bigEnough {
			sd.Flagged = true
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("wall time of %s grew %.1f%% (%s -> %s, threshold %.0f%%)",
					p, 100*sd.Rel, fmtDur(o), fmtDur(n), 100*threshold))
		}
		d.Stages = append(d.Stages, sd)
	}
	newPaths := make([]string, 0, len(newTimes))
	for p := range newTimes {
		if _, ok := oldTimes[p]; !ok {
			newPaths = append(newPaths, p)
		}
	}
	sort.Strings(newPaths)
	for _, p := range newPaths {
		d.Notes = append(d.Notes, fmt.Sprintf("stage %s new in new run", p))
	}

	if old.Accuracy != nil && fresh.Accuracy != nil {
		oa, na := *old.Accuracy, *fresh.Accuracy
		if oa > 0 && (oa-na)/oa > threshold {
			d.Regressions = append(d.Regressions,
				fmt.Sprintf("accuracy dropped %.1f%% relative (%.2f%% -> %.2f%%, threshold %.0f%%)",
					100*(oa-na)/oa, oa, na, 100*threshold))
		} else if na > oa {
			d.Notes = append(d.Notes,
				fmt.Sprintf("accuracy improved (%.2f%% -> %.2f%%)", oa, na))
		}
	}
	return d
}

// flattenSpans maps every span path ("root/child/grandchild") to its
// duration.  Duplicate paths (repeated child names, e.g. per-fold spans)
// accumulate.
func flattenSpans(root *obs.SpanNode) map[string]int64 {
	out := map[string]int64{}
	var walk func(n *obs.SpanNode, prefix string)
	walk = func(n *obs.SpanNode, prefix string) {
		if n == nil {
			return
		}
		path := n.Name
		if prefix != "" {
			path = prefix + "/" + n.Name
		}
		out[path] += n.DurationNS
		for _, c := range n.Children {
			walk(c, path)
		}
	}
	walk(root, "")
	return out
}

// writeDiff renders a comparison.  Terse mode (check) prints only the
// verdict and any regressions; full mode adds the stage table and notes.
func writeDiff(w io.Writer, d *Diff, terse bool) {
	if !terse && len(d.Stages) > 0 {
		fmt.Fprintf(w, "%-40s %14s %14s %8s\n", "stage", "old", "new", "delta")
		for _, s := range d.Stages {
			mark := ""
			if s.Flagged {
				mark = "  <-- regression"
			}
			fmt.Fprintf(w, "%-40s %14s %14s %+7.1f%%%s\n",
				s.Path, fmtDur(s.OldNS), fmtDur(s.NewNS), 100*s.Rel, mark)
		}
	}
	if !terse {
		for _, n := range d.Notes {
			fmt.Fprintf(w, "note: %s\n", n)
		}
	}
	for _, r := range d.Regressions {
		fmt.Fprintf(w, "REGRESSION: %s\n", r)
	}
	if len(d.Regressions) == 0 {
		fmt.Fprintf(w, "ok: no regressions beyond %.0f%% threshold\n", 100*d.Threshold)
	} else {
		fmt.Fprintf(w, "%d regression(s) flagged\n", len(d.Regressions))
	}
}
