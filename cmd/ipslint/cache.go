package main

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// cacheVersion invalidates every cached result when the finding schema or
// analyzer semantics change; bump it alongside analyzer edits that alter
// output without touching repo sources.
const cacheVersion = "ipslint-cache-v1"

// jsonFinding is the machine-readable finding schema shared by the -json
// flag and the result cache.  File paths are module-relative with forward
// slashes so cache entries and CI annotations are machine-independent.
type jsonFinding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

type cacheFile struct {
	Version  string        `json:"version"`
	Findings []jsonFinding `json:"findings"`
}

// toJSONFindings converts findings to the portable schema, relativising
// paths against the module root where possible.
func toJSONFindings(modRoot string, findings []Finding) []jsonFinding {
	out := make([]jsonFinding, 0, len(findings))
	for _, f := range findings {
		file := f.Pos.Filename
		if rel, err := filepath.Rel(modRoot, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
		out = append(out, jsonFinding{
			Analyzer: f.Analyzer,
			File:     file,
			Line:     f.Pos.Line,
			Col:      f.Pos.Column,
			Message:  f.Message,
		})
	}
	return out
}

// fromJSONFindings restores absolute positions against the module root.
func fromJSONFindings(modRoot string, jfs []jsonFinding) []Finding {
	out := make([]Finding, 0, len(jfs))
	for _, jf := range jfs {
		file := jf.File
		if !filepath.IsAbs(file) {
			file = filepath.Join(modRoot, filepath.FromSlash(file))
		}
		out = append(out, Finding{
			Analyzer: jf.Analyzer,
			Pos:      token.Position{Filename: file, Line: jf.Line, Column: jf.Col},
			Message:  jf.Message,
		})
	}
	return out
}

// cacheDir resolves where results are stored: IPSLINT_CACHE_DIR when set
// (tests use this for hermetic runs), else os.UserCacheDir()/ipslint.
func cacheDir() (string, error) {
	if dir := os.Getenv("IPSLINT_CACHE_DIR"); dir != "" {
		return dir, nil
	}
	base, err := os.UserCacheDir()
	if err != nil {
		return "", err
	}
	return filepath.Join(base, "ipslint"), nil
}

// cacheKey content-hashes everything a run's findings depend on: the cache
// schema version, the toolchain, the enabled analyzer set, the resolved
// directory list, and the content of go.mod plus every .go file in the
// module tree (testdata included — corpus sources feed the linter's own
// tests).  Over-invalidation is fine; a stale hit never is.
func cacheKey(modRoot string, dirs []string, enabled []*Analyzer, goVersion string) (string, error) {
	h := sha256.New()
	fmt.Fprintln(h, cacheVersion)
	fmt.Fprintln(h, goVersion)

	names := make([]string, 0, len(enabled))
	for _, a := range enabled {
		names = append(names, a.Name)
	}
	sort.Strings(names)
	fmt.Fprintln(h, strings.Join(names, ","))

	rels := make([]string, 0, len(dirs))
	for _, d := range dirs {
		rel, err := filepath.Rel(modRoot, d)
		if err != nil {
			rel = d
		}
		rels = append(rels, filepath.ToSlash(rel))
	}
	sort.Strings(rels)
	fmt.Fprintln(h, strings.Join(rels, ","))

	var files []string
	err := filepath.WalkDir(modRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != modRoot && (name == "vendor" || strings.HasPrefix(name, ".")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(name, ".go") || name == "go.mod" {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		return "", err
	}
	sort.Strings(files)
	for _, path := range files {
		f, err := os.Open(path)
		if err != nil {
			return "", err
		}
		rel, rerr := filepath.Rel(modRoot, path)
		if rerr != nil {
			rel = path
		}
		fmt.Fprintln(h, filepath.ToSlash(rel))
		if _, err := io.Copy(h, f); err != nil {
			f.Close()
			return "", err
		}
		if err := f.Close(); err != nil {
			return "", err
		}
	}
	return hex.EncodeToString(h.Sum(nil)), nil
}

// cacheLoad returns the cached findings for key, or ok=false on any miss,
// decode failure, or version skew.
func cacheLoad(modRoot, key string) ([]Finding, bool) {
	dir, err := cacheDir()
	if err != nil {
		return nil, false
	}
	data, err := os.ReadFile(filepath.Join(dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var cf cacheFile
	if err := json.Unmarshal(data, &cf); err != nil || cf.Version != cacheVersion {
		return nil, false
	}
	return fromJSONFindings(modRoot, cf.Findings), true
}

// cacheStore persists findings for key.  Failures are non-fatal: a cold
// cache only costs time.
func cacheStore(modRoot, key string, findings []Finding) error {
	dir, err := cacheDir()
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	data, err := json.MarshalIndent(cacheFile{
		Version:  cacheVersion,
		Findings: toJSONFindings(modRoot, findings),
	}, "", "  ")
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(dir, key+".tmp*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(dir, key+".json"))
}
