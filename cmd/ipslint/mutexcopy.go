package main

import (
	"go/ast"
	"go/types"
	"strings"
)

// mutexcopyAnalyzer flags by-value copies of types that (transitively)
// contain a sync primitive.  A copied Mutex forks the lock state and a
// copied WaitGroup forks the counter: the original keeps waiting while the
// copy signals, which is exactly the deadlock/race class the worker-pool
// fan-out must never hit.  Checked sites: assignments from existing values,
// range-over-collection element copies, and by-value receivers, parameters,
// and results.
var mutexcopyAnalyzer = &Analyzer{
	Name: "mutexcopy",
	Doc:  "by-value copy of a type containing sync.Mutex/WaitGroup state",
	Run:  runMutexCopy,
}

// syncLockTypes are the sync types whose value state must never fork.
var syncLockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true,
	"Once": true, "Cond": true, "Map": true, "Pool": true,
}

// containsLock returns a human-readable description of a sync primitive
// held by value inside t — "sync.Mutex" directly, or "sync.Mutex at field
// mu" when nested — and "" when there is none.
func containsLock(t types.Type) string {
	p := lockPath(t, map[types.Type]bool{})
	if p == "" {
		return ""
	}
	if i := strings.LastIndex(p, "sync."); i > 0 {
		return p[i:] + " at field " + strings.TrimSuffix(p[:i], ".")
	}
	return p
}

func lockPath(t types.Type, seen map[types.Type]bool) string {
	if t == nil || seen[t] {
		return ""
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockTypes[obj.Name()] {
			return "sync." + obj.Name()
		}
		return lockPath(named.Underlying(), seen)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if p := lockPath(f.Type(), seen); p != "" {
				return f.Name() + "." + p
			}
		}
	case *types.Array:
		if p := lockPath(u.Elem(), seen); p != "" {
			return "[...]." + p
		}
	}
	return ""
}

// copiesValue reports whether the expression reads an existing value (so
// assigning it elsewhere duplicates state), as opposed to constructing a
// fresh one (composite literal, call, conversion-of-literal).
func copiesValue(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr:
		return true
	case *ast.StarExpr:
		return true
	case *ast.TypeAssertExpr:
		return copiesValue(e.X)
	default:
		return false
	}
}

func runMutexCopy(pass *Pass) {
	checkAssignPair := func(rhs ast.Expr) {
		if !copiesValue(rhs) {
			return
		}
		t := pass.TypeOf(rhs)
		if t == nil {
			return
		}
		if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
			return
		}
		if p := containsLock(t); p != "" {
			pass.Reportf(rhs.Pos(), "assignment copies %s by value (via %s); use a pointer", p, types.TypeString(t, types.RelativeTo(pass.Pkg)))
		}
	}
	checkFieldList := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := pass.TypeOf(f.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if p := containsLock(t); p != "" {
				pass.Reportf(f.Type.Pos(), "%s passes %s by value (via %s); use a pointer", what, p, types.TypeString(t, types.RelativeTo(pass.Pkg)))
			}
		}
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for _, rhs := range n.Rhs {
						checkAssignPair(rhs)
					}
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkAssignPair(v)
				}
			case *ast.RangeStmt:
				if n.Value == nil || isBlankOrNil(n.Value) {
					return true
				}
				t := pass.TypeOf(n.Value)
				if t == nil {
					return true
				}
				if p := containsLock(t); p != "" {
					pass.Reportf(n.Value.Pos(), "range copies %s by value per element (via %s); index into the collection instead", p, types.TypeString(t, types.RelativeTo(pass.Pkg)))
				}
			case *ast.FuncDecl:
				checkFieldList(n.Recv, "receiver")
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			case *ast.FuncLit:
				checkFieldList(n.Type.Params, "parameter")
				checkFieldList(n.Type.Results, "result")
			}
			return true
		})
	}
}

func isBlankOrNil(e ast.Expr) bool {
	return e == nil || isBlank(e)
}
