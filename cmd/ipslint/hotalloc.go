package main

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// hotallocAnalyzer is the tooling teeth behind the ROADMAP's allocation-free
// hot path goal.  A function marked with a //ips:hotpath doc directive — and
// every module function it statically calls, transitively — must not
// allocate inside its loops.  Flagged patterns, all scoped to loop bodies:
//
//   - make with no cap()/len() growth guard (a guarded grow-once arena
//     refill is the blessed idiom and exempt)
//   - append whose destination was not preallocated with an explicit
//     capacity in the same function
//   - fmt.Sprintf / Sprint / Sprintln / Errorf (always allocate)
//   - non-constant string concatenation
//   - function literals (each iteration allocates a fresh closure)
//   - interface boxing at call sites: a concrete value passed where the
//     callee takes an interface forces a heap conversion per iteration
//
// Findings name the //ips:hotpath root that pulled the function into the hot
// set, so a report deep in a callee is traceable to its annotation.
var hotallocAnalyzer = &Analyzer{
	Name:      "hotalloc",
	Doc:       "allocation inside a loop of an //ips:hotpath function or anything it calls",
	RunModule: runHotalloc,
}

func runHotalloc(pass *ModulePass) {
	mod := pass.Mod
	// BFS from each annotated root in declaration order; the first root to
	// reach a function claims the attribution, deterministically.
	rootOf := map[string]string{}
	var order []string
	for _, key := range mod.Order {
		if !mod.Funcs[key].Hot {
			continue
		}
		queue := []string{key}
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			if _, seen := rootOf[cur]; seen {
				continue
			}
			rootOf[cur] = key
			order = append(order, cur)
			for _, c := range mod.Funcs[cur].Calls {
				if _, seen := rootOf[c.Callee]; !seen {
					queue = append(queue, c.Callee)
				}
			}
		}
	}
	for _, key := range order {
		checkHotFunc(pass, mod.Funcs[key], rootOf[key])
	}
}

// checkHotFunc flags allocation patterns inside the loops of one hot-set
// function.
func checkHotFunc(pass *ModulePass, fi *FuncInfo, root string) {
	info := fi.Info
	parents := map[ast.Node]ast.Node{}
	var stack []ast.Node
	ast.Inspect(fi.Decl, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if len(stack) > 0 {
			parents[n] = stack[len(stack)-1]
		}
		stack = append(stack, n)
		return true
	})

	via := ""
	if fi.Key != root {
		via = " (hot via //ips:hotpath " + shortFuncName(root) + ")"
	}

	ast.Inspect(fi.Decl.Body, func(n ast.Node) bool {
		loop, enclosed := enclosingLoop(parents, n)
		switch n := n.(type) {
		case *ast.CallExpr:
			if !enclosed {
				return true
			}
			switch fun := ast.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if builtinName(info, fun) == "make" && !capGuarded(parents, loop, n) {
					pass.Reportf(n.Pos(), "make inside a hot loop%s; hoist the allocation or guard a grow-once refill with cap()/len()", via)
				}
				if builtinName(info, fun) == "append" && !preallocated(info, fi.Decl, n) {
					pass.Reportf(n.Pos(), "append inside a hot loop to a destination without preallocated capacity%s", via)
				}
			case *ast.SelectorExpr:
				if pn, ok := selectorPkg(info, fun); ok && pn == "fmt" {
					switch fun.Sel.Name {
					case "Sprintf", "Sprint", "Sprintln", "Errorf":
						pass.Reportf(n.Pos(), "fmt.%s inside a hot loop allocates%s; format outside the loop or use a preallocated buffer", fun.Sel.Name, via)
						return true
					}
				}
			}
			reportBoxing(pass, info, n, via)
		case *ast.BinaryExpr:
			if enclosed && n.Op == token.ADD && isNonConstString(info, n) {
				pass.Reportf(n.Pos(), "string concatenation inside a hot loop allocates%s", via)
			}
		case *ast.AssignStmt:
			if enclosed && n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isStringType(info, n.Lhs[0]) {
				pass.Reportf(n.Pos(), "string concatenation inside a hot loop allocates%s", via)
			}
		case *ast.FuncLit:
			if enclosed {
				pass.Reportf(n.Pos(), "function literal inside a hot loop allocates a closure per iteration%s; hoist it", via)
			}
		}
		return true
	})
}

// reportBoxing flags concrete values passed to interface parameters inside
// hot loops — each such argument is an interface conversion that may heap-
// allocate per iteration.
func reportBoxing(pass *ModulePass, info *types.Info, call *ast.CallExpr, via string) {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok || sig.Params() == nil {
		return
	}
	np := sig.Params().Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			if call.Ellipsis != token.NoPos {
				continue // spreading a slice: no per-element boxing here
			}
			pt = sig.Params().At(np - 1).Type().(*types.Slice).Elem()
		case i < np:
			pt = sig.Params().At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := info.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if b, ok := at.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "interface boxing inside a hot loop: %s argument converted to %s%s", at.String(), pt.String(), via)
	}
}

// enclosingLoop reports whether n sits inside a for/range statement within
// the current function (walking up stops at function boundaries, so a loop
// in the enclosing function does not taint a nested function literal's
// straight-line body — the literal itself is already flagged).
func enclosingLoop(parents map[ast.Node]ast.Node, n ast.Node) (ast.Stmt, bool) {
	for p := parents[n]; p != nil; p = parents[p] {
		switch p := p.(type) {
		case *ast.ForStmt:
			return p, true
		case *ast.RangeStmt:
			return p, true
		case *ast.FuncLit, *ast.FuncDecl:
			return nil, false
		}
	}
	return nil, false
}

// capGuarded reports whether the make call sits under an if statement (still
// inside the loop) whose condition consults cap() or len() — the grow-once
// arena refill idiom: `if cap(buf) < n { buf = make(...) }`.
func capGuarded(parents map[ast.Node]ast.Node, loop ast.Stmt, n ast.Node) bool {
	for p := parents[n]; p != nil && p != loop; p = parents[p] {
		ifs, ok := p.(*ast.IfStmt)
		if !ok {
			continue
		}
		guarded := false
		ast.Inspect(ifs.Cond, func(cn ast.Node) bool {
			if call, ok := cn.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && (id.Name == "cap" || id.Name == "len") {
					guarded = true
				}
			}
			return !guarded
		})
		if guarded {
			return true
		}
	}
	return false
}

// preallocated reports whether the append destination was created with an
// explicit capacity (3-arg make) somewhere in the same declaration, so
// steady-state appends stay in place.
func preallocated(info *types.Info, decl *ast.FuncDecl, call *ast.CallExpr) bool {
	if len(call.Args) == 0 {
		return false
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return false // appending to a field or index: can't track, give it the benefit
	}
	obj := info.Uses[dst]
	if obj == nil {
		obj = info.Defs[dst]
	}
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(decl, func(n ast.Node) bool {
		if found {
			return false
		}
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || i >= len(as.Rhs) {
				continue
			}
			if info.Defs[id] != obj && info.Uses[id] != obj {
				continue
			}
			if mk, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr); ok {
				if fn, ok := ast.Unparen(mk.Fun).(*ast.Ident); ok && builtinName(info, fn) == "make" && len(mk.Args) == 3 {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

// isNonConstString reports whether e is a string-typed expression that is
// not a compile-time constant (constant folding costs nothing at runtime).
func isNonConstString(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value != nil {
		return false
	}
	return isStringTV(tv.Type)
}

func isStringType(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && isStringTV(t)
}

func isStringTV(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// builtinName returns the universe builtin the identifier resolves to, or "".
func builtinName(info *types.Info, id *ast.Ident) string {
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// selectorPkg resolves sel.X to a package name.
func selectorPkg(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return "", false
	}
	if pn, ok := info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path(), true
	}
	return "", false
}

// shortFuncName trims the package path off a FullName key for messages:
// "(pkg/path.Recv).Name" → "(pkg.Recv).Name", "pkg/path.Name" → "path.Name".
func shortFuncName(key string) string {
	i := strings.LastIndexByte(key, '/')
	if i < 0 {
		return key
	}
	s := key[i+1:]
	if strings.HasPrefix(key, "(") && !strings.HasPrefix(s, "(") {
		s = "(" + s
	}
	return s
}
