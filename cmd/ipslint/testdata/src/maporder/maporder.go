// Package maporder is ipslint test corpus: map iteration order reaching
// ordered sinks (output, JSON, obs attributes, unsorted appends).
package maporder

import (
	"encoding/json"
	"fmt"
	"sort"
)

type span struct{ attrs []string }

func (s *span) SetAttr(k, v string) { s.attrs = append(s.attrs, k+"="+v) }

func printDirect(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want "fmt.Printf inside map iteration" // want "fmt.Printf in library code"
	}
}

func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside map iteration without a later sort"
	}
	return keys
}

func attrsFromMap(sp *span, m map[string]string) {
	for k, v := range m {
		sp.SetAttr(k, v) // want "SetAttr inside map iteration"
	}
}

func encodeEach(m map[string]int) ([][]byte, error) {
	var out [][]byte
	for k := range m {
		b, err := json.Marshal(k) // want "json.Marshal inside map iteration"
		if err != nil {
			return nil, err
		}
		out = append(out, b) // want "append to out inside map iteration without a later sort"
	}
	return out, nil
}

// The blessed idiom — collect keys, sort, then iterate — is exempt.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Map-to-map accumulation carries no order.
func invert(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

// Commutative reduction carries no order.
func total(m map[string]int) int {
	sum := 0
	for _, v := range m {
		sum += v
	}
	return sum
}

// Ranging over a slice may append and print freely.
func printSlice(xs []string) {
	var seen []string
	for _, x := range xs {
		fmt.Println(x) // want "fmt.Println in library code"
		seen = append(seen, x)
	}
	_ = seen
}
