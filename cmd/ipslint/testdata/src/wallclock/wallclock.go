// Package wallclock is ipslint test corpus: wall-clock reads outside
// internal/obs (manifests are durations-only by contract).
package wallclock

import "time"

func stamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func elapsed(t0 time.Time) time.Duration {
	return time.Since(t0) // want "time.Since reads the wall clock"
}

func remaining(deadline time.Time) time.Duration {
	return time.Until(deadline) // want "time.Until reads the wall clock"
}

// Duration arithmetic and construction never read the clock.
func scale(d time.Duration) time.Duration {
	return 2*d + 5*time.Millisecond
}

// A local type's Now method is not time.Now.
type fakeClock struct{ t time.Time }

func (c fakeClock) Now() time.Time { return c.t }

func viaFake(c fakeClock) time.Time { return c.Now() }
