package wallclock

import (
	"testing"
	"time"
)

// Test files are exempt: tests and benchmarks may time themselves freely.
func TestFakeClock(t *testing.T) {
	c := fakeClock{t: time.Now()}
	if !c.Now().Equal(c.t) {
		t.Fatal("fake clock must return its fixed instant")
	}
	_ = time.Since(c.t)
}
