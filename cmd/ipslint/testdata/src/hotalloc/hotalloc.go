// Package hotalloc is ipslint test corpus: allocation patterns inside the
// loops of //ips:hotpath functions and everything they statically call.
package hotalloc

import "fmt"

// hotKernel is the canonical hot scoring loop: every allocation pattern in
// here costs once per candidate.
//
//ips:hotpath
func hotKernel(xs []float64, out []float64) {
	var spill []float64
	for i, x := range xs {
		tmp := make([]float64, 4)     // want "make inside a hot loop"
		spill = append(spill, x)      // want "append inside a hot loop"
		msg := fmt.Sprintf("x=%v", x) // want "fmt.Sprintf inside a hot loop"
		tmp[0] = x + float64(len(msg))
		out[i] = tmp[0]
	}
	_ = spill
	hotHelper(xs)
}

// hotHelper is not annotated itself: it inherits hotness through the static
// call from hotKernel, and the finding names that root.
func hotHelper(xs []float64) {
	for range xs {
		_ = make([]int, 8) // want "make inside a hot loop"
	}
}

//ips:hotpath
func hotConcat(names []string) string {
	s := ""
	for _, n := range names {
		s += n // want "string concatenation inside a hot loop"
	}
	return s
}

//ips:hotpath
func hotClosure(xs []float64) float64 {
	total := 0.0
	for _, x := range xs {
		f := func() float64 { return 2 * x } // want "function literal inside a hot loop"
		total += f()
	}
	return total
}

func sinkAny(v any) {}

//ips:hotpath
func hotBox(xs []int) {
	for _, x := range xs {
		sinkAny(x) // want "interface boxing inside a hot loop"
	}
}

// The grow-once arena refill is the blessed idiom: a make guarded by a
// cap()/len() check amortises to zero.
//
//ips:hotpath
func hotGuarded(xs []float64, buf []float64) []float64 {
	for i := range xs {
		if cap(buf) < len(xs) {
			buf = make([]float64, len(xs), 2*len(xs))
		}
		buf[i] = xs[i]
	}
	return buf
}

// Appending into a destination preallocated with explicit capacity stays in
// place in steady state.
//
//ips:hotpath
func hotPrealloc(xs []float64) []float64 {
	out := make([]float64, 0, len(xs))
	for _, x := range xs {
		out = append(out, 2*x)
	}
	return out
}

// Unannotated and unreachable from any hot root: the same patterns are fine.
func coldAlloc(xs []float64) []string {
	var out []string
	for _, x := range xs {
		out = append(out, fmt.Sprintf("%v", x))
	}
	return out
}
