// Package nakedgoroutine is ipslint test corpus: goroutine fan-out hygiene
// in loops.
package nakedgoroutine

import "sync"

func process(int) int { return 0 }

func capturesLoopVar(items []int) {
	var wg sync.WaitGroup
	for _, it := range items {
		wg.Add(1)
		go func() {
			defer wg.Done()
			process(it) // want "goroutine captures loop variable it"
		}()
	}
	wg.Wait()
}

func noJoin(items []int) {
	for i := range items {
		go process(i) // want "goroutine launched in a loop with no join in scope"
	}
}

func argPassedJoinedOK(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			process(i)
		}(i)
	}
	wg.Wait()
}

func channelJoinOK(items []int) []int {
	ch := make(chan int)
	for i := range items {
		go func(i int) { ch <- process(i) }(i)
	}
	out := make([]int, 0, len(items))
	for range items {
		out = append(out, <-ch)
	}
	return out
}

func singleGoroutineOK(done chan struct{}) {
	go func() {
		close(done)
	}()
}
