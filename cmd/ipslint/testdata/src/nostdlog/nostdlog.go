// Package nostdlog is ipslint test corpus: stdout/stderr printing from
// library code that should route through obs structured logging.
package nostdlog

import (
	"fmt"
	"io"
	"log"
)

func printsToStdout(v int) {
	fmt.Println("value:", v)     // want "fmt.Println in library code bypasses structured logging"
	fmt.Printf("value: %d\n", v) // want "fmt.Printf in library code bypasses structured logging"
	fmt.Print("value\n")         // want "fmt.Print in library code bypasses structured logging"
}

func usesGlobalLogger(err error) {
	log.Println("failed:", err)   // want "log.Println in library code bypasses structured logging"
	log.Printf("failed: %v", err) // want "log.Printf in library code bypasses structured logging"
	if err != nil {
		log.Fatalf("fatal: %v", err) // want "log.Fatalf in library code bypasses structured logging"
	}
}

func usesBuiltin(v int) {
	println("debugging", v) // want "builtin println in library code bypasses structured logging"
}

// Writer-directed formatting is the sanctioned escape hatch: the caller
// chooses the destination, so nothing leaks to the process's stdout.
func writerOK(w io.Writer, v int) {
	fmt.Fprintf(w, "value: %d\n", v)
	fmt.Fprintln(w, "done")
}

func sprintfOK(v int) string {
	return fmt.Sprintf("value: %d", v)
}

// A shadowing local function named like the builtin is not the builtin.
func shadowOK() {
	println := func(args ...any) {}
	println("not the builtin")
}

// An injected *log.Logger is fine: only the package-level default logger
// is process-global.
func injectedLoggerOK(lg *log.Logger) {
	lg.Println("scoped to the injected logger")
}

// Deliberate terminal output carries a justified suppression.
func suppressedOK(v int) {
	//lint:ignore ipslint/nostdlog corpus example of a justified terminal print
	fmt.Println("intentional:", v)
}
