// Package ignore is ipslint test corpus: the //lint:ignore suppression
// protocol — valid suppression, mandatory reasons, and stale-directive
// detection.  The "want-above" marker attaches an expectation to the
// preceding line, for findings reported at directive positions.
package ignore

import "errors"

func boom() error { return errors.New("x") }

func suppressedOK() {
	//lint:ignore ipslint/errswallow corpus demo: failure is impossible here
	_ = boom()
}

func suppressedSameLineOK() {
	_ = boom() //lint:ignore ipslint/errswallow corpus demo: failure is impossible here
}

func missingReason() {
	//lint:ignore ipslint/errswallow
	// want-above "needs a reason"
	_ = boom() // want "error value of boom discarded"
}

func stale() {
	//lint:ignore ipslint/errswallow nothing here needs suppressing
	// want-above "suppresses nothing"
	err := boom()
	if err != nil {
		panic(err)
	}
}
