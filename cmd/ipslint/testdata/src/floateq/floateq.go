// Package floateq is ipslint test corpus: naive floating-point equality.
package floateq

import "math"

func bad(a, b float64) bool {
	return a == b // want "exact == between floats"
}

func badNeq(a, b float32) bool {
	return a != b // want "exact != between floats"
}

func badConst(x float64) bool {
	return x == 0.1 // want "exact == between floats"
}

type meters float64

func badNamed(a, b meters) bool {
	return a == b // want "exact == between floats"
}

func zeroSentinelOK(std float64) bool {
	return std == 0
}

func infSentinelOK(x float64) bool {
	return x == math.Inf(1)
}

func nanIdiomOK(x float64) bool {
	return x != x
}

func approxEqualHelperOK(a, b, eps float64) bool {
	if a == b {
		return true
	}
	return math.Abs(a-b) <= eps
}

func intOK(a, b int) bool {
	return a == b
}
