// Package ctxfirst is ipslint test corpus: context-propagation hygiene.
package ctxfirst

import (
	"context"
	"sync"
)

func work(int) int { return 0 }

func ctxSecond(name string, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = name
	_ = ctx
}

func ctxFirstOK(ctx context.Context, name string) {
	_ = ctx
	_ = name
}

func noCtxOK(name string) {
	_ = name
}

func literalCtxMisplaced() {
	fn := func(n int, ctx context.Context) { // want "context.Context must be the first parameter"
		_ = n
		_ = ctx
	}
	fn(1, context.Background())
}

// Fanout spawns workers with no way to cancel them.
func Fanout(items []int) { // want "exported function Fanout spawns goroutines but takes no context.Context"
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// FanoutCtxOK threads a context through its pool.
func FanoutCtxOK(ctx context.Context, items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			select {
			case <-ctx.Done():
			default:
				work(i)
			}
		}(i)
	}
	wg.Wait()
}

// fanoutUnexportedOK: the spawn rule applies to the exported surface only.
func fanoutUnexportedOK(items []int) {
	var wg sync.WaitGroup
	for i := range items {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			work(i)
		}(i)
	}
	wg.Wait()
}

// ClosureSpawn returns a closure that spawns: the declaring function is the
// fan-out's entry point and still needs a context.
func ClosureSpawn(done chan struct{}) func() { // want "exported function ClosureSpawn spawns goroutines but takes no context.Context"
	return func() {
		go func() {
			close(done)
		}()
	}
}

//lint:ignore ipslint/ctxfirst corpus: deliberate process-lifetime daemon
func DaemonIgnoredOK(done chan struct{}) {
	go func() {
		close(done)
	}()
}
