// Package spanend is ipslint test corpus: obs span lifecycle leaks.  The
// local Span type mirrors the internal/obs API shape the analyzer matches
// on (a Child method returning *Span, ended by End).
package spanend

import "errors"

type Span struct{}

func (s *Span) Child(name string) *Span  { return &Span{} }
func (s *Span) End()                     {}
func (s *Span) SetInt(k string, v int64) {}

func root() *Span { return &Span{} }

var errBoom = errors.New("boom")

func neverEnded() {
	sp := root().Child("work") // want "span sp is started but never ended"
	sp.SetInt("n", 1)
}

func leakyEarlyReturn(fail bool) error {
	sp := root().Child("stage")
	if fail {
		return errBoom // want "return leaks span sp"
	}
	sp.End()
	return nil
}

func deferredOK() {
	sp := root().Child("ok")
	defer sp.End()
	sp.SetInt("n", 2)
}

func lexicalOK(fail bool) error {
	sp := root().Child("ok")
	if fail {
		sp.End()
		return errBoom
	}
	sp.End()
	return nil
}

func escapeOK() *Span {
	sp := root().Child("handoff")
	return sp
}

func passedOK(use func(*Span)) {
	sp := root().Child("callee-owned")
	use(sp)
}

func loopChildOK(names []string) {
	parent := root().Child("parent")
	defer parent.End()
	for _, n := range names {
		c := parent.Child(n)
		c.SetInt("i", 1)
		c.End()
	}
}
