// Package mutexcopy is ipslint test corpus: by-value copies of lock-bearing
// types.
package mutexcopy

import "sync"

type guarded struct {
	mu sync.Mutex
	n  int
}

type pool struct {
	wg      sync.WaitGroup
	workers int
}

func assignCopy(g *guarded) {
	h := *g // want "assignment copies sync.Mutex.* by value"
	h.n++
}

func varCopy(g guarded) { // want "parameter passes sync.Mutex.* by value"
	var h = g // want "assignment copies sync.Mutex.* by value"
	h.n++
}

func rangeCopy(gs []guarded) {
	for _, g := range gs { // want "range copies sync.Mutex.* by value"
		_ = g.n
	}
}

func (g guarded) byValueReceiver() int { // want "receiver passes sync.Mutex.* by value"
	return g.n
}

func (g *guarded) pointerReceiverOK() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.n
}

func returnsCopy() (p pool) { // want "result passes sync.WaitGroup.* by value"
	return p
}

func freshLiteralOK() *guarded {
	g := guarded{n: 1}
	return &g
}

func pointerOK(gs []*guarded) {
	for _, g := range gs {
		g.n++
	}
}

func indexOK(gs []guarded) {
	for i := range gs {
		gs[i].n++
	}
}
