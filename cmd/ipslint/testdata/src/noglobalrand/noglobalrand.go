// Package noglobalrand is ipslint test corpus: determinism violations via
// the math/rand global generator and clock seeding.
package noglobalrand

import (
	"math/rand"
	"time"
)

func globalDraw() int {
	return rand.Intn(10) // want "rand.Intn uses the process-global generator"
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "rand.Shuffle uses the process-global generator"
}

func globalFloat() float64 {
	return rand.Float64() // want "rand.Float64 uses the process-global generator"
}

func clockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want "seeded from the clock" // want "time.Now reads the wall clock"
}

func clockSeedDirect() rand.Source {
	return rand.NewSource(int64(time.Now().Nanosecond())) // want "seeded from the clock" // want "time.Now reads the wall clock"
}

func injectedOK(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func drawOK(rng *rand.Rand) float64 {
	return rng.Float64()
}
