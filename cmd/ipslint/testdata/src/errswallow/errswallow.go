// Package errswallow is ipslint test corpus: silently discarded errors.
package errswallow

import (
	"errors"
	"strconv"
)

func doWork() error { return errors.New("x") }

func parseTwo(s string) (int, int, error) { return 0, 0, errors.New("x") }

func explicitDiscard() {
	_ = doWork() // want "error value of doWork discarded"
}

func multiDiscard(s string) int {
	v, _ := strconv.Atoi(s) // want "error result of strconv.Atoi discarded"
	return v
}

func midTupleDiscard(s string) int {
	a, _, _ := parseTwo(s) // want "error result of parseTwo discarded"
	return a
}

func handledOK(s string) (int, error) {
	return strconv.Atoi(s)
}

func nonErrorBlankOK(xs map[string]int) bool {
	_, ok := xs["k"]
	return ok
}
